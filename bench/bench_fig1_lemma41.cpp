// bench_fig1_lemma41 — regenerates Figure 1 of the paper: the five-case
// mirror construction of Lemma 4.1.
//
// For each of the five (i, f, a) geometries we (1) run an original 2-robot
// execution whose prefix satisfies the lemma's preconditions, (2) build the
// 8-node mirrored ring G' with the paper's edge constraints and the glued
// (f'1, f'2) pair, (3) replay the algorithm with two opposite-chirality
// robots, and (4) mechanically verify Claims 1-4.  The post-t column shows
// how long the two copies hold the glued extremities once the gluing edge
// vanishes (the OneEdge situation the theorem exploits).
#include <iostream>
#include <utility>
#include <vector>

#include "adversary/adversary.hpp"
#include "algorithms/registry.hpp"
#include "common/args.hpp"
#include "common/bench_report.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/lemma41.hpp"
#include "scheduler/simulator.hpp"

namespace pef::lemma41 {
namespace {

Trace run_original(const AlgorithmPtr& algorithm,
                   const std::vector<std::pair<bool, bool>>& around4,
                   Chirality r0_chirality) {
  const Ring ring(8);
  std::vector<EdgeSet> rounds;
  for (const auto& [e3, e4] : around4) {
    EdgeSet s(8);
    if (e3) s.insert(3);
    if (e4) s.insert(4);
    rounds.push_back(s);
  }
  auto schedule = std::make_shared<RecordedSchedule>(ring, rounds,
                                                     TailRule::kRepeatLast);
  Simulator sim(ring, algorithm, make_oblivious(schedule),
                {{4, r0_chirality}, {0, Chirality(true)}});
  sim.run(around4.size());
  return sim.trace();
}

struct Scenario {
  const char* label;
  const char* algorithm;
  Chirality chirality;
  std::vector<std::pair<bool, bool>> around4;  // (edge 3, edge 4) per round
};

}  // namespace
}  // namespace pef::lemma41

int main(int argc, char** argv) {
  using namespace pef;

  // No flags yet — but a typo'd flag must fail loudly, not run the
  // whole bench with the flag silently ignored.
  ArgParser args(argc, argv);
  args.check_unused();
  using namespace pef::lemma41;

  std::cout << "=== Figure 1 (Lemma 4.1): construction of G' ===\n"
            << "8-node mirrored ring, two opposite-chirality robots glued "
               "along (f'1, f'2).\n\n";

  const std::vector<Scenario> scenarios = {
      {"case i=f, d(i,a)=0", "keep-direction", Chirality(false),
       std::vector<std::pair<bool, bool>>(5, {false, false})},
      {"case i=f, a ccw", "bounce", Chirality(true),
       {{true, false}, {false, false}, {false, false}, {true, false}}},
      {"case i=f, a cw", "bounce", Chirality(true),
       {{false, true}, {false, false}, {false, false}, {false, true}}},
      {"case f=a, a cw", "bounce", Chirality(true),
       {{false, true}, {false, false}}},
      {"case f=a, a ccw", "keep-direction", Chirality(true),
       {{true, false}, {false, false}}},
  };

  TextTable table({"figure-1 case", "algorithm", "t", "claim1 sym",
                   "claim2 odd-dist", "claim3 replay", "claim4 glued",
                   "post-t hold", "nodes seen"});
  CsvWriter csv("fig1_lemma41.csv",
                {"case", "algorithm", "t", "claim1", "claim2", "claim3",
                 "claim4", "post_hold", "visited"});
  BenchReport bench_report("fig1_lemma41");

  bool all_hold = true;
  for (const Scenario& scenario : scenarios) {
    const auto algo = make_algorithm(scenario.algorithm);
    const Trace original =
        run_original(algo, scenario.around4, scenario.chirality);
    const Time t = scenario.around4.size();
    const auto prefix = extract_prefix(original, 0, t);
    if (!prefix) {
      std::cout << "precondition extraction failed for " << scenario.label
                << "\n";
      all_hold = false;
      continue;
    }
    const Construction construction = build(*prefix);
    const auto report = replay_and_verify(construction, algo, original, 0,
                                          *prefix, /*extra_rounds=*/120);
    all_hold = all_hold && report.all_claims();
    table.add_row({scenario.label, scenario.algorithm, std::to_string(t),
                   format_bool(report.claim1_symmetry),
                   format_bool(report.claim2_no_tower),
                   format_bool(report.claim3_replay),
                   format_bool(report.claim4_adjacent),
                   std::to_string(report.post_hold_rounds) + "/120",
                   std::to_string(report.visited_nodes) + "/8"});
    csv.add_row({scenario.label, scenario.algorithm, std::to_string(t),
                 format_bool(report.claim1_symmetry),
                 format_bool(report.claim2_no_tower),
                 format_bool(report.claim3_replay),
                 format_bool(report.claim4_adjacent),
                 std::to_string(report.post_hold_rounds),
                 std::to_string(report.visited_nodes)});
    bench_report.add_rounds(t + 120);
    bench_report.add_cell()
        .param("case", scenario.label)
        .param("algorithm", scenario.algorithm)
        .param("t", std::uint64_t{t})
        .metric("claim1_symmetry", report.claim1_symmetry)
        .metric("claim2_no_tower", report.claim2_no_tower)
        .metric("claim3_replay", report.claim3_replay)
        .metric("claim4_adjacent", report.claim4_adjacent)
        .metric("post_hold_rounds", std::uint64_t{report.post_hold_rounds})
        .metric("visited_nodes", std::uint64_t{report.visited_nodes});
  }

  table.print(std::cout);
  std::cout
      << "\nReading: a camping algorithm (keep-direction pointing at the "
         "glue) holds both extremities for the whole post-t window and sees "
         "only 2 of 8 nodes — exactly the contradiction Lemma 4.1 feeds "
         "into Theorem 4.1.  Claims 1-4 hold for every case, for any "
         "deterministic algorithm.\n"
      << "\nFigure-1 reproduction " << (all_hold ? "HOLDS" : "FAILS") << ".\n";
  bench_report.summary("reproduction_holds", all_hold);
  bench_report.write();
  return all_hold ? 0 : 1;
}
