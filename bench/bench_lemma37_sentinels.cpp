// bench_lemma37_sentinels — Lemma 3.7 as a measured series (extension):
// once an edge dies, how long until PEF_3+ posts sentinels on both of its
// extremities, as a function of ring size, robot count, and the dynamics
// of the surviving edges?
//
// The lemma only promises finiteness; the measured shape is what a
// practitioner would want: formation time grows linearly in n (a robot
// must walk to each extremity) and shrinks with extra robots (more
// candidates near the extremities), and survives flickering edges with a
// 1/p slowdown.
#include <iostream>
#include <string>
#include <vector>

#include "algorithms/registry.hpp"
#include "analysis/sentinels.hpp"
#include "analysis/stats.hpp"
#include "common/args.hpp"
#include "common/bench_report.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "dynamic_graph/schedules.hpp"
#include "engine/engine.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

constexpr std::uint32_t kSeeds = 10;

struct Point {
  Summary delay;  // formation_time - vanish_time across seeds
  std::uint32_t formed = 0;
  std::uint64_t rounds = 0;
};

Point measure(std::uint32_t n, std::uint32_t k, double p) {
  const Ring ring(n);
  const Time vanish = 10;
  Point point;
  std::vector<double> delays;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SchedulePtr base =
        p >= 1.0 ? SchedulePtr(std::make_shared<StaticSchedule>(ring))
                 : SchedulePtr(
                       std::make_shared<BernoulliSchedule>(ring, p, seed));
    const auto missing = static_cast<EdgeId>(
        derive_seed(seed, n, k) % ring.edge_count());
    auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
        base, missing, vanish);
    EngineOptions options;
    options.record_trace = true;  // sentinel analysis reads the trace
    Engine engine(ring, make_algorithm("pef3+"),
                      make_oblivious(schedule),
                      random_placements(ring, k, seed), options);
    engine.run(600 * n);
    point.rounds += 600 * n;
    const auto report = analyze_sentinels(engine.trace(), missing);
    if (report.sentinels_formed()) {
      ++point.formed;
      delays.push_back(static_cast<double>(*report.formation_time - vanish));
    }
  }
  point.delay = summarize(delays);
  return point;
}

}  // namespace
}  // namespace pef

int main(int argc, char** argv) {
  using namespace pef;

  // No flags yet — but a typo'd flag must fail loudly, not run the
  // whole bench with the flag silently ignored.
  ArgParser args(argc, argv);
  args.check_unused();

  std::cout << "=== Lemma 3.7: sentinel formation delay after edge death ===\n"
            << kSeeds << " seeds per cell; delay = formation - vanish time; "
            << "cells show mean (max)\n\n";

  CsvWriter csv("lemma37_sentinels.csv",
                {"n", "k", "p", "formed", "delay_mean", "delay_max"});
  BenchReport report("lemma37_sentinels");
  const auto record = [&report](std::uint32_t n, std::uint32_t k, double p,
                                const Point& point) {
    report.add_rounds(point.rounds);
    report.add_cell()
        .param("n", std::uint64_t{n})
        .param("k", std::uint64_t{k})
        .param("p", p)
        .param("seeds", std::uint64_t{kSeeds})
        .metric("formed", std::uint64_t{point.formed})
        .metric("delay_mean", point.delay.mean)
        .metric("delay_max", point.delay.max);
  };

  std::cout << "Series 1: delay vs ring size (k=3, static survivors)\n";
  {
    TextTable table({"n", "formed", "delay mean", "delay max"});
    for (std::uint32_t n : {5u, 8u, 12u, 16u, 24u}) {
      const Point point = measure(n, 3, 1.0);
      record(n, 3, 1.0, point);
      table.add_row({std::to_string(n),
                     std::to_string(point.formed) + "/" +
                         std::to_string(kSeeds),
                     format_double(point.delay.mean, 1),
                     format_double(point.delay.max, 0)});
      csv.add_row({std::to_string(n), "3", "1.0",
                   std::to_string(point.formed),
                   format_double(point.delay.mean, 2),
                   format_double(point.delay.max, 0)});
    }
    table.print(std::cout);
  }

  std::cout << "\nSeries 2: delay vs robot count (n=12, static survivors)\n";
  {
    TextTable table({"k", "formed", "delay mean", "delay max"});
    for (std::uint32_t k : {3u, 4u, 6u, 8u}) {
      const Point point = measure(12, k, 1.0);
      record(12, k, 1.0, point);
      table.add_row({std::to_string(k),
                     std::to_string(point.formed) + "/" +
                         std::to_string(kSeeds),
                     format_double(point.delay.mean, 1),
                     format_double(point.delay.max, 0)});
      csv.add_row({"12", std::to_string(k), "1.0",
                   std::to_string(point.formed),
                   format_double(point.delay.mean, 2),
                   format_double(point.delay.max, 0)});
    }
    table.print(std::cout);
  }

  std::cout << "\nSeries 3: delay vs survivor flicker (n=10, k=3, "
               "Bernoulli p)\n";
  {
    TextTable table({"p", "formed", "delay mean", "delay max"});
    for (double p : {1.0, 0.8, 0.5, 0.3}) {
      const Point point = measure(10, 3, p);
      record(10, 3, p, point);
      table.add_row({format_double(p, 1),
                     std::to_string(point.formed) + "/" +
                         std::to_string(kSeeds),
                     format_double(point.delay.mean, 1),
                     format_double(point.delay.max, 0)});
      csv.add_row({"10", "3", format_double(p, 1),
                   std::to_string(point.formed),
                   format_double(point.delay.mean, 2),
                   format_double(point.delay.max, 0)});
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: formation always happens (Lemma 3.7), "
               "delay ~ linear in n, decreasing in k, ~1/p in flicker.\n";
  report.write();
  return 0;
}
