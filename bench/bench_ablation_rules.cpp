// bench_ablation_rules — the design-choice ablation called out in
// DESIGN.md: PEF_3+'s Rules 2 and 3 are both necessary.
//
// Pits the full algorithm against its ablations and the natural baselines
// on the decisive workload (an eventual missing edge over a static base,
// every possible missing-edge position) and on the benign workloads where
// the baselines still work.  Expected shape:
//
//     algorithm         eventual-missing   static    t-interval
//     pef3+             100%               100%      100%
//     pef3+-no-rule2    fails              100%      (mostly ok)
//     pef3+-no-rule3    fails              100%      (mostly ok)
//     keep-direction    fails              100%      (mostly ok)
//     bounce            fails*             100%      100%
//
// (*) bounce robots never cross the far side of the missing edge in the
// same pattern PEF_3+ does; failures show up as starved nodes for some
// missing-edge positions / placements.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "common/args.hpp"
#include "common/bench_report.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "dynamic_graph/schedules.hpp"
#include "engine/engine.hpp"

namespace pef {
namespace {

/// Fraction of runs that were perpetual, over every missing-edge position.
double eventual_missing_success(const std::string& algo, std::uint32_t n,
                                std::uint32_t k) {
  const Ring ring(n);
  std::uint32_t wins = 0;
  for (EdgeId missing = 0; missing < n; ++missing) {
    auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
        std::make_shared<StaticSchedule>(ring), missing, 10);
    Engine engine(ring, make_algorithm(algo), make_oblivious(schedule),
                      spread_placements(ring, k));
    engine.run(500 * n);
    if (engine.coverage_report().perpetual(n)) ++wins;
  }
  return static_cast<double>(wins) / n;
}

double battery_success(const std::string& algo,
                       const AdversaryConfig& adversary, std::uint32_t n,
                       std::uint32_t k, std::uint32_t seeds) {
  std::uint32_t wins = 0;
  ScenarioSpec spec;
  spec.nodes = n;
  spec.robots = k;
  spec.algorithm = algo;
  spec.adversary = adversary;
  spec.horizon = 400 * n;
  for (const RunResult& run : run_battery(spec, 1, seeds)) {
    if (run.perpetual) ++wins;
  }
  return static_cast<double>(wins) / seeds;
}

std::string percent(double f) { return format_double(100.0 * f, 0) + "%"; }

}  // namespace
}  // namespace pef

int main(int argc, char** argv) {
  using namespace pef;

  // No flags yet — but a typo'd flag must fail loudly, not run the
  // whole bench with the flag silently ignored.
  ArgParser args(argc, argv);
  args.check_unused();

  constexpr std::uint32_t kNodes = 8;
  constexpr std::uint32_t kRobots = 3;
  constexpr std::uint32_t kSeeds = 8;

  std::cout << "=== Ablation: Rules 2 and 3 of PEF_3+ ===\n"
            << "n = " << kNodes << ", k = " << kRobots
            << "; eventual-missing sweeps all " << kNodes
            << " edge positions; others use " << kSeeds << " seeds.\n\n";

  const std::vector<std::string> algos = {
      "pef3+", "pef3+-no-rule2", "pef3+-no-rule3", "keep-direction",
      "bounce"};

  TextTable table({"algorithm", "eventual-missing", "static", "t-interval",
                   "bernoulli(0.5)"});
  CsvWriter csv("ablation_rules.csv",
                {"algorithm", "eventual_missing", "static", "t_interval",
                 "bernoulli"});
  BenchReport report("ablation_rules");

  double pef_score = 0, best_ablation_score = 0;
  for (const std::string& algo : algos) {
    const double missing =
        eventual_missing_success(algo, kNodes, kRobots);
    const double on_static = battery_success(
        algo, adversary_config(AdversaryKind::kStatic), kNodes, kRobots, 1);
    const double t_interval = battery_success(
        algo, adversary_config(AdversaryKind::kTInterval, {{"interval", 4}}),
        kNodes, kRobots, kSeeds);
    const double bernoulli = battery_success(
        algo, adversary_config(AdversaryKind::kBernoulli, {{"p", 0.5}}),
        kNodes, kRobots, kSeeds);
    if (algo == "pef3+") {
      pef_score = missing;
    } else if (algo == "pef3+-no-rule2" || algo == "pef3+-no-rule3") {
      best_ablation_score = std::max(best_ablation_score, missing);
    }
    table.add_row({algo, percent(missing), percent(on_static),
                   percent(t_interval), percent(bernoulli)});
    csv.add_row({algo, format_double(missing, 3), format_double(on_static, 3),
                 format_double(t_interval, 3), format_double(bernoulli, 3)});
    report.add_rounds(std::uint64_t{kNodes} * 500 * kNodes +
                      (1 + 2 * std::uint64_t{kSeeds}) * 400 * kNodes);
    report.add_cell()
        .param("algorithm", algo)
        .param("n", std::uint64_t{kNodes})
        .param("k", std::uint64_t{kRobots})
        .metric("eventual_missing_success", missing)
        .metric("static_success", on_static)
        .metric("t_interval_success", t_interval)
        .metric("bernoulli_success", bernoulli);
  }
  table.print(std::cout);

  const bool shape_holds = pef_score == 1.0 && best_ablation_score < 1.0;
  std::cout << "\nExpected shape: only the full PEF_3+ survives every "
               "eventual-missing position; each ablation loses the "
               "sentinel/explorer protocol.\nAblation reproduction "
            << (shape_holds ? "HOLDS" : "FAILS") << ".\n";
  report.summary("shape_holds", shape_holds);
  report.write();
  return shape_holds ? 0 : 1;
}
