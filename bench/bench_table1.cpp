// bench_table1 — regenerates TABLE 1 of the paper ("Overview of the
// results"): for every (k, n) regime, the measured possibility/impossibility
// of perpetual exploration on connected-over-time rings.
//
//   * Possible rows are validated by running the paper's algorithm for the
//     cell against the full standard adversary battery across seeds and
//     requiring a perpetual-exploration verdict on every run.
//   * Impossible rows are validated by running EVERY deterministic
//     algorithm in the registry against the staged proof adversary
//     (Theorems 4.1 / 5.1) and requiring that each one fails while the
//     realized evolving graph stays connected-over-time.
//
// Expected output shape (matching the paper):
//   3+ robots, n >= 4  -> Possible   (Theorem 3.1)
//   2 robots,  n > 3   -> Impossible (Theorem 4.1)
//   2 robots,  n = 3   -> Possible   (Theorem 4.2)
//   1 robot,   n > 2   -> Impossible (Theorem 5.1)
//   1 robot,   n = 2   -> Possible   (Theorem 5.2)
#include <iostream>
#include <string>
#include <vector>

#include "adversary/proof_adversary.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "common/args.hpp"
#include "common/bench_report.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/computability.hpp"
#include "core/experiment.hpp"
#include "dynamic_graph/properties.hpp"
#include "engine/engine.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

constexpr std::uint32_t kSeeds = 12;
constexpr Time kPatience = 64;

struct CellResult {
  bool measured_possible = true;
  std::uint32_t runs = 0;
  std::uint32_t failures = 0;
  bool all_legal = true;
  std::string detail;
  std::uint64_t rounds = 0;
};

// Possible cell: the recommended algorithm must beat the whole battery.
CellResult measure_possible(std::uint32_t n, std::uint32_t k) {
  CellResult cell;
  const std::string algo = computability::recommended_algorithm(k, n);
  for (const AdversaryConfig& adversary : standard_battery_configs()) {
    ScenarioSpec spec;
    spec.nodes = n;
    spec.robots = k;
    spec.algorithm = algo;
    spec.adversary = adversary;
    spec.horizon = 500 * n;
    for (const RunResult& run : run_battery(spec, 1, kSeeds)) {
      ++cell.runs;
      cell.rounds += spec.horizon;
      if (!run.perpetual) {
        ++cell.failures;
        cell.measured_possible = false;
      }
      cell.all_legal = cell.all_legal && run.adversary_legal;
    }
  }
  cell.detail = algo + " vs battery";
  return cell;
}

// Impossible cell: the staged proof adversary must defeat every
// deterministic algorithm with a legal (connected-over-time) prefix.
CellResult measure_impossible(std::uint32_t n, std::uint32_t k) {
  CellResult cell;
  cell.measured_possible = false;
  for (const std::string& name : deterministic_algorithm_names()) {
    const Ring ring(n);
    std::vector<RobotPlacement> placements;
    for (std::uint32_t i = 0; i < k; ++i) {
      placements.push_back({static_cast<NodeId>(i), Chirality(true)});
    }
    EngineOptions options;
    options.record_trace = true;  // the legality audit reads edge history
    Engine engine(
        ring, make_algorithm(name),
        std::make_unique<StagedProofAdversary>(ring, 0, k + 1, kPatience),
        placements, options);
    engine.run(500 * n);
    ++cell.runs;
    cell.rounds += 500 * n;
    const bool survived = engine.coverage_report().perpetual(n);
    if (survived) {
      ++cell.failures;  // an algorithm surviving would refute the row
      cell.measured_possible = true;
    }
    const auto audit = audit_connectivity(ring,
                                          engine.trace().edge_history(),
                                          /*patience=*/125 * n);
    cell.all_legal = cell.all_legal && audit.connected_over_time;
  }
  cell.detail = "proof adversary vs " +
                std::to_string(deterministic_algorithm_names().size()) +
                " algorithms";
  return cell;
}

std::string verdict_string(bool possible) {
  return possible ? "Possible" : "Impossible";
}

}  // namespace
}  // namespace pef

int main(int argc, char** argv) {
  using namespace pef;

  // No flags yet — but a typo'd flag must fail loudly, not run the
  // whole bench with the flag silently ignored.
  ArgParser args(argc, argv);
  args.check_unused();

  std::cout << "=== TABLE 1 (paper) vs measured ===\n"
            << "Perpetual exploration of connected-over-time rings, FSYNC.\n"
            << "Seeds per (cell, adversary): " << kSeeds << "\n\n";

  TextTable table({"robots", "ring size", "paper", "measured", "theorem",
                   "runs", "fail", "legal", "workload"});
  CsvWriter csv("table1.csv", {"robots", "nodes", "paper", "measured",
                               "runs", "failures", "legal"});
  BenchReport report("table1");

  struct Row {
    std::string robots_label;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> cells;  // (k, n)
    bool paper_possible;
  };
  const std::vector<Row> rows = {
      {"3 and more", {{3, 4}, {3, 8}, {4, 10}, {5, 12}}, true},
      {"2", {{2, 4}, {2, 6}, {2, 10}}, false},
      {"2", {{2, 3}}, true},
      {"1", {{1, 3}, {1, 5}, {1, 9}}, false},
      {"1", {{1, 2}}, true},
  };

  bool reproduction_holds = true;
  for (const Row& row : rows) {
    bool first = true;
    for (const auto& [k, n] : row.cells) {
      const CellResult cell = row.paper_possible ? measure_possible(n, k)
                                                 : measure_impossible(n, k);
      const bool match = cell.measured_possible == row.paper_possible &&
                         cell.all_legal;
      reproduction_holds = reproduction_holds && match;
      table.add_row({first ? row.robots_label : "",
                     "n = " + std::to_string(n),
                     verdict_string(row.paper_possible),
                     verdict_string(cell.measured_possible) +
                         (match ? "" : "  <-- MISMATCH"),
                     computability::supporting_theorem(k, n),
                     std::to_string(cell.runs),
                     std::to_string(cell.failures),
                     format_bool(cell.all_legal), cell.detail});
      csv.add_row({std::to_string(k), std::to_string(n),
                   verdict_string(row.paper_possible),
                   verdict_string(cell.measured_possible),
                   std::to_string(cell.runs), std::to_string(cell.failures),
                   format_bool(cell.all_legal)});
      report.add_rounds(cell.rounds);
      report.add_cell()
          .param("k", std::uint64_t{k})
          .param("n", std::uint64_t{n})
          .param("workload", cell.detail)
          .metric("paper_possible", row.paper_possible)
          .metric("measured_possible", cell.measured_possible)
          .metric("runs", std::uint64_t{cell.runs})
          .metric("failures", std::uint64_t{cell.failures})
          .metric("all_legal", cell.all_legal)
          .metric("match", match);
      first = false;
    }
    table.add_separator();
  }

  table.print(std::cout);
  std::cout << "\nReproduction "
            << (reproduction_holds ? "HOLDS" : "FAILS")
            << ": every cell matches TABLE 1 of the paper and every "
               "adversary prefix passed the connected-over-time audit.\n";
  report.summary("reproduction_holds", reproduction_holds);
  report.write();
  return reproduction_holds ? 0 : 1;
}
