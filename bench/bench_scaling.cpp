// bench_scaling — google-benchmark timing harness: simulator throughput and
// schedule-family costs as functions of ring size, robot count and
// adversary, plus a cover-time scaling series (the extension bench of
// DESIGN.md).
#include <benchmark/benchmark.h>

#include "adversary/proof_adversary.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "core/experiment.hpp"
#include "dynamic_graph/schedules.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

void BM_SimulatorRoundsStatic(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  const Ring ring(n);
  SimulatorOptions options;
  options.record_trace = false;
  Simulator sim(ring, make_algorithm("pef3+"),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                spread_placements(ring, k), options);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorRoundsStatic)
    ->Args({8, 3})
    ->Args({64, 3})
    ->Args({256, 3})
    ->Args({64, 8})
    ->Args({64, 32});

void BM_SimulatorRoundsBernoulli(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Ring ring(n);
  SimulatorOptions options;
  options.record_trace = false;
  Simulator sim(
      ring, make_algorithm("pef3+"),
      make_oblivious(std::make_shared<BernoulliSchedule>(ring, 0.5, 1)),
      spread_placements(ring, 3), options);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorRoundsBernoulli)->Arg(8)->Arg(64)->Arg(256);

void BM_StagedProofAdversary(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Ring ring(n);
  SimulatorOptions options;
  options.record_trace = false;
  Simulator sim(ring, make_algorithm("bounce"),
                std::make_unique<StagedProofAdversary>(ring, 0, 3, 64),
                {{0, Chirality(true)}, {1, Chirality(true)}}, options);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StagedProofAdversary)->Arg(8)->Arg(64)->Arg(256);

void BM_ScheduleQuery(benchmark::State& state) {
  const Ring ring(static_cast<std::uint32_t>(state.range(0)));
  const BernoulliSchedule schedule(ring, 0.5, 7);
  Time t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule.edges_at(t++));
  }
}
BENCHMARK(BM_ScheduleQuery)->Arg(8)->Arg(64)->Arg(512);

/// Cover time of PEF_3+ as a function of n (reported as a counter so the
/// scaling series prints alongside the timing output).
void BM_CoverTimeVsN(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Ring ring(n);
  double total_cover = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    auto schedule =
        std::make_shared<BernoulliSchedule>(ring, 0.5, 100 + runs);
    Simulator sim(ring, make_algorithm("pef3+"), make_oblivious(schedule),
                  spread_placements(ring, 3));
    sim.run(200 * n);
    const auto coverage = analyze_coverage(sim.trace());
    total_cover += coverage.cover_time
                       ? static_cast<double>(*coverage.cover_time)
                       : static_cast<double>(200 * n);
    ++runs;
  }
  state.counters["cover_time_mean"] =
      total_cover / static_cast<double>(runs);
}
BENCHMARK(BM_CoverTimeVsN)->Arg(6)->Arg(12)->Arg(24)->Arg(48)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pef

BENCHMARK_MAIN();
