// bench_scaling — simulator throughput as a function of ring size, robot
// count and adversary, for BOTH engines:
//
//   * google-benchmark micro-benchmarks: Simulator vs FastEngine rounds/sec
//     across (n, k) and schedule families;
//   * a head-to-head macro measurement at n=4096, k=64 (trace recording off)
//     whose Simulator-vs-FastEngine speedup is recorded in
//     BENCH_scaling.json — the acceptance metric of the engine PR;
//   * SweepRunner thread-scaling on a fixed grid (1 thread vs 4), with a
//     byte-identity check of the two JSON outputs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "adversary/proof_adversary.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "common/bench_report.hpp"
#include "core/experiment.hpp"
#include "dynamic_graph/schedules.hpp"
#include "engine/fast_engine.hpp"
#include "engine/sweep_runner.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

void BM_SimulatorRoundsStatic(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  const Ring ring(n);
  SimulatorOptions options;
  options.record_trace = false;
  Simulator sim(ring, make_algorithm("pef3+"),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                spread_placements(ring, k), options);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorRoundsStatic)
    ->Args({8, 3})
    ->Args({64, 3})
    ->Args({256, 3})
    ->Args({64, 8})
    ->Args({64, 32})
    ->Args({4096, 64});

void BM_FastEngineRoundsStatic(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  const Ring ring(n);
  FastEngine engine(ring, make_algorithm("pef3+"),
                    make_oblivious(std::make_shared<StaticSchedule>(ring)),
                    spread_placements(ring, k));
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FastEngineRoundsStatic)
    ->Args({8, 3})
    ->Args({64, 3})
    ->Args({256, 3})
    ->Args({64, 8})
    ->Args({64, 32})
    ->Args({4096, 64});

void BM_SimulatorRoundsBernoulli(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Ring ring(n);
  SimulatorOptions options;
  options.record_trace = false;
  Simulator sim(
      ring, make_algorithm("pef3+"),
      make_oblivious(std::make_shared<BernoulliSchedule>(ring, 0.5, 1)),
      spread_placements(ring, 3), options);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorRoundsBernoulli)->Arg(8)->Arg(64)->Arg(256);

void BM_FastEngineRoundsBernoulli(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Ring ring(n);
  FastEngine engine(
      ring, make_algorithm("pef3+"),
      make_oblivious(std::make_shared<BernoulliSchedule>(ring, 0.5, 1)),
      spread_placements(ring, 3));
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FastEngineRoundsBernoulli)->Arg(8)->Arg(64)->Arg(256);

void BM_StagedProofAdversary(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Ring ring(n);
  SimulatorOptions options;
  options.record_trace = false;
  Simulator sim(ring, make_algorithm("bounce"),
                std::make_unique<StagedProofAdversary>(ring, 0, 3, 64),
                {{0, Chirality(true)}, {1, Chirality(true)}}, options);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StagedProofAdversary)->Arg(8)->Arg(64)->Arg(256);

void BM_FastEngineStagedProofAdversary(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Ring ring(n);
  FastEngine engine(ring, make_algorithm("bounce"),
                    std::make_unique<StagedProofAdversary>(ring, 0, 3, 64),
                    {{0, Chirality(true)}, {1, Chirality(true)}});
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FastEngineStagedProofAdversary)->Arg(8)->Arg(64)->Arg(256);

void BM_ScheduleQuery(benchmark::State& state) {
  const Ring ring(static_cast<std::uint32_t>(state.range(0)));
  const BernoulliSchedule schedule(ring, 0.5, 7);
  Time t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule.edges_at(t++));
  }
}
BENCHMARK(BM_ScheduleQuery)->Arg(8)->Arg(64)->Arg(512);

void BM_ScheduleQueryInPlace(benchmark::State& state) {
  const Ring ring(static_cast<std::uint32_t>(state.range(0)));
  const BernoulliSchedule schedule(ring, 0.5, 7);
  EdgeSet scratch(ring.edge_count());
  Time t = 0;
  for (auto _ : state) {
    schedule.edges_into(t++, scratch);
    benchmark::DoNotOptimize(scratch);
  }
}
BENCHMARK(BM_ScheduleQueryInPlace)->Arg(8)->Arg(64)->Arg(512);

/// Cover time of PEF_3+ as a function of n (reported as a counter so the
/// scaling series prints alongside the timing output).  Runs on FastEngine;
/// the coverage numbers are engine-independent (differential-tested).
void BM_CoverTimeVsN(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Ring ring(n);
  double total_cover = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    auto schedule =
        std::make_shared<BernoulliSchedule>(ring, 0.5, 100 + runs);
    FastEngine engine(ring, make_algorithm("pef3+"),
                      make_oblivious(schedule), spread_placements(ring, 3));
    engine.run(200 * n);
    const auto coverage = engine.coverage_report();
    total_cover += coverage.cover_time
                       ? static_cast<double>(*coverage.cover_time)
                       : static_cast<double>(200 * n);
    ++runs;
  }
  state.counters["cover_time_mean"] =
      total_cover / static_cast<double>(runs);
}
BENCHMARK(BM_CoverTimeVsN)->Arg(6)->Arg(12)->Arg(24)->Arg(48)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Head-to-head macro measurement + BENCH_scaling.json.

double measure_simulator_rps(std::uint32_t n, std::uint32_t k, Time rounds) {
  const Ring ring(n);
  SimulatorOptions options;
  options.record_trace = false;
  Simulator sim(ring, make_algorithm("pef3+"),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                spread_placements(ring, k), options);
  const auto start = std::chrono::steady_clock::now();
  sim.run(rounds);
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  return static_cast<double>(rounds) / secs;
}

double measure_fast_engine_rps(std::uint32_t n, std::uint32_t k,
                               Time rounds) {
  const Ring ring(n);
  FastEngine engine(ring, make_algorithm("pef3+"),
                    make_oblivious(std::make_shared<StaticSchedule>(ring)),
                    spread_placements(ring, k));
  const auto start = std::chrono::steady_clock::now();
  engine.run(rounds);
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  return static_cast<double>(rounds) / secs;
}

SweepGrid scaling_grid() {
  SweepGrid grid;
  grid.algorithms = {"pef3+", "bounce", "keep-direction"};
  grid.adversaries = {static_spec(), bernoulli_spec(0.5),
                      bounded_absence_spec(6)};
  grid.ring_sizes = {16, 64};
  grid.robot_counts = {3, 8};
  grid.seeds = {1, 2, 3, 4};
  grid.horizon = 4000;
  return grid;
}

void head_to_head(BenchReport& report) {
  constexpr std::uint32_t kNodes = 4096;
  constexpr std::uint32_t kRobots = 64;
  constexpr Time kSimRounds = 4000;
  constexpr Time kFastRounds = 40000;

  std::cout << "\n=== Head to head: Simulator vs FastEngine (n=" << kNodes
            << ", k=" << kRobots << ", static schedule, no trace) ===\n";
  const double sim_rps = measure_simulator_rps(kNodes, kRobots, kSimRounds);
  const double fast_rps =
      measure_fast_engine_rps(kNodes, kRobots, kFastRounds);
  const double speedup = fast_rps / sim_rps;
  std::cout << "Simulator:  " << static_cast<std::uint64_t>(sim_rps)
            << " rounds/sec\n"
            << "FastEngine: " << static_cast<std::uint64_t>(fast_rps)
            << " rounds/sec\n"
            << "Speedup:    " << speedup << "x (target >= 5x)\n";

  report.add_rounds(kSimRounds + kFastRounds);
  report.add_cell()
      .param("series", "head-to-head")
      .param("n", std::uint64_t{kNodes})
      .param("k", std::uint64_t{kRobots})
      .param("schedule", "static")
      .metric("simulator_rounds_per_sec", sim_rps)
      .metric("fast_engine_rounds_per_sec", fast_rps)
      .metric("speedup", speedup);
  report.summary("fast_engine_speedup", speedup);
  report.summary("speedup_target_met", speedup >= 5.0);
}

void sweep_scaling(BenchReport& report) {
  std::cout << "\n=== SweepRunner thread scaling (same grid, 1 vs 4 "
               "threads) ===\n";
  const SweepGrid grid = scaling_grid();
  const SweepResult serial = SweepRunner(1).run(grid);
  const SweepResult parallel = SweepRunner(4).run(grid);
  const bool identical = serial.to_json() == parallel.to_json();
  const double ratio = serial.wall_seconds > 0
                           ? parallel.wall_seconds / serial.wall_seconds
                           : 0;
  std::cout << "cells: " << serial.cells.size() << "\n"
            << "1 thread:  " << serial.wall_seconds << " s ("
            << static_cast<std::uint64_t>(serial.rounds_per_sec())
            << " rounds/sec)\n"
            << "4 threads: " << parallel.wall_seconds << " s ("
            << static_cast<std::uint64_t>(parallel.rounds_per_sec())
            << " rounds/sec)\n"
            << "wall-time ratio: " << ratio
            << " (target <= 0.4 on >= 4 cores)\n"
            << "bit-identical JSON: " << (identical ? "yes" : "NO") << "\n";

  report.add_rounds(serial.total_rounds() + parallel.total_rounds());
  report.add_cell()
      .param("series", "sweep-thread-scaling")
      .param("cells", static_cast<std::uint64_t>(serial.cells.size()))
      .metric("serial_wall_seconds", serial.wall_seconds)
      .metric("parallel_wall_seconds", parallel.wall_seconds)
      .metric("parallel_over_serial", ratio)
      .metric("json_bit_identical", identical);
  report.summary("sweep_json_bit_identical", identical);
}

}  // namespace
}  // namespace pef

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  pef::BenchReport report("scaling");
  pef::head_to_head(report);
  pef::sweep_scaling(report);
  report.write();
  return 0;
}
