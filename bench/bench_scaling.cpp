// bench_scaling — simulator throughput as a function of ring size, robot
// count and adversary, for BOTH engines and BOTH dispatch paths:
//
//   * google-benchmark micro-benchmarks: Simulator vs Engine rounds/sec
//     across (n, k) and schedule families;
//   * a head-to-head macro measurement at n=4096, k=64 (trace recording off)
//     recorded in BENCH_scaling.json: Simulator vs Engine (virtual
//     dispatch — PR 1's Engine path) vs Engine (kernel dispatch), the
//     kernel column being the acceptance metric of the unification PR;
//   * the model axis at the same size: rounds/sec of the unified engine in
//     FSYNC / SSYNC / ASYNC under both dispatches (paired reps, median
//     ratio; kernel_beats_virtual_all_models is the regression gate);
//   * the batch-throughput series, per EXECUTION MODEL: BatchEngine
//     aggregate replica-rounds/sec vs per-seed Engines at n=1024, k=16
//     (FSYNC at B in {1, 4, 16, 64}; SSYNC/ASYNC — the batch-native
//     prologue with devirtualized Bernoulli activation and plane-filled
//     edge rows — at B in {1, 16}).  batch_speedup_over_per_seed (FSYNC),
//     batch_speedup_ssync and batch_speedup_async (all targeting >= 2x at
//     B=16) are the acceptance metrics of the batching PRs, and
//     batch_speedup_all_models / batch_stats_identical are the CI gates;
//   * the cycle-fastforward series: one 1e6-round deterministic cell run
//     plain and with the periodicity detector — fastforward_bit_identical
//     and fastforward_speedup (>= 10x) are the acceptance gates of the
//     fast-forward PR;
//   * SweepRunner thread-scaling on a fixed grid (1 thread vs 4), with a
//     byte-identity check of the two JSON outputs.
//
// --smoke shrinks every macro series to CI-sized parameters; the CI
// bench-smoke job gates on the JSON's kernel_beats_virtual,
// batch_speedup_over_per_seed, batch_speedup_all_models and
// batch_stats_identical verdicts.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <iostream>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

#include "adversary/proof_adversary.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "common/bench_report.hpp"
#include "core/experiment.hpp"
#include "dynamic_graph/schedules.hpp"
#include "engine/batch_engine.hpp"
#include "engine/engine.hpp"
#include "engine/sweep_runner.hpp"
#include "engine/topology.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

/// --smoke shrinks every macro series to CI-sized parameters (set in main,
/// used by the bench-smoke CI job; the verdict booleans in the JSON keep
/// their meaning, only the sizes shrink).
bool smoke_mode = false;

void BM_SimulatorRoundsStatic(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  const Ring ring(n);
  SimulatorOptions options;
  options.record_trace = false;
  Simulator sim(ring, make_algorithm("pef3+"),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                spread_placements(ring, k), options);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorRoundsStatic)
    ->Args({8, 3})
    ->Args({64, 3})
    ->Args({256, 3})
    ->Args({64, 8})
    ->Args({64, 32})
    ->Args({4096, 64});

void BM_FastEngineRoundsStatic(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  const Ring ring(n);
  Engine engine(ring, make_algorithm("pef3+"),
                    make_oblivious(std::make_shared<StaticSchedule>(ring)),
                    spread_placements(ring, k));
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FastEngineRoundsStatic)
    ->Args({8, 3})
    ->Args({64, 3})
    ->Args({256, 3})
    ->Args({64, 8})
    ->Args({64, 32})
    ->Args({4096, 64});

void BM_SimulatorRoundsBernoulli(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Ring ring(n);
  SimulatorOptions options;
  options.record_trace = false;
  Simulator sim(
      ring, make_algorithm("pef3+"),
      make_oblivious(std::make_shared<BernoulliSchedule>(ring, 0.5, 1)),
      spread_placements(ring, 3), options);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorRoundsBernoulli)->Arg(8)->Arg(64)->Arg(256);

void BM_FastEngineRoundsBernoulli(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Ring ring(n);
  Engine engine(
      ring, make_algorithm("pef3+"),
      make_oblivious(std::make_shared<BernoulliSchedule>(ring, 0.5, 1)),
      spread_placements(ring, 3));
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FastEngineRoundsBernoulli)->Arg(8)->Arg(64)->Arg(256);

void BM_StagedProofAdversary(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Ring ring(n);
  SimulatorOptions options;
  options.record_trace = false;
  Simulator sim(ring, make_algorithm("bounce"),
                std::make_unique<StagedProofAdversary>(ring, 0, 3, 64),
                {{0, Chirality(true)}, {1, Chirality(true)}}, options);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StagedProofAdversary)->Arg(8)->Arg(64)->Arg(256);

void BM_FastEngineStagedProofAdversary(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Ring ring(n);
  Engine engine(ring, make_algorithm("bounce"),
                    std::make_unique<StagedProofAdversary>(ring, 0, 3, 64),
                    {{0, Chirality(true)}, {1, Chirality(true)}});
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FastEngineStagedProofAdversary)->Arg(8)->Arg(64)->Arg(256);

void BM_ScheduleQuery(benchmark::State& state) {
  const Ring ring(static_cast<std::uint32_t>(state.range(0)));
  const BernoulliSchedule schedule(ring, 0.5, 7);
  Time t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule.edges_at(t++));
  }
}
BENCHMARK(BM_ScheduleQuery)->Arg(8)->Arg(64)->Arg(512);

void BM_ScheduleQueryInPlace(benchmark::State& state) {
  const Ring ring(static_cast<std::uint32_t>(state.range(0)));
  const BernoulliSchedule schedule(ring, 0.5, 7);
  EdgeSet scratch(ring.edge_count());
  Time t = 0;
  for (auto _ : state) {
    schedule.edges_into(t++, scratch);
    benchmark::DoNotOptimize(scratch);
  }
}
BENCHMARK(BM_ScheduleQueryInPlace)->Arg(8)->Arg(64)->Arg(512);

/// Cover time of PEF_3+ as a function of n (reported as a counter so the
/// scaling series prints alongside the timing output).  Runs on Engine;
/// the coverage numbers are engine-independent (differential-tested).
void BM_CoverTimeVsN(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Ring ring(n);
  double total_cover = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    auto schedule =
        std::make_shared<BernoulliSchedule>(ring, 0.5, 100 + runs);
    Engine engine(ring, make_algorithm("pef3+"),
                      make_oblivious(schedule), spread_placements(ring, 3));
    engine.run(200 * n);
    const auto coverage = engine.coverage_report();
    total_cover += coverage.cover_time
                       ? static_cast<double>(*coverage.cover_time)
                       : static_cast<double>(200 * n);
    ++runs;
  }
  state.counters["cover_time_mean"] =
      total_cover / static_cast<double>(runs);
}
BENCHMARK(BM_CoverTimeVsN)->Arg(6)->Arg(12)->Arg(24)->Arg(48)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Head-to-head macro measurement + BENCH_scaling.json.

double measure_simulator_rps(std::uint32_t n, std::uint32_t k, Time rounds) {
  const Ring ring(n);
  SimulatorOptions options;
  options.record_trace = false;
  Simulator sim(ring, make_algorithm("pef3+"),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                spread_placements(ring, k), options);
  const auto start = std::chrono::steady_clock::now();
  sim.run(rounds);
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  return static_cast<double>(rounds) / secs;
}

double run_and_time(Engine& engine, Time rounds) {
  const auto start = std::chrono::steady_clock::now();
  engine.run(rounds);
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  return static_cast<double>(rounds) / secs;
}

/// Unified-engine rounds/sec at one (model, dispatch) grid point, over the
/// static schedule.  SSYNC runs under FULL activation and ASYNC under
/// LOCKSTEP phases: the model axis compares the two Compute dispatches, so
/// every robot must actually reach Compute — under Bernoulli(0.5) policies
/// the loop mostly measures the policy's per-robot RNG draws and the
/// few-percent dispatch margin drowns in scheduling noise.
double measure_engine_rps(ExecutionModel model, ComputeDispatch dispatch,
                          std::uint32_t n, std::uint32_t k, Time rounds) {
  const Ring ring(n);
  EngineOptions options;
  options.dispatch = dispatch;
  auto schedule = std::make_shared<StaticSchedule>(ring);
  switch (model) {
    case ExecutionModel::kFsync: {
      Engine engine(ring, make_algorithm("pef3+"), make_oblivious(schedule),
                    spread_placements(ring, k), options);
      return run_and_time(engine, rounds);
    }
    case ExecutionModel::kSsync: {
      Engine engine(ring, make_algorithm("pef3+"),
                    std::make_unique<SsyncObliviousAdversary>(schedule),
                    std::make_unique<FullActivation>(),
                    spread_placements(ring, k), options);
      return run_and_time(engine, rounds);
    }
    case ExecutionModel::kAsync: {
      Engine engine(ring, make_algorithm("pef3+"),
                    std::make_unique<SsyncObliviousAdversary>(schedule),
                    std::make_unique<LockstepPhases>(),
                    spread_placements(ring, k), options);
      return run_and_time(engine, rounds);
    }
  }
  return 0;
}

SweepSpec scaling_grid() {
  SweepSpec spec;
  spec.algorithms = {"pef3+", "bounce", "keep-direction"};
  spec.adversaries = {
      adversary_config(AdversaryKind::kStatic),
      adversary_config(AdversaryKind::kBernoulli, {{"p", 0.5}}),
      adversary_config(AdversaryKind::kBoundedAbsence, {{"max_absence", 6}})};
  spec.ring_sizes = {16, 64};
  spec.robot_counts = {3, 8};
  spec.seeds = {1, 2, 3, 4};
  spec.horizon = 4000;
  return spec;
}

void head_to_head(BenchReport& report) {
  const std::uint32_t kNodes = smoke_mode ? 512 : 4096;
  const std::uint32_t kRobots = smoke_mode ? 16 : 64;
  const Time kSimRounds = smoke_mode ? 2000 : 4000;
  const Time kFastRounds = smoke_mode ? 10000 : 40000;

  std::cout << "\n=== Head to head: Simulator vs Engine virtual vs Engine "
               "kernel (n="
            << kNodes << ", k=" << kRobots
            << ", static schedule, no trace) ===\n";
  const double sim_rps = measure_simulator_rps(kNodes, kRobots, kSimRounds);
  // Virtual dispatch is PR 1's Engine path; kernel dispatch is the
  // devirtualized POD path of the unification PR.  Paired reps, median
  // ratio (see model_axis): a single sample on a loaded single-core box
  // can swing ~20-30%, which would make the kernel-vs-virtual verdict a
  // coin flip.
  double virtual_rps = 0;
  double kernel_rps = 0;
  std::vector<double> ratios;
  for (int rep = 0; rep < 5; ++rep) {
    const double v =
        measure_engine_rps(ExecutionModel::kFsync, ComputeDispatch::kVirtual,
                           kNodes, kRobots, kFastRounds);
    const double kr =
        measure_engine_rps(ExecutionModel::kFsync, ComputeDispatch::kKernel,
                           kNodes, kRobots, kFastRounds);
    virtual_rps = std::max(virtual_rps, v);
    kernel_rps = std::max(kernel_rps, kr);
    ratios.push_back(kr / v);
  }
  std::sort(ratios.begin(), ratios.end());
  const double speedup = virtual_rps / sim_rps;
  const double kernel_speedup = ratios[ratios.size() / 2];
  std::cout << "Simulator:        " << static_cast<std::uint64_t>(sim_rps)
            << " rounds/sec\n"
            << "Engine (virtual): " << static_cast<std::uint64_t>(virtual_rps)
            << " rounds/sec (" << speedup << "x vs Simulator, target >= 5x)\n"
            << "Engine (kernel):  " << static_cast<std::uint64_t>(kernel_rps)
            << " rounds/sec (median ratio " << kernel_speedup
            << "x vs virtual, target > 1x)\n";

  report.add_rounds(kSimRounds + 10 * kFastRounds);
  report.add_cell()
      .param("series", "head-to-head")
      .param("n", std::uint64_t{kNodes})
      .param("k", std::uint64_t{kRobots})
      .param("schedule", "static")
      .metric("simulator_rounds_per_sec", sim_rps)
      .metric("fast_engine_rounds_per_sec", virtual_rps)
      .metric("kernel_engine_rounds_per_sec", kernel_rps)
      .metric("speedup", speedup)
      .metric("kernel_speedup_over_virtual", kernel_speedup);
  report.summary("fast_engine_speedup", speedup);
  report.summary("speedup_target_met", speedup >= 5.0);
  report.summary("kernel_speedup_over_virtual", kernel_speedup);
  // The kernel_beats_virtual verdict itself is emitted by model_axis from
  // its FSYNC cell: same scenario, but 9 paired reps measured after the
  // process is warm — the statistically strongest estimate of the margin.
}

void model_axis(BenchReport& report) {
  const std::uint32_t kNodes = smoke_mode ? 512 : 4096;
  const std::uint32_t kRobots = smoke_mode ? 16 : 64;
  const Time kRounds = smoke_mode ? 8000 : 20000;
  const int kReps = smoke_mode ? 5 : 9;

  std::cout << "\n=== Model axis: unified engine rounds/sec (n=" << kNodes
            << ", k=" << kRobots << ", static schedule, no trace) ===\n";
  bool kernel_beats_all = true;
  for (const ExecutionModel model :
       {ExecutionModel::kFsync, ExecutionModel::kSsync,
        ExecutionModel::kAsync}) {
    // A single 20k-round sample on a loaded box can swing 30%, and even a
    // best-of-N drifts with thermal state, which would make a few-percent
    // kernel-vs-virtual margin a coin flip.  Each rep therefore measures
    // the two dispatches BACK-TO-BACK (the pair sees the same machine
    // state, so their ratio cancels drift) and the verdict is the MEDIAN
    // of the per-rep ratios.
    double virtual_rps = 0;
    double kernel_rps = 0;
    std::vector<double> ratios;
    ratios.reserve(kReps);
    for (int rep = 0; rep < kReps; ++rep) {
      const double v = measure_engine_rps(model, ComputeDispatch::kVirtual,
                                          kNodes, kRobots, kRounds);
      const double kr = measure_engine_rps(model, ComputeDispatch::kKernel,
                                           kNodes, kRobots, kRounds);
      virtual_rps = std::max(virtual_rps, v);
      kernel_rps = std::max(kernel_rps, kr);
      ratios.push_back(kr / v);
    }
    std::sort(ratios.begin(), ratios.end());
    const double ratio_median = ratios[ratios.size() / 2];
    const bool kernel_wins = ratio_median > 1.0;
    kernel_beats_all = kernel_beats_all && kernel_wins;
    if (model == ExecutionModel::kFsync) {
      report.summary("kernel_beats_virtual", kernel_wins);
    }
    std::cout << to_string(model) << ": virtual "
              << static_cast<std::uint64_t>(virtual_rps) << " rounds/sec, "
              << "kernel " << static_cast<std::uint64_t>(kernel_rps)
              << " rounds/sec (median ratio " << ratio_median << "x over "
              << kReps << " paired reps)\n";
    report.add_rounds(2 * kReps * kRounds);
    report.add_cell()
        .param("series", "model-axis")
        .param("model", to_string(model))
        .param("n", std::uint64_t{kNodes})
        .param("k", std::uint64_t{kRobots})
        .metric("virtual_rounds_per_sec", virtual_rps)
        .metric("kernel_rounds_per_sec", kernel_rps)
        .metric("kernel_speedup_over_virtual", ratio_median)
        .metric("kernel_beats_virtual", kernel_wins);
  }
  // The acceptance gate: the devirtualized path must win on every model,
  // not just FSYNC.
  report.summary("kernel_beats_virtual_all_models", kernel_beats_all);
}

// ---------------------------------------------------------------------------
// Batch throughput: BatchEngine vs per-seed Engines, on ALL THREE models.
// FSYNC exercises the fused AllFull pass; SSYNC/ASYNC exercise the batched
// round prologue (devirtualized Bernoulli activation kernels over the mask
// word planes, schedule-filled edge rows, no mirrors) against solo Engines
// paying the per-replica virtual prologue.

constexpr double kBatchActivationP = 0.5;  // the SweepSpec / CLI default

/// The shared replica scenario of the batch series: pef3+ kernel, static
/// schedule, per-seed random placements, standard model wiring (the same
/// wiring SweepRunner and pef_run --batch use).
BatchReplica batch_replica(const Ring& ring, ExecutionModel model,
                           std::uint32_t robots, std::uint64_t seed,
                           Time rounds) {
  BatchReplica replica;
  replica.algorithm = make_algorithm("pef3+", seed);
  replica.placements = random_placements(ring, robots, seed);
  replica.horizon = rounds;
  wire_standard_replica(replica, model,
                        make_oblivious(std::make_shared<StaticSchedule>(ring)),
                        kBatchActivationP, seed);
  return replica;
}

/// One solo Engine of the same scenario (the per-seed baseline and the
/// bit-identity twin); returns its stats.
EngineStats run_solo_engine(const Ring& ring, ExecutionModel model,
                            std::uint32_t robots, std::uint64_t seed,
                            Time rounds) {
  EngineOptions options;
  options.dispatch = ComputeDispatch::kKernel;
  auto algorithm = make_algorithm("pef3+", seed);
  auto adversary = make_oblivious(std::make_shared<StaticSchedule>(ring));
  const auto placements = random_placements(ring, robots, seed);
  std::optional<Engine> engine;
  switch (model) {
    case ExecutionModel::kFsync:
      engine.emplace(ring, std::move(algorithm), std::move(adversary),
                     placements, options);
      break;
    case ExecutionModel::kSsync:
      engine.emplace(
          ring, std::move(algorithm),
          std::make_unique<SsyncFromFsyncAdversary>(std::move(adversary)),
          standard_ssync_activation(kBatchActivationP, seed), placements,
          options);
      break;
    case ExecutionModel::kAsync:
      engine.emplace(
          ring, std::move(algorithm),
          std::make_unique<SsyncFromFsyncAdversary>(std::move(adversary)),
          standard_async_phases(kBatchActivationP, seed), placements,
          options);
      break;
  }
  engine->run(rounds);
  return engine->stats();
}

double measure_per_seed_rps(const Ring& ring, ExecutionModel model,
                            std::uint32_t robots, std::uint32_t batch,
                            Time rounds) {
  const auto start = std::chrono::steady_clock::now();
  for (std::uint32_t b = 0; b < batch; ++b) {
    run_solo_engine(ring, model, robots, b + 1, rounds);
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  return static_cast<double>(rounds) * batch / secs;
}

double measure_batch_rps(const Ring& ring, ExecutionModel model,
                         std::uint32_t robots, std::uint32_t batch,
                         Time rounds, bool* bit_identical,
                         std::uint32_t threads = 1) {
  std::vector<BatchReplica> replicas;
  replicas.reserve(batch);
  for (std::uint32_t b = 0; b < batch; ++b) {
    replicas.push_back(batch_replica(ring, model, robots, b + 1, rounds));
  }
  const auto start = std::chrono::steady_clock::now();
  BatchEngineOptions options;
  options.threads = threads;
  BatchEngine engine(ring, model, std::move(replicas), options);
  engine.run_all();
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  if (bit_identical != nullptr) {
    // Spot-check the bit-identity contract (the full pin is
    // tests/batch_engine_test.cpp): every replica's stats must equal its
    // solo Engine twin's.
    for (std::uint32_t b = 0; b < batch && *bit_identical; ++b) {
      const EngineStats e = run_solo_engine(ring, model, robots, b + 1, rounds);
      const EngineStats& a = engine.stats(b);
      *bit_identical = a.rounds == e.rounds &&
                       a.total_moves == e.total_moves &&
                       a.tower_rounds == e.tower_rounds &&
                       a.visited_node_count == e.visited_node_count &&
                       a.cover_time == e.cover_time;
    }
  }
  return static_cast<double>(rounds) * batch / secs;
}

void batch_throughput(BenchReport& report) {
  const std::uint32_t kNodes = smoke_mode ? 256 : 1024;
  const std::uint32_t kRobots = 16;
  const Time kRounds = smoke_mode ? 10000 : 40000;
  constexpr int kReps = 3;

  const Ring ring(kNodes);
  bool all_identical = true;
  bool all_models_beat_per_seed = true;
  double fsync_speedup_at_16 = 0;
  double ssync_speedup_at_16 = 0;
  double async_speedup_at_16 = 0;
  double fsync_speedup_at_64 = 0;
  double fsync_speedup_at_256 = 0;
  for (const ExecutionModel model :
       {ExecutionModel::kFsync, ExecutionModel::kSsync,
        ExecutionModel::kAsync}) {
    // FSYNC keeps its historical B sweep plus the wide B=256 point (the
    // cache-tiled regime); the non-FSYNC series bracket the B=16 and B=256
    // acceptance points (their per-seed baselines are slower, so the full
    // sweep would dominate the bench's wall time).
    const std::vector<std::uint32_t> batches =
        model == ExecutionModel::kFsync
            ? (smoke_mode ? std::vector<std::uint32_t>{1, 16, 64, 256}
                          : std::vector<std::uint32_t>{1, 4, 16, 64, 256})
            : (smoke_mode ? std::vector<std::uint32_t>{1, 16}
                          : std::vector<std::uint32_t>{1, 16, 256});
    std::cout << "\n=== Batch throughput [" << to_string(model)
              << "]: BatchEngine vs per-seed Engines (n=" << kNodes
              << ", k=" << kRobots << ", pef3+ kernel, static schedule"
              << (model == ExecutionModel::kFsync
                      ? ""
                      : ", Bernoulli(p=0.5) activation")
              << ", aggregate replica-rounds/sec) ===\n";
    for (const std::uint32_t batch : batches) {
      double per_seed_rps = 0;
      double batch_rps = 0;
      bool bit_identical = true;
      for (int rep = 0; rep < kReps; ++rep) {
        per_seed_rps = std::max(
            per_seed_rps,
            measure_per_seed_rps(ring, model, kRobots, batch, kRounds));
        batch_rps = std::max(
            batch_rps,
            measure_batch_rps(ring, model, kRobots, batch, kRounds,
                              rep == 0 ? &bit_identical : nullptr));
      }
      const double speedup = batch_rps / per_seed_rps;
      if (batch == 16) {
        switch (model) {
          case ExecutionModel::kFsync:
            fsync_speedup_at_16 = speedup;
            break;
          case ExecutionModel::kSsync:
            ssync_speedup_at_16 = speedup;
            break;
          case ExecutionModel::kAsync:
            async_speedup_at_16 = speedup;
            break;
        }
        all_models_beat_per_seed = all_models_beat_per_seed && speedup > 1.0;
      }
      if (model == ExecutionModel::kFsync && batch == 64) {
        fsync_speedup_at_64 = speedup;
      }
      if (model == ExecutionModel::kFsync && batch == 256) {
        fsync_speedup_at_256 = speedup;
      }
      all_identical = all_identical && bit_identical;
      std::cout << "B=" << batch << ": per-seed "
                << static_cast<std::uint64_t>(per_seed_rps)
                << " rounds/sec, batch "
                << static_cast<std::uint64_t>(batch_rps) << " rounds/sec ("
                << speedup << "x, stats identical: "
                << (bit_identical ? "yes" : "NO") << ")\n";
      report.add_rounds(2 * kReps * kRounds * batch);
      report.add_cell()
          .param("series", "batch-throughput")
          .param("model", to_string(model))
          .param("n", std::uint64_t{kNodes})
          .param("k", std::uint64_t{kRobots})
          .param("batch", std::uint64_t{batch})
          .metric("per_seed_rounds_per_sec", per_seed_rps)
          .metric("batch_rounds_per_sec", batch_rps)
          .metric("batch_speedup_over_per_seed", speedup)
          .metric("stats_identical", bit_identical);
    }
  }
  // The acceptance metrics: aggregate batch speedup per model and
  // bit-identity across every model.  The FSYNC gate is based on the B=64
  // series: B=16 sits near the break-even knee on single-core shared boxes
  // where run-to-run parity noise (~10-15%) can drag a true ~2x reading
  // under the threshold, while B=64 has enough amortization headroom that
  // only a real regression trips it.  B=16 is still reported above for
  // trend tracking.
  report.summary("batch_speedup_over_per_seed", fsync_speedup_at_16);
  report.summary("batch_speedup_target_met", fsync_speedup_at_64 >= 2.0);
  report.summary("batch_speedup_ssync", ssync_speedup_at_16);
  report.summary("batch_speedup_async", async_speedup_at_16);
  report.summary("batch_speedup_all_models", all_models_beat_per_seed);
  report.summary("batch_stats_identical", all_identical);
  // The wide-batch gates: B=256 must HOLD the B=64 speedup — the verdict is
  // a cache-tiling collapse detector (the pre-tiling engine fell to ~0.78x
  // of B=64 there), so it tolerates run-to-run parity noise (single-sample
  // series on shared boxes swing ~10%) but trips on a real falloff.  The
  // adaptive planner must route a single seed to the solo Engine.
  report.summary("batch_speedup_b256", fsync_speedup_at_256);
  report.summary("batch_b256_beats_b64",
                 smoke_mode ? fsync_speedup_at_256 > 0
                            : fsync_speedup_at_256 >=
                                  0.85 * fsync_speedup_at_64);
  report.summary(
      "adaptive_b1_routes_solo",
      !plan_batch(ExecutionModel::kFsync, kNodes, kRobots, 1, 1).use_batch());
}

// ---------------------------------------------------------------------------
// Intra-cell thread scaling: one wide FSYNC batch, replica blocks split
// across a pinned WorkerTeam.  The identity verdict (threads must be
// bit-identical to serial) gates everywhere; the speedup number is only
// meaningful on machines with >= 4 physical cores, so single-core CI boxes
// report it without gating on it.

void intra_cell_threads(BenchReport& report) {
  const std::uint32_t kNodes = smoke_mode ? 256 : 1024;
  const std::uint32_t kRobots = 16;
  const std::uint32_t kBatch = 256;
  const Time kRounds = smoke_mode ? 4000 : 20000;
  constexpr int kReps = 3;

  const HwTopology& topo = HwTopology::detect();
  const std::uint32_t team = std::min<std::uint32_t>(
      4, std::max<std::uint32_t>(2, topo.physical_cores));

  std::cout << "\n=== Intra-cell thread scaling [fsync]: one B=" << kBatch
            << " batch, 1 vs " << team << " worker threads (n=" << kNodes
            << ", k=" << kRobots << ", " << topo.physical_cores
            << " physical cores) ===\n";

  const Ring ring(kNodes);
  double serial_rps = 0;
  double threaded_rps = 0;
  bool identical = true;
  for (int rep = 0; rep < kReps; ++rep) {
    serial_rps = std::max(
        serial_rps, measure_batch_rps(ring, ExecutionModel::kFsync, kRobots,
                                      kBatch, kRounds, nullptr, 1));
    threaded_rps = std::max(
        threaded_rps,
        measure_batch_rps(ring, ExecutionModel::kFsync, kRobots, kBatch,
                          kRounds, rep == 0 ? &identical : nullptr, team));
  }
  const double scaling = serial_rps > 0 ? threaded_rps / serial_rps : 0;
  std::cout << "1 thread:  " << static_cast<std::uint64_t>(serial_rps)
            << " replica-rounds/sec\n"
            << team << " threads: "
            << static_cast<std::uint64_t>(threaded_rps)
            << " replica-rounds/sec (" << scaling
            << "x; stats identical to serial: " << (identical ? "yes" : "NO")
            << ")\n";

  report.add_rounds(2 * kReps * kRounds * kBatch);
  report.add_cell()
      .param("series", "intra-cell-threads")
      .param("model", "fsync")
      .param("n", std::uint64_t{kNodes})
      .param("k", std::uint64_t{kRobots})
      .param("batch", std::uint64_t{kBatch})
      .param("threads", std::uint64_t{team})
      .param("physical_cores", std::uint64_t{topo.physical_cores})
      .metric("serial_rounds_per_sec", serial_rps)
      .metric("threaded_rounds_per_sec", threaded_rps)
      .metric("thread_scaling", scaling)
      .metric("stats_identical", identical);
  report.summary("intra_cell_thread_scaling", scaling);
  report.summary("intra_cell_threads_identical", identical);
  // The speedup gate only binds where the hardware can show one.
  report.summary("intra_cell_scaling_target_met",
                 topo.physical_cores < 4 || scaling >= 1.5);
}

// ---------------------------------------------------------------------------
// Cycle fast-forward: one long-horizon deterministic FSYNC cell, plain vs
// the cycle detector.  Bit-identity of every statistic is the gate; the
// wall-clock ratio is the point of the feature (O(period) instead of
// O(horizon)).  The horizon stays at 1e6 even under --smoke: the plain run
// is milliseconds, and the CI gate wants the real speedup.

void cycle_fastforward(BenchReport& report) {
  std::cout << "\n=== Cycle fast-forward (plain vs detector, 1e6-round "
               "cell) ===\n";
  const std::uint32_t kNodes = 16;
  const std::uint32_t kRobots = 3;
  const Time kHorizon = 1'000'000;
  const Ring ring(kNodes);
  const auto build = [&](bool fast_forward) {
    EngineOptions options;
    options.fast_forward.enabled = fast_forward;
    return Engine(ring, make_algorithm("pef3+", 7),
                  std::make_unique<ObliviousAdversary>(
                      std::make_shared<PeriodicSchedule>(
                          PeriodicSchedule::rotating(ring, 3, 2))),
                  spread_placements(ring, kRobots), options);
  };

  // min-of-3 walls: the fast-forwarded run is microseconds, so single
  // samples are all noise.
  constexpr int kReps = 3;
  double plain_wall = 1e100;
  double ff_wall = 1e100;
  EngineStats a, b;
  CoverageReport ca, cb;
  Time rounds_simulated = 0;
  Time detected_period = 0;
  bool engaged = false;
  for (int rep = 0; rep < kReps; ++rep) {
    Engine plain = build(false);
    auto start = std::chrono::steady_clock::now();
    plain.run(kHorizon);
    plain_wall = std::min(
        plain_wall, std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count());
    b = plain.stats();
    cb = plain.coverage_report();

    Engine ff = build(true);
    start = std::chrono::steady_clock::now();
    ff.run(kHorizon);
    ff_wall = std::min(ff_wall, std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - start)
                                    .count());
    a = ff.stats();
    ca = ff.coverage_report();
    rounds_simulated = ff.rounds_simulated();
    detected_period = ff.detected_period();
    engaged = ff.fast_forwarded();
  }
  const bool identical =
      a.rounds == b.rounds && a.total_moves == b.total_moves &&
      a.tower_rounds == b.tower_rounds &&
      a.tower_formations == b.tower_formations &&
      a.visited_node_count == b.visited_node_count &&
      a.cover_time == b.cover_time && ca.visit_counts == cb.visit_counts &&
      ca.max_revisit_gap == cb.max_revisit_gap &&
      ca.max_closed_gap == cb.max_closed_gap;
  const double speedup = ff_wall > 0 ? plain_wall / ff_wall : 0;

  std::cout << "plain:        " << plain_wall << " s (" << kHorizon
            << " rounds)\n"
            << "fast-forward: " << ff_wall << " s (" << rounds_simulated
            << " rounds simulated, period " << detected_period << ")\n"
            << "speedup: " << speedup << "x (target >= 10)\n"
            << "bit-identical stats: " << (identical ? "yes" : "NO") << "\n";

  report.add_rounds(kReps * (kHorizon + rounds_simulated));
  report.add_cell()
      .param("series", "cycle-fastforward")
      .param("n", std::uint64_t{kNodes})
      .param("k", std::uint64_t{kRobots})
      .param("horizon", static_cast<std::uint64_t>(kHorizon))
      .metric("plain_wall_seconds", plain_wall)
      .metric("fastforward_wall_seconds", ff_wall)
      .metric("rounds_simulated", static_cast<std::uint64_t>(rounds_simulated))
      .metric("detected_period", static_cast<std::uint64_t>(detected_period))
      .metric("speedup", speedup)
      .metric("bit_identical", identical);
  report.summary("fastforward_speedup", speedup);
  report.summary("fastforward_bit_identical", identical);
  report.summary("fastforward_engaged", engaged);
}

void sweep_scaling(BenchReport& report) {
  std::cout << "\n=== SweepRunner thread scaling (same grid, 1 vs 4 "
               "threads) ===\n";
  SweepSpec spec = scaling_grid();
  // Large enough to clear SweepRunner's serial-fallback work threshold, so
  // multi-core machines actually exercise the pool (single-core boxes clamp
  // to one worker and the ratio hovers at 1.0 by construction).
  spec.horizon = smoke_mode ? 1000 : 20000;
  const SweepResult serial = SweepRunner(1).run(spec);
  const SweepResult parallel = SweepRunner(4).run(spec);
  const bool identical = serial.to_json() == parallel.to_json();
  const double ratio = serial.wall_seconds > 0
                           ? parallel.wall_seconds / serial.wall_seconds
                           : 0;
  std::cout << "cells: " << serial.cells.size() << "\n"
            << "1 thread:  " << serial.wall_seconds << " s ("
            << static_cast<std::uint64_t>(serial.rounds_per_sec())
            << " rounds/sec)\n"
            << "4 threads: " << parallel.wall_seconds << " s ("
            << static_cast<std::uint64_t>(parallel.rounds_per_sec())
            << " rounds/sec)\n"
            << "wall-time ratio: " << ratio
            << " (target <= 0.4 on >= 4 cores)\n"
            << "bit-identical JSON: " << (identical ? "yes" : "NO") << "\n";

  report.add_rounds(serial.total_rounds() + parallel.total_rounds());
  std::uint32_t hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;
  report.add_cell()
      .param("series", "sweep-thread-scaling")
      .param("cells", static_cast<std::uint64_t>(serial.cells.size()))
      .param("hardware_threads", std::uint64_t{hardware})
      .metric("serial_wall_seconds", serial.wall_seconds)
      .metric("parallel_wall_seconds", parallel.wall_seconds)
      .metric("parallel_over_serial", ratio)
      .metric("json_bit_identical", identical);
  report.summary("sweep_json_bit_identical", identical);
}

}  // namespace
}  // namespace pef

int main(int argc, char** argv) {
  // Strip --smoke before google-benchmark sees (and rejects) it.
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      pef::smoke_mode = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  pef::BenchReport report("scaling");
  pef::head_to_head(report);
  pef::model_axis(report);
  pef::batch_throughput(report);
  pef::intra_cell_threads(report);
  pef::cycle_fastforward(report);
  pef::sweep_scaling(report);
  report.write();
  return 0;
}
