// bench_scaling — simulator throughput as a function of ring size, robot
// count and adversary, for BOTH engines and BOTH dispatch paths:
//
//   * google-benchmark micro-benchmarks: Simulator vs FastEngine rounds/sec
//     across (n, k) and schedule families;
//   * a head-to-head macro measurement at n=4096, k=64 (trace recording off)
//     recorded in BENCH_scaling.json: Simulator vs Engine (virtual
//     dispatch — PR 1's FastEngine path) vs Engine (kernel dispatch), the
//     kernel column being the acceptance metric of the unification PR;
//   * the model axis at the same size: rounds/sec of the unified engine in
//     FSYNC / SSYNC / ASYNC under both dispatches;
//   * SweepRunner thread-scaling on a fixed grid (1 thread vs 4), with a
//     byte-identity check of the two JSON outputs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <iostream>

#include "adversary/proof_adversary.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "common/bench_report.hpp"
#include "core/experiment.hpp"
#include "dynamic_graph/schedules.hpp"
#include "engine/fast_engine.hpp"
#include "engine/sweep_runner.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

void BM_SimulatorRoundsStatic(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  const Ring ring(n);
  SimulatorOptions options;
  options.record_trace = false;
  Simulator sim(ring, make_algorithm("pef3+"),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                spread_placements(ring, k), options);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorRoundsStatic)
    ->Args({8, 3})
    ->Args({64, 3})
    ->Args({256, 3})
    ->Args({64, 8})
    ->Args({64, 32})
    ->Args({4096, 64});

void BM_FastEngineRoundsStatic(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  const Ring ring(n);
  FastEngine engine(ring, make_algorithm("pef3+"),
                    make_oblivious(std::make_shared<StaticSchedule>(ring)),
                    spread_placements(ring, k));
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FastEngineRoundsStatic)
    ->Args({8, 3})
    ->Args({64, 3})
    ->Args({256, 3})
    ->Args({64, 8})
    ->Args({64, 32})
    ->Args({4096, 64});

void BM_SimulatorRoundsBernoulli(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Ring ring(n);
  SimulatorOptions options;
  options.record_trace = false;
  Simulator sim(
      ring, make_algorithm("pef3+"),
      make_oblivious(std::make_shared<BernoulliSchedule>(ring, 0.5, 1)),
      spread_placements(ring, 3), options);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorRoundsBernoulli)->Arg(8)->Arg(64)->Arg(256);

void BM_FastEngineRoundsBernoulli(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Ring ring(n);
  FastEngine engine(
      ring, make_algorithm("pef3+"),
      make_oblivious(std::make_shared<BernoulliSchedule>(ring, 0.5, 1)),
      spread_placements(ring, 3));
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FastEngineRoundsBernoulli)->Arg(8)->Arg(64)->Arg(256);

void BM_StagedProofAdversary(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Ring ring(n);
  SimulatorOptions options;
  options.record_trace = false;
  Simulator sim(ring, make_algorithm("bounce"),
                std::make_unique<StagedProofAdversary>(ring, 0, 3, 64),
                {{0, Chirality(true)}, {1, Chirality(true)}}, options);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StagedProofAdversary)->Arg(8)->Arg(64)->Arg(256);

void BM_FastEngineStagedProofAdversary(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Ring ring(n);
  FastEngine engine(ring, make_algorithm("bounce"),
                    std::make_unique<StagedProofAdversary>(ring, 0, 3, 64),
                    {{0, Chirality(true)}, {1, Chirality(true)}});
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FastEngineStagedProofAdversary)->Arg(8)->Arg(64)->Arg(256);

void BM_ScheduleQuery(benchmark::State& state) {
  const Ring ring(static_cast<std::uint32_t>(state.range(0)));
  const BernoulliSchedule schedule(ring, 0.5, 7);
  Time t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule.edges_at(t++));
  }
}
BENCHMARK(BM_ScheduleQuery)->Arg(8)->Arg(64)->Arg(512);

void BM_ScheduleQueryInPlace(benchmark::State& state) {
  const Ring ring(static_cast<std::uint32_t>(state.range(0)));
  const BernoulliSchedule schedule(ring, 0.5, 7);
  EdgeSet scratch(ring.edge_count());
  Time t = 0;
  for (auto _ : state) {
    schedule.edges_into(t++, scratch);
    benchmark::DoNotOptimize(scratch);
  }
}
BENCHMARK(BM_ScheduleQueryInPlace)->Arg(8)->Arg(64)->Arg(512);

/// Cover time of PEF_3+ as a function of n (reported as a counter so the
/// scaling series prints alongside the timing output).  Runs on FastEngine;
/// the coverage numbers are engine-independent (differential-tested).
void BM_CoverTimeVsN(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Ring ring(n);
  double total_cover = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    auto schedule =
        std::make_shared<BernoulliSchedule>(ring, 0.5, 100 + runs);
    FastEngine engine(ring, make_algorithm("pef3+"),
                      make_oblivious(schedule), spread_placements(ring, 3));
    engine.run(200 * n);
    const auto coverage = engine.coverage_report();
    total_cover += coverage.cover_time
                       ? static_cast<double>(*coverage.cover_time)
                       : static_cast<double>(200 * n);
    ++runs;
  }
  state.counters["cover_time_mean"] =
      total_cover / static_cast<double>(runs);
}
BENCHMARK(BM_CoverTimeVsN)->Arg(6)->Arg(12)->Arg(24)->Arg(48)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Head-to-head macro measurement + BENCH_scaling.json.

double measure_simulator_rps(std::uint32_t n, std::uint32_t k, Time rounds) {
  const Ring ring(n);
  SimulatorOptions options;
  options.record_trace = false;
  Simulator sim(ring, make_algorithm("pef3+"),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                spread_placements(ring, k), options);
  const auto start = std::chrono::steady_clock::now();
  sim.run(rounds);
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  return static_cast<double>(rounds) / secs;
}

double run_and_time(Engine& engine, Time rounds) {
  const auto start = std::chrono::steady_clock::now();
  engine.run(rounds);
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  return static_cast<double>(rounds) / secs;
}

/// Unified-engine rounds/sec at one (model, dispatch) grid point, over the
/// static schedule (SSYNC under fair Bernoulli activation, ASYNC under fair
/// Bernoulli phase advancement).
double measure_engine_rps(ExecutionModel model, ComputeDispatch dispatch,
                          std::uint32_t n, std::uint32_t k, Time rounds) {
  const Ring ring(n);
  EngineOptions options;
  options.dispatch = dispatch;
  auto schedule = std::make_shared<StaticSchedule>(ring);
  switch (model) {
    case ExecutionModel::kFsync: {
      Engine engine(ring, make_algorithm("pef3+"), make_oblivious(schedule),
                    spread_placements(ring, k), options);
      return run_and_time(engine, rounds);
    }
    case ExecutionModel::kSsync: {
      Engine engine(ring, make_algorithm("pef3+"),
                    std::make_unique<SsyncObliviousAdversary>(schedule),
                    std::make_unique<BernoulliActivation>(0.5, 1),
                    spread_placements(ring, k), options);
      return run_and_time(engine, rounds);
    }
    case ExecutionModel::kAsync: {
      Engine engine(ring, make_algorithm("pef3+"),
                    std::make_unique<SsyncObliviousAdversary>(schedule),
                    std::make_unique<BernoulliPhases>(0.5, 1),
                    spread_placements(ring, k), options);
      return run_and_time(engine, rounds);
    }
  }
  return 0;
}

SweepGrid scaling_grid() {
  SweepGrid grid;
  grid.algorithms = {"pef3+", "bounce", "keep-direction"};
  grid.adversaries = {static_spec(), bernoulli_spec(0.5),
                      bounded_absence_spec(6)};
  grid.ring_sizes = {16, 64};
  grid.robot_counts = {3, 8};
  grid.seeds = {1, 2, 3, 4};
  grid.horizon = 4000;
  return grid;
}

void head_to_head(BenchReport& report) {
  constexpr std::uint32_t kNodes = 4096;
  constexpr std::uint32_t kRobots = 64;
  constexpr Time kSimRounds = 4000;
  constexpr Time kFastRounds = 40000;

  std::cout << "\n=== Head to head: Simulator vs Engine virtual vs Engine "
               "kernel (n="
            << kNodes << ", k=" << kRobots
            << ", static schedule, no trace) ===\n";
  const double sim_rps = measure_simulator_rps(kNodes, kRobots, kSimRounds);
  // Virtual dispatch is PR 1's FastEngine path; kernel dispatch is the
  // devirtualized POD path of the unification PR.  Interleaved best-of-3:
  // a single sample on a loaded single-core box can swing ~20%, which
  // would make the kernel-vs-virtual verdict a coin flip.
  double virtual_rps = 0;
  double kernel_rps = 0;
  for (int rep = 0; rep < 3; ++rep) {
    virtual_rps = std::max(
        virtual_rps,
        measure_engine_rps(ExecutionModel::kFsync, ComputeDispatch::kVirtual,
                           kNodes, kRobots, kFastRounds));
    kernel_rps = std::max(
        kernel_rps,
        measure_engine_rps(ExecutionModel::kFsync, ComputeDispatch::kKernel,
                           kNodes, kRobots, kFastRounds));
  }
  const double speedup = virtual_rps / sim_rps;
  const double kernel_speedup = kernel_rps / virtual_rps;
  std::cout << "Simulator:        " << static_cast<std::uint64_t>(sim_rps)
            << " rounds/sec\n"
            << "Engine (virtual): " << static_cast<std::uint64_t>(virtual_rps)
            << " rounds/sec (" << speedup << "x vs Simulator, target >= 5x)\n"
            << "Engine (kernel):  " << static_cast<std::uint64_t>(kernel_rps)
            << " rounds/sec (" << kernel_speedup
            << "x vs virtual, target > 1x)\n";

  report.add_rounds(kSimRounds + 6 * kFastRounds);
  report.add_cell()
      .param("series", "head-to-head")
      .param("n", std::uint64_t{kNodes})
      .param("k", std::uint64_t{kRobots})
      .param("schedule", "static")
      .metric("simulator_rounds_per_sec", sim_rps)
      .metric("fast_engine_rounds_per_sec", virtual_rps)
      .metric("kernel_engine_rounds_per_sec", kernel_rps)
      .metric("speedup", speedup)
      .metric("kernel_speedup_over_virtual", kernel_speedup);
  report.summary("fast_engine_speedup", speedup);
  report.summary("speedup_target_met", speedup >= 5.0);
  report.summary("kernel_speedup_over_virtual", kernel_speedup);
  report.summary("kernel_beats_virtual", kernel_rps > virtual_rps);
}

void model_axis(BenchReport& report) {
  constexpr std::uint32_t kNodes = 4096;
  constexpr std::uint32_t kRobots = 64;
  constexpr Time kRounds = 20000;

  std::cout << "\n=== Model axis: unified engine rounds/sec (n=" << kNodes
            << ", k=" << kRobots << ", static schedule, no trace) ===\n";
  for (const ExecutionModel model :
       {ExecutionModel::kFsync, ExecutionModel::kSsync,
        ExecutionModel::kAsync}) {
    const double virtual_rps = measure_engine_rps(
        model, ComputeDispatch::kVirtual, kNodes, kRobots, kRounds);
    const double kernel_rps = measure_engine_rps(
        model, ComputeDispatch::kKernel, kNodes, kRobots, kRounds);
    std::cout << to_string(model) << ": virtual "
              << static_cast<std::uint64_t>(virtual_rps) << " rounds/sec, "
              << "kernel " << static_cast<std::uint64_t>(kernel_rps)
              << " rounds/sec (" << kernel_rps / virtual_rps << "x)\n";
    report.add_rounds(2 * kRounds);
    report.add_cell()
        .param("series", "model-axis")
        .param("model", to_string(model))
        .param("n", std::uint64_t{kNodes})
        .param("k", std::uint64_t{kRobots})
        .metric("virtual_rounds_per_sec", virtual_rps)
        .metric("kernel_rounds_per_sec", kernel_rps)
        .metric("kernel_speedup_over_virtual", kernel_rps / virtual_rps);
  }
}

void sweep_scaling(BenchReport& report) {
  std::cout << "\n=== SweepRunner thread scaling (same grid, 1 vs 4 "
               "threads) ===\n";
  const SweepGrid grid = scaling_grid();
  const SweepResult serial = SweepRunner(1).run(grid);
  const SweepResult parallel = SweepRunner(4).run(grid);
  const bool identical = serial.to_json() == parallel.to_json();
  const double ratio = serial.wall_seconds > 0
                           ? parallel.wall_seconds / serial.wall_seconds
                           : 0;
  std::cout << "cells: " << serial.cells.size() << "\n"
            << "1 thread:  " << serial.wall_seconds << " s ("
            << static_cast<std::uint64_t>(serial.rounds_per_sec())
            << " rounds/sec)\n"
            << "4 threads: " << parallel.wall_seconds << " s ("
            << static_cast<std::uint64_t>(parallel.rounds_per_sec())
            << " rounds/sec)\n"
            << "wall-time ratio: " << ratio
            << " (target <= 0.4 on >= 4 cores)\n"
            << "bit-identical JSON: " << (identical ? "yes" : "NO") << "\n";

  report.add_rounds(serial.total_rounds() + parallel.total_rounds());
  report.add_cell()
      .param("series", "sweep-thread-scaling")
      .param("cells", static_cast<std::uint64_t>(serial.cells.size()))
      .metric("serial_wall_seconds", serial.wall_seconds)
      .metric("parallel_wall_seconds", parallel.wall_seconds)
      .metric("parallel_over_serial", ratio)
      .metric("json_bit_identical", identical);
  report.summary("sweep_json_bit_identical", identical);
}

}  // namespace
}  // namespace pef

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  pef::BenchReport report("scaling");
  pef::head_to_head(report);
  pef::model_axis(report);
  pef::sweep_scaling(report);
  report.write();
  return 0;
}
