// bench_fig3_thm51 — regenerates Figure 3 / Theorem 5.1: a single fully
// synchronous robot cannot perpetually explore a connected-over-time ring
// of size >= 3.
//
// The staged adversary alternates removing e_ur until the robot leaves u,
// then e_vl until it leaves v (Figure 3's two-panel surgery), confining the
// robot to {u, v} forever; camping algorithms are handled by the terminal
// single-eventual-missing-edge fallback.
#include <iostream>
#include <string>
#include <vector>

#include "adversary/proof_adversary.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "common/args.hpp"
#include "common/bench_report.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "dynamic_graph/properties.hpp"
#include "engine/engine.hpp"
#include "scheduler/simulator.hpp"

int main(int argc, char** argv) {
  using namespace pef;

  // No flags yet — but a typo'd flag must fail loudly, not run the
  // whole bench with the flag silently ignored.
  ArgParser args(argc, argv);
  args.check_unused();

  std::cout << "=== Figure 3 / Theorem 5.1: one robot, ring size >= 3 ===\n"
            << "Staged proof adversary (window {u, v}, patience 64).\n\n";

  TextTable table({"n", "algorithm", "visited", "perpetual", "stages",
                   "terminal", "legal"});
  CsvWriter csv("fig3_thm51.csv", {"n", "algorithm", "visited", "perpetual",
                                   "stages", "terminal", "legal"});
  BenchReport report("fig3_thm51");

  bool all_defeated = true;
  for (std::uint32_t n : {3u, 5u, 8u, 12u}) {
    for (const std::string& name : deterministic_algorithm_names()) {
      const Ring ring(n);
      auto adversary = std::make_unique<StagedProofAdversary>(
          ring, /*anchor=*/0, /*width=*/2, /*patience=*/64);
      auto* handle = adversary.get();
      EngineOptions options;
      options.record_trace = true;  // the legality audit reads edge history
      Engine sim(ring, make_algorithm(name), std::move(adversary),
                     {{0, Chirality(true)}}, options);
      sim.run(600 * n);
      report.add_rounds(600 * n);
      const auto coverage = sim.coverage_report();
      const auto audit = audit_connectivity(
          ring, sim.trace().edge_history(), /*patience=*/150 * n);
      const bool defeated = !coverage.perpetual(n);
      all_defeated = all_defeated && defeated && audit.connected_over_time;
      table.add_row({std::to_string(n), name,
                     std::to_string(coverage.visited_node_count) + "/" +
                         std::to_string(n),
                     format_bool(coverage.perpetual(n)),
                     std::to_string(handle->stages_completed()),
                     format_bool(handle->in_terminal_mode()),
                     format_bool(audit.connected_over_time)});
      csv.add_row({std::to_string(n), name,
                   std::to_string(coverage.visited_node_count),
                   format_bool(coverage.perpetual(n)),
                   std::to_string(handle->stages_completed()),
                   format_bool(handle->in_terminal_mode()),
                   format_bool(audit.connected_over_time)});
      report.add_cell()
          .param("n", std::uint64_t{n})
          .param("algorithm", name)
          .metric("visited_nodes", std::uint64_t{coverage.visited_node_count})
          .metric("perpetual", coverage.perpetual(n))
          .metric("stages", std::uint64_t{handle->stages_completed()})
          .metric("terminal_mode", handle->in_terminal_mode())
          .metric("legal", audit.connected_over_time);
    }
    table.add_separator();
  }
  table.print(std::cout);

  std::cout << "\nStage log excerpt (n=5, algorithm=bounce) — the Figure 3 "
               "alternation (u=0, v=1):\n";
  {
    const Ring ring(5);
    auto adversary = std::make_unique<StagedProofAdversary>(ring, 0, 2, 64);
    auto* handle = adversary.get();
    Simulator sim(ring, make_algorithm("bounce"), std::move(adversary),
                  {{0, Chirality(true)}});
    sim.run(40);
    TextTable stages({"stage", "rounds", "moves", "removed edge"});
    const auto& log = handle->stage_log();
    for (std::size_t i = 0; i < log.size() && i < 8; ++i) {
      stages.add_row({std::to_string(i + 1),
                      "[" + std::to_string(log[i].start) + ", " +
                          std::to_string(log[i].end) + "]",
                      std::to_string(log[i].from) + " -> " +
                          std::to_string(log[i].to),
                      "e" + std::to_string(log[i].removed_edges.empty()
                                               ? 999
                                               : log[i].removed_edges[0])});
    }
    stages.print(std::cout);
  }

  std::cout << "\nReproduction " << (all_defeated ? "HOLDS" : "FAILS")
            << ": a single robot never sees more than 2 nodes of any ring "
               "of size >= 3, under a connected-over-time prefix.\n";
  report.summary("reproduction_holds", all_defeated);
  report.write();
  return all_defeated ? 0 : 1;
}
