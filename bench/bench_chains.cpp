// bench_chains — the paper's closing remark: "a connected-over-time chain
// can be seen as a connected-over-time ring with a missing edge.  So, our
// results are also valid on connected-over-time chains."
//
// Regenerates TABLE 1 on chains: possible cells run the recommended
// algorithm on chains whose surviving edges follow the battery's dynamics;
// impossible cells reuse the staged proof adversaries with the
// confinement window placed away from the cut edge.
#include <iostream>
#include <string>
#include <vector>

#include "adversary/proof_adversary.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "common/args.hpp"
#include "common/bench_report.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/computability.hpp"
#include "dynamic_graph/chain.hpp"
#include "dynamic_graph/properties.hpp"
#include "engine/engine.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

constexpr std::uint32_t kSeeds = 8;

/// Chain dynamics battery: the surviving n-1 edges follow each base family.
std::vector<std::pair<std::string, SchedulePtr>> chain_battery(
    const Ring& ring, std::uint64_t seed) {
  std::vector<std::pair<std::string, SchedulePtr>> out;
  out.emplace_back("static", ChainSchedule::cut_last(
                                 std::make_shared<StaticSchedule>(ring)));
  out.emplace_back("bernoulli(0.5)",
                   ChainSchedule::cut_last(std::make_shared<BernoulliSchedule>(
                       ring, 0.5, seed)));
  out.emplace_back(
      "bounded-absence",
      ChainSchedule::cut_last(std::make_shared<BoundedAbsenceSchedule>(
          ring, 5, 8, seed)));
  return out;
}

bool chain_possible(std::uint32_t n, std::uint32_t k) {
  const std::string algo = computability::recommended_algorithm(k, n);
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    for (const auto& [name, schedule] : chain_battery(Ring(n), seed)) {
      Engine engine(Ring(n), make_algorithm(algo),
                        make_oblivious(schedule),
                        spread_placements(Ring(n), k));
      engine.run(600 * n);
      if (!engine.coverage_report().perpetual(n)) return false;
    }
  }
  return true;
}

bool chain_impossible(std::uint32_t n, std::uint32_t k) {
  // Window {1, ..., k+1} keeps clear of the cut edge (n-1, 0).
  for (const std::string& name : deterministic_algorithm_names()) {
    const Ring ring(n);
    std::vector<RobotPlacement> placements;
    for (std::uint32_t i = 0; i < k; ++i) {
      placements.push_back({static_cast<NodeId>(1 + i), Chirality(true)});
    }
    Engine engine(
        ring, make_algorithm(name),
        std::make_unique<StagedProofAdversary>(ring, 1, k + 1, 64),
        placements);
    engine.run(500 * n);
    if (engine.coverage_report().perpetual(n)) return false;
  }
  return true;
}

}  // namespace
}  // namespace pef

int main(int argc, char** argv) {
  using namespace pef;

  // No flags yet — but a typo'd flag must fail loudly, not run the
  // whole bench with the flag silently ignored.
  ArgParser args(argc, argv);
  args.check_unused();

  std::cout << "=== TABLE 1 on connected-over-time chains ===\n"
            << "(paper, Section 1: results carry over to chains)\n\n";

  TextTable table(
      {"robots", "chain size", "paper", "measured", "workload"});
  CsvWriter csv("chains.csv", {"robots", "nodes", "paper", "measured"});
  BenchReport report("chains");

  struct Cell {
    std::uint32_t k;
    std::uint32_t n;
    bool possible;
  };
  const std::vector<Cell> cells = {
      {3, 4, true},  {3, 8, true},  {4, 10, true}, {2, 3, true},
      {2, 4, false}, {2, 8, false}, {1, 2, true},  {1, 3, false},
      {1, 6, false},
  };

  bool holds = true;
  for (const Cell& cell : cells) {
    const bool measured = cell.possible ? chain_possible(cell.n, cell.k)
                                        : !chain_impossible(cell.n, cell.k);
    const bool match = measured == cell.possible;
    holds = holds && match;
    table.add_row({std::to_string(cell.k), std::to_string(cell.n),
                   cell.possible ? "Possible" : "Impossible",
                   (measured ? "Possible" : "Impossible") +
                       std::string(match ? "" : "  <-- MISMATCH"),
                   cell.possible ? "chain battery" : "proof adversary"});
    csv.add_row({std::to_string(cell.k), std::to_string(cell.n),
                 cell.possible ? "Possible" : "Impossible",
                 measured ? "Possible" : "Impossible"});
    report.add_rounds(cell.possible
                          ? std::uint64_t{kSeeds} * 3 * 600 * cell.n
                          : static_cast<std::uint64_t>(
                                deterministic_algorithm_names().size()) *
                                500 * cell.n);
    report.add_cell()
        .param("k", std::uint64_t{cell.k})
        .param("n", std::uint64_t{cell.n})
        .param("workload",
               cell.possible ? "chain battery" : "proof adversary")
        .metric("paper_possible", cell.possible)
        .metric("measured_possible", measured)
        .metric("match", match);
  }
  table.print(std::cout);
  std::cout << "\nChain reproduction " << (holds ? "HOLDS" : "FAILS")
            << ".\n";
  report.summary("reproduction_holds", holds);
  report.write();
  return holds ? 0 : 1;
}
