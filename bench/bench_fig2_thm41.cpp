// bench_fig2_thm41 — regenerates Figure 2 / Theorem 4.1: two fully
// synchronous robots cannot perpetually explore a connected-over-time ring
// of size >= 4.
//
// The staged proof adversary reproduces the inductive surgery of the proof
// (Items 1-8): freeze one robot, leave the other a single inward edge
// (OneEdge), rotate.  Output:
//   * one row per (ring size, algorithm): nodes visited vs n, number of
//     completed stages, whether the adversary had to fall back to terminal
//     mode (a single eventual missing edge, for camping algorithms), and
//     the connected-over-time audit of the realized prefix;
//   * the first 8 entries of the stage log for one run — the v->w, u->v,
//     v->u, w->v rotation of Figure 2.
#include <iostream>
#include <string>
#include <vector>

#include "adversary/proof_adversary.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "common/args.hpp"
#include "common/bench_report.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "dynamic_graph/properties.hpp"
#include "engine/engine.hpp"
#include "scheduler/simulator.hpp"

int main(int argc, char** argv) {
  using namespace pef;

  // No flags yet — but a typo'd flag must fail loudly, not run the
  // whole bench with the flag silently ignored.
  ArgParser args(argc, argv);
  args.check_unused();

  std::cout << "=== Figure 2 / Theorem 4.1: two robots, ring size >= 4 ===\n"
            << "Staged proof adversary (window {u, v, w}, patience 64).\n\n";

  TextTable table({"n", "algorithm", "visited", "perpetual", "stages",
                   "terminal", "legal", "max gap"});
  CsvWriter csv("fig2_thm41.csv", {"n", "algorithm", "visited", "perpetual",
                                   "stages", "terminal", "legal"});
  BenchReport report("fig2_thm41");

  bool all_defeated = true;
  for (std::uint32_t n : {4u, 6u, 8u, 12u}) {
    for (const std::string& name : deterministic_algorithm_names()) {
      const Ring ring(n);
      auto adversary = std::make_unique<StagedProofAdversary>(
          ring, /*anchor=*/0, /*width=*/3, /*patience=*/64);
      auto* handle = adversary.get();
      EngineOptions options;
      options.record_trace = true;  // the legality audit reads edge history
      Engine sim(ring, make_algorithm(name), std::move(adversary),
                     {{0, Chirality(true)}, {1, Chirality(true)}}, options);
      sim.run(600 * n);
      report.add_rounds(600 * n);
      const auto coverage = sim.coverage_report();
      const auto audit = audit_connectivity(
          ring, sim.trace().edge_history(), /*patience=*/150 * n);
      const bool defeated = !coverage.perpetual(n);
      all_defeated = all_defeated && defeated && audit.connected_over_time;
      table.add_row({std::to_string(n), name,
                     std::to_string(coverage.visited_node_count) + "/" +
                         std::to_string(n),
                     format_bool(coverage.perpetual(n)),
                     std::to_string(handle->stages_completed()),
                     format_bool(handle->in_terminal_mode()),
                     format_bool(audit.connected_over_time),
                     std::to_string(coverage.max_revisit_gap)});
      csv.add_row({std::to_string(n), name,
                   std::to_string(coverage.visited_node_count),
                   format_bool(coverage.perpetual(n)),
                   std::to_string(handle->stages_completed()),
                   format_bool(handle->in_terminal_mode()),
                   format_bool(audit.connected_over_time)});
      report.add_cell()
          .param("n", std::uint64_t{n})
          .param("algorithm", name)
          .metric("visited_nodes", std::uint64_t{coverage.visited_node_count})
          .metric("perpetual", coverage.perpetual(n))
          .metric("stages", std::uint64_t{handle->stages_completed()})
          .metric("terminal_mode", handle->in_terminal_mode())
          .metric("legal", audit.connected_over_time);
    }
    table.add_separator();
  }
  table.print(std::cout);

  // The Figure-2 rotation, shown against the bounce baseline (which keeps
  // departing under OneEdge, so staging runs forever).
  std::cout << "\nStage log excerpt (n=8, algorithm=bounce) — the Figure 2 "
               "rotation (u=0, v=1, w=2):\n";
  {
    const Ring ring(8);
    auto adversary = std::make_unique<StagedProofAdversary>(ring, 0, 3, 64);
    auto* handle = adversary.get();
    Simulator sim(ring, make_algorithm("bounce"), std::move(adversary),
                  {{0, Chirality(true)}, {1, Chirality(true)}});
    sim.run(200);
    TextTable stages({"stage", "rounds", "designated robot", "moves",
                      "removed edges (paper: G_{i+1} surgery)"});
    const auto& log = handle->stage_log();
    for (std::size_t i = 0; i < log.size() && i < 8; ++i) {
      std::string removed;
      for (EdgeId e : log[i].removed_edges) {
        if (!removed.empty()) removed += ", ";
        removed += "e" + std::to_string(e);
      }
      stages.add_row({std::to_string(i + 1),
                      "[" + std::to_string(log[i].start) + ", " +
                          std::to_string(log[i].end) + "]",
                      "r" + std::to_string(log[i].designated),
                      std::to_string(log[i].from) + " -> " +
                          std::to_string(log[i].to),
                      "{" + removed + "}"});
    }
    stages.print(std::cout);
  }

  std::cout << "\nReproduction " << (all_defeated ? "HOLDS" : "FAILS")
            << ": every deterministic algorithm is confined (or starved by "
               "the terminal single-missing-edge fallback) on every ring of "
               "size >= 4, with a connected-over-time prefix.\n";
  report.summary("reproduction_holds", all_defeated);
  report.write();
  return all_defeated ? 0 : 1;
}
