// bench_stress — dynamics-sensitivity sweep (extension bench of DESIGN.md):
// how the exploration quality of PEF_3+ degrades as the adversary gets
// harsher, versus the baselines.
//
// Series 1: max revisit gap vs Bernoulli presence probability p.
// Series 2: max revisit gap vs Markov failure burst length (1/p_recover).
// Series 3: the legality-capped greedy blocker (the worst legal
//           round-by-round choice) vs absence budget A.
//
// Expected shape: PEF_3+'s gap grows smoothly as dynamics harshen but the
// perpetual verdict never flips (Theorem 3.1 is adversary-universal).
// bounce tracks the others on the oblivious series but is *pinned forever*
// by the adaptive greedy blocker: it flips direction every round the
// pointed edge is missing, so the blocker alternates the robot's two edges
// one round each — every absence run has length 1 (maximally legal), yet
// the robot never coincides with a present pointed edge.  keep-direction
// never flips, so the budget forces its edge open every A+1 rounds and it
// keeps exploring here (it fails on eventual-missing workloads instead).
#include <iostream>
#include <string>
#include <vector>

#include "adversary/greedy_blocker.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "analysis/stats.hpp"
#include "common/args.hpp"
#include "common/bench_report.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "dynamic_graph/markov_schedule.hpp"
#include "dynamic_graph/schedules.hpp"
#include "engine/engine.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

constexpr std::uint32_t kNodes = 10;
constexpr std::uint32_t kRobots = 3;
constexpr std::uint32_t kSeeds = 6;
constexpr Time kHorizon = 8000;

struct SeriesPoint {
  bool perpetual = true;
  Summary gap;
};

template <typename MakeAdversary>
SeriesPoint run_point(const std::string& algo, MakeAdversary&& make) {
  // Engine without a trace: the coverage metrics come from the engine's
  // incremental bookkeeping (differential-tested against analyze_coverage).
  SeriesPoint point;
  std::vector<double> gaps;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const Ring ring(kNodes);
    Engine engine(ring, make_algorithm(algo), make(ring, seed),
                      spread_placements(ring, kRobots));
    engine.run(kHorizon);
    const auto coverage = engine.coverage_report();
    point.perpetual = point.perpetual && coverage.perpetual(kNodes);
    gaps.push_back(static_cast<double>(coverage.max_revisit_gap));
  }
  point.gap = summarize(gaps);
  return point;
}

std::string cell(const SeriesPoint& p) {
  if (!p.perpetual) return "FAILS";
  return format_double(p.gap.mean, 0) + " (max " +
         format_double(p.gap.max, 0) + ")";
}

}  // namespace
}  // namespace pef

int main(int argc, char** argv) {
  using namespace pef;

  // No flags yet — but a typo'd flag must fail loudly, not run the
  // whole bench with the flag silently ignored.
  ArgParser args(argc, argv);
  args.check_unused();

  const std::vector<std::string> algos = {"pef3+", "bounce",
                                          "keep-direction"};

  std::cout << "=== Dynamics sensitivity (n=" << kNodes << ", k=" << kRobots
            << ", horizon=" << kHorizon << ", " << kSeeds
            << " seeds; cells = mean max-revisit-gap) ===\n\n";

  CsvWriter csv("stress.csv",
                {"series", "parameter", "algorithm", "perpetual",
                 "gap_mean", "gap_max"});
  BenchReport report("stress");
  const auto record = [&report](const std::string& series, double parameter,
                                const std::string& algo,
                                const SeriesPoint& point) {
    report.add_rounds(static_cast<std::uint64_t>(kSeeds) * kHorizon);
    report.add_cell()
        .param("series", series)
        .param("parameter", parameter)
        .param("algorithm", algo)
        .param("n", std::uint64_t{kNodes})
        .param("k", std::uint64_t{kRobots})
        .param("horizon", std::uint64_t{kHorizon})
        .param("seeds", std::uint64_t{kSeeds})
        .metric("perpetual", point.perpetual)
        .metric("gap_mean", point.gap.mean)
        .metric("gap_max", point.gap.max);
  };

  // --- Series 1: Bernoulli presence probability ---------------------------
  std::cout << "Series 1: iid presence probability p\n";
  {
    TextTable table({"p", "pef3+", "bounce", "keep-direction"});
    for (double p : {0.9, 0.5, 0.2, 0.1, 0.05}) {
      std::vector<std::string> row{format_double(p, 2)};
      for (const std::string& algo : algos) {
        const auto point = run_point(algo, [p](const Ring& ring,
                                               std::uint64_t seed) {
          return make_oblivious(
              std::make_shared<BernoulliSchedule>(ring, p, seed));
        });
        row.push_back(cell(point));
        record("bernoulli", p, algo, point);
        csv.add_row({"bernoulli", format_double(p, 2), algo,
                     format_bool(point.perpetual),
                     format_double(point.gap.mean, 1),
                     format_double(point.gap.max, 0)});
      }
      table.add_row(row);
    }
    table.print(std::cout);
  }

  // --- Series 2: Markov burst length --------------------------------------
  std::cout << "\nSeries 2: Markov failure bursts (p_fail=0.1, expected "
               "down-run 1/p_recover)\n";
  {
    TextTable table({"mean burst", "pef3+", "bounce", "keep-direction"});
    for (double p_recover : {0.5, 0.25, 0.1, 0.05}) {
      std::vector<std::string> row{format_double(1.0 / p_recover, 0)};
      for (const std::string& algo : algos) {
        const auto point =
            run_point(algo, [p_recover](const Ring& ring,
                                        std::uint64_t seed) {
              return make_oblivious(std::make_shared<MarkovSchedule>(
                  ring, 0.1, p_recover, seed));
            });
        row.push_back(cell(point));
        record("markov", 1.0 / p_recover, algo, point);
        csv.add_row({"markov", format_double(1.0 / p_recover, 1), algo,
                     format_bool(point.perpetual),
                     format_double(point.gap.mean, 1),
                     format_double(point.gap.max, 0)});
      }
      table.add_row(row);
    }
    table.print(std::cout);
  }

  // --- Series 3: greedy blocker budget ------------------------------------
  std::cout << "\nSeries 3: greedy pointed-edge blocker, absence budget A\n";
  {
    TextTable table({"A", "pef3+", "bounce", "keep-direction"});
    for (Time budget : {Time{2}, Time{4}, Time{8}, Time{16}}) {
      std::vector<std::string> row{std::to_string(budget)};
      for (const std::string& algo : algos) {
        const auto point =
            run_point(algo, [budget](const Ring& ring, std::uint64_t) {
              return std::make_unique<GreedyBlockerAdversary>(ring, budget);
            });
        row.push_back(cell(point));
        record("greedy-blocker", static_cast<double>(budget), algo, point);
        csv.add_row({"greedy-blocker", std::to_string(budget), algo,
                     format_bool(point.perpetual),
                     format_double(point.gap.mean, 1),
                     format_double(point.gap.max, 0)});
      }
      table.add_row(row);
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: pef3+ never flips to FAILS anywhere "
               "(Theorem 3.1); gaps grow as dynamics harshen.\n";
  report.write();
  return 0;
}
