// bench_thm31_pef3plus — validates Theorem 3.1 at scale: PEF_3+ perpetually
// explores every connected-over-time ring of size n > k with k >= 3 robots.
//
// Sweeps (k, n) across the standard adversary battery and reports, per
// cell: perpetual verdict across all runs, mean/max revisit gap, mean cover
// time, tower-lemma checks (Lemmas 3.3 / 3.4) and sentinel formation on the
// eventual-missing-edge workloads (Lemma 3.7).
#include <iostream>
#include <string>
#include <vector>

#include "algorithms/registry.hpp"
#include "analysis/sentinels.hpp"
#include "analysis/stats.hpp"
#include "common/args.hpp"
#include "common/bench_report.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "dynamic_graph/schedules.hpp"
#include "engine/engine.hpp"

int main(int argc, char** argv) {
  using namespace pef;

  // No flags yet — but a typo'd flag must fail loudly, not run the
  // whole bench with the flag silently ignored.
  ArgParser args(argc, argv);
  args.check_unused();

  constexpr std::uint32_t kSeeds = 8;

  std::cout << "=== Theorem 3.1: PEF_3+ with k >= 3 robots, n > k ===\n"
            << "Standard adversary battery, " << kSeeds
            << " seeds per (cell, adversary).\n\n";

  TextTable table({"k", "n", "perpetual", "gap mean", "gap max",
                   "cover mean", "towers<=2", "opp dirs"});
  CsvWriter csv("thm31_pef3plus.csv",
                {"k", "n", "perpetual", "gap_mean", "gap_max", "cover_mean",
                 "lemma34", "lemma33"});
  BenchReport bench_report("thm31_pef3plus");

  bool all_perpetual = true;
  for (std::uint32_t k : {3u, 4u, 5u}) {
    for (std::uint32_t n : {k + 1, k + 3, 2 * k + 2, 16u}) {
      if (n <= k) continue;
      bool cell_perpetual = true;
      bool lemma34 = true;
      bool lemma33 = true;
      std::vector<double> gaps;
      std::vector<double> covers;
      for (const AdversaryConfig& adversary : standard_battery_configs()) {
        ScenarioSpec spec;
        spec.nodes = n;
        spec.robots = k;
        spec.algorithm = "pef3+";
        spec.adversary = adversary;
        spec.horizon = 400 * n;
        bench_report.add_rounds(std::uint64_t{kSeeds} * spec.horizon);
        for (const RunResult& run : run_battery(spec, 1, kSeeds)) {
          cell_perpetual = cell_perpetual && run.perpetual;
          lemma34 = lemma34 && run.towers.lemma_3_4_holds;
          lemma33 = lemma33 && run.towers.lemma_3_3_holds;
          gaps.push_back(static_cast<double>(run.coverage.max_revisit_gap));
          if (run.coverage.cover_time) {
            covers.push_back(static_cast<double>(*run.coverage.cover_time));
          }
        }
      }
      all_perpetual = all_perpetual && cell_perpetual && lemma34 && lemma33;
      const Summary gap = summarize(gaps);
      const Summary cover = summarize(covers);
      table.add_row({std::to_string(k), std::to_string(n),
                     format_bool(cell_perpetual), format_double(gap.mean, 1),
                     format_double(gap.max, 0), format_double(cover.mean, 1),
                     format_bool(lemma34), format_bool(lemma33)});
      csv.add_row({std::to_string(k), std::to_string(n),
                   format_bool(cell_perpetual), format_double(gap.mean, 2),
                   format_double(gap.max, 0), format_double(cover.mean, 2),
                   format_bool(lemma34), format_bool(lemma33)});
      bench_report.add_cell()
          .param("k", std::uint64_t{k})
          .param("n", std::uint64_t{n})
          .metric("perpetual", cell_perpetual)
          .metric("gap_mean", gap.mean)
          .metric("gap_max", gap.max)
          .metric("cover_mean", cover.mean)
          .metric("lemma_3_4", lemma34)
          .metric("lemma_3_3", lemma33);
    }
    table.add_separator();
  }
  table.print(std::cout);

  // Lemma 3.7 spotlight: sentinel formation under an eventual missing edge.
  std::cout << "\nLemma 3.7 — sentinels at an eventual missing edge "
               "(static base, k robots on n=12):\n";
  TextTable sentinel_table(
      {"k", "missing edge", "sentinels", "explorers", "formed at"});
  for (std::uint32_t k : {3u, 4u, 5u}) {
    const Ring ring(12);
    const EdgeId missing = 7;
    auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
        std::make_shared<StaticSchedule>(ring), missing, 20);
    EngineOptions options;
    options.record_trace = true;  // sentinel analysis reads the trace
    Engine engine(ring, make_algorithm("pef3+"),
                      make_oblivious(schedule), spread_placements(ring, k),
                      options);
    engine.run(6000);
    bench_report.add_rounds(6000);
    const auto report = analyze_sentinels(engine.trace(), missing);
    sentinel_table.add_row(
        {std::to_string(k), "e" + std::to_string(missing),
         std::to_string(report.sentinels_at_horizon.size()),
         std::to_string(report.explorers_at_horizon.size()),
         report.formation_time ? std::to_string(*report.formation_time)
                               : "never"});
  }
  sentinel_table.print(std::cout);
  std::cout << "\nExpected shape: 2 sentinels and k-2 explorers for every "
               "k (the paper's sentinel/explorer role split).\n";

  std::cout << "\nTheorem 3.1 reproduction "
            << (all_perpetual ? "HOLDS" : "FAILS") << ".\n";
  bench_report.summary("reproduction_holds", all_perpetual);
  bench_report.write();
  return all_perpetual ? 0 : 1;
}
