// bench_ssync_impossibility — the SSYNC extension: reproduces the
// impossibility argument of Di Luna et al. [10] that motivates the paper's
// restriction to FSYNC.
//
// A round-robin activation scheduler plus an adversary that removes both
// adjacent edges of each activated robot freezes *every* algorithm forever
// — while keeping each edge recurrent (present whenever its incident robots
// are inactive).  Contrast column: the same algorithms under FSYNC with a
// static graph, where the possible cells of Table 1 explore happily.
#include <chrono>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "common/args.hpp"
#include "common/bench_report.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "dynamic_graph/properties.hpp"
#include "dynamic_graph/schedules.hpp"
#include "engine/engine.hpp"
#include "scheduler/async.hpp"
#include "scheduler/simulator.hpp"
#include "scheduler/ssync.hpp"

int main(int argc, char** argv) {
  using namespace pef;

  // No flags yet — but a typo'd flag must fail loudly, not run the
  // whole bench with the flag silently ignored.
  ArgParser args(argc, argv);
  args.check_unused();

  constexpr std::uint32_t kNodes = 6;
  constexpr std::uint32_t kRobots = 3;
  constexpr Time kHorizon = 3000;

  std::cout << "=== SSYNC impossibility ([10], motivates FSYNC) ===\n"
            << "n = " << kNodes << ", k = " << kRobots
            << ", round-robin activation, blocker adversary.\n\n";

  TextTable table({"algorithm", "ssync visited", "moves", "edges recurrent",
                   "fsync/static visited"});
  CsvWriter csv("ssync_impossibility.csv",
                {"algorithm", "ssync_visited", "moves", "recurrent",
                 "fsync_visited"});
  BenchReport report("ssync_impossibility");

  bool reproduction_holds = true;
  for (const std::string& name : algorithm_names()) {
    const Ring ring(kNodes);

    SsyncSimulator ssync(ring, make_algorithm(name, 3),
                         std::make_unique<SsyncBlockingAdversary>(ring),
                         std::make_unique<RoundRobinActivation>(),
                         spread_placements(ring, kRobots));
    ssync.run(kHorizon);
    std::uint64_t moves = 0;
    for (const RoundRecord& round : ssync.trace().rounds()) {
      for (const RobotRoundRecord& r : round.robots) {
        if (r.moved) ++moves;
      }
    }
    const auto ssync_cov = analyze_coverage(ssync.trace());
    const auto audit = audit_connectivity(
        ring, ssync.trace().edge_history(), /*patience=*/kHorizon / 4);

    Engine fsync(
        ring, make_algorithm(name, 3),
        make_oblivious(std::make_shared<StaticSchedule>(ring)),
        spread_placements(ring, kRobots));
    fsync.run(kHorizon);
    const auto fsync_cov = fsync.coverage_report();
    report.add_rounds(2 * kHorizon);

    reproduction_holds = reproduction_holds && moves == 0 &&
                         ssync_cov.visited_node_count == kRobots &&
                         audit.connected_over_time;
    table.add_row({name,
                   std::to_string(ssync_cov.visited_node_count) + "/" +
                       std::to_string(kNodes),
                   std::to_string(moves), format_bool(audit.connected_over_time),
                   std::to_string(fsync_cov.visited_node_count) + "/" +
                       std::to_string(kNodes)});
    csv.add_row({name, std::to_string(ssync_cov.visited_node_count),
                 std::to_string(moves),
                 format_bool(audit.connected_over_time),
                 std::to_string(fsync_cov.visited_node_count)});
    report.add_cell()
        .param("scheduler", "ssync")
        .param("algorithm", name)
        .param("n", std::uint64_t{kNodes})
        .param("k", std::uint64_t{kRobots})
        .metric("visited_nodes",
                std::uint64_t{ssync_cov.visited_node_count})
        .metric("moves", moves)
        .metric("recurrent", audit.connected_over_time)
        .metric("fsync_visited_nodes",
                std::uint64_t{fsync_cov.visited_node_count});
  }
  table.print(std::cout);

  // The ASYNC face of the same argument: per-phase scheduling, the
  // adversary blocks robots whose Move phase fires.
  std::cout << "\nASYNC (per-phase scheduling, Move blocker):\n";
  TextTable async_table({"algorithm", "async visited", "moves",
                         "edges recurrent"});
  for (const std::string& name : algorithm_names()) {
    const Ring ring(kNodes);
    AsyncSimulator async(ring, make_algorithm(name, 3),
                         std::make_unique<AsyncMoveBlocker>(ring),
                         std::make_unique<RoundRobinPhases>(),
                         spread_placements(ring, kRobots));
    async.run(kHorizon);
    std::uint64_t moves = 0;
    for (const RoundRecord& round : async.trace().rounds()) {
      for (const RobotRoundRecord& r : round.robots) {
        if (r.moved) ++moves;
      }
    }
    const auto cov = analyze_coverage(async.trace());
    const auto audit = audit_connectivity(
        ring, async.trace().edge_history(), kHorizon / 4);
    reproduction_holds = reproduction_holds && moves == 0 &&
                         cov.visited_node_count == kRobots &&
                         audit.connected_over_time;
    async_table.add_row({name,
                         std::to_string(cov.visited_node_count) + "/" +
                             std::to_string(kNodes),
                         std::to_string(moves),
                         format_bool(audit.connected_over_time)});
    report.add_rounds(kHorizon);
    report.add_cell()
        .param("scheduler", "async")
        .param("algorithm", name)
        .param("n", std::uint64_t{kNodes})
        .param("k", std::uint64_t{kRobots})
        .metric("visited_nodes", std::uint64_t{cov.visited_node_count})
        .metric("moves", moves)
        .metric("recurrent", audit.connected_over_time);
  }
  async_table.print(std::cout);

  // The same impossibility on the unified Engine's SSYNC/ASYNC fast paths:
  // blocker + round-robin must freeze pef3+ at Engine-class throughput,
  // under both Compute dispatches.  This is the bench the reference engines
  // were too slow for — the model axis now runs at engine speed.
  std::cout << "\nUnified engine (blocker + round-robin, pef3+, horizon "
            << 100 * kHorizon << "):\n";
  TextTable speed_table({"model", "dispatch", "rounds/sec", "moves",
                         "visited"});
  constexpr Time kEngineHorizon = 100 * kHorizon;
  for (const ExecutionModel model :
       {ExecutionModel::kSsync, ExecutionModel::kAsync}) {
    for (const ComputeDispatch dispatch :
         {ComputeDispatch::kKernel, ComputeDispatch::kVirtual}) {
      const Ring ring(kNodes);
      EngineOptions options;
      options.dispatch = dispatch;
      std::optional<Engine> engine;
      if (model == ExecutionModel::kSsync) {
        engine.emplace(ring, make_algorithm("pef3+"),
                       std::make_unique<SsyncBlockingAdversary>(ring),
                       std::make_unique<RoundRobinActivation>(),
                       spread_placements(ring, kRobots), options);
      } else {
        engine.emplace(ring, make_algorithm("pef3+"),
                       std::make_unique<AsyncMoveBlocker>(ring),
                       std::make_unique<RoundRobinPhases>(),
                       spread_placements(ring, kRobots), options);
      }
      const auto start = std::chrono::steady_clock::now();
      engine->run(kEngineHorizon);
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      const double rps = static_cast<double>(kEngineHorizon) / secs;

      const bool frozen = engine->stats().total_moves == 0 &&
                          engine->stats().visited_node_count == kRobots;
      reproduction_holds = reproduction_holds && frozen;
      speed_table.add_row(
          {to_string(model), to_string(dispatch),
           std::to_string(static_cast<std::uint64_t>(rps)),
           std::to_string(engine->stats().total_moves),
           std::to_string(engine->stats().visited_node_count) + "/" +
               std::to_string(kNodes)});
      report.add_rounds(kEngineHorizon);
      report.add_cell()
          .param("series", "unified-engine")
          .param("model", to_string(model))
          .param("dispatch", to_string(dispatch))
          .param("n", std::uint64_t{kNodes})
          .param("k", std::uint64_t{kRobots})
          .metric("rounds_per_sec", rps)
          .metric("moves", engine->stats().total_moves)
          .metric("visited_nodes",
                  std::uint64_t{engine->stats().visited_node_count})
          .metric("frozen", frozen);
    }
  }
  speed_table.print(std::cout);

  std::cout << "\nExpected shape: zero moves and only the k start nodes "
               "visited under SSYNC and ASYNC alike, for every algorithm, "
               "on a recurrent (connected-over-time) graph — exploration "
               "is impossible outside FSYNC, which is why the paper "
               "studies FSYNC.\nReproduction "
            << (reproduction_holds ? "HOLDS" : "FAILS") << ".\n";
  report.summary("reproduction_holds", reproduction_holds);
  report.write();
  return reproduction_holds ? 0 : 1;
}
