// quickstart — the one-call API in action.
//
//   $ ./quickstart [nodes] [robots]
//
// Asks the library (a) what TABLE 1 predicts for the pair, (b) which paper
// algorithm to use, and (c) runs it against a ring whose edges appear and
// disappear adversarially, printing the measured exploration verdict.
#include <cstdlib>
#include <iostream>

#include "core/explore.hpp"

int main(int argc, char** argv) {
  using namespace pef;

  ExploreRequest request;
  request.nodes = argc > 1 ? static_cast<std::uint32_t>(
                                 std::strtoul(argv[1], nullptr, 10))
                           : 10;
  request.robots = argc > 2 ? static_cast<std::uint32_t>(
                                  std::strtoul(argv[2], nullptr, 10))
                            : 3;
  request.adversary = "eventual-missing";
  request.horizon = 5000;
  request.seed = 2026;

  std::cout << "Perpetual exploration of a highly dynamic ring\n"
            << "  ring size n = " << request.nodes << "\n"
            << "  robots    k = " << request.robots << "\n"
            << "  adversary   = " << request.adversary
            << " (one edge vanishes forever; the rest stay recurrent)\n\n";

  const ExploreOutcome outcome = explore(request);

  std::cout << "TABLE 1 prediction : "
            << computability::to_string(outcome.predicted) << " ("
            << computability::supporting_theorem(request.robots,
                                                 request.nodes)
            << ")\n"
            << "algorithm          : " << outcome.algorithm << "\n"
            << "horizon            : " << outcome.result.horizon
            << " rounds\n\n";

  const auto& coverage = outcome.result.coverage;
  std::cout << "measured:\n"
            << "  nodes visited          : " << coverage.visited_node_count
            << "/" << request.nodes << "\n"
            << "  cover time             : "
            << (coverage.cover_time ? std::to_string(*coverage.cover_time)
                                    : std::string("never"))
            << "\n"
            << "  max revisit gap        : " << coverage.max_revisit_gap
            << "\n"
            << "  nodes visited in suffix: "
            << coverage.nodes_visited_in_suffix << "/" << request.nodes
            << "\n"
            << "  perpetual exploration  : "
            << (outcome.result.perpetual ? "yes" : "NO") << "\n"
            << "  adversary stayed legal : "
            << (outcome.result.adversary_legal ? "yes" : "NO") << "\n\n"
            << "replay this exact run (pef_run --spec / run_scenario):\n"
            << "  " << outcome.scenario.to_json() << "\n";

  const bool consistent =
      (outcome.predicted == computability::Verdict::kPossible) ==
      outcome.result.perpetual;
  std::cout << "\nTheory and simulation "
            << (consistent ? "agree" : "DISAGREE (unexpected!)") << ".\n"
            << "Try `quickstart 10 2` or `quickstart 10 1` to watch the "
               "impossible side fail.\n";
  return 0;
}
