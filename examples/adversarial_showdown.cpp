// adversarial_showdown — watch the impossibility side of Table 1.
//
// Every deterministic algorithm in the registry is pitted against the
// staged lower-bound adversaries of Theorems 4.1 (two robots, window
// {u,v,w}) and 5.1 (one robot, window {u,v}).  The program prints, per
// algorithm, how much of the ring was ever seen, whether the adversary was
// reduced to its terminal single-missing-edge fallback (camping
// algorithms), and the legality audit of the realized evolving graph.
#include <iostream>
#include <string>
#include <vector>

#include "adversary/proof_adversary.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "common/table.hpp"
#include "dynamic_graph/properties.hpp"
#include "scheduler/simulator.hpp"

namespace {

void showdown(std::uint32_t robots, std::uint32_t n, pef::Time horizon) {
  using namespace pef;
  std::cout << "--- " << robots << " robot" << (robots > 1 ? "s" : "")
            << " on an n=" << n << " connected-over-time ring ("
            << (robots == 2 ? "Theorem 4.1" : "Theorem 5.1") << ") ---\n";
  TextTable table({"algorithm", "nodes seen", "perpetual", "stages",
                   "terminal fallback", "graph legal"});
  for (const std::string& name : deterministic_algorithm_names()) {
    const Ring ring(n);
    auto adversary = std::make_unique<StagedProofAdversary>(
        ring, /*anchor=*/0, /*width=*/robots + 1, /*patience=*/64);
    auto* handle = adversary.get();
    std::vector<RobotPlacement> placements;
    for (std::uint32_t i = 0; i < robots; ++i) {
      placements.push_back({static_cast<NodeId>(i), Chirality(true)});
    }
    Simulator sim(ring, make_algorithm(name), std::move(adversary),
                  placements);
    sim.run(horizon);
    const auto coverage = analyze_coverage(sim.trace());
    const auto audit = audit_connectivity(ring, sim.trace().edge_history(),
                                          horizon / 4);
    table.add_row({name,
                   std::to_string(coverage.visited_node_count) + "/" +
                       std::to_string(n),
                   format_bool(coverage.perpetual(n)),
                   std::to_string(handle->stages_completed()),
                   handle->in_terminal_mode()
                       ? "yes (edge e" +
                             std::to_string(*handle->terminal_edge()) +
                             " gone forever)"
                       : "no (kept staging)",
                   format_bool(audit.connected_over_time)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout
      << "Adversarial showdown: the staged proof adversaries vs every\n"
         "deterministic algorithm in the library.\n\n"
         "The adversary freezes all robots but one and leaves the designated\n"
         "robot exactly one inward edge (the paper's OneEdge situation).\n"
         "Algorithms that keep departing stay caged in the window forever;\n"
         "algorithms that camp are handed a single eventually-missing edge\n"
         "and starve anyway.  Either way: no perpetual exploration, on a\n"
         "legal connected-over-time graph.\n\n";

  showdown(/*robots=*/1, /*n=*/8, /*horizon=*/4000);
  showdown(/*robots=*/2, /*n=*/8, /*horizon=*/4000);

  std::cout << "Compare with `quickstart 8 3`: with three robots (PEF_3+),\n"
               "no adversary of this class can prevent exploration\n"
               "(Theorem 3.1).\n";
  return 0;
}
