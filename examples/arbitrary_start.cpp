// arbitrary_start — why the paper assumes well-initiated executions (and
// why its predecessor [4] needed self-stabilization machinery).
//
// PEF_3+ is correct from any towerless start, but an initial tower of
// "identical twins" (same node, same chirality, same memory) is sticky:
// the twins see identical views forever, flip together on every meeting
// round, and oscillate as a pair between two adjacent nodes.  With an
// eventual missing edge elsewhere, the rest of the ring starves.
//
// The example renders both runs side by side: a corrupted start that
// livelocks, and the same system started towerless, which explores
// perpetually.
#include <iostream>

#include "adversary/adversary.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "analysis/render.hpp"
#include "dynamic_graph/schedules.hpp"
#include "scheduler/simulator.hpp"

namespace {

void run_case(const char* title,
              const std::vector<pef::RobotPlacement>& placements,
              bool relax_checks) {
  using namespace pef;
  const Ring ring(8);
  const EdgeId missing = 5;
  auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
      std::make_shared<StaticSchedule>(ring), missing, /*vanish_time=*/6);

  SimulatorOptions options;
  options.enforce_well_initiated = !relax_checks;

  Simulator sim(ring, make_algorithm("pef3+"), make_oblivious(schedule),
                placements, options);
  sim.run(600);

  std::cout << "--- " << title << " ---\n";
  RenderOptions render;
  render.max_lines = 16;
  render.highlight_edge = missing;
  render_trace(std::cout, sim.trace(), render);

  const auto coverage = analyze_coverage(sim.trace());
  std::cout << "nodes visited: " << coverage.visited_node_count << "/8"
            << ", perpetual: " << (coverage.perpetual(8) ? "yes" : "NO")
            << ", max revisit gap: " << coverage.max_revisit_gap << "\n\n";
}

}  // namespace

int main() {
  using namespace pef;

  std::cout
      << "Arbitrary initialization vs the paper's well-initiated "
         "assumption.\nRing of 8 nodes, PEF_3+, k = 3; edge 5 (marked '|') "
         "vanishes at t=6.\n\n";

  run_case("corrupted start: twin tower on node 0",
           {{0, Chirality(true)}, {0, Chirality(true)}, {3, Chirality(true)}},
           /*relax_checks=*/true);

  run_case("well-initiated start: same robots, towerless",
           {{0, Chirality(true)}, {1, Chirality(true)}, {3, Chirality(true)}},
           /*relax_checks=*/false);

  std::cout
      << "The twins never separate (identical views forever), so after the "
         "edge dies\nonly a sliver of the ring keeps being patrolled — "
         "this is precisely why [4]\n(Bournat, Datta, Dubois, SSS 2016) "
         "needed a self-stabilizing construction, and\nwhy this paper's "
         "model assumes towerless starts.\n";
  return 0;
}
