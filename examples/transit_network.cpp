// transit_network — exploration over a periodically varying transport ring
// (the public-transport model of Flocchini et al. [16] / Ilcinkas et
// al. [19], which the paper's related-work section contrasts with its
// fully unpredictable connected-over-time model).
//
// A circular tram line connects n stations; each track segment is serviced
// periodically (present `duty` rounds out of every `period`, phase-shifted
// around the ring like a timetable).  Three PEF_3+ robots explore it
// without knowing the timetable — the paper's algorithms need no
// periodicity assumption, so a periodic world is just an easy special case.
// For contrast, the same line is run with a segment closed for repairs
// forever (the connected-over-time worst case the timetable model cannot
// express).
#include <iostream>
#include <string>

#include "adversary/adversary.hpp"
#include "algorithms/pef3plus.hpp"
#include "analysis/coverage.hpp"
#include "analysis/towers.hpp"
#include "dynamic_graph/schedules.hpp"
#include "dynamic_graph/temporal.hpp"
#include "scheduler/simulator.hpp"

int main() {
  using namespace pef;

  constexpr std::uint32_t kStations = 10;
  constexpr std::uint32_t kPeriod = 6;
  constexpr std::uint32_t kDuty = 2;
  constexpr Time kHorizon = 4000;

  const Ring ring(kStations);

  std::cout << "Circular tram line: " << kStations << " stations, each "
            << "segment serviced " << kDuty << "/" << kPeriod
            << " rounds (phase-shifted timetable).\n\n";

  // --- Scenario 1: the periodic timetable --------------------------------
  auto timetable = std::make_shared<PeriodicSchedule>(
      PeriodicSchedule::rotating(ring, kPeriod, kDuty));

  // The timetable's temporal diameter: how long a traveller needs between
  // the worst station pair (computed via foremost journeys, Xuan et
  // al. [23]).
  const auto diameter = temporal_diameter(*timetable, 0, 500);
  std::cout << "timetable temporal diameter: "
            << (diameter ? std::to_string(*diameter) : std::string(">500"))
            << " rounds\n";

  Simulator periodic_run(ring, std::make_shared<Pef3Plus>(),
                         make_oblivious(timetable),
                         spread_placements(ring, 3));
  periodic_run.run(kHorizon);
  const auto periodic_cov = analyze_coverage(periodic_run.trace());
  std::cout << "PEF_3+ on the timetable : every station visited "
            << (periodic_cov.perpetual(kStations) ? "perpetually"
                                                  : "NOT perpetually")
            << " (max service gap " << periodic_cov.max_revisit_gap
            << " rounds)\n\n";

  // --- Scenario 2: a segment closed for repairs forever -------------------
  constexpr EdgeId kClosedSegment = 4;
  auto with_closure = std::make_shared<EventualMissingEdgeSchedule>(
      timetable, kClosedSegment, /*vanish_time=*/100);
  Simulator closure_run(ring, std::make_shared<Pef3Plus>(),
                        make_oblivious(with_closure),
                        spread_placements(ring, 3));
  closure_run.run(kHorizon);
  const auto closure_cov = analyze_coverage(closure_run.trace());
  const auto towers = analyze_towers(closure_run.trace());
  std::cout << "segment " << kClosedSegment
            << " (stations 4|5) closes forever at t=100:\n"
            << "PEF_3+ with the closure : every station visited "
            << (closure_cov.perpetual(kStations) ? "perpetually"
                                                 : "NOT perpetually")
            << " (max service gap " << closure_cov.max_revisit_gap
            << " rounds)\n"
            << "robot meetings observed : " << towers.tower_formation_count
            << " (never more than 2 robots per stop — Lemma 3.4: "
            << (towers.lemma_3_4_holds ? "holds" : "violated") << ")\n\n";

  std::cout << "Takeaway: algorithms designed for the connected-over-time "
               "model need no timetable knowledge — periodicity ([16,19]) "
               "is a special case, and even a permanent closure (which "
               "periodic models cannot express) is handled by the "
               "sentinel/explorer protocol.\n";
  return periodic_cov.perpetual(kStations) &&
                 closure_cov.perpetual(kStations)
             ? 0
             : 1;
}
