// patrol — the paper's motivating scenario: patrolling a building whose
// doors open and close unpredictably, until one door fails permanently.
//
// A ring of rooms is patrolled by three PEF_3+ robots.  Doors (edges)
// flicker randomly; at a configurable time one door jams shut forever.  The
// example renders an ASCII strip of the ring over time, showing the
// sentinel/explorer structure emerge (Lemma 3.7): two robots post
// themselves at the jammed door's two sides, the third keeps sweeping the
// corridor between them.
#include <iostream>
#include <string>

#include "adversary/adversary.hpp"
#include "algorithms/pef3plus.hpp"
#include "analysis/coverage.hpp"
#include "analysis/sentinels.hpp"
#include "dynamic_graph/schedules.hpp"
#include "scheduler/simulator.hpp"

int main() {
  using namespace pef;

  constexpr std::uint32_t kRooms = 12;
  constexpr EdgeId kJammedDoor = 5;  // between rooms 5 and 6
  constexpr Time kJamTime = 40;
  constexpr Time kHorizon = 900;

  const Ring ring(kRooms);
  // Doors flicker (each present 70% of rounds) until the jam, after which
  // door 5 is shut forever — a connected-over-time evolving ring.
  auto flicker = std::make_shared<BernoulliSchedule>(ring, 0.7, 20260612);
  auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
      flicker, kJammedDoor, kJamTime);

  Simulator sim(ring, std::make_shared<Pef3Plus>(), make_oblivious(schedule),
                spread_placements(ring, 3));

  std::cout << "Patrolling " << kRooms
            << " rooms with 3 robots (PEF_3+).  Door " << kJammedDoor
            << " (rooms 5|6) jams shut at t=" << kJamTime << ".\n\n"
            << "Legend: digit = # robots in the room, '.' = empty, '|' = "
               "the jammed door's position.\n\n";

  auto render = [&](Time t) {
    std::string line = "t=" + std::to_string(t);
    line.resize(8, ' ');
    for (NodeId room = 0; room < kRooms; ++room) {
      std::uint32_t count = 0;
      for (RobotId r = 0; r < 3; ++r) {
        if (sim.trace().position_at(r, t) == room) ++count;
      }
      line += count == 0 ? '.' : static_cast<char>('0' + count);
      if (room == ring.edge_tail(kJammedDoor)) line += '|';
    }
    std::cout << line << "\n";
  };

  for (Time t = 0; t < kHorizon; ++t) {
    sim.step();
    if (t < 12 || (t >= kJamTime - 2 && t < kJamTime + 10) ||
        (t >= kHorizon - 12)) {
      render(t + 1);
    } else if (t == 12 || t == kJamTime + 10) {
      std::cout << "   ...\n";
    }
  }

  const auto coverage = analyze_coverage(sim.trace());
  const auto sentinels = analyze_sentinels(sim.trace(), kJammedDoor);

  std::cout << "\nAfter " << kHorizon << " rounds:\n"
            << "  every room patrolled       : "
            << (coverage.perpetual(kRooms) ? "yes" : "NO") << "\n"
            << "  longest unpatrolled stretch: " << coverage.max_revisit_gap
            << " rounds\n"
            << "  sentinels posted           : "
            << sentinels.sentinels_at_horizon.size()
            << " (rooms flanking the jammed door)\n"
            << "  sweeping explorers         : "
            << sentinels.explorers_at_horizon.size() << "\n";
  if (sentinels.formation_time) {
    std::cout << "  sentinel posts stable since: t="
              << *sentinels.formation_time << "\n";
  }
  std::cout << "\nThis is Lemma 3.7 in action: the two sentinels mark the "
               "dead door so the explorer knows to turn around, keeping "
               "every room infinitely often visited (Theorem 3.1).\n";
  return coverage.perpetual(kRooms) ? 0 : 1;
}
