// pef_orchestrate — fault-tolerant distributed driver for sharded sweeps.
//
//   pef_orchestrate --spec sweep.json --shards 8 --out merged.json
//   pef_orchestrate --spec sweep.json --shards 8 --replicate 3   # NMR/TMR
//   pef_orchestrate --spec sweep.json --shards 8 \
//       --backend ssh --fleet hosts.json                # remote fleet
//
// Spawns one `pef_sweep --spec F --shard I/N` worker per shard (times R
// under --replicate) through a WorkerBackend — the local process pool by
// default, or an ssh fan-out across a fleet (--backend ssh --fleet, see
// orchestrator/fleet.hpp: liveness probes, per-host circuit breaker,
// output fetch-back) — supervises them — per-shard timeout,
// crash/exit-code/unparseable-output detection, retry with capped
// exponential backoff — and merges the accepted shards into output
// byte-identical to the unsharded run.  Accepted shards are journaled in
// <workdir>/ledger.jsonl, so re-running a killed orchestrator resumes
// instead of recomputing.  On exhausted retries it degrades gracefully: a
// partial merge (missing cells explicitly null) goes to --out, the
// machine-readable failure report to --report, and the exit code says 1.
//
// Chaos testing: export PEF_FAULT_SPEC (see src/orchestrator/fault.hpp)
// before running and the workers will deterministically crash / corrupt
// their output / hang — and, on fleet backends, the network will refuse
// connections, drop links mid-run and truncate transfers — exercising
// every recovery path above.  The CI chaos-smoke steps gate on the
// recovered merge matching the golden baseline.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/args.hpp"
#include "core/spec.hpp"
#include "orchestrator/fault.hpp"
#include "orchestrator/fleet.hpp"
#include "orchestrator/supervisor.hpp"
#include "orchestrator/transport.hpp"

namespace pef {
namespace {

void print_help(const char* program) {
  std::cout
      << "usage: " << program << " --spec FILE --shards N [flags]\n\n"
      << "  --spec FILE        SweepSpec JSON to run (sharded N ways)\n"
      << "  --shards N         partition the cell list into N shards\n"
      << "  --replicate R      run each shard R times and accept the\n"
      << "                     byte-identical majority (NMR voting;\n"
      << "                     default 1 = off)\n"
      << "  --jobs J           concurrent workers (default: hardware)\n"
      << "  --max-attempts M   attempt budget per replica slot (default 3)\n"
      << "  --timeout S        kill a worker after S seconds (default 300,\n"
      << "                     0 = never)\n"
      << "  --backoff-ms B     initial retry backoff (default 200,\n"
      << "                     doubles per failure)\n"
      << "  --backoff-cap-ms C backoff ceiling (default 5000)\n"
      << "  --workdir DIR      shard files, worker logs and the resume\n"
      << "                     ledger (default: pef_orchestrate_work)\n"
      << "  --worker PATH      shard worker binary (default: the pef_sweep\n"
      << "                     next to this binary)\n"
      << "  --worker-threads T --threads for each worker (default 1)\n"
      << "  --backend B        local | ssh | mock (default local).  ssh\n"
      << "                     fans workers out over a fleet; mock is the\n"
      << "                     same backend on an in-process fake fleet\n"
      << "  --fleet FILE       fleet spec JSON (required for ssh/mock):\n"
      << "                     {\"hosts\": [{\"host\": H, \"slots\": N,\n"
      << "                     \"workdir\": D, \"worker\": P}, ...]}\n"
      << "  --blacklist-after N quarantine a host after N consecutive\n"
      << "                     host faults (default 3)\n"
      << "  --no-probe         skip the pre-launch liveness probes\n"
      << "  --connect-timeout S ssh connect timeout seconds (default 10)\n"
      << "  --out FILE         merged JSON (default: stdout); on failed\n"
      << "                     shards this is the partial merge\n"
      << "  --report FILE      machine-readable run report (default:\n"
      << "                     <workdir>/report.json)\n"
      << "  --help             this text\n\n"
      << "exit: 0 = complete merge, 1 = degraded (see report), 2 = usage\n";
}

std::string default_worker(const std::string& program) {
  const auto slash = program.rfind('/');
  if (slash == std::string::npos) return "pef_sweep";
  return program.substr(0, slash + 1) + "pef_sweep";
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) return false;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  out = buffer.str();
  return true;
}

bool write_out(const std::string& path, const std::string& content) {
  if (path.empty()) {
    std::cout << content << "\n";
    return true;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  out << content << "\n";
  return out.good();
}

}  // namespace
}  // namespace pef

int main(int argc, char** argv) {
  using namespace pef;

  ArgParser args(argc, argv);
  if (args.has("--help")) {
    print_help(argv[0]);
    return 0;
  }

  OrchestratorOptions options;
  options.spec_path = args.get_string("--spec", "");
  options.shards = args.get_u32("--shards", 0);
  options.replicate = args.get_u32("--replicate", 1);
  options.jobs = args.get_u32("--jobs", 0);
  options.max_attempts = args.get_u32("--max-attempts", 3);
  options.timeout_seconds = args.get_double("--timeout", 300);
  options.backoff_initial_ms = args.get_double("--backoff-ms", 200);
  options.backoff_cap_ms = args.get_double("--backoff-cap-ms", 5000);
  options.workdir = args.get_string("--workdir", "pef_orchestrate_work");
  options.worker_binary =
      args.get_string("--worker", default_worker(args.program()));
  options.worker_threads = args.get_u32("--worker-threads", 1);
  options.backend_name = args.get_string("--backend", "local");
  const std::string fleet_path = args.get_string("--fleet", "");
  const std::uint32_t blacklist_after = args.get_u32("--blacklist-after", 3);
  const bool no_probe = args.has("--no-probe");
  const std::uint32_t connect_timeout = args.get_u32("--connect-timeout", 10);
  const std::string out_path = args.get_string("--out", "");
  std::string report_path = args.get_string("--report", "");
  args.check_unused();

  if (options.spec_path.empty() || options.shards == 0) {
    std::cerr << "need --spec FILE and --shards N (see --help)\n";
    return 2;
  }
  if (options.replicate == 0 || options.max_attempts == 0) {
    std::cerr << "--replicate and --max-attempts must be >= 1\n";
    return 2;
  }
  if (options.backend_name != "local" && options.backend_name != "ssh" &&
      options.backend_name != "mock") {
    std::cerr << "--backend must be local, ssh or mock\n";
    return 2;
  }
  if (options.backend_name == "local") {
    if (!fleet_path.empty()) {
      std::cerr << "--fleet needs --backend ssh or mock\n";
      return 2;
    }
  } else if (fleet_path.empty()) {
    std::cerr << "--backend " << options.backend_name
              << " needs --fleet FILE\n";
    return 2;
  }
  if (blacklist_after == 0) {
    std::cerr << "--blacklist-after must be >= 1\n";
    return 2;
  }
  if (report_path.empty()) {
    report_path = options.workdir + "/report.json";
  }

  // Resolve the spec up front: its canonical JSON is the identity every
  // shard output (and the resume ledger) is validated against.
  std::string spec_text;
  if (!read_file(options.spec_path, spec_text)) {
    std::cerr << "cannot read " << options.spec_path << "\n";
    return 2;
  }
  std::string error;
  const auto spec = parse_sweep_spec(spec_text, &error);
  if (!spec) {
    std::cerr << options.spec_path << ": " << error << "\n";
    return 2;
  }
  options.spec_json = spec->to_json();

  if (const char* fault = std::getenv(kFaultSpecEnvVar)) {
    if (*fault != '\0') {
      std::cerr << "pef_orchestrate: chaos mode — workers inherit "
                << kFaultSpecEnvVar << "=" << fault << "\n";
    }
  }

  // Backend selection.  The transport (when any) must outlive the backend.
  std::unique_ptr<CommandTransport> transport;
  std::unique_ptr<WorkerBackend> backend;
  if (options.backend_name == "local") {
    backend = std::make_unique<LocalProcessBackend>(options.jobs);
  } else {
    std::string fleet_error;
    auto fleet = FleetSpec::load(fleet_path, &fleet_error);
    if (!fleet) {
      std::cerr << fleet_error << "\n";
      return 2;
    }
    SshBackendOptions fleet_options;
    fleet_options.blacklist_after = blacklist_after;
    fleet_options.probe = !no_probe;
    fleet_options.faults = fault_spec_from_env();
    if (options.backend_name == "ssh") {
      SshTransport::Options ssh_options;
      ssh_options.connect_timeout_seconds = connect_timeout;
      transport = std::make_unique<SshTransport>(ssh_options);
    } else {
      auto mock = std::make_unique<MockTransport>();
      for (const FleetHost& host : fleet->hosts) mock->add_host(host.host);
      // Mock "remote" paths are local paths; default them into the
      // workdir so a mock run leaves the filesystem as tidy as a local
      // one.
      fleet_options.default_workdir_root = options.workdir + "/mockfs";
      transport = std::move(mock);
    }
    backend = std::make_unique<SshBackend>(*transport, std::move(*fleet),
                                           fleet_options, &std::cerr);
  }
  const OrchestratorResult result =
      orchestrate(*backend, options, &std::cerr);

  if (!write_out(report_path, result.report_json)) return 2;
  if (result.complete) {
    if (!write_out(out_path, result.merged_json)) return 2;
    std::cerr << "pef_orchestrate: complete — " << options.shards
              << " shards accepted (report: " << report_path << ")\n";
    return 0;
  }

  // Graceful degradation: ship what exists plus the report, never nothing.
  std::cerr << "pef_orchestrate: DEGRADED — " << result.failed_shards.size()
            << " of " << options.shards
            << " shards failed; partial merge "
            << (out_path.empty() ? "on stdout" : "in " + out_path)
            << ", report in " << report_path << "\n";
  std::cerr << "  re-run with the same --workdir to retry only the failed "
               "shards\n";
  if (!result.merged_json.empty()) {
    if (!write_out(out_path, result.merged_json)) return 2;
  }
  return 1;
}
