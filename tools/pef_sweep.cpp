// pef_sweep — run a declarative SweepSpec, optionally as one shard of a
// process-level (or machine-level) partition.
//
//   pef_sweep --spec sweep.json                     # whole sweep -> JSON
//   pef_sweep --spec sweep.json --shard 0/2 --out shard0.json
//   pef_sweep --spec sweep.json --shard 1/2 --out shard1.json
//   pef_sweep --merge shard0.json,shard1.json       # == the unsharded JSON
//
// Every cell's results are a pure function of the spec and the cell's grid
// coordinates (see engine/sweep_runner.hpp), so shard workers need nothing
// but the spec file and their index: the merged output is byte-identical to
// the unsharded run — and to running every shard on a different machine.
// `--shard i/N` runs the i-th contiguous slice of the cell list;
// `--merge` stitches the N shard files back into the canonical sweep JSON
// (tests/sweep_shard_test.cpp and the CI sharded-sweep smoke step pin the
// byte equality against the golden baseline).
//
// JSON goes to --out (or stdout); the human-readable run summary goes to
// stderr so piping stdout stays clean.
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/args.hpp"
#include "engine/sweep_runner.hpp"
#include "orchestrator/fault.hpp"

namespace pef {
namespace {

void print_help(const char* program) {
  std::cout
      << "usage: " << program << " --spec FILE [flags]\n"
      << "       " << program << " --merge A.json,B.json,... [--out FILE]\n\n"
      << "  --spec FILE      SweepSpec JSON describing the sweep grid\n"
      << "                   (see examples/specs/ and README \"Scenario\n"
      << "                   specs\"; \"-\" reads the spec from stdin)\n"
      << "  --shard I/N      run only shard I of N (0-based contiguous\n"
      << "                   slice of the cell list) and write a shard\n"
      << "                   file; N shard files --merge into exactly the\n"
      << "                   unsharded output\n"
      << "  --merge LIST     comma-separated shard files to stitch into\n"
      << "                   the canonical sweep JSON (any order); on\n"
      << "                   missing/unreadable shards, exits non-zero and\n"
      << "                   writes a {\"merge_failed\", \"missing_shards\"}\n"
      << "                   report naming the shard indices to re-run\n"
      << "  --allow-partial  with --merge: when shards are missing, write\n"
      << "                   the degraded document instead of the failure\n"
      << "                   report — {\"partial\": true, ...} with one\n"
      << "                   explicit null per missing cell, so cell id ==\n"
      << "                   array index survives — still exiting non-zero\n"
      << "                   and reporting missing_shards on stderr\n"
      << "  --out FILE       write the JSON here instead of stdout\n"
      << "  --threads T      worker threads (default: hardware)\n"
      << "  --engine-threads N\n"
      << "                   intra-cell worker threads per BatchEngine\n"
      << "                   (default 1; 0 = one per physical core; only\n"
      << "                   useful when the grid is narrower than the\n"
      << "                   machine — results are bit-identical either\n"
      << "                   way)\n"
      << "  --validate       parse + validate the spec, print the resolved\n"
      << "                   canonical JSON, run nothing\n"
      << "  --help           this text\n";
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) return false;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  out = buffer.str();
  return true;
}

int emit(const std::string& json, const std::string& out_path) {
  if (out_path.empty()) {
    std::cout << json << "\n";
    return 0;
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out.is_open()) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << json << "\n";
  return out.good() ? 0 : 1;
}

/// "I/N" with 0 <= I < N.
bool parse_shard(const std::string& text, SweepShard& shard) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) return false;
  try {
    const unsigned long index = std::stoul(text.substr(0, slash));
    const unsigned long count = std::stoul(text.substr(slash + 1));
    if (count == 0 || index >= count) return false;
    shard.index = static_cast<std::uint32_t>(index);
    shard.count = static_cast<std::uint32_t>(count);
    return true;
  } catch (...) {
    return false;
  }
}

std::vector<std::string> split_commas(const std::string& list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const auto comma = list.find(',', start);
    const auto end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace
}  // namespace pef

int main(int argc, char** argv) {
  using namespace pef;

  ArgParser args(argc, argv);
  if (args.has("--help")) {
    print_help(argv[0]);
    return 0;
  }

  const std::string spec_path = args.get_string("--spec", "");
  const std::string shard_text = args.get_string("--shard", "");
  const std::string merge_list = args.get_string("--merge", "");
  const std::string out_path = args.get_string("--out", "");
  const auto threads = args.get_u32("--threads", 0);
  const auto engine_threads = args.get_u32("--engine-threads", 1);
  const bool validate_only = args.has("--validate");
  const bool allow_partial = args.has("--allow-partial");
  args.check_unused();

  if (allow_partial && merge_list.empty()) {
    std::cerr << "--allow-partial only makes sense with --merge\n";
    return 2;
  }

  if (!merge_list.empty()) {
    if (!spec_path.empty() || !shard_text.empty() || validate_only) {
      std::cerr << "--merge takes only shard files (and --out)\n";
      return 2;
    }
    const std::vector<std::string> paths = split_commas(merge_list);
    std::vector<std::string> shard_jsons;
    std::vector<std::string> shard_names;
    std::vector<std::string> unreadable;
    for (const std::string& path : paths) {
      std::string content;
      if (!read_file(path, content)) {
        // A lost shard file is the normal failure mode of a multi-machine
        // sweep: keep going with what is readable so the merge can report
        // exactly which shard INDICES need re-running.
        unreadable.push_back(path);
        continue;
      }
      shard_jsons.push_back(std::move(content));
      shard_names.push_back(path);
    }
    std::string error;
    const auto merge = shard_jsons.empty()
                           ? std::nullopt
                           : merge_sweep_shards_partial(shard_jsons, &error,
                                                        &shard_names);
    const std::vector<std::uint32_t> missing =
        merge ? merge->missing_shards : std::vector<std::uint32_t>{};
    if (shard_jsons.empty()) {
      // Without a single readable shard envelope the partition size N is
      // unknown, so no index list can be produced — say so explicitly
      // instead of shipping an empty missing_shards that reads as "nothing
      // to re-run".
      error =
          "no readable shard files (shard count unknown — re-run every "
          "shard of the partition)";
    } else if (merge && !merge->complete && !allow_partial) {
      std::string missing_list;
      for (const std::uint32_t index : missing) {
        if (!missing_list.empty()) missing_list += ", ";
        missing_list += std::to_string(index);
      }
      error = "missing shard" + std::string(missing.size() == 1 ? "" : "s") +
              " " + missing_list + " (re-run them, or --allow-partial for "
              "a degraded merge)";
    }

    const bool complete = merge && merge->complete && unreadable.empty();
    if (complete) {
      std::cerr << "merged " << paths.size() << " shards\n";
      return emit(merge->json, out_path);
    }
    if (allow_partial && merge) {
      // Degraded-but-usable: the partial document (explicit nulls for the
      // cells of missing shards) goes to --out; the non-zero exit and the
      // stderr report keep the degradation impossible to miss.
      std::cerr << "partial merge: " << missing.size() << " missing shard"
                << (missing.size() == 1 ? "" : "s");
      if (!missing.empty()) {
        std::cerr << " {";
        for (std::size_t i = 0; i < missing.size(); ++i) {
          std::cerr << (i == 0 ? "" : ", ") << missing[i];
        }
        std::cerr << "}";
      }
      std::cerr << "\n";
      for (const std::string& path : unreadable) {
        std::cerr << "  unreadable: " << path << "\n";
      }
      emit(merge->json, out_path);
      return 1;
    }
    {
      // Structured failure report instead of a bare error: the
      // missing_shards indices are the exact `--shard I/N` re-runs a
      // launcher needs to repair the sweep (ROADMAP: shard-retry
      // bookkeeping).
      JsonWriter json;
      json.begin_object();
      json.field("merge_failed", true);
      json.field("error", error.empty() ? "unreadable shard files" : error);
      json.begin_array("missing_shards");
      for (const std::uint32_t index : missing) {
        json.element(static_cast<std::uint64_t>(index));
      }
      json.end_array();
      json.begin_array("unreadable_files");
      for (const std::string& path : unreadable) json.element(path);
      json.end_array();
      json.end_object();
      std::cerr << "merge failed: "
                << (error.empty() ? "unreadable shard files" : error) << "\n";
      for (const std::string& path : unreadable) {
        std::cerr << "  unreadable: " << path << "\n";
      }
      if (!missing.empty()) {
        std::cerr << "  re-run with --shard I/N for I in {";
        for (std::size_t i = 0; i < missing.size(); ++i) {
          std::cerr << (i == 0 ? "" : ", ") << missing[i];
        }
        std::cerr << "}\n";
      }
      emit(json.str(), out_path);
      return 1;
    }
  }

  if (spec_path.empty()) {
    std::cerr << "need --spec FILE (or --merge; see --help)\n";
    return 2;
  }
  std::string error;
  const auto document = parse_json_input(spec_path, &error);
  if (!document) {
    std::cerr << error << "\n";
    return 2;
  }
  const auto spec = sweep_spec_from_json(*document, &error);
  if (!spec) {
    std::cerr << spec_path << ": " << error << "\n";
    return 2;
  }
  if (validate_only) {
    std::cerr << spec_path << ": valid\n";
    return emit(spec->to_json(), out_path);
  }

  // Any explicit --shard (even 0/1) writes the shard envelope, so generic
  // "run N shards, merge" scripts work unchanged at N=1.
  const bool sharded = !shard_text.empty();
  SweepShard shard;
  if (sharded && !parse_shard(shard_text, shard)) {
    std::cerr << "--shard must be I/N with 0 <= I < N (got \"" << shard_text
              << "\")\n";
    return 2;
  }

  // Deterministic chaos (PEF_FAULT_SPEC, see orchestrator/fault.hpp): this
  // worker may be fated to die before writing, hang until a supervision
  // timeout kills it, or corrupt its output below — the orchestrator's
  // recovery paths are tested against real worker processes, not mocks.
  const FaultAction fault = fault_action_from_env(shard.index);
  if (fault == FaultAction::kCrash) {
    std::cerr << "fault injection: crash before write\n";
    _exit(kFaultCrashExitCode);
  }
  if (fault == FaultAction::kHang) {
    std::cerr << "fault injection: hanging\n";
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
  }

  const SweepRunner runner(threads, engine_threads);
  const SweepResult result = runner.run(*spec, shard);
  std::cerr << "pef_sweep: " << result.cells.size() << " cells";
  if (sharded) {
    std::cerr << " (shard " << shard.index << "/" << shard.count << ", cells "
              << result.first_cell << ".."
              << result.first_cell + result.cells.size() << " of "
              << result.total_cells << ")";
  }
  std::cerr << ", " << result.threads << " threads, "
            << static_cast<std::uint64_t>(result.rounds_per_sec())
            << " rounds/sec (" << result.wall_seconds << " s)\n";

  std::string json = sharded ? result.to_shard_json() : result.to_json();
  if (fault == FaultAction::kCorruptOutput) {
    // Truncated output with a clean exit 0 — the failure only OUTPUT
    // validation can catch.
    std::cerr << "fault injection: corrupting output\n";
    json.resize(json.size() / 2);
  } else if (fault == FaultAction::kSilentCorrupt) {
    // Simulated bit-flip: still valid shard JSON for the right sweep, but
    // one metric digit is wrong — undetectable by validation, caught only
    // when an NMR vote compares byte-identical replicas.
    std::cerr << "fault injection: silently corrupting a metric\n";
    const auto pos = json.rfind("\"total_moves\":");
    if (pos != std::string::npos) {
      const auto digit = json.find_first_of("0123456789", pos);
      if (digit != std::string::npos) {
        json[digit] = json[digit] == '9' ? '1' : json[digit] + 1;
      }
    }
  }
  return emit(json, out_path);
}
