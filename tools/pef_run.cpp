// pef_run — the command-line front end to the whole library.
//
//   pef_run --nodes 10 --robots 3 --algorithm pef3+
//           --adversary eventual-missing --horizon 5000 --seed 1 --render
//
// Adversaries: every oblivious family of the battery plus the adaptive
// lower-bound adversaries ("cage", "proof") and the legality-capped
// stress blocker ("greedy-blocker").  Prints the coverage / tower /
// mobility / legality reports and optionally an ASCII strip of the run.
//
// The execution model is a flag: --model fsync|ssync|async selects the
// activation model (SSYNC/ASYNC run under seeded Bernoulli activation /
// phase scheduling, the adversary adapted through SsyncFromFsyncAdversary),
// and --engine fast|reference picks the unified Engine or the matching
// reference engine (Simulator / SsyncSimulator / AsyncSimulator) — the two
// are differentially tested to byte-identical traces for every model.
#include <chrono>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "adversary/confinement.hpp"
#include "adversary/greedy_blocker.hpp"
#include "adversary/proof_adversary.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "analysis/mobility.hpp"
#include "analysis/render.hpp"
#include "analysis/towers.hpp"
#include "common/args.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/computability.hpp"
#include "core/explore.hpp"
#include "dynamic_graph/markov_schedule.hpp"
#include "dynamic_graph/properties.hpp"
#include "dynamic_graph/schedules.hpp"
#include "engine/batch_engine.hpp"
#include "engine/engine.hpp"
#include "scheduler/async.hpp"
#include "scheduler/simulator.hpp"
#include "scheduler/ssync.hpp"

namespace pef {
namespace {

void print_help(const char* program) {
  std::cout
      << "usage: " << program << " [flags]\n\n"
      << "  --nodes N        ring size (default 10)\n"
      << "  --robots K       robot count (default 3)\n"
      << "  --algorithm A    pef3+ | pef2 | pef1 | keep-direction | bounce\n"
      << "                   | random-walk | oscillating | pef3+-no-rule2\n"
      << "                   | pef3+-no-rule3 (default: paper's choice)\n"
      << "  --adversary X    static | bernoulli | periodic | t-interval\n"
      << "                   | bounded-absence | eventual-missing\n"
      << "                   | adaptive-missing | markov | greedy-blocker\n"
      << "                   | cage | proof (default eventual-missing)\n"
      << "  --horizon T      rounds to simulate (default 5000)\n"
      << "  --batch B        run B seeds (seed..seed+B-1) of the scenario\n"
      << "                   as ONE replica-batched engine (BatchEngine);\n"
      << "                   prints a per-seed summary table + aggregate\n"
      << "                   throughput (default 1 = the single traced run\n"
      << "                   below; incompatible with --render and\n"
      << "                   --engine reference)\n"
      << "  --model M        fsync | ssync | async (default fsync; ssync\n"
      << "                   and async use seeded Bernoulli activation /\n"
      << "                   phase scheduling, see --activation-p)\n"
      << "  --engine E       fast | reference (default fast; identical\n"
      << "                   results, the reference engines are the\n"
      << "                   canonical implementations)\n"
      << "  --dispatch D     auto | kernel | virtual (default auto;\n"
      << "                   Compute path of the fast engine)\n"
      << "  --activation-p X per-robot activation / phase-advance\n"
      << "                   probability for ssync / async (default 0.5)\n"
      << "  --seed S         RNG seed (default 1)\n"
      << "  --p X            presence probability for bernoulli (0.5)\n"
      << "  --render         print an ASCII strip of the execution\n"
      << "  --render-lines L max strip lines (default 40)\n"
      << "  --help           this text\n";
}

AdversaryPtr make_adversary(const std::string& name, const Ring& ring,
                            std::uint64_t seed, double p,
                            std::uint32_t robots) {
  if (name == "markov") {
    return make_oblivious(
        std::make_shared<MarkovSchedule>(ring, 0.2, 0.4, seed));
  }
  if (name == "greedy-blocker") {
    return std::make_unique<GreedyBlockerAdversary>(ring, /*max_absence=*/6);
  }
  if (name == "cage") {
    return std::make_unique<ConfinementAdversary>(
        ring, 0, std::min(robots + 1, ring.node_count() - 1));
  }
  if (name == "proof") {
    return std::make_unique<StagedProofAdversary>(
        ring, 0, std::min(robots + 1, ring.node_count() - 1),
        /*patience=*/64);
  }
  if (name == "bernoulli") {
    return make_oblivious(
        std::make_shared<BernoulliSchedule>(ring, p, seed));
  }
  return adversary_by_name(name).make(ring, seed);
}

}  // namespace
}  // namespace pef

int main(int argc, char** argv) {
  using namespace pef;

  ArgParser args(argc, argv);
  if (args.has("--help")) {
    print_help(argv[0]);
    return 0;
  }

  const auto nodes = args.get_u32("--nodes", 10);
  const auto robots = args.get_u32("--robots", 3);
  std::string algorithm = args.get_string("--algorithm", "");
  const auto adversary_name =
      args.get_string("--adversary", "eventual-missing");
  const auto horizon = args.get_u64("--horizon", 5000);
  const auto batch = args.get_u32("--batch", 1);
  const auto model_name = args.get_string("--model", "fsync");
  const auto engine_name = args.get_string("--engine", "fast");
  const auto dispatch_name = args.get_string("--dispatch", "auto");
  const bool activation_p_given = args.has("--activation-p");
  const auto activation_p = args.get_double("--activation-p", 0.5);
  const auto seed = args.get_u64("--seed", 1);
  const auto p = args.get_double("--p", 0.5);
  const bool render = args.has("--render");
  const auto render_lines = args.get_u64("--render-lines", 40);
  for (const std::string& key : args.unused()) {
    std::cerr << "unknown flag " << key << " (see --help)\n";
    return 2;
  }
  if (robots == 0 || nodes < 2 || robots >= nodes) {
    std::cerr << "need 1 <= robots < nodes and nodes >= 2\n";
    return 2;
  }
  const std::optional<ExecutionModel> model = parse_execution_model(model_name);
  if (!model) {
    std::cerr << "--model must be fsync, ssync or async\n";
    return 2;
  }
  if (engine_name != "fast" && engine_name != "reference") {
    std::cerr << "--engine must be fast or reference\n";
    return 2;
  }
  ComputeDispatch dispatch = ComputeDispatch::kAuto;
  if (dispatch_name == "kernel") {
    dispatch = ComputeDispatch::kKernel;
  } else if (dispatch_name == "virtual") {
    dispatch = ComputeDispatch::kVirtual;
  } else if (dispatch_name != "auto") {
    std::cerr << "--dispatch must be auto, kernel or virtual\n";
    return 2;
  }
  if (engine_name == "reference" && dispatch != ComputeDispatch::kAuto) {
    std::cerr << "--dispatch applies only to --engine fast (the reference "
                 "engines always run the virtual Algorithm path)\n";
    return 2;
  }
  if (activation_p_given && *model == ExecutionModel::kFsync) {
    std::cerr << "--activation-p applies only to --model ssync|async (FSYNC "
                 "activates every robot every round)\n";
    return 2;
  }
  if (batch == 0) {
    std::cerr << "--batch must be >= 1\n";
    return 2;
  }
  if (batch > 1 && engine_name != "fast") {
    std::cerr << "--batch runs on the batched fast engine only\n";
    return 2;
  }
  if (batch > 1 && dispatch == ComputeDispatch::kVirtual) {
    std::cerr << "--batch runs the devirtualized kernel path only\n";
    return 2;
  }
  if (batch > 1 && render) {
    std::cerr << "--render needs a single traced run (drop --batch)\n";
    return 2;
  }

  if (algorithm.empty()) {
    algorithm = computability::recommended_algorithm(robots, nodes);
    if (algorithm.empty()) {
      algorithm = robots >= 3 ? "pef3+" : robots == 2 ? "pef2" : "pef1";
    }
  }

  const Ring ring(nodes);

  if (batch > 1) {
    // Monte-Carlo mode: one BatchEngine advancing all seeds in lock-step,
    // replica-SoA state, no traces — per-seed results are bit-identical to
    // the single-run path (differentially tested).
    std::vector<BatchReplica> replicas(batch);
    for (std::uint32_t b = 0; b < batch; ++b) {
      const std::uint64_t s = seed + b;
      BatchReplica& replica = replicas[b];
      replica.algorithm = make_algorithm(algorithm, s);
      replica.placements = spread_placements(ring, robots);
      replica.horizon = horizon;
      wire_standard_replica(replica, *model,
                            make_adversary(adversary_name, ring, s, p, robots),
                            activation_p, s);
    }

    const auto start = std::chrono::steady_clock::now();
    BatchEngine batch_engine(ring, *model, std::move(replicas));
    batch_engine.run_all();
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();

    std::cout << "pef_run: n=" << nodes << " k=" << robots << " algorithm="
              << algorithm << " adversary=" << adversary_name
              << " horizon=" << horizon << " model=" << to_string(*model)
              << " batch=" << batch << " seeds=[" << seed << ", "
              << seed + batch - 1 << "]\n"
              << "aggregate: "
              << static_cast<std::uint64_t>(
                     static_cast<double>(horizon) * batch / secs)
              << " replica-rounds/sec (" << secs << " s)\n\n";

    TextTable table({"seed", "visited", "cover time", "perpetual",
                     "max revisit gap", "moves", "tower rounds"});
    bool all_perpetual = true;
    for (std::uint32_t b = 0; b < batch; ++b) {
      const EngineStats& stats = batch_engine.stats(b);
      const CoverageReport coverage = batch_engine.coverage_report(b);
      const bool perpetual = coverage.perpetual(nodes);
      all_perpetual = all_perpetual && perpetual;
      table.add_row({std::to_string(seed + b),
                     std::to_string(coverage.visited_node_count) + "/" +
                         std::to_string(nodes),
                     coverage.cover_time ? std::to_string(*coverage.cover_time)
                                         : "never",
                     format_bool(perpetual),
                     std::to_string(coverage.max_revisit_gap),
                     std::to_string(stats.total_moves),
                     std::to_string(stats.tower_rounds)});
    }
    table.print(std::cout);
    return all_perpetual ? 0 : 1;
  }

  std::optional<Engine> engine;
  std::optional<Simulator> sim;
  std::optional<SsyncSimulator> ssync_sim;
  std::optional<AsyncSimulator> async_sim;
  const Trace* trace_ptr = nullptr;

  // The shared standard policies guarantee fast and reference runs of the
  // same (model, seed) see identical activation streams.
  const auto make_activation = [&] {
    return standard_ssync_activation(activation_p, seed);
  };
  const auto make_phases = [&] {
    return standard_async_phases(activation_p, seed);
  };
  const auto make_ssync_adversary = [&] {
    return std::make_unique<SsyncFromFsyncAdversary>(
        make_adversary(adversary_name, ring, seed, p, robots));
  };

  if (engine_name == "fast") {
    EngineOptions options;
    options.record_trace = true;  // the report below is all trace analysis
    options.dispatch = dispatch;
    switch (*model) {
      case ExecutionModel::kFsync:
        engine.emplace(ring, make_algorithm(algorithm, seed),
                       make_adversary(adversary_name, ring, seed, p, robots),
                       spread_placements(ring, robots), options);
        break;
      case ExecutionModel::kSsync:
        engine.emplace(ring, make_algorithm(algorithm, seed),
                       make_ssync_adversary(), make_activation(),
                       spread_placements(ring, robots), options);
        break;
      case ExecutionModel::kAsync:
        engine.emplace(ring, make_algorithm(algorithm, seed),
                       make_ssync_adversary(), make_phases(),
                       spread_placements(ring, robots), options);
        break;
    }
    engine->run(horizon);
    trace_ptr = &engine->trace();
  } else {
    switch (*model) {
      case ExecutionModel::kFsync:
        sim.emplace(ring, make_algorithm(algorithm, seed),
                    make_adversary(adversary_name, ring, seed, p, robots),
                    spread_placements(ring, robots));
        sim->run(horizon);
        trace_ptr = &sim->trace();
        break;
      case ExecutionModel::kSsync:
        ssync_sim.emplace(ring, make_algorithm(algorithm, seed),
                          make_ssync_adversary(), make_activation(),
                          spread_placements(ring, robots));
        ssync_sim->run(horizon);
        trace_ptr = &ssync_sim->trace();
        break;
      case ExecutionModel::kAsync:
        async_sim.emplace(ring, make_algorithm(algorithm, seed),
                          make_ssync_adversary(), make_phases(),
                          spread_placements(ring, robots));
        async_sim->run(horizon);
        trace_ptr = &async_sim->trace();
        break;
    }
  }
  const Trace& trace = *trace_ptr;

  std::cout << "pef_run: n=" << nodes << " k=" << robots << " algorithm="
            << algorithm << " adversary=" << adversary_name
            << " horizon=" << horizon << " seed=" << seed
            << " model=" << to_string(*model) << " engine=" << engine_name
            << "\n"
            << "TABLE 1 prediction: "
            << computability::to_string(
                   computability::classify(robots, nodes))
            << " (" << computability::supporting_theorem(robots, nodes)
            << ")\n\n";

  if (render) {
    RenderOptions options;
    options.max_lines = render_lines;
    render_trace(std::cout, trace, options);
    std::cout << "\n";
  }

  const auto coverage = analyze_coverage(trace);
  const auto towers = analyze_towers(trace);
  const auto mobility = analyze_mobility(trace);
  const auto audit = audit_connectivity(ring, trace.edge_history(),
                                        horizon / 4);

  TextTable table({"metric", "value"});
  table.add_row({"nodes visited", std::to_string(coverage.visited_node_count) +
                                      "/" + std::to_string(nodes)});
  table.add_row({"cover time", coverage.cover_time
                                   ? std::to_string(*coverage.cover_time)
                                   : "never"});
  table.add_row({"max revisit gap", std::to_string(coverage.max_revisit_gap)});
  table.add_row(
      {"perpetual exploration", format_bool(coverage.perpetual(nodes))});
  table.add_row({"tower formations",
                 std::to_string(towers.tower_formation_count)});
  table.add_row({"max tower size", std::to_string(towers.max_tower_size)});
  table.add_row({"lemma 3.4 (towers <= 2)",
                 format_bool(towers.lemma_3_4_holds)});
  table.add_row({"lemma 3.3 (opposite dirs)",
                 format_bool(towers.lemma_3_3_holds)});
  table.add_row({"total moves", std::to_string(mobility.total_moves)});
  table.add_row({"busiest robot",
                 "r" + std::to_string(mobility.busiest()) + " (" +
                     std::to_string(
                         mobility.robots[mobility.busiest()].moves) +
                     " moves)"});
  table.add_row({"idlest robot",
                 "r" + std::to_string(mobility.idlest()) + " (" +
                     std::to_string(mobility.robots[mobility.idlest()].moves) +
                     " moves)"});
  table.add_row({"adversary legal (c-o-t)",
                 format_bool(audit.connected_over_time)});
  table.add_row({"suspected missing edges",
                 std::to_string(audit.suspected_missing.size())});
  table.print(std::cout);

  return coverage.perpetual(nodes) ? 0 : 1;
}
