// pef_run — the command-line front end to the whole library.
//
//   pef_run --nodes 10 --robots 3 --algorithm pef3+
//           --adversary eventual-missing --horizon 5000 --seed 1 --render
//   pef_run --spec scenario.json [flag overrides] [--print-spec]
//
// The scenario surface (ring, robots, algorithm, adversary, model, horizon,
// seed) is exactly a ScenarioSpec (core/spec.hpp): --spec loads one as the
// defaults, explicit flags override it, and --print-spec writes the
// resolved spec back out as JSON — so any CLI invocation can be saved and
// replayed (also by run_scenario() and pef_sweep).  The adversary list in
// --help and the --adversary parser are both generated from the adversary
// registry, the single source of truth for names/params/defaults.
//
// The execution model is a flag: --model fsync|ssync|async selects the
// activation model (SSYNC/ASYNC run under seeded Bernoulli activation /
// phase scheduling, the adversary adapted through SsyncFromFsyncAdversary),
// and --engine fast|reference picks the unified Engine or the matching
// reference engine (Simulator / SsyncSimulator / AsyncSimulator) — the two
// are differentially tested to byte-identical traces for every model.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "analysis/mobility.hpp"
#include "analysis/render.hpp"
#include "analysis/towers.hpp"
#include "common/args.hpp"
#include "common/table.hpp"
#include "core/computability.hpp"
#include "core/experiment.hpp"
#include "dynamic_graph/properties.hpp"
#include "engine/batch_engine.hpp"
#include "engine/engine.hpp"
#include "scheduler/async.hpp"
#include "scheduler/simulator.hpp"
#include "scheduler/ssync.hpp"

namespace pef {
namespace {

void print_help(const char* program) {
  std::cout
      << "usage: " << program << " [flags]\n\n"
      << "  --spec FILE      load a ScenarioSpec JSON as the defaults\n"
      << "                   (explicit flags below override it; \"-\" reads\n"
      << "                   the spec from stdin)\n"
      << "  --print-spec     print the resolved scenario as spec JSON and\n"
      << "                   exit (replay with --spec or pef_sweep)\n"
      << "  --nodes N        ring size (default 10)\n"
      << "  --robots K       robot count (default 3)\n"
      << "  --topology G     ring | chain (default ring; a chain is the\n"
      << "                   ring with edge n-1 never present)\n"
      << "  --algorithm A    pef3+ | pef2 | pef1 | keep-direction | bounce\n"
      << "                   | random-walk | oscillating | pef3+-no-rule2\n"
      << "                   | pef3+-no-rule3 (default: paper's choice)\n"
      << "  --adversary X    adversary family (default eventual-missing):\n";
  for (const AdversaryKindInfo& info : adversary_registry()) {
    std::cout << "                     " << info.name;
    if (!info.params.empty()) {
      std::cout << " (";
      bool first = true;
      for (const AdversaryParamInfo& param : info.params) {
        if (!first) std::cout << ", ";
        first = false;
        std::cout << param.name << "="
                  << JsonWriter::format_number(param.default_value);
      }
      std::cout << ")";
    }
    std::cout << "\n                       " << info.description << "\n";
  }
  std::cout
      << "  --horizon T      rounds to simulate (default 5000)\n"
      << "  --batch B|auto   Monte-Carlo mode: run B seeds (seed..seed+B-1)\n"
      << "                   of the scenario and print a per-seed summary\n"
      << "                   table + aggregate throughput.  The engine is\n"
      << "                   chosen adaptively: below the calibrated\n"
      << "                   break-even width the seeds run on solo Engines\n"
      << "                   (so --batch 1 is never slower than the plain\n"
      << "                   run), above it on ONE replica-batched\n"
      << "                   BatchEngine; the footer reports which\n"
      << "                   (engine=solo|batch).  \"auto\" picks the\n"
      << "                   calibrated preferred width for the scenario.\n"
      << "                   Omit the flag for the single traced run below\n"
      << "                   (incompatible with --render and\n"
      << "                   --engine reference)\n"
      << "  --fast-forward   detect per-seed periodicity and extrapolate\n"
      << "                   the remaining rounds in closed form\n"
      << "                   (Monte-Carlo mode only; engages on eligible\n"
      << "                   deterministic seeds, results bit-identical)\n"
      << "  --threads N      intra-cell worker threads for the batched\n"
      << "                   engine (default 1; 0 = one per physical core;\n"
      << "                   results are bit-identical at any value)\n"
      << "  --model M        fsync | ssync | async (default fsync; ssync\n"
      << "                   and async use seeded Bernoulli activation /\n"
      << "                   phase scheduling, see --activation-p)\n"
      << "  --engine E       fast | reference (default fast; identical\n"
      << "                   results, the reference engines are the\n"
      << "                   canonical implementations)\n"
      << "  --dispatch D     auto | kernel | virtual (default auto;\n"
      << "                   Compute path of the fast engine)\n"
      << "  --activation-p X per-robot activation / phase-advance\n"
      << "                   probability for ssync / async (default 0.5)\n"
      << "  --seed S         RNG seed (default 1)\n"
      << "  --p X            presence probability for bernoulli (0.5)\n"
      << "  --render         print an ASCII strip of the execution\n"
      << "  --render-lines L max strip lines (default 40)\n"
      << "  --help           this text\n";
}

}  // namespace
}  // namespace pef

int main(int argc, char** argv) {
  using namespace pef;

  ArgParser args(argc, argv);
  if (args.has("--help")) {
    print_help(argv[0]);
    return 0;
  }

  // The scenario defaults: a --spec file when given, else the historical
  // CLI defaults.  Explicit flags override either.
  ScenarioSpec spec;
  spec.adversary = adversary_config(AdversaryKind::kEventualMissing);
  const std::string spec_path = args.get_string("--spec", "");
  if (!spec_path.empty()) {
    std::string error;
    const auto document = parse_json_input(spec_path, &error);
    if (!document) {
      std::cerr << error << "\n";
      return 2;
    }
    const auto parsed = scenario_spec_from_json(*document, &error);
    if (!parsed) {
      std::cerr << spec_path << ": " << error << "\n";
      return 2;
    }
    spec = *parsed;
  }

  const auto nodes = args.get_u32("--nodes", spec.nodes);
  const auto robots = args.get_u32("--robots", spec.robots);
  const auto topology_name =
      args.get_string("--topology", to_string(spec.topology));
  std::string algorithm = args.get_string("--algorithm", spec.algorithm);
  const std::string default_adversary =
      adversary_kind_info(spec.adversary.kind).name;
  const auto adversary_name =
      args.get_string("--adversary", default_adversary);
  const auto horizon = args.get_u64("--horizon", spec.horizon);
  const bool batch_given = args.has("--batch");
  const std::string batch_arg = args.get_string("--batch", "1");
  const bool fast_forward = args.has("--fast-forward");
  const auto threads = args.get_u32("--threads", 1);
  const auto model_name =
      args.get_string("--model", to_string(spec.model));
  const auto engine_name = args.get_string("--engine", "fast");
  const auto dispatch_name = args.get_string("--dispatch", "auto");
  const bool activation_p_given = args.has("--activation-p");
  const auto activation_p =
      args.get_double("--activation-p", spec.activation_p);
  const auto seed = args.get_u64("--seed", spec.seed);
  const bool p_given = args.has("--p");
  const auto p = args.get_double("--p", 0.5);
  const bool print_spec = args.has("--print-spec");
  const bool render = args.has("--render");
  const auto render_lines = args.get_u64("--render-lines", 40);
  args.check_unused();
  if (robots == 0 || nodes < 2 || robots >= nodes) {
    std::cerr << "need 1 <= robots < nodes and nodes >= 2\n";
    return 2;
  }
  const std::optional<ExecutionModel> model = parse_execution_model(model_name);
  if (!model) {
    std::cerr << "--model must be fsync, ssync or async\n";
    return 2;
  }
  const std::optional<Topology> topology = parse_topology(topology_name);
  if (!topology) {
    std::cerr << "--topology must be ring or chain\n";
    return 2;
  }
  if (engine_name != "fast" && engine_name != "reference") {
    std::cerr << "--engine must be fast or reference\n";
    return 2;
  }
  ComputeDispatch dispatch = ComputeDispatch::kAuto;
  if (dispatch_name == "kernel") {
    dispatch = ComputeDispatch::kKernel;
  } else if (dispatch_name == "virtual") {
    dispatch = ComputeDispatch::kVirtual;
  } else if (dispatch_name != "auto") {
    std::cerr << "--dispatch must be auto, kernel or virtual\n";
    return 2;
  }
  if (engine_name == "reference" && dispatch != ComputeDispatch::kAuto) {
    std::cerr << "--dispatch applies only to --engine fast (the reference "
                 "engines always run the virtual Algorithm path)\n";
    return 2;
  }
  if (activation_p_given && *model == ExecutionModel::kFsync) {
    std::cerr << "--activation-p applies only to --model ssync|async (FSYNC "
                 "activates every robot every round)\n";
    return 2;
  }
  bool batch_auto = false;
  std::uint32_t batch = 1;
  if (batch_given) {
    if (batch_arg == "auto") {
      batch_auto = true;
    } else {
      char* end = nullptr;
      const unsigned long value = std::strtoul(batch_arg.c_str(), &end, 10);
      if (end == batch_arg.c_str() || *end != '\0' || value == 0 ||
          value > (1u << 20)) {
        std::cerr << "--batch must be a positive replica count or \"auto\"\n";
        return 2;
      }
      batch = static_cast<std::uint32_t>(value);
    }
  }
  if (batch_given && engine_name != "fast") {
    std::cerr << "--batch runs on the fast engine only\n";
    return 2;
  }
  if (batch_given && dispatch == ComputeDispatch::kVirtual) {
    std::cerr << "--batch runs the devirtualized kernel path only\n";
    return 2;
  }
  if (batch_given && render) {
    std::cerr << "--render needs a single traced run (drop --batch)\n";
    return 2;
  }
  if (threads != 1 && !batch_given) {
    std::cerr << "--threads applies to --batch runs (the traced single run "
                 "is inherently serial)\n";
    return 2;
  }
  if (fast_forward && !batch_given) {
    std::cerr << "--fast-forward applies to --batch runs (the traced single "
                 "run must replay every round)\n";
    return 2;
  }

  // Resolve the adversary through the registry (the same table --help is
  // generated from).  An --adversary flag naming a different family than
  // the spec resets that family's params to its registry defaults.
  const auto kind = parse_adversary_kind(adversary_name);
  if (!kind) {
    std::cerr << "unknown adversary \"" << adversary_name
              << "\" (known: " << known_adversary_kinds() << ")\n";
    return 2;
  }
  AdversaryConfig adversary_cfg = spec.adversary.kind == *kind
                                      ? spec.adversary
                                      : adversary_config(*kind);
  if (p_given) {
    if (*kind != AdversaryKind::kBernoulli) {
      std::cerr << "--p applies only to --adversary bernoulli (other "
                   "families take their params from --spec)\n";
      return 2;
    }
    adversary_cfg.set("p", p);
  }

  // The resolved, replayable scenario.
  spec.nodes = nodes;
  spec.robots = robots;
  spec.topology = *topology;
  spec.algorithm = algorithm;
  spec.adversary = adversary_cfg;
  spec.model = *model;
  spec.activation_p = activation_p;
  spec.horizon = horizon;
  spec.seed = seed;
  if (const auto invalid = spec.validate()) {
    std::cerr << *invalid << "\n";
    return 2;
  }
  if (print_spec) {
    std::cout << spec.to_json() << "\n";
    return 0;
  }

  if (algorithm.empty()) algorithm = resolved_algorithm(spec);

  const Ring ring(nodes);
  const auto make_adversary = [&](std::uint64_t s) {
    return adversary_from_config(adversary_cfg, ring, s, robots,
                                 spec.topology);
  };

  if (batch_given) {
    // Monte-Carlo mode.  The engine is chosen by the calibrated break-even
    // model: narrow seed counts run solo Engines (the batch's plane setup
    // and per-round passes only amortize past the break-even width), wide
    // ones run ONE BatchEngine advancing all seeds in lock-step.  Either
    // way the per-seed results are bit-identical (differentially tested).
    if (batch_auto) batch = preferred_batch_width(*model, nodes, robots);
    const BatchPlan plan = plan_batch(*model, nodes, robots, batch, batch);

    std::vector<EngineStats> seed_stats(batch);
    std::vector<CoverageReport> seed_coverage(batch);
    std::vector<Time> seed_simulated(batch, 0);  // 0 = ran plain
    const char* engine_used = plan.use_batch() ? "batch" : "solo";
    const auto start = std::chrono::steady_clock::now();
    if (plan.use_batch()) {
      std::vector<BatchReplica> replicas(batch);
      for (std::uint32_t b = 0; b < batch; ++b) {
        const std::uint64_t s = seed + b;
        BatchReplica& replica = replicas[b];
        replica.algorithm = make_algorithm(algorithm, s);
        replica.placements = spread_placements(ring, robots);
        replica.horizon = horizon;
        wire_standard_replica(replica, *model, make_adversary(s),
                              activation_p, s);
      }
      BatchEngineOptions options;
      options.threads = threads;
      options.fast_forward.enabled = fast_forward;
      BatchEngine batch_engine(ring, *model, std::move(replicas), options);
      batch_engine.run_all();
      for (std::uint32_t b = 0; b < batch; ++b) {
        seed_stats[b] = batch_engine.stats(b);
        seed_coverage[b] = batch_engine.coverage_report(b);
        if (batch_engine.fast_forwarded(b)) {
          seed_simulated[b] = batch_engine.rounds_simulated(b);
        }
      }
    } else {
      for (std::uint32_t b = 0; b < batch; ++b) {
        const std::uint64_t s = seed + b;
        EngineOptions options;
        options.dispatch = dispatch;
        options.fast_forward.enabled = fast_forward;
        std::optional<Engine> solo;
        switch (*model) {
          case ExecutionModel::kFsync:
            solo.emplace(ring, make_algorithm(algorithm, s),
                         make_adversary(s), spread_placements(ring, robots),
                         options);
            break;
          case ExecutionModel::kSsync:
            solo.emplace(ring, make_algorithm(algorithm, s),
                         std::make_unique<SsyncFromFsyncAdversary>(
                             make_adversary(s)),
                         standard_ssync_activation(activation_p, s),
                         spread_placements(ring, robots), options);
            break;
          case ExecutionModel::kAsync:
            solo.emplace(ring, make_algorithm(algorithm, s),
                         std::make_unique<SsyncFromFsyncAdversary>(
                             make_adversary(s)),
                         standard_async_phases(activation_p, s),
                         spread_placements(ring, robots), options);
            break;
        }
        solo->run(horizon);
        seed_stats[b] = solo->stats();
        seed_coverage[b] = solo->coverage_report();
        if (solo->fast_forwarded()) {
          seed_simulated[b] = solo->rounds_simulated();
        }
      }
    }
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();

    std::cout << "pef_run: n=" << nodes << " k=" << robots << " algorithm="
              << algorithm << " adversary=" << adversary_name
              << " horizon=" << horizon << " model=" << to_string(*model)
              << " batch=" << batch << " seeds=[" << seed << ", "
              << seed + batch - 1 << "]\n\n";

    TextTable table({"seed", "visited", "cover time", "perpetual",
                     "max revisit gap", "moves", "tower rounds"});
    bool all_perpetual = true;
    for (std::uint32_t b = 0; b < batch; ++b) {
      const EngineStats& stats = seed_stats[b];
      const CoverageReport& coverage = seed_coverage[b];
      const bool perpetual = coverage.perpetual(nodes);
      all_perpetual = all_perpetual && perpetual;
      table.add_row({std::to_string(seed + b),
                     std::to_string(coverage.visited_node_count) + "/" +
                         std::to_string(nodes),
                     coverage.cover_time ? std::to_string(*coverage.cover_time)
                                         : "never",
                     format_bool(perpetual),
                     std::to_string(coverage.max_revisit_gap),
                     std::to_string(stats.total_moves),
                     std::to_string(stats.tower_rounds)});
    }
    table.print(std::cout);
    // Per-model aggregate throughput: SSYNC counts rounds and ASYNC ticks,
    // so the model tag keeps cross-model batches comparable at a glance.
    // engine= names which path actually ran (the adaptive choice above).
    std::cout << "\naggregate [" << to_string(*model) << "]: "
              << static_cast<std::uint64_t>(
                     static_cast<double>(horizon) * batch / secs)
              << " replica-" << (*model == ExecutionModel::kAsync
                                     ? "ticks"
                                     : "rounds")
              << "/sec over B=" << batch << " (" << secs << " s)"
              << " engine=" << engine_used << "\n";
    if (fast_forward) {
      std::uint32_t engaged = 0;
      std::uint64_t simulated = 0;
      for (std::uint32_t b = 0; b < batch; ++b) {
        if (seed_simulated[b] != 0) {
          ++engaged;
          simulated += seed_simulated[b];
        } else {
          simulated += horizon;
        }
      }
      std::cout << "fast-forward: " << engaged << "/" << batch
                << " seeds cycled, " << simulated << " of "
                << static_cast<std::uint64_t>(horizon) * batch
                << " rounds simulated\n";
    }
    return all_perpetual ? 0 : 1;
  }

  std::optional<Engine> engine;
  std::optional<Simulator> sim;
  std::optional<SsyncSimulator> ssync_sim;
  std::optional<AsyncSimulator> async_sim;
  const Trace* trace_ptr = nullptr;

  // The shared standard policies guarantee fast and reference runs of the
  // same (model, seed) see identical activation streams.
  const auto make_activation = [&] {
    return standard_ssync_activation(activation_p, seed);
  };
  const auto make_phases = [&] {
    return standard_async_phases(activation_p, seed);
  };
  const auto make_ssync_adversary = [&] {
    return std::make_unique<SsyncFromFsyncAdversary>(
        make_adversary(seed));
  };

  if (engine_name == "fast") {
    EngineOptions options;
    options.record_trace = true;  // the report below is all trace analysis
    options.dispatch = dispatch;
    switch (*model) {
      case ExecutionModel::kFsync:
        engine.emplace(ring, make_algorithm(algorithm, seed),
                       make_adversary(seed),
                       spread_placements(ring, robots), options);
        break;
      case ExecutionModel::kSsync:
        engine.emplace(ring, make_algorithm(algorithm, seed),
                       make_ssync_adversary(), make_activation(),
                       spread_placements(ring, robots), options);
        break;
      case ExecutionModel::kAsync:
        engine.emplace(ring, make_algorithm(algorithm, seed),
                       make_ssync_adversary(), make_phases(),
                       spread_placements(ring, robots), options);
        break;
    }
    engine->run(horizon);
    trace_ptr = &engine->trace();
  } else {
    switch (*model) {
      case ExecutionModel::kFsync:
        sim.emplace(ring, make_algorithm(algorithm, seed),
                    make_adversary(seed),
                    spread_placements(ring, robots));
        sim->run(horizon);
        trace_ptr = &sim->trace();
        break;
      case ExecutionModel::kSsync:
        ssync_sim.emplace(ring, make_algorithm(algorithm, seed),
                          make_ssync_adversary(), make_activation(),
                          spread_placements(ring, robots));
        ssync_sim->run(horizon);
        trace_ptr = &ssync_sim->trace();
        break;
      case ExecutionModel::kAsync:
        async_sim.emplace(ring, make_algorithm(algorithm, seed),
                          make_ssync_adversary(), make_phases(),
                          spread_placements(ring, robots));
        async_sim->run(horizon);
        trace_ptr = &async_sim->trace();
        break;
    }
  }
  const Trace& trace = *trace_ptr;

  std::cout << "pef_run: n=" << nodes << " k=" << robots << " algorithm="
            << algorithm << " adversary=" << adversary_name
            << " horizon=" << horizon << " seed=" << seed
            << " model=" << to_string(*model) << " engine=" << engine_name
            << "\n"
            << "TABLE 1 prediction: "
            << computability::to_string(
                   computability::classify(robots, nodes))
            << " (" << computability::supporting_theorem(robots, nodes)
            << ")\n\n";

  if (render) {
    RenderOptions options;
    options.max_lines = render_lines;
    render_trace(std::cout, trace, options);
    std::cout << "\n";
  }

  const auto coverage = analyze_coverage(trace);
  const auto towers = analyze_towers(trace);
  const auto mobility = analyze_mobility(trace);
  const auto audit = audit_connectivity(ring, trace.edge_history(),
                                        horizon / 4);

  TextTable table({"metric", "value"});
  table.add_row({"nodes visited", std::to_string(coverage.visited_node_count) +
                                      "/" + std::to_string(nodes)});
  table.add_row({"cover time", coverage.cover_time
                                   ? std::to_string(*coverage.cover_time)
                                   : "never"});
  table.add_row({"max revisit gap", std::to_string(coverage.max_revisit_gap)});
  table.add_row(
      {"perpetual exploration", format_bool(coverage.perpetual(nodes))});
  table.add_row({"tower formations",
                 std::to_string(towers.tower_formation_count)});
  table.add_row({"max tower size", std::to_string(towers.max_tower_size)});
  table.add_row({"lemma 3.4 (towers <= 2)",
                 format_bool(towers.lemma_3_4_holds)});
  table.add_row({"lemma 3.3 (opposite dirs)",
                 format_bool(towers.lemma_3_3_holds)});
  table.add_row({"total moves", std::to_string(mobility.total_moves)});
  table.add_row({"busiest robot",
                 "r" + std::to_string(mobility.busiest()) + " (" +
                     std::to_string(
                         mobility.robots[mobility.busiest()].moves) +
                     " moves)"});
  table.add_row({"idlest robot",
                 "r" + std::to_string(mobility.idlest()) + " (" +
                     std::to_string(mobility.robots[mobility.idlest()].moves) +
                     " moves)"});
  table.add_row({"adversary legal (c-o-t)",
                 format_bool(audit.connected_over_time)});
  table.add_row({"suspected missing edges",
                 std::to_string(audit.suspected_missing.size())});
  table.print(std::cout);

  return coverage.perpetual(nodes) ? 0 : 1;
}
