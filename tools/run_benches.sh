#!/usr/bin/env bash
# Build Release and run every bench, leaving one BENCH_<name>.json per bench
# in the output directory (default: bench-out/ at the repo root).
#
#   tools/run_benches.sh [output-dir]
#
# The JSON files are the machine-readable perf/correctness trajectory of the
# repo; diff them across commits to see what moved.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out_dir="${1:-"$repo_root/bench-out"}"
build_dir="$repo_root/build-bench"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j"$(nproc)"

mkdir -p "$out_dir"
cd "$out_dir"

benches=(
  bench_scaling
  bench_stress
  bench_table1
  bench_chains
  bench_thm31_pef3plus
  bench_ablation_rules
  bench_fig1_lemma41
  bench_fig2_thm41
  bench_fig3_thm51
  bench_lemma37_sentinels
  bench_ssync_impossibility
)

failed=()
for bench in "${benches[@]}"; do
  echo "==== $bench ===="
  if [ ! -x "$build_dir/$bench" ]; then
    # bench_scaling is skipped by CMake when google-benchmark is absent.
    echo "  skipped (not built)"
    continue
  fi
  if ! "$build_dir/$bench" > "$out_dir/$bench.log" 2>&1; then
    echo "  FAILED (see $out_dir/$bench.log)"
    failed+=("$bench")
    continue
  fi
  tail -3 "$out_dir/$bench.log"
  # Every bench must leave its BENCH_<name>.json behind: a bench that runs
  # but emits no JSON silently drops out of the perf trajectory, which is
  # exactly the failure mode that left BENCH_scaling.json empty once.
  json="$out_dir/BENCH_${bench#bench_}.json"
  if [ ! -s "$json" ]; then
    echo "  FAILED: no JSON report at $json"
    failed+=("$bench")
  fi
done

echo
echo "JSON reports in $out_dir:"
ls -1 "$out_dir"/BENCH_*.json 2>/dev/null || echo "  (none)"

if [ "${#failed[@]}" -gt 0 ]; then
  echo "FAILED benches: ${failed[*]}"
  exit 1
fi
echo "All benches passed."
