#!/usr/bin/env bash
# Shared CI dependency install: toolchain, gtest, google-benchmark.
# Ubuntu's libgtest-dev ships sources only on some releases; build and
# install them when no prebuilt archive is present.
set -euo pipefail

sudo apt-get update
sudo apt-get install -y cmake g++ libgtest-dev libbenchmark-dev

if [ ! -f /usr/lib/x86_64-linux-gnu/libgtest.a ] && [ -d /usr/src/googletest ]; then
  cmake -S /usr/src/googletest -B /tmp/gtest-build
  cmake --build /tmp/gtest-build -j"$(nproc)"
  sudo cmake --install /tmp/gtest-build
fi
