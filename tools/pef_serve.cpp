// pef_serve — the long-running sweep service.
//
//   pef_serve --socket /tmp/pef.sock --cache-dir ~/.cache/pef
//
// One daemon keeps a warm engine, a worker pool and a spec-keyed result
// cache; pef_client (or anything speaking the framed protocol in
// serve/protocol.hpp) submits ScenarioSpec / SweepSpec documents and
// streams progress.  Identical canonical specs are served from the cache
// with zero engine rounds — including across daemon restarts, because every
// cache insert is persisted to --cache-dir.
//
// SIGTERM / SIGINT drain gracefully: running jobs complete, queued jobs are
// cancelled, the socket is unlinked, and the daemon exits 0.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/args.hpp"
#include "serve/server.hpp"

namespace pef {
namespace {

void print_help(const char* program) {
  std::cout
      << "usage: " << program << " --socket PATH [flags]\n\n"
      << "  --socket PATH    Unix-domain socket to serve on (default:\n"
      << "                   $PEF_SERVE_SOCKET)\n"
      << "  --listen H:P     additionally serve on an IPv4 TCP endpoint,\n"
      << "                   e.g. 127.0.0.1:7411 (no auth — loopback or\n"
      << "                   trusted networks only)\n"
      << "  --cache-dir D    persist the result cache here (default:\n"
      << "                   $PEF_SERVE_CACHE_DIR; empty = in-memory only);\n"
      << "                   reloaded on startup for a warm restart\n"
      << "  --cache-bytes B  result-cache budget, key+value bytes\n"
      << "                   (default 268435456 = 256 MiB; LRU eviction)\n"
      << "  --workers W      concurrent jobs (default 2)\n"
      << "  --queue Q        bounded job queue; submissions beyond Q queued\n"
      << "                   jobs are refused (default 64)\n"
      << "  --retain R       finished jobs kept queryable by id before the\n"
      << "                   oldest fall out of the job table (default 128;\n"
      << "                   results stay served from the cache)\n"
      << "  --threads T      SweepRunner threads per sweep job (default 0 =\n"
      << "                   hardware concurrency)\n"
      << "  --help           this text\n";
}

serve::Server* g_server = nullptr;

extern "C" void handle_signal(int) {
  // Async-signal-safe: request_shutdown only writes a byte to a pipe.
  if (g_server != nullptr) g_server->request_shutdown();
}

std::string env_or(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? value : fallback;
}

}  // namespace
}  // namespace pef

int main(int argc, char** argv) {
  using namespace pef;

  ArgParser args(argc, argv);
  if (args.has("--help")) {
    print_help(argv[0]);
    return 0;
  }

  serve::ServerOptions options;
  options.socket_path =
      args.get_string("--socket", env_or("PEF_SERVE_SOCKET", ""));
  options.listen = args.get_string("--listen", "");
  options.cache_dir =
      args.get_string("--cache-dir", env_or("PEF_SERVE_CACHE_DIR", ""));
  options.cache_bytes = args.get_u64("--cache-bytes", options.cache_bytes);
  options.workers = args.get_u32("--workers", options.workers);
  options.max_queue = args.get_u32("--queue", options.max_queue);
  options.max_retained_jobs =
      args.get_u32("--retain", options.max_retained_jobs);
  options.sweep_threads = args.get_u32("--threads", options.sweep_threads);
  args.check_unused();

  if (options.socket_path.empty()) {
    std::cerr << "pef_serve needs a socket: pass --socket PATH or set "
                 "PEF_SERVE_SOCKET\n";
    return 2;
  }

  serve::Server server(options);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "pef_serve: " << error << "\n";
    return 1;
  }
  g_server = &server;
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);

  std::cerr << "pef_serve: listening on " << options.socket_path;
  if (!options.listen.empty()) std::cerr << " and " << options.listen;
  if (server.cache_reloaded() > 0) {
    std::cerr << " (cache warm: " << server.cache_reloaded()
              << " entries reloaded)";
  }
  std::cerr << "\n";

  const bool clean = server.serve();
  g_server = nullptr;

  const serve::ServeStats stats = server.stats_snapshot();
  std::cerr << "pef_serve: drained — " << stats.jobs_done << " jobs done, "
            << stats.cache_hits << " cache hits, " << stats.cells_computed
            << " cells computed\n";
  return clean ? 0 : 1;
}
