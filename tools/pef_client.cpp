// pef_client — submit specs to a running pef_serve daemon.
//
//   pef_client --socket /tmp/pef.sock --spec sweep.json --out result.json
//   cat sweep.json | pef_client --spec -          # spec from stdin
//   pef_client --stats                            # daemon + cache counters
//   pef_client --shutdown                         # graceful drain
//
// The result written to stdout / --out is byte-identical to what pef_sweep
// (or pef_run's JSON) would produce for the same spec — the daemon ships
// the raw result bytes in their own frame, and a cache hit returns the
// exact bytes of the original run.  Progress streams to stderr so piping
// stdout stays clean.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "common/args.hpp"
#include "common/json.hpp"
#include "serve/client.hpp"

namespace pef {
namespace {

void print_help(const char* program) {
  std::cout
      << "usage: " << program << " --spec FILE [flags]\n"
      << "       " << program << " --stats | --shutdown | --status N"
      << " | --cancel N\n\n"
      << "  --spec FILE      ScenarioSpec or SweepSpec JSON to submit\n"
      << "                   (\"-\" reads the spec from stdin)\n"
      << "  --out FILE       write the result here instead of stdout\n"
      << "  --socket PATH    daemon socket (default: $PEF_SERVE_SOCKET)\n"
      << "  --tcp H:P        connect over TCP instead of the Unix socket\n"
      << "  --timeout S      connect retry window, seconds (default 5)\n"
      << "  --stats          print the daemon's stats response and exit\n"
      << "  --status N       print job N's status and exit\n"
      << "  --cancel N       cancel job N and exit (queued jobs die\n"
      << "                   immediately; a running sweep stops at its\n"
      << "                   next seed-group boundary)\n"
      << "  --shutdown       ask the daemon to drain and exit\n"
      << "  --quiet          suppress the progress stream on stderr\n"
      << "  --help           this text\n";
}

std::string env_or(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? value : fallback;
}

int emit(const std::string& json, const std::string& out_path) {
  if (out_path.empty()) {
    std::cout << json << "\n";
    return 0;
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out.is_open()) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << json << "\n";
  return out.good() ? 0 : 1;
}

/// One request/response op (stats, status, cancel, shutdown): print the
/// response payload, exit non-zero on {"ok":false}.
int simple_op(serve::Client& client, const std::string& payload) {
  std::string error;
  if (!client.send_frame(payload, &error)) {
    std::cerr << "pef_client: " << error << "\n";
    return 1;
  }
  const auto response = client.read_frame_payload(&error);
  if (!response) {
    std::cerr << "pef_client: "
              << (error.empty() ? "server closed the connection" : error)
              << "\n";
    return 1;
  }
  std::cout << *response << "\n";
  const auto parsed = parse_json(*response, &error);
  if (parsed) {
    const JsonValue* ok = parsed->find("ok");
    if (ok != nullptr && ok->is_bool() && !ok->bool_value) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pef

int main(int argc, char** argv) {
  using namespace pef;

  ArgParser args(argc, argv);
  if (args.has("--help")) {
    print_help(argv[0]);
    return 0;
  }

  const std::string spec_path = args.get_string("--spec", "");
  const std::string out_path = args.get_string("--out", "");
  const std::string socket_path =
      args.get_string("--socket", env_or("PEF_SERVE_SOCKET", ""));
  const std::string tcp = args.get_string("--tcp", "");
  const double timeout = args.get_double("--timeout", 5.0);
  const bool want_stats = args.has("--stats");
  const bool want_shutdown = args.has("--shutdown");
  const std::string status_id = args.get_string("--status", "");
  const std::string cancel_id = args.get_string("--cancel", "");
  const bool quiet = args.has("--quiet");
  args.check_unused();

  if (socket_path.empty() && tcp.empty()) {
    std::cerr << "pef_client needs an endpoint: pass --socket PATH (or set "
                 "PEF_SERVE_SOCKET) or --tcp HOST:PORT\n";
    return 2;
  }
  const int ops = static_cast<int>(!spec_path.empty()) +
                  static_cast<int>(want_stats) +
                  static_cast<int>(want_shutdown) +
                  static_cast<int>(!status_id.empty()) +
                  static_cast<int>(!cancel_id.empty());
  if (ops != 1) {
    std::cerr << "pick exactly one of --spec, --stats, --status, --cancel, "
                 "--shutdown (--help for usage)\n";
    return 2;
  }

  serve::Client client;
  std::string error;
  const bool connected = tcp.empty()
                             ? client.connect_unix(socket_path, timeout, &error)
                             : client.connect_tcp(tcp, timeout, &error);
  if (!connected) {
    std::cerr << "pef_client: " << error << "\n";
    return 1;
  }

  for (const std::string& id : {status_id, cancel_id}) {
    if (id.find_first_not_of("0123456789") != std::string::npos) {
      std::cerr << "job ids are decimal integers (got \"" << id << "\")\n";
      return 2;
    }
  }

  if (want_stats) return simple_op(client, R"({"op":"stats"})");
  if (want_shutdown) return simple_op(client, R"({"op":"shutdown"})");
  if (!status_id.empty()) {
    return simple_op(client,
                     R"({"op":"status","job":)" + status_id + "}");
  }
  if (!cancel_id.empty()) {
    return simple_op(client,
                     R"({"op":"cancel","job":)" + cancel_id + "}");
  }

  // Submit: spec text travels verbatim; the daemon parses strictly and
  // error frames keep the parser's line/column position.
  const auto spec_text = read_text_input(spec_path, &error);
  if (!spec_text) {
    std::cerr << "pef_client: " << error << "\n";
    return 1;
  }

  bool cached = false;
  std::uint64_t job_id = 0;
  const auto progress = [quiet](std::uint64_t done, std::uint64_t total,
                                double wall) {
    if (quiet) return;
    std::cerr << "\rcells " << done << "/" << total << " (last group "
              << wall << "s)" << std::flush;
    if (done == total) std::cerr << "\n";
  };
  const auto result = client.submit_and_stream(*spec_text, progress, &cached,
                                               &job_id, &error);
  if (!result) {
    if (!quiet) std::cerr << "\n";
    std::cerr << "pef_client: " << error << "\n";
    return 1;
  }
  if (!quiet) {
    std::cerr << (cached ? "served from cache (zero cells computed)"
                         : "job " + std::to_string(job_id) + " done")
              << "\n";
  }
  return emit(*result, out_path);
}
