// Differential tests for BatchEngine: a batch of B replicas must be
// BIT-IDENTICAL to B independent Engine runs — traces, stats and coverage —
// across every registry kernel, every execution model, adversary families
// (oblivious and adaptive) and ragged per-replica horizons (early
// termination compacts lanes out mid-run; the survivors must not notice).
#include "engine/batch_engine.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "adversary/greedy_blocker.hpp"
#include "algorithms/registry.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "core/spec.hpp"
#include "dynamic_graph/schedules.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

constexpr std::uint32_t kBatch = 10;  // one replica per seed
constexpr std::uint32_t kNodes = 9;
constexpr std::uint32_t kRobots = 3;
constexpr Time kBaseHorizon = 160;

/// Ragged horizons: replicas retire at different rounds, exercising the
/// lane-compaction path on every batch.
Time horizon_of(std::uint32_t replica) {
  return kBaseHorizon + 37 * (replica % 4);
}

void expect_same_round(const RoundRecord& actual, const RoundRecord& expected,
                       Time t) {
  ASSERT_EQ(actual.time, expected.time);
  ASSERT_EQ(actual.edges, expected.edges) << "round " << t;
  ASSERT_EQ(actual.robots.size(), expected.robots.size());
  for (RobotId r = 0; r < expected.robots.size(); ++r) {
    ASSERT_EQ(actual.robots[r].node_before, expected.robots[r].node_before)
        << "round " << t << " robot " << r;
    ASSERT_EQ(actual.robots[r].node_after, expected.robots[r].node_after)
        << "round " << t << " robot " << r;
    ASSERT_EQ(actual.robots[r].dir_before, expected.robots[r].dir_before)
        << "round " << t << " robot " << r;
    ASSERT_EQ(actual.robots[r].dir_after, expected.robots[r].dir_after)
        << "round " << t << " robot " << r;
    ASSERT_EQ(actual.robots[r].moved, expected.robots[r].moved)
        << "round " << t << " robot " << r;
    ASSERT_EQ(actual.robots[r].saw_other_robots,
              expected.robots[r].saw_other_robots)
        << "round " << t << " robot " << r;
  }
}

void expect_same_stats(const EngineStats& actual, const EngineStats& expected) {
  EXPECT_EQ(actual.rounds, expected.rounds);
  EXPECT_EQ(actual.total_moves, expected.total_moves);
  EXPECT_EQ(actual.tower_rounds, expected.tower_rounds);
  EXPECT_EQ(actual.tower_formations, expected.tower_formations);
  EXPECT_EQ(actual.visited_node_count, expected.visited_node_count);
  EXPECT_EQ(actual.cover_time, expected.cover_time);
}

void expect_same_coverage(const CoverageReport& actual,
                          const CoverageReport& expected) {
  EXPECT_EQ(actual.visit_counts, expected.visit_counts);
  EXPECT_EQ(actual.cover_time, expected.cover_time);
  EXPECT_EQ(actual.visited_node_count, expected.visited_node_count);
  EXPECT_EQ(actual.max_revisit_gap, expected.max_revisit_gap);
  EXPECT_EQ(actual.max_closed_gap, expected.max_closed_gap);
  EXPECT_EQ(actual.nodes_visited_in_suffix, expected.nodes_visited_in_suffix);
  EXPECT_EQ(actual.suffix_window, expected.suffix_window);
  EXPECT_EQ(actual.horizon, expected.horizon);
}

/// Runs one (algorithm, model, scenario) batch against its B solo Engine
/// twins and pins traces, stats, coverage and final configurations.
/// `make_replica` and `make_engine` must construct the same scenario from
/// the same seed (fresh objects each call).
void run_differential(
    const std::string& label,
    const std::function<BatchReplica(std::uint32_t replica)>& make_replica,
    const std::function<Engine(std::uint32_t replica)>& make_engine,
    ExecutionModel model) {
  SCOPED_TRACE(label);
  const Ring ring(kNodes);

  std::vector<BatchReplica> replicas;
  replicas.reserve(kBatch);
  for (std::uint32_t b = 0; b < kBatch; ++b) {
    replicas.push_back(make_replica(b));
  }
  BatchEngineOptions options;
  options.record_trace = true;
  BatchEngine batch(ring, model, std::move(replicas), options);
  ASSERT_EQ(batch.active_replicas(), kBatch);
  batch.run_all();
  ASSERT_EQ(batch.active_replicas(), 0u);

  for (std::uint32_t b = 0; b < kBatch; ++b) {
    SCOPED_TRACE("replica " + std::to_string(b));
    Engine solo = make_engine(b);
    solo.run(horizon_of(b));

    const Trace& batch_trace = batch.trace(b);
    const Trace& solo_trace = solo.trace();
    ASSERT_EQ(batch_trace.length(), solo_trace.length());
    for (Time t = 0; t < solo_trace.length(); ++t) {
      expect_same_round(batch_trace.rounds()[t], solo_trace.rounds()[t], t);
    }
    expect_same_stats(batch.stats(b), solo.stats());
    expect_same_coverage(batch.coverage_report(b), solo.coverage_report());
    for (RobotId r = 0; r < kRobots; ++r) {
      EXPECT_EQ(batch.robot_node(b, r), solo.robot_node(r)) << "robot " << r;
    }
  }
}

EngineOptions traced_engine_options() {
  EngineOptions options;
  options.record_trace = true;
  return options;
}

// ---------------------------------------------------------------------------
// FSYNC: oblivious (static, Bernoulli, eventual-missing) and adaptive
// (greedy-blocker) adversaries.

struct FsyncFamily {
  const char* name;
  std::function<AdversaryPtr(const Ring&, std::uint64_t)> make;
};

std::vector<FsyncFamily> fsync_families() {
  return {
      {"static",
       [](const Ring& ring, std::uint64_t) {
         return make_oblivious(std::make_shared<StaticSchedule>(ring));
       }},
      {"bernoulli",
       [](const Ring& ring, std::uint64_t seed) {
         return make_oblivious(
             std::make_shared<BernoulliSchedule>(ring, 0.5, seed));
       }},
      {"eventual-missing",
       [](const Ring& ring, std::uint64_t seed) {
         return make_oblivious(std::make_shared<EventualMissingEdgeSchedule>(
             std::make_shared<StaticSchedule>(ring),
             static_cast<EdgeId>(seed % ring.edge_count()), /*vanish=*/5));
       }},
      {"greedy-blocker",
       [](const Ring& ring, std::uint64_t) {
         return AdversaryPtr(
             std::make_unique<GreedyBlockerAdversary>(ring, /*max_absence=*/4));
       }},
  };
}

TEST(BatchEngineFsyncTest, MatchesSoloEnginesAcrossRegistryAndAdversaries) {
  const Ring ring(kNodes);
  for (const std::string& algorithm : algorithm_names()) {
    for (const FsyncFamily& family : fsync_families()) {
      run_differential(
          algorithm + " vs " + family.name,
          [&](std::uint32_t b) {
            const std::uint64_t seed = b + 1;
            BatchReplica replica;
            replica.algorithm = make_algorithm(algorithm, seed);
            replica.adversary = family.make(ring, seed);
            replica.placements = random_placements(ring, kRobots, seed);
            replica.horizon = horizon_of(b);
            return replica;
          },
          [&](std::uint32_t b) {
            const std::uint64_t seed = b + 1;
            return Engine(ring, make_algorithm(algorithm, seed),
                          family.make(ring, seed),
                          random_placements(ring, kRobots, seed),
                          traced_engine_options());
          },
          ExecutionModel::kFsync);
    }
  }
}

// ---------------------------------------------------------------------------
// SSYNC: blocking, oblivious and adaptive adversaries under round-robin,
// Bernoulli and full activation.

struct SsyncScenario {
  const char* name;
  std::function<std::unique_ptr<SsyncAdversary>(const Ring&, std::uint64_t)>
      make_adversary;
  std::function<std::unique_ptr<ActivationPolicy>(std::uint64_t)>
      make_activation;
};

std::vector<SsyncScenario> ssync_scenarios() {
  return {
      {"blocker+round-robin",
       [](const Ring& ring, std::uint64_t) {
         return std::make_unique<SsyncBlockingAdversary>(ring);
       },
       [](std::uint64_t) { return std::make_unique<RoundRobinActivation>(); }},
      {"bernoulli-schedule+bernoulli-activation",
       [](const Ring& ring, std::uint64_t seed) {
         return std::make_unique<SsyncObliviousAdversary>(
             std::make_shared<BernoulliSchedule>(ring, 0.6, seed));
       },
       [](std::uint64_t seed) {
         return std::make_unique<BernoulliActivation>(0.6,
                                                      derive_seed(seed, 0xac));
       }},
      {"adaptive-greedy+full",
       [](const Ring& ring, std::uint64_t) {
         return std::make_unique<SsyncFromFsyncAdversary>(
             std::make_unique<GreedyBlockerAdversary>(ring,
                                                      /*max_absence=*/4));
       },
       [](std::uint64_t) { return std::make_unique<FullActivation>(); }},
  };
}

TEST(BatchEngineSsyncTest, MatchesSoloEnginesAcrossRegistryAndScenarios) {
  const Ring ring(kNodes);
  for (const std::string& algorithm : algorithm_names()) {
    for (const SsyncScenario& scenario : ssync_scenarios()) {
      run_differential(
          algorithm + " vs " + scenario.name,
          [&](std::uint32_t b) {
            const std::uint64_t seed = b + 1;
            BatchReplica replica;
            replica.algorithm = make_algorithm(algorithm, seed);
            replica.ssync_adversary = scenario.make_adversary(ring, seed);
            replica.activation = scenario.make_activation(seed);
            replica.placements = random_placements(ring, kRobots, seed);
            replica.horizon = horizon_of(b);
            return replica;
          },
          [&](std::uint32_t b) {
            const std::uint64_t seed = b + 1;
            return Engine(ring, make_algorithm(algorithm, seed),
                          scenario.make_adversary(ring, seed),
                          scenario.make_activation(seed),
                          random_placements(ring, kRobots, seed),
                          traced_engine_options());
          },
          ExecutionModel::kSsync);
    }
  }
}

// ---------------------------------------------------------------------------
// ASYNC: the same families under phase schedulers.

struct AsyncScenario {
  const char* name;
  std::function<std::unique_ptr<SsyncAdversary>(const Ring&, std::uint64_t)>
      make_adversary;
  std::function<std::unique_ptr<PhaseScheduler>(std::uint64_t)> make_phases;
};

std::vector<AsyncScenario> async_scenarios() {
  return {
      {"move-blocker+round-robin",
       [](const Ring& ring, std::uint64_t) {
         return std::make_unique<AsyncMoveBlocker>(ring);
       },
       [](std::uint64_t) { return std::make_unique<RoundRobinPhases>(); }},
      {"bernoulli-schedule+bernoulli-phases",
       [](const Ring& ring, std::uint64_t seed) {
         return std::make_unique<SsyncObliviousAdversary>(
             std::make_shared<BernoulliSchedule>(ring, 0.6, seed));
       },
       [](std::uint64_t seed) {
         return std::make_unique<BernoulliPhases>(0.6,
                                                  derive_seed(seed, 0xa5));
       }},
      {"adaptive-greedy+lockstep",
       [](const Ring& ring, std::uint64_t) {
         return std::make_unique<SsyncFromFsyncAdversary>(
             std::make_unique<GreedyBlockerAdversary>(ring,
                                                      /*max_absence=*/4));
       },
       [](std::uint64_t) { return std::make_unique<LockstepPhases>(); }},
  };
}

TEST(BatchEngineAsyncTest, MatchesSoloEnginesAcrossRegistryAndScenarios) {
  const Ring ring(kNodes);
  for (const std::string& algorithm : algorithm_names()) {
    for (const AsyncScenario& scenario : async_scenarios()) {
      run_differential(
          algorithm + " vs " + scenario.name,
          [&](std::uint32_t b) {
            const std::uint64_t seed = b + 1;
            BatchReplica replica;
            replica.algorithm = make_algorithm(algorithm, seed);
            replica.ssync_adversary = scenario.make_adversary(ring, seed);
            replica.phases = scenario.make_phases(seed);
            replica.placements = random_placements(ring, kRobots, seed);
            replica.horizon = horizon_of(b);
            return replica;
          },
          [&](std::uint32_t b) {
            const std::uint64_t seed = b + 1;
            return Engine(ring, make_algorithm(algorithm, seed),
                          scenario.make_adversary(ring, seed),
                          scenario.make_phases(seed),
                          random_placements(ring, kRobots, seed),
                          traced_engine_options());
          },
          ExecutionModel::kAsync);
    }
  }
}

// ---------------------------------------------------------------------------
// The batched round prologue, pinned through the standard wiring: every
// registry kernel x {SSYNC(activation_p in {0.3, 1.0}), ASYNC} x batchable
// AND non-batchable registry adversary kinds x 10 ragged-horizon seeds must
// be trace-bit-identical to solo Engines.  This is the differential pin of
// the mask/edge word planes: the devirtualized Bernoulli activation kernels
// (p=0.3 sparse masks, p=1.0 full masks including the forced-nonempty
// fallback path), the schedule-filled edge rows of the batchable kinds (no
// Configuration mirror at all) and the lazily-mirrored virtual path of the
// adaptive kinds all feed the same word-plane passes.

struct ModelCase {
  const char* name;
  ExecutionModel model;
  double activation_p;
};

std::vector<ModelCase> model_cases() {
  return {{"ssync-p0.3", ExecutionModel::kSsync, 0.3},
          {"ssync-p1.0", ExecutionModel::kSsync, 1.0},
          {"async-p0.5", ExecutionModel::kAsync, 0.5}};
}

/// Two batchable (plane-filled, mirror-free) and two non-batchable
/// (adaptive, mirror-path) registry kinds; the registry's `batchable`
/// capability flag is asserted so the matrix stays honest if the registry
/// evolves.
std::vector<AdversaryConfig> registry_adversary_matrix() {
  // (cage/proof stay out: the staged lower-bound adversaries require the
  // robots to start inside their window, which random placements violate.)
  const std::vector<std::pair<AdversaryConfig, bool>> picks = {
      {adversary_config(AdversaryKind::kBernoulli, {{"p", 0.5}}), true},
      {adversary_config(AdversaryKind::kMarkov), true},
      {adversary_config(AdversaryKind::kGreedyBlocker), false},
      {adversary_config(AdversaryKind::kAdaptiveMissing), false},
  };
  std::vector<AdversaryConfig> configs;
  for (const auto& [config, expect_batchable] : picks) {
    EXPECT_EQ(adversary_kind_info(config.kind).batchable, expect_batchable)
        << adversary_kind_info(config.kind).name;
    configs.push_back(config);
  }
  return configs;
}

TEST(BatchEngineModelMatrixTest, RegistryKernelsAcrossModelsAndAdversaries) {
  const Ring ring(kNodes);
  for (const std::string& algorithm : algorithm_names()) {
    for (const ModelCase& mc : model_cases()) {
      for (const AdversaryConfig& config : registry_adversary_matrix()) {
        run_differential(
            algorithm + " vs " + adversary_display_name(config) + " under " +
                mc.name,
            [&](std::uint32_t b) {
              const std::uint64_t seed = b + 1;
              BatchReplica replica;
              replica.algorithm = make_algorithm(algorithm, seed);
              replica.placements = random_placements(ring, kRobots, seed);
              replica.horizon = horizon_of(b);
              wire_standard_replica(
                  replica, mc.model,
                  adversary_from_config(config, ring, seed, kRobots),
                  mc.activation_p, seed);
              return replica;
            },
            [&](std::uint32_t b) {
              const std::uint64_t seed = b + 1;
              auto adversary = std::make_unique<SsyncFromFsyncAdversary>(
                  adversary_from_config(config, ring, seed, kRobots));
              if (mc.model == ExecutionModel::kSsync) {
                return Engine(ring, make_algorithm(algorithm, seed),
                              std::move(adversary),
                              standard_ssync_activation(mc.activation_p, seed),
                              random_placements(ring, kRobots, seed),
                              traced_engine_options());
              }
              return Engine(ring, make_algorithm(algorithm, seed),
                            std::move(adversary),
                            standard_async_phases(mc.activation_p, seed),
                            random_placements(ring, kRobots, seed),
                            traced_engine_options());
            },
            mc.model);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The untraced fast path: stats and coverage still match solo runs (the
// batch-throughput bench relies on exactly this equality), and ragged
// horizons retire lanes at the right rounds.

TEST(BatchEngineTest, UntracedStatsMatchSoloEngines) {
  const Ring ring(64);
  constexpr std::uint32_t kReplicas = 7;
  constexpr std::uint32_t kBots = 8;

  std::vector<BatchReplica> replicas;
  for (std::uint32_t b = 0; b < kReplicas; ++b) {
    BatchReplica replica;
    replica.algorithm = make_algorithm("pef3+", b + 1);
    replica.adversary = make_oblivious(
        std::make_shared<BernoulliSchedule>(ring, 0.7, b + 1));
    replica.placements = random_placements(ring, kBots, b + 1);
    replica.horizon = 500 + 100 * b;
    replicas.push_back(std::move(replica));
  }
  BatchEngine batch(ring, ExecutionModel::kFsync, std::move(replicas));
  batch.run_all();

  for (std::uint32_t b = 0; b < kReplicas; ++b) {
    SCOPED_TRACE("replica " + std::to_string(b));
    Engine solo(ring, make_algorithm("pef3+", b + 1),
                make_oblivious(
                    std::make_shared<BernoulliSchedule>(ring, 0.7, b + 1)),
                random_placements(ring, kBots, b + 1));
    solo.run(500 + 100 * b);
    expect_same_stats(batch.stats(b), solo.stats());
    expect_same_coverage(batch.coverage_report(b), solo.coverage_report());
  }
}

TEST(BatchEngineTest, RaggedHorizonsRetireLanesOnSchedule) {
  const Ring ring(12);
  std::vector<BatchReplica> replicas;
  const std::vector<Time> horizons = {5, 40, 40, 0, 100};
  for (std::size_t b = 0; b < horizons.size(); ++b) {
    BatchReplica replica;
    replica.algorithm = make_algorithm("bounce", b + 1);
    replica.adversary =
        make_oblivious(std::make_shared<StaticSchedule>(ring));
    replica.placements = random_placements(ring, 3, b + 1);
    replica.horizon = horizons[b];
    replicas.push_back(std::move(replica));
  }
  BatchEngine batch(ring, ExecutionModel::kFsync, std::move(replicas));
  // The zero-horizon replica retires before the first step.
  EXPECT_EQ(batch.active_replicas(), 4u);
  for (Time t = 0; t < 5; ++t) batch.step();
  EXPECT_EQ(batch.active_replicas(), 3u);
  for (Time t = 5; t < 40; ++t) batch.step();
  EXPECT_EQ(batch.active_replicas(), 1u);
  batch.run_all();
  EXPECT_EQ(batch.active_replicas(), 0u);
  for (std::size_t b = 0; b < horizons.size(); ++b) {
    EXPECT_EQ(batch.stats(static_cast<std::uint32_t>(b)).rounds, horizons[b]);
  }
}

TEST(BatchEngineTest, RunBatteryBatchedMatchesSequentialRuns) {
  // run_battery dispatches seed batteries to one traced BatchEngine; every
  // per-seed RunResult must equal the sequential run_experiment's.
  for (const ExecutionModel model :
       {ExecutionModel::kFsync, ExecutionModel::kSsync,
        ExecutionModel::kAsync}) {
    SCOPED_TRACE(to_string(model));
    ExperimentConfig config;
    config.nodes = 10;
    config.robots = 3;
    config.algorithm = make_algorithm("pef3+");
    config.adversary = adversary_config(AdversaryKind::kBernoulli, {{"p", 0.6}});
    config.horizon = 300;
    config.model = model;

    const std::vector<RunResult> batched = run_battery(config, 5, 4);
    ASSERT_EQ(batched.size(), 4u);
    for (std::uint32_t s = 0; s < 4; ++s) {
      SCOPED_TRACE("seed " + std::to_string(5 + s));
      config.seed = 5 + s;
      const RunResult solo = run_experiment(config);
      const RunResult& batch = batched[s];
      EXPECT_EQ(batch.seed, solo.seed);
      EXPECT_EQ(batch.perpetual, solo.perpetual);
      EXPECT_EQ(batch.adversary_legal, solo.adversary_legal);
      EXPECT_EQ(batch.coverage.visit_counts, solo.coverage.visit_counts);
      EXPECT_EQ(batch.coverage.cover_time, solo.coverage.cover_time);
      EXPECT_EQ(batch.coverage.max_revisit_gap, solo.coverage.max_revisit_gap);
      EXPECT_EQ(batch.towers.tower_formation_count,
                solo.towers.tower_formation_count);
      EXPECT_EQ(batch.towers.max_tower_size, solo.towers.max_tower_size);
    }
  }
}

TEST(BatchEngineTest, SingleReplicaBatchIsAnEngine) {
  const Ring ring(16);
  BatchReplica replica;
  replica.algorithm = make_algorithm("pef3+", 3);
  replica.adversary =
      make_oblivious(std::make_shared<BernoulliSchedule>(ring, 0.5, 3));
  replica.placements = spread_placements(ring, 4);
  replica.horizon = 300;
  std::vector<BatchReplica> replicas;
  replicas.push_back(std::move(replica));
  BatchEngine batch(ring, ExecutionModel::kFsync, std::move(replicas));
  batch.run_all();

  Engine solo(ring, make_algorithm("pef3+", 3),
              make_oblivious(std::make_shared<BernoulliSchedule>(ring, 0.5, 3)),
              spread_placements(ring, 4));
  solo.run(300);
  expect_same_stats(batch.stats(0), solo.stats());
  expect_same_coverage(batch.coverage_report(0), solo.coverage_report());
}

}  // namespace
}  // namespace pef
