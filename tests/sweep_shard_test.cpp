// Process-level sweep sharding: shard i/N runs a contiguous slice of the
// cell list, and merging the N shard outputs must reproduce the unsharded
// sweep JSON byte-for-byte — pinned here against the same golden baseline
// as sweep_baseline_test, through the same library code pef_sweep uses.
// Also pins examples/specs/sweep_small.json (the spec file the CI sharded
// smoke step feeds to the pef_sweep binary) to that golden grid.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/json.hpp"
#include "engine/sweep_runner.hpp"

namespace pef {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The checked-in spec reproducing tests/baselines/sweep_small.json.
SweepSpec golden_spec() {
  std::string error;
  const auto spec = parse_sweep_spec(
      read_file(std::string(PEF_SPEC_DIR) + "/sweep_small.json"), &error);
  EXPECT_TRUE(spec.has_value()) << error;
  return *spec;
}

std::string golden_json() {
  std::string expected =
      read_file(std::string(PEF_BASELINE_DIR) + "/sweep_small.json");
  if (!expected.empty() && expected.back() == '\n') expected.pop_back();
  return expected;
}

TEST(SweepShardTest, TwoShardsMergeByteIdenticalToGolden) {
  const SweepSpec spec = golden_spec();
  const SweepRunner runner(2);

  const SweepResult shard0 = runner.run(spec, {0, 2});
  const SweepResult shard1 = runner.run(spec, {1, 2});
  EXPECT_EQ(shard0.first_cell, 0u);
  EXPECT_EQ(shard0.cells.size() + shard1.cells.size(), shard0.total_cells);
  EXPECT_EQ(shard1.first_cell, shard0.cells.size());

  std::string error;
  const auto merged = merge_sweep_shards(
      {shard0.to_shard_json(), shard1.to_shard_json()}, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(*merged, golden_json())
      << "sharded sweep diverged from tests/baselines/sweep_small.json";

  // Merge must accept the shards in any order.
  const auto reversed = merge_sweep_shards(
      {shard1.to_shard_json(), shard0.to_shard_json()}, &error);
  ASSERT_TRUE(reversed.has_value()) << error;
  EXPECT_EQ(*reversed, *merged);
}

TEST(SweepShardTest, UnevenShardCountsStillMergeExactly) {
  // 48 cells across 5 shards: slice sizes differ and shard boundaries cut
  // through seed groups (different batch compositions must not change
  // per-cell results).
  const SweepSpec spec = golden_spec();
  const SweepRunner runner(1);
  std::vector<std::string> shard_jsons;
  for (std::uint32_t i = 0; i < 5; ++i) {
    shard_jsons.push_back(runner.run(spec, {i, 5}).to_shard_json());
  }
  std::string error;
  const auto merged = merge_sweep_shards(shard_jsons, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(*merged, golden_json());
}

TEST(SweepShardTest, SingleShardEqualsUnshardedRun) {
  const SweepSpec spec = golden_spec();
  const SweepResult full = SweepRunner(2).run(spec);
  EXPECT_EQ(full.to_json(), golden_json());
  // A 1-shard "partition" merges to the same bytes.
  const SweepResult only = SweepRunner(2).run(spec, {0, 1});
  std::string error;
  const auto merged = merge_sweep_shards({only.to_shard_json()}, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(*merged, full.to_json());
}

TEST(SweepShardTest, MergeRejectsBrokenPartitions) {
  const SweepSpec spec = golden_spec();
  const SweepRunner runner(1);
  const std::string shard0 = runner.run(spec, {0, 2}).to_shard_json();
  const std::string shard1 = runner.run(spec, {1, 2}).to_shard_json();

  std::string error;
  EXPECT_FALSE(merge_sweep_shards({shard0}, &error).has_value());
  EXPECT_NE(error.find("2 shards"), std::string::npos) << error;

  // Duplicate shard indices are a hard error naming BOTH offending inputs
  // (default names without paths; real paths below).
  EXPECT_FALSE(merge_sweep_shards({shard0, shard0}, &error).has_value());
  EXPECT_NE(error.find("duplicate shard index 0"), std::string::npos)
      << error;
  EXPECT_NE(error.find("shard file 0"), std::string::npos) << error;
  EXPECT_NE(error.find("shard file 1"), std::string::npos) << error;

  // When the caller supplies file names (pef_sweep --merge passes its
  // argv paths), the error names the actual files.
  const std::vector<std::string> names{"runA/shard0.json", "runB/shard0.json"};
  EXPECT_FALSE(merge_sweep_shards({shard0, shard0}, &error, nullptr, &names)
                   .has_value());
  EXPECT_NE(error.find("runA/shard0.json"), std::string::npos) << error;
  EXPECT_NE(error.find("runB/shard0.json"), std::string::npos) << error;

  // Shards of different partitions of the same sweep don't mix.
  const std::string third = runner.run(spec, {2, 3}).to_shard_json();
  EXPECT_FALSE(merge_sweep_shards({shard0, third}, &error).has_value());
  EXPECT_NE(error.find("different partition"), std::string::npos) << error;

  // Shards of a DIFFERENT sweep with the same cell count and shard count
  // don't mix either (the embedded spec disagrees), and the error names
  // the mismatching file pair.
  SweepSpec other = spec;
  other.horizon = 123;  // same 48 cells, different sweep
  const std::string foreign = runner.run(other, {1, 2}).to_shard_json();
  const std::vector<std::string> pair{"good.json", "foreign.json"};
  EXPECT_FALSE(merge_sweep_shards({shard0, foreign}, &error, nullptr, &pair)
                   .has_value());
  EXPECT_NE(error.find("different sweep"), std::string::npos) << error;
  EXPECT_NE(error.find("foreign.json"), std::string::npos) << error;
  EXPECT_NE(error.find("good.json"), std::string::npos) << error;

  // A full (unsharded) output is not a shard file.
  const std::string full = runner.run(spec).to_json();
  EXPECT_FALSE(merge_sweep_shards({full, shard1}, &error).has_value());
  EXPECT_NE(error.find("shard"), std::string::npos) << error;

  EXPECT_FALSE(merge_sweep_shards({"{not json", shard1}, &error).has_value());
}

TEST(SweepShardTest, MergeReportsMissingShardsByIndex) {
  // The failure report a shard launcher retries from: the merge names the
  // missing partition indices (pef_sweep --merge surfaces them as the
  // "missing_shards" JSON field with a non-zero exit).
  const SweepSpec spec = golden_spec();
  const SweepRunner runner(1);
  const std::string shard0 = runner.run(spec, {0, 3}).to_shard_json();
  const std::string shard1 = runner.run(spec, {1, 3}).to_shard_json();
  const std::string shard2 = runner.run(spec, {2, 3}).to_shard_json();

  std::string error;
  std::vector<std::uint32_t> missing;
  EXPECT_FALSE(
      merge_sweep_shards({shard0, shard2}, &error, &missing).has_value());
  EXPECT_EQ(missing, (std::vector<std::uint32_t>{1}));
  EXPECT_NE(error.find("missing shard 1 of 3"), std::string::npos) << error;

  EXPECT_FALSE(merge_sweep_shards({shard2}, &error, &missing).has_value());
  EXPECT_EQ(missing, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_NE(error.find("missing shards 0, 1 of 3"), std::string::npos)
      << error;

  // A duplicate is a hard validation error, not a "missing" situation —
  // it gets no missing list, only the duplicate diagnostic.
  EXPECT_FALSE(merge_sweep_shards({shard0, shard0, shard2}, &error, &missing)
                   .has_value());
  EXPECT_TRUE(missing.empty());
  EXPECT_NE(error.find("duplicate shard index 0"), std::string::npos)
      << error;

  // Success clears the list.
  missing = {99};
  const auto merged =
      merge_sweep_shards({shard0, shard1, shard2}, &error, &missing);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_TRUE(missing.empty());
  EXPECT_EQ(*merged, golden_json());
}

TEST(SweepShardTest, PartialMergeEmitsExplicitNullsForMissingCells) {
  // The --allow-partial convention: a degraded merge keeps the FULL cell
  // array with an explicit null per missing cell, so cell id == array
  // index survives degradation.
  const SweepSpec spec = golden_spec();
  const SweepRunner runner(1);
  const std::string shard0 = runner.run(spec, {0, 3}).to_shard_json();
  const std::string shard2 = runner.run(spec, {2, 3}).to_shard_json();

  std::string error;
  const auto partial = merge_sweep_shards_partial({shard0, shard2}, &error);
  ASSERT_TRUE(partial.has_value()) << error;
  EXPECT_FALSE(partial->complete);
  EXPECT_EQ(partial->missing_shards, (std::vector<std::uint32_t>{1}));

  const auto document = parse_json(partial->json, &error);
  ASSERT_TRUE(document.has_value()) << error;
  EXPECT_TRUE(document->find("partial")->bool_value);
  const std::uint64_t total = document->find("total_cells")->uint_value;
  const JsonValue* cells = document->find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->items.size(), total);
  // Shard 1 of 3 covers cells [16, 32): exactly those are null; every
  // other slot holds a real cell object in grid order.
  std::uint64_t nulls = 0;
  for (std::size_t i = 0; i < cells->items.size(); ++i) {
    if (cells->items[i].is_null()) {
      ++nulls;
      EXPECT_GE(i, total * 1 / 3);
      EXPECT_LT(i, total * 2 / 3);
    } else {
      EXPECT_TRUE(cells->items[i].is_object());
      EXPECT_NE(cells->items[i].find("algorithm"), nullptr);
    }
  }
  EXPECT_EQ(nulls, total / 3);
  EXPECT_EQ(document->find("cell_count")->uint_value, total - nulls);

  // A complete set gives back the strict merge bytes, complete == true.
  const std::string shard1 = runner.run(spec, {1, 3}).to_shard_json();
  const auto complete =
      merge_sweep_shards_partial({shard0, shard1, shard2}, &error);
  ASSERT_TRUE(complete.has_value()) << error;
  EXPECT_TRUE(complete->complete);
  EXPECT_TRUE(complete->missing_shards.empty());
  EXPECT_EQ(complete->json, golden_json());
}

TEST(SweepShardTest, MergeRejectsSlicesThatDontFitThePartitionFormula) {
  // A shard claiming index 0/2 but holding shard 0/3's cells (a corrupted
  // or hand-edited file) is caught by the slice-placement check.
  const SweepSpec spec = golden_spec();
  const SweepRunner runner(1);
  std::string forged = runner.run(spec, {0, 3}).to_shard_json();
  const auto pos = forged.find("\"shard_count\":3");
  ASSERT_NE(pos, std::string::npos);
  forged.replace(pos, 15, "\"shard_count\":2");
  const std::string shard1 = runner.run(spec, {1, 2}).to_shard_json();

  std::string error;
  EXPECT_FALSE(merge_sweep_shards({forged, shard1}, &error).has_value());
  EXPECT_NE(error.find("should cover cells"), std::string::npos) << error;
}

TEST(SweepShardTest, ShardCellsMatchTheFullRunSlice) {
  // Beyond bytes: each shard's cells are exactly the full run's slice.
  const SweepSpec spec = golden_spec();
  const SweepResult full = SweepRunner(1).run(spec);
  const SweepResult shard = SweepRunner(1).run(spec, {1, 3});
  ASSERT_LE(shard.first_cell + shard.cells.size(), full.cells.size());
  for (std::size_t i = 0; i < shard.cells.size(); ++i) {
    const SweepCell& a = shard.cells[i];
    const SweepCell& b = full.cells[shard.first_cell + i];
    JsonWriter ja, jb;
    sweep_cell_to_json(ja, a);
    sweep_cell_to_json(jb, b);
    EXPECT_EQ(ja.str(), jb.str()) << "cell " << shard.first_cell + i;
  }
}

}  // namespace
}  // namespace pef
