// Unit tests for the deterministic RNG utilities.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pef {
namespace {

TEST(RngTest, SplitMixIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, XoshiroIsDeterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Xoshiro256 rng(5);
  int heads = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.next_bool(0.5)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.5, 0.01);
}

TEST(RngTest, NextBelowRespectsBound) {
  Xoshiro256 rng(6);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, DeriveSeedSeparatesStreams) {
  // Different coordinates must give different sub-seeds.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t a = 0; a < 10; ++a) {
    for (std::uint64_t b = 0; b < 10; ++b) {
      seeds.insert(derive_seed(123, a, b));
    }
  }
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(RngTest, DeriveSeedDeterministic) {
  EXPECT_EQ(derive_seed(9, 1, 2, 3), derive_seed(9, 1, 2, 3));
  EXPECT_NE(derive_seed(9, 1, 2, 3), derive_seed(10, 1, 2, 3));
}

}  // namespace
}  // namespace pef
