// Unit tests for coverage analysis.
#include "analysis/coverage.hpp"

#include <gtest/gtest.h>

#include "adversary/adversary.hpp"
#include "algorithms/baselines.hpp"
#include "dynamic_graph/schedules.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

Simulator single_walker(std::uint32_t n, SchedulePtr schedule) {
  return Simulator(Ring(n), std::make_shared<KeepDirection>(),
                   make_oblivious(std::move(schedule)),
                   {{0, Chirality(true)}});
}

TEST(CoverageTest, SingleLapCoversRing) {
  auto sim = single_walker(5, std::make_shared<StaticSchedule>(Ring(5)));
  sim.run(5);
  const auto report = analyze_coverage(sim.trace());
  EXPECT_EQ(report.visited_node_count, 5u);
  ASSERT_TRUE(report.cover_time.has_value());
  EXPECT_EQ(*report.cover_time, 4u);  // nodes 0,4,3,2,1 by config time 4
}

TEST(CoverageTest, VisitCountsAccumulate) {
  auto sim = single_walker(4, std::make_shared<StaticSchedule>(Ring(4)));
  sim.run(8);  // two laps
  const auto report = analyze_coverage(sim.trace());
  // Node 0: initial + after rounds 4 and 8 => 3 visits.
  EXPECT_EQ(report.visit_counts[0], 3u);
  EXPECT_EQ(report.visit_counts[1], 2u);
}

TEST(CoverageTest, MaxRevisitGapOnSteadyLap) {
  auto sim = single_walker(6, std::make_shared<StaticSchedule>(Ring(6)));
  sim.run(60);
  const auto report = analyze_coverage(sim.trace());
  EXPECT_EQ(report.max_closed_gap, 6u);
  EXPECT_LE(report.max_revisit_gap, 6u);
  EXPECT_TRUE(report.perpetual(6));
}

TEST(CoverageTest, StarvedNodeBreaksPerpetual) {
  // A robot blocked forever on its start node never visits the rest.
  auto base = std::make_shared<StaticSchedule>(Ring(4));
  auto blocked = std::make_shared<SurgerySchedule>(
      base, std::vector<Removal>{{0, 0, kTimeInfinity},
                                 {3, 0, kTimeInfinity}});
  auto sim = single_walker(4, blocked);
  sim.run(100);
  const auto report = analyze_coverage(sim.trace());
  EXPECT_EQ(report.visited_node_count, 1u);
  EXPECT_FALSE(report.cover_time.has_value());
  EXPECT_FALSE(report.perpetual(4));
  EXPECT_EQ(report.max_revisit_gap, 100u);  // the whole horizon
}

TEST(CoverageTest, SuffixWindowDetectsLateStarvation) {
  // Robot circles for a while, then gets walled into node 0 forever:
  // every node is *visited*, but not in the suffix.
  auto base = std::make_shared<StaticSchedule>(Ring(4));
  auto walled = std::make_shared<SurgerySchedule>(
      base, std::vector<Removal>{{0, 20, kTimeInfinity},
                                 {3, 20, kTimeInfinity}});
  auto sim = single_walker(4, walled);
  sim.run(400);
  const auto report = analyze_coverage(sim.trace(), /*suffix_window=*/100);
  EXPECT_EQ(report.visited_node_count, 4u);
  EXPECT_LT(report.nodes_visited_in_suffix, 4u);
  EXPECT_FALSE(report.perpetual(4));
}

TEST(CoverageTest, VisitTimesOfNode) {
  auto sim = single_walker(3, std::make_shared<StaticSchedule>(Ring(3)));
  sim.run(6);
  const auto times = visit_times(sim.trace(), 0);
  EXPECT_EQ(times, (std::vector<Time>{0, 3, 6}));
  const auto times2 = visit_times(sim.trace(), 2);
  EXPECT_EQ(times2, (std::vector<Time>{1, 4}));
}

TEST(CoverageTest, MultipleRobotsShareCoverage) {
  const Ring ring(8);
  Simulator sim(ring, std::make_shared<KeepDirection>(),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                spread_placements(ring, 4));
  sim.run(2);  // one step suffices: 4 old + 4 new positions cover all 8
  const auto report = analyze_coverage(sim.trace());
  EXPECT_EQ(report.visited_node_count, 8u);
  EXPECT_EQ(*report.cover_time, 1u);
}

TEST(CoverageTest, DefaultSuffixWindowIsQuarter) {
  auto sim = single_walker(3, std::make_shared<StaticSchedule>(Ring(3)));
  sim.run(100);
  const auto report = analyze_coverage(sim.trace());
  EXPECT_EQ(report.suffix_window, 26u);
  EXPECT_EQ(report.horizon, 100u);
}

}  // namespace
}  // namespace pef
