// Tests for the pef_serve subsystem (src/serve/): the framed protocol's
// failure paths, the LRU result cache and its persistence, the in-process
// Server end-to-end (submit, coalesce, cache hit, disconnect mid-stream,
// warm restart), and the real pef_serve + pef_client binaries pinned
// against the golden sweep baseline.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <unistd.h>

#include "common/json.hpp"
#include "core/spec.hpp"
#include "orchestrator/ledger.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace pef::serve {
namespace {

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A fresh per-test scratch directory.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "pef_serve_" + name + "_" +
                          std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Unix socket paths are capped near 108 bytes, so sockets live directly
/// under /tmp rather than in the (potentially deep) TempDir.
std::string fresh_socket(const std::string& name) {
  const std::string path =
      "/tmp/pef_" + name + "_" + std::to_string(::getpid()) + ".sock";
  ::unlink(path.c_str());
  return path;
}

/// A sweep small enough to run in milliseconds but real enough to exercise
/// the batched engine path.
std::string small_sweep_text() {
  return R"({"algorithms":["pef3+"],)"
         R"("adversaries":[{"kind":"static","params":{}}],)"
         R"("models":["fsync"],"ring_sizes":[6],"robot_counts":[3],)"
         R"("seeds":[1,2],"horizon":200})";
}

/// An in-process daemon for one test: started on construction, drained on
/// destruction.
struct TestServer {
  explicit TestServer(ServerOptions options) : server(std::move(options)) {
    std::string error;
    started = server.start(&error);
    EXPECT_TRUE(started) << error;
    if (started) {
      serve_thread = std::thread([this] { clean = server.serve(); });
    }
  }

  ~TestServer() { drain(); }

  void drain() {
    if (!serve_thread.joinable()) return;
    server.request_shutdown();
    serve_thread.join();
  }

  Server server;
  bool started = false;
  bool clean = false;
  std::thread serve_thread;
};

ServerOptions base_options(const std::string& tag) {
  ServerOptions options;
  options.socket_path = fresh_socket(tag);
  options.workers = 2;
  options.sweep_threads = 2;
  return options;
}

// ---------------------------------------------------------------------------
// ResultCache

TEST(ResultCacheTest, LruEvictionUnderByteBudget) {
  // Budget of 2 entries' worth: inserting a third evicts the least
  // recently used.
  ResultCache cache(2 * (1 + 10), "");
  cache.insert("a", "0123456789");
  cache.insert("b", "0123456789");
  EXPECT_TRUE(cache.lookup("a").has_value());  // bump "a" to MRU
  cache.insert("c", "0123456789");             // evicts "b"

  EXPECT_TRUE(cache.lookup("a").has_value());
  EXPECT_FALSE(cache.lookup("b").has_value());
  EXPECT_TRUE(cache.lookup("c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, 2u * 11u);
}

TEST(ResultCacheTest, EntryLargerThanBudgetIsNeverCached) {
  ResultCache cache(8, "");
  cache.insert("key", "a result far larger than eight bytes");
  EXPECT_FALSE(cache.lookup("key").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(ResultCacheTest, PersistsAndReloadsNamedByLedgerHash) {
  const std::string dir = fresh_dir("cache_persist");
  const std::string key = R"({"spec":"canonical"})";
  {
    ResultCache cache(1 << 20, dir);
    cache.insert(key, "result-bytes");
    // File name = fnv1a64 hex of the key — the ledger's spec-hash
    // convention, so a cache directory is greppable by spec hash.
    char expected[17];
    std::snprintf(expected, sizeof expected, "%016llx",
                  static_cast<unsigned long long>(fnv1a64(key)));
    EXPECT_EQ(cache.entry_path(key),
              dir + "/" + std::string(expected) + ".entry");
    EXPECT_TRUE(fs::exists(cache.entry_path(key)));
  }
  ResultCache reloaded(1 << 20, dir);
  EXPECT_EQ(reloaded.load_from_disk(nullptr), 1u);
  EXPECT_EQ(reloaded.lookup(key).value_or(""), "result-bytes");
  EXPECT_EQ(reloaded.stats().reloaded, 1u);

  // A directory over the reload budget shrinks to fit.
  ResultCache tiny(4, dir);
  EXPECT_EQ(tiny.load_from_disk(nullptr), 1u);
  EXPECT_EQ(tiny.stats().entries, 0u);
}

TEST(ResultCacheTest, HashCollisionDoesNotClobberPersistedEntries) {
  const std::string dir = fresh_dir("cache_collision");
  const std::string key = R"({"spec":"ours"})";
  std::string base_slot;
  std::string our_slot;
  {
    ResultCache cache(1 << 20, dir);
    // Forge an occupant of the key's base slot holding a DIFFERENT key —
    // the on-disk shape of a 64-bit hash collision.
    base_slot = cache.entry_path(key);  // nothing stored yet: the base name
    std::ofstream impostor(base_slot, std::ios::binary);
    impostor << "impostor-key\nimpostor-value\n";
    impostor.close();
    cache.insert(key, "our-value");
    // The insert stepped to the next suffixed slot instead of overwriting.
    our_slot = cache.entry_path(key);
    EXPECT_NE(our_slot, base_slot);
    EXPECT_NE(read_file(base_slot).find("impostor-value"),
              std::string::npos);
    EXPECT_NE(read_file(our_slot).find("our-value"), std::string::npos);
  }

  // A warm restart restores BOTH entries.
  ResultCache reloaded(1 << 20, dir);
  EXPECT_EQ(reloaded.load_from_disk(nullptr), 2u);
  EXPECT_EQ(reloaded.lookup(key).value_or(""), "our-value");
  EXPECT_EQ(reloaded.lookup("impostor-key").value_or(""), "impostor-value");

  // Evicting ours unlinks OUR slot, never the impostor's.
  {
    ResultCache tiny(4, dir);  // over budget: insert evicts immediately
    tiny.insert(key, "our-value");
  }
  EXPECT_FALSE(fs::exists(our_slot));
  EXPECT_TRUE(fs::exists(base_slot));
  EXPECT_NE(read_file(base_slot).find("impostor-value"), std::string::npos);
}

TEST(ResultCacheTest, EvictionRemovesThePersistedFile) {
  const std::string dir = fresh_dir("cache_unpersist");
  ResultCache cache(2 * (1 + 4), dir);
  cache.insert("a", "aaaa");
  cache.insert("b", "bbbb");
  const std::string evicted_file = cache.entry_path("a");
  EXPECT_TRUE(fs::exists(evicted_file));
  cache.insert("c", "cccc");  // evicts "a"
  EXPECT_FALSE(fs::exists(evicted_file));
  EXPECT_TRUE(fs::exists(cache.entry_path("c")));
}

// ---------------------------------------------------------------------------
// Protocol failure paths (in-process server, raw client frames)

TEST(ServeProtocolTest, MalformedFrameGetsErrorThenClose) {
  TestServer daemon(base_options("malformed"));
  ASSERT_TRUE(daemon.started);

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect_unix(daemon.server.socket_path(), 5, &error))
      << error;
  ASSERT_TRUE(client.send_frame("this is not json", &error)) << error;
  const auto response = client.read_frame_payload(&error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_NE(response->find("\"ok\":false"), std::string::npos) << *response;
  EXPECT_NE(response->find("malformed request frame"), std::string::npos)
      << *response;
  // The server closes after a malformed frame (framing trust is gone).
  EXPECT_FALSE(client.read_frame_payload(&error).has_value());
}

TEST(ServeProtocolTest, OversizedFrameIsRefusedWithoutReadingIt) {
  TestServer daemon(base_options("oversized"));
  ASSERT_TRUE(daemon.started);

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect_unix(daemon.server.socket_path(), 5, &error))
      << error;
  // A length word claiming 1 GiB — no payload follows, and none is needed:
  // the server answers from the header alone.
  const std::uint32_t huge = 1u << 30;
  std::string header(4, '\0');
  header[0] = static_cast<char>(huge >> 24);
  header[1] = static_cast<char>(huge >> 16);
  header[2] = static_cast<char>(huge >> 8);
  header[3] = static_cast<char>(huge);
  ASSERT_TRUE(client.send_raw(header, &error)) << error;
  const auto response = client.read_frame_payload(&error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_NE(response->find("\"ok\":false"), std::string::npos) << *response;
  EXPECT_FALSE(client.read_frame_payload(&error).has_value());
}

TEST(ServeProtocolTest, InvalidSpecErrorCarriesLineAndColumn) {
  TestServer daemon(base_options("badspec"));
  ASSERT_TRUE(daemon.started);

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect_unix(daemon.server.socket_path(), 5, &error))
      << error;
  // Syntax error on line 2: the submit error must preserve the JSON
  // parser's position so the client can point at the file.
  const std::string broken_spec = "{\n  \"algorithms\": [,]\n}";
  const auto result =
      client.submit_and_stream(broken_spec, nullptr, nullptr, nullptr,
                               &error);
  EXPECT_FALSE(result.has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("column"), std::string::npos) << error;

  // Semantic errors (well-formed JSON, invalid spec) are actionable too.
  const auto semantic = client.submit_and_stream(
      R"({"algorithms":["no-such-algorithm"],)"
      R"("adversaries":[{"kind":"static","params":{}}],)"
      R"("ring_sizes":[6],"robot_counts":[3],"seeds":[1]})",
      nullptr, nullptr, nullptr, &error);
  EXPECT_FALSE(semantic.has_value());
  EXPECT_NE(error.find("no-such-algorithm"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// End-to-end serving semantics (in-process)

TEST(ServeEndToEndTest, SubmitComputesThenIdenticalSubmitIsCacheHit) {
  TestServer daemon(base_options("cachehit"));
  ASSERT_TRUE(daemon.started);

  Client first;
  std::string error;
  ASSERT_TRUE(first.connect_unix(daemon.server.socket_path(), 5, &error))
      << error;
  bool cached = true;
  std::uint64_t progress_calls = 0;
  const auto result1 = first.submit_and_stream(
      small_sweep_text(),
      [&progress_calls](std::uint64_t, std::uint64_t, double) {
        ++progress_calls;
      },
      &cached, nullptr, &error);
  ASSERT_TRUE(result1.has_value()) << error;
  EXPECT_FALSE(cached);
  EXPECT_GT(progress_calls, 0u);

  // Whitespace/key-order variants canonicalize to the same cache key.
  Client second;
  ASSERT_TRUE(second.connect_unix(daemon.server.socket_path(), 5, &error))
      << error;
  const std::string reordered =
      R"({"seeds":[1,2],"horizon":200,"robot_counts":[3],"ring_sizes":[6],)"
      R"("models":["fsync"],)"
      R"("adversaries":[{"kind":"static","params":{}}],)"
      R"("algorithms":["pef3+"]})";
  const auto result2 =
      second.submit_and_stream(reordered, nullptr, &cached, nullptr, &error);
  ASSERT_TRUE(result2.has_value()) << error;
  EXPECT_TRUE(cached);
  EXPECT_EQ(*result1, *result2);

  const ServeStats stats = daemon.server.stats_snapshot();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.jobs_done, 1u);
  // The hit cost zero engine rounds: only the first submit computed its
  // 1 algo x 1 adversary x 1 model x 1 n x 1 k x 2 seeds = 2 cells.
  EXPECT_EQ(stats.cells_computed, 2u);
}

TEST(ServeEndToEndTest, DisconnectMidStreamStillLandsInCache) {
  TestServer daemon(base_options("disconnect"));
  ASSERT_TRUE(daemon.started);

  // Submit, read only the ack, then vanish.
  {
    Client rude;
    std::string error;
    ASSERT_TRUE(rude.connect_unix(daemon.server.socket_path(), 5, &error))
        << error;
    JsonWriter submit;
    submit.begin_object();
    submit.field("op", "submit");
    submit.field("spec_text", small_sweep_text());
    submit.end_object();
    const auto ack = rude.request(submit.str(), &error);
    ASSERT_TRUE(ack.has_value()) << error;
    const JsonValue* ok = ack->find("ok");
    ASSERT_TRUE(ok != nullptr && ok->bool_value) << error;
    rude.disconnect();  // mid-stream: progress frames now hit a dead socket
  }

  // The job is the worker's, not the connection's: it completes and its
  // result lands in the cache.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (daemon.server.cache_stats_snapshot().insertions == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "job did not complete after client disconnect";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  Client polite;
  std::string error;
  ASSERT_TRUE(polite.connect_unix(daemon.server.socket_path(), 5, &error))
      << error;
  bool cached = false;
  const auto result = polite.submit_and_stream(small_sweep_text(), nullptr,
                                               &cached, nullptr, &error);
  ASSERT_TRUE(result.has_value()) << error;
  EXPECT_TRUE(cached);
}

TEST(ServeEndToEndTest, WarmRestartServesFromPersistedCache) {
  const std::string cache_dir = fresh_dir("warm_restart");
  std::string result_before;
  {
    ServerOptions options = base_options("warm1");
    options.cache_dir = cache_dir;
    TestServer daemon(options);
    ASSERT_TRUE(daemon.started);
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect_unix(daemon.server.socket_path(), 5, &error))
        << error;
    const auto result = client.submit_and_stream(small_sweep_text(), nullptr,
                                                 nullptr, nullptr, &error);
    ASSERT_TRUE(result.has_value()) << error;
    result_before = *result;
    daemon.drain();
    EXPECT_TRUE(daemon.clean);
  }

  // A NEW daemon on the same cache dir serves the same bytes with zero
  // engine work.
  ServerOptions options = base_options("warm2");
  options.cache_dir = cache_dir;
  TestServer daemon(options);
  ASSERT_TRUE(daemon.started);
  EXPECT_GE(daemon.server.cache_reloaded(), 1u);

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect_unix(daemon.server.socket_path(), 5, &error))
      << error;
  bool cached = false;
  const auto result = client.submit_and_stream(small_sweep_text(), nullptr,
                                               &cached, nullptr, &error);
  ASSERT_TRUE(result.has_value()) << error;
  EXPECT_TRUE(cached);
  EXPECT_EQ(*result, result_before);
  EXPECT_EQ(daemon.server.stats_snapshot().cells_computed, 0u);
}

TEST(ServeEndToEndTest, TinyCacheBudgetEvictsAndRecomputes) {
  ServerOptions options = base_options("tinycache");
  options.cache_bytes = 64;  // smaller than any spec key + result
  TestServer daemon(options);
  ASSERT_TRUE(daemon.started);

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect_unix(daemon.server.socket_path(), 5, &error))
      << error;
  const auto result1 = client.submit_and_stream(small_sweep_text(), nullptr,
                                                nullptr, nullptr, &error);
  ASSERT_TRUE(result1.has_value()) << error;
  // Nothing fits the budget, so the identical submit recomputes — same
  // bytes, cached=false.
  EXPECT_EQ(daemon.server.cache_stats_snapshot().entries, 0u);
  EXPECT_GE(daemon.server.cache_stats_snapshot().evictions, 1u);

  bool cached = true;
  const auto result2 = client.submit_and_stream(small_sweep_text(), nullptr,
                                                &cached, nullptr, &error);
  ASSERT_TRUE(result2.has_value()) << error;
  EXPECT_FALSE(cached);
  EXPECT_EQ(*result1, *result2);
}

TEST(ServeEndToEndTest, ScenarioSpecsAreServedAndCachedToo) {
  TestServer daemon(base_options("scenario"));
  ASSERT_TRUE(daemon.started);

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect_unix(daemon.server.socket_path(), 5, &error))
      << error;
  const std::string scenario =
      R"({"nodes":8,"robots":3,"horizon":300,"seed":5})";
  bool cached = true;
  const auto result1 = client.submit_and_stream(scenario, nullptr, &cached,
                                                nullptr, &error);
  ASSERT_TRUE(result1.has_value()) << error;
  EXPECT_FALSE(cached);
  // The result is the canonical run_result_to_json document.
  std::string parse_error;
  const auto parsed = parse_json(*result1, &parse_error);
  ASSERT_TRUE(parsed.has_value()) << parse_error;
  EXPECT_NE(parsed->find("perpetual"), nullptr);

  const auto result2 = client.submit_and_stream(scenario, nullptr, &cached,
                                                nullptr, &error);
  ASSERT_TRUE(result2.has_value()) << error;
  EXPECT_TRUE(cached);
  EXPECT_EQ(*result1, *result2);
}

TEST(ServeEndToEndTest, DisconnectedClientsAreReclaimedNotParked) {
  TestServer daemon(base_options("reclaim"));
  ASSERT_TRUE(daemon.started);

  // pef_client opens one connection per command: a daemon that parked each
  // served fd and thread until shutdown would hit EMFILE and stop
  // accepting.  Serve a handful of short-lived clients and require the
  // registry to return to empty.
  for (int round = 0; round < 8; ++round) {
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect_unix(daemon.server.socket_path(), 5, &error))
        << error;
    const auto stats = client.request(R"({"op":"stats"})", &error);
    ASSERT_TRUE(stats.has_value()) << error;
    client.disconnect();
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (daemon.server.active_connections() != 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "disconnected clients were not reclaimed";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

TEST(ServeEndToEndTest, TerminalJobsFallOutOfTheJobTable) {
  ServerOptions options = base_options("retain");
  options.max_retained_jobs = 2;
  TestServer daemon(options);
  ASSERT_TRUE(daemon.started);

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect_unix(daemon.server.socket_path(), 5, &error))
      << error;
  std::uint64_t first_job = 0;
  for (int seed = 1; seed <= 4; ++seed) {
    const std::string scenario =
        R"({"nodes":8,"robots":3,"horizon":50,"seed":)" +
        std::to_string(seed) + "}";
    std::uint64_t job_id = 0;
    const auto result = client.submit_and_stream(scenario, nullptr, nullptr,
                                                 &job_id, &error);
    ASSERT_TRUE(result.has_value()) << error;
    if (seed == 1) first_job = job_id;
  }

  // Four jobs finished under a retention window of two: the table is
  // bounded by the window, not by the daemon's lifetime job count.
  EXPECT_LE(daemon.server.jobs_table_size(), 2u);

  // The evicted id no longer answers status — its RESULT still serves,
  // from the cache keyed by spec.
  JsonWriter status_request;
  status_request.begin_object();
  status_request.field("op", "status");
  status_request.field("job", first_job);
  status_request.end_object();
  const auto status = client.request(status_request.str(), &error);
  ASSERT_TRUE(status.has_value()) << error;
  const JsonValue* ok = status->find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_FALSE(ok->bool_value);

  bool cached = false;
  const auto replay = client.submit_and_stream(
      R"({"nodes":8,"robots":3,"horizon":50,"seed":1})", nullptr, &cached,
      nullptr, &error);
  ASSERT_TRUE(replay.has_value()) << error;
  EXPECT_TRUE(cached);
}

TEST(ServeEndToEndTest, CancelStopsARunningSweep) {
  ServerOptions options = base_options("cancel_running");
  options.workers = 1;
  options.sweep_threads = 1;
  TestServer daemon(options);
  ASSERT_TRUE(daemon.started);

  // Long enough to be mid-run when the cancel lands, with many seed
  // groups (one per ring size) so the cooperative flag has between-group
  // boundaries to stop at.
  const std::string big_sweep =
      R"({"algorithms":["pef3+"],)"
      R"("adversaries":[{"kind":"static","params":{}}],)"
      R"("models":["fsync"],"ring_sizes":[6,7,8,9,10,11,12,13],)"
      R"("robot_counts":[3],"seeds":[1,2],"horizon":20000000})";

  std::string error;
  std::uint64_t job_id = 0;
  {
    Client submitter;
    ASSERT_TRUE(
        submitter.connect_unix(daemon.server.socket_path(), 5, &error))
        << error;
    JsonWriter submit;
    submit.begin_object();
    submit.field("op", "submit");
    submit.field("spec_text", big_sweep);
    submit.end_object();
    const auto ack = submitter.request(submit.str(), &error);
    ASSERT_TRUE(ack.has_value()) << error;
    const JsonValue* ok = ack->find("ok");
    ASSERT_TRUE(ok != nullptr && ok->bool_value);
    const JsonValue* job = ack->find("job");
    ASSERT_TRUE(job != nullptr);
    job_id = job->uint_value;
    submitter.disconnect();  // the job is the worker's, not the stream's
  }

  Client control;
  ASSERT_TRUE(control.connect_unix(daemon.server.socket_path(), 5, &error))
      << error;
  const auto job_state = [&]() -> std::string {
    JsonWriter status;
    status.begin_object();
    status.field("op", "status");
    status.field("job", job_id);
    status.end_object();
    const auto response = control.request(status.str(), &error);
    if (!response.has_value()) return "<request failed: " + error + ">";
    const JsonValue* state = response->find("state");
    return state != nullptr ? state->string_value : "<no state>";
  };

  // Wait until the worker picks the job up, then cancel it mid-run.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (job_state() != "running") {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "job never started running";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  JsonWriter cancel;
  cancel.begin_object();
  cancel.field("op", "cancel");
  cancel.field("job", job_id);
  cancel.end_object();
  const auto response = control.request(cancel.str(), &error);
  ASSERT_TRUE(response.has_value()) << error;
  const JsonValue* ok = response->find("ok");
  ASSERT_TRUE(ok != nullptr && ok->bool_value)
      << "cancel refused for the running job";

  // The sweep stops at its next seed-group boundary and the job lands
  // terminal as cancelled.
  while (job_state() == "running") {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "running sweep ignored the cancel flag";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(job_state(), "cancelled");

  // A cancelled sweep is partial: nothing may land in the cache, and the
  // stats must count it as cancelled, not done.
  const ServeStats stats = daemon.server.stats_snapshot();
  EXPECT_EQ(stats.jobs_cancelled, 1u);
  EXPECT_EQ(stats.jobs_done, 0u);
  EXPECT_EQ(stats.cells_computed, 0u);
  EXPECT_EQ(daemon.server.cache_stats_snapshot().insertions, 0u);
}

// ---------------------------------------------------------------------------
// The real binaries against the golden baseline

TEST(ServeBinaryTest, ClientOutputIsByteIdenticalToGoldenBaseline) {
  const std::string serve_bin = std::string(PEF_BIN_DIR) + "/pef_serve";
  const std::string client_bin = std::string(PEF_BIN_DIR) + "/pef_client";
  ASSERT_TRUE(fs::exists(serve_bin)) << serve_bin;
  ASSERT_TRUE(fs::exists(client_bin)) << client_bin;

  const std::string dir = fresh_dir("binary_e2e");
  const std::string socket = fresh_socket("binary_e2e");
  const std::string spec =
      std::string(PEF_SPEC_DIR) + "/sweep_small.json";
  const std::string golden =
      std::string(PEF_BASELINE_DIR) + "/sweep_small.json";

  // One shell script drives the whole conversation so the daemon's
  // lifetime is contained even if an assertion fires.
  const std::string script =
      serve_bin + " --socket " + socket + " --cache-dir " + dir +
      "/cache 2>" + dir + "/serve.log & SERVE_PID=$!; " + client_bin +
      " --socket " + socket + " --timeout 10 --quiet --spec " + spec +
      " --out " + dir + "/first.json && " + client_bin + " --socket " +
      socket + " --timeout 10 --quiet --spec " + spec + " --out " + dir +
      "/second.json && " + client_bin + " --socket " + socket +
      " --stats > " + dir + "/stats.json; STATUS=$?; kill -TERM "
      "$SERVE_PID; wait $SERVE_PID; SERVE_STATUS=$?; exit "
      "$((STATUS + SERVE_STATUS))";
  const int status = std::system(("sh -c '" + script + "'").c_str());
  ASSERT_EQ(status, 0) << read_file(dir + "/serve.log");

  const std::string expected = read_file(golden);
  EXPECT_EQ(read_file(dir + "/first.json"), expected);
  EXPECT_EQ(read_file(dir + "/second.json"), expected);

  // The stats response proves the second run was a pure cache hit.
  std::string error;
  const auto stats = parse_json(read_file(dir + "/stats.json"), &error);
  ASSERT_TRUE(stats.has_value()) << error;
  const JsonValue* serve_stats = stats->find("stats");
  ASSERT_NE(serve_stats, nullptr);
  const JsonValue* hits = serve_stats->find("cache_hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->uint_value, 1u);
}

}  // namespace
}  // namespace pef::serve
