// Unit tests for EdgeSet.
#include "dynamic_graph/edge_set.hpp"

#include <gtest/gtest.h>

namespace pef {
namespace {

TEST(EdgeSetTest, EmptyAndAll) {
  const EdgeSet none = EdgeSet::none(10);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(none.size(), 0u);
  const EdgeSet all = EdgeSet::all(10);
  EXPECT_TRUE(all.full());
  EXPECT_EQ(all.size(), 10u);
  for (EdgeId e = 0; e < 10; ++e) {
    EXPECT_FALSE(none.contains(e));
    EXPECT_TRUE(all.contains(e));
  }
}

TEST(EdgeSetTest, InsertEraseSet) {
  EdgeSet s(8);
  s.insert(3);
  s.insert(7);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(0));
  EXPECT_EQ(s.size(), 2u);
  s.erase(3);
  EXPECT_FALSE(s.contains(3));
  s.set(0, true);
  s.set(7, false);
  EXPECT_TRUE(s.contains(0));
  EXPECT_FALSE(s.contains(7));
  EXPECT_EQ(s.size(), 1u);
}

TEST(EdgeSetTest, InsertIsIdempotent) {
  EdgeSet s(4);
  s.insert(2);
  s.insert(2);
  EXPECT_EQ(s.size(), 1u);
}

TEST(EdgeSetTest, LargeSetsSpanMultipleWords) {
  EdgeSet s(200);
  s.insert(0);
  s.insert(63);
  s.insert(64);
  s.insert(127);
  s.insert(128);
  s.insert(199);
  EXPECT_EQ(s.size(), 6u);
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(199));
  EXPECT_FALSE(s.contains(100));
  const auto v = s.to_vector();
  EXPECT_EQ(v, (std::vector<EdgeId>{0, 63, 64, 127, 128, 199}));
}

TEST(EdgeSetTest, SetOperations) {
  EdgeSet a(6);
  a.insert(0);
  a.insert(1);
  a.insert(2);
  EdgeSet b(6);
  b.insert(2);
  b.insert(3);

  EXPECT_EQ((a | b).to_vector(), (std::vector<EdgeId>{0, 1, 2, 3}));
  EXPECT_EQ((a & b).to_vector(), (std::vector<EdgeId>{2}));
  EXPECT_EQ((a - b).to_vector(), (std::vector<EdgeId>{0, 1}));
}

TEST(EdgeSetTest, Equality) {
  EdgeSet a(5);
  a.insert(1);
  EdgeSet b(5);
  EXPECT_NE(a, b);
  b.insert(1);
  EXPECT_EQ(a, b);
}

TEST(EdgeSetTest, ToString) {
  EdgeSet s(5);
  EXPECT_EQ(s.to_string(), "{}");
  s.insert(0);
  s.insert(4);
  EXPECT_EQ(s.to_string(), "{0, 4}");
}

TEST(EdgeSetTest, FillAndClearInPlace) {
  for (std::uint32_t count : {1u, 5u, 64u, 65u, 130u}) {
    EdgeSet s(count);
    s.fill();
    EXPECT_TRUE(s.full()) << "count=" << count;
    EXPECT_EQ(s.size(), count);
    EXPECT_EQ(s, EdgeSet::all(count));
    s.clear();
    EXPECT_TRUE(s.empty()) << "count=" << count;
    EXPECT_EQ(s, EdgeSet::none(count));
  }
}

TEST(EdgeSetTest, FullAndEmptyEarlyExitAcrossWordBoundaries) {
  // full() must not be fooled by set bits beyond a partially-set last word,
  // and empty()/full() must work when the word count is > 1.
  EdgeSet s(130);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.full());
  s.insert(129);
  EXPECT_FALSE(s.empty());
  EXPECT_FALSE(s.full());
  s.fill();
  EXPECT_TRUE(s.full());
  s.erase(0);
  EXPECT_FALSE(s.full());
  s.insert(0);
  s.erase(64);  // bit in the middle word
  EXPECT_FALSE(s.full());
}

TEST(EdgeSetTest, ContainsUncheckedAgreesWithContains) {
  EdgeSet s(100);
  s.insert(0);
  s.insert(63);
  s.insert(64);
  s.insert(99);
  for (EdgeId e = 0; e < 100; ++e) {
    EXPECT_EQ(s.contains_unchecked(e), s.contains(e)) << "e=" << e;
  }
}

}  // namespace
}  // namespace pef
