// Tests for the legality-capped greedy blocker (possibility-side stress).
#include "adversary/greedy_blocker.hpp"

#include <gtest/gtest.h>

#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "dynamic_graph/properties.hpp"
#include "dynamic_graph/schedules.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

TEST(GreedyBlockerTest, RemovesPointedEdges) {
  const Ring ring(6);
  GreedyBlockerAdversary blocker(ring, 4);
  std::vector<RobotSnapshot> snaps(2);
  snaps[0].node = 0;
  snaps[0].dir = LocalDirection::kLeft;  // ccw with default chirality
  snaps[1].node = 3;
  snaps[1].dir = LocalDirection::kRight;  // cw
  const Configuration gamma(ring, snaps);
  const EdgeSet edges = blocker.choose_edges(0, gamma);
  // Robot 0 points at edge 5 (ccw of node 0); robot 1 at edge 3.
  EXPECT_FALSE(edges.contains(5));
  EXPECT_FALSE(edges.contains(3));
  EXPECT_EQ(edges.size(), 4u);
}

TEST(GreedyBlockerTest, AbsenceBudgetForcesReopening) {
  // A camping robot keeps pointing at the same edge; after `max_absence`
  // rounds the blocker must re-present it.
  const Ring ring(5);
  const Time budget = 3;
  GreedyBlockerAdversary blocker(ring, budget);
  std::vector<RobotSnapshot> snaps(1);
  snaps[0].node = 2;
  snaps[0].dir = LocalDirection::kLeft;  // points at edge 1 forever
  const Configuration gamma(ring, snaps);
  Time absent_run = 0;
  for (Time t = 0; t < 50; ++t) {
    const EdgeSet edges = blocker.choose_edges(t, gamma);
    if (edges.contains(1)) {
      absent_run = 0;
    } else {
      ++absent_run;
      EXPECT_LE(absent_run, budget);
    }
  }
}

TEST(GreedyBlockerTest, RealizedPrefixIsLegal) {
  const Ring ring(7);
  Simulator sim(ring, make_algorithm("pef3+"),
                std::make_unique<GreedyBlockerAdversary>(ring, 5),
                spread_placements(ring, 3));
  sim.run(2000);
  const auto audit =
      audit_connectivity(ring, sim.trace().edge_history(), 500);
  EXPECT_TRUE(audit.connected_over_time);
  EXPECT_TRUE(audit.suspected_missing.empty());
  EXPECT_LE(audit.max_closed_absence, 5u);
}

TEST(GreedyBlockerTest, Pef3PlusStillExploresUnderStress) {
  // Theorem 3.1 is adversary-universal: even the pointed-edge blocker only
  // slows PEF_3+ down.
  for (std::uint32_t n : {5u, 8u, 11u}) {
    const Ring ring(n);
    Simulator sim(ring, make_algorithm("pef3+"),
                  std::make_unique<GreedyBlockerAdversary>(ring, 6),
                  spread_placements(ring, 3));
    sim.run(1000 * n);
    EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(n)) << "n=" << n;
  }
}

TEST(GreedyBlockerTest, SlowsExplorationComparedToStatic) {
  const Ring ring(8);
  auto run_gap = [&](AdversaryPtr adversary) {
    Simulator sim(ring, make_algorithm("pef3+"), std::move(adversary),
                  spread_placements(ring, 3));
    sim.run(6000);
    return analyze_coverage(sim.trace()).max_revisit_gap;
  };
  const Time stressed =
      run_gap(std::make_unique<GreedyBlockerAdversary>(ring, 6));
  const Time easy = run_gap(
      make_oblivious(std::make_shared<StaticSchedule>(ring)));
  EXPECT_GT(stressed, easy);
}

TEST(GreedyBlockerTest, PefTwoOnTriangleSurvives) {
  const Ring ring(3);
  Simulator sim(ring, make_algorithm("pef2"),
                std::make_unique<GreedyBlockerAdversary>(ring, 4),
                {{0, Chirality(true)}, {1, Chirality(true)}});
  sim.run(5000);
  EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(3));
}

TEST(GreedyBlockerTest, PefOneOnTwoRingSurvives) {
  const Ring ring(2);
  Simulator sim(ring, make_algorithm("pef1"),
                std::make_unique<GreedyBlockerAdversary>(ring, 4),
                {{0, Chirality(true)}});
  sim.run(3000);
  EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(2));
}

}  // namespace
}  // namespace pef
