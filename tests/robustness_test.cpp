// Robustness / self-stabilization study (the [4] connection).
//
// The paper assumes *well-initiated* executions: towerless start, k < n.
// Its predecessor [4] (Bournat, Datta, Dubois — SSS 2016) built a
// self-stabilizing algorithm precisely because PEF_3+-style protocols are
// NOT self-stabilizing: started from an arbitrary configuration (towers
// allowed, arbitrary persistent memory) they can livelock.  These tests
// pin down both sides:
//   * the specific bad initial configurations and their failure modes,
//   * the configurations PEF_3+ *does* tolerate (arbitrary dirs and
//     HasMoved flags — the memory part of the state is self-correcting;
//     only initial towers are dangerous).
#include <gtest/gtest.h>

#include "adversary/adversary.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "analysis/towers.hpp"
#include "dynamic_graph/schedules.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

SimulatorOptions lax() {
  SimulatorOptions options;
  options.enforce_well_initiated = false;
  return options;
}

TEST(RobustnessTest, InitialTowerOfTwinsLivelocks) {
  // Two robots with identical chirality starting on the SAME node see
  // identical views forever: under PEF_3+ they flip together on every
  // round they move (Rule 3 fires for both), oscillating as a pair between
  // two adjacent nodes — with an eventual missing edge elsewhere, the rest
  // of the ring starves.  This is why [4] needed extra machinery.
  const Ring ring(6);
  auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
      std::make_shared<StaticSchedule>(ring), 4, 8);
  Simulator sim(ring, make_algorithm("pef3+"), make_oblivious(schedule),
                {{0, Chirality(true)},
                 {0, Chirality(true)},
                 {2, Chirality(true)}},
                lax());
  sim.run(1500);
  const auto coverage = analyze_coverage(sim.trace());
  EXPECT_FALSE(coverage.perpetual(6));
  // The twins never separate: every configuration keeps them colocated.
  for (Time t = 0; t <= 1500; t += 50) {
    EXPECT_EQ(sim.trace().position_at(0, t), sim.trace().position_at(1, t));
  }
}

TEST(RobustnessTest, InitialTowerWithOppositeChiralitySeparates) {
  // Opposite-chirality robots on one node pointing "left" consider
  // opposite global directions: the first move splits them and the run
  // recovers — towers are only sticky for *symmetric* members.
  const Ring ring(6);
  Simulator sim(ring, make_algorithm("pef3+"),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                {{0, Chirality(true)},
                 {0, Chirality(false)},
                 {3, Chirality(true)}},
                lax());
  sim.run(400);
  EXPECT_NE(sim.trace().position_at(0, 400), sim.trace().position_at(1, 400));
  EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(6));
}

TEST(RobustnessTest, ArbitraryMemoryIsSelfCorrecting) {
  // Corrupt HasMovedPreviousStep: after one Compute the variable is
  // rewritten from the actual environment, so any initial value is
  // forgotten within a round — exploration is unaffected.  We emulate the
  // corruption by starting robots "mid-run": dirs are arbitrary because
  // the initial dir is an adversarial choice anyway (the paper fixes
  // `left`, but the proofs never rely on it).
  const Ring ring(8);
  auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
      std::make_shared<StaticSchedule>(ring), 1, 10);
  // Mixed chiralities approximate arbitrary initial dir values (dir=left
  // with flipped chirality == dir=right unflipped, same global pointing).
  Simulator sim(ring, make_algorithm("pef3+"), make_oblivious(schedule),
                {{0, Chirality(false)},
                 {3, Chirality(true)},
                 {6, Chirality(false)}});
  sim.run(1200);
  EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(8));
}

TEST(RobustnessTest, KEqualsNIsDegenerate) {
  // With k == n (excluded by the model) PEF_3+ on a static ring still
  // "explores" trivially (every node permanently occupied), but the
  // impossibility-side machinery below k < n is what the theory is about;
  // we simply document the engine handles it when checks are relaxed.
  const Ring ring(4);
  Simulator sim(ring, make_algorithm("pef3+"),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                {{0, Chirality(true)},
                 {1, Chirality(true)},
                 {2, Chirality(true)},
                 {3, Chirality(true)}},
                lax());
  sim.run(100);
  EXPECT_EQ(analyze_coverage(sim.trace()).visited_node_count, 4u);
}

TEST(RobustnessTest, TwinTowerOfThreeAlsoSticky) {
  // Lemma 3.4 (no 3-towers) holds for *well-initiated* executions; seeded
  // 3-towers of identical twins persist, confirming the hypothesis is
  // needed.
  const Ring ring(7);
  Simulator sim(ring, make_algorithm("pef3+"),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                {{2, Chirality(true)},
                 {2, Chirality(true)},
                 {2, Chirality(true)}},
                lax());
  sim.run(300);
  const auto towers = analyze_towers(sim.trace());
  EXPECT_FALSE(towers.lemma_3_4_holds);
  EXPECT_EQ(sim.trace().position_at(0, 300), sim.trace().position_at(1, 300));
  EXPECT_EQ(sim.trace().position_at(1, 300), sim.trace().position_at(2, 300));
}

TEST(RobustnessTest, RandomTowerlessStartsAlwaysRecover) {
  // The flip side: EVERY towerless initial configuration (arbitrary nodes,
  // arbitrary chiralities) is fine — this is exactly the paper's
  // well-initiated assumption, checked across random draws.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Ring ring(7);
    auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
        std::make_shared<StaticSchedule>(ring), 3, 12);
    Simulator sim(ring, make_algorithm("pef3+"), make_oblivious(schedule),
                  random_placements(ring, 3, seed));
    sim.run(1800);
    EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(7))
        << "seed=" << seed;
  }
}

}  // namespace
}  // namespace pef
