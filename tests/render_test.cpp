// Tests for the ASCII trace renderer.
#include "analysis/render.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "adversary/adversary.hpp"
#include "algorithms/registry.hpp"
#include "dynamic_graph/schedules.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

Simulator make_sim(std::uint32_t n, std::uint32_t k) {
  const Ring ring(n);
  return Simulator(ring, make_algorithm("keep-direction"),
                   make_oblivious(std::make_shared<StaticSchedule>(ring)),
                   spread_placements(ring, k));
}

TEST(RenderTest, ConfigurationShowsRobotCounts) {
  auto sim = make_sim(5, 2);  // robots at 0 and 2
  sim.run(1);
  RenderOptions options;
  options.show_edges = false;
  const std::string line = render_configuration(sim.trace(), 0, options);
  // Columns: node 0 has a robot, node 2 has a robot.
  const auto strip = line.substr(10);
  EXPECT_EQ(strip[0], '1');
  EXPECT_EQ(strip[1], '.');
  EXPECT_EQ(strip[2], '1');
  EXPECT_EQ(strip[3], '.');
  EXPECT_EQ(strip[4], '.');
}

TEST(RenderTest, TowersShowMultiplicity) {
  const Ring ring(4);
  Simulator sim(ring, make_algorithm("keep-direction"),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                {{2, Chirality(true)}, {0, Chirality(false)}});
  sim.run(1);  // both now on node 1
  RenderOptions options;
  options.show_edges = false;
  const std::string line = render_configuration(sim.trace(), 1, options);
  EXPECT_NE(line.find('2'), std::string::npos);
}

TEST(RenderTest, MissingEdgesRenderAsGaps) {
  const Ring ring(4);
  auto cut = std::make_shared<SurgerySchedule>(
      std::make_shared<StaticSchedule>(ring),
      std::vector<Removal>{{1, 0, kTimeInfinity}});
  Simulator sim(ring, make_algorithm("keep-direction"), make_oblivious(cut),
                {{0, Chirality(true)}});
  sim.run(1);
  RenderOptions options;
  const std::string line = render_configuration(sim.trace(), 0, options);
  // Strip layout: node0 edge0 node1 edge1 node2 edge2 node3 [wrap].
  const auto strip = line.substr(10);
  EXPECT_EQ(strip[1], '-');  // edge 0 present
  EXPECT_EQ(strip[3], ' ');  // edge 1 cut
  EXPECT_EQ(strip[5], '-');  // edge 2 present
}

TEST(RenderTest, HighlightedEdgeMarked) {
  auto sim = make_sim(6, 1);
  sim.run(2);
  RenderOptions options;
  options.highlight_edge = 2;
  const std::string line = render_configuration(sim.trace(), 0, options);
  EXPECT_NE(line.find('|'), std::string::npos);
}

TEST(RenderTest, FullTraceRespectsMaxLines) {
  auto sim = make_sim(5, 1);
  sim.run(200);
  RenderOptions options;
  options.max_lines = 20;
  std::ostringstream out;
  render_trace(out, sim.trace(), options);
  std::size_t lines = 0;
  for (char c : out.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_LE(lines, 22u);  // max_lines + elision marker
  EXPECT_NE(out.str().find("elided"), std::string::npos);
}

TEST(RenderTest, ShortTraceFullyPrinted) {
  auto sim = make_sim(4, 1);
  sim.run(5);
  std::ostringstream out;
  render_trace(out, sim.trace());
  std::size_t lines = 0;
  for (char c : out.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 6u);  // configurations 0..5
  EXPECT_EQ(out.str().find("elided"), std::string::npos);
}

}  // namespace
}  // namespace pef
