// Tests for the baseline algorithms and the registry — including the
// characteristic *failures* that motivate the paper's rules.
#include "algorithms/baselines.hpp"

#include <gtest/gtest.h>

#include "adversary/adversary.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "dynamic_graph/schedules.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

TEST(RegistryTest, AllNamesConstruct) {
  for (const std::string& name : algorithm_names()) {
    const AlgorithmPtr algo = make_algorithm(name, 7);
    ASSERT_NE(algo, nullptr) << name;
    EXPECT_FALSE(algo->name().empty());
    auto state = algo->make_state(0);
    ASSERT_NE(state, nullptr);
    EXPECT_FALSE(state->to_string().empty());
  }
}

TEST(RegistryTest, DeterministicListExcludesRandomWalk) {
  for (const std::string& name : deterministic_algorithm_names()) {
    EXPECT_NE(name, "random-walk");
  }
}

TEST(RegistryDeathTest, UnknownNameAborts) {
  EXPECT_DEATH({ auto a = make_algorithm("no-such-algo"); (void)a; },
               "unknown algorithm");
}

TEST(KeepDirectionTest, NeverChangesDirection) {
  const KeepDirection algo;
  auto state = algo.make_state(0);
  LocalDirection dir = LocalDirection::kLeft;
  for (int ahead = 0; ahead < 2; ++ahead) {
    for (int behind = 0; behind < 2; ++behind) {
      for (int others = 0; others < 2; ++others) {
        View v;
        v.exists_edge_ahead = ahead != 0;
        v.exists_edge_behind = behind != 0;
        v.other_robots_on_node = others != 0;
        algo.compute(v, dir, *state);
        EXPECT_EQ(dir, LocalDirection::kLeft);
      }
    }
  }
}

TEST(KeepDirectionTest, ExploresStaticButNotEventualMissing) {
  const Ring ring(6);
  {
    Simulator sim(ring, std::make_shared<KeepDirection>(),
                  make_oblivious(std::make_shared<StaticSchedule>(ring)),
                  spread_placements(ring, 3));
    sim.run(200);
    EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(6));
  }
  {
    // One eventual missing edge starves it: every robot eventually camps.
    auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
        std::make_shared<StaticSchedule>(ring), 0, 8);
    Simulator sim(ring, std::make_shared<KeepDirection>(),
                  make_oblivious(schedule), spread_placements(ring, 3));
    sim.run(600);
    EXPECT_FALSE(analyze_coverage(sim.trace()).perpetual(6));
  }
}

TEST(BounceTest, TurnsOnlyWhenBlockedAndOtherSideOpen) {
  const BounceOnMissing algo;
  auto state = algo.make_state(0);
  LocalDirection dir = LocalDirection::kLeft;
  View v;
  v.exists_edge_ahead = false;
  v.exists_edge_behind = false;
  algo.compute(v, dir, *state);
  EXPECT_EQ(dir, LocalDirection::kLeft);  // nowhere to go: keep
  v.exists_edge_behind = true;
  algo.compute(v, dir, *state);
  EXPECT_EQ(dir, LocalDirection::kRight);  // bounce
}

TEST(BounceTest, LivelocksAcrossEventualMissingEdgeWithOneRobot) {
  // A single bouncing robot on a ring with an eventual missing edge patrols
  // the chain endlessly — it explores a *chain*, which is exactly why one
  // robot fails only on rings of size > 2 via the adaptive adversary, not
  // via a single missing edge.
  const Ring ring(5);
  auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
      std::make_shared<StaticSchedule>(ring), 2, 4);
  Simulator sim(ring, std::make_shared<BounceOnMissing>(),
                make_oblivious(schedule), {{0, Chirality(true)}});
  sim.run(400);
  EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(5));
}

TEST(RandomWalkTest, PerRobotStreamsDiffer) {
  const RandomWalk algo(42);
  auto s0 = algo.make_state(0);
  auto s1 = algo.make_state(1);
  // Feed both the same views; their decisions must diverge eventually.
  LocalDirection d0 = LocalDirection::kLeft;
  LocalDirection d1 = LocalDirection::kLeft;
  View v;
  v.exists_edge_ahead = true;
  v.exists_edge_behind = true;
  bool diverged = false;
  for (int i = 0; i < 64 && !diverged; ++i) {
    algo.compute(v, d0, *s0);
    algo.compute(v, d1, *s1);
    diverged = d0 != d1;
  }
  EXPECT_TRUE(diverged);
}

TEST(RandomWalkTest, EventuallyCoversStaticRing) {
  const Ring ring(6);
  Simulator sim(ring, std::make_shared<RandomWalk>(9),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                {{0, Chirality(true)}});
  sim.run(5000);
  EXPECT_EQ(analyze_coverage(sim.trace()).visited_node_count, 6u);
}

TEST(OscillatingTest, TurnsEveryPeriod) {
  const Oscillating algo(3);
  auto state = algo.make_state(0);
  LocalDirection dir = LocalDirection::kLeft;
  View v;
  v.exists_edge_ahead = true;
  v.exists_edge_behind = true;
  algo.compute(v, dir, *state);
  EXPECT_EQ(dir, LocalDirection::kLeft);
  algo.compute(v, dir, *state);
  EXPECT_EQ(dir, LocalDirection::kLeft);
  algo.compute(v, dir, *state);
  EXPECT_EQ(dir, LocalDirection::kRight);  // 3rd call turns
  algo.compute(v, dir, *state);
  EXPECT_EQ(dir, LocalDirection::kRight);
}

TEST(OscillatingTest, PatrolsOnlyASegmentOfBigRings) {
  // Period-4 oscillation confines a lone robot to a small arc: it cannot
  // explore a 12-ring even with every edge present.
  const Ring ring(12);
  Simulator sim(ring, std::make_shared<Oscillating>(4),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                {{0, Chirality(true)}});
  sim.run(1000);
  EXPECT_LT(analyze_coverage(sim.trace()).visited_node_count, 12u);
}

}  // namespace
}  // namespace pef
