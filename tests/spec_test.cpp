// Tests for the declarative scenario/sweep spec API (core/spec.hpp) and the
// JSON parser underneath it (common/json.hpp): parse∘serialize must be the
// identity, bad input must fail with actionable messages, and the adversary
// registry must agree with the historical battery factories.
#include "core/spec.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/experiment.hpp"
#include "orchestrator/ledger.hpp"

namespace pef {
namespace {

// ---------------------------------------------------------------------------
// JsonValue / parse_json

TEST(JsonParseTest, ParsesScalarsExactly) {
  std::string error;
  const auto doc = parse_json(
      R"({"a": 1, "b": -2.5, "c": true, "d": null, "e": "x\n", )"
      R"("big": 17454410316023251831})",
      &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_TRUE(doc->is_object());
  EXPECT_TRUE(doc->find("a")->is_uint);
  EXPECT_EQ(doc->find("a")->uint_value, 1u);
  EXPECT_FALSE(doc->find("b")->is_uint);
  EXPECT_DOUBLE_EQ(doc->find("b")->number_value, -2.5);
  EXPECT_TRUE(doc->find("c")->bool_value);
  EXPECT_TRUE(doc->find("d")->is_null());
  EXPECT_EQ(doc->find("e")->string_value, "x\n");
  // Above 2^53: doubles round, uint_value must not.
  EXPECT_TRUE(doc->find("big")->is_uint);
  EXPECT_EQ(doc->find("big")->uint_value, 17454410316023251831ull);
}

TEST(JsonParseTest, PreservesMemberOrderAndNesting) {
  std::string error;
  const auto doc =
      parse_json(R"({"z": [1, {"k": [true]}], "a": {}})", &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_EQ(doc->members.size(), 2u);
  EXPECT_EQ(doc->members[0].first, "z");
  EXPECT_EQ(doc->members[1].first, "a");
  const JsonValue& z = doc->members[0].second;
  ASSERT_TRUE(z.is_array());
  ASSERT_EQ(z.items.size(), 2u);
  EXPECT_TRUE(z.items[1].find("k")->items[0].bool_value);
}

TEST(JsonParseTest, ErrorsCarryLineAndColumn) {
  std::string error;
  EXPECT_FALSE(parse_json("{\"a\": 1,\n  \"b\" 2}", &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("':'"), std::string::npos) << error;

  EXPECT_FALSE(parse_json("[1, 2", &error).has_value());
  EXPECT_NE(error.find("unterminated array"), std::string::npos) << error;

  EXPECT_FALSE(parse_json("{} trailing", &error).has_value());
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;

  EXPECT_FALSE(parse_json("{\"a\": nul}", &error).has_value());
}

TEST(JsonParseTest, RoundTripsWriterOutput) {
  JsonWriter writer;
  writer.begin_object();
  writer.field("name", "quote\" and \\ and\ttab");
  writer.field("pi", 3.25);
  writer.begin_array("xs");
  writer.element(std::uint64_t{18446744073709551615ull});
  writer.end_array();
  writer.end_object();
  std::string error;
  const auto doc = parse_json(writer.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("name")->string_value, "quote\" and \\ and\ttab");
  EXPECT_DOUBLE_EQ(doc->find("pi")->number_value, 3.25);
  EXPECT_EQ(doc->find("xs")->items[0].uint_value, 18446744073709551615ull);
}

// ---------------------------------------------------------------------------
// The adversary registry

TEST(AdversaryRegistryTest, BatchableFlagMatchesResolutionForEveryKind) {
  // The `batchable` capability flag must track what adversary_from_config
  // actually resolves to, for EVERY registry kind: batchable == the live
  // adversary is an oblivious schedule (a pure function of time), which is
  // exactly the property BatchEngine's plane-fill path detects at runtime
  // (ObliviousAdversary / SsyncAdversary::oblivious_schedule()).  A kind
  // whose resolution changes without its flag becomes stale metadata —
  // this pin makes that a test failure instead.
  const Ring ring(12);
  for (const AdversaryKindInfo& info : adversary_registry()) {
    const AdversaryPtr adversary =
        adversary_from_config(adversary_config(info.kind), ring, /*seed=*/3,
                              /*robots=*/3);
    const bool oblivious =
        dynamic_cast<const ObliviousAdversary*>(adversary.get()) != nullptr;
    EXPECT_EQ(info.batchable, oblivious) << info.name;
    // And batchable/adaptive partition the registry: an adversary either
    // never sees gamma (batchable) or is one of the adaptive families.
    EXPECT_EQ(info.batchable, !info.adaptive) << info.name;
  }
}

TEST(AdversaryRegistryTest, NamesRoundTripThroughTheRegistry) {
  for (const AdversaryKindInfo& info : adversary_registry()) {
    const auto kind = parse_adversary_kind(info.name);
    ASSERT_TRUE(kind.has_value()) << info.name;
    EXPECT_EQ(*kind, info.kind);
    EXPECT_STREQ(adversary_kind_info(info.kind).name, info.name);
  }
  EXPECT_FALSE(parse_adversary_kind("no-such-family").has_value());
}

TEST(AdversaryRegistryTest, DisplayNamesMatchTheHistoricalBatteryNames) {
  // The sweep baseline JSON pins these strings; the registry is now their
  // single source of truth.
  EXPECT_EQ(adversary_display_name(adversary_config(AdversaryKind::kStatic)),
            "static");
  EXPECT_EQ(adversary_display_name(
                adversary_config(AdversaryKind::kBernoulli, {{"p", 0.5}})),
            "bernoulli(p=0.5)");
  EXPECT_EQ(adversary_display_name(adversary_config(
                AdversaryKind::kPeriodic, {{"period", 5}, {"duty", 3}})),
            "periodic(3/5)");
  EXPECT_EQ(adversary_display_name(
                adversary_config(AdversaryKind::kTInterval)),
            "t-interval(T=4)");
  EXPECT_EQ(adversary_display_name(
                adversary_config(AdversaryKind::kBoundedAbsence)),
            "bounded-absence(A=6)");
  const auto battery = standard_battery_configs();
  const auto factories = standard_battery();
  ASSERT_EQ(battery.size(), factories.size());
  for (std::size_t i = 0; i < battery.size(); ++i) {
    EXPECT_EQ(adversary_display_name(battery[i]), factories[i].name);
  }
}

TEST(AdversaryRegistryTest, ConfigMatchesFactoryDraws) {
  // adversary_from_config must reproduce the historical factories exactly:
  // same schedule family, same seed derivation, same edge sets.
  const Ring ring(9);
  const Configuration gamma(
      ring, {{0, LocalDirection::kRight, Chirality(true), ""},
             {3, LocalDirection::kLeft, Chirality(true), ""},
             {6, LocalDirection::kRight, Chirality(false), ""}});
  for (const AdversaryConfig& config : standard_battery_configs()) {
    const AdversarySpec factory = spec_from_config(config);
    AdversaryPtr a = adversary_from_config(config, ring, 42);
    AdversaryPtr b = factory.make(ring, 42);
    for (Time t = 0; t < 64; ++t) {
      const EdgeSet ea = a->choose_edges(t, gamma);
      const EdgeSet eb = b->choose_edges(t, gamma);
      for (EdgeId e = 0; e < ring.edge_count(); ++e) {
        ASSERT_EQ(ea.contains(e), eb.contains(e))
            << adversary_display_name(config) << " diverged at t=" << t
            << " edge " << e;
      }
    }
  }
}

TEST(AdversaryConfigTest, ParamResolutionAndEquality) {
  AdversaryConfig config = adversary_config(AdversaryKind::kBernoulli);
  EXPECT_DOUBLE_EQ(config.param("p"), 0.5);  // registry default
  config.set("p", 0.9);
  EXPECT_DOUBLE_EQ(config.param("p"), 0.9);
  // Explicit default == absent default.
  EXPECT_EQ(adversary_config(AdversaryKind::kBernoulli, {{"p", 0.5}}),
            adversary_config(AdversaryKind::kBernoulli));
  EXPECT_FALSE(adversary_config(AdversaryKind::kBernoulli, {{"p", 0.9}}) ==
               adversary_config(AdversaryKind::kBernoulli));
}

TEST(AdversaryConfigTest, ValidationExplainsWhatIsWrong) {
  const auto err = validate_adversary(
      adversary_config(AdversaryKind::kBernoulli, {{"p", 1.5}}));
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("\"p\""), std::string::npos) << *err;
  EXPECT_NE(err->find("[0, 1]"), std::string::npos) << *err;

  const auto duty = validate_adversary(adversary_config(
      AdversaryKind::kPeriodic, {{"period", 3}, {"duty", 5}}));
  ASSERT_TRUE(duty.has_value());
  EXPECT_NE(duty->find("duty"), std::string::npos) << *duty;
}

// ---------------------------------------------------------------------------
// ScenarioSpec JSON

TEST(ScenarioSpecTest, JsonRoundTripIsIdentity) {
  ScenarioSpec spec;
  spec.nodes = 12;
  spec.robots = 4;
  spec.algorithm = "pef3+";
  spec.adversary = adversary_config(AdversaryKind::kBernoulli, {{"p", 0.7}});
  spec.model = ExecutionModel::kSsync;
  spec.activation_p = 0.25;
  spec.horizon = 1234;
  spec.seed = 17454410316023251831ull;  // > 2^53: must stay exact

  std::string error;
  const auto parsed = parse_scenario_spec(spec.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, spec);
  // serialize ∘ parse ∘ serialize is byte-stable.
  EXPECT_EQ(parsed->to_json(), spec.to_json());
}

TEST(ScenarioSpecTest, DefaultsRoundTripToo) {
  const ScenarioSpec spec;
  std::string error;
  const auto parsed = parse_scenario_spec(spec.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, spec);
}

TEST(ScenarioSpecTest, BadInputGetsActionableErrors) {
  std::string error;

  EXPECT_FALSE(parse_scenario_spec("[1,2]", &error).has_value());
  EXPECT_NE(error.find("JSON object"), std::string::npos) << error;

  EXPECT_FALSE(parse_scenario_spec(R"({"robotz": 3})", &error).has_value());
  EXPECT_NE(error.find("robotz"), std::string::npos) << error;
  EXPECT_NE(error.find("robots"), std::string::npos) << error;  // key list

  EXPECT_FALSE(
      parse_scenario_spec(R"({"nodes": "ten"})", &error).has_value());
  EXPECT_NE(error.find("\"nodes\""), std::string::npos) << error;
  EXPECT_NE(error.find("integer"), std::string::npos) << error;

  EXPECT_FALSE(parse_scenario_spec(
                   R"({"adversary": {"kind": "bernouli"}})", &error)
                   .has_value());
  EXPECT_NE(error.find("bernouli"), std::string::npos) << error;
  EXPECT_NE(error.find("bernoulli"), std::string::npos) << error;  // kinds

  EXPECT_FALSE(
      parse_scenario_spec(
          R"({"adversary": {"kind": "bernoulli", "params": {"q": 1}}})",
          &error)
          .has_value());
  EXPECT_NE(error.find("\"q\""), std::string::npos) << error;
  EXPECT_NE(error.find("params: p"), std::string::npos) << error;

  EXPECT_FALSE(
      parse_scenario_spec(R"({"algorithm": "pef9"})", &error).has_value());
  EXPECT_NE(error.find("pef9"), std::string::npos) << error;
  EXPECT_NE(error.find("pef3+"), std::string::npos) << error;  // known list

  EXPECT_FALSE(parse_scenario_spec(R"({"nodes": 3, "robots": 5})", &error)
                   .has_value());
  EXPECT_NE(error.find("robots < nodes"), std::string::npos) << error;

  EXPECT_FALSE(parse_scenario_spec(R"({"model": "sync"})", &error)
                   .has_value());
  EXPECT_NE(error.find("fsync"), std::string::npos) << error;
}

TEST(ScenarioSpecTest, RunScenarioExecutesTheSpec) {
  ScenarioSpec spec;
  spec.nodes = 6;
  spec.robots = 3;
  spec.algorithm = "pef3+";
  spec.adversary = adversary_config(AdversaryKind::kStatic);
  spec.horizon = 300;
  spec.seed = 5;
  const RunResult result = run_scenario(spec);
  EXPECT_EQ(result.algorithm_name, "pef3+");
  EXPECT_EQ(result.adversary_name, "static");
  EXPECT_TRUE(result.perpetual);
  EXPECT_TRUE(result.adversary_legal);

  // Resolution: empty algorithm -> the paper's recommendation.
  spec.algorithm.clear();
  EXPECT_EQ(resolved_algorithm(spec), "pef3+");
}

// ---------------------------------------------------------------------------
// SweepSpec JSON

SweepSpec sample_sweep() {
  SweepSpec spec;
  spec.algorithms = {"pef3+", "bounce"};
  spec.adversaries = {
      adversary_config(AdversaryKind::kStatic),
      adversary_config(AdversaryKind::kBernoulli, {{"p", 0.5}}),
      adversary_config(AdversaryKind::kProof, {{"patience", 32}})};
  spec.models = {ExecutionModel::kFsync, ExecutionModel::kAsync};
  spec.ring_sizes = {6, 10};
  spec.robot_counts = {3};
  spec.seeds = {1, 2, 17454410316023251831ull};
  spec.activation_p = 0.75;
  spec.horizon = 400;
  spec.max_batch = 16;
  return spec;
}

TEST(SweepSpecTest, JsonRoundTripIsIdentity) {
  const SweepSpec spec = sample_sweep();
  std::string error;
  const auto parsed = parse_sweep_spec(spec.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, spec);
  EXPECT_EQ(parsed->to_json(), spec.to_json());
}

TEST(SweepSpecTest, BadInputGetsActionableErrors) {
  std::string error;

  EXPECT_FALSE(parse_sweep_spec(R"({"algorithms": []})", &error).has_value());
  EXPECT_NE(error.find("algorithms"), std::string::npos) << error;

  EXPECT_FALSE(
      parse_sweep_spec(R"({"algorithms": ["pef3+"], "adversaries": [],)"
                       R"( "ring_sizes": [6], "robot_counts": [3],)"
                       R"( "seeds": [1]})",
                       &error)
          .has_value());
  EXPECT_NE(error.find("adversaries"), std::string::npos) << error;

  EXPECT_FALSE(parse_sweep_spec(R"({"ring_sizes": 6})", &error).has_value());
  EXPECT_NE(error.find("array"), std::string::npos) << error;

  EXPECT_FALSE(parse_sweep_spec(R"({"max_batc": 4})", &error).has_value());
  EXPECT_NE(error.find("max_batc"), std::string::npos) << error;
  EXPECT_NE(error.find("max_batch"), std::string::npos) << error;
}

TEST(SweepSpecTest, CanonicalJsonIsTheStableCacheKey) {
  // pef_serve keys its result cache by the canonical single-line spec JSON,
  // so syntactic variants of the same spec — reordered keys, whitespace,
  // comments-by-way-of-formatting — MUST canonicalize to byte-identical
  // strings, or identical work stops coalescing and cache hits vanish.
  const std::string canonical_order = R"({
    "algorithms": ["pef3+"],
    "adversaries": [{"kind": "static", "params": {}}],
    "models": ["fsync"],
    "topology": "chain",
    "ring_sizes": [8],
    "robot_counts": [3],
    "seeds": [7],
    "horizon": 100
  })";
  const std::string reordered_and_squeezed =
      R"({"seeds":[7],"horizon":100,"robot_counts":[3],"ring_sizes":[8],)"
      R"("topology":"chain","models":["fsync"],)"
      R"("adversaries":[{"params":{},"kind":"static"}],)"
      R"("algorithms":["pef3+"]})";

  std::string error;
  const auto first = parse_sweep_spec(canonical_order, &error);
  ASSERT_TRUE(first.has_value()) << error;
  const auto second = parse_sweep_spec(reordered_and_squeezed, &error);
  ASSERT_TRUE(second.has_value()) << error;

  EXPECT_EQ(first->to_json(), second->to_json());
  // Canonicalization is idempotent: parse∘serialize of the canonical form
  // is the identity, so a key never drifts across round trips.
  const auto reparsed = parse_sweep_spec(first->to_json(), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(reparsed->to_json(), first->to_json());

  // The content hash of the canonical key follows the orchestrator's
  // ledger spec-hash convention (fnv1a64 of the canonical JSON) — one hash
  // identity for "same sweep" across the ledger and the serve cache.
  EXPECT_EQ(fnv1a64(first->to_json()), fnv1a64(second->to_json()));
  EXPECT_NE(fnv1a64(first->to_json()), fnv1a64(std::string()));
}

TEST(SweepSpecTest, CheckedInExampleSpecsParseAndValidate) {
  // Every spec file shipped under examples/specs/ must stay loadable.
  for (const char* name :
       {"sweep_small.json", "sweep_models.json", "sweep_chain_small.json"}) {
    std::ifstream file(std::string(PEF_SPEC_DIR) + "/" + name);
    ASSERT_TRUE(file.good()) << name;
    std::ostringstream buffer;
    buffer << file.rdbuf();
    std::string error;
    const auto spec = parse_sweep_spec(buffer.str(), &error);
    EXPECT_TRUE(spec.has_value()) << name << ": " << error;
  }
  std::ifstream file(std::string(PEF_SPEC_DIR) +
                     "/scenario_eventual_missing.json");
  ASSERT_TRUE(file.good());
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::string error;
  const auto scenario = parse_scenario_spec(buffer.str(), &error);
  EXPECT_TRUE(scenario.has_value()) << error;
}

}  // namespace
}  // namespace pef
