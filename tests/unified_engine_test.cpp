// Differential tests for the unified Engine's new axes:
//
//   * kernel dispatch: every registry algorithm's devirtualized kernel must
//     be bit-identical to its virtual twin, across adversary families and
//     seeds (the FSYNC virtual path itself is pinned to Simulator in
//     fast_engine_test.cpp);
//   * SSYNC / ASYNC models: the Engine must reproduce the reference
//     SsyncSimulator / AsyncSimulator round-by-round, for both dispatch
//     paths, across activation policies / phase schedulers, adversaries and
//     seeds.
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "adversary/greedy_blocker.hpp"
#include "algorithms/registry.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "dynamic_graph/schedules.hpp"
#include "engine/sweep_runner.hpp"
#include "scheduler/async.hpp"
#include "scheduler/simulator.hpp"
#include "scheduler/ssync.hpp"

namespace pef {
namespace {

constexpr std::uint64_t kSeeds = 10;
constexpr Time kRounds = 300;
constexpr std::uint32_t kNodes = 9;
constexpr std::uint32_t kRobots = 3;

void expect_same_round(const RoundRecord& actual, const RoundRecord& expected,
                       Time t) {
  ASSERT_EQ(actual.time, expected.time);
  ASSERT_EQ(actual.edges, expected.edges) << "round " << t;
  ASSERT_EQ(actual.robots.size(), expected.robots.size());
  for (RobotId r = 0; r < expected.robots.size(); ++r) {
    ASSERT_EQ(actual.robots[r].node_before, expected.robots[r].node_before)
        << "round " << t << " robot " << r;
    ASSERT_EQ(actual.robots[r].node_after, expected.robots[r].node_after)
        << "round " << t << " robot " << r;
    ASSERT_EQ(actual.robots[r].dir_before, expected.robots[r].dir_before)
        << "round " << t << " robot " << r;
    ASSERT_EQ(actual.robots[r].dir_after, expected.robots[r].dir_after)
        << "round " << t << " robot " << r;
    ASSERT_EQ(actual.robots[r].moved, expected.robots[r].moved)
        << "round " << t << " robot " << r;
    ASSERT_EQ(actual.robots[r].saw_other_robots,
              expected.robots[r].saw_other_robots)
        << "round " << t << " robot " << r;
  }
}

std::vector<RobotPlacement> placements_for(std::uint32_t k,
                                           std::uint64_t seed) {
  return random_placements(Ring(kNodes), k, seed);
}

// ---------------------------------------------------------------------------
// Kernel dispatch vs virtual twin (FSYNC).

struct FsyncAdversaryFamily {
  const char* name;
  AdversaryPtr (*make)(const Ring& ring, std::uint64_t seed);
};

const FsyncAdversaryFamily kFsyncFamilies[] = {
    {"static",
     [](const Ring& ring, std::uint64_t) {
       return make_oblivious(std::make_shared<StaticSchedule>(ring));
     }},
    {"bernoulli",
     [](const Ring& ring, std::uint64_t seed) {
       return make_oblivious(
           std::make_shared<BernoulliSchedule>(ring, 0.5, seed));
     }},
    {"eventual-missing",
     [](const Ring& ring, std::uint64_t seed) {
       return make_oblivious(std::make_shared<EventualMissingEdgeSchedule>(
           std::make_shared<StaticSchedule>(ring),
           static_cast<EdgeId>(seed % ring.edge_count()), /*vanish=*/5));
     }},
    {"greedy-blocker",
     [](const Ring& ring, std::uint64_t) {
       return std::unique_ptr<Adversary>(
           std::make_unique<GreedyBlockerAdversary>(ring, /*max_absence=*/4));
     }},
};

TEST(KernelDispatchTest, EveryRegistryAlgorithmHasAKernel) {
  for (const std::string& name : algorithm_names()) {
    EXPECT_TRUE(make_algorithm(name, 1)->kernel().has_value()) << name;
  }
}

TEST(KernelDispatchTest, KernelMatchesVirtualAcrossRegistryAndAdversaries) {
  for (const std::string& algorithm : algorithm_names()) {
    for (const FsyncAdversaryFamily& family : kFsyncFamilies) {
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        SCOPED_TRACE(algorithm + " vs " + family.name + " seed " +
                     std::to_string(seed));
        const Ring ring(kNodes);
        const auto placements = placements_for(kRobots, seed);

        EngineOptions virtual_options;
        virtual_options.record_trace = true;
        virtual_options.dispatch = ComputeDispatch::kVirtual;
        Engine virtual_engine(ring, make_algorithm(algorithm, seed),
                              family.make(ring, seed), placements,
                              virtual_options);

        EngineOptions kernel_options;
        kernel_options.record_trace = true;
        kernel_options.dispatch = ComputeDispatch::kKernel;
        Engine kernel_engine(ring, make_algorithm(algorithm, seed),
                             family.make(ring, seed), placements,
                             kernel_options);
        EXPECT_FALSE(virtual_engine.kernel_dispatch());
        EXPECT_TRUE(kernel_engine.kernel_dispatch());

        virtual_engine.run(kRounds);
        kernel_engine.run(kRounds);
        for (Time t = 0; t < kRounds; ++t) {
          expect_same_round(kernel_engine.trace().rounds()[t],
                            virtual_engine.trace().rounds()[t], t);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SSYNC: unified Engine vs SsyncSimulator.

struct SsyncScenario {
  const char* name;
  std::function<std::unique_ptr<SsyncAdversary>(const Ring&, std::uint64_t)>
      make_adversary;
  std::function<std::unique_ptr<ActivationPolicy>(std::uint64_t)>
      make_activation;
};

std::vector<SsyncScenario> ssync_scenarios() {
  return {
      {"blocker+round-robin",
       [](const Ring& ring, std::uint64_t) {
         return std::make_unique<SsyncBlockingAdversary>(ring);
       },
       [](std::uint64_t) { return std::make_unique<RoundRobinActivation>(); }},
      {"bernoulli-schedule+bernoulli-activation",
       [](const Ring& ring, std::uint64_t seed) {
         return std::make_unique<SsyncObliviousAdversary>(
             std::make_shared<BernoulliSchedule>(ring, 0.6, seed));
       },
       [](std::uint64_t seed) {
         return std::make_unique<BernoulliActivation>(0.6,
                                                      derive_seed(seed, 0xac));
       }},
      {"adaptive-greedy+full",
       [](const Ring& ring, std::uint64_t) {
         return std::make_unique<SsyncFromFsyncAdversary>(
             std::make_unique<GreedyBlockerAdversary>(ring,
                                                      /*max_absence=*/4));
       },
       [](std::uint64_t) { return std::make_unique<FullActivation>(); }},
  };
}

TEST(UnifiedSsyncTest, MatchesReferenceAcrossRegistryAndScenarios) {
  for (const std::string& algorithm : algorithm_names()) {
    for (const SsyncScenario& scenario : ssync_scenarios()) {
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        SCOPED_TRACE(algorithm + " vs " + scenario.name + " seed " +
                     std::to_string(seed));
        const Ring ring(kNodes);
        const auto placements = placements_for(kRobots, seed);

        SsyncSimulator reference(ring, make_algorithm(algorithm, seed),
                                 scenario.make_adversary(ring, seed),
                                 scenario.make_activation(seed), placements);

        for (const ComputeDispatch dispatch :
             {ComputeDispatch::kKernel, ComputeDispatch::kVirtual}) {
          SCOPED_TRACE(std::string("dispatch ") + to_string(dispatch));
          EngineOptions options;
          options.record_trace = true;
          options.dispatch = dispatch;
          Engine engine(ring, make_algorithm(algorithm, seed),
                        scenario.make_adversary(ring, seed),
                        scenario.make_activation(seed), placements, options);
          EXPECT_EQ(engine.model(), ExecutionModel::kSsync);
          engine.run(kRounds);
          ASSERT_EQ(engine.trace().rounds().size(), kRounds);
          // Fresh reference per dispatch would repeat work; instead replay
          // the one reference lazily on the first dispatch and compare the
          // second against the recorded trace.
          if (reference.now() == 0) {
            for (Time t = 0; t < kRounds; ++t) reference.step();
          }
          for (Time t = 0; t < kRounds; ++t) {
            expect_same_round(engine.trace().rounds()[t],
                              reference.trace().rounds()[t], t);
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ASYNC: unified Engine vs AsyncSimulator.

struct AsyncScenario {
  const char* name;
  std::function<std::unique_ptr<SsyncAdversary>(const Ring&, std::uint64_t)>
      make_adversary;
  std::function<std::unique_ptr<PhaseScheduler>(std::uint64_t)> make_phases;
};

std::vector<AsyncScenario> async_scenarios() {
  return {
      {"move-blocker+round-robin",
       [](const Ring& ring, std::uint64_t) {
         return std::make_unique<AsyncMoveBlocker>(ring);
       },
       [](std::uint64_t) { return std::make_unique<RoundRobinPhases>(); }},
      {"bernoulli-schedule+bernoulli-phases",
       [](const Ring& ring, std::uint64_t seed) {
         return std::make_unique<SsyncObliviousAdversary>(
             std::make_shared<BernoulliSchedule>(ring, 0.6, seed));
       },
       [](std::uint64_t seed) {
         return std::make_unique<BernoulliPhases>(0.6,
                                                  derive_seed(seed, 0xa5));
       }},
      {"adaptive-greedy+lockstep",
       [](const Ring& ring, std::uint64_t) {
         return std::make_unique<SsyncFromFsyncAdversary>(
             std::make_unique<GreedyBlockerAdversary>(ring,
                                                      /*max_absence=*/4));
       },
       [](std::uint64_t) { return std::make_unique<LockstepPhases>(); }},
  };
}

TEST(UnifiedAsyncTest, MatchesReferenceAcrossRegistryAndScenarios) {
  for (const std::string& algorithm : algorithm_names()) {
    for (const AsyncScenario& scenario : async_scenarios()) {
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        SCOPED_TRACE(algorithm + " vs " + scenario.name + " seed " +
                     std::to_string(seed));
        const Ring ring(kNodes);
        const auto placements = placements_for(kRobots, seed);

        AsyncSimulator reference(ring, make_algorithm(algorithm, seed),
                                 scenario.make_adversary(ring, seed),
                                 scenario.make_phases(seed), placements);

        for (const ComputeDispatch dispatch :
             {ComputeDispatch::kKernel, ComputeDispatch::kVirtual}) {
          SCOPED_TRACE(std::string("dispatch ") + to_string(dispatch));
          EngineOptions options;
          options.record_trace = true;
          options.dispatch = dispatch;
          Engine engine(ring, make_algorithm(algorithm, seed),
                        scenario.make_adversary(ring, seed),
                        scenario.make_phases(seed), placements, options);
          EXPECT_EQ(engine.model(), ExecutionModel::kAsync);
          engine.run(kRounds);
          if (reference.now() == 0) {
            for (Time t = 0; t < kRounds; ++t) reference.step();
          }
          for (Time t = 0; t < kRounds; ++t) {
            expect_same_round(engine.trace().rounds()[t],
                              reference.trace().rounds()[t], t);
          }
          // Final phase machines agree for every robot (per-tick phase
          // agreement is implied by the round records: each advancing
          // robot's record shows which phase fired).
          for (RobotId r = 0; r < kRobots; ++r) {
            ASSERT_EQ(engine.phase_of(r), reference.phase_of(r)) << r;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Incremental stats stay valid in the new models.

TEST(UnifiedEngineTest, SsyncStatsAccumulateWithoutTrace) {
  const Ring ring(6);
  Engine engine(ring, make_algorithm("pef3+"),
                std::make_unique<SsyncBlockingAdversary>(ring),
                std::make_unique<RoundRobinActivation>(),
                spread_placements(ring, 3));
  EXPECT_FALSE(engine.recording_trace());
  engine.run(600);
  // The [10] impossibility: frozen forever, only the 3 start nodes visited.
  EXPECT_EQ(engine.stats().rounds, 600u);
  EXPECT_EQ(engine.stats().total_moves, 0u);
  EXPECT_EQ(engine.stats().visited_node_count, 3u);
}

TEST(UnifiedEngineTest, AsyncStatsAccumulateWithoutTrace) {
  const Ring ring(6);
  Engine engine(ring, make_algorithm("pef3+"),
                std::make_unique<AsyncMoveBlocker>(ring),
                std::make_unique<RoundRobinPhases>(),
                spread_placements(ring, 3));
  engine.run(900);
  EXPECT_EQ(engine.stats().total_moves, 0u);
  EXPECT_EQ(engine.stats().visited_node_count, 3u);
}

TEST(UnifiedEngineTest, SweepGridSpansModels) {
  SweepSpec grid;
  grid.algorithms = {"pef3+"};
  grid.adversaries = {adversary_config(AdversaryKind::kStatic)};
  grid.models = {ExecutionModel::kFsync, ExecutionModel::kSsync,
                 ExecutionModel::kAsync};
  grid.ring_sizes = {6};
  grid.robot_counts = {3};
  grid.seeds = {1, 2};
  grid.horizon = 400;

  const SweepResult serial = SweepRunner(1).run(grid);
  const SweepResult parallel = SweepRunner(4).run(grid);
  ASSERT_EQ(serial.cells.size(), 6u);
  EXPECT_EQ(serial.to_json(), parallel.to_json());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].model, grid.models[i / 2]);
  }
  // Distinct models get distinct derived streams.
  EXPECT_NE(effective_seed(1, 0, 0, 6, 3, 0), effective_seed(1, 0, 0, 6, 3, 1));
  // FSYNC on a static ring explores; SSYNC/ASYNC under fair Bernoulli
  // activation on a static ring explore too (only slower).
  for (const SweepCell& cell : serial.cells) {
    EXPECT_TRUE(cell.covered) << to_string(cell.model) << " seed "
                              << cell.seed;
  }
}

}  // namespace
}  // namespace pef
