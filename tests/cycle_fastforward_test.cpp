// Cycle-detection fast-forward (engine/cycle.hpp): every test here is
// differential — the fast-forwarded run must reproduce the plain run's
// statistics EXACTLY, not approximately — plus edge cases the sweep grids
// rarely hit: period-1 fixpoints, cycles entered at round 0, tower-forming
// configurations, chain topology, horizons landing mid-period, and forced
// hash collisions (a truncated test hash must fall through to the exact
// comparison, never corrupt a result).
#include "engine/cycle.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "algorithms/registry.hpp"
#include "dynamic_graph/chain.hpp"
#include "dynamic_graph/schedules.hpp"
#include "engine/batch_engine.hpp"
#include "engine/engine.hpp"
#include "scheduler/simulator.hpp"
#include "scheduler/ssync.hpp"

namespace pef {
namespace {

constexpr Time kHorizon = 100003;  // lands mid-period for any period > 1

enum class Topo { kRing, kChain };

SchedulePtr make_schedule(const Ring& ring, Topo topo, bool rotating) {
  SchedulePtr base =
      rotating ? std::make_shared<PeriodicSchedule>(
                     PeriodicSchedule::rotating(ring, 3, 2))
               : SchedulePtr(std::make_shared<StaticSchedule>(ring));
  return topo == Topo::kChain ? ChainSchedule::cut_last(base) : base;
}

Engine make_engine(const Ring& ring, const std::string& algorithm, Topo topo,
                   bool rotating, std::uint32_t robots,
                   const EngineOptions& options) {
  return Engine(ring, make_algorithm(algorithm, 7),
                std::make_unique<ObliviousAdversary>(
                    make_schedule(ring, topo, rotating)),
                spread_placements(ring, robots), options);
}

void expect_same(const Engine& ff, const Engine& plain) {
  const EngineStats& a = ff.stats();
  const EngineStats& b = plain.stats();
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_moves, b.total_moves);
  EXPECT_EQ(a.tower_rounds, b.tower_rounds);
  EXPECT_EQ(a.tower_formations, b.tower_formations);
  EXPECT_EQ(a.visited_node_count, b.visited_node_count);
  EXPECT_EQ(a.cover_time, b.cover_time);
  const CoverageReport ca = ff.coverage_report();
  const CoverageReport cb = plain.coverage_report();
  EXPECT_EQ(ca.visit_counts, cb.visit_counts);
  EXPECT_EQ(ca.max_revisit_gap, cb.max_revisit_gap);
  EXPECT_EQ(ca.max_closed_gap, cb.max_closed_gap);
  EXPECT_EQ(ff.robot_node(0), plain.robot_node(0));
}

/// Runs the scenario twice (fast-forward on/off) at several consecutive
/// horizons — so whatever the detected period is, at least one horizon
/// lands strictly mid-period — and pins every statistic.
void run_differential(const std::string& algorithm, Topo topo, bool rotating,
                      std::uint32_t nodes, std::uint32_t robots,
                      bool expect_engaged,
                      std::uint64_t hash_mask = ~std::uint64_t{0}) {
  SCOPED_TRACE(algorithm + (topo == Topo::kChain ? " chain" : " ring") +
               (rotating ? " rotating" : " static") +
               " n=" + std::to_string(nodes) + " k=" + std::to_string(robots));
  const Ring ring(nodes);
  for (Time horizon = kHorizon; horizon < kHorizon + 3; ++horizon) {
    SCOPED_TRACE("horizon " + std::to_string(horizon));
    EngineOptions ff_options;
    ff_options.fast_forward.enabled = true;
    ff_options.fast_forward.hash_mask = hash_mask;
    Engine ff = make_engine(ring, algorithm, topo, rotating, robots,
                            ff_options);
    Engine plain = make_engine(ring, algorithm, topo, rotating, robots,
                               EngineOptions{});
    ff.run(horizon);
    plain.run(horizon);
    expect_same(ff, plain);
    EXPECT_EQ(ff.fast_forwarded(), expect_engaged);
    if (expect_engaged) {
      EXPECT_LT(ff.rounds_simulated(), horizon);
      EXPECT_GT(ff.detected_period(), 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Detector unit tests.

TEST(BrentDetectorTest, ConstantStreamIsAPeriodOneFixpoint) {
  BrentDetector detector;
  const std::vector<std::uint64_t> state = {1, 2, 3};
  StateHash hash;
  for (const std::uint64_t w : state) hash.add(w);
  EXPECT_EQ(detector.observe(state, hash.value), 0u);  // sets the anchor
  EXPECT_EQ(detector.observe(state, hash.value), 1u);
  EXPECT_EQ(detector.collisions(), 0u);
}

TEST(BrentDetectorTest, FindsMinimalPeriodAfterAPreperiod) {
  // Stream: 5 transient states, then a cycle of length 3.  Brent's
  // re-anchoring must land an anchor inside the cycle and report 3.
  BrentDetector detector;
  const auto pack = [](std::uint64_t tag) {
    return std::vector<std::uint64_t>{tag};
  };
  const auto hash_of = [](std::uint64_t tag) {
    StateHash hash;
    hash.add(tag);
    return hash.value;
  };
  Time found = 0;
  std::uint64_t t = 0;
  for (; t < 200 && found == 0; ++t) {
    const std::uint64_t tag = t < 5 ? t : 5 + (t - 5) % 3;
    found = detector.observe(pack(tag), hash_of(tag));
  }
  EXPECT_EQ(found, 3u);
}

TEST(BrentDetectorTest, MaskedHashCollisionsFallThroughToExactCompare) {
  // hash_mask 0 makes EVERY pair of samples a hash hit; only the exact
  // state comparison may declare the cycle.
  BrentDetector detector(/*hash_mask=*/0);
  Time found = 0;
  for (std::uint64_t t = 0; t < 100 && found == 0; ++t) {
    const std::uint64_t tag = t % 7;
    StateHash hash;
    hash.add(tag);
    found = detector.observe({tag}, hash.value);
  }
  EXPECT_EQ(found, 7u);
  EXPECT_GT(detector.collisions(), 0u);
}

// ---------------------------------------------------------------------------
// Solo engine differentials.

TEST(CycleFastForwardTest, PeriodOneFixpointOnStaticChain) {
  // keep-direction robots sharing a chirality pile up against the chain's
  // cut edge and freeze: the execution reaches a true fixpoint.
  const Ring ring(7);
  EngineOptions options;
  options.fast_forward.enabled = true;
  Engine ff = make_engine(ring, "keep-direction", Topo::kChain,
                          /*rotating=*/false, 3, options);
  ff.run(kHorizon);
  EXPECT_TRUE(ff.fast_forwarded());
  EXPECT_EQ(ff.detected_period(), 1u);
  Engine plain = make_engine(ring, "keep-direction", Topo::kChain,
                             /*rotating=*/false, 3, EngineOptions{});
  plain.run(kHorizon);
  expect_same(ff, plain);
}

TEST(CycleFastForwardTest, CycleEnteredAtRoundZero) {
  // A lone keep-direction robot on a static ring rotates from the very
  // first round: no preperiod, minimal period n.
  const Ring ring(6);
  EngineOptions options;
  options.fast_forward.enabled = true;
  Engine ff = make_engine(ring, "keep-direction", Topo::kRing,
                          /*rotating=*/false, 1, options);
  ff.run(kHorizon);
  EXPECT_TRUE(ff.fast_forwarded());
  EXPECT_EQ(ff.detected_period(), 6u);
  Engine plain = make_engine(ring, "keep-direction", Topo::kRing,
                             /*rotating=*/false, 1, EngineOptions{});
  plain.run(kHorizon);
  expect_same(ff, plain);
}

TEST(CycleFastForwardTest, RegistryAlgorithmsOnRotatingRing) {
  for (const char* algorithm : {"pef3+", "pef2", "keep-direction", "bounce",
                                "oscillating"}) {
    const std::uint32_t robots = std::string(algorithm) == "pef2" ? 2 : 3;
    run_differential(algorithm, Topo::kRing, /*rotating=*/true, 8, robots,
                     /*expect_engaged=*/true);
  }
}

TEST(CycleFastForwardTest, TowerFormingConfiguration) {
  // Towers form when the rotating missing edge squeezes robots together;
  // the extrapolated tower_rounds / tower_formations must match exactly.
  const Ring ring(5);
  EngineOptions options;
  options.fast_forward.enabled = true;
  Engine ff = make_engine(ring, "pef3+", Topo::kRing, /*rotating=*/true, 3,
                          options);
  Engine plain = make_engine(ring, "pef3+", Topo::kRing, /*rotating=*/true, 3,
                             EngineOptions{});
  ff.run(kHorizon);
  plain.run(kHorizon);
  ASSERT_GT(plain.stats().tower_rounds, 0u)
      << "scenario no longer forms towers; pick one that does";
  EXPECT_TRUE(ff.fast_forwarded());
  expect_same(ff, plain);
}

TEST(CycleFastForwardTest, ChainTopology) {
  run_differential("pef3+", Topo::kChain, /*rotating=*/true, 8, 3,
                   /*expect_engaged=*/true);
}

TEST(CycleFastForwardTest, ForcedHashCollisionsStayExact) {
  // A 4-bit fingerprint collides constantly; the exact-verify step must
  // reject every false hit and still find the true cycle.
  EngineOptions probe;
  probe.fast_forward.enabled = true;
  probe.fast_forward.hash_mask = 0xF;
  const Ring ring(8);
  Engine ff = make_engine(ring, "pef3+", Topo::kRing, /*rotating=*/true, 3,
                          probe);
  ff.run(kHorizon);
  EXPECT_TRUE(ff.fast_forwarded());
  EXPECT_GT(ff.ff_collisions(), 0u);
  Engine plain = make_engine(ring, "pef3+", Topo::kRing, /*rotating=*/true, 3,
                             EngineOptions{});
  plain.run(kHorizon);
  expect_same(ff, plain);
}

TEST(CycleFastForwardTest, RandomWalkNeverDetectsButStaysCorrect) {
  // Xoshiro streams never cycle: the detector must never fire, and the run
  // must fall back to plain stepping with identical results.
  run_differential("random-walk", Topo::kRing, /*rotating=*/true, 6, 2,
                   /*expect_engaged=*/false);
}

TEST(CycleFastForwardTest, SsyncRoundRobinActivation) {
  // Round-robin activation multiplies the environment period by k; the
  // aligned sampling must still find the cycle.
  const Ring ring(6);
  for (Time horizon = kHorizon; horizon < kHorizon + 3; ++horizon) {
    EngineOptions options;
    options.fast_forward.enabled = true;
    Engine ff(ring, make_algorithm("pef3+", 7),
              std::make_unique<SsyncObliviousAdversary>(
                  make_schedule(ring, Topo::kRing, true)),
              std::make_unique<RoundRobinActivation>(),
              spread_placements(ring, 3), options);
    Engine plain(ring, make_algorithm("pef3+", 7),
                 std::make_unique<SsyncObliviousAdversary>(
                     make_schedule(ring, Topo::kRing, true)),
                 std::make_unique<RoundRobinActivation>(),
                 spread_placements(ring, 3), EngineOptions{});
    ff.run(horizon);
    plain.run(horizon);
    EXPECT_TRUE(ff.fast_forwarded());
    EXPECT_EQ(ff.detected_period() % 3, 0u);  // multiple of the env period
    expect_same(ff, plain);
  }
}

TEST(CycleFastForwardTest, BernoulliScheduleRefusesEligibility) {
  // A stochastic schedule must silently run plain — bit-identical, no
  // fast-forward telemetry.
  const Ring ring(6);
  const auto build = [&](bool ff) {
    EngineOptions options;
    options.fast_forward.enabled = ff;
    return Engine(ring, make_algorithm("pef3+", 7),
                  std::make_unique<ObliviousAdversary>(
                      std::make_shared<BernoulliSchedule>(ring, 0.5, 99)),
                  spread_placements(ring, 3), options);
  };
  Engine ff = build(true);
  Engine plain = build(false);
  ff.run(5000);
  plain.run(5000);
  EXPECT_FALSE(ff.fast_forwarded());
  expect_same(ff, plain);
}

// ---------------------------------------------------------------------------
// Batch engine differentials: lanes detect independently, retire through
// ragged-horizon compaction, and must still match solo PLAIN engines.

TEST(CycleFastForwardBatchTest, RaggedHorizonsMatchSoloPlainEngines) {
  constexpr std::uint32_t kBatch = 8;
  const Ring ring(7);
  const auto horizon_of = [](std::uint32_t b) {
    return kHorizon + 61 * (b % 5);
  };
  for (const char* algorithm : {"pef3+", "oscillating"}) {
    SCOPED_TRACE(algorithm);
    std::vector<BatchReplica> replicas(kBatch);
    for (std::uint32_t b = 0; b < kBatch; ++b) {
      BatchReplica& replica = replicas[b];
      replica.algorithm = make_algorithm(algorithm, b + 1);
      replica.adversary = std::make_unique<ObliviousAdversary>(
          make_schedule(ring, Topo::kRing, true));
      replica.placements = random_placements(ring, 3, b + 1);
      replica.horizon = horizon_of(b);
    }
    BatchEngineOptions options;
    options.fast_forward.enabled = true;
    BatchEngine batch(ring, ExecutionModel::kFsync, std::move(replicas),
                      options);
    batch.run_all();

    for (std::uint32_t b = 0; b < kBatch; ++b) {
      SCOPED_TRACE("replica " + std::to_string(b));
      Engine solo(ring, make_algorithm(algorithm, b + 1),
                  std::make_unique<ObliviousAdversary>(
                      make_schedule(ring, Topo::kRing, true)),
                  random_placements(ring, 3, b + 1), EngineOptions{});
      solo.run(horizon_of(b));
      EXPECT_TRUE(batch.fast_forwarded(b));
      EXPECT_LT(batch.rounds_simulated(b), horizon_of(b));
      const EngineStats& a = batch.stats(b);
      const EngineStats& s = solo.stats();
      EXPECT_EQ(a.rounds, s.rounds);
      EXPECT_EQ(a.total_moves, s.total_moves);
      EXPECT_EQ(a.tower_rounds, s.tower_rounds);
      EXPECT_EQ(a.tower_formations, s.tower_formations);
      EXPECT_EQ(a.visited_node_count, s.visited_node_count);
      EXPECT_EQ(a.cover_time, s.cover_time);
      const CoverageReport ca = batch.coverage_report(b);
      const CoverageReport cs = solo.coverage_report();
      EXPECT_EQ(ca.visit_counts, cs.visit_counts);
      EXPECT_EQ(ca.max_revisit_gap, cs.max_revisit_gap);
      EXPECT_EQ(ca.max_closed_gap, cs.max_closed_gap);
    }
  }
}

TEST(CycleFastForwardBatchTest, ForcedCollisionsInBatchLanes) {
  constexpr std::uint32_t kBatch = 4;
  const Ring ring(6);
  std::vector<BatchReplica> replicas(kBatch);
  for (std::uint32_t b = 0; b < kBatch; ++b) {
    BatchReplica& replica = replicas[b];
    replica.algorithm = make_algorithm("pef3+", b + 1);
    replica.adversary = std::make_unique<ObliviousAdversary>(
        make_schedule(ring, Topo::kRing, true));
    replica.placements = random_placements(ring, 3, b + 1);
    replica.horizon = kHorizon;
  }
  BatchEngineOptions options;
  options.fast_forward.enabled = true;
  options.fast_forward.hash_mask = 0xF;  // constant collisions
  BatchEngine batch(ring, ExecutionModel::kFsync, std::move(replicas),
                    options);
  batch.run_all();
  for (std::uint32_t b = 0; b < kBatch; ++b) {
    SCOPED_TRACE("replica " + std::to_string(b));
    Engine solo(ring, make_algorithm("pef3+", b + 1),
                std::make_unique<ObliviousAdversary>(
                    make_schedule(ring, Topo::kRing, true)),
                random_placements(ring, 3, b + 1), EngineOptions{});
    solo.run(kHorizon);
    EXPECT_TRUE(batch.fast_forwarded(b));
    EXPECT_EQ(batch.stats(b).total_moves, solo.stats().total_moves);
    EXPECT_EQ(batch.coverage_report(b).visit_counts,
              solo.coverage_report().visit_counts);
    EXPECT_EQ(batch.coverage_report(b).max_revisit_gap,
              solo.coverage_report().max_revisit_gap);
  }
}

}  // namespace
}  // namespace pef
