// Tests for PEF_1 (Section 5.2): one robot on a 2-node
// connected-over-time ring (multigraph or chain).
#include "algorithms/pef1.hpp"

#include <gtest/gtest.h>

#include "adversary/adversary.hpp"
#include "analysis/coverage.hpp"
#include "dynamic_graph/schedules.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

View make_view(bool ahead, bool behind) {
  View v;
  v.exists_edge_ahead = ahead;
  v.exists_edge_behind = behind;
  v.other_robots_on_node = false;
  return v;
}

TEST(Pef1ComputeTest, PointsToPresentEdge) {
  const Pef1 algo;
  auto state = algo.make_state(0);
  LocalDirection dir = LocalDirection::kLeft;
  algo.compute(make_view(false, true), dir, *state);
  EXPECT_EQ(dir, LocalDirection::kRight);
}

TEST(Pef1ComputeTest, KeepsPointedPresentEdge) {
  const Pef1 algo;
  auto state = algo.make_state(0);
  LocalDirection dir = LocalDirection::kLeft;
  algo.compute(make_view(true, true), dir, *state);
  EXPECT_EQ(dir, LocalDirection::kLeft);
  algo.compute(make_view(true, false), dir, *state);
  EXPECT_EQ(dir, LocalDirection::kLeft);
}

TEST(Pef1ComputeTest, KeepsDirectionWhenNothingPresent) {
  const Pef1 algo;
  auto state = algo.make_state(0);
  LocalDirection dir = LocalDirection::kRight;
  algo.compute(make_view(false, false), dir, *state);
  EXPECT_EQ(dir, LocalDirection::kRight);
}

// --- Behavioural tests (Theorem 5.2) --------------------------------------

Simulator make_sim(SchedulePtr schedule) {
  return Simulator(Ring(2), std::make_shared<Pef1>(),
                   make_oblivious(std::move(schedule)),
                   {{0, Chirality(true)}});
}

TEST(Pef1BehaviourTest, ShuttlesOnStaticMultigraph) {
  auto sim = make_sim(std::make_shared<StaticSchedule>(Ring(2)));
  sim.run(50);
  const auto coverage = analyze_coverage(sim.trace());
  EXPECT_TRUE(coverage.perpetual(2));
  EXPECT_LE(coverage.max_revisit_gap, 2u);
}

TEST(Pef1BehaviourTest, WorksOnChain) {
  // A 2-node chain = 2-ring whose second parallel edge never appears.
  auto base = std::make_shared<StaticSchedule>(Ring(2));
  auto chain = std::make_shared<SurgerySchedule>(
      base, std::vector<Removal>{{1, 0, kTimeInfinity}});
  auto sim = make_sim(chain);
  sim.run(100);
  EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(2));
}

TEST(Pef1BehaviourTest, WorksWhenEdgesFlicker) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto sim = make_sim(
        std::make_shared<BernoulliSchedule>(Ring(2), 0.3, seed));
    sim.run(2000);
    EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(2))
        << "seed " << seed;
  }
}

TEST(Pef1BehaviourTest, AlternatingParallelEdges) {
  // Adversary alternates which parallel edge is present; the robot must
  // still cross every round it can.
  const Ring ring(2);
  std::vector<EdgeSet> rounds;
  for (Time t = 0; t < 40; ++t) {
    EdgeSet s(2);
    s.insert(static_cast<EdgeId>(t % 2));
    rounds.push_back(s);
  }
  auto sim = make_sim(std::make_shared<RecordedSchedule>(
      ring, rounds, TailRule::kCyclePrefix));
  sim.run(200);
  const auto coverage = analyze_coverage(sim.trace());
  EXPECT_TRUE(coverage.perpetual(2));
  EXPECT_LE(coverage.max_revisit_gap, 3u);
}

TEST(Pef1BehaviourTest, LongBlackoutThenRecovers) {
  // Both edges absent for 100 rounds; the robot waits, then resumes.
  auto base = std::make_shared<StaticSchedule>(Ring(2));
  auto blackout = std::make_shared<SurgerySchedule>(
      base, std::vector<Removal>{{0, 10, 109}, {1, 10, 109}});
  auto sim = make_sim(blackout);
  sim.run(400);
  const auto coverage = analyze_coverage(sim.trace());
  EXPECT_TRUE(coverage.perpetual(2));
  EXPECT_GE(coverage.max_closed_gap, 100u);  // the blackout shows up
}

class Pef1SweepTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(Pef1SweepTest, PerpetualOnRandomTwoRings) {
  const auto [seed, p] = GetParam();
  auto sim = make_sim(std::make_shared<BernoulliSchedule>(Ring(2), p, seed));
  sim.run(3000);
  EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(2));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Pef1SweepTest,
    ::testing::Combine(::testing::Values(2ull, 33ull, 71ull, 1234ull),
                       ::testing::Values(0.1, 0.5, 0.95)));

}  // namespace
}  // namespace pef
