// Tests for PEF_2 (Section 4.2): two robots on a 3-node
// connected-over-time ring.
#include "algorithms/pef2.hpp"

#include <gtest/gtest.h>

#include "adversary/adversary.hpp"
#include "analysis/coverage.hpp"
#include "dynamic_graph/schedules.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

View make_view(bool ahead, bool behind, bool others) {
  View v;
  v.exists_edge_ahead = ahead;
  v.exists_edge_behind = behind;
  v.other_robots_on_node = others;
  return v;
}

TEST(Pef2ComputeTest, PointsToUniquePresentEdge) {
  const Pef2 algo;
  auto state = algo.make_state(0);
  LocalDirection dir = LocalDirection::kLeft;
  // Only the behind edge present and isolated -> turn to it.
  algo.compute(make_view(false, true, false), dir, *state);
  EXPECT_EQ(dir, LocalDirection::kRight);
  // Only the (new) ahead edge present -> keep.
  algo.compute(make_view(true, false, false), dir, *state);
  EXPECT_EQ(dir, LocalDirection::kRight);
}

TEST(Pef2ComputeTest, KeepsDirectionWhenBothPresent) {
  const Pef2 algo;
  auto state = algo.make_state(0);
  LocalDirection dir = LocalDirection::kLeft;
  algo.compute(make_view(true, true, false), dir, *state);
  EXPECT_EQ(dir, LocalDirection::kLeft);
}

TEST(Pef2ComputeTest, KeepsDirectionWhenNonePresent) {
  const Pef2 algo;
  auto state = algo.make_state(0);
  LocalDirection dir = LocalDirection::kLeft;
  algo.compute(make_view(false, false, false), dir, *state);
  EXPECT_EQ(dir, LocalDirection::kLeft);
}

TEST(Pef2ComputeTest, KeepsDirectionInTower) {
  // "or the other robot is present on the same node" -> keep direction,
  // even with a unique present edge behind.
  const Pef2 algo;
  auto state = algo.make_state(0);
  LocalDirection dir = LocalDirection::kLeft;
  algo.compute(make_view(false, true, true), dir, *state);
  EXPECT_EQ(dir, LocalDirection::kLeft);
}

// --- Behavioural tests (Theorem 4.2) --------------------------------------

Simulator make_sim(SchedulePtr schedule,
                   std::vector<RobotPlacement> placements = {
                       {0, Chirality(true)}, {1, Chirality(true)}}) {
  return Simulator(Ring(3), std::make_shared<Pef2>(),
                   make_oblivious(std::move(schedule)), placements);
}

TEST(Pef2BehaviourTest, ExploresStaticTriangle) {
  auto sim = make_sim(std::make_shared<StaticSchedule>(Ring(3)));
  sim.run(100);
  EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(3));
}

TEST(Pef2BehaviourTest, ExploresWithEventualMissingEdge) {
  for (EdgeId missing = 0; missing < 3; ++missing) {
    auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
        std::make_shared<StaticSchedule>(Ring(3)), missing, 5);
    auto sim = make_sim(schedule);
    sim.run(400);
    EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(3))
        << "missing edge " << missing;
  }
}

TEST(Pef2BehaviourTest, ExploresBernoulliTriangle) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto sim = make_sim(
        std::make_shared<BernoulliSchedule>(Ring(3), 0.4, seed));
    sim.run(2000);
    EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(3))
        << "seed " << seed;
  }
}

TEST(Pef2BehaviourTest, ExploresWithMixedChirality) {
  auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
      std::make_shared<StaticSchedule>(Ring(3)), 1, 4);
  auto sim = make_sim(schedule, {{0, Chirality(true)}, {2, Chirality(false)}});
  sim.run(400);
  EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(3));
}

class Pef2SweepTest : public ::testing::TestWithParam<
                          std::tuple<std::uint64_t, double, NodeId>> {};

TEST_P(Pef2SweepTest, PerpetualAcrossSeedsAndPlacements) {
  const auto [seed, p, start] = GetParam();
  auto schedule = std::make_shared<BernoulliSchedule>(Ring(3), p, seed);
  auto sim = make_sim(schedule, {{start, Chirality(true)},
                                 {(start + 1) % 3, Chirality(true)}});
  sim.run(3000);
  EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(3));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Pef2SweepTest,
    ::testing::Combine(::testing::Values(3ull, 17ull, 99ull),
                       ::testing::Values(0.25, 0.6),
                       ::testing::Values(0u, 1u, 2u)));

}  // namespace
}  // namespace pef
