// Tests for PEF_3+ (Algorithm 1): compute-phase semantics, the three rules,
// and the behaviours proved in Section 3 (sentinel formation, tower lemmas,
// perpetual exploration).
#include "algorithms/pef3plus.hpp"

#include <gtest/gtest.h>

#include "adversary/adversary.hpp"
#include "analysis/coverage.hpp"
#include "analysis/sentinels.hpp"
#include "analysis/towers.hpp"
#include "dynamic_graph/schedules.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

View make_view(bool ahead, bool behind, bool others) {
  View v;
  v.exists_edge_ahead = ahead;
  v.exists_edge_behind = behind;
  v.other_robots_on_node = others;
  return v;
}

TEST(Pef3PlusComputeTest, Rule1KeepsDirectionWhenAlone) {
  const Pef3Plus algo;
  auto state = algo.make_state(0);
  LocalDirection dir = LocalDirection::kLeft;
  algo.compute(make_view(true, true, false), dir, *state);
  EXPECT_EQ(dir, LocalDirection::kLeft);
}

TEST(Pef3PlusComputeTest, Rule2SentinelKeepsDirection) {
  // Did NOT move last round (edge was absent), now in a tower: keep dir.
  const Pef3Plus algo;
  auto state = algo.make_state(0);
  LocalDirection dir = LocalDirection::kLeft;
  // Round 1: alone, pointed edge absent -> has_moved becomes false.
  algo.compute(make_view(false, true, false), dir, *state);
  EXPECT_EQ(dir, LocalDirection::kLeft);
  // Round 2: tower formed by an arriving robot: Rule 2 keeps direction.
  algo.compute(make_view(false, true, true), dir, *state);
  EXPECT_EQ(dir, LocalDirection::kLeft);
}

TEST(Pef3PlusComputeTest, Rule3ArrivingRobotTurnsBack) {
  const Pef3Plus algo;
  auto state = algo.make_state(0);
  LocalDirection dir = LocalDirection::kLeft;
  // Round 1: alone, pointed edge present -> moves (has_moved = true).
  algo.compute(make_view(true, true, false), dir, *state);
  // Round 2: lands on a tower: Rule 3 turns it back.
  algo.compute(make_view(true, true, true), dir, *state);
  EXPECT_EQ(dir, LocalDirection::kRight);
}

TEST(Pef3PlusComputeTest, HasMovedTracksUpdatedDirection) {
  // After the Rule 3 flip, line 4 evaluates ExistsEdge against the *new*
  // direction.
  const Pef3Plus algo;
  auto state = algo.make_state(0);
  LocalDirection dir = LocalDirection::kLeft;
  algo.compute(make_view(true, true, false), dir, *state);  // moved
  // Tower; ahead (old dir) present, behind (new dir) absent: flips, then
  // records that it will NOT move.
  algo.compute(make_view(true, false, true), dir, *state);
  EXPECT_EQ(dir, LocalDirection::kRight);
  // Next round, a tower again: has_moved_previous_step == false -> Rule 2
  // applies, direction kept even though in a tower.
  algo.compute(make_view(true, true, true), dir, *state);
  EXPECT_EQ(dir, LocalDirection::kRight);
}

TEST(Pef3PlusComputeTest, StateToStringIsReadable) {
  const Pef3Plus algo;
  auto state = algo.make_state(0);
  EXPECT_EQ(state->to_string(), "{stayed}");
  LocalDirection dir = LocalDirection::kLeft;
  algo.compute(make_view(true, true, false), dir, *state);
  EXPECT_EQ(state->to_string(), "{moved}");
  auto clone = state->clone();
  EXPECT_EQ(clone->to_string(), "{moved}");
}

// --- Behavioural tests --------------------------------------------------

Simulator make_sim(std::uint32_t n, std::uint32_t k, SchedulePtr schedule) {
  const Ring ring(n);
  return Simulator(ring, std::make_shared<Pef3Plus>(),
                   make_oblivious(std::move(schedule)),
                   spread_placements(ring, k));
}

TEST(Pef3PlusBehaviourTest, ExploresStaticRing) {
  auto sim = make_sim(8, 3, std::make_shared<StaticSchedule>(Ring(8)));
  sim.run(200);
  const auto coverage = analyze_coverage(sim.trace());
  EXPECT_TRUE(coverage.perpetual(8));
  EXPECT_LE(coverage.max_revisit_gap, 16u);
}

TEST(Pef3PlusBehaviourTest, SentinelsFormAtEventualMissingEdge) {
  const Ring ring(8);
  const EdgeId missing = 5;
  auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
      std::make_shared<StaticSchedule>(ring), missing, /*vanish_time=*/10);
  Simulator sim(ring, std::make_shared<Pef3Plus>(), make_oblivious(schedule),
                spread_placements(ring, 3));
  sim.run(600);

  const auto sentinels = analyze_sentinels(sim.trace(), missing);
  EXPECT_TRUE(sentinels.sentinels_formed());
  EXPECT_EQ(sentinels.sentinels_at_horizon.size(), 2u);  // Lemma 3.7
  EXPECT_EQ(sentinels.explorers_at_horizon.size(), 1u);  // k - 2 explorers

  const auto coverage = analyze_coverage(sim.trace());
  EXPECT_TRUE(coverage.perpetual(8));  // Theorem 3.1 with a missing edge
}

TEST(Pef3PlusBehaviourTest, TowerLemmasHoldOnEventualMissingEdge) {
  const Ring ring(10);
  auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
      std::make_shared<StaticSchedule>(ring), 0, 15);
  Simulator sim(ring, std::make_shared<Pef3Plus>(), make_oblivious(schedule),
                spread_placements(ring, 4));
  sim.run(800);
  const auto towers = analyze_towers(sim.trace());
  EXPECT_TRUE(towers.lemma_3_4_holds) << "tower of 3+ robots observed";
  EXPECT_TRUE(towers.lemma_3_3_holds)
      << "2-tower with equal global directions observed";
  EXPECT_GT(towers.tower_formation_count, 0u);
}

TEST(Pef3PlusBehaviourTest, ExploresBernoulliRing) {
  auto sim = make_sim(6, 3, std::make_shared<BernoulliSchedule>(Ring(6), 0.5,
                                                                1234));
  sim.run(3000);
  const auto coverage = analyze_coverage(sim.trace());
  EXPECT_TRUE(coverage.perpetual(6));
}

TEST(Pef3PlusBehaviourTest, MoreRobotsThanThreeStillExplore) {
  const Ring ring(9);
  auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
      std::make_shared<StaticSchedule>(ring), 4, 12);
  Simulator sim(ring, std::make_shared<Pef3Plus>(), make_oblivious(schedule),
                spread_placements(ring, 5));
  sim.run(1200);
  EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(9));
  EXPECT_TRUE(analyze_towers(sim.trace()).lemma_3_4_holds);
}

TEST(Pef3PlusBehaviourTest, MixedChiralityStillExplores) {
  // Robots need not share chirality; PEF_3+ must work regardless.
  const Ring ring(7);
  auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
      std::make_shared<StaticSchedule>(ring), 2, 9);
  std::vector<RobotPlacement> placements{
      {0, Chirality(true)}, {3, Chirality(false)}, {5, Chirality(true)}};
  Simulator sim(ring, std::make_shared<Pef3Plus>(), make_oblivious(schedule),
                placements);
  sim.run(900);
  EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(7));
}

class Pef3PlusSweepTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t,
                                                 std::uint64_t>> {};

TEST_P(Pef3PlusSweepTest, PerpetualOnTIntervalRings) {
  const auto [n, k, seed] = GetParam();
  const Ring ring(n);
  auto schedule =
      std::make_shared<TIntervalConnectedSchedule>(ring, 3, seed);
  Simulator sim(ring, std::make_shared<Pef3Plus>(), make_oblivious(schedule),
                spread_placements(ring, k));
  sim.run(400 * n);
  const auto coverage = analyze_coverage(sim.trace());
  EXPECT_TRUE(coverage.perpetual(n)) << "n=" << n << " k=" << k;
  EXPECT_TRUE(analyze_towers(sim.trace()).lemma_3_4_holds);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Pef3PlusSweepTest,
    ::testing::Combine(::testing::Values(4u, 6u, 9u, 12u),
                       ::testing::Values(3u),
                       ::testing::Values(11ull, 22ull)));

}  // namespace
}  // namespace pef
