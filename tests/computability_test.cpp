// Tests for the TABLE 1 decision procedure.
#include "core/computability.hpp"

#include <gtest/gtest.h>

namespace pef::computability {
namespace {

TEST(ComputabilityTest, TableOneRows) {
  // Row 1: k >= 3, n >= 4 (n > k): possible.
  EXPECT_EQ(classify(3, 4), Verdict::kPossible);
  EXPECT_EQ(classify(3, 100), Verdict::kPossible);
  EXPECT_EQ(classify(5, 17), Verdict::kPossible);
  // Row 2: k = 2, n > 3: impossible.
  EXPECT_EQ(classify(2, 4), Verdict::kImpossible);
  EXPECT_EQ(classify(2, 5), Verdict::kImpossible);
  EXPECT_EQ(classify(2, 1000), Verdict::kImpossible);
  // Row 3: k = 2, n = 3: possible.
  EXPECT_EQ(classify(2, 3), Verdict::kPossible);
  // Row 4: k = 1, n > 2: impossible.
  EXPECT_EQ(classify(1, 3), Verdict::kImpossible);
  EXPECT_EQ(classify(1, 64), Verdict::kImpossible);
  // Row 5: k = 1, n = 2: possible.
  EXPECT_EQ(classify(1, 2), Verdict::kPossible);
}

TEST(ComputabilityTest, OutOfModelPairs) {
  EXPECT_EQ(classify(0, 5), Verdict::kOutOfModel);
  EXPECT_EQ(classify(5, 5), Verdict::kOutOfModel);  // k < n required
  EXPECT_EQ(classify(6, 5), Verdict::kOutOfModel);
  EXPECT_EQ(classify(1, 1), Verdict::kOutOfModel);
  EXPECT_EQ(classify(2, 2), Verdict::kOutOfModel);
}

TEST(ComputabilityTest, RequiredRobots) {
  EXPECT_EQ(required_robots(2), 1u);
  EXPECT_EQ(required_robots(3), 2u);
  EXPECT_EQ(required_robots(4), 3u);
  EXPECT_EQ(required_robots(100), 3u);
  EXPECT_EQ(required_robots(1), std::nullopt);
}

TEST(ComputabilityTest, RequiredRobotsIsConsistentWithClassify) {
  for (std::uint32_t n = 2; n <= 40; ++n) {
    const auto k = required_robots(n);
    ASSERT_TRUE(k.has_value());
    EXPECT_EQ(classify(*k, n), Verdict::kPossible) << "n=" << n;
    if (*k > 1) {
      EXPECT_NE(classify(*k - 1, n), Verdict::kPossible) << "n=" << n;
    }
  }
}

TEST(ComputabilityTest, RecommendedAlgorithm) {
  EXPECT_EQ(recommended_algorithm(3, 10), "pef3+");
  EXPECT_EQ(recommended_algorithm(7, 10), "pef3+");
  EXPECT_EQ(recommended_algorithm(2, 3), "pef2");
  EXPECT_EQ(recommended_algorithm(1, 2), "pef1");
  EXPECT_EQ(recommended_algorithm(2, 4), "");
  EXPECT_EQ(recommended_algorithm(1, 3), "");
}

TEST(ComputabilityTest, SupportingTheorems) {
  EXPECT_EQ(supporting_theorem(3, 10), "Theorem 3.1");
  EXPECT_EQ(supporting_theorem(2, 4), "Theorem 4.1");
  EXPECT_EQ(supporting_theorem(2, 3), "Theorem 4.2");
  EXPECT_EQ(supporting_theorem(1, 3), "Theorem 5.1");
  EXPECT_EQ(supporting_theorem(1, 2), "Theorem 5.2");
}

TEST(ComputabilityTest, VerdictToString) {
  EXPECT_STREQ(to_string(Verdict::kPossible), "Possible");
  EXPECT_STREQ(to_string(Verdict::kImpossible), "Impossible");
  EXPECT_STREQ(to_string(Verdict::kOutOfModel), "OutOfModel");
}

}  // namespace
}  // namespace pef::computability
