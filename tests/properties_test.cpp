// Unit tests for evolving-graph property checkers.
#include "dynamic_graph/properties.hpp"

#include <gtest/gtest.h>

#include "dynamic_graph/schedules.hpp"

namespace pef {
namespace {

TEST(PropertiesTest, ObservedUnderlyingEdgesOfStatic) {
  const StaticSchedule s(Ring(5));
  EXPECT_TRUE(observed_underlying_edges(s, 10).full());
}

TEST(PropertiesTest, ObservedUnderlyingOmitsSilentEdge) {
  const Ring ring(4);
  EdgeSet some = EdgeSet::all(4);
  some.erase(2);
  const RecordedSchedule s(ring, {some, some, some}, TailRule::kRepeatLast);
  const EdgeSet observed = observed_underlying_edges(s, 3);
  EXPECT_FALSE(observed.contains(2));
  EXPECT_EQ(observed.size(), 3u);
}

TEST(PropertiesTest, AbsenceIntervalsClosedAndOpen) {
  const Ring ring(3);
  // Edge 0 absent at rounds 1..2, edge 1 absent from round 3 to horizon.
  std::vector<EdgeSet> rounds;
  for (Time t = 0; t < 6; ++t) {
    EdgeSet set = EdgeSet::all(3);
    if (t >= 1 && t <= 2) set.erase(0);
    if (t >= 3) set.erase(1);
    rounds.push_back(set);
  }
  const RecordedSchedule s(ring, rounds, TailRule::kRepeatLast);
  const auto intervals = absence_intervals(s, 6);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0], (AbsenceInterval{0, 1, 2, false}));
  EXPECT_EQ(intervals[1], (AbsenceInterval{1, 3, 5, true}));
}

TEST(PropertiesTest, AuditStaticIsLegal) {
  const StaticSchedule s(Ring(5));
  const auto audit = audit_connectivity(s, 100, 10);
  EXPECT_TRUE(audit.connected_over_time);
  EXPECT_TRUE(audit.suspected_missing.empty());
  EXPECT_EQ(audit.max_closed_absence, 0u);
}

TEST(PropertiesTest, AuditSingleEventualMissingIsLegal) {
  auto base = std::make_shared<StaticSchedule>(Ring(6));
  const EventualMissingEdgeSchedule s(base, 4, 20);
  const auto audit = audit_connectivity(s, 200, 40);
  EXPECT_TRUE(audit.connected_over_time);
  ASSERT_EQ(audit.suspected_missing.size(), 1u);
  EXPECT_EQ(audit.suspected_missing[0], 4u);
}

TEST(PropertiesTest, AuditTwoEventualMissingIsIllegal) {
  auto base = std::make_shared<StaticSchedule>(Ring(6));
  const SurgerySchedule s(base,
                          {{1, 10, kTimeInfinity}, {4, 10, kTimeInfinity}});
  const auto audit = audit_connectivity(s, 200, 40);
  EXPECT_FALSE(audit.connected_over_time);
  EXPECT_EQ(audit.suspected_missing.size(), 2u);
}

TEST(PropertiesTest, AuditFiniteAbsencesAreLegal) {
  auto base = std::make_shared<StaticSchedule>(Ring(4));
  const SurgerySchedule s(base, {{0, 5, 30}, {2, 40, 60}});
  const auto audit = audit_connectivity(s, 200, 50);
  EXPECT_TRUE(audit.connected_over_time);
  EXPECT_TRUE(audit.suspected_missing.empty());
  EXPECT_EQ(audit.max_closed_absence, 26u);
}

TEST(PropertiesTest, AuditBernoulliIsLegal) {
  const BernoulliSchedule s(Ring(8), 0.4, 17);
  const auto audit = audit_connectivity(s, 1000, 200);
  EXPECT_TRUE(audit.connected_over_time);
}

TEST(PropertiesTest, OneEdgeHoldsWhenOneSideMissing) {
  auto base = std::make_shared<StaticSchedule>(Ring(5));
  // Node 2's cw edge is edge 2; its ccw edge is edge 1.
  const SurgerySchedule s(base, {{2, 10, 20}});
  EXPECT_TRUE(one_edge(s, 2, 10, 20));
  const auto present = one_edge_present_side(s, 2, 10, 20);
  ASSERT_TRUE(present.has_value());
  EXPECT_EQ(*present, 1u);
  // Not satisfied when the interval extends past the removal.
  EXPECT_FALSE(one_edge(s, 2, 10, 25));
  // Not satisfied when both edges are present.
  EXPECT_FALSE(one_edge(s, 2, 0, 5));
}

TEST(PropertiesTest, OneEdgeFailsWhenBothMissing) {
  auto base = std::make_shared<StaticSchedule>(Ring(5));
  const SurgerySchedule s(base, {{1, 10, 20}, {2, 10, 20}});
  EXPECT_FALSE(one_edge(s, 2, 10, 20));
}

TEST(PropertiesTest, AuditEmptyWindowNotConnected) {
  const Ring ring(4);
  const auto audit = audit_connectivity(ring, {}, 1);
  EXPECT_FALSE(audit.connected_over_time);
}

}  // namespace
}  // namespace pef
