// Tests for per-robot mobility analysis.
#include "analysis/mobility.hpp"

#include <gtest/gtest.h>

#include "adversary/adversary.hpp"
#include "algorithms/registry.hpp"
#include "analysis/sentinels.hpp"
#include "dynamic_graph/schedules.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

TEST(MobilityTest, FreeRunnerMovesEveryRound) {
  const Ring ring(6);
  Simulator sim(ring, make_algorithm("keep-direction"),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                {{0, Chirality(true)}});
  sim.run(100);
  const auto report = analyze_mobility(sim.trace());
  EXPECT_EQ(report.robots[0].moves, 100u);
  EXPECT_EQ(report.robots[0].waits, 0u);
  EXPECT_EQ(report.robots[0].direction_flips, 0u);
  EXPECT_DOUBLE_EQ(report.robots[0].duty_cycle(), 1.0);
  EXPECT_EQ(report.total_moves, 100u);
}

TEST(MobilityTest, WalledRobotOnlyWaits) {
  const Ring ring(4);
  auto walled = std::make_shared<SurgerySchedule>(
      std::make_shared<StaticSchedule>(ring),
      std::vector<Removal>{{0, 0, kTimeInfinity}, {3, 0, kTimeInfinity}});
  Simulator sim(ring, make_algorithm("bounce"), make_oblivious(walled),
                {{0, Chirality(true)}});
  sim.run(50);
  const auto report = analyze_mobility(sim.trace());
  EXPECT_EQ(report.robots[0].moves, 0u);
  EXPECT_EQ(report.robots[0].waits, 50u);
  EXPECT_DOUBLE_EQ(report.robots[0].duty_cycle(), 0.0);
}

TEST(MobilityTest, BounceFlipsAtWalls) {
  const Ring ring(6);
  // Chain 0..5 via cutting edge 5: bounce patrols and flips at both ends.
  auto chain = std::make_shared<SurgerySchedule>(
      std::make_shared<StaticSchedule>(ring),
      std::vector<Removal>{{5, 0, kTimeInfinity}});
  Simulator sim(ring, make_algorithm("bounce"), make_oblivious(chain),
                {{2, Chirality(true)}});
  sim.run(200);
  const auto report = analyze_mobility(sim.trace());
  EXPECT_GT(report.robots[0].direction_flips, 10u);
  EXPECT_GT(report.robots[0].moves, 150u);
}

TEST(MobilityTest, SentinelExplorerSplitShowsInMobility) {
  // After sentinel formation, the explorer carries all movement.
  const Ring ring(8);
  const EdgeId missing = 3;
  auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
      std::make_shared<StaticSchedule>(ring), missing, 10);
  Simulator sim(ring, make_algorithm("pef3+"), make_oblivious(schedule),
                spread_placements(ring, 3));
  sim.run(1000);
  const auto sentinels = analyze_sentinels(sim.trace(), missing);
  ASSERT_TRUE(sentinels.sentinels_formed());
  const auto steady = analyze_mobility(sim.trace(), *sentinels.formation_time);
  for (RobotId s : sentinels.sentinels_at_horizon) {
    EXPECT_EQ(steady.robots[s].moves, 0u) << "sentinel r" << s << " moved";
  }
  for (RobotId e : sentinels.explorers_at_horizon) {
    EXPECT_GT(steady.robots[e].moves, 100u) << "explorer r" << e;
  }
  EXPECT_EQ(steady.idlest(), sentinels.sentinels_at_horizon[0]);
}

TEST(MobilityTest, FromParameterRestrictsWindow) {
  const Ring ring(5);
  auto blocked_then_free = std::make_shared<SurgerySchedule>(
      std::make_shared<StaticSchedule>(ring),
      std::vector<Removal>{{0, 0, 49}, {1, 0, 49}, {2, 0, 49}, {3, 0, 49},
                           {4, 0, 49}});
  Simulator sim(ring, make_algorithm("keep-direction"),
                make_oblivious(blocked_then_free), {{0, Chirality(true)}});
  sim.run(100);
  const auto all = analyze_mobility(sim.trace());
  const auto late = analyze_mobility(sim.trace(), 50);
  EXPECT_EQ(all.robots[0].moves, 50u);
  EXPECT_EQ(late.robots[0].moves, 50u);
  EXPECT_EQ(late.robots[0].waits, 0u);
  EXPECT_EQ(all.robots[0].waits, 50u);
}

TEST(MobilityTest, MeetingsCounted) {
  const Ring ring(4);
  // Head-on meeting at node 1 (see simulator_test): one shared round.
  Simulator sim(ring, make_algorithm("keep-direction"),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                {{2, Chirality(true)}, {0, Chirality(false)}});
  sim.run(4);
  const auto report = analyze_mobility(sim.trace());
  EXPECT_GE(report.robots[0].meetings, 1u);
  EXPECT_GE(report.robots[1].meetings, 1u);
}

}  // namespace
}  // namespace pef
