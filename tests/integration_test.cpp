// End-to-end integration: the whole TABLE 1 verified in miniature, plus the
// ablation story of DESIGN.md.
#include <gtest/gtest.h>

#include "adversary/proof_adversary.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "core/computability.hpp"
#include "core/experiment.hpp"
#include "dynamic_graph/schedules.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

// --- Possible cells: the paper's algorithm beats the whole battery --------

struct PossibleCell {
  std::uint32_t n;
  std::uint32_t k;
};

class PossibleCellTest : public ::testing::TestWithParam<PossibleCell> {};

TEST_P(PossibleCellTest, RecommendedAlgorithmExploresBattery) {
  const auto [n, k] = GetParam();
  ASSERT_EQ(computability::classify(k, n),
            computability::Verdict::kPossible);
  const std::string algo = computability::recommended_algorithm(k, n);
  for (const AdversaryConfig& adversary : standard_battery_configs()) {
    ScenarioSpec spec;
    spec.nodes = n;
    spec.robots = k;
    spec.algorithm = algo;
    spec.adversary = adversary;
    spec.horizon = 600 * n;
    spec.seed = 77;
    const RunResult result = run_scenario(spec);
    EXPECT_TRUE(result.perpetual)
        << "n=" << n << " k=" << k
        << " adversary=" << adversary_display_name(adversary);
    EXPECT_TRUE(result.adversary_legal) << adversary_display_name(adversary);
  }
}

INSTANTIATE_TEST_SUITE_P(Table1, PossibleCellTest,
                         ::testing::Values(PossibleCell{2, 1},
                                           PossibleCell{3, 2},
                                           PossibleCell{4, 3},
                                           PossibleCell{6, 3},
                                           PossibleCell{6, 4},
                                           PossibleCell{9, 3}));

// --- Impossible cells: the proof adversary defeats every deterministic
//     algorithm we have, staying legal -------------------------------------

struct ImpossibleCell {
  std::uint32_t n;
  std::uint32_t k;
};

class ImpossibleCellTest : public ::testing::TestWithParam<ImpossibleCell> {};

TEST_P(ImpossibleCellTest, ProofAdversaryDefeatsEverything) {
  const auto [n, k] = GetParam();
  ASSERT_EQ(computability::classify(k, n),
            computability::Verdict::kImpossible);
  for (const std::string& name : deterministic_algorithm_names()) {
    const Ring ring(n);
    std::vector<RobotPlacement> placements;
    for (std::uint32_t i = 0; i < k; ++i) {
      placements.push_back({static_cast<NodeId>(i), Chirality(true)});
    }
    Simulator sim(
        ring, make_algorithm(name),
        std::make_unique<StagedProofAdversary>(ring, 0, k + 1, /*patience=*/64),
        placements);
    sim.run(500 * n);
    const auto coverage = analyze_coverage(sim.trace());
    EXPECT_FALSE(coverage.perpetual(n)) << "n=" << n << " k=" << k << " "
                                        << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Table1, ImpossibleCellTest,
                         ::testing::Values(ImpossibleCell{4, 2},
                                           ImpossibleCell{5, 2},
                                           ImpossibleCell{8, 2},
                                           ImpossibleCell{3, 1},
                                           ImpossibleCell{4, 1},
                                           ImpossibleCell{7, 1}));

// --- Ablations: Rules 2 and 3 are both necessary ---------------------------

TEST(AblationTest, NoRule3LosesAgainstEventualMissingEdge) {
  const Ring ring(8);
  auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
      std::make_shared<StaticSchedule>(ring), 3, 10);
  Simulator sim(ring, make_algorithm("pef3+-no-rule3"),
                make_oblivious(schedule), spread_placements(ring, 3));
  sim.run(1000);
  EXPECT_FALSE(analyze_coverage(sim.trace()).perpetual(8));
}

TEST(AblationTest, NoRule2LosesAgainstEventualMissingEdge) {
  // Without Rule 2, sentinels abandon their post on every explorer visit;
  // all robots eventually drift to one side and the far side starves.
  const Ring ring(8);
  bool failed_somewhere = false;
  for (EdgeId missing = 0; missing < 8 && !failed_somewhere; ++missing) {
    auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
        std::make_shared<StaticSchedule>(ring), missing, 10);
    Simulator sim(ring, make_algorithm("pef3+-no-rule2"),
                  make_oblivious(schedule), spread_placements(ring, 3));
    sim.run(2000);
    failed_somewhere = !analyze_coverage(sim.trace()).perpetual(8);
  }
  EXPECT_TRUE(failed_somewhere);
}

TEST(AblationTest, FullPef3PlusWinsWhereAblationsLose) {
  const Ring ring(8);
  for (EdgeId missing = 0; missing < 8; ++missing) {
    auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
        std::make_shared<StaticSchedule>(ring), missing, 10);
    Simulator sim(ring, make_algorithm("pef3+"), make_oblivious(schedule),
                  spread_placements(ring, 3));
    sim.run(2000);
    EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(8))
        << "missing=" << missing;
  }
}

// --- The self-check the paper's Table 1 row boundaries imply ---------------

TEST(BoundaryTest, TwoRobotsOnTriangleSucceedButFourNodesFail) {
  // n = 3 is the exact boundary for k = 2.
  {
    ExperimentConfig config;
    config.nodes = 3;
    config.robots = 2;
    config.algorithm = make_algorithm("pef2");
    config.adversary =
        adversary_config(AdversaryKind::kTInterval, {{"interval", 3}});
    config.horizon = 2000;
    config.seed = 3;
    EXPECT_TRUE(run_experiment(config).perpetual);
  }
  {
    const Ring ring(4);
    Simulator sim(
        ring, make_algorithm("pef2"),
        std::make_unique<StagedProofAdversary>(ring, 0, 3, /*patience=*/64),
        {{0, Chirality(true)}, {1, Chirality(true)}});
    sim.run(2000);
    EXPECT_FALSE(analyze_coverage(sim.trace()).perpetual(4));
  }
}

TEST(BoundaryTest, OneRobotOnTwoNodesSucceedsButThreeFail) {
  {
    ExperimentConfig config;
    config.nodes = 2;
    config.robots = 1;
    config.algorithm = make_algorithm("pef1");
    config.adversary =
        adversary_config(AdversaryKind::kBernoulli, {{"p", 0.5}});
    config.horizon = 2000;
    config.seed = 4;
    EXPECT_TRUE(run_experiment(config).perpetual);
  }
  {
    const Ring ring(3);
    Simulator sim(
        ring, make_algorithm("pef1"),
        std::make_unique<StagedProofAdversary>(ring, 0, 2, /*patience=*/64),
        {{0, Chirality(true)}});
    sim.run(2000);
    EXPECT_FALSE(analyze_coverage(sim.trace()).perpetual(3));
  }
}

}  // namespace
}  // namespace pef
