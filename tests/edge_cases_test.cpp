// Defensive edge-case and bounds tests across the substrate: the checks a
// downstream user hits first when holding the API wrong.
#include <gtest/gtest.h>

#include "adversary/adversary.hpp"
#include "adversary/confinement.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "analysis/towers.hpp"
#include "dynamic_graph/edge_set.hpp"
#include "dynamic_graph/ring.hpp"
#include "dynamic_graph/schedules.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

TEST(EdgeCasesDeathTest, RingRejectsDegenerateSizes) {
  EXPECT_DEATH({ Ring ring(1); (void)ring; }, "n >= 2");
  EXPECT_DEATH({ Ring ring(0); (void)ring; }, "n >= 2");
}

TEST(EdgeCasesDeathTest, RingBoundsChecked) {
  const Ring ring(4);
  EXPECT_DEATH({ (void)ring.neighbour(4, GlobalDirection::kClockwise); },
               "is_valid_node");
  EXPECT_DEATH({ (void)ring.edge_tail(4); }, "is_valid_edge");
}

TEST(EdgeCasesDeathTest, EdgeSetBoundsChecked) {
  EdgeSet s(3);
  EXPECT_DEATH({ (void)s.contains(3); }, "edge_count");
  EXPECT_DEATH({ s.insert(7); }, "edge_count");
}

TEST(EdgeCasesDeathTest, EdgeSetSizeMismatchChecked) {
  EdgeSet a(3);
  EdgeSet b(4);
  EXPECT_DEATH({ a |= b; }, "edge_count");
}

TEST(EdgeCasesDeathTest, RecordedScheduleValidatesEdgeCounts) {
  EXPECT_DEATH(
      {
        RecordedSchedule s(Ring(4), {EdgeSet::all(5)});
        (void)s;
      },
      "edge_count");
}

TEST(EdgeCasesDeathTest, ConfinementWindowMustFitInsideRing) {
  const Ring ring(4);
  EXPECT_DEATH(
      { ConfinementAdversary cage(ring, 0, 4); (void)cage; },
      "width < ring");
}

TEST(EdgeCasesTest, MinimalRunsWork) {
  // 1 round, 1 robot, smallest ring.
  const Ring ring(2);
  Simulator sim(ring, make_algorithm("pef1"),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                {{0, Chirality(true)}});
  const RoundRecord rec = sim.step();
  EXPECT_EQ(rec.time, 0u);
  EXPECT_TRUE(rec.robots[0].moved);
  const auto coverage = analyze_coverage(sim.trace());
  EXPECT_EQ(coverage.visited_node_count, 2u);
}

TEST(EdgeCasesTest, ZeroLengthTraceAnalyses) {
  const Ring ring(4);
  Simulator sim(ring, make_algorithm("pef3+"),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                spread_placements(ring, 3));
  // No rounds executed: coverage sees only initial positions, towers none.
  const auto coverage = analyze_coverage(sim.trace());
  EXPECT_EQ(coverage.visited_node_count, 3u);
  EXPECT_EQ(coverage.horizon, 0u);
  const auto towers = analyze_towers(sim.trace());
  EXPECT_TRUE(towers.towers.empty());
  EXPECT_TRUE(towers.lemma_3_3_holds);
  EXPECT_TRUE(towers.lemma_3_4_holds);
}

TEST(EdgeCasesTest, EmptyEdgeRoundsStallEverything) {
  const Ring ring(5);
  auto none = std::make_shared<RecordedSchedule>(
      ring, std::vector<EdgeSet>(30, EdgeSet::none(5)),
      TailRule::kRepeatLast);
  Simulator sim(ring, make_algorithm("pef3+"), make_oblivious(none),
                spread_placements(ring, 3));
  sim.run(30);
  for (RobotId r = 0; r < 3; ++r) {
    EXPECT_EQ(sim.trace().position_at(r, 30),
              sim.trace().position_at(r, 0));
  }
}

TEST(EdgeCasesTest, LargeRingSmokeTest) {
  const Ring ring(512);
  Simulator sim(ring, make_algorithm("pef3+"),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                spread_placements(ring, 3));
  sim.run(1200);
  const auto coverage = analyze_coverage(sim.trace());
  EXPECT_EQ(coverage.visited_node_count, 512u);
}

TEST(EdgeCasesTest, ManyRobotsSmokeTest) {
  const Ring ring(64);
  Simulator sim(ring, make_algorithm("pef3+"),
                make_oblivious(std::make_shared<BernoulliSchedule>(ring, 0.5,
                                                                   3)),
                spread_placements(ring, 63));
  sim.run(500);
  EXPECT_TRUE(analyze_towers(sim.trace()).lemma_3_4_holds);
}

TEST(EdgeCasesTest, TraceBoundsChecked) {
  const Ring ring(4);
  Simulator sim(ring, make_algorithm("pef3+"),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                spread_placements(ring, 2));
  sim.run(5);
  EXPECT_EQ(sim.trace().length(), 5u);
  EXPECT_NO_FATAL_FAILURE((void)sim.trace().position_at(1, 5));
  EXPECT_DEATH((void)sim.trace().position_at(1, 6), "t <= length");
  EXPECT_DEATH((void)sim.trace().position_at(2, 3), "robot_count");
}

}  // namespace
}  // namespace pef
