// Unit tests for tower detection and the Lemma 3.3 / 3.4 checks.
#include "analysis/towers.hpp"

#include <gtest/gtest.h>

#include "adversary/adversary.hpp"
#include "algorithms/baselines.hpp"
#include "algorithms/pef3plus.hpp"
#include "dynamic_graph/schedules.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

TEST(TowersTest, NoTowerOnLoneRobot) {
  const Ring ring(4);
  Simulator sim(ring, std::make_shared<KeepDirection>(),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                {{0, Chirality(true)}});
  sim.run(50);
  const auto report = analyze_towers(sim.trace());
  EXPECT_TRUE(report.towers.empty());
  EXPECT_EQ(report.tower_formation_count, 0u);
  EXPECT_TRUE(report.lemma_3_3_holds);
  EXPECT_TRUE(report.lemma_3_4_holds);
}

TEST(TowersTest, HeadOnMeetingFormsTower) {
  const Ring ring(4);
  // r0 at 2 going ccw, r1 at 0 going cw: they meet on node 1 after 1 round
  // and, with KeepDirection, walk together... no: opposite global dirs, so
  // they separate immediately after 1 config time together.
  Simulator sim(ring, std::make_shared<KeepDirection>(),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                {{2, Chirality(true)}, {0, Chirality(false)}});
  sim.run(4);
  const auto report = analyze_towers(sim.trace());
  ASSERT_GE(report.towers.size(), 1u);
  EXPECT_EQ(report.towers[0].node, 1u);
  EXPECT_EQ(report.towers[0].start, 1u);
  EXPECT_EQ(report.towers[0].size(), 2u);
  EXPECT_TRUE(report.lemma_3_4_holds);
  // KeepDirection robots with opposite considered directions satisfy the
  // Lemma 3.3 condition trivially.
  EXPECT_TRUE(report.lemma_3_3_holds);
}

TEST(TowersTest, ChasingRobotsTravelTogetherAndViolateLemma33) {
  const Ring ring(6);
  // Both robots move ccw; block the leader until the chaser catches up,
  // then they travel together forever: a long-lived tower with EQUAL global
  // directions -> Lemma 3.3 must be reported as violated (KeepDirection is
  // not PEF_3+).
  auto base = std::make_shared<StaticSchedule>(ring);
  // r0 at node 2, its ccw edge is edge 1: block edge 1 for 2 rounds.
  auto schedule = std::make_shared<SurgerySchedule>(
      base, std::vector<Removal>{{1, 0, 1}});
  Simulator sim(ring, std::make_shared<KeepDirection>(),
                make_oblivious(schedule),
                {{2, Chirality(true)}, {4, Chirality(true)}});
  sim.run(20);
  const auto report = analyze_towers(sim.trace());
  ASSERT_GE(report.towers.size(), 1u);
  EXPECT_FALSE(report.lemma_3_3_holds);
  EXPECT_GT(report.max_tower_duration, 10u);
}

TEST(TowersTest, ThreeRobotPileViolatesLemma34) {
  const Ring ring(5);
  // Three KeepDirection robots all moving ccw; wall them so they pile onto
  // node 0: block node 0's ccw edge (edge 4) forever.
  auto base = std::make_shared<StaticSchedule>(ring);
  auto schedule = std::make_shared<SurgerySchedule>(
      base, std::vector<Removal>{{4, 0, kTimeInfinity}});
  Simulator sim(ring, std::make_shared<KeepDirection>(),
                make_oblivious(schedule),
                {{0, Chirality(true)},
                 {1, Chirality(true)},
                 {2, Chirality(true)}});
  sim.run(10);
  const auto report = analyze_towers(sim.trace());
  EXPECT_FALSE(report.lemma_3_4_holds);
  EXPECT_EQ(report.max_tower_size, 3u);
}

TEST(TowersTest, TowerIntervalsAreMaximal) {
  const Ring ring(4);
  // Meet at node 1 (see HeadOnMeetingFormsTower) and separate next round.
  Simulator sim(ring, std::make_shared<KeepDirection>(),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                {{2, Chirality(true)}, {0, Chirality(false)}});
  sim.run(6);
  const auto report = analyze_towers(sim.trace());
  for (const auto& tower : report.towers) {
    EXPECT_GE(tower.duration(), 1u);
    EXPECT_LE(tower.start, tower.end);
  }
}

TEST(TowersTest, Pef3PlusBreaksTowersQuickly) {
  const Ring ring(8);
  auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
      std::make_shared<StaticSchedule>(ring), 3, 10);
  Simulator sim(ring, std::make_shared<Pef3Plus>(), make_oblivious(schedule),
                spread_placements(ring, 3));
  sim.run(500);
  const auto report = analyze_towers(sim.trace());
  EXPECT_GT(report.tower_formation_count, 3u);
  // With every edge but the missing one always present, a PEF_3+ tower
  // breaks within one round of forming.
  EXPECT_LE(report.max_tower_duration, 2u);
  EXPECT_TRUE(report.lemma_3_3_holds);
  EXPECT_TRUE(report.lemma_3_4_holds);
}

}  // namespace
}  // namespace pef
