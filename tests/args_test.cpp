// Tests for the command-line argument parser.
#include "common/args.hpp"

#include <gtest/gtest.h>

namespace pef {
namespace {

ArgParser make(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgsTest, SpaceSeparatedValues) {
  auto args = make({"--nodes", "12", "--algorithm", "pef3+"});
  EXPECT_EQ(args.get_u32("--nodes", 0), 12u);
  EXPECT_EQ(args.get_string("--algorithm", ""), "pef3+");
  EXPECT_TRUE(args.unused().empty());
}

TEST(ArgsTest, EqualsSeparatedValues) {
  auto args = make({"--nodes=7", "--p=0.25"});
  EXPECT_EQ(args.get_u32("--nodes", 0), 7u);
  EXPECT_DOUBLE_EQ(args.get_double("--p", 0), 0.25);
}

TEST(ArgsTest, DefaultsWhenAbsent) {
  auto args = make({});
  EXPECT_EQ(args.get_u32("--nodes", 10), 10u);
  EXPECT_EQ(args.get_string("--algorithm", "pef3+"), "pef3+");
  EXPECT_DOUBLE_EQ(args.get_double("--p", 0.5), 0.5);
  EXPECT_FALSE(args.has("--render"));
}

TEST(ArgsTest, BooleanFlags) {
  auto args = make({"--render", "--nodes", "5"});
  EXPECT_TRUE(args.has("--render"));
  EXPECT_EQ(args.get_u32("--nodes", 0), 5u);
}

TEST(ArgsTest, UnusedFlagsReported) {
  auto args = make({"--nodes", "5", "--typo-flag", "--other=1"});
  EXPECT_EQ(args.get_u32("--nodes", 0), 5u);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 2u);
  EXPECT_EQ(unused[0], "--typo-flag");
  EXPECT_EQ(unused[1], "--other");
}

TEST(ArgsTest, U64RoundTrip) {
  auto args = make({"--horizon", "123456789012"});
  EXPECT_EQ(args.get_u64("--horizon", 0), 123456789012ull);
}

TEST(ArgsDeathTest, RejectsPositionalArguments) {
  EXPECT_DEATH(
      { auto a = make({"positional"}); (void)a; },
      "unexpected positional");
}

TEST(ArgsDeathTest, CheckUnusedExitsOnTypos) {
  EXPECT_EXIT(
      {
        auto args = make({"--nodes", "5", "--typo-flag"});
        (void)args.get_u32("--nodes", 0);
        args.check_unused();
      },
      ::testing::ExitedWithCode(2), "unknown flag --typo-flag");
}

TEST(ArgsTest, CheckUnusedPassesWhenEverythingConsumed) {
  auto args = make({"--nodes", "5"});
  EXPECT_EQ(args.get_u32("--nodes", 0), 5u);
  args.check_unused();  // must not exit
}

}  // namespace
}  // namespace pef
