// Tests for the Lemma 4.1 mirror construction (Figure 1).
#include "core/lemma41.hpp"

#include <gtest/gtest.h>

#include "adversary/adversary.hpp"
#include "algorithms/registry.hpp"
#include "scheduler/simulator.hpp"

namespace pef::lemma41 {
namespace {

// Build an original execution on an 8-ring where robot 0 stays inside a
// 2-node neighbourhood around node 4 and robot 1 is walled at node 0.
// `around4` gives, per round, the presence of (edge 3, edge 4) — the ccw/cw
// edges of node 4; edge 2 and edge 5 stay absent so robot 0 can never leave
// {3, 4, 5}; edges 7 and 0 stay absent so robot 1 never moves.
Trace run_original(const AlgorithmPtr& algorithm,
                   const std::vector<std::pair<bool, bool>>& around4,
                   Time extra = 0, Chirality r0_chirality = Chirality(true)) {
  const Ring ring(8);
  std::vector<EdgeSet> rounds;
  for (const auto& [e3, e4] : around4) {
    EdgeSet s(8);
    if (e3) s.insert(3);
    if (e4) s.insert(4);
    s.insert(1);  // immaterial far edge, keeps the graph lively
    rounds.push_back(s);
  }
  auto schedule = std::make_shared<RecordedSchedule>(ring, rounds,
                                                     TailRule::kRepeatLast);
  Simulator sim(ring, algorithm, make_oblivious(schedule),
                {{4, r0_chirality}, {0, Chirality(true)}});
  sim.run(around4.size() + extra);
  return sim.trace();
}

TEST(ExtractPrefixTest, NeverMovedCase) {
  const auto algo = make_algorithm("keep-direction");
  // Both adjacent edges of node 4 absent for 6 rounds.
  const Trace trace = run_original(
      algo, std::vector<std::pair<bool, bool>>(6, {false, false}));
  const auto prefix = extract_prefix(trace, 0, 6);
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->geometry, Case::kStayedNeverMoved);
  EXPECT_EQ(prefix->i, 4u);
  EXPECT_EQ(prefix->f, 4u);
  EXPECT_EQ(prefix->a, 4u);
  EXPECT_EQ(prefix->neighbourhood.size(), 6u);
  for (const auto& nb : prefix->neighbourhood) {
    EXPECT_FALSE(nb.r_i);
    EXPECT_FALSE(nb.l_i);
  }
}

TEST(ExtractPrefixTest, VisitedCcwAndCameBack) {
  const auto algo = make_algorithm("bounce");
  // Round 0: ccw edge (3) present -> bounce moves 4 -> 3.
  // Rounds 1-2: nothing around node 3 -> waits there.
  // Round 3: edge 3 present again -> flips and returns to 4.
  const Trace trace = run_original(
      algo, {{true, false}, {false, false}, {false, false}, {true, false}});
  const auto prefix = extract_prefix(trace, 0, 4);
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->geometry, Case::kStayedVisitedCcw);
  EXPECT_EQ(prefix->i, 4u);
  EXPECT_EQ(prefix->a, 3u);
  EXPECT_EQ(prefix->f, 4u);
}

TEST(ExtractPrefixTest, EndedOnCwNeighbour) {
  const auto algo = make_algorithm("bounce");
  // Bounce initially points ccw (left); with only the cw edge (4) present
  // it flips and moves 4 -> 5, then stays (nothing present around 5).
  const Trace trace = run_original(
      algo, {{false, true}, {false, false}, {false, false}});
  const auto prefix = extract_prefix(trace, 0, 3);
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->geometry, Case::kEndedOnACw);
  EXPECT_EQ(prefix->i, 4u);
  EXPECT_EQ(prefix->a, 5u);
  EXPECT_EQ(prefix->f, 5u);
}

TEST(ExtractPrefixTest, RejectsTowerPrefix) {
  // Two robots meeting head-on form a tower: the lemma preconditions fail.
  const Ring ring(4);
  auto schedule = std::make_shared<StaticSchedule>(ring);
  Simulator sim(ring, make_algorithm("keep-direction"),
                make_oblivious(schedule),
                {{2, Chirality(true)}, {0, Chirality(false)}});
  sim.run(4);
  EXPECT_EQ(extract_prefix(sim.trace(), 0, 4), std::nullopt);
}

TEST(ExtractPrefixTest, RejectsWideWanderer) {
  // A robot that visits 3 nodes violates the "at most two adjacent nodes"
  // precondition.
  const Ring ring(8);
  auto schedule = std::make_shared<StaticSchedule>(ring);
  Simulator sim(ring, make_algorithm("keep-direction"),
                make_oblivious(schedule),
                {{4, Chirality(true)}, {0, Chirality(true)}});
  sim.run(3);
  EXPECT_EQ(extract_prefix(sim.trace(), 0, 3), std::nullopt);
}

struct MirrorCase {
  const char* algorithm;
  std::vector<std::pair<bool, bool>> around4;
  Case expected_case;
};

class MirrorConstructionTest : public ::testing::TestWithParam<MirrorCase> {};

TEST_P(MirrorConstructionTest, AllFourClaimsHold) {
  const MirrorCase& param = GetParam();
  const auto algo = make_algorithm(param.algorithm);
  const Trace original = run_original(algo, param.around4);
  const Time t = param.around4.size();

  const auto prefix = extract_prefix(original, 0, t);
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->geometry, param.expected_case);

  const Construction construction = build(*prefix);
  EXPECT_EQ(construction.ring.node_count(), 8u);
  EXPECT_EQ(construction.f1, 0u);
  EXPECT_EQ(construction.f2, 1u);
  // Opposite chirality placement (the paper's setup).
  EXPECT_EQ(construction.r1.chirality.flipped(), construction.r2.chirality);

  const auto report = replay_and_verify(construction, algo, original, 0,
                                        *prefix, /*extra_rounds=*/50);
  EXPECT_TRUE(report.claim1_symmetry);
  EXPECT_TRUE(report.claim2_no_tower);
  EXPECT_TRUE(report.claim3_replay);
  EXPECT_TRUE(report.claim4_adjacent);
}

INSTANTIATE_TEST_SUITE_P(
    FigureOneCases, MirrorConstructionTest,
    ::testing::Values(
        // Case 2 of Figure 1: i = f = a (never moved).
        MirrorCase{"keep-direction",
                   std::vector<std::pair<bool, bool>>(5, {false, false}),
                   Case::kStayedNeverMoved},
        // Visited the ccw neighbour and returned (i = f, d(i,a) = 1).
        MirrorCase{"bounce",
                   {{true, false}, {false, false}, {false, false},
                    {true, false}},
                   Case::kStayedVisitedCcw},
        // Visited the cw neighbour and returned.
        MirrorCase{"bounce",
                   {{false, true}, {false, false}, {false, false},
                    {false, true}},
                   Case::kStayedVisitedCw},
        // Ended on the cw neighbour (i != f, a = f).
        MirrorCase{"bounce",
                   {{false, true}, {false, false}},
                   Case::kEndedOnACw},
        // Ended on the ccw neighbour.
        MirrorCase{"keep-direction",
                   {{true, false}, {false, false}},
                   Case::kEndedOnACcw}));

TEST(MirrorConstructionTest, CampingAlgorithmHoldsGluedNodesForever) {
  // keep-direction camps under OneEdge: give robot 0 the chirality that
  // makes it point clockwise in G (hence at the glue edge in G').  Both
  // mirror copies then hold f'1 / f'2 for the entire post-t window and only
  // the two glued nodes are ever visited — the contradiction Theorem 4.1
  // derives from a state that never departs.
  const auto algo = make_algorithm("keep-direction");
  const std::vector<std::pair<bool, bool>> around4(4, {false, false});
  const Trace original =
      run_original(algo, around4, /*extra=*/0, Chirality(false));
  const auto prefix = extract_prefix(original, 0, 4);
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->geometry, Case::kStayedNeverMoved);
  const Construction construction = build(*prefix);
  const auto report = replay_and_verify(construction, algo, original, 0,
                                        *prefix, /*extra_rounds=*/200);
  EXPECT_TRUE(report.all_claims());
  EXPECT_EQ(report.post_hold_rounds, 200u);
  EXPECT_LE(report.visited_nodes, 2u);
}

}  // namespace
}  // namespace pef::lemma41
