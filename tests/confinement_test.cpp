// Unit tests for the adaptive cage (ConfinementAdversary).
#include "adversary/confinement.hpp"

#include <gtest/gtest.h>

#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "dynamic_graph/properties.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

TEST(ConfinementTest, WindowGeometry) {
  const Ring ring(8);
  ConfinementAdversary cage(ring, /*anchor=*/2, /*width=*/3);
  EXPECT_TRUE(cage.in_window(2));
  EXPECT_TRUE(cage.in_window(3));
  EXPECT_TRUE(cage.in_window(4));
  EXPECT_FALSE(cage.in_window(5));
  EXPECT_FALSE(cage.in_window(1));
  EXPECT_EQ(cage.left_boundary_edge(), 1u);   // edge (1,2)
  EXPECT_EQ(cage.right_boundary_edge(), 4u);  // edge (4,5)
}

TEST(ConfinementTest, WindowWrapsAroundZero) {
  const Ring ring(6);
  ConfinementAdversary cage(ring, /*anchor=*/5, /*width=*/2);
  EXPECT_TRUE(cage.in_window(5));
  EXPECT_TRUE(cage.in_window(0));
  EXPECT_FALSE(cage.in_window(1));
  EXPECT_EQ(cage.left_boundary_edge(), 4u);
  EXPECT_EQ(cage.right_boundary_edge(), 0u);
}

TEST(ConfinementTest, RemovesBoundaryOnlyWhenOccupied) {
  const Ring ring(8);
  ConfinementAdversary cage(ring, 2, 3);
  std::vector<RobotSnapshot> snaps(1);
  snaps[0].node = 3;  // mid-window
  const EdgeSet mid = cage.choose_edges(0, Configuration(ring, snaps));
  EXPECT_TRUE(mid.full());

  snaps[0].node = 2;  // left boundary node
  const EdgeSet left = cage.choose_edges(1, Configuration(ring, snaps));
  EXPECT_FALSE(left.contains(1));
  EXPECT_EQ(left.size(), 7u);

  snaps[0].node = 4;  // right boundary node
  const EdgeSet right = cage.choose_edges(2, Configuration(ring, snaps));
  EXPECT_FALSE(right.contains(4));
  EXPECT_EQ(right.size(), 7u);
}

TEST(ConfinementTest, EveryDeterministicAlgorithmStaysCaged) {
  // One robot, window of 2 on an 8-ring: nobody escapes and nobody visits
  // more than 2 nodes — the executable content of Theorem 5.1.
  for (const std::string& name : deterministic_algorithm_names()) {
    const Ring ring(8);
    Simulator sim(ring, make_algorithm(name),
                  std::make_unique<ConfinementAdversary>(ring, 3, 2),
                  {{3, Chirality(true)}});
    sim.run(500);
    const auto coverage = analyze_coverage(sim.trace());
    EXPECT_LE(coverage.visited_node_count, 2u) << name;
  }
}

TEST(ConfinementTest, TwoRobotsStayCagedInWindowOfThree) {
  for (const std::string& name : deterministic_algorithm_names()) {
    const Ring ring(9);
    Simulator sim(ring, make_algorithm(name),
                  std::make_unique<ConfinementAdversary>(ring, 4, 3),
                  {{4, Chirality(true)}, {5, Chirality(true)}});
    sim.run(500);
    const auto coverage = analyze_coverage(sim.trace());
    EXPECT_LE(coverage.visited_node_count, 3u) << name;
  }
}

TEST(ConfinementTest, CageIsLegalAgainstMovers) {
  // Against the bounce baseline the robot keeps shuttling, so every absence
  // interval closes: the realized prefix is connected-over-time.
  const Ring ring(8);
  Simulator sim(ring, make_algorithm("bounce"),
                std::make_unique<ConfinementAdversary>(ring, 3, 2),
                {{3, Chirality(true)}});
  sim.run(1000);
  const auto audit =
      audit_connectivity(ring, sim.trace().edge_history(), /*patience=*/250);
  EXPECT_TRUE(audit.connected_over_time);
}

TEST(ConfinementTest, RandomWalkAlsoCaged) {
  const Ring ring(10);
  Simulator sim(ring, make_algorithm("random-walk", 5),
                std::make_unique<ConfinementAdversary>(ring, 2, 3),
                {{2, Chirality(true)}, {4, Chirality(false)}});
  sim.run(2000);
  EXPECT_LE(analyze_coverage(sim.trace()).visited_node_count, 3u);
}

}  // namespace
}  // namespace pef
