// Tests for the SSYNC extension (the [10] impossibility argument).
#include "scheduler/ssync.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "dynamic_graph/properties.hpp"
#include "dynamic_graph/schedules.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

TEST(SsyncTest, FullActivationMatchesFsyncEngine) {
  // With everyone activated every round, the SSYNC engine must reproduce
  // the FSYNC engine exactly — a cross-check of the two implementations.
  const Ring ring(7);
  auto schedule = std::make_shared<BernoulliSchedule>(ring, 0.6, 77);
  const auto placements = spread_placements(ring, 3);

  Simulator fsync(ring, make_algorithm("pef3+"), make_oblivious(schedule),
                  placements);
  SsyncSimulator ssync(ring, make_algorithm("pef3+"),
                       std::make_unique<SsyncObliviousAdversary>(schedule),
                       std::make_unique<FullActivation>(), placements);
  fsync.run(300);
  ssync.run(300);
  for (RobotId r = 0; r < 3; ++r) {
    for (Time t = 0; t <= 300; ++t) {
      ASSERT_EQ(fsync.trace().position_at(r, t),
                ssync.trace().position_at(r, t))
          << "r=" << r << " t=" << t;
    }
  }
}

TEST(SsyncTest, BlockerFreezesEveryAlgorithm) {
  // Round-robin activation + both-adjacent-edges removal: no robot ever
  // moves, for any algorithm — the executable content of the SSYNC
  // impossibility of [10].
  for (const std::string& name : algorithm_names()) {
    const Ring ring(6);
    SsyncSimulator sim(ring, make_algorithm(name, 3),
                       std::make_unique<SsyncBlockingAdversary>(ring),
                       std::make_unique<RoundRobinActivation>(),
                       spread_placements(ring, 3));
    sim.run(600);
    for (RobotId r = 0; r < 3; ++r) {
      EXPECT_EQ(sim.trace().position_at(r, 600),
                sim.trace().position_at(r, 0))
          << name;
    }
    EXPECT_EQ(analyze_coverage(sim.trace()).visited_node_count, 3u) << name;
  }
}

TEST(SsyncTest, BlockerKeepsEveryEdgeRecurrent) {
  // The blocker's removals target only the activated robot's edges, so with
  // round-robin activation every edge is present at least whenever distant
  // robots are activated: the realized graph is connected-over-time.
  const Ring ring(6);
  SsyncSimulator sim(ring, make_algorithm("pef3+"),
                     std::make_unique<SsyncBlockingAdversary>(ring),
                     std::make_unique<RoundRobinActivation>(),
                     spread_placements(ring, 3));
  sim.run(600);
  const auto audit =
      audit_connectivity(ring, sim.trace().edge_history(), /*patience=*/150);
  EXPECT_TRUE(audit.connected_over_time);
  EXPECT_TRUE(audit.suspected_missing.empty());
}

TEST(SsyncTest, RoundRobinIsFair) {
  const Ring ring(5);
  RoundRobinActivation activation;
  std::vector<RobotSnapshot> snaps(3);
  snaps[0].node = 0;
  snaps[1].node = 1;
  snaps[2].node = 2;
  const Configuration gamma(ring, snaps);
  std::vector<int> counts(3, 0);
  ActivationMask mask;
  for (Time t = 0; t < 30; ++t) {
    activation.activate(t, gamma, mask);
    int active = 0;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (mask[i]) {
        ++active;
        ++counts[i];
      }
    }
    EXPECT_EQ(active, 1);
  }
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(SsyncTest, BernoulliActivationNeverEmpty) {
  const Ring ring(5);
  BernoulliActivation activation(0.01, 5);
  std::vector<RobotSnapshot> snaps(4);
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    snaps[i].node = static_cast<NodeId>(i);
  }
  const Configuration gamma(ring, snaps);
  ActivationMask mask;
  for (Time t = 0; t < 200; ++t) {
    activation.activate(t, gamma, mask);
    EXPECT_TRUE(std::any_of(mask.begin(), mask.end(),
                            [](std::uint8_t b) { return b != 0; }));
  }
}

TEST(SsyncTest, PefThreePlusSurvivesFairSsyncWithoutEdgeAdversary) {
  // With a benign static graph and random fair activation PEF_3+ still
  // explores — the impossibility needs the *edge* adversary, not mere
  // asynchrony of activation.
  const Ring ring(6);
  auto schedule = std::make_shared<StaticSchedule>(ring);
  SsyncSimulator sim(ring, make_algorithm("pef3+"),
                     std::make_unique<SsyncObliviousAdversary>(schedule),
                     std::make_unique<BernoulliActivation>(0.7, 11),
                     spread_placements(ring, 3));
  sim.run(2000);
  EXPECT_EQ(analyze_coverage(sim.trace()).visited_node_count, 6u);
}

}  // namespace
}  // namespace pef
