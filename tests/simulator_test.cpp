// Unit tests for the FSYNC execution engine.
#include "scheduler/simulator.hpp"

#include <gtest/gtest.h>

#include "algorithms/baselines.hpp"
#include "dynamic_graph/schedules.hpp"

namespace pef {
namespace {

AdversaryPtr static_adversary(const Ring& ring) {
  return make_oblivious(std::make_shared<StaticSchedule>(ring));
}

TEST(SimulatorTest, InitialDirIsLeftAndLeftIsCcw) {
  // Paper: dir starts at `left`; with right_is_clockwise chirality a robot
  // therefore initially considers the counter-clockwise global direction.
  const Ring ring(4);
  Simulator sim(ring, std::make_shared<KeepDirection>(),
                static_adversary(ring), {{0, Chirality(true)}});
  EXPECT_EQ(sim.robot(0).dir(), LocalDirection::kLeft);
  EXPECT_EQ(sim.robot(0).considered_direction(),
            GlobalDirection::kCounterClockwise);
  sim.step();
  EXPECT_EQ(sim.robot(0).node(), 3u);
  sim.step();
  EXPECT_EQ(sim.robot(0).node(), 2u);
}

TEST(SimulatorTest, FlippedChiralityMovesClockwise) {
  const Ring ring(4);
  Simulator sim(ring, std::make_shared<KeepDirection>(),
                static_adversary(ring), {{0, Chirality(false)}});
  sim.step();
  EXPECT_EQ(sim.robot(0).node(), 1u);
}

TEST(SimulatorTest, MissingEdgeBlocksMove) {
  const Ring ring(4);
  // Robot at node 0 moving ccw needs edge 3; remove it for 5 rounds.
  auto base = std::make_shared<StaticSchedule>(ring);
  auto schedule = std::make_shared<SurgerySchedule>(
      base, std::vector<Removal>{{3, 0, 4}});
  Simulator sim(ring, std::make_shared<KeepDirection>(),
                make_oblivious(schedule), {{0, Chirality(true)}});
  for (int i = 0; i < 5; ++i) {
    const RoundRecord rec = sim.step();
    EXPECT_FALSE(rec.robots[0].moved);
    EXPECT_EQ(sim.robot(0).node(), 0u);
  }
  const RoundRecord rec = sim.step();
  EXPECT_TRUE(rec.robots[0].moved);
  EXPECT_EQ(sim.robot(0).node(), 3u);
}

TEST(SimulatorTest, RoundRecordsCapturePhases) {
  const Ring ring(5);
  Simulator sim(ring, std::make_shared<KeepDirection>(),
                static_adversary(ring), {{2, Chirality(true)}});
  const RoundRecord rec = sim.step();
  EXPECT_EQ(rec.time, 0u);
  EXPECT_TRUE(rec.edges.full());
  EXPECT_EQ(rec.robots[0].node_before, 2u);
  EXPECT_EQ(rec.robots[0].node_after, 1u);
  EXPECT_EQ(rec.robots[0].dir_before, LocalDirection::kLeft);
  EXPECT_EQ(rec.robots[0].dir_after, LocalDirection::kLeft);
  EXPECT_FALSE(rec.robots[0].saw_other_robots);
}

TEST(SimulatorTest, MultiplicityDetection) {
  const Ring ring(4);
  // Two robots converging on the same node see each other next round.
  // r0 at node 2 (ccw -> 1), r1 at node 0 (cw via flipped chirality -> 1).
  Simulator sim(ring, std::make_shared<KeepDirection>(),
                static_adversary(ring),
                {{2, Chirality(true)}, {0, Chirality(false)}});
  RoundRecord rec = sim.step();
  EXPECT_EQ(sim.robot(0).node(), 1u);
  EXPECT_EQ(sim.robot(1).node(), 1u);
  EXPECT_FALSE(rec.robots[0].saw_other_robots);  // not colocated during Look
  rec = sim.step();
  EXPECT_TRUE(rec.robots[0].saw_other_robots);
  EXPECT_TRUE(rec.robots[1].saw_other_robots);
}

TEST(SimulatorTest, TraceAccumulatesAndPositionsAt) {
  const Ring ring(6);
  Simulator sim(ring, std::make_shared<KeepDirection>(),
                static_adversary(ring), {{5, Chirality(true)}});
  sim.run(4);
  const Trace& trace = sim.trace();
  EXPECT_EQ(trace.length(), 4u);
  EXPECT_EQ(trace.position_at(0, 0), 5u);
  EXPECT_EQ(trace.position_at(0, 1), 4u);
  EXPECT_EQ(trace.position_at(0, 4), 1u);
  EXPECT_EQ(trace.edge_history().size(), 4u);
}

TEST(SimulatorTest, TwoNodeRingShuttle) {
  const Ring ring(2);
  Simulator sim(ring, std::make_shared<KeepDirection>(),
                static_adversary(ring), {{0, Chirality(true)}});
  // On the 2-node multigraph every move lands on the other node.
  NodeId expected = 0;
  for (int i = 0; i < 6; ++i) {
    sim.step();
    expected = expected == 0 ? 1 : 0;
    EXPECT_EQ(sim.robot(0).node(), expected);
  }
}

TEST(SimulatorTest, SpreadPlacementsAreTowerless) {
  for (std::uint32_t n : {4u, 5u, 9u, 16u}) {
    for (std::uint32_t k = 1; k < n; ++k) {
      const auto placements = spread_placements(Ring(n), k);
      ASSERT_EQ(placements.size(), k);
      for (std::size_t a = 0; a < placements.size(); ++a) {
        EXPECT_LT(placements[a].node, n);
        for (std::size_t b = a + 1; b < placements.size(); ++b) {
          EXPECT_NE(placements[a].node, placements[b].node)
              << "n=" << n << " k=" << k;
        }
      }
    }
  }
}

TEST(SimulatorDeathTest, RejectsTowerInitialConfiguration) {
  const Ring ring(4);
  EXPECT_DEATH(
      {
        Simulator sim(ring, std::make_shared<KeepDirection>(),
                      static_adversary(ring),
                      {{1, Chirality(true)}, {1, Chirality(true)}});
      },
      "towerless");
}

TEST(SimulatorDeathTest, RejectsTooManyRobots) {
  const Ring ring(3);
  EXPECT_DEATH(
      {
        Simulator sim(ring, std::make_shared<KeepDirection>(),
                      static_adversary(ring),
                      {{0, Chirality(true)},
                       {1, Chirality(true)},
                       {2, Chirality(true)}});
      },
      "k < n");
}

TEST(SimulatorTest, SynchronousSwapDoesNotCollide) {
  // Two adjacent robots moving toward each other swap positions through the
  // same edge without meeting (moves are simultaneous).
  const Ring ring(4);
  Simulator sim(ring, std::make_shared<KeepDirection>(),
                static_adversary(ring),
                {{0, Chirality(false)}, {1, Chirality(true)}});
  // r0 at 0 moves cw to 1; r1 at 1 moves ccw to 0.
  sim.step();
  EXPECT_EQ(sim.robot(0).node(), 1u);
  EXPECT_EQ(sim.robot(1).node(), 0u);
}

}  // namespace
}  // namespace pef
