// Differential tests: Engine must be a bit-exact drop-in for the
// reference Simulator, and SweepRunner output must be independent of the
// thread count.
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include "adversary/confinement.hpp"
#include "adversary/greedy_blocker.hpp"
#include "adversary/proof_adversary.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "common/rng.hpp"
#include "dynamic_graph/schedules.hpp"
#include "engine/sweep_runner.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

constexpr std::uint64_t kSeeds = 10;
constexpr Time kRounds = 300;

/// The adversary families of the differential matrix.  Adaptive adversaries
/// are stateful, so each engine gets its own freshly-built instance with
/// identical parameters; fed identical gammas they make identical choices.
struct AdversaryFamily {
  const char* name;
  AdversaryPtr (*make)(const Ring& ring, std::uint32_t k);
  /// Window-based adversaries (proof, cage) require the robots to start
  /// inside their window {0, ..., k}; others take fully random placements.
  bool window_placements = false;
};

AdversaryPtr make_all_edges(const Ring& ring, std::uint32_t) {
  return make_oblivious(std::make_shared<StaticSchedule>(ring));
}

AdversaryPtr make_proof(const Ring& ring, std::uint32_t k) {
  const std::uint32_t width = std::min(k + 1, ring.node_count() - 1);
  return std::make_unique<StagedProofAdversary>(ring, 0, width,
                                                /*patience=*/32);
}

AdversaryPtr make_greedy(const Ring& ring, std::uint32_t) {
  return std::make_unique<GreedyBlockerAdversary>(ring, /*max_absence=*/4);
}

AdversaryPtr make_cage(const Ring& ring, std::uint32_t k) {
  const std::uint32_t width = std::min(k + 1, ring.node_count() - 1);
  return std::make_unique<ConfinementAdversary>(ring, 0, width);
}

const AdversaryFamily kFamilies[] = {
    {"all-edges", make_all_edges},
    {"proof", make_proof, /*window_placements=*/true},
    {"greedy-blocker", make_greedy},
    {"confinement", make_cage, /*window_placements=*/true},
};

/// Towerless placements on nodes {0, ..., k-1} (inside every window-based
/// adversary's window) with seed-derived chiralities.
std::vector<RobotPlacement> window_placements(std::uint32_t k,
                                              std::uint64_t seed) {
  Xoshiro256 rng(derive_seed(seed, 0x77));
  std::vector<RobotPlacement> placements;
  placements.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    placements.push_back(
        {static_cast<NodeId>(i), Chirality(rng.next_bool(0.5))});
  }
  return placements;
}

/// Round-by-round equality of the two engines' traces.
void expect_identical_run(const std::string& algorithm,
                          const AdversaryFamily& family, std::uint32_t n,
                          std::uint32_t k, std::uint64_t seed) {
  SCOPED_TRACE(algorithm + " vs " + family.name + " n=" + std::to_string(n) +
               " k=" + std::to_string(k) + " seed=" + std::to_string(seed));
  const Ring ring(n);
  const auto placements = family.window_placements
                              ? window_placements(k, seed)
                              : random_placements(ring, k, seed);

  Simulator reference(ring, make_algorithm(algorithm, seed),
                      family.make(ring, k), placements);
  EngineOptions options;
  options.record_trace = true;
  Engine fast(ring, make_algorithm(algorithm, seed), family.make(ring, k),
                  placements, options);

  for (Time t = 0; t < kRounds; ++t) {
    const RoundRecord expected = reference.step();
    fast.step();
    const RoundRecord& actual = fast.trace().rounds().back();

    ASSERT_EQ(actual.time, expected.time);
    ASSERT_EQ(actual.edges, expected.edges) << "round " << t;
    ASSERT_EQ(actual.robots.size(), expected.robots.size());
    for (RobotId r = 0; r < expected.robots.size(); ++r) {
      ASSERT_EQ(actual.robots[r].node_before, expected.robots[r].node_before)
          << "round " << t << " robot " << r;
      ASSERT_EQ(actual.robots[r].node_after, expected.robots[r].node_after)
          << "round " << t << " robot " << r;
      ASSERT_EQ(actual.robots[r].dir_before, expected.robots[r].dir_before)
          << "round " << t << " robot " << r;
      ASSERT_EQ(actual.robots[r].dir_after, expected.robots[r].dir_after)
          << "round " << t << " robot " << r;
      ASSERT_EQ(actual.robots[r].moved, expected.robots[r].moved)
          << "round " << t << " robot " << r;
      ASSERT_EQ(actual.robots[r].saw_other_robots,
                expected.robots[r].saw_other_robots)
          << "round " << t << " robot " << r;
    }
    // Live accessors agree with the reference robots.
    for (RobotId r = 0; r < reference.robot_count(); ++r) {
      ASSERT_EQ(fast.robot_node(r), reference.robot(r).node());
      ASSERT_EQ(fast.robot_dir(r), reference.robot(r).dir());
    }
  }
}

TEST(FastEngineDifferentialTest, MatchesSimulatorAcrossRegistryAndAdversaries) {
  for (const std::string& algorithm : algorithm_names()) {
    for (const AdversaryFamily& family : kFamilies) {
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        expect_identical_run(algorithm, family, /*n=*/9, /*k=*/3, seed);
      }
    }
  }
}

TEST(FastEngineDifferentialTest, MatchesSimulatorOnOtherGeometries) {
  // Edge geometries: the 2-node multigraph, a dense ring (k = n - 1), and a
  // larger sparse ring.
  for (const AdversaryFamily& family : kFamilies) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      expect_identical_run("pef3+", family, /*n=*/5, /*k=*/4, seed);
      expect_identical_run("pef3+", family, /*n=*/32, /*k=*/6, seed);
      expect_identical_run("pef1", family, /*n=*/4, /*k=*/1, seed);
      // The 2-node multigraph ring: too small for a window-based adversary
      // (their windows need 2 <= width < n).
      if (!family.window_placements) {
        expect_identical_run("pef1", family, /*n=*/2, /*k=*/1, seed);
      }
    }
  }
}

TEST(FastEngineTest, IncrementalCoverageMatchesTraceAnalysis) {
  // The engine's O(1)-per-round coverage bookkeeping must agree with the
  // trace-based analyze_coverage on every field.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Ring ring(8);
    const auto placements = random_placements(ring, 3, seed);
    EngineOptions options;
    options.record_trace = true;
    Engine engine(
        ring, make_algorithm("pef3+"),
        make_oblivious(std::make_shared<BernoulliSchedule>(ring, 0.6, seed)),
        placements, options);
    engine.run(400);

    const CoverageReport from_trace = analyze_coverage(engine.trace());
    const CoverageReport incremental = engine.coverage_report();
    EXPECT_EQ(incremental.visit_counts, from_trace.visit_counts);
    EXPECT_EQ(incremental.cover_time, from_trace.cover_time);
    EXPECT_EQ(incremental.visited_node_count, from_trace.visited_node_count);
    EXPECT_EQ(incremental.max_revisit_gap, from_trace.max_revisit_gap);
    EXPECT_EQ(incremental.max_closed_gap, from_trace.max_closed_gap);
    EXPECT_EQ(incremental.nodes_visited_in_suffix,
              from_trace.nodes_visited_in_suffix);
    EXPECT_EQ(incremental.horizon, from_trace.horizon);
    EXPECT_EQ(incremental.suffix_window, from_trace.suffix_window);
  }
}

TEST(FastEngineTest, StatsAccumulateWithoutTrace) {
  const Ring ring(6);
  Engine engine(ring, make_algorithm("pef3+"), make_all_edges(ring, 3),
                    spread_placements(ring, 3));
  EXPECT_FALSE(engine.recording_trace());
  engine.run(100);
  EXPECT_EQ(engine.stats().rounds, 100u);
  EXPECT_GT(engine.stats().total_moves, 0u);
  EXPECT_EQ(engine.now(), 100u);
  // All robots still on the ring, occupancy consistent.
  std::uint32_t total = 0;
  for (NodeId u = 0; u < ring.node_count(); ++u) total += engine.robots_on(u);
  EXPECT_EQ(total, 3u);
}

SweepSpec small_grid() {
  SweepSpec spec;
  spec.algorithms = {"pef3+", "bounce"};
  spec.adversaries = {
      adversary_config(AdversaryKind::kStatic),
      adversary_config(AdversaryKind::kBernoulli, {{"p", 0.5}}),
      adversary_config(AdversaryKind::kBoundedAbsence, {{"max_absence", 4}})};
  spec.ring_sizes = {6, 10};
  spec.robot_counts = {3};
  spec.seeds = {1, 2, 3};
  spec.horizon = 500;
  return spec;
}

TEST(SweepRunnerTest, OutputIsThreadCountInvariant) {
  const SweepSpec grid = small_grid();
  const SweepResult serial = SweepRunner(1).run(grid);
  const SweepResult parallel = SweepRunner(4).run(grid);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  EXPECT_GT(serial.cells.size(), 0u);
  EXPECT_EQ(serial.to_json(), parallel.to_json());
}

TEST(SweepRunnerTest, CellsFollowGridOrderAndSkipIllFormedCells) {
  SweepSpec grid = small_grid();
  grid.ring_sizes = {2, 6};
  grid.robot_counts = {3};  // k=3 >= n=2: that slice must be skipped
  const SweepResult result = SweepRunner(2).run(grid);
  for (const SweepCell& cell : result.cells) {
    EXPECT_EQ(cell.nodes, 6u);
    EXPECT_LT(cell.robots, cell.nodes);
  }
  // grid order: algorithm-major, then adversary, n, k, seed.
  ASSERT_GE(result.cells.size(), 2u);
  EXPECT_EQ(result.cells.front().algorithm, "pef3+");
  EXPECT_EQ(result.cells.back().algorithm, "bounce");
}

TEST(SweepRunnerTest, PerpetualVerdictMatchesTheory) {
  // pef3+ with k=3 on small rings must be perpetual against the oblivious
  // battery (Theorem 3.1); the sweep's aggregates must reflect that.
  SweepSpec grid;
  grid.algorithms = {"pef3+"};
  grid.adversaries = {adversary_config(AdversaryKind::kStatic),
                      adversary_config(AdversaryKind::kBernoulli,
                                       {{"p", 0.7}})};
  grid.ring_sizes = {6};
  grid.robot_counts = {3};
  grid.seeds = {1, 2};
  grid.horizon = 2000;
  const SweepResult result = SweepRunner(2).run(grid);
  for (const SweepCell& cell : result.cells) {
    EXPECT_TRUE(cell.perpetual)
        << cell.algorithm << " vs " << cell.adversary << " seed " << cell.seed;
    EXPECT_TRUE(cell.covered);
  }
}

TEST(SweepRunnerTest, EffectiveSeedSeparatesCells) {
  // Distinct coordinates must give distinct streams.
  const auto s1 = effective_seed(1, 0, 0, 6, 3);
  EXPECT_NE(s1, effective_seed(2, 0, 0, 6, 3));
  EXPECT_NE(s1, effective_seed(1, 1, 0, 6, 3));
  EXPECT_NE(s1, effective_seed(1, 0, 1, 6, 3));
  EXPECT_NE(s1, effective_seed(1, 0, 0, 7, 3));
  EXPECT_NE(s1, effective_seed(1, 0, 0, 6, 4));
}

}  // namespace
}  // namespace pef
