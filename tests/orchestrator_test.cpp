// End-to-end tests for the fault-tolerant sweep orchestrator: the real
// pef_orchestrate binary driving real pef_sweep workers (PEF_BIN_DIR) under
// deterministic PEF_FAULT_SPEC chaos, plus unit tests for the pieces
// (fault spec grammar, NMR voter, resume ledger).  The invariant under
// test everywhere: whatever the injected faults, a converged orchestration
// is byte-identical to the unsharded golden baseline.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "core/spec.hpp"
#include "orchestrator/backend.hpp"
#include "orchestrator/fault.hpp"
#include "orchestrator/fleet.hpp"
#include "orchestrator/ledger.hpp"
#include "orchestrator/supervisor.hpp"
#include "orchestrator/transport.hpp"
#include "orchestrator/voter.hpp"

namespace pef {
namespace {

const std::string kSpecPath =
    std::string(PEF_SPEC_DIR) + "/sweep_small.json";
const std::string kGoldenPath =
    std::string(PEF_BASELINE_DIR) + "/sweep_small.json";
const std::string kOrchestrate = std::string(PEF_BIN_DIR) + "/pef_orchestrate";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A fresh per-test scratch directory (workdir, outputs, logs).
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "pef_orch_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Run a shell command; returns its exit code (-1 on launch failure).
int run(const std::string& command) {
  const int status = std::system(command.c_str());
  if (status < 0) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// The standard orchestrate invocation with test-friendly supervision
/// parameters (fast backoff, generous-but-finite timeout).
std::string orchestrate_command(const std::string& dir,
                                const std::string& fault_spec,
                                const std::string& extra_flags) {
  std::string command;
  if (!fault_spec.empty()) {
    command += "PEF_FAULT_SPEC='" + fault_spec + "' ";
  }
  command += kOrchestrate + " --spec " + kSpecPath + " --workdir " + dir +
             "/work --out " + dir + "/merged.json --report " + dir +
             "/report.json --backoff-ms 10 --backoff-cap-ms 50 " +
             extra_flags + " > " + dir + "/orchestrate.log 2>&1";
  return command;
}

JsonValue parse_report(const std::string& dir) {
  std::string error;
  const auto report = parse_json_file(dir + "/report.json", &error);
  EXPECT_TRUE(report.has_value()) << error;
  return report.value_or(JsonValue{});
}

// ---------------------------------------------------------------------------
// Fault spec grammar.

TEST(FaultSpecTest, ParsesAndRoundTrips) {
  std::string error;
  const auto spec = FaultSpec::parse(
      "seed=7:crash=0.4:corrupt=0.2:flip=0.1:hang=0.05:shards=1,3", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_DOUBLE_EQ(spec->crash, 0.4);
  EXPECT_DOUBLE_EQ(spec->corrupt, 0.2);
  EXPECT_DOUBLE_EQ(spec->flip, 0.1);
  EXPECT_DOUBLE_EQ(spec->hang, 0.05);
  EXPECT_EQ(spec->shards, (std::vector<std::uint32_t>{1, 3}));

  const auto reparsed = FaultSpec::parse(spec->to_string(), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(reparsed->to_string(), spec->to_string());

  // Empty spec is inert.
  const auto inert = FaultSpec::parse("", &error);
  ASSERT_TRUE(inert.has_value()) << error;
  EXPECT_TRUE(inert->inert());
  EXPECT_EQ(inert->decide(0, 0), FaultAction::kNone);
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  std::string error;
  EXPECT_FALSE(FaultSpec::parse("crash=2", &error).has_value());
  EXPECT_NE(error.find("crash"), std::string::npos);
  EXPECT_FALSE(FaultSpec::parse("boom=0.5", &error).has_value());
  EXPECT_NE(error.find("unknown key"), std::string::npos);
  EXPECT_FALSE(FaultSpec::parse("crash", &error).has_value());
  EXPECT_FALSE(
      FaultSpec::parse("crash=0.6:corrupt=0.6", &error).has_value());
  EXPECT_NE(error.find("exceed 1"), std::string::npos);
  EXPECT_FALSE(FaultSpec::parse("shards=x", &error).has_value());
}

TEST(FaultSpecTest, DecisionsAreDeterministicPerAttempt) {
  std::string error;
  const auto spec = FaultSpec::parse("seed=11:crash=0.5", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  bool saw_crash = false;
  bool saw_none = false;
  for (std::uint32_t attempt = 0; attempt < 32; ++attempt) {
    const FaultAction action = spec->decide(3, attempt);
    EXPECT_EQ(action, spec->decide(3, attempt)) << "not deterministic";
    saw_crash |= action == FaultAction::kCrash;
    saw_none |= action == FaultAction::kNone;
  }
  // p=0.5 over 32 attempts: both fates occur (deterministically).
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_none);

  // The shard filter wins over any probability.
  const auto filtered = FaultSpec::parse("crash=1.0:shards=2", &error);
  ASSERT_TRUE(filtered.has_value()) << error;
  EXPECT_EQ(filtered->decide(1, 0), FaultAction::kNone);
  EXPECT_EQ(filtered->decide(2, 0), FaultAction::kCrash);
}

// ---------------------------------------------------------------------------
// NMR voter.

ReplicaBallot ballot(std::uint32_t replica, bool valid,
                     const std::string& content) {
  ReplicaBallot b;
  b.replica = replica;
  b.valid = valid;
  b.content = content;
  return b;
}

TEST(VoterTest, MajorityWinsAndDivergentsAreFlagged) {
  const auto vote = vote_on_replicas(
      {ballot(0, true, "good"), ballot(1, true, "BAD"),
       ballot(2, true, "good")});
  EXPECT_TRUE(vote.accepted);
  EXPECT_EQ(vote.winner, "good");
  EXPECT_EQ(vote.winner_votes, 2u);
  EXPECT_EQ(vote.divergent_replicas, (std::vector<std::uint32_t>{1}));
}

TEST(VoterTest, InvalidReplicasGetNoVote) {
  // 1 valid of 3 is not a majority of the slots: two workers already
  // failed, so the lone survivor is not trusted.
  const auto lone = vote_on_replicas(
      {ballot(0, false, ""), ballot(1, true, "good"), ballot(2, false, "")});
  EXPECT_FALSE(lone.accepted);
  EXPECT_EQ(lone.invalid_replicas, (std::vector<std::uint32_t>{0, 2}));

  // 2 valid + agreeing of 3 is a majority even with one invalid.
  const auto pair = vote_on_replicas(
      {ballot(0, true, "good"), ballot(1, false, ""),
       ballot(2, true, "good")});
  EXPECT_TRUE(pair.accepted);
  EXPECT_EQ(pair.winner, "good");
}

TEST(VoterTest, NoMajorityMeansNoWinner) {
  const auto split = vote_on_replicas(
      {ballot(0, true, "a"), ballot(1, true, "b"), ballot(2, true, "c")});
  EXPECT_FALSE(split.accepted);
  EXPECT_EQ(split.winner_votes, 1u);

  // Degenerate single-replica "vote" (replication off) accepts.
  const auto solo = vote_on_replicas({ballot(0, true, "only")});
  EXPECT_TRUE(solo.accepted);
  EXPECT_EQ(solo.winner, "only");
}

// ---------------------------------------------------------------------------
// Resume ledger.

TEST(LedgerTest, JournalsAndReplays) {
  const std::string dir = fresh_dir("ledger");
  const std::string path = dir + "/ledger.jsonl";
  const Ledger::Header header{0x1234u, 4, 3};

  std::string error;
  auto ledger = Ledger::open(path, header, &error);
  ASSERT_TRUE(ledger.has_value()) << error;
  EXPECT_TRUE(ledger->shards().empty());
  ledger->record_failed(2, 1, "worker died on signal 9");
  ledger->record_done(2, dir + "/shard2.json");
  ledger->record_done(0, dir + "/shard0.json");

  auto replayed = Ledger::open(path, header, &error);
  ASSERT_TRUE(replayed.has_value()) << error;
  ASSERT_EQ(replayed->shards().size(), 2u);
  EXPECT_TRUE(replayed->shards().at(2).done);
  EXPECT_EQ(replayed->shards().at(2).output_file, dir + "/shard2.json");
  EXPECT_EQ(replayed->shards().at(2).failed_attempts, 1u);
  EXPECT_TRUE(replayed->shards().at(0).done);

  // A ledger of a different run (spec hash / geometry) is refused.
  EXPECT_FALSE(
      Ledger::open(path, {0x9999u, 4, 3}, &error).has_value());
  EXPECT_NE(error.find("different run"), std::string::npos) << error;
  EXPECT_FALSE(Ledger::open(path, {0x1234u, 5, 3}, &error).has_value());

  // Garbage is not a ledger.
  std::ofstream(dir + "/junk.jsonl") << "{\"what\": 1}\n";
  EXPECT_FALSE(
      Ledger::open(dir + "/junk.jsonl", header, &error).has_value());
}

// ---------------------------------------------------------------------------
// End-to-end chaos: the real binaries under injected faults.

TEST(OrchestratorEndToEndTest, CleanRunMatchesGoldenBaseline) {
  const std::string dir = fresh_dir("clean");
  ASSERT_EQ(run(orchestrate_command(dir, "", "--shards 4")), 0)
      << read_file(dir + "/orchestrate.log");
  EXPECT_EQ(read_file(dir + "/merged.json"), read_file(kGoldenPath));
  const JsonValue report = parse_report(dir);
  EXPECT_TRUE(report.find("orchestrate_complete")->bool_value);
}

TEST(OrchestratorEndToEndTest, CrashedAndCorruptedShardsAreRetried) {
  // Crashes (exit before write) and truncated outputs (exit 0, garbage
  // file) on ~half the attempts: the supervisor must detect both — exit
  // codes alone miss the corruption — and retry to the golden bytes.
  //
  // The fault stream is a pure function of the seed, so search for one
  // that provably (a) bites on some shard's first attempt and (b) leaves
  // every shard a clean attempt inside the budget.  The search is
  // deterministic: every run picks the same seed.
  constexpr std::uint32_t kMaxAttempts = 6;
  std::string fault_text;
  for (std::uint64_t candidate = 1; candidate < 200; ++candidate) {
    const std::string text =
        "seed=" + std::to_string(candidate) + ":crash=0.4:corrupt=0.2";
    std::string error;
    const auto fault = FaultSpec::parse(text, &error);
    ASSERT_TRUE(fault.has_value()) << error;
    bool bites = false;
    bool converges = true;
    for (std::uint32_t shard = 0; shard < 4; ++shard) {
      bites |= fault->decide(shard, 0) != FaultAction::kNone;
      bool clean = false;
      for (std::uint32_t attempt = 0; attempt < kMaxAttempts; ++attempt) {
        clean |= fault->decide(shard, attempt) == FaultAction::kNone;
      }
      converges &= clean;
    }
    if (bites && converges) {
      fault_text = text;
      break;
    }
  }
  ASSERT_FALSE(fault_text.empty()) << "no workable fault seed under 200";

  const std::string dir = fresh_dir("chaos");
  ASSERT_EQ(run(orchestrate_command(dir, fault_text,
                                    "--shards 4 --max-attempts " +
                                        std::to_string(kMaxAttempts))),
            0)
      << read_file(dir + "/orchestrate.log");
  EXPECT_EQ(read_file(dir + "/merged.json"), read_file(kGoldenPath));
}

TEST(OrchestratorEndToEndTest, SilentlyCorruptedReplicaIsOutvoted) {
  // Find a seed where, on first attempts (attempt = replica *
  // max_attempts), exactly one of shard 0's three replicas silently
  // corrupts its output — the corruption validation cannot see.
  constexpr std::uint32_t kMaxAttempts = 3;
  std::uint64_t seed = 0;
  std::string fault_text;
  for (std::uint64_t candidate = 1; candidate < 200; ++candidate) {
    fault_text = "seed=" + std::to_string(candidate) + ":flip=0.34:shards=0";
    std::string error;
    const auto fault = FaultSpec::parse(fault_text, &error);
    ASSERT_TRUE(fault.has_value()) << error;
    std::uint32_t flips = 0;
    for (std::uint32_t replica = 0; replica < 3; ++replica) {
      if (fault->decide(0, replica * kMaxAttempts) ==
          FaultAction::kSilentCorrupt) {
        ++flips;
      }
    }
    if (flips == 1) {
      seed = candidate;
      break;
    }
  }
  ASSERT_NE(seed, 0u) << "no candidate seed flips exactly one replica";

  const std::string dir = fresh_dir("vote");
  ASSERT_EQ(run(orchestrate_command(
                dir, fault_text,
                "--shards 2 --replicate 3 --max-attempts " +
                    std::to_string(kMaxAttempts))),
            0)
      << read_file(dir + "/orchestrate.log");
  // The 2/3 majority outvoted the flipped replica: golden bytes anyway.
  EXPECT_EQ(read_file(dir + "/merged.json"), read_file(kGoldenPath));

  // ... and the report names the divergent replica on shard 0.
  const JsonValue report = parse_report(dir);
  const JsonValue* outcomes = report.find("shard_outcomes");
  ASSERT_NE(outcomes, nullptr);
  const JsonValue* divergent = outcomes->items.at(0).find("divergent_replicas");
  ASSERT_NE(divergent, nullptr);
  EXPECT_EQ(divergent->items.size(), 1u)
      << read_file(dir + "/orchestrate.log");
}

TEST(OrchestratorEndToEndTest, ExhaustedRetriesDegradeToPartialMerge) {
  // Shard 1 always crashes; the budget runs out.  Instead of nothing: a
  // partial merge (missing cells explicitly null) plus a machine-readable
  // failure report, and exit code 1.
  const std::string dir = fresh_dir("degraded");
  ASSERT_EQ(run(orchestrate_command(dir, "seed=1:crash=1.0:shards=1",
                                    "--shards 3 --max-attempts 2")),
            1)
      << read_file(dir + "/orchestrate.log");

  std::string error;
  const auto partial = parse_json_file(dir + "/merged.json", &error);
  ASSERT_TRUE(partial.has_value()) << error;
  EXPECT_TRUE(partial->find("partial")->bool_value);
  const JsonValue* missing = partial->find("missing_shards");
  ASSERT_NE(missing, nullptr);
  ASSERT_EQ(missing->items.size(), 1u);
  EXPECT_EQ(missing->items[0].uint_value, 1u);
  // Missing cells are explicit nulls; cell id == array index survives.
  const JsonValue* cells = partial->find("cells");
  ASSERT_NE(cells, nullptr);
  EXPECT_EQ(cells->items.size(), partial->find("total_cells")->uint_value);
  std::size_t nulls = 0;
  for (const JsonValue& cell : cells->items) nulls += cell.is_null();
  EXPECT_EQ(nulls, cells->items.size() -
                       partial->find("cell_count")->uint_value);
  EXPECT_GT(nulls, 0u);

  const JsonValue report = parse_report(dir);
  EXPECT_FALSE(report.find("orchestrate_complete")->bool_value);
  const JsonValue* failed = report.find("failed_shards");
  ASSERT_NE(failed, nullptr);
  ASSERT_EQ(failed->items.size(), 1u);
  EXPECT_EQ(failed->items[0].uint_value, 1u);
}

TEST(OrchestratorEndToEndTest, LedgerResumeSkipsCompletedShards) {
  // First run: clean, completes, journals every shard.  Second run in the
  // same workdir under crash=1.0: if ANY worker were relaunched it would
  // die — success is only possible because the ledger resume skips all of
  // them.
  const std::string dir = fresh_dir("resume");
  ASSERT_EQ(run(orchestrate_command(dir, "", "--shards 3")), 0)
      << read_file(dir + "/orchestrate.log");
  ASSERT_EQ(run(orchestrate_command(dir, "crash=1.0",
                                    "--shards 3 --max-attempts 1")),
            0)
      << read_file(dir + "/orchestrate.log");
  EXPECT_EQ(read_file(dir + "/merged.json"), read_file(kGoldenPath));
  const JsonValue report = parse_report(dir);
  const JsonValue* outcomes = report.find("shard_outcomes");
  ASSERT_NE(outcomes, nullptr);
  for (const JsonValue& outcome : outcomes->items) {
    EXPECT_TRUE(outcome.find("resumed")->bool_value);
    EXPECT_EQ(outcome.find("launches")->uint_value, 0u);
  }
}

TEST(OrchestratorEndToEndTest, DegradedRunResumesIntoCompleteMerge) {
  // A degraded run (shard 1 exhausted) re-run in the same workdir WITHOUT
  // the fault: only shard 1 is recomputed, and the merge completes to the
  // golden bytes — the repair loop a real cluster outage needs.
  const std::string dir = fresh_dir("repair");
  ASSERT_EQ(run(orchestrate_command(dir, "seed=1:crash=1.0:shards=1",
                                    "--shards 3 --max-attempts 2")),
            1)
      << read_file(dir + "/orchestrate.log");
  ASSERT_EQ(run(orchestrate_command(dir, "", "--shards 3")), 0)
      << read_file(dir + "/orchestrate.log");
  EXPECT_EQ(read_file(dir + "/merged.json"), read_file(kGoldenPath));
  const JsonValue report = parse_report(dir);
  const JsonValue* outcomes = report.find("shard_outcomes");
  ASSERT_NE(outcomes, nullptr);
  EXPECT_TRUE(outcomes->items.at(0).find("resumed")->bool_value);
  EXPECT_FALSE(outcomes->items.at(1).find("resumed")->bool_value);
  EXPECT_TRUE(outcomes->items.at(2).find("resumed")->bool_value);
}

// ---------------------------------------------------------------------------
// Network fault grammar (the fleet half of PEF_FAULT_SPEC).

TEST(FaultSpecTest, NetFaultsParseRoundTripAndFilter) {
  std::string error;
  const auto spec = FaultSpec::parse(
      "seed=5:refuse=0.5:refuse_hosts=a,b:partial=0.25:partial_hosts=a",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_DOUBLE_EQ(spec->refuse.p, 0.5);
  EXPECT_EQ(spec->refuse.hosts, (std::vector<std::string>{"a", "b"}));
  EXPECT_DOUBLE_EQ(spec->partial.p, 0.25);
  EXPECT_FALSE(spec->net_inert());
  // Net-only specs are inert on the WORKER side: pef_sweep parses the
  // shared grammar but never enacts network families.
  EXPECT_TRUE(spec->inert());
  EXPECT_EQ(spec->decide(0, 0), FaultAction::kNone);
  // The host filter wins over any probability.
  for (std::uint32_t attempt = 0; attempt < 16; ++attempt) {
    EXPECT_EQ(spec->decide_net("c", 0, attempt), NetFaultAction::kNone);
  }

  const auto reparsed = FaultSpec::parse(spec->to_string(), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(reparsed->to_string(), spec->to_string());

  EXPECT_FALSE(FaultSpec::parse("refuse=2", &error).has_value());
  EXPECT_FALSE(FaultSpec::parse("drop_hosts=", &error).has_value());
  EXPECT_NE(error.find("drop_hosts"), std::string::npos);
}

TEST(FaultSpecTest, NetDecisionsAreDeterministicPerHostAndAttempt) {
  std::string error;
  const auto spec = FaultSpec::parse("seed=9:drop=0.5", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  bool saw_drop = false;
  bool saw_none = false;
  bool hosts_differ = false;
  for (std::uint32_t attempt = 0; attempt < 32; ++attempt) {
    const NetFaultAction action = spec->decide_net("h1", 2, attempt);
    EXPECT_EQ(action, spec->decide_net("h1", 2, attempt))
        << "not deterministic";
    saw_drop |= action == NetFaultAction::kDrop;
    saw_none |= action == NetFaultAction::kNone;
    hosts_differ |= action != spec->decide_net("h2", 2, attempt);
  }
  // p=0.5 over 32 attempts: both fates occur, and the per-host streams
  // are independent (h2 rolls differently somewhere).
  EXPECT_TRUE(saw_drop);
  EXPECT_TRUE(saw_none);
  EXPECT_TRUE(hosts_differ);
}

TEST(FaultSpecTest, NetFaultPriorityIsFixed) {
  std::string error;
  const auto all = FaultSpec::parse(
      "refuse=1.0:drop=1.0:stall=1.0:partial=1.0", &error);
  ASSERT_TRUE(all.has_value()) << error;
  EXPECT_EQ(all->decide_net("h", 0, 0), NetFaultAction::kRefuse);
  const auto tail = FaultSpec::parse("drop=1.0:stall=1.0", &error);
  ASSERT_TRUE(tail.has_value()) << error;
  EXPECT_EQ(tail->decide_net("h", 0, 0), NetFaultAction::kDrop);
  const auto last = FaultSpec::parse("stall=1.0:partial=1.0", &error);
  ASSERT_TRUE(last.has_value()) << error;
  EXPECT_EQ(last->decide_net("h", 0, 0), NetFaultAction::kStall);
}

// ---------------------------------------------------------------------------
// Jittered retry backoff.

TEST(BackoffJitterTest, DelayStaysInsideBoundsAndIsDeterministic) {
  const double initial = 200;
  const double cap = 5000;
  bool varied = false;
  double first_ratio = -1;
  for (std::uint32_t failures = 1; failures <= 8; ++failures) {
    const double base =
        std::min(initial * std::pow(2.0, failures - 1.0), cap);
    for (std::uint64_t salt = 0; salt < 16; ++salt) {
      const std::uint64_t seed = derive_seed(0x5eed, failures, salt);
      const double delay = backoff_delay_ms(initial, cap, failures, seed);
      EXPECT_GE(delay, 0.8 * base - 1e-9) << failures << "/" << salt;
      EXPECT_LT(delay, 1.2 * base) << failures << "/" << salt;
      EXPECT_EQ(delay, backoff_delay_ms(initial, cap, failures, seed));
      const double ratio = delay / base;
      if (first_ratio < 0) {
        first_ratio = ratio;
      } else {
        varied |= std::abs(ratio - first_ratio) > 1e-12;
      }
    }
  }
  // The jitter actually jitters — different seeds, different multipliers.
  EXPECT_TRUE(varied);
  // The cap applies before the jitter, so even absurd failure counts stay
  // within 1.2x of the ceiling.
  EXPECT_LT(backoff_delay_ms(initial, cap, 40, 7), 1.2 * cap);
}

// ---------------------------------------------------------------------------
// Truncated-ledger resume (crash mid-flush).

TEST(LedgerTest, TruncatedFinalLineIsDroppedOnResume) {
  const std::string dir = fresh_dir("ledger_trunc");
  const std::string path = dir + "/ledger.jsonl";
  const Ledger::Header header{0xabcdu, 4, 1};
  std::string error;
  {
    auto ledger = Ledger::open(path, header, &error);
    ASSERT_TRUE(ledger.has_value()) << error;
    ledger->record_done(0, dir + "/shard0.json");
    ledger->record_failed(1, 1, "worker died on signal 9");
  }
  // Simulate the orchestrator dying mid-flush: a partial record with no
  // trailing newline.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "{\"event\":\"done\",\"sh";
  }
  const auto size_with_stub = std::filesystem::file_size(path);

  std::string warning;
  auto resumed = Ledger::open(path, header, &error, &warning);
  ASSERT_TRUE(resumed.has_value()) << error;
  EXPECT_NE(warning.find("truncated"), std::string::npos) << warning;
  // The intact prefix replayed; the partial record is gone from the file.
  EXPECT_TRUE(resumed->shards().at(0).done);
  EXPECT_EQ(resumed->shards().at(1).failed_attempts, 1u);
  EXPECT_LT(std::filesystem::file_size(path), size_with_stub);

  // ... so later appends start clean: journal more, reopen, no warning.
  resumed->record_done(2, dir + "/shard2.json");
  warning.clear();
  auto again = Ledger::open(path, header, &error, &warning);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_TRUE(warning.empty()) << warning;
  EXPECT_TRUE(again->shards().at(0).done);
  EXPECT_TRUE(again->shards().at(2).done);

  // The leniency is for the crash artifact only.  Malformed lines before
  // a terminated line — including terminated garbage — stay hard errors.
  const std::string bad = dir + "/bad.jsonl";
  {
    auto fresh = Ledger::open(bad, header, &error);
    ASSERT_TRUE(fresh.has_value()) << error;
  }
  {
    std::ofstream out(bad, std::ios::binary | std::ios::app);
    out << "garbage\n";
  }
  EXPECT_FALSE(Ledger::open(bad, header, &error).has_value());
  // ... and a file that is ONLY a partial header is not a ledger.
  std::ofstream(dir + "/stub.jsonl") << "{\"ledger\":";
  EXPECT_FALSE(Ledger::open(dir + "/stub.jsonl", header, &error).has_value());
}

// ---------------------------------------------------------------------------
// Local backend: kill racing an already-exited worker.

TEST(LocalBackendTest, KillRacingAnExitedWorkerDeliversExitExactlyOnce) {
  const std::string dir = fresh_dir("killrace");
  LocalProcessBackend backend(2);
  WorkerLaunch launch;
  launch.argv = {"/bin/true"};
  launch.log_path = dir + "/true.log";
  const auto token = backend.launch(launch);
  ASSERT_TRUE(token.has_value());
  // Let /bin/true exit while unreaped (poll not called yet), then kill it:
  // the SIGKILL races a process that is already a zombie.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  backend.kill(*token);
  // The exit must arrive exactly once, carrying the REAL exit status —
  // the late kill neither clobbers it into a signal death nor duplicates
  // it, and reaping leaves no zombie behind.
  int exits = 0;
  std::optional<WorkerExit> seen;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (auto exit = backend.poll()) {
      ++exits;
      seen = exit;
      continue;  // drain: a duplicate would show up right here
    }
    if (exits > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(exits, 1);
  EXPECT_EQ(seen->token, *token);
  EXPECT_EQ(seen->exit_code, 0);
  EXPECT_EQ(seen->term_signal, 0);
  EXPECT_EQ(backend.running(), 0u);
}

// ---------------------------------------------------------------------------
// Fleet spec.

TEST(FleetSpecTest, ParsesHostsWithDefaults) {
  std::string error;
  const auto fleet = FleetSpec::parse(
      R"({"hosts": [
           {"host": "node1", "slots": 8, "workdir": "/scratch/pef",
            "worker": "/opt/pef/bin/pef_sweep"},
           {"host": "user@10.0.0.7"}
         ]})",
      &error);
  ASSERT_TRUE(fleet.has_value()) << error;
  ASSERT_EQ(fleet->hosts.size(), 2u);
  EXPECT_EQ(fleet->hosts[0].host, "node1");
  EXPECT_EQ(fleet->hosts[0].slots, 8u);
  EXPECT_EQ(fleet->hosts[0].workdir, "/scratch/pef");
  EXPECT_EQ(fleet->hosts[0].worker, "/opt/pef/bin/pef_sweep");
  EXPECT_EQ(fleet->hosts[1].slots, 1u);  // default
  EXPECT_TRUE(fleet->hosts[1].workdir.empty());
  EXPECT_EQ(fleet->total_slots(), 9u);
}

TEST(FleetSpecTest, RejectsMalformedSpecs) {
  std::string error;
  EXPECT_FALSE(FleetSpec::parse("not json", &error).has_value());
  EXPECT_FALSE(FleetSpec::parse(R"({"hosts": []})", &error).has_value());
  EXPECT_FALSE(FleetSpec::parse(R"({"machines": []})", &error).has_value());
  EXPECT_NE(error.find("unknown key"), std::string::npos);
  EXPECT_FALSE(FleetSpec::parse(
                   R"({"hosts": [{"host": "a"}, {"host": "a"}]})", &error)
                   .has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
  EXPECT_FALSE(
      FleetSpec::parse(R"({"hosts": [{"host": "a", "slots": 0}]})", &error)
          .has_value());
  EXPECT_FALSE(
      FleetSpec::parse(R"({"hosts": [{"slots": 2}]})", &error).has_value());
  EXPECT_FALSE(FleetSpec::parse(
                   R"({"hosts": [{"host": "a", "cores": 4}]})", &error)
                   .has_value());
  EXPECT_FALSE(FleetSpec::load("/nonexistent/fleet.json", &error).has_value());
}

// ---------------------------------------------------------------------------
// Mock transport.

TEST(MockTransportTest, HostDeathKillsInFlightAndRefusesNewWork) {
  const std::string dir = fresh_dir("mock_transport");
  MockTransport transport;
  transport.add_host("node");
  std::string error;
  EXPECT_TRUE(transport.probe("node", &error)) << error;

  TransportCommand command;
  command.host = "node";
  command.argv = {"/bin/sh", "-c", "sleep 30"};
  command.log_path = dir + "/cmd.log";
  const auto token = transport.start(command);
  ASSERT_TRUE(token.has_value());

  // The host dies: the in-flight command is killed (its exit arrives as a
  // signal death, like a real node loss), and new work is refused.
  transport.set_alive("node", false);
  std::optional<ChildExit> exit;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!exit && std::chrono::steady_clock::now() < deadline) {
    exit = transport.poll();
    if (!exit) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(exit.has_value()) << "killed command never exited";
  EXPECT_EQ(exit->token, *token);
  EXPECT_NE(exit->term_signal, 0);
  EXPECT_FALSE(transport.probe("node", &error));
  EXPECT_FALSE(transport.start(command).has_value());
  EXPECT_FALSE(transport.probe("ghost", &error));  // unregistered host
}

// ---------------------------------------------------------------------------
// Fleet end-to-end: SshBackend + MockTransport driving real pef_sweep
// workers through the supervision loop, in-process.

std::string canonical_spec_json() {
  std::string error;
  const auto spec = parse_sweep_spec(read_file(kSpecPath), &error);
  EXPECT_TRUE(spec.has_value()) << error;
  return spec ? spec->to_json() : "";
}

FleetSpec make_fleet(
    const std::vector<std::pair<std::string, std::uint32_t>>& hosts) {
  FleetSpec fleet;
  for (const auto& [name, slots] : hosts) {
    FleetHost host;
    host.host = name;
    host.slots = slots;
    fleet.hosts.push_back(std::move(host));
  }
  return fleet;
}

OrchestratorOptions fleet_run_options(const std::string& dir,
                                      std::uint32_t shards,
                                      std::uint32_t max_attempts = 3) {
  OrchestratorOptions options;
  options.worker_binary = std::string(PEF_BIN_DIR) + "/pef_sweep";
  options.spec_path = kSpecPath;
  options.spec_json = canonical_spec_json();
  options.shards = shards;
  options.max_attempts = max_attempts;
  options.backoff_initial_ms = 5;
  options.backoff_cap_ms = 20;
  options.timeout_seconds = 60;
  options.workdir = dir + "/work";
  options.backend_name = "mock";
  return options;
}

SshBackendOptions fleet_backend_options(const std::string& dir,
                                        const std::string& fault_spec = "") {
  SshBackendOptions options;
  options.default_workdir_root = dir + "/mockfs";
  if (!fault_spec.empty()) {
    std::string error;
    const auto faults = FaultSpec::parse(fault_spec, &error);
    EXPECT_TRUE(faults.has_value()) << error;
    if (faults) options.faults = *faults;
  }
  return options;
}

HostHealth health_of(const SshBackend& backend, const std::string& host) {
  for (const HostHealth& health : backend.health()) {
    if (health.host == host) return health;
  }
  ADD_FAILURE() << "no such host: " << host;
  return {};
}

TEST(FleetEndToEndTest, CleanMockFleetRunMatchesGolden) {
  const std::string dir = fresh_dir("fleet_clean");
  MockTransport transport;
  transport.add_host("alpha");
  transport.add_host("beta");
  SshBackend backend(transport, make_fleet({{"alpha", 2}, {"beta", 2}}),
                     fleet_backend_options(dir), nullptr);
  const auto result =
      orchestrate(backend, fleet_run_options(dir, 4), nullptr);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.merged_json + "\n", read_file(kGoldenPath));
  // The load spread: both hosts worked, nobody got quarantined, and every
  // attempt is attributed to a host in the report.
  EXPECT_GT(health_of(backend, "alpha").launches, 0u);
  EXPECT_GT(health_of(backend, "beta").launches, 0u);
  for (const HostHealth& health : backend.health()) {
    EXPECT_FALSE(health.quarantined) << health.host;
    EXPECT_EQ(health.probe, "ok") << health.host;
  }
  for (const ShardOutcome& outcome : result.outcomes) {
    ASSERT_EQ(outcome.attempts.size(), 1u);
    EXPECT_FALSE(outcome.attempts[0].host.empty());
    EXPECT_EQ(outcome.attempts[0].outcome, "ok");
    EXPECT_GE(outcome.wall_ms, outcome.attempts[0].wall_ms);
  }
  EXPECT_NE(result.report_json.find("\"fleet_hosts\""), std::string::npos);
}

TEST(FleetEndToEndTest, DeadHostIsQuarantinedByProbeBeforeUse) {
  const std::string dir = fresh_dir("fleet_probe");
  MockTransport transport;
  transport.add_host("dead", /*alive=*/false);
  transport.add_host("live");
  SshBackend backend(transport, make_fleet({{"dead", 4}, {"live", 2}}),
                     fleet_backend_options(dir), nullptr);
  const auto result =
      orchestrate(backend, fleet_run_options(dir, 2), nullptr);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.merged_json + "\n", read_file(kGoldenPath));
  const HostHealth dead = health_of(backend, "dead");
  EXPECT_EQ(dead.probe, "failed");
  EXPECT_TRUE(dead.quarantined);
  EXPECT_EQ(dead.launches, 0u);  // a dead host never receives work
  EXPECT_EQ(health_of(backend, "live").launches, 2u);
}

TEST(FleetEndToEndTest, RefusedLaunchesAreRetriedElsewhere) {
  const std::string dir = fresh_dir("fleet_refuse");
  MockTransport transport;
  transport.add_host("alpha");
  transport.add_host("bravo");
  SshBackendOptions backend_options =
      fleet_backend_options(dir, "refuse=1.0:refuse_hosts=bravo");
  backend_options.blacklist_after = 2;
  SshBackend backend(transport, make_fleet({{"alpha", 1}, {"bravo", 1}}),
                     backend_options, nullptr);
  const auto result =
      orchestrate(backend, fleet_run_options(dir, 2, /*max_attempts=*/6),
                  nullptr);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.merged_json + "\n", read_file(kGoldenPath));
  // bravo refused every connection: charged but never launched, and all
  // the real work landed on alpha.
  const HostHealth bravo = health_of(backend, "bravo");
  EXPECT_EQ(bravo.launches, 0u);
  EXPECT_GE(bravo.failures, 1u);
  for (const ShardOutcome& outcome : result.outcomes) {
    for (const ShardAttempt& attempt : outcome.attempts) {
      if (attempt.outcome == "ok") EXPECT_EQ(attempt.host, "alpha");
    }
  }
}

TEST(FleetEndToEndTest, MidRunHostDeathReschedulesOntoSurvivors) {
  const std::string dir = fresh_dir("fleet_drop");
  MockTransport transport;
  transport.add_host("alpha");
  transport.add_host("beta");
  SshBackendOptions backend_options =
      fleet_backend_options(dir, "drop=1.0:drop_hosts=beta");
  backend_options.blacklist_after = 2;
  SshBackend backend(transport, make_fleet({{"alpha", 2}, {"beta", 2}}),
                     backend_options, nullptr);
  const auto result =
      orchestrate(backend, fleet_run_options(dir, 4, /*max_attempts=*/6),
                  nullptr);
  // Every worker on beta dies mid-run (link drop -> signal death); the
  // supervisor reschedules them and still converges to the golden bytes.
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.merged_json + "\n", read_file(kGoldenPath));
  const HostHealth beta = health_of(backend, "beta");
  EXPECT_GE(beta.launches, 2u);
  EXPECT_GE(beta.failures, 2u);
  EXPECT_TRUE(beta.quarantined);
  EXPECT_EQ(health_of(backend, "alpha").failures, 0u);
  // Every attempt on beta failed (a dropped link is a transport failure
  // even when the remote worker happened to finish first), and the report
  // attributes each one to beta.
  std::uint32_t beta_attempts = 0;
  for (const ShardOutcome& outcome : result.outcomes) {
    for (const ShardAttempt& attempt : outcome.attempts) {
      if (attempt.host != "beta") continue;
      ++beta_attempts;
      EXPECT_NE(attempt.outcome, "ok");
    }
  }
  EXPECT_GE(beta_attempts, 2u);
}

TEST(FleetEndToEndTest, BlacklistFiresAtExactThreshold) {
  const std::string dir = fresh_dir("fleet_blacklist");
  MockTransport transport;
  transport.add_host("omega");
  SshBackendOptions backend_options =
      fleet_backend_options(dir, "refuse=1.0");
  backend_options.blacklist_after = 3;
  SshBackend backend(transport, make_fleet({{"omega", 1}}), backend_options,
                     nullptr);
  const auto result =
      orchestrate(backend, fleet_run_options(dir, 1, /*max_attempts=*/8),
                  nullptr);
  // Exactly blacklist_after consecutive refusals, then quarantine; with no
  // host left the run degrades instead of spinning.
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.failed_shards, (std::vector<std::uint32_t>{0}));
  const HostHealth omega = health_of(backend, "omega");
  EXPECT_EQ(omega.launches, 0u);
  EXPECT_EQ(omega.failures, 3u);
  EXPECT_EQ(omega.consecutive_failures, 3u);
  EXPECT_TRUE(omega.quarantined);
  EXPECT_NE(omega.quarantine_reason.find("3 consecutive"),
            std::string::npos);
  EXPECT_EQ(backend.capacity(), 0u);
}

TEST(FleetEndToEndTest, PartialFetchIsDetectedAsCorruptOutput) {
  const std::string dir = fresh_dir("fleet_partial");
  MockTransport transport;
  transport.add_host("flaky");
  transport.add_host("solid");
  SshBackendOptions backend_options =
      fleet_backend_options(dir, "partial=1.0:partial_hosts=flaky");
  backend_options.blacklist_after = 2;
  SshBackend backend(transport, make_fleet({{"flaky", 1}, {"solid", 1}}),
                     backend_options, nullptr);
  const auto result =
      orchestrate(backend, fleet_run_options(dir, 2, /*max_attempts=*/6),
                  nullptr);
  // A truncated transfer delivers half the shard file: the supervisor's
  // envelope validation flags it like any corrupt output, the retry lands
  // elsewhere, and the merge still reproduces the golden bytes.
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.merged_json + "\n", read_file(kGoldenPath));
  EXPECT_GE(health_of(backend, "flaky").failures, 1u);
  bool flagged_as_corrupt = false;
  for (const ShardOutcome& outcome : result.outcomes) {
    for (const ShardAttempt& attempt : outcome.attempts) {
      flagged_as_corrupt |=
          attempt.host == "flaky" &&
          attempt.outcome.find("output") != std::string::npos;
    }
  }
  EXPECT_TRUE(flagged_as_corrupt);
}

TEST(FleetEndToEndTest, StalledTransferLooksLikeMissingOutput) {
  const std::string dir = fresh_dir("fleet_stall");
  MockTransport transport;
  transport.add_host("lossy");
  transport.add_host("ok");
  SshBackendOptions backend_options =
      fleet_backend_options(dir, "stall=1.0:stall_hosts=lossy");
  backend_options.blacklist_after = 2;
  SshBackend backend(transport, make_fleet({{"lossy", 1}, {"ok", 1}}),
                     backend_options, nullptr);
  const auto result =
      orchestrate(backend, fleet_run_options(dir, 2, /*max_attempts=*/6),
                  nullptr);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.merged_json + "\n", read_file(kGoldenPath));
  bool flagged_as_missing = false;
  for (const ShardOutcome& outcome : result.outcomes) {
    for (const ShardAttempt& attempt : outcome.attempts) {
      flagged_as_missing |=
          attempt.host == "lossy" &&
          attempt.outcome.find("no output") != std::string::npos;
    }
  }
  EXPECT_TRUE(flagged_as_missing);
}

TEST(OrchestratorEndToEndTest, MockFleetCliRunMatchesGolden) {
  const std::string dir = fresh_dir("fleet_cli");
  std::ofstream(dir + "/fleet.json")
      << R"({"hosts": [{"host": "alpha", "slots": 2},)"
      << R"( {"host": "beta", "slots": 2}]})";
  ASSERT_EQ(run(orchestrate_command(
                dir, "",
                "--shards 4 --backend mock --fleet " + dir + "/fleet.json")),
            0)
      << read_file(dir + "/orchestrate.log");
  EXPECT_EQ(read_file(dir + "/merged.json"), read_file(kGoldenPath));
  const JsonValue report = parse_report(dir);
  EXPECT_EQ(report.find("backend")->string_value, "mock");
  const JsonValue* hosts = report.find("fleet_hosts");
  ASSERT_NE(hosts, nullptr);
  ASSERT_EQ(hosts->items.size(), 2u);
  EXPECT_EQ(hosts->items[0].find("host")->string_value, "alpha");
}

TEST(OrchestratorEndToEndTest, HungWorkerIsKilledByTimeout) {
  // Shard 0 hangs forever on every attempt; the supervision timeout must
  // kill it (twice), then degrade gracefully.
  const std::string dir = fresh_dir("hang");
  ASSERT_EQ(run(orchestrate_command(dir, "hang=1.0:shards=0",
                                    "--shards 2 --max-attempts 2 "
                                    "--timeout 1")),
            1)
      << read_file(dir + "/orchestrate.log");
  const JsonValue report = parse_report(dir);
  const JsonValue* outcomes = report.find("shard_outcomes");
  ASSERT_NE(outcomes, nullptr);
  EXPECT_EQ(outcomes->items.at(0).find("timeouts")->uint_value, 2u);
  const JsonValue* failed = report.find("failed_shards");
  ASSERT_NE(failed, nullptr);
  ASSERT_EQ(failed->items.size(), 1u);
  EXPECT_EQ(failed->items[0].uint_value, 0u);
}

}  // namespace
}  // namespace pef
