// End-to-end tests for the fault-tolerant sweep orchestrator: the real
// pef_orchestrate binary driving real pef_sweep workers (PEF_BIN_DIR) under
// deterministic PEF_FAULT_SPEC chaos, plus unit tests for the pieces
// (fault spec grammar, NMR voter, resume ledger).  The invariant under
// test everywhere: whatever the injected faults, a converged orchestration
// is byte-identical to the unsharded golden baseline.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "orchestrator/fault.hpp"
#include "orchestrator/ledger.hpp"
#include "orchestrator/voter.hpp"

namespace pef {
namespace {

const std::string kSpecPath =
    std::string(PEF_SPEC_DIR) + "/sweep_small.json";
const std::string kGoldenPath =
    std::string(PEF_BASELINE_DIR) + "/sweep_small.json";
const std::string kOrchestrate = std::string(PEF_BIN_DIR) + "/pef_orchestrate";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A fresh per-test scratch directory (workdir, outputs, logs).
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "pef_orch_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Run a shell command; returns its exit code (-1 on launch failure).
int run(const std::string& command) {
  const int status = std::system(command.c_str());
  if (status < 0) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// The standard orchestrate invocation with test-friendly supervision
/// parameters (fast backoff, generous-but-finite timeout).
std::string orchestrate_command(const std::string& dir,
                                const std::string& fault_spec,
                                const std::string& extra_flags) {
  std::string command;
  if (!fault_spec.empty()) {
    command += "PEF_FAULT_SPEC='" + fault_spec + "' ";
  }
  command += kOrchestrate + " --spec " + kSpecPath + " --workdir " + dir +
             "/work --out " + dir + "/merged.json --report " + dir +
             "/report.json --backoff-ms 10 --backoff-cap-ms 50 " +
             extra_flags + " > " + dir + "/orchestrate.log 2>&1";
  return command;
}

JsonValue parse_report(const std::string& dir) {
  std::string error;
  const auto report = parse_json_file(dir + "/report.json", &error);
  EXPECT_TRUE(report.has_value()) << error;
  return report.value_or(JsonValue{});
}

// ---------------------------------------------------------------------------
// Fault spec grammar.

TEST(FaultSpecTest, ParsesAndRoundTrips) {
  std::string error;
  const auto spec = FaultSpec::parse(
      "seed=7:crash=0.4:corrupt=0.2:flip=0.1:hang=0.05:shards=1,3", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_DOUBLE_EQ(spec->crash, 0.4);
  EXPECT_DOUBLE_EQ(spec->corrupt, 0.2);
  EXPECT_DOUBLE_EQ(spec->flip, 0.1);
  EXPECT_DOUBLE_EQ(spec->hang, 0.05);
  EXPECT_EQ(spec->shards, (std::vector<std::uint32_t>{1, 3}));

  const auto reparsed = FaultSpec::parse(spec->to_string(), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(reparsed->to_string(), spec->to_string());

  // Empty spec is inert.
  const auto inert = FaultSpec::parse("", &error);
  ASSERT_TRUE(inert.has_value()) << error;
  EXPECT_TRUE(inert->inert());
  EXPECT_EQ(inert->decide(0, 0), FaultAction::kNone);
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  std::string error;
  EXPECT_FALSE(FaultSpec::parse("crash=2", &error).has_value());
  EXPECT_NE(error.find("crash"), std::string::npos);
  EXPECT_FALSE(FaultSpec::parse("boom=0.5", &error).has_value());
  EXPECT_NE(error.find("unknown key"), std::string::npos);
  EXPECT_FALSE(FaultSpec::parse("crash", &error).has_value());
  EXPECT_FALSE(
      FaultSpec::parse("crash=0.6:corrupt=0.6", &error).has_value());
  EXPECT_NE(error.find("exceed 1"), std::string::npos);
  EXPECT_FALSE(FaultSpec::parse("shards=x", &error).has_value());
}

TEST(FaultSpecTest, DecisionsAreDeterministicPerAttempt) {
  std::string error;
  const auto spec = FaultSpec::parse("seed=11:crash=0.5", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  bool saw_crash = false;
  bool saw_none = false;
  for (std::uint32_t attempt = 0; attempt < 32; ++attempt) {
    const FaultAction action = spec->decide(3, attempt);
    EXPECT_EQ(action, spec->decide(3, attempt)) << "not deterministic";
    saw_crash |= action == FaultAction::kCrash;
    saw_none |= action == FaultAction::kNone;
  }
  // p=0.5 over 32 attempts: both fates occur (deterministically).
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_none);

  // The shard filter wins over any probability.
  const auto filtered = FaultSpec::parse("crash=1.0:shards=2", &error);
  ASSERT_TRUE(filtered.has_value()) << error;
  EXPECT_EQ(filtered->decide(1, 0), FaultAction::kNone);
  EXPECT_EQ(filtered->decide(2, 0), FaultAction::kCrash);
}

// ---------------------------------------------------------------------------
// NMR voter.

ReplicaBallot ballot(std::uint32_t replica, bool valid,
                     const std::string& content) {
  ReplicaBallot b;
  b.replica = replica;
  b.valid = valid;
  b.content = content;
  return b;
}

TEST(VoterTest, MajorityWinsAndDivergentsAreFlagged) {
  const auto vote = vote_on_replicas(
      {ballot(0, true, "good"), ballot(1, true, "BAD"),
       ballot(2, true, "good")});
  EXPECT_TRUE(vote.accepted);
  EXPECT_EQ(vote.winner, "good");
  EXPECT_EQ(vote.winner_votes, 2u);
  EXPECT_EQ(vote.divergent_replicas, (std::vector<std::uint32_t>{1}));
}

TEST(VoterTest, InvalidReplicasGetNoVote) {
  // 1 valid of 3 is not a majority of the slots: two workers already
  // failed, so the lone survivor is not trusted.
  const auto lone = vote_on_replicas(
      {ballot(0, false, ""), ballot(1, true, "good"), ballot(2, false, "")});
  EXPECT_FALSE(lone.accepted);
  EXPECT_EQ(lone.invalid_replicas, (std::vector<std::uint32_t>{0, 2}));

  // 2 valid + agreeing of 3 is a majority even with one invalid.
  const auto pair = vote_on_replicas(
      {ballot(0, true, "good"), ballot(1, false, ""),
       ballot(2, true, "good")});
  EXPECT_TRUE(pair.accepted);
  EXPECT_EQ(pair.winner, "good");
}

TEST(VoterTest, NoMajorityMeansNoWinner) {
  const auto split = vote_on_replicas(
      {ballot(0, true, "a"), ballot(1, true, "b"), ballot(2, true, "c")});
  EXPECT_FALSE(split.accepted);
  EXPECT_EQ(split.winner_votes, 1u);

  // Degenerate single-replica "vote" (replication off) accepts.
  const auto solo = vote_on_replicas({ballot(0, true, "only")});
  EXPECT_TRUE(solo.accepted);
  EXPECT_EQ(solo.winner, "only");
}

// ---------------------------------------------------------------------------
// Resume ledger.

TEST(LedgerTest, JournalsAndReplays) {
  const std::string dir = fresh_dir("ledger");
  const std::string path = dir + "/ledger.jsonl";
  const Ledger::Header header{0x1234u, 4, 3};

  std::string error;
  auto ledger = Ledger::open(path, header, &error);
  ASSERT_TRUE(ledger.has_value()) << error;
  EXPECT_TRUE(ledger->shards().empty());
  ledger->record_failed(2, 1, "worker died on signal 9");
  ledger->record_done(2, dir + "/shard2.json");
  ledger->record_done(0, dir + "/shard0.json");

  auto replayed = Ledger::open(path, header, &error);
  ASSERT_TRUE(replayed.has_value()) << error;
  ASSERT_EQ(replayed->shards().size(), 2u);
  EXPECT_TRUE(replayed->shards().at(2).done);
  EXPECT_EQ(replayed->shards().at(2).output_file, dir + "/shard2.json");
  EXPECT_EQ(replayed->shards().at(2).failed_attempts, 1u);
  EXPECT_TRUE(replayed->shards().at(0).done);

  // A ledger of a different run (spec hash / geometry) is refused.
  EXPECT_FALSE(
      Ledger::open(path, {0x9999u, 4, 3}, &error).has_value());
  EXPECT_NE(error.find("different run"), std::string::npos) << error;
  EXPECT_FALSE(Ledger::open(path, {0x1234u, 5, 3}, &error).has_value());

  // Garbage is not a ledger.
  std::ofstream(dir + "/junk.jsonl") << "{\"what\": 1}\n";
  EXPECT_FALSE(
      Ledger::open(dir + "/junk.jsonl", header, &error).has_value());
}

// ---------------------------------------------------------------------------
// End-to-end chaos: the real binaries under injected faults.

TEST(OrchestratorEndToEndTest, CleanRunMatchesGoldenBaseline) {
  const std::string dir = fresh_dir("clean");
  ASSERT_EQ(run(orchestrate_command(dir, "", "--shards 4")), 0)
      << read_file(dir + "/orchestrate.log");
  EXPECT_EQ(read_file(dir + "/merged.json"), read_file(kGoldenPath));
  const JsonValue report = parse_report(dir);
  EXPECT_TRUE(report.find("orchestrate_complete")->bool_value);
}

TEST(OrchestratorEndToEndTest, CrashedAndCorruptedShardsAreRetried) {
  // Crashes (exit before write) and truncated outputs (exit 0, garbage
  // file) on ~half the attempts: the supervisor must detect both — exit
  // codes alone miss the corruption — and retry to the golden bytes.
  //
  // The fault stream is a pure function of the seed, so search for one
  // that provably (a) bites on some shard's first attempt and (b) leaves
  // every shard a clean attempt inside the budget.  The search is
  // deterministic: every run picks the same seed.
  constexpr std::uint32_t kMaxAttempts = 6;
  std::string fault_text;
  for (std::uint64_t candidate = 1; candidate < 200; ++candidate) {
    const std::string text =
        "seed=" + std::to_string(candidate) + ":crash=0.4:corrupt=0.2";
    std::string error;
    const auto fault = FaultSpec::parse(text, &error);
    ASSERT_TRUE(fault.has_value()) << error;
    bool bites = false;
    bool converges = true;
    for (std::uint32_t shard = 0; shard < 4; ++shard) {
      bites |= fault->decide(shard, 0) != FaultAction::kNone;
      bool clean = false;
      for (std::uint32_t attempt = 0; attempt < kMaxAttempts; ++attempt) {
        clean |= fault->decide(shard, attempt) == FaultAction::kNone;
      }
      converges &= clean;
    }
    if (bites && converges) {
      fault_text = text;
      break;
    }
  }
  ASSERT_FALSE(fault_text.empty()) << "no workable fault seed under 200";

  const std::string dir = fresh_dir("chaos");
  ASSERT_EQ(run(orchestrate_command(dir, fault_text,
                                    "--shards 4 --max-attempts " +
                                        std::to_string(kMaxAttempts))),
            0)
      << read_file(dir + "/orchestrate.log");
  EXPECT_EQ(read_file(dir + "/merged.json"), read_file(kGoldenPath));
}

TEST(OrchestratorEndToEndTest, SilentlyCorruptedReplicaIsOutvoted) {
  // Find a seed where, on first attempts (attempt = replica *
  // max_attempts), exactly one of shard 0's three replicas silently
  // corrupts its output — the corruption validation cannot see.
  constexpr std::uint32_t kMaxAttempts = 3;
  std::uint64_t seed = 0;
  std::string fault_text;
  for (std::uint64_t candidate = 1; candidate < 200; ++candidate) {
    fault_text = "seed=" + std::to_string(candidate) + ":flip=0.34:shards=0";
    std::string error;
    const auto fault = FaultSpec::parse(fault_text, &error);
    ASSERT_TRUE(fault.has_value()) << error;
    std::uint32_t flips = 0;
    for (std::uint32_t replica = 0; replica < 3; ++replica) {
      if (fault->decide(0, replica * kMaxAttempts) ==
          FaultAction::kSilentCorrupt) {
        ++flips;
      }
    }
    if (flips == 1) {
      seed = candidate;
      break;
    }
  }
  ASSERT_NE(seed, 0u) << "no candidate seed flips exactly one replica";

  const std::string dir = fresh_dir("vote");
  ASSERT_EQ(run(orchestrate_command(
                dir, fault_text,
                "--shards 2 --replicate 3 --max-attempts " +
                    std::to_string(kMaxAttempts))),
            0)
      << read_file(dir + "/orchestrate.log");
  // The 2/3 majority outvoted the flipped replica: golden bytes anyway.
  EXPECT_EQ(read_file(dir + "/merged.json"), read_file(kGoldenPath));

  // ... and the report names the divergent replica on shard 0.
  const JsonValue report = parse_report(dir);
  const JsonValue* outcomes = report.find("shard_outcomes");
  ASSERT_NE(outcomes, nullptr);
  const JsonValue* divergent = outcomes->items.at(0).find("divergent_replicas");
  ASSERT_NE(divergent, nullptr);
  EXPECT_EQ(divergent->items.size(), 1u)
      << read_file(dir + "/orchestrate.log");
}

TEST(OrchestratorEndToEndTest, ExhaustedRetriesDegradeToPartialMerge) {
  // Shard 1 always crashes; the budget runs out.  Instead of nothing: a
  // partial merge (missing cells explicitly null) plus a machine-readable
  // failure report, and exit code 1.
  const std::string dir = fresh_dir("degraded");
  ASSERT_EQ(run(orchestrate_command(dir, "seed=1:crash=1.0:shards=1",
                                    "--shards 3 --max-attempts 2")),
            1)
      << read_file(dir + "/orchestrate.log");

  std::string error;
  const auto partial = parse_json_file(dir + "/merged.json", &error);
  ASSERT_TRUE(partial.has_value()) << error;
  EXPECT_TRUE(partial->find("partial")->bool_value);
  const JsonValue* missing = partial->find("missing_shards");
  ASSERT_NE(missing, nullptr);
  ASSERT_EQ(missing->items.size(), 1u);
  EXPECT_EQ(missing->items[0].uint_value, 1u);
  // Missing cells are explicit nulls; cell id == array index survives.
  const JsonValue* cells = partial->find("cells");
  ASSERT_NE(cells, nullptr);
  EXPECT_EQ(cells->items.size(), partial->find("total_cells")->uint_value);
  std::size_t nulls = 0;
  for (const JsonValue& cell : cells->items) nulls += cell.is_null();
  EXPECT_EQ(nulls, cells->items.size() -
                       partial->find("cell_count")->uint_value);
  EXPECT_GT(nulls, 0u);

  const JsonValue report = parse_report(dir);
  EXPECT_FALSE(report.find("orchestrate_complete")->bool_value);
  const JsonValue* failed = report.find("failed_shards");
  ASSERT_NE(failed, nullptr);
  ASSERT_EQ(failed->items.size(), 1u);
  EXPECT_EQ(failed->items[0].uint_value, 1u);
}

TEST(OrchestratorEndToEndTest, LedgerResumeSkipsCompletedShards) {
  // First run: clean, completes, journals every shard.  Second run in the
  // same workdir under crash=1.0: if ANY worker were relaunched it would
  // die — success is only possible because the ledger resume skips all of
  // them.
  const std::string dir = fresh_dir("resume");
  ASSERT_EQ(run(orchestrate_command(dir, "", "--shards 3")), 0)
      << read_file(dir + "/orchestrate.log");
  ASSERT_EQ(run(orchestrate_command(dir, "crash=1.0",
                                    "--shards 3 --max-attempts 1")),
            0)
      << read_file(dir + "/orchestrate.log");
  EXPECT_EQ(read_file(dir + "/merged.json"), read_file(kGoldenPath));
  const JsonValue report = parse_report(dir);
  const JsonValue* outcomes = report.find("shard_outcomes");
  ASSERT_NE(outcomes, nullptr);
  for (const JsonValue& outcome : outcomes->items) {
    EXPECT_TRUE(outcome.find("resumed")->bool_value);
    EXPECT_EQ(outcome.find("launches")->uint_value, 0u);
  }
}

TEST(OrchestratorEndToEndTest, DegradedRunResumesIntoCompleteMerge) {
  // A degraded run (shard 1 exhausted) re-run in the same workdir WITHOUT
  // the fault: only shard 1 is recomputed, and the merge completes to the
  // golden bytes — the repair loop a real cluster outage needs.
  const std::string dir = fresh_dir("repair");
  ASSERT_EQ(run(orchestrate_command(dir, "seed=1:crash=1.0:shards=1",
                                    "--shards 3 --max-attempts 2")),
            1)
      << read_file(dir + "/orchestrate.log");
  ASSERT_EQ(run(orchestrate_command(dir, "", "--shards 3")), 0)
      << read_file(dir + "/orchestrate.log");
  EXPECT_EQ(read_file(dir + "/merged.json"), read_file(kGoldenPath));
  const JsonValue report = parse_report(dir);
  const JsonValue* outcomes = report.find("shard_outcomes");
  ASSERT_NE(outcomes, nullptr);
  EXPECT_TRUE(outcomes->items.at(0).find("resumed")->bool_value);
  EXPECT_FALSE(outcomes->items.at(1).find("resumed")->bool_value);
  EXPECT_TRUE(outcomes->items.at(2).find("resumed")->bool_value);
}

TEST(OrchestratorEndToEndTest, HungWorkerIsKilledByTimeout) {
  // Shard 0 hangs forever on every attempt; the supervision timeout must
  // kill it (twice), then degrade gracefully.
  const std::string dir = fresh_dir("hang");
  ASSERT_EQ(run(orchestrate_command(dir, "hang=1.0:shards=0",
                                    "--shards 2 --max-attempts 2 "
                                    "--timeout 1")),
            1)
      << read_file(dir + "/orchestrate.log");
  const JsonValue report = parse_report(dir);
  const JsonValue* outcomes = report.find("shard_outcomes");
  ASSERT_NE(outcomes, nullptr);
  EXPECT_EQ(outcomes->items.at(0).find("timeouts")->uint_value, 2u);
  const JsonValue* failed = report.find("failed_shards");
  ASSERT_NE(failed, nullptr);
  ASSERT_EQ(failed->items.size(), 1u);
  EXPECT_EQ(failed->items[0].uint_value, 0u);
}

}  // namespace
}  // namespace pef
