// Tests for connected-over-time chains (the paper's closing remark: all
// results carry over to chains, since a chain is a ring with one edge that
// never appears).
#include "dynamic_graph/chain.hpp"

#include <gtest/gtest.h>

#include "adversary/adversary.hpp"
#include "adversary/proof_adversary.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "dynamic_graph/properties.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

TEST(ChainTest, CutEdgeNeverPresent) {
  auto chain = ChainSchedule::cut_last(
      std::make_shared<BernoulliSchedule>(Ring(6), 0.8, 3));
  EXPECT_EQ(chain->cut_edge(), 5u);
  EXPECT_EQ(chain->left_end(), 0u);
  EXPECT_EQ(chain->right_end(), 5u);
  for (Time t = 0; t < 500; ++t) {
    EXPECT_FALSE(chain->edges_at(t).contains(5));
  }
}

TEST(ChainTest, ChainOfStaticBaseIsLegal) {
  auto chain =
      ChainSchedule::cut_last(std::make_shared<StaticSchedule>(Ring(8)));
  const auto audit = audit_connectivity(*chain, 400, 100);
  EXPECT_TRUE(audit.connected_over_time);
  ASSERT_EQ(audit.suspected_missing.size(), 1u);
  EXPECT_EQ(audit.suspected_missing[0], 7u);
}

TEST(ChainTest, Pef3PlusExploresChains) {
  // Theorem 3.1 on chains: k = 3 robots explore any connected-over-time
  // chain of n > 3 nodes.  The cut edge plays the eventual-missing-edge
  // role, so sentinels form at the chain's two endpoints.
  for (std::uint32_t n : {4u, 6u, 10u}) {
    auto chain = ChainSchedule::cut_last(
        std::make_shared<StaticSchedule>(Ring(n)));
    Simulator sim(Ring(n), make_algorithm("pef3+"), make_oblivious(chain),
                  spread_placements(Ring(n), 3));
    sim.run(600 * n);
    EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(n)) << "n=" << n;
  }
}

TEST(ChainTest, Pef3PlusExploresFlickeringChains) {
  // The chain's surviving edges may still flicker arbitrarily.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const std::uint32_t n = 7;
    auto chain = ChainSchedule::cut_last(
        std::make_shared<BernoulliSchedule>(Ring(n), 0.5, seed));
    Simulator sim(Ring(n), make_algorithm("pef3+"), make_oblivious(chain),
                  spread_placements(Ring(n), 3));
    sim.run(800 * n);
    EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(n))
        << "seed=" << seed;
  }
}

TEST(ChainTest, TwoRobotsFailOnChainsOfFourOrMore) {
  // Theorem 4.1 on chains: the staged adversary works unchanged (it never
  // needed the cut edge anyway when the window avoids it).
  const std::uint32_t n = 6;
  const Ring ring(n);
  for (const std::string& name : deterministic_algorithm_names()) {
    // Window {1, 2, 3} away from the cut edge (4, 5)-(0).
    Simulator sim(ring, make_algorithm(name),
                  std::make_unique<StagedProofAdversary>(ring, 1, 3, 64),
                  {{1, Chirality(true)}, {2, Chirality(true)}});
    sim.run(3000);
    EXPECT_FALSE(analyze_coverage(sim.trace()).perpetual(n)) << name;
  }
}

TEST(ChainTest, TwoNodeChainIsTheRingOfSizeTwoSpecialCase) {
  // The paper's "simple graph" reading of the 2-ring: one bidirectional
  // edge.  PEF_1 works on it (Theorem 5.2 covers both readings).
  auto chain =
      ChainSchedule::cut_last(std::make_shared<StaticSchedule>(Ring(2)));
  Simulator sim(Ring(2), make_algorithm("pef1"), make_oblivious(chain),
                {{0, Chirality(true)}});
  sim.run(100);
  EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(2));
}

}  // namespace
}  // namespace pef
