// Tests for the experiment harness and the one-call explore() API.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "algorithms/registry.hpp"
#include "core/explore.hpp"

namespace pef {
namespace {

TEST(ExperimentTest, RunFillsAllFields) {
  ExperimentConfig config;
  config.nodes = 6;
  config.robots = 3;
  config.algorithm = make_algorithm("pef3+");
  config.adversary = adversary_config(AdversaryKind::kStatic);
  config.horizon = 300;
  config.seed = 5;
  const RunResult result = run_experiment(config);
  EXPECT_EQ(result.algorithm_name, "pef3+");
  EXPECT_EQ(result.adversary_name, "static");
  EXPECT_EQ(result.nodes, 6u);
  EXPECT_EQ(result.robots, 3u);
  EXPECT_EQ(result.horizon, 300u);
  EXPECT_TRUE(result.perpetual);
  EXPECT_TRUE(result.adversary_legal);
  EXPECT_EQ(result.coverage.visited_node_count, 6u);
}

TEST(ExperimentTest, SameSeedSameResult) {
  ExperimentConfig config;
  config.nodes = 7;
  config.robots = 3;
  config.algorithm = make_algorithm("pef3+");
  config.adversary = adversary_config(AdversaryKind::kBernoulli, {{"p", 0.5}});
  config.horizon = 500;
  config.seed = 42;
  const RunResult a = run_experiment(config);
  const RunResult b = run_experiment(config);
  EXPECT_EQ(a.coverage.visit_counts, b.coverage.visit_counts);
  EXPECT_EQ(a.coverage.max_revisit_gap, b.coverage.max_revisit_gap);
  EXPECT_EQ(a.towers.tower_formation_count, b.towers.tower_formation_count);
}

TEST(ExperimentTest, DifferentSeedsUsuallyDiffer) {
  ExperimentConfig config;
  config.nodes = 7;
  config.robots = 3;
  config.algorithm = make_algorithm("pef3+");
  config.adversary = adversary_config(AdversaryKind::kBernoulli, {{"p", 0.5}});
  config.horizon = 500;
  config.seed = 1;
  const RunResult a = run_experiment(config);
  config.seed = 2;
  const RunResult b = run_experiment(config);
  EXPECT_NE(a.coverage.visit_counts, b.coverage.visit_counts);
}

TEST(ExperimentTest, BatteryRunsAllSeeds) {
  ExperimentConfig config;
  config.nodes = 5;
  config.robots = 3;
  config.algorithm = make_algorithm("pef3+");
  config.adversary =
      adversary_config(AdversaryKind::kTInterval, {{"interval", 3}});
  config.horizon = 400;
  const auto results = run_battery(config, 100, 8);
  ASSERT_EQ(results.size(), 8u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].seed, 100u + i);
    EXPECT_TRUE(results[i].perpetual) << "seed " << results[i].seed;
  }
}

TEST(ExperimentTest, StandardBatteryIsLegalEverywhere) {
  // Every adversary family in the battery must produce connected-over-time
  // prefixes (they are the *possibility*-side workloads).
  for (const AdversaryConfig& adversary : standard_battery_configs()) {
    ExperimentConfig config;
    config.nodes = 6;
    config.robots = 3;
    config.algorithm = make_algorithm("pef3+");
    config.adversary = adversary;
    config.horizon = 800;
    config.seed = 9;
    const RunResult result = run_experiment(config);
    EXPECT_TRUE(result.adversary_legal) << adversary_display_name(adversary);
  }
}

TEST(ExploreTest, RecommendedAlgorithmIsUsed) {
  ExploreRequest request;
  request.nodes = 8;
  request.robots = 3;
  request.adversary = "static";
  request.horizon = 300;
  const ExploreOutcome outcome = explore(request);
  EXPECT_EQ(outcome.predicted, computability::Verdict::kPossible);
  EXPECT_EQ(outcome.algorithm, "pef3+");
  EXPECT_TRUE(outcome.result.perpetual);
}

TEST(ExploreTest, SmallRingsPickSmallAlgorithms) {
  {
    ExploreRequest request;
    request.nodes = 3;
    request.robots = 2;
    request.adversary = "t-interval";
    request.horizon = 500;
    const ExploreOutcome outcome = explore(request);
    EXPECT_EQ(outcome.algorithm, "pef2");
    EXPECT_TRUE(outcome.result.perpetual);
  }
  {
    ExploreRequest request;
    request.nodes = 2;
    request.robots = 1;
    request.adversary = "bernoulli";
    request.horizon = 800;
    const ExploreOutcome outcome = explore(request);
    EXPECT_EQ(outcome.algorithm, "pef1");
    EXPECT_TRUE(outcome.result.perpetual);
  }
}

TEST(ExploreTest, ImpossiblePairStillRunsAndFails) {
  // (k=2, n=8) is impossible (Theorem 4.1).  With PEF_3+ run on only two
  // robots, an eventual missing edge freezes both of them as sentinels and
  // leaves zero explorers: the middle of the chain starves.
  ExploreRequest request;
  request.nodes = 8;
  request.robots = 2;
  request.algorithm = "pef3+";
  request.adversary = "eventual-missing";
  request.horizon = 1500;
  const ExploreOutcome outcome = explore(request);
  EXPECT_EQ(outcome.predicted, computability::Verdict::kImpossible);
  EXPECT_FALSE(outcome.result.perpetual);
}

TEST(ExploreTest, AlgorithmOverride) {
  ExploreRequest request;
  request.nodes = 6;
  request.robots = 3;
  request.algorithm = "keep-direction";
  request.adversary = "static";
  request.horizon = 200;
  const ExploreOutcome outcome = explore(request);
  EXPECT_EQ(outcome.algorithm, "keep-direction");
  EXPECT_TRUE(outcome.result.perpetual);
}

}  // namespace
}  // namespace pef
