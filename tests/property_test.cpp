// Property-based sweeps: model-level invariants checked across randomized
// workloads (seeds, sizes, placements, chiralities).
#include <gtest/gtest.h>

#include "adversary/adversary.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "analysis/sentinels.hpp"
#include "analysis/towers.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "dynamic_graph/schedules.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

// --- Determinism -----------------------------------------------------------

TEST(PropertyTest, SimulatorIsDeterministic) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Ring ring(7);
    auto make_run = [&] {
      auto schedule =
          std::make_shared<BernoulliSchedule>(ring, 0.5, seed);
      Simulator sim(ring, make_algorithm("pef3+"), make_oblivious(schedule),
                    random_placements(ring, 3, seed));
      sim.run(400);
      std::vector<NodeId> positions;
      for (Time t = 0; t <= 400; ++t) {
        for (RobotId r = 0; r < 3; ++r) {
          positions.push_back(sim.trace().position_at(r, t));
        }
      }
      return positions;
    };
    EXPECT_EQ(make_run(), make_run());
  }
}

// --- Structural lemmas of Section 3 across random workloads ---------------

class Pef3PlusInvariantTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Pef3PlusInvariantTest, TowerLemmasUnderRandomDynamics) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(derive_seed(seed, 0xabc));
  const auto n = static_cast<std::uint32_t>(4 + rng.next_below(10));
  const auto k = static_cast<std::uint32_t>(
      3 + rng.next_below(std::min(3u, n - 4) + 1));
  const Ring ring(n);
  auto schedule = std::make_shared<BernoulliSchedule>(
      ring, 0.3 + 0.6 * rng.next_double(), seed);
  Simulator sim(ring, make_algorithm("pef3+"), make_oblivious(schedule),
                random_placements(ring, k, derive_seed(seed, 1)));
  sim.run(300 * n);
  const auto towers = analyze_towers(sim.trace());
  EXPECT_TRUE(towers.lemma_3_4_holds) << "n=" << n << " k=" << k;
  EXPECT_TRUE(towers.lemma_3_3_holds) << "n=" << n << " k=" << k;
}

TEST_P(Pef3PlusInvariantTest, PerpetualAndGapBoundedUnderRandomDynamics) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(derive_seed(seed, 0xdef));
  const auto n = static_cast<std::uint32_t>(4 + rng.next_below(8));
  const Ring ring(n);
  // Dense-ish dynamics so finite-horizon gap bounds are meaningful.
  auto schedule = std::make_shared<BernoulliSchedule>(ring, 0.7, seed);
  Simulator sim(ring, make_algorithm("pef3+"), make_oblivious(schedule),
                random_placements(ring, 3, derive_seed(seed, 2)));
  sim.run(500 * n);
  const auto coverage = analyze_coverage(sim.trace());
  EXPECT_TRUE(coverage.perpetual(n)) << "n=" << n;
  // The paper's argument gives a gap linear in n per "phase"; allow a
  // generous constant for stochastic edge waiting.
  EXPECT_LE(coverage.max_revisit_gap, 120u * n) << "n=" << n;
}

TEST_P(Pef3PlusInvariantTest, SentinelsUnderRandomMissingEdge) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(derive_seed(seed, 0x5e9));
  const auto n = static_cast<std::uint32_t>(5 + rng.next_below(8));
  const Ring ring(n);
  const auto missing = static_cast<EdgeId>(rng.next_below(n));
  const Time vanish = 5 + rng.next_below(3 * n);
  auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
      std::make_shared<StaticSchedule>(ring), missing, vanish);
  Simulator sim(ring, make_algorithm("pef3+"), make_oblivious(schedule),
                random_placements(ring, 3, derive_seed(seed, 3)));
  sim.run(600 * n);
  const auto sentinels = analyze_sentinels(sim.trace(), missing);
  EXPECT_TRUE(sentinels.sentinels_formed())
      << "n=" << n << " missing=" << missing << " vanish=" << vanish;
  EXPECT_EQ(sentinels.sentinels_at_horizon.size(), 2u);
  EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Pef3PlusInvariantTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// --- Adversary legality is monotone in patience ----------------------------

TEST(PropertyTest, LegalityAuditMonotoneInPatience) {
  const Ring ring(6);
  auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
      std::make_shared<StaticSchedule>(ring), 2, 50);
  Simulator sim(ring, make_algorithm("pef3+"), make_oblivious(schedule),
                spread_placements(ring, 3));
  sim.run(600);
  const auto history = sim.trace().edge_history();
  std::size_t previous = 100;
  for (Time patience : {Time{10}, Time{100}, Time{400}, Time{600}}) {
    const auto audit = audit_connectivity(ring, history, patience);
    EXPECT_LE(audit.suspected_missing.size(), previous);
    previous = audit.suspected_missing.size();
  }
}

// --- Conservation: robots neither vanish nor teleport ----------------------

class ConservationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConservationTest, MovesAreSingleHopsAlongPresentEdges) {
  const std::uint64_t seed = GetParam();
  const Ring ring(9);
  auto schedule = std::make_shared<BernoulliSchedule>(ring, 0.5, seed);
  Simulator sim(ring, make_algorithm("random-walk", seed),
                make_oblivious(schedule),
                random_placements(ring, 4, seed));
  sim.run(500);
  for (const RoundRecord& round : sim.trace().rounds()) {
    for (const RobotRoundRecord& r : round.robots) {
      if (!r.moved) {
        EXPECT_EQ(r.node_before, r.node_after);
        continue;
      }
      EXPECT_EQ(ring.distance(r.node_before, r.node_after), 1u);
      // The crossed edge was present in the round's edge set.
      bool found = false;
      for (const auto d : {GlobalDirection::kClockwise,
                           GlobalDirection::kCounterClockwise}) {
        const EdgeId e = ring.adjacent_edge(r.node_before, d);
        if (ring.neighbour(r.node_before, d) == r.node_after &&
            round.edges.contains(e)) {
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationTest,
                         ::testing::Values(1ull, 7ull, 23ull, 99ull));

// --- Blocked robots never move ---------------------------------------------

TEST(PropertyTest, RobotNeverMovesThroughAbsentPointedEdge) {
  const Ring ring(5);
  auto schedule = std::make_shared<BernoulliSchedule>(ring, 0.4, 404);
  Simulator sim(ring, make_algorithm("keep-direction"),
                make_oblivious(schedule), {{0, Chirality(true)}});
  sim.run(300);
  for (const RoundRecord& round : sim.trace().rounds()) {
    const auto& r = round.robots[0];
    // keep-direction always considers ccw; it moves iff that edge present.
    const EdgeId pointed = ring.adjacent_edge(
        r.node_before, GlobalDirection::kCounterClockwise);
    EXPECT_EQ(r.moved, round.edges.contains(pointed));
  }
}

}  // namespace
}  // namespace pef
