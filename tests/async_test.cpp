// Tests for the ASYNC extension: lockstep degeneration to FSYNC, view
// staleness, and the [10]-style impossibility under the Move blocker.
#include "scheduler/async.hpp"

#include <gtest/gtest.h>

#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "dynamic_graph/properties.hpp"
#include "dynamic_graph/schedules.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

TEST(AsyncTest, LockstepOverStaticGraphIsFsyncAtThirdSpeed) {
  // With every robot advancing every tick over a static graph, phases stay
  // synchronised: positions after 3t async ticks equal FSYNC positions
  // after t rounds.
  const Ring ring(7);
  auto schedule = std::make_shared<StaticSchedule>(ring);
  const auto placements = spread_placements(ring, 3);

  Simulator fsync(ring, make_algorithm("pef3+"), make_oblivious(schedule),
                  placements);
  AsyncSimulator async(ring, make_algorithm("pef3+"),
                       std::make_unique<SsyncObliviousAdversary>(schedule),
                       std::make_unique<LockstepPhases>(), placements);
  fsync.run(60);
  async.run(180);
  for (Time t = 0; t <= 60; ++t) {
    for (RobotId r = 0; r < 3; ++r) {
      ASSERT_EQ(fsync.trace().position_at(r, t),
                async.trace().position_at(r, 3 * t))
          << "r=" << r << " t=" << t;
    }
  }
}

TEST(AsyncTest, PhasesCycleLookComputeMove) {
  const Ring ring(4);
  auto schedule = std::make_shared<StaticSchedule>(ring);
  AsyncSimulator async(ring, make_algorithm("keep-direction"),
                       std::make_unique<SsyncObliviousAdversary>(schedule),
                       std::make_unique<LockstepPhases>(),
                       {{0, Chirality(true)}});
  EXPECT_EQ(async.phase_of(0), Phase::kLook);
  async.step();
  EXPECT_EQ(async.phase_of(0), Phase::kCompute);
  async.step();
  EXPECT_EQ(async.phase_of(0), Phase::kMove);
  async.step();
  EXPECT_EQ(async.phase_of(0), Phase::kLook);
  // One full cycle == one move for an unobstructed keep-direction walker.
  EXPECT_EQ(async.trace().position_at(0, 3), 3u);
}

TEST(AsyncTest, StaleViewMakesRobotChaseVanishedEdge) {
  // The ASYNC hazard in isolation: the edge present at Look time is gone
  // by Move time, so the robot stalls even though its (stale) view said
  // the way was clear — and a fresher robot would have turned.
  const Ring ring(5);
  // Robot at node 2 pointing ccw (edge 1).  Edge 1 present only at tick 0
  // (Look), absent from tick 1 on; edge 2 always present.
  std::vector<EdgeSet> rounds;
  for (Time t = 0; t < 12; ++t) {
    EdgeSet s = EdgeSet::all(5);
    if (t >= 1) s.erase(1);
    rounds.push_back(s);
  }
  auto schedule = std::make_shared<RecordedSchedule>(ring, rounds,
                                                     TailRule::kRepeatLast);
  AsyncSimulator async(ring, make_algorithm("bounce"),
                       std::make_unique<SsyncObliviousAdversary>(schedule),
                       std::make_unique<LockstepPhases>(),
                       {{2, Chirality(true)}});
  // Look at t=0 sees edge 1 present -> bounce keeps pointing at it.
  // Move at t=2 finds it gone: no movement, although behind was open.
  async.run(3);
  EXPECT_EQ(async.trace().position_at(0, 3), 2u);
  // The NEXT cycle's Look sees the truth and bounce turns back.
  async.run(3);
  EXPECT_EQ(async.trace().position_at(0, 6), 3u);
}

TEST(AsyncTest, MoveBlockerFreezesEveryAlgorithm) {
  for (const std::string& name : algorithm_names()) {
    const Ring ring(6);
    AsyncSimulator async(ring, make_algorithm(name, 7),
                         std::make_unique<AsyncMoveBlocker>(ring),
                         std::make_unique<RoundRobinPhases>(),
                         spread_placements(ring, 3));
    async.run(900);
    for (RobotId r = 0; r < 3; ++r) {
      EXPECT_EQ(async.trace().position_at(r, 900),
                async.trace().position_at(r, 0))
          << name;
    }
    EXPECT_EQ(analyze_coverage(async.trace()).visited_node_count, 3u)
        << name;
  }
}

TEST(AsyncTest, MoveBlockerKeepsEdgesRecurrent) {
  const Ring ring(6);
  AsyncSimulator async(ring, make_algorithm("pef3+"),
                       std::make_unique<AsyncMoveBlocker>(ring),
                       std::make_unique<RoundRobinPhases>(),
                       spread_placements(ring, 3));
  async.run(900);
  const auto audit =
      audit_connectivity(ring, async.trace().edge_history(), 200);
  EXPECT_TRUE(audit.connected_over_time);
  EXPECT_TRUE(audit.suspected_missing.empty());
}

TEST(AsyncTest, BenignAsyncStillExplores) {
  // Random fair phase scheduling over a static graph: PEF_3+ keeps
  // exploring (asynchrony alone is survivable when robots never meet;
  // the impossibility needs the edge adversary).
  const Ring ring(6);
  auto schedule = std::make_shared<StaticSchedule>(ring);
  AsyncSimulator async(ring, make_algorithm("pef3+"),
                       std::make_unique<SsyncObliviousAdversary>(schedule),
                       std::make_unique<BernoulliPhases>(0.6, 9),
                       spread_placements(ring, 3));
  async.run(4000);
  EXPECT_EQ(analyze_coverage(async.trace()).visited_node_count, 6u);
}

}  // namespace
}  // namespace pef
