// Adaptive batch sizing + wide-batch determinism tests.
//
// The contract of the adaptive stack: HOW a scenario set is executed — solo
// Engines, one BatchEngine, batch width, tile shape, intra-cell worker
// threads, ISA tier — may never change WHAT it computes.  These tests pin
//   * plan_batch's routing (break-even fallback, preferred width, caps);
//   * bit-identical stats/coverage for wide (B=256, multi-tile) and
//     threaded batches against solo Engines, on all three models, with
//     batchable (oblivious static) and non-batchable (adaptive
//     greedy-blocker) adversaries;
//   * byte-identical sweep JSON across max_batch in {0, 1, 16, 256} and
//     engine_threads in {1, 4};
//   * the pef_run CLI: --batch 1/2 route to solo Engines (and say so in the
//     footer), --batch 16/auto to the BatchEngine, with per-seed table rows
//     identical across the routes, --threads, and PEF_BATCH_ISA tiers.
//
// (batch_engine_test.cpp is the exhaustive trace-level differential at
// B=10; this file covers the regimes that test cannot reach: multi-tile
// widths, worker threads, the planner, and the CLI routing.)
#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/greedy_blocker.hpp"
#include "algorithms/registry.hpp"
#include "core/experiment.hpp"
#include "core/spec.hpp"
#include "dynamic_graph/schedules.hpp"
#include "engine/batch_engine.hpp"
#include "engine/engine.hpp"
#include "engine/sweep_runner.hpp"
#include "scheduler/simulator.hpp"
#include "scheduler/ssync.hpp"

namespace pef {
namespace {

constexpr double kActivationP = 0.5;

// ---------------------------------------------------------------------------
// plan_batch routing

TEST(AdaptiveBatch, SingleSeedIsNeverBatched) {
  for (const ExecutionModel model :
       {ExecutionModel::kFsync, ExecutionModel::kSsync,
        ExecutionModel::kAsync}) {
    const BatchPlan plan = plan_batch(model, 1024, 16, 1, 0);
    EXPECT_EQ(plan.width, 1u);
    EXPECT_FALSE(plan.use_batch());
  }
}

TEST(AdaptiveBatch, BelowBreakEvenRoutesToSolo) {
  for (const ExecutionModel model :
       {ExecutionModel::kFsync, ExecutionModel::kSsync,
        ExecutionModel::kAsync}) {
    const std::uint32_t knee = batch_break_even(model, 1024, 16);
    ASSERT_GE(knee, 2u);
    // Seeds just under the knee: solo.  At the knee: batch.
    EXPECT_FALSE(plan_batch(model, 1024, 16, knee - 1, 0).use_batch());
    const BatchPlan at = plan_batch(model, 1024, 16, knee, 0);
    EXPECT_TRUE(at.use_batch());
    EXPECT_EQ(at.width, knee);
  }
}

TEST(AdaptiveBatch, ExplicitCapBelowBreakEvenIsAHardSoloRoute) {
  // max_batch == 1 is an explicit "no batching" request; a cap below the
  // knee is a ceiling that lands in solo territory.
  EXPECT_FALSE(plan_batch(ExecutionModel::kFsync, 1024, 16, 64, 1).use_batch());
  const std::uint32_t knee = batch_break_even(ExecutionModel::kFsync, 1024, 16);
  if (knee > 2) {
    EXPECT_FALSE(
        plan_batch(ExecutionModel::kFsync, 1024, 16, 64, knee - 1).use_batch());
  }
}

TEST(AdaptiveBatch, AdaptiveWidthIsPreferredWidthClampedToSeeds) {
  const std::uint32_t preferred =
      preferred_batch_width(ExecutionModel::kFsync, 1024, 16);
  EXPECT_GE(preferred, 64u);
  EXPECT_EQ(plan_batch(ExecutionModel::kFsync, 1024, 16, 10'000, 0).width,
            preferred);
  // Fewer seeds than the preferred width: the plan never overshoots.
  EXPECT_EQ(plan_batch(ExecutionModel::kFsync, 1024, 16, 48, 0).width, 48u);
  // An explicit cap wins over the preferred width.
  EXPECT_EQ(plan_batch(ExecutionModel::kFsync, 1024, 16, 10'000, 16).width,
            16u);
}

TEST(AdaptiveBatch, PreferredWidthNarrowsForHugeRings) {
  // The lane-major visit rows grow with n; the preferred width must shrink
  // rather than blow the cache budget, but never below one 64-lane block.
  const std::uint32_t small =
      preferred_batch_width(ExecutionModel::kFsync, 1024, 16);
  const std::uint32_t huge =
      preferred_batch_width(ExecutionModel::kFsync, 1 << 20, 16);
  EXPECT_LE(huge, small);
  EXPECT_GE(huge, 64u);
}

// ---------------------------------------------------------------------------
// Wide + threaded batches vs solo Engines (stats/coverage identity)

struct WideScenario {
  const char* name;
  ExecutionModel model;
  bool adaptive_adversary;  // greedy-blocker (mirror path) vs static
};

AdversaryPtr wide_adversary(const Ring& ring, bool adaptive) {
  if (adaptive) {
    return std::make_unique<GreedyBlockerAdversary>(ring, /*max_absence=*/4);
  }
  return make_oblivious(std::make_shared<StaticSchedule>(ring));
}

/// Ragged horizons so replicas retire mid-epoch (the temporal tiling must
/// handle lanes leaving inside an epoch span).
Time wide_horizon(std::uint32_t replica) { return 150 + 23 * (replica % 5); }

EngineStats solo_run(const Ring& ring, const WideScenario& scenario,
                     std::uint32_t robots, std::uint32_t replica) {
  const std::uint64_t seed = replica + 1;
  auto algorithm = make_algorithm("pef3+", seed);
  const auto placements = random_placements(ring, robots, seed);
  auto fsync = wide_adversary(ring, scenario.adaptive_adversary);
  std::unique_ptr<Engine> engine;
  switch (scenario.model) {
    case ExecutionModel::kFsync:
      engine = std::make_unique<Engine>(ring, std::move(algorithm),
                                        std::move(fsync), placements,
                                        EngineOptions{});
      break;
    case ExecutionModel::kSsync:
      engine = std::make_unique<Engine>(
          ring, std::move(algorithm),
          std::make_unique<SsyncFromFsyncAdversary>(std::move(fsync)),
          standard_ssync_activation(kActivationP, seed), placements,
          EngineOptions{});
      break;
    case ExecutionModel::kAsync:
      engine = std::make_unique<Engine>(
          ring, std::move(algorithm),
          std::make_unique<SsyncFromFsyncAdversary>(std::move(fsync)),
          standard_async_phases(kActivationP, seed), placements,
          EngineOptions{});
      break;
  }
  engine->run(wide_horizon(replica));
  return engine->stats();
}

void expect_stats_equal(const EngineStats& batch, const EngineStats& solo) {
  ASSERT_EQ(batch.rounds, solo.rounds);
  ASSERT_EQ(batch.total_moves, solo.total_moves);
  ASSERT_EQ(batch.tower_rounds, solo.tower_rounds);
  ASSERT_EQ(batch.tower_formations, solo.tower_formations);
  ASSERT_EQ(batch.visited_node_count, solo.visited_node_count);
  ASSERT_EQ(batch.cover_time, solo.cover_time);
}

TEST(WideBatch, B256ThreadedMatchesSoloOnEveryModel) {
  // n chosen so a 256-replica batch spans MULTIPLE cache tiles (the tile
  // budget splits the lane axis) and threads=4 splits the 64-lane blocks
  // across workers on any machine (a small core count just oversubscribes;
  // determinism must not care).
  constexpr std::uint32_t kNodes = 2048;
  constexpr std::uint32_t kRobots = 8;
  constexpr std::uint32_t kBatch = 256;
  const Ring ring(kNodes);

  const std::vector<WideScenario> scenarios = {
      {"fsync/static", ExecutionModel::kFsync, false},
      {"ssync/static", ExecutionModel::kSsync, false},
      {"async/static", ExecutionModel::kAsync, false},
      {"fsync/greedy-blocker", ExecutionModel::kFsync, true},
      {"ssync/greedy-blocker", ExecutionModel::kSsync, true},
      {"async/greedy-blocker", ExecutionModel::kAsync, true},
  };
  for (const WideScenario& scenario : scenarios) {
    SCOPED_TRACE(scenario.name);
    std::vector<EngineStats> solo(kBatch);
    for (std::uint32_t b = 0; b < kBatch; ++b) {
      solo[b] = solo_run(ring, scenario, kRobots, b);
    }
    for (const std::uint32_t threads : {1u, 4u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      std::vector<BatchReplica> replicas(kBatch);
      for (std::uint32_t b = 0; b < kBatch; ++b) {
        const std::uint64_t seed = b + 1;
        BatchReplica& replica = replicas[b];
        replica.algorithm = make_algorithm("pef3+", seed);
        replica.placements = random_placements(ring, kRobots, seed);
        replica.horizon = wide_horizon(b);
        wire_standard_replica(replica, scenario.model,
                              wide_adversary(ring, scenario.adaptive_adversary),
                              kActivationP, seed);
      }
      BatchEngineOptions options;
      options.threads = threads;
      BatchEngine batch(ring, scenario.model, std::move(replicas), options);
      batch.run_all();
      for (std::uint32_t b = 0; b < kBatch; ++b) {
        SCOPED_TRACE("replica " + std::to_string(b));
        expect_stats_equal(batch.stats(b), solo[b]);
        if (HasFatalFailure()) return;
        const CoverageReport& coverage = batch.coverage_report(b);
        ASSERT_EQ(coverage.visited_node_count, solo[b].visited_node_count);
        ASSERT_EQ(coverage.cover_time, solo[b].cover_time);
      }
    }
  }
}

TEST(WideBatch, TracedThreadedBatchMatchesSerial) {
  // The traced path keeps global round barriers; threads may only change
  // scheduling, never a single trace byte.
  constexpr std::uint32_t kNodes = 64;
  constexpr std::uint32_t kRobots = 4;
  constexpr std::uint32_t kBatch = 65;  // odd: exercises the tail block
  const Ring ring(kNodes);

  const auto build = [&](std::uint32_t threads) {
    std::vector<BatchReplica> replicas(kBatch);
    for (std::uint32_t b = 0; b < kBatch; ++b) {
      const std::uint64_t seed = b + 1;
      BatchReplica& replica = replicas[b];
      replica.algorithm = make_algorithm("pef3+", seed);
      replica.placements = random_placements(ring, kRobots, seed);
      replica.horizon = wide_horizon(b);
      wire_standard_replica(
          replica, ExecutionModel::kSsync,
          make_oblivious(std::make_shared<StaticSchedule>(ring)), kActivationP,
          seed);
    }
    BatchEngineOptions options;
    options.record_trace = true;
    options.threads = threads;
    auto engine = std::make_unique<BatchEngine>(ring, ExecutionModel::kSsync,
                                                std::move(replicas), options);
    engine->run_all();
    return engine;
  };

  const auto serial = build(1);
  const auto threaded = build(4);
  for (std::uint32_t b = 0; b < kBatch; ++b) {
    const Trace& a = serial->trace(b);
    const Trace& c = threaded->trace(b);
    ASSERT_EQ(a.rounds().size(), c.rounds().size()) << "replica " << b;
    for (std::size_t t = 0; t < a.rounds().size(); ++t) {
      const RoundRecord& ra = a.rounds()[t];
      const RoundRecord& rc = c.rounds()[t];
      ASSERT_EQ(ra.edges, rc.edges) << "replica " << b << " round " << t;
      ASSERT_EQ(ra.robots.size(), rc.robots.size());
      for (RobotId r = 0; r < ra.robots.size(); ++r) {
        ASSERT_EQ(ra.robots[r].node_after, rc.robots[r].node_after)
            << "replica " << b << " round " << t << " robot " << r;
        ASSERT_EQ(ra.robots[r].dir_after, rc.robots[r].dir_after)
            << "replica " << b << " round " << t << " robot " << r;
        ASSERT_EQ(ra.robots[r].moved, rc.robots[r].moved)
            << "replica " << b << " round " << t << " robot " << r;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Sweep JSON byte-identity across batch widths and engine threads

TEST(AdaptiveBatch, SweepJsonIdenticalAcrossWidthsAndThreads) {
  SweepSpec spec;
  spec.algorithms = {"pef3+", "bounce"};
  spec.adversaries = {
      adversary_config(AdversaryKind::kStatic),
      adversary_config(AdversaryKind::kBernoulli, {{"p", 0.5}})};
  spec.models = {ExecutionModel::kFsync, ExecutionModel::kSsync};
  spec.ring_sizes = {32};
  spec.robot_counts = {3};
  spec.seeds = {1,  2,  3,  4,  5,  6,  7,  8,  9,  10,
                11, 12, 13, 14, 15, 16, 17, 18, 19, 20};
  spec.horizon = 300;

  std::string reference;
  for (const std::uint32_t max_batch : {0u, 1u, 16u, 256u}) {
    for (const std::uint32_t engine_threads : {1u, 4u}) {
      spec.max_batch = max_batch;
      const SweepRunner runner(1, engine_threads);
      const std::string json = runner.run(spec).to_json();
      if (reference.empty()) {
        reference = json;
        continue;
      }
      EXPECT_EQ(json, reference)
          << "sweep JSON diverged at max_batch=" << max_batch
          << " engine_threads=" << engine_threads;
    }
  }
}

// ---------------------------------------------------------------------------
// pef_run CLI routing (footer + per-seed rows + ISA tiers)

std::string run_cli(const std::string& env_and_args) {
  const std::string cmd = env_and_args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  if (pipe == nullptr) return {};
  std::string out;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof buffer, pipe)) > 0) {
    out.append(buffer, n);
  }
  pclose(pipe);
  return out;
}

std::string pef_run_cmd(const std::string& args) {
  return std::string(PEF_BIN_DIR) + "/pef_run " + args;
}

/// Per-seed table body rows with runs of spaces collapsed (column widths
/// depend on the widest value in the whole table, so a 2-row and a 16-row
/// table may pad the shared rows differently; the VALUES must match).
std::vector<std::string> table_rows(const std::string& out) {
  std::vector<std::string> rows;
  std::istringstream in(out);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] != '|') continue;
    if (line.find("seed") != std::string::npos) continue;  // header
    std::string squeezed;
    for (const char c : line) {
      if (c == ' ' && !squeezed.empty() && squeezed.back() == ' ') continue;
      squeezed.push_back(c);
    }
    rows.push_back(squeezed);
  }
  return rows;
}

constexpr const char* kCliScenario =
    "--nodes 48 --robots 4 --algorithm pef3+ --adversary static "
    "--model fsync --horizon 400";

TEST(PefRunCli, BatchOneRoutesToSoloEngine) {
  const std::string out =
      run_cli(pef_run_cmd(std::string(kCliScenario) + " --batch 1"));
  EXPECT_NE(out.find("engine=solo"), std::string::npos) << out;
  EXPECT_EQ(out.find("engine=batch"), std::string::npos) << out;
}

TEST(PefRunCli, BelowBreakEvenRoutesToSoloAboveToBatch) {
  const std::string solo =
      run_cli(pef_run_cmd(std::string(kCliScenario) + " --batch 2"));
  EXPECT_NE(solo.find("engine=solo"), std::string::npos) << solo;
  const std::string batch =
      run_cli(pef_run_cmd(std::string(kCliScenario) + " --batch 16"));
  EXPECT_NE(batch.find("engine=batch"), std::string::npos) << batch;
  const std::string adaptive =
      run_cli(pef_run_cmd(std::string(kCliScenario) + " --batch auto"));
  EXPECT_NE(adaptive.find("engine=batch"), std::string::npos) << adaptive;
}

TEST(PefRunCli, SoloAndBatchRowsAreByteIdentical) {
  // Seeds 1..2 via the solo route vs seeds 1..16 via the batch route: the
  // overlapping per-seed rows must carry identical values.
  const std::vector<std::string> solo = table_rows(
      run_cli(pef_run_cmd(std::string(kCliScenario) + " --batch 2")));
  const std::vector<std::string> batch = table_rows(
      run_cli(pef_run_cmd(std::string(kCliScenario) + " --batch 16")));
  ASSERT_EQ(solo.size(), 2u);
  ASSERT_EQ(batch.size(), 16u);
  EXPECT_EQ(solo[0], batch[0]);
  EXPECT_EQ(solo[1], batch[1]);
}

TEST(PefRunCli, ThreadsAndIsaTiersKeepRowsIdentical) {
  const std::vector<std::string> reference = table_rows(
      run_cli(pef_run_cmd(std::string(kCliScenario) + " --batch 16")));
  ASSERT_EQ(reference.size(), 16u);
  EXPECT_EQ(table_rows(run_cli(pef_run_cmd(std::string(kCliScenario) +
                                           " --batch 16 --threads 4"))),
            reference);
  // PEF_BATCH_ISA clamps the dispatch tier downward; every tier computes
  // the same rows.
  for (const char* tier : {"portable", "avx2", "avx512"}) {
    EXPECT_EQ(table_rows(run_cli(
                  std::string("PEF_BATCH_ISA=") + tier + " " +
                  pef_run_cmd(std::string(kCliScenario) + " --batch 16"))),
              reference)
        << "ISA tier " << tier;
  }
}

}  // namespace
}  // namespace pef
