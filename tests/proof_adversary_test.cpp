// Tests for the staged proof adversaries (Theorems 4.1 and 5.1, Figures 2/3).
#include "adversary/proof_adversary.hpp"

#include <gtest/gtest.h>

#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "dynamic_graph/properties.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

constexpr Time kPatience = 64;

TEST(ProofThm51Test, SingleRobotConfinedToTwoNodes) {
  for (const std::string& name : deterministic_algorithm_names()) {
    const Ring ring(6);
    Simulator sim(
        ring, make_algorithm(name),
        std::make_unique<StagedProofAdversary>(ring, 2, 2, kPatience),
        {{2, Chirality(true)}});
    sim.run(1500);
    EXPECT_LE(analyze_coverage(sim.trace()).visited_node_count, 2u) << name;
  }
}

TEST(ProofThm51Test, RealizedGraphIsLegalForEveryAlgorithm) {
  // The dichotomy of the proof: either the robot keeps moving (all absence
  // intervals close) or it camps (the adversary degrades to one eventual
  // missing edge).  Both realized prefixes are connected-over-time.
  for (const std::string& name : deterministic_algorithm_names()) {
    const Ring ring(6);
    auto adversary =
        std::make_unique<StagedProofAdversary>(ring, 2, 2, kPatience);
    Simulator sim(ring, make_algorithm(name), std::move(adversary),
                  {{2, Chirality(true)}});
    sim.run(1500);
    const auto audit = audit_connectivity(ring, sim.trace().edge_history(),
                                          /*patience=*/400);
    EXPECT_TRUE(audit.connected_over_time) << name;
    EXPECT_LE(audit.suspected_missing.size(), 1u) << name;
  }
}

TEST(ProofThm51Test, BounceKeepsAdversaryStaging) {
  // Bounce departs under OneEdge, so the staged dance never terminates:
  // many completed stages, no terminal mode.
  const Ring ring(5);
  auto adversary =
      std::make_unique<StagedProofAdversary>(ring, 1, 2, kPatience);
  auto* handle = adversary.get();
  Simulator sim(ring, make_algorithm("bounce"), std::move(adversary),
                {{1, Chirality(true)}});
  sim.run(600);
  EXPECT_FALSE(handle->in_terminal_mode());
  EXPECT_GT(handle->stages_completed(), 100u);
  // Stages alternate between the two window nodes.
  const auto& log = handle->stage_log();
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].from, i % 2 == 0 ? 1u : 2u);
    EXPECT_EQ(log[i].to, i % 2 == 0 ? 2u : 1u);
    EXPECT_EQ(log[i].removed_edges.size(), 1u);
  }
}

TEST(ProofThm51Test, KeepDirectionTriggersTerminalMode) {
  // KeepDirection camps under OneEdge: the adversary must degrade to a
  // single eventual missing edge, and exploration still fails.
  const Ring ring(6);
  auto adversary =
      std::make_unique<StagedProofAdversary>(ring, 2, 2, kPatience);
  auto* handle = adversary.get();
  Simulator sim(ring, make_algorithm("keep-direction"), std::move(adversary),
                {{2, Chirality(true)}});
  sim.run(1000);
  EXPECT_TRUE(handle->in_terminal_mode());
  ASSERT_TRUE(handle->terminal_edge().has_value());
  const auto coverage = analyze_coverage(sim.trace());
  EXPECT_LT(coverage.visited_node_count, 6u);
}

TEST(ProofThm41Test, TwoRobotsConfinedToThreeNodes) {
  for (const std::string& name : deterministic_algorithm_names()) {
    const Ring ring(8);
    Simulator sim(
        ring, make_algorithm(name),
        std::make_unique<StagedProofAdversary>(ring, 2, 3, kPatience),
        {{2, Chirality(true)}, {3, Chirality(true)}});
    sim.run(2000);
    const auto coverage = analyze_coverage(sim.trace());
    // Staged mode confines to the 3-node window; terminal mode (camping
    // algorithms) leaves one eventual missing edge, under which the run
    // must still fail to explore all 8 nodes perpetually.
    EXPECT_FALSE(coverage.perpetual(8)) << name;
  }
}

TEST(ProofThm41Test, StagedModeReproducesFigure2Rotation) {
  // Against bounce, the stage log must reproduce the proof's rotation:
  // designated robot moves v->w, u->v, v->u, w->v, ... within {u,v,w}.
  const Ring ring(8);
  const NodeId u = 2, v = 3, w = 4;
  auto adversary =
      std::make_unique<StagedProofAdversary>(ring, u, 3, kPatience);
  auto* handle = adversary.get();
  Simulator sim(ring, make_algorithm("bounce"), std::move(adversary),
                {{u, Chirality(true)}, {v, Chirality(true)}});
  sim.run(2000);
  EXPECT_FALSE(handle->in_terminal_mode());
  const auto& log = handle->stage_log();
  ASSERT_GE(log.size(), 8u);
  for (const auto& stage : log) {
    // Every stage moves the designated robot between adjacent window nodes.
    EXPECT_TRUE(stage.from == u || stage.from == v || stage.from == w);
    EXPECT_TRUE(stage.to == u || stage.to == v || stage.to == w);
    EXPECT_EQ(ring.distance(stage.from, stage.to), 1u);
    // Removal sets match the paper's shape: 2 or 3 edges.
    EXPECT_GE(stage.removed_edges.size(), 1u);
    EXPECT_LE(stage.removed_edges.size(), 3u);
  }
}

TEST(ProofThm41Test, LegalityForEveryAlgorithm) {
  for (const std::string& name : deterministic_algorithm_names()) {
    const Ring ring(8);
    auto adversary =
        std::make_unique<StagedProofAdversary>(ring, 2, 3, kPatience);
    Simulator sim(ring, make_algorithm(name), std::move(adversary),
                  {{2, Chirality(true)}, {3, Chirality(true)}});
    sim.run(2000);
    const auto audit = audit_connectivity(ring, sim.trace().edge_history(),
                                          /*patience=*/500);
    EXPECT_LE(audit.suspected_missing.size(), 1u) << name;
    EXPECT_TRUE(audit.connected_over_time) << name;
  }
}

TEST(ProofThm41Test, Pef3PlusWithTwoRobotsFails) {
  // The headline negative: the paper's own algorithm, run with only two
  // robots, is defeated (this is why [4] left k=3 necessity open and this
  // paper closed it).
  const Ring ring(10);
  Simulator sim(ring, make_algorithm("pef3+"),
                std::make_unique<StagedProofAdversary>(ring, 0, 3, kPatience),
                {{0, Chirality(true)}, {1, Chirality(true)}});
  sim.run(3000);
  EXPECT_FALSE(analyze_coverage(sim.trace()).perpetual(10));
}

class ProofSweepTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, NodeId>> {};

TEST_P(ProofSweepTest, ConfinementHoldsAcrossSizesAndAnchors) {
  const auto [n, anchor] = GetParam();
  if (anchor >= n) GTEST_SKIP();
  const Ring ring(n);
  Simulator sim(
      ring, make_algorithm("bounce"),
      std::make_unique<StagedProofAdversary>(ring, anchor, 2, kPatience),
      {{anchor, Chirality(true)}});
  sim.run(800);
  EXPECT_LE(analyze_coverage(sim.trace()).visited_node_count, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProofSweepTest,
    ::testing::Combine(::testing::Values(3u, 4u, 7u, 12u),
                       ::testing::Values(0u, 1u, 5u)));

}  // namespace
}  // namespace pef
