// Unit tests for the oblivious schedule library.
#include "dynamic_graph/schedules.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dynamic_graph/markov_schedule.hpp"

namespace pef {
namespace {

TEST(StaticScheduleTest, AllEdgesAlways) {
  const StaticSchedule s(Ring(5));
  for (Time t = 0; t < 20; ++t) {
    EXPECT_TRUE(s.edges_at(t).full());
  }
}

TEST(RecordedScheduleTest, PrefixThenAllPresent) {
  const Ring ring(4);
  EdgeSet round0 = EdgeSet::none(4);
  round0.insert(1);
  EdgeSet round1 = EdgeSet::all(4);
  round1.erase(3);
  const RecordedSchedule s(ring, {round0, round1}, TailRule::kAllPresent);
  EXPECT_EQ(s.edges_at(0), round0);
  EXPECT_EQ(s.edges_at(1), round1);
  EXPECT_TRUE(s.edges_at(2).full());
  EXPECT_TRUE(s.edges_at(1000).full());
}

TEST(RecordedScheduleTest, RepeatLastTail) {
  const Ring ring(3);
  EdgeSet last = EdgeSet::none(3);
  last.insert(0);
  const RecordedSchedule s(ring, {EdgeSet::all(3), last},
                           TailRule::kRepeatLast);
  EXPECT_EQ(s.edges_at(5), last);
  EXPECT_EQ(s.edges_at(500), last);
}

TEST(RecordedScheduleTest, CyclePrefixTail) {
  const Ring ring(3);
  EdgeSet a = EdgeSet::none(3);
  a.insert(0);
  EdgeSet b = EdgeSet::none(3);
  b.insert(1);
  const RecordedSchedule s(ring, {a, b}, TailRule::kCyclePrefix);
  EXPECT_EQ(s.edges_at(2), a);
  EXPECT_EQ(s.edges_at(3), b);
  EXPECT_EQ(s.edges_at(100), a);
  EXPECT_EQ(s.edges_at(101), b);
}

TEST(BernoulliScheduleTest, Deterministic) {
  const BernoulliSchedule a(Ring(6), 0.5, 99);
  const BernoulliSchedule b(Ring(6), 0.5, 99);
  for (Time t = 0; t < 50; ++t) EXPECT_EQ(a.edges_at(t), b.edges_at(t));
}

TEST(BernoulliScheduleTest, ExtremeProbabilities) {
  const BernoulliSchedule never(Ring(5), 0.0, 1);
  const BernoulliSchedule always(Ring(5), 1.0, 1);
  for (Time t = 0; t < 20; ++t) {
    EXPECT_TRUE(never.edges_at(t).empty());
    EXPECT_TRUE(always.edges_at(t).full());
  }
}

TEST(BernoulliScheduleTest, FrequencyMatchesP) {
  const double p = 0.3;
  const BernoulliSchedule s(Ring(8), p, 7);
  std::uint64_t present = 0;
  const Time horizon = 5000;
  for (Time t = 0; t < horizon; ++t) present += s.edges_at(t).size();
  const double freq =
      static_cast<double>(present) / (8.0 * static_cast<double>(horizon));
  EXPECT_NEAR(freq, p, 0.02);
}

TEST(BernoulliScheduleTest, EveryEdgeRecurrent) {
  const BernoulliSchedule s(Ring(6), 0.2, 13);
  for (EdgeId e = 0; e < 6; ++e) {
    Time last_seen = 0;
    bool seen_recently = false;
    for (Time t = 0; t < 2000; ++t) {
      if (s.edges_at(t).contains(e)) {
        last_seen = t;
        seen_recently = true;
      }
    }
    EXPECT_TRUE(seen_recently);
    EXPECT_GT(last_seen, 1000u) << "edge " << e << " not recurrent";
  }
}

TEST(PeriodicScheduleTest, RespectsPattern) {
  const Ring ring(3);
  std::vector<PeriodicSchedule::EdgePattern> patterns{
      {4, 2, 0},  // present at t % 4 in {0, 1}
      {2, 1, 1},  // present at (t+1) % 2 == 0, i.e. odd t
      {1, 1, 0},  // always present
  };
  const PeriodicSchedule s(ring, patterns);
  EXPECT_TRUE(s.edges_at(0).contains(0));
  EXPECT_TRUE(s.edges_at(1).contains(0));
  EXPECT_FALSE(s.edges_at(2).contains(0));
  EXPECT_FALSE(s.edges_at(3).contains(0));
  EXPECT_TRUE(s.edges_at(4).contains(0));
  EXPECT_FALSE(s.edges_at(0).contains(1));
  EXPECT_TRUE(s.edges_at(1).contains(1));
  for (Time t = 0; t < 10; ++t) EXPECT_TRUE(s.edges_at(t).contains(2));
}

TEST(PeriodicScheduleTest, RotatingKeepsMostEdges) {
  const auto s = PeriodicSchedule::rotating(Ring(6), /*period=*/3,
                                            /*duty=*/2);
  for (Time t = 0; t < 30; ++t) {
    // duty/period = 2/3 of edges present on average; at least some present.
    EXPECT_GE(s.edges_at(t).size(), 2u);
  }
}

TEST(TIntervalScheduleTest, AtMostOneEdgeMissing) {
  const TIntervalConnectedSchedule s(Ring(7), 5, 3);
  for (Time t = 0; t < 200; ++t) {
    EXPECT_GE(s.edges_at(t).size(), 6u);
  }
}

TEST(TIntervalScheduleTest, MissingEdgeStableWithinEpoch) {
  const TIntervalConnectedSchedule s(Ring(7), 5, 3);
  for (Time epoch = 0; epoch < 20; ++epoch) {
    const EdgeSet first = s.edges_at(epoch * 5);
    for (Time o = 1; o < 5; ++o) {
      EXPECT_EQ(s.edges_at(epoch * 5 + o), first);
    }
  }
}

TEST(EventualMissingEdgeTest, VanishesForever) {
  auto base = std::make_shared<StaticSchedule>(Ring(5));
  const EventualMissingEdgeSchedule s(base, 2, 10);
  for (Time t = 0; t < 10; ++t) EXPECT_TRUE(s.edges_at(t).contains(2));
  for (Time t = 10; t < 100; ++t) {
    EXPECT_FALSE(s.edges_at(t).contains(2));
    EXPECT_EQ(s.edges_at(t).size(), 4u);
  }
}

TEST(BoundedAbsenceTest, AbsenceRunsAreBounded) {
  const Time max_absence = 4;
  const BoundedAbsenceSchedule s(Ring(5), max_absence, 6, 11);
  for (EdgeId e = 0; e < 5; ++e) {
    Time run = 0;
    for (Time t = 0; t < 3000; ++t) {
      if (s.edges_at(t).contains(e)) {
        run = 0;
      } else {
        ++run;
        EXPECT_LE(run, max_absence) << "edge " << e << " at t=" << t;
      }
    }
  }
}

TEST(BoundedAbsenceTest, RandomAccessMatchesSequential) {
  const BoundedAbsenceSchedule seq(Ring(4), 3, 5, 21);
  const BoundedAbsenceSchedule rnd(Ring(4), 3, 5, 21);
  // Query `rnd` out of order and compare against in-order `seq`.
  std::vector<EdgeSet> expected;
  for (Time t = 0; t < 100; ++t) expected.push_back(seq.edges_at(t));
  for (Time t = 100; t-- > 0;) {
    EXPECT_EQ(rnd.edges_at(t), expected[static_cast<std::size_t>(t)]);
  }
}

TEST(SurgeryScheduleTest, RemovesDuringIntervals) {
  auto base = std::make_shared<StaticSchedule>(Ring(4));
  const SurgerySchedule s(base, {{0, 2, 5}, {1, 4, 4}, {0, 10, 12}});
  EXPECT_TRUE(s.edges_at(1).contains(0));
  for (Time t = 2; t <= 5; ++t) EXPECT_FALSE(s.edges_at(t).contains(0));
  EXPECT_TRUE(s.edges_at(6).contains(0));
  EXPECT_FALSE(s.edges_at(4).contains(1));
  EXPECT_TRUE(s.edges_at(5).contains(1));
  EXPECT_FALSE(s.edges_at(11).contains(0));
  EXPECT_TRUE(s.edges_at(13).contains(0));
}

TEST(SurgeryScheduleTest, InfiniteRemoval) {
  auto base = std::make_shared<StaticSchedule>(Ring(4));
  const SurgerySchedule s(base, {{3, 7, kTimeInfinity}});
  EXPECT_TRUE(s.edges_at(6).contains(3));
  EXPECT_FALSE(s.edges_at(7).contains(3));
  EXPECT_FALSE(s.edges_at(100000).contains(3));
}

// ---------------------------------------------------------------------------
// The word-row plane fillers: edges_into_words must agree bit-for-bit with
// edges_at / edges_into for EVERY family (BatchEngine fills its edge plane
// through them and skips the EdgeSet path entirely), including the default
// fallback (Recorded/Surgery), tail-masked rings (n not a multiple of 64)
// and multi-word rings (n > 64).

TEST(ScheduleWordsTest, EdgesIntoWordsMatchesEdgesAtForEveryFamily) {
  for (const std::uint32_t n : {9u, 70u, 130u}) {
    const Ring ring(n);
    std::vector<SchedulePtr> schedules = {
        std::make_shared<StaticSchedule>(ring),
        std::make_shared<BernoulliSchedule>(ring, 0.4, 7),
        std::make_shared<PeriodicSchedule>(
            PeriodicSchedule::rotating(ring, 5, 3)),
        std::make_shared<TIntervalConnectedSchedule>(ring, 4, 11),
        std::make_shared<BoundedAbsenceSchedule>(ring, 3, 5, 13),
        std::make_shared<EventualMissingEdgeSchedule>(
            std::make_shared<BernoulliSchedule>(ring, 0.8, 3),
            static_cast<EdgeId>(n / 2), 6),
        std::make_shared<MarkovSchedule>(ring, 0.2, 0.4, 17),
        // Default-implementation fallback (no override).
        std::make_shared<SurgerySchedule>(
            std::make_shared<StaticSchedule>(ring),
            std::vector<Removal>{{1, 2, 9}}),
    };
    for (const SchedulePtr& schedule : schedules) {
      SCOPED_TRACE("n=" + std::to_string(n) + " " + schedule->name());
      std::vector<std::uint64_t> row(edge_word_count(n), ~0ULL);
      for (Time t = 0; t < 40; ++t) {
        schedule->edges_into_words(t, row.data());
        EdgeSet from_words(n);
        from_words.assign_words(row.data());
        EXPECT_EQ(from_words, schedule->edges_at(t)) << "t=" << t;
        // Tail bits must stay clear so full()/word compares stay valid.
        EXPECT_TRUE(edge_words_full(row.data(), n) ==
                    schedule->edges_at(t).full());
      }
    }
  }
}

}  // namespace
}  // namespace pef
