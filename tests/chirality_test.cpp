// Unit tests for chirality, views, and configuration snapshots.
#include "robot/chirality.hpp"

#include <gtest/gtest.h>

#include "robot/configuration.hpp"
#include "robot/view.hpp"

namespace pef {
namespace {

TEST(ChiralityTest, DefaultRightIsClockwise) {
  const Chirality c(true);
  EXPECT_EQ(c.to_global(LocalDirection::kRight), GlobalDirection::kClockwise);
  EXPECT_EQ(c.to_global(LocalDirection::kLeft),
            GlobalDirection::kCounterClockwise);
}

TEST(ChiralityTest, FlippedSwapsMapping) {
  const Chirality c(false);
  EXPECT_EQ(c.to_global(LocalDirection::kRight),
            GlobalDirection::kCounterClockwise);
  EXPECT_EQ(c.to_global(LocalDirection::kLeft), GlobalDirection::kClockwise);
}

TEST(ChiralityTest, RoundTrip) {
  for (bool rc : {true, false}) {
    const Chirality c(rc);
    for (const auto local : {LocalDirection::kLeft, LocalDirection::kRight}) {
      EXPECT_EQ(c.to_local(c.to_global(local)), local);
    }
    for (const auto global : {GlobalDirection::kClockwise,
                              GlobalDirection::kCounterClockwise}) {
      EXPECT_EQ(c.to_global(c.to_local(global)), global);
    }
  }
}

TEST(ChiralityTest, FlippedIsInvolution) {
  const Chirality c(true);
  EXPECT_EQ(c.flipped().flipped(), c);
  EXPECT_NE(c.flipped(), c);
}

TEST(ChiralityTest, OppositeChiralityMirrorsGlobal) {
  // Two robots with opposite chirality pointing to the same local direction
  // consider opposite global directions (the Lemma 4.1 symmetry).
  const Chirality a(true);
  const Chirality b = a.flipped();
  for (const auto local : {LocalDirection::kLeft, LocalDirection::kRight}) {
    EXPECT_EQ(a.to_global(local), opposite(b.to_global(local)));
  }
}

TEST(ViewTest, ExistsEdgeAccessor) {
  View v;
  v.exists_edge_ahead = true;
  v.exists_edge_behind = false;
  EXPECT_TRUE(v.exists_edge(true));
  EXPECT_FALSE(v.exists_edge(false));
}

TEST(ConfigurationTest, RobotsOnAndTower) {
  const Ring ring(5);
  std::vector<RobotSnapshot> snaps(3);
  snaps[0].node = 1;
  snaps[1].node = 3;
  snaps[2].node = 1;
  const Configuration gamma(ring, snaps);
  EXPECT_EQ(gamma.robots_on(1), 2u);
  EXPECT_EQ(gamma.robots_on(3), 1u);
  EXPECT_EQ(gamma.robots_on(0), 0u);
  EXPECT_TRUE(gamma.has_tower());
  EXPECT_EQ(gamma.occupied_nodes().size(), 2u);
}

TEST(ConfigurationTest, TowerlessConfiguration) {
  const Ring ring(4);
  std::vector<RobotSnapshot> snaps(2);
  snaps[0].node = 0;
  snaps[1].node = 2;
  const Configuration gamma(ring, snaps);
  EXPECT_FALSE(gamma.has_tower());
}

TEST(ConfigurationTest, RelocateKeepsOccupancyConsistent) {
  const Ring ring(5);
  std::vector<RobotSnapshot> snaps(3);
  snaps[0].node = 0;
  snaps[1].node = 2;
  snaps[2].node = 4;
  Configuration gamma(ring, snaps);
  EXPECT_FALSE(gamma.has_tower());

  gamma.relocate_robot(0, 2);  // forms a tower on node 2
  EXPECT_EQ(gamma.robot(0).node, 2u);
  EXPECT_EQ(gamma.robots_on(2), 2u);
  EXPECT_EQ(gamma.robots_on(0), 0u);
  EXPECT_TRUE(gamma.has_tower());

  gamma.relocate_robot(0, 1);  // dissolves it again
  EXPECT_EQ(gamma.robots_on(2), 1u);
  EXPECT_EQ(gamma.robots_on(1), 1u);
  EXPECT_FALSE(gamma.has_tower());

  gamma.relocate_robot(1, 2);  // no-op relocation must be safe too
  EXPECT_EQ(gamma.robots_on(2), 1u);
  EXPECT_EQ(gamma.occupied_nodes(), (std::vector<NodeId>{1, 2, 4}));

  gamma.set_robot_dir(2, LocalDirection::kRight);
  EXPECT_EQ(gamma.robot(2).dir, LocalDirection::kRight);
}

TEST(ConfigurationTest, ConsideredDirectionUsesChirality) {
  RobotSnapshot s;
  s.dir = LocalDirection::kLeft;
  s.chirality = Chirality(true);
  EXPECT_EQ(s.considered_direction(), GlobalDirection::kCounterClockwise);
  s.chirality = Chirality(false);
  EXPECT_EQ(s.considered_direction(), GlobalDirection::kClockwise);
}

}  // namespace
}  // namespace pef
