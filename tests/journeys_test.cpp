// Unit tests for foremost / shortest / fastest journeys.
#include "dynamic_graph/journeys.hpp"

#include <gtest/gtest.h>

#include "dynamic_graph/schedules.hpp"

namespace pef {
namespace {

TEST(JourneysTest, ForemostOnStaticRingIsDirect) {
  const StaticSchedule s(Ring(8));
  const auto j = foremost_journey(s, 0, 3, 0, 100);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->hop_count(), 3u);
  EXPECT_EQ(j->arrival(), 3u);
  EXPECT_TRUE(is_valid_journey(s, *j));
}

TEST(JourneysTest, TrivialJourneyToSelf) {
  const StaticSchedule s(Ring(5));
  const auto j = foremost_journey(s, 2, 2, 7, 100);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->hop_count(), 0u);
  EXPECT_EQ(j->arrival(), 7u);
  EXPECT_TRUE(is_valid_journey(s, *j));
}

TEST(JourneysTest, ForemostTakesTemporalDetour) {
  // Edge (0,1) missing forever: foremost from 0 to 1 goes the long way.
  auto base = std::make_shared<StaticSchedule>(Ring(6));
  const SurgerySchedule s(base,
                          std::vector<Removal>{{0, 0, kTimeInfinity}});
  const auto j = foremost_journey(s, 0, 1, 0, 100);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->hop_count(), 5u);
  EXPECT_EQ(j->arrival(), 5u);
  EXPECT_TRUE(is_valid_journey(s, *j));
}

TEST(JourneysTest, ShortestWaitsForTheDirectEdge) {
  // Edge (0,1) absent until round 9, present afterwards.  The foremost
  // journey from 0 to 1 circles the long way (5 hops, arrival 5); the
  // shortest waits and crosses directly (1 hop, arrival 10).
  auto base = std::make_shared<StaticSchedule>(Ring(6));
  const SurgerySchedule s(base, std::vector<Removal>{{0, 0, 9}});
  const auto foremost = foremost_journey(s, 0, 1, 0, 100);
  const auto shortest = shortest_journey(s, 0, 1, 0, 100);
  ASSERT_TRUE(foremost.has_value());
  ASSERT_TRUE(shortest.has_value());
  EXPECT_EQ(foremost->hop_count(), 5u);
  EXPECT_EQ(foremost->arrival(), 5u);
  EXPECT_EQ(shortest->hop_count(), 1u);
  EXPECT_EQ(shortest->arrival(), 11u);
  EXPECT_TRUE(is_valid_journey(s, *shortest));
}

TEST(JourneysTest, FastestDepartsLate) {
  // All edges absent for 20 rounds, then static.  The foremost journey
  // departs at its first chance (arrival 22, duration 2 from first move);
  // a journey starting at t=0 cannot move before t=20 anyway, so fastest
  // should achieve duration == hop distance by departing at 20.
  const Ring ring(7);
  std::vector<EdgeSet> blackout(20, EdgeSet::none(7));
  auto rec = std::make_shared<RecordedSchedule>(ring, blackout,
                                                TailRule::kAllPresent);
  const auto fastest = fastest_journey(*rec, 0, 2, 0, 100);
  ASSERT_TRUE(fastest.has_value());
  EXPECT_EQ(fastest->duration(), 2u);
  EXPECT_EQ(fastest->hop_count(), 2u);
  EXPECT_TRUE(is_valid_journey(*rec, *fastest));
}

TEST(JourneysTest, FastestNeverWorseThanForemost) {
  const BernoulliSchedule s(Ring(8), 0.4, 55);
  for (NodeId target : {1u, 3u, 5u}) {
    const auto foremost = foremost_journey(s, 0, target, 0, 400);
    const auto fastest = fastest_journey(s, 0, target, 0, 400);
    ASSERT_TRUE(foremost.has_value());
    ASSERT_TRUE(fastest.has_value());
    EXPECT_LE(fastest->duration(), foremost->duration());
  }
}

TEST(JourneysTest, ShortestNeverMoreHopsThanForemost) {
  const BernoulliSchedule s(Ring(9), 0.5, 77);
  for (NodeId target = 1; target < 9; ++target) {
    const auto foremost = foremost_journey(s, 0, target, 0, 500);
    const auto shortest = shortest_journey(s, 0, target, 0, 500);
    ASSERT_TRUE(foremost.has_value());
    ASSERT_TRUE(shortest.has_value());
    EXPECT_LE(shortest->hop_count(), foremost->hop_count());
    EXPECT_GE(shortest->hop_count(), s.ring().distance(0, target));
    EXPECT_TRUE(is_valid_journey(s, *shortest));
    EXPECT_TRUE(is_valid_journey(s, *foremost));
  }
}

TEST(JourneysTest, UnreachableReturnsNullopt) {
  const Ring ring(5);
  auto none = std::make_shared<RecordedSchedule>(
      ring, std::vector<EdgeSet>(10, EdgeSet::none(5)),
      TailRule::kRepeatLast);
  EXPECT_EQ(foremost_journey(*none, 0, 2, 0, 10), std::nullopt);
  EXPECT_EQ(shortest_journey(*none, 0, 2, 0, 10), std::nullopt);
  EXPECT_EQ(fastest_journey(*none, 0, 2, 0, 10), std::nullopt);
}

TEST(JourneysTest, ValidatorRejectsBrokenJourneys) {
  const StaticSchedule s(Ring(6));
  Journey j;
  j.source = 0;
  j.target = 2;
  j.departure = 0;
  // Wrong chaining: hops from 0 then from 3.
  j.hops.push_back(JourneyHop{0, 0, 0, 1});
  j.hops.push_back(JourneyHop{1, 3, 3, 4});
  EXPECT_FALSE(is_valid_journey(s, j));
  // Right chaining but wrong target.
  j.hops.clear();
  j.hops.push_back(JourneyHop{0, 0, 0, 1});
  EXPECT_FALSE(is_valid_journey(s, j));
  // Time going backwards.
  j.hops.clear();
  j.hops.push_back(JourneyHop{5, 0, 0, 1});
  j.hops.push_back(JourneyHop{5, 1, 1, 2});
  EXPECT_FALSE(is_valid_journey(s, j));
  // Crossing an absent edge.
  auto base = std::make_shared<StaticSchedule>(Ring(6));
  const SurgerySchedule cut(base,
                            std::vector<Removal>{{0, 0, kTimeInfinity}});
  j.hops.clear();
  j.hops.push_back(JourneyHop{0, 0, 0, 1});
  j.hops.push_back(JourneyHop{1, 1, 1, 2});
  EXPECT_FALSE(is_valid_journey(cut, j));
  EXPECT_TRUE(is_valid_journey(s, j));
}

class JourneyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JourneyPropertyTest, AllThreeNotionsAgreeWithValidator) {
  const std::uint64_t seed = GetParam();
  const BernoulliSchedule s(Ring(7), 0.35, seed);
  for (NodeId u = 0; u < 7; ++u) {
    for (NodeId v = 0; v < 7; ++v) {
      const auto fm = foremost_journey(s, u, v, 3, 300);
      const auto sh = shortest_journey(s, u, v, 3, 300);
      ASSERT_TRUE(fm.has_value());
      ASSERT_TRUE(sh.has_value());
      EXPECT_TRUE(is_valid_journey(s, *fm));
      EXPECT_TRUE(is_valid_journey(s, *sh));
      // Foremost is foremost: no journey arrives earlier.
      EXPECT_LE(fm->arrival(), sh->arrival());
      // Shortest is shortest: within the ring's simple-path bound.
      EXPECT_LE(sh->hop_count(), 6u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JourneyPropertyTest,
                         ::testing::Values(1ull, 13ull, 99ull));

}  // namespace
}  // namespace pef
