// Mechanical checks of the intermediate lemmas of Section 3 — the stepping
// stones of Theorem 3.1, observed on real executions rather than assumed.
#include <gtest/gtest.h>

#include "adversary/adversary.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "analysis/towers.hpp"
#include "common/rng.hpp"
#include "dynamic_graph/schedules.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

// Lemma 3.1: if there exists an eventual missing edge, then at least one
// tower is formed.
class Lemma31Test : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma31Test, EventualMissingEdgeForcesTowers) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  const auto n = static_cast<std::uint32_t>(5 + rng.next_below(8));
  const auto missing = static_cast<EdgeId>(rng.next_below(n));
  const Ring ring(n);
  auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
      std::make_shared<StaticSchedule>(ring), missing,
      5 + rng.next_below(20));
  Simulator sim(ring, make_algorithm("pef3+"), make_oblivious(schedule),
                spread_placements(ring, 3));
  sim.run(400 * n);
  EXPECT_GT(analyze_towers(sim.trace()).tower_formation_count, 0u)
      << "n=" << n << " missing=" << missing;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma31Test,
                         ::testing::Range<std::uint64_t>(1, 11));

// Lemma 3.2: if an execution contains no tower, every node is infinitely
// often visited.  (Contrapositive check: tower-free runs of PEF_3+ — e.g.
// all same chirality on a static ring — explore perpetually.)
TEST(Lemma32Test, TowerFreeExecutionsExplore) {
  for (std::uint32_t n : {5u, 8u, 12u}) {
    const Ring ring(n);
    Simulator sim(ring, make_algorithm("pef3+"),
                  make_oblivious(std::make_shared<StaticSchedule>(ring)),
                  spread_placements(ring, 3));
    sim.run(300 * n);
    const auto towers = analyze_towers(sim.trace());
    ASSERT_EQ(towers.tower_formation_count, 0u)
        << "setup was meant to be tower-free";
    EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(n));
  }
}

// Lemma 3.5: no eventual missing edge + towers happen => still explores.
TEST(Lemma35Test, TowersWithoutMissingEdgeStillExplore) {
  // Mixed chirality forces meetings on a fully recurrent (t-interval) ring.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::uint32_t n = 8;
    const Ring ring(n);
    auto schedule =
        std::make_shared<TIntervalConnectedSchedule>(ring, 3, seed);
    std::vector<RobotPlacement> placements{{0, Chirality(true)},
                                           {3, Chirality(false)},
                                           {6, Chirality(true)}};
    Simulator sim(ring, make_algorithm("pef3+"), make_oblivious(schedule),
                  placements);
    sim.run(500 * n);
    const auto towers = analyze_towers(sim.trace());
    EXPECT_GT(towers.tower_formation_count, 0u) << "seed=" << seed;
    EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(n))
        << "seed=" << seed;
  }
}

// Lemma 3.6 (progress): with an eventual missing edge, the set of visited
// nodes keeps growing towards the extremities — operationally, every node
// is visited within a bounded delay once the edge is gone.
TEST(Lemma36Test, ProgressTowardsTheMissingEdge) {
  const std::uint32_t n = 10;
  const Ring ring(n);
  const EdgeId missing = 4;
  auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
      std::make_shared<StaticSchedule>(ring), missing, 10);
  Simulator sim(ring, make_algorithm("pef3+"), make_oblivious(schedule),
                spread_placements(ring, 3));
  sim.run(3000);
  // Every node — including both extremities of the missing edge — is
  // re-visited with a gap bounded well below the horizon.
  const auto coverage = analyze_coverage(sim.trace());
  EXPECT_TRUE(coverage.perpetual(n));
  EXPECT_LE(coverage.max_closed_gap, 6u * n);
}

// Theorem 4.2's key step: any PEF_2 tower on the 3-ring is broken in
// finite time.
TEST(Theorem42Test, PefTwoTowersBreak) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Ring ring(3);
    auto schedule = std::make_shared<BernoulliSchedule>(ring, 0.5, seed);
    Simulator sim(ring, make_algorithm("pef2"), make_oblivious(schedule),
                  {{0, Chirality(true)}, {1, Chirality(false)}});
    sim.run(3000);
    const auto towers = analyze_towers(sim.trace());
    // No tower survives to the horizon and none lasts absurdly long.
    for (const auto& tower : towers.towers) {
      EXPECT_LT(tower.duration(), 200u) << "seed=" << seed;
    }
  }
}

// The paper's Section 3 observation that PEF_3+ towers involve at most two
// robots even at very high densities (k close to n).
TEST(Lemma34DensityTest, HighDensityStillAtMostPairs) {
  const std::uint32_t n = 9;
  const std::uint32_t k = 8;  // k = n - 1, the densest legal configuration
  const Ring ring(n);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto schedule = std::make_shared<BernoulliSchedule>(ring, 0.6, seed);
    Simulator sim(ring, make_algorithm("pef3+"), make_oblivious(schedule),
                  spread_placements(ring, k));
    sim.run(2000);
    const auto towers = analyze_towers(sim.trace());
    EXPECT_TRUE(towers.lemma_3_4_holds) << "seed=" << seed;
    EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(n));
  }
}

}  // namespace
}  // namespace pef
