// Tests for trace serialization and adaptive-adversary replay.
#include "analysis/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "adversary/proof_adversary.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

Simulator make_run(std::uint32_t n, Time horizon) {
  const Ring ring(n);
  Simulator sim(ring, make_algorithm("pef3+"),
                make_oblivious(std::make_shared<BernoulliSchedule>(ring, 0.6,
                                                                   42)),
                spread_placements(ring, 3));
  sim.run(horizon);
  return sim;
}

TEST(TraceIoTest, TraceCsvHasOneRowPerRobotRound) {
  auto sim = make_run(6, 20);
  std::ostringstream out;
  write_trace_csv(out, sim.trace());
  std::size_t lines = 0;
  for (char c : out.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 1u + 20u * 3u);  // header + rounds * robots
  EXPECT_NE(out.str().find("node_before"), std::string::npos);
}

TEST(TraceIoTest, EdgeHistoryRoundTrips) {
  auto sim = make_run(5, 50);
  std::ostringstream out;
  write_edge_history_csv(out, sim.trace());

  std::istringstream in(out.str());
  const auto schedule = read_edge_history_csv(in, Ring(5));
  ASSERT_NE(schedule, nullptr);
  EXPECT_EQ(schedule->prefix_length(), 50u);
  const auto history = sim.trace().edge_history();
  for (Time t = 0; t < 50; ++t) {
    EXPECT_EQ(schedule->edges_at(t), history[static_cast<std::size_t>(t)])
        << "t=" << t;
  }
}

TEST(TraceIoTest, ReadRejectsGarbage) {
  {
    std::istringstream in("");
    EXPECT_EQ(read_edge_history_csv(in, Ring(4)), nullptr);
  }
  {
    std::istringstream in("time,e0,e1,e2,e3\n0,1,1,x,0\n");
    EXPECT_EQ(read_edge_history_csv(in, Ring(4)), nullptr);
  }
  {
    std::istringstream in("time,e0,e1\n0,1\n");  // too few columns
    EXPECT_EQ(read_edge_history_csv(in, Ring(2)), nullptr);
  }
}

TEST(TraceIoTest, AdaptivePrefixReplaysAsOblivious) {
  // Run the staged Theorem 5.1 adversary against bounce, serialize its
  // realized choices, replay them as an oblivious schedule: the same
  // deterministic algorithm is confined again, without any adaptivity.
  const Ring ring(6);
  Simulator adaptive(
      ring, make_algorithm("bounce"),
      std::make_unique<StagedProofAdversary>(ring, 2, 2, /*patience=*/32),
      {{2, Chirality(true)}});
  adaptive.run(500);
  ASSERT_LE(analyze_coverage(adaptive.trace()).visited_node_count, 2u);

  std::ostringstream out;
  write_edge_history_csv(out, adaptive.trace());
  std::istringstream in(out.str());
  const auto replay_schedule = read_edge_history_csv(in, ring);
  ASSERT_NE(replay_schedule, nullptr);

  Simulator replay(ring, make_algorithm("bounce"),
                   make_oblivious(replay_schedule), {{2, Chirality(true)}});
  replay.run(500);
  EXPECT_LE(analyze_coverage(replay.trace()).visited_node_count, 2u);
  // Identical trajectories (determinism).
  for (Time t = 0; t <= 500; t += 25) {
    EXPECT_EQ(replay.trace().position_at(0, t),
              adaptive.trace().position_at(0, t));
  }
}

}  // namespace
}  // namespace pef
