// Tests for the Markov edge dynamics.
#include "dynamic_graph/markov_schedule.hpp"

#include <gtest/gtest.h>

#include "adversary/adversary.hpp"
#include "algorithms/registry.hpp"
#include "analysis/coverage.hpp"
#include "dynamic_graph/properties.hpp"
#include "dynamic_graph/temporal.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

TEST(MarkovTest, Deterministic) {
  const MarkovSchedule a(Ring(6), 0.2, 0.4, 11);
  const MarkovSchedule b(Ring(6), 0.2, 0.4, 11);
  for (Time t = 0; t < 200; ++t) EXPECT_EQ(a.edges_at(t), b.edges_at(t));
}

TEST(MarkovTest, EdgesStartUp) {
  const MarkovSchedule s(Ring(5), 0.3, 0.3, 7);
  EXPECT_TRUE(s.edges_at(0).full());
}

TEST(MarkovTest, RandomAccessMatchesSequential) {
  const MarkovSchedule seq(Ring(4), 0.25, 0.5, 21);
  const MarkovSchedule rnd(Ring(4), 0.25, 0.5, 21);
  std::vector<EdgeSet> expected;
  for (Time t = 0; t < 150; ++t) expected.push_back(seq.edges_at(t));
  for (Time t = 150; t-- > 0;) {
    EXPECT_EQ(rnd.edges_at(t), expected[static_cast<std::size_t>(t)]);
  }
}

TEST(MarkovTest, AvailabilityMatchesStationary) {
  const double p_fail = 0.1, p_recover = 0.3;
  const MarkovSchedule s(Ring(8), p_fail, p_recover, 5);
  std::uint64_t up = 0;
  const Time horizon = 20000;
  for (Time t = 0; t < horizon; ++t) up += s.edges_at(t).size();
  const double availability =
      static_cast<double>(up) / (8.0 * static_cast<double>(horizon));
  EXPECT_NEAR(availability, s.stationary_availability(), 0.02);
  EXPECT_NEAR(s.stationary_availability(), 0.75, 1e-9);
}

TEST(MarkovTest, BurstsLongerThanBernoulli) {
  // With small p_recover, down-runs are long (mean 1/p_recover) — the
  // qualitative difference from iid Bernoulli at equal availability.
  const MarkovSchedule s(Ring(4), 0.05, 0.05, 9);
  Time longest_down = 0;
  Time run = 0;
  for (Time t = 0; t < 20000; ++t) {
    if (s.edges_at(t).contains(0)) {
      run = 0;
    } else {
      longest_down = std::max(longest_down, ++run);
    }
  }
  EXPECT_GT(longest_down, 20u);
}

TEST(MarkovTest, ConnectedOverTimeAudit) {
  const MarkovSchedule s(Ring(6), 0.2, 0.3, 13);
  EXPECT_TRUE(audit_connectivity(s, 3000, 600).connected_over_time);
  EXPECT_TRUE(all_pairs_reachable(s, 0, 2000));
}

TEST(MarkovTest, Pef3PlusExploresMarkovRings) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Ring ring(8);
    auto schedule = std::make_shared<MarkovSchedule>(ring, 0.15, 0.25, seed);
    Simulator sim(ring, make_algorithm("pef3+"), make_oblivious(schedule),
                  spread_placements(ring, 3));
    sim.run(8000);
    EXPECT_TRUE(analyze_coverage(sim.trace()).perpetual(8))
        << "seed=" << seed;
  }
}

}  // namespace
}  // namespace pef
