// Unit tests for sentinel analysis (Lemma 3.7 reporting).
#include "analysis/sentinels.hpp"

#include <gtest/gtest.h>

#include "adversary/adversary.hpp"
#include "algorithms/baselines.hpp"
#include "algorithms/pef3plus.hpp"
#include "analysis/coverage.hpp"
#include "dynamic_graph/schedules.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

TEST(SentinelsTest, NoSentinelsOnStaticRing) {
  const Ring ring(6);
  Simulator sim(ring, std::make_shared<Pef3Plus>(),
                make_oblivious(std::make_shared<StaticSchedule>(ring)),
                spread_placements(ring, 3));
  sim.run(300);
  // No missing edge: robots keep circulating; no extremity is permanently
  // guarded.
  const auto report = analyze_sentinels(sim.trace(), 2);
  EXPECT_FALSE(report.sentinels_formed());
}

TEST(SentinelsTest, Pef3PlusPostsTwoSentinels) {
  const Ring ring(7);
  const EdgeId missing = 4;
  auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
      std::make_shared<StaticSchedule>(ring), missing, 12);
  Simulator sim(ring, std::make_shared<Pef3Plus>(), make_oblivious(schedule),
                spread_placements(ring, 3));
  sim.run(700);
  const auto report = analyze_sentinels(sim.trace(), missing);
  ASSERT_TRUE(report.sentinels_formed());
  EXPECT_GE(*report.formation_time, 12u);  // cannot guard a live edge
  EXPECT_EQ(report.sentinels_at_horizon.size(), 2u);
  EXPECT_EQ(report.explorers_at_horizon.size(), 1u);
  // Sentinels and explorers are disjoint role sets here.
  for (RobotId s : report.sentinels_at_horizon) {
    for (RobotId e : report.explorers_at_horizon) {
      EXPECT_NE(s, e);
    }
  }
}

TEST(SentinelsTest, KeepDirectionCampsButBothOnExtremities) {
  // KeepDirection robots also end up stuck at extremities (they camp), so
  // extremity-guarding alone cannot distinguish them — coverage does: with
  // PEF_3+ exploration continues, with KeepDirection it stops.
  const Ring ring(6);
  const EdgeId missing = 2;
  auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
      std::make_shared<StaticSchedule>(ring), missing, 6);

  Simulator keep(ring, std::make_shared<KeepDirection>(),
                 make_oblivious(schedule), spread_placements(ring, 3));
  keep.run(400);
  EXPECT_FALSE(analyze_coverage(keep.trace()).perpetual(6));

  Simulator pef(ring, std::make_shared<Pef3Plus>(), make_oblivious(schedule),
                spread_placements(ring, 3));
  pef.run(400);
  EXPECT_TRUE(analyze_coverage(pef.trace()).perpetual(6));
}

TEST(SentinelsTest, FormationTimeIsSuffixStart) {
  const Ring ring(5);
  const EdgeId missing = 1;
  auto schedule = std::make_shared<EventualMissingEdgeSchedule>(
      std::make_shared<StaticSchedule>(ring), missing, 8);
  Simulator sim(ring, std::make_shared<Pef3Plus>(), make_oblivious(schedule),
                spread_placements(ring, 3));
  sim.run(500);
  const auto report = analyze_sentinels(sim.trace(), missing);
  ASSERT_TRUE(report.sentinels_formed());
  // From the formation time to the horizon both extremities stay guarded:
  // re-running the check on a later suffix must agree.
  EXPECT_LT(*report.formation_time, 500u);
}

}  // namespace
}  // namespace pef
