// Unit tests for the static ring topology.
#include "dynamic_graph/ring.hpp"

#include <gtest/gtest.h>

namespace pef {
namespace {

TEST(RingTest, BasicCounts) {
  const Ring ring(5);
  EXPECT_EQ(ring.node_count(), 5u);
  EXPECT_EQ(ring.edge_count(), 5u);
}

TEST(RingTest, TwoNodeRingIsMultigraph) {
  const Ring ring(2);
  EXPECT_EQ(ring.node_count(), 2u);
  EXPECT_EQ(ring.edge_count(), 2u);
  // Both edges connect nodes 0 and 1, but they are distinct edges.
  EXPECT_EQ(ring.edge_tail(0), 0u);
  EXPECT_EQ(ring.edge_head(0), 1u);
  EXPECT_EQ(ring.edge_tail(1), 1u);
  EXPECT_EQ(ring.edge_head(1), 0u);
  EXPECT_NE(ring.adjacent_edge(0, GlobalDirection::kClockwise),
            ring.adjacent_edge(0, GlobalDirection::kCounterClockwise));
}

TEST(RingTest, NeighbourWrapsAround) {
  const Ring ring(4);
  EXPECT_EQ(ring.neighbour(3, GlobalDirection::kClockwise), 0u);
  EXPECT_EQ(ring.neighbour(0, GlobalDirection::kCounterClockwise), 3u);
  EXPECT_EQ(ring.neighbour(1, GlobalDirection::kClockwise), 2u);
  EXPECT_EQ(ring.neighbour(2, GlobalDirection::kCounterClockwise), 1u);
}

TEST(RingTest, AdjacentEdgeIdentities) {
  const Ring ring(6);
  for (NodeId u = 0; u < ring.node_count(); ++u) {
    const EdgeId cw = ring.adjacent_edge(u, GlobalDirection::kClockwise);
    EXPECT_EQ(cw, u);
    EXPECT_EQ(ring.edge_tail(cw), u);
    EXPECT_EQ(ring.edge_head(cw),
              ring.neighbour(u, GlobalDirection::kClockwise));
    const EdgeId ccw =
        ring.adjacent_edge(u, GlobalDirection::kCounterClockwise);
    EXPECT_EQ(ring.edge_head(ccw), u);
  }
}

TEST(RingTest, EdgeIncidence) {
  const Ring ring(5);
  EXPECT_TRUE(ring.is_incident(0, 0));
  EXPECT_TRUE(ring.is_incident(0, 1));
  EXPECT_FALSE(ring.is_incident(0, 2));
  EXPECT_TRUE(ring.is_incident(4, 0));  // edge 4 connects 4 and 0
  EXPECT_TRUE(ring.is_incident(4, 4));
}

TEST(RingTest, Distance) {
  const Ring ring(6);
  EXPECT_EQ(ring.distance(0, 0), 0u);
  EXPECT_EQ(ring.distance(0, 1), 1u);
  EXPECT_EQ(ring.distance(0, 3), 3u);  // antipodal
  EXPECT_EQ(ring.distance(0, 5), 1u);  // wraps
  EXPECT_EQ(ring.distance(5, 0), 1u);  // symmetric
  EXPECT_EQ(ring.distance(1, 4), 3u);
}

TEST(RingTest, DirectedDistance) {
  const Ring ring(6);
  EXPECT_EQ(ring.directed_distance(0, 4, GlobalDirection::kClockwise), 4u);
  EXPECT_EQ(ring.directed_distance(0, 4, GlobalDirection::kCounterClockwise),
            2u);
  EXPECT_EQ(ring.directed_distance(4, 0, GlobalDirection::kClockwise), 2u);
  EXPECT_EQ(ring.directed_distance(3, 3, GlobalDirection::kClockwise), 0u);
}

TEST(RingTest, OppositeDirections) {
  EXPECT_EQ(opposite(GlobalDirection::kClockwise),
            GlobalDirection::kCounterClockwise);
  EXPECT_EQ(opposite(opposite(GlobalDirection::kClockwise)),
            GlobalDirection::kClockwise);
  EXPECT_EQ(opposite(LocalDirection::kLeft), LocalDirection::kRight);
}

class RingParamTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RingParamTest, NeighbourAndEdgeConsistency) {
  const Ring ring(GetParam());
  for (NodeId u = 0; u < ring.node_count(); ++u) {
    // Walking cw then ccw returns to u.
    const NodeId v = ring.neighbour(u, GlobalDirection::kClockwise);
    EXPECT_EQ(ring.neighbour(v, GlobalDirection::kCounterClockwise), u);
    // Both endpoints of every adjacent edge are incident to u.
    for (const auto d : {GlobalDirection::kClockwise,
                         GlobalDirection::kCounterClockwise}) {
      EXPECT_TRUE(ring.is_incident(ring.adjacent_edge(u, d), u));
    }
  }
  // Distances are symmetric and at most n/2.
  for (NodeId u = 0; u < ring.node_count(); ++u) {
    for (NodeId v = 0; v < ring.node_count(); ++v) {
      EXPECT_EQ(ring.distance(u, v), ring.distance(v, u));
      EXPECT_LE(ring.distance(u, v), ring.node_count() / 2);
      // Directed distances sum to 0 or n.
      const auto cw = ring.directed_distance(u, v, GlobalDirection::kClockwise);
      const auto ccw =
          ring.directed_distance(u, v, GlobalDirection::kCounterClockwise);
      if (u == v) {
        EXPECT_EQ(cw + ccw, 0u);
      } else {
        EXPECT_EQ(cw + ccw, ring.node_count());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingParamTest,
                         ::testing::Values(2u, 3u, 4u, 5u, 8u, 13u, 64u));

}  // namespace
}  // namespace pef
