// Sweep regression baseline: a small, fully deterministic sweep grid whose
// JSON is checked into tests/baselines/.  Any change to engine semantics,
// seeding, grid enumeration or JSON shape shows up as a diff here — the
// cross-PR tripwire for the whole (algorithm × adversary × model × n × k ×
// seed) pipeline.
//
// To regenerate after an *intentional* change:
//   PEF_UPDATE_BASELINES=1 build/sweep_baseline_test
// then review and commit the diff of tests/baselines/sweep_small.json.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "engine/sweep_runner.hpp"

namespace pef {
namespace {

/// The pinned grid.  Keep it small (it runs in milliseconds) but spanning:
/// both dispatch-relevant algorithm families (memoryless + stateful), an
/// oblivious and a seeded stochastic adversary, and all three execution
/// models.  The same grid is checked in as a spec file at
/// examples/specs/sweep_small.json (sweep_shard_test pins the two equal and
/// shards it through pef_sweep's machinery).
SweepSpec baseline_grid() {
  SweepSpec spec;
  spec.algorithms = {"pef3+", "bounce"};
  spec.adversaries = {adversary_config(AdversaryKind::kStatic),
                      adversary_config(AdversaryKind::kBernoulli,
                                       {{"p", 0.5}})};
  spec.models = {ExecutionModel::kFsync, ExecutionModel::kSsync,
                 ExecutionModel::kAsync};
  spec.ring_sizes = {6, 10};
  spec.robot_counts = {3};
  spec.seeds = {1, 2};
  spec.horizon = 400;
  return spec;
}

/// The same grid on the chain topology (the n-node chain cut from the
/// n-ring) — checked in as examples/specs/sweep_chain_small.json.  Pins the
/// whole chain pipeline: ChainSchedule edge masking, the chain adversary
/// wrapper, and the oblivious batch fast path surviving the rewrap.
SweepSpec chain_grid() {
  SweepSpec spec = baseline_grid();
  spec.topology = Topology::kChain;
  return spec;
}

std::string baseline_path(const std::string& name) {
  return std::string(PEF_BASELINE_DIR) + "/" + name;
}

void expect_matches_golden(const SweepSpec& spec, const std::string& name) {
  const SweepResult result = SweepRunner(2).run(spec);
  const std::string json = result.to_json();
  const std::string path = baseline_path(name);

  if (std::getenv("PEF_UPDATE_BASELINES") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << json << "\n";
    GTEST_SKIP() << "baseline regenerated at " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — regenerate with PEF_UPDATE_BASELINES=1 " << std::flush;
  std::ostringstream golden;
  golden << in.rdbuf();
  std::string expected = golden.str();
  // Tolerate a single trailing newline in the checked-in file.
  if (!expected.empty() && expected.back() == '\n') expected.pop_back();

  EXPECT_EQ(json, expected)
      << "sweep output diverged from tests/baselines/" << name << "; if "
         "the change is intentional, regenerate with PEF_UPDATE_BASELINES=1 "
         "and commit the diff";
}

TEST(SweepBaselineTest, GridMatchesGoldenJson) {
  expect_matches_golden(baseline_grid(), "sweep_small.json");
}

TEST(SweepBaselineTest, ChainGridMatchesGoldenJson) {
  expect_matches_golden(chain_grid(), "sweep_chain_small.json");
}

TEST(SweepBaselineTest, ChainGridDiffersFromRingGrid) {
  // The cut edge must actually change the dynamics: a chain sweep that
  // reproduces the ring sweep byte-for-byte means the topology knob is
  // silently ignored somewhere between the spec and the engine.
  const std::string ring = SweepRunner(2).run(baseline_grid()).to_json();
  const std::string chain = SweepRunner(2).run(chain_grid()).to_json();
  EXPECT_NE(ring, chain);
}

}  // namespace
}  // namespace pef
