// Unit tests for journeys / temporal reachability.
#include "dynamic_graph/temporal.hpp"

#include <gtest/gtest.h>

#include "dynamic_graph/schedules.hpp"

namespace pef {
namespace {

TEST(TemporalTest, StaticRingForemostIsRingDistance) {
  const StaticSchedule s(Ring(8));
  const auto arrivals = foremost_arrivals(s, 0, 0, 100);
  for (NodeId v = 0; v < 8; ++v) {
    ASSERT_TRUE(arrivals[v].has_value());
    EXPECT_EQ(*arrivals[v], s.ring().distance(0, v));
  }
}

TEST(TemporalTest, StartOffsetShiftsArrivals) {
  const StaticSchedule s(Ring(6));
  const auto arrivals = foremost_arrivals(s, 2, 10, 100);
  EXPECT_EQ(*arrivals[2], 10u);
  EXPECT_EQ(*arrivals[3], 11u);
  EXPECT_EQ(*arrivals[5], 13u);
}

TEST(TemporalTest, MissingEdgeForcesLongWay) {
  auto base = std::make_shared<StaticSchedule>(Ring(6));
  // Edge 0 (between nodes 0 and 1) permanently missing: reaching node 1
  // from node 0 requires the 5-hop counter-clockwise journey.
  auto s = std::make_shared<SurgerySchedule>(
      base, std::vector<Removal>{{0, 0, kTimeInfinity}});
  EXPECT_EQ(foremost_arrival(*s, 0, 1, 0, 100), std::optional<Time>(5));
  EXPECT_EQ(foremost_arrival(*s, 0, 5, 0, 100), std::optional<Time>(1));
}

TEST(TemporalTest, UnreachableWithinDeadline) {
  auto base = std::make_shared<StaticSchedule>(Ring(10));
  auto s = std::make_shared<SurgerySchedule>(
      base, std::vector<Removal>{{0, 0, kTimeInfinity}});
  // Node 1 is 9 hops the long way; a deadline of 5 rounds is not enough.
  EXPECT_EQ(foremost_arrival(*s, 0, 1, 0, 5), std::nullopt);
}

TEST(TemporalTest, WaitingHelps) {
  const Ring ring(4);
  // All edges absent for 10 rounds, then everything present.
  std::vector<EdgeSet> rounds(10, EdgeSet::none(4));
  const auto s = std::make_shared<RecordedSchedule>(ring, rounds,
                                                    TailRule::kAllPresent);
  EXPECT_EQ(foremost_arrival(*s, 0, 2, 0, 100), std::optional<Time>(12));
}

TEST(TemporalTest, AllPairsReachableOnRecurrentRing) {
  const BernoulliSchedule s(Ring(6), 0.5, 23);
  EXPECT_TRUE(all_pairs_reachable(s, 0, 500));
  EXPECT_TRUE(all_pairs_reachable(s, 100, 600));
}

TEST(TemporalTest, TemporalDiameterStatic) {
  const StaticSchedule s(Ring(8));
  EXPECT_EQ(temporal_diameter(s, 0, 100), std::optional<Time>(4));
}

TEST(TemporalTest, TemporalDiameterGrowsWithSparsity) {
  const BernoulliSchedule dense(Ring(8), 0.9, 5);
  const BernoulliSchedule sparse(Ring(8), 0.2, 5);
  const auto d_dense = temporal_diameter(dense, 0, 2000);
  const auto d_sparse = temporal_diameter(sparse, 0, 2000);
  ASSERT_TRUE(d_dense.has_value());
  ASSERT_TRUE(d_sparse.has_value());
  EXPECT_LT(*d_dense, *d_sparse);
}

TEST(TemporalTest, TwoNodeMultigraphRing) {
  const StaticSchedule s(Ring(2));
  EXPECT_EQ(foremost_arrival(s, 0, 1, 0, 10), std::optional<Time>(1));
  EXPECT_EQ(temporal_diameter(s, 0, 10), std::optional<Time>(1));
}

class TemporalParamTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, double>> {};

TEST_P(TemporalParamTest, ConnectedOverTimeImpliesReachability) {
  const auto [n, p] = GetParam();
  const BernoulliSchedule s(Ring(n), p, 31 + n);
  // With generous deadlines, every pair is reachable from several starting
  // times (the executable meaning of connected-over-time).
  for (Time start : {Time{0}, Time{50}, Time{123}}) {
    EXPECT_TRUE(all_pairs_reachable(s, start, start + 200 * n))
        << "n=" << n << " p=" << p << " start=" << start;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TemporalParamTest,
    ::testing::Combine(::testing::Values(3u, 5u, 9u),
                       ::testing::Values(0.15, 0.5, 0.9)));

}  // namespace
}  // namespace pef
