// Lightweight always-on invariant checks.
//
// Simulation correctness depends on model invariants (e.g. a robot never
// stands on an out-of-range node); violating them silently would corrupt
// every downstream measurement, so checks stay on in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pef::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "PEF_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace pef::detail

#define PEF_CHECK(expr)                                      \
  do {                                                       \
    if (!(expr)) {                                           \
      ::pef::detail::check_failed(#expr, __FILE__, __LINE__); \
    }                                                        \
  } while (false)

#define PEF_CHECK_MSG(expr, msg)                            \
  do {                                                      \
    if (!(expr)) {                                          \
      ::pef::detail::check_failed(msg, __FILE__, __LINE__); \
    }                                                       \
  } while (false)
