#include "common/bench_report.hpp"

#include <fstream>
#include <iostream>

namespace pef {
namespace {

std::string encode_string(const std::string& value) {
  return "\"" + JsonWriter::escape(value) + "\"";
}

}  // namespace

BenchReport::BenchReport(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

BenchReport::Cell& BenchReport::Cell::param(const std::string& key,
                                            const std::string& value) {
  params_.emplace_back(key, encode_string(value));
  return *this;
}

BenchReport::Cell& BenchReport::Cell::param(const std::string& key,
                                            std::uint64_t value) {
  params_.emplace_back(key, std::to_string(value));
  return *this;
}

BenchReport::Cell& BenchReport::Cell::param(const std::string& key,
                                            double value) {
  params_.emplace_back(key, JsonWriter::format_number(value));
  return *this;
}

BenchReport::Cell& BenchReport::Cell::metric(const std::string& key,
                                             double value) {
  metrics_.emplace_back(key, JsonWriter::format_number(value));
  return *this;
}

BenchReport::Cell& BenchReport::Cell::metric(const std::string& key,
                                             std::uint64_t value) {
  metrics_.emplace_back(key, std::to_string(value));
  return *this;
}

BenchReport::Cell& BenchReport::Cell::metric(const std::string& key,
                                             bool value) {
  metrics_.emplace_back(key, value ? "true" : "false");
  return *this;
}

BenchReport::Cell& BenchReport::add_cell() {
  cells_.emplace_back();
  return cells_.back();
}

void BenchReport::summary(const std::string& key, double value) {
  summary_.emplace_back(key, JsonWriter::format_number(value));
}

void BenchReport::summary(const std::string& key, std::uint64_t value) {
  summary_.emplace_back(key, std::to_string(value));
}

void BenchReport::summary(const std::string& key, const std::string& value) {
  summary_.emplace_back(key, encode_string(value));
}

void BenchReport::summary(const std::string& key, bool value) {
  summary_.emplace_back(key, value ? "true" : "false");
}

void BenchReport::write() const {
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();

  std::string out = "{\"bench\":" + encode_string(name_);
  out += ",\"wall_seconds\":" + JsonWriter::format_number(wall);
  out += ",\"total_rounds\":" + std::to_string(total_rounds_);
  out += ",\"rounds_per_sec\":" +
         JsonWriter::format_number(
             wall > 0 ? static_cast<double>(total_rounds_) / wall : 0);
  for (const auto& [key, value] : summary_) {
    out += "," + encode_string(key) + ":" + value;
  }
  out += ",\"cells\":[";
  bool first_cell = true;
  for (const Cell& cell : cells_) {
    if (!first_cell) out += ",";
    first_cell = false;
    out += "{\"params\":{";
    bool first = true;
    for (const auto& [key, value] : cell.params_) {
      if (!first) out += ",";
      first = false;
      out += encode_string(key) + ":" + value;
    }
    out += "},\"metrics\":{";
    first = true;
    for (const auto& [key, value] : cell.metrics_) {
      if (!first) out += ",";
      first = false;
      out += encode_string(key) + ":" + value;
    }
    out += "}}";
  }
  out += "]}";

  const std::string path = "BENCH_" + name_ + ".json";
  std::ofstream file(path);
  if (file.is_open()) {
    file << out << '\n';
    std::cout << "\n[" << path << " written]\n";
  }
}

}  // namespace pef
