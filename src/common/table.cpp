#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace pef {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(Row{std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void TextTable::add_separator() { pending_separator_ = true; }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto print_line = [&] {
    os << '+';
    for (std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << s;
      for (std::size_t i = s.size(); i < widths[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  print_line();
  print_cells(header_);
  print_line();
  for (const Row& row : rows_) {
    if (row.separator_before) print_line();
    print_cells(row.cells);
  }
  print_line();
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string format_ratio(double num, double den) {
  if (den == 0.0) return "n/a";
  return format_double(num / den, 2) + "x";
}

std::string format_bool(bool v) { return v ? "yes" : "no"; }

}  // namespace pef
