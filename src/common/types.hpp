// Fundamental identifier and time types shared by every module.
//
// The paper models time as discrete rounds mapped to the naturals; nodes and
// edges of the underlying ring are anonymous but, as external observers (and
// as the adversary), we index them.  Robots are anonymous to each other but
// the simulator indexes them for bookkeeping.
#pragma once

#include <cstdint>
#include <limits>

namespace pef {

/// Index of a node in the underlying ring, in [0, n).
using NodeId = std::uint32_t;

/// Index of an edge in the underlying ring.  Edge `e` connects node `e` and
/// node `(e + 1) % n` (for the 2-node multigraph ring, edges 0 and 1 both
/// connect nodes 0 and 1 but are distinct edges).
using EdgeId = std::uint32_t;

/// Discrete round counter (the paper's time domain is N).
using Time = std::uint64_t;

/// Index of a robot, only used by the simulator / adversary; robots cannot
/// observe each other's identities (anonymity).
using RobotId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max();

/// Global (external-observer) direction around the ring.  Clockwise moves
/// from node `u` to node `(u + 1) % n`.
enum class GlobalDirection : std::uint8_t {
  kClockwise = 0,
  kCounterClockwise = 1,
};

/// Local direction as labelled by one robot's private chirality.  The paper's
/// robots each consistently label their two ports `left` / `right`, but two
/// robots need not agree (no common sense of direction).
enum class LocalDirection : std::uint8_t {
  kLeft = 0,
  kRight = 1,
};

[[nodiscard]] constexpr GlobalDirection opposite(GlobalDirection d) {
  return d == GlobalDirection::kClockwise ? GlobalDirection::kCounterClockwise
                                          : GlobalDirection::kClockwise;
}

[[nodiscard]] constexpr LocalDirection opposite(LocalDirection d) {
  return d == LocalDirection::kLeft ? LocalDirection::kRight
                                    : LocalDirection::kLeft;
}

[[nodiscard]] constexpr const char* to_string(GlobalDirection d) {
  return d == GlobalDirection::kClockwise ? "cw" : "ccw";
}

[[nodiscard]] constexpr const char* to_string(LocalDirection d) {
  return d == LocalDirection::kLeft ? "left" : "right";
}

}  // namespace pef
