// Minimal CSV writer so benches can dump raw rows next to the pretty tables
// (useful for re-plotting the reproduced figures).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace pef {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.  If the file cannot
  /// be opened the writer silently becomes a no-op (benches must not fail
  /// because of a read-only working directory).
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);

  [[nodiscard]] bool ok() const { return out_.is_open(); }

 private:
  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t columns_ = 0;
};

}  // namespace pef
