#include "common/args.hpp"

#include <cstdio>
#include <cstdlib>

namespace pef {

ArgParser::ArgParser(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n",
                   token.c_str());
      std::exit(2);
    }
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      entries_.push_back(
          Entry{token.substr(0, eq), token.substr(eq + 1), false});
      continue;
    }
    // "--key value" when the next token is not itself a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      entries_.push_back(Entry{token, std::string(argv[i + 1]), false});
      ++i;
    } else {
      entries_.push_back(Entry{token, std::nullopt, false});
    }
  }
}

bool ArgParser::has(const std::string& key) {
  for (Entry& e : entries_) {
    if (e.key == key) {
      e.used = true;
      return true;
    }
  }
  return false;
}

std::optional<std::string> ArgParser::raw(const std::string& key) {
  for (Entry& e : entries_) {
    if (e.key == key) {
      e.used = true;
      return e.value;
    }
  }
  return std::nullopt;
}

std::string ArgParser::get_string(const std::string& key,
                                  const std::string& fallback) {
  const auto v = raw(key);
  if (!v) return fallback;
  if (!v->empty()) return *v;
  std::fprintf(stderr, "flag %s needs a value\n", key.c_str());
  std::exit(2);
}

std::uint64_t ArgParser::get_u64(const std::string& key,
                                 std::uint64_t fallback) {
  const auto v = raw(key);
  if (!v || v->empty()) {
    if (!v) return fallback;
    std::fprintf(stderr, "flag %s needs a value\n", key.c_str());
    std::exit(2);
  }
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(v->c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    std::fprintf(stderr, "flag %s: '%s' is not an integer\n", key.c_str(),
                 v->c_str());
    std::exit(2);
  }
  return parsed;
}

std::uint32_t ArgParser::get_u32(const std::string& key,
                                 std::uint32_t fallback) {
  return static_cast<std::uint32_t>(get_u64(key, fallback));
}

double ArgParser::get_double(const std::string& key, double fallback) {
  const auto v = raw(key);
  if (!v || v->empty()) {
    if (!v) return fallback;
    std::fprintf(stderr, "flag %s needs a value\n", key.c_str());
    std::exit(2);
  }
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == nullptr || *end != '\0') {
    std::fprintf(stderr, "flag %s: '%s' is not a number\n", key.c_str(),
                 v->c_str());
    std::exit(2);
  }
  return parsed;
}

std::vector<std::string> ArgParser::unused() const {
  std::vector<std::string> out;
  for (const Entry& e : entries_) {
    if (!e.used) out.push_back(e.key);
  }
  return out;
}

void ArgParser::check_unused() const {
  const std::vector<std::string> stray = unused();
  if (stray.empty()) return;
  for (const std::string& key : stray) {
    std::fprintf(stderr, "unknown flag %s (see --help)\n", key.c_str());
  }
  std::exit(2);
}

}  // namespace pef
