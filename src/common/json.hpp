// Minimal JSON layer for machine-readable bench / sweep / spec files.
//
//   JsonWriter — streaming writer (the BENCH_*.json files tracked across
//                PRs).  Deterministic by construction: keys are emitted in
//                call order, doubles are formatted with a fixed shortest-
//                round-trip format, and no timestamps or pointers ever leak
//                in — byte-identical inputs give byte-identical files.
//   JsonValue / parse_json — a small DOM + recursive-descent parser, the
//                read side of the scenario/sweep spec API (core/spec.hpp)
//                and of pef_sweep's shard merge.  Integers that fit an
//                unsigned 64-bit value are kept exact (seeds and
//                effective_seeds exceed 2^53, where double would round).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pef {

class JsonWriter {
 public:
  JsonWriter() { out_.reserve(256); }

  // Containers.  `key` variants are for use inside an open object.
  void begin_object();
  void begin_object(const std::string& key);
  void end_object();
  void begin_array();
  void begin_array(const std::string& key);
  void end_array();

  // Scalar members (inside an object).
  void field(const std::string& key, const std::string& value);
  void field(const std::string& key, const char* value);
  void field(const std::string& key, bool value);
  void field(const std::string& key, double value);
  void field(const std::string& key, std::int64_t value);
  void field(const std::string& key, std::uint64_t value);
  void field(const std::string& key, std::uint32_t value) {
    field(key, static_cast<std::uint64_t>(value));
  }
  /// null member (e.g. "cover_time": null when never covered).
  void null_field(const std::string& key);
  /// Pre-serialized member: `raw_json` must itself be valid JSON (used to
  /// embed sub-documents produced by another JsonWriter).
  void raw_field(const std::string& key, const std::string& raw_json);

  // Scalar array elements.
  void element(const std::string& value);
  void element(double value);
  void element(std::uint64_t value);
  /// null element (e.g. a missing cell in a partial shard merge).
  void element_null();

  [[nodiscard]] const std::string& str() const { return out_; }

  /// Writes str() to `path`; returns false (without throwing) when the file
  /// cannot be opened, so benches survive read-only working directories.
  bool write_file(const std::string& path) const;

  [[nodiscard]] static std::string escape(const std::string& raw);
  [[nodiscard]] static std::string format_number(double value);

 private:
  void comma();
  void key_prefix(const std::string& key);

  std::string out_;
  std::vector<bool> needs_comma_;
};

/// One parsed JSON value.  Object member order is preserved (specs
/// serialize in a canonical order, and keeping it makes parse∘serialize an
/// identity on canonical documents).
struct JsonValue {
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Type type = Type::kNull;
  bool bool_value = false;
  /// Every number is available as a double; when the token was a
  /// non-negative integer that fits 64 bits, `uint_value` holds it exactly
  /// and `is_uint` is set (doubles round above 2^53 — seeds don't).
  double number_value = 0;
  std::uint64_t uint_value = 0;
  bool is_uint = false;
  std::string string_value;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  [[nodiscard]] bool is_null() const { return type == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type == Type::kObject; }

  /// Member lookup (objects only); nullptr when absent.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
};

[[nodiscard]] const char* to_string(JsonValue::Type type);

/// Parse a complete JSON document.  On failure returns nullopt and, when
/// `error` is non-null, fills it with a "line L, column C: what went wrong"
/// message.  Trailing garbage after the document is an error.
[[nodiscard]] std::optional<JsonValue> parse_json(const std::string& text,
                                                  std::string* error);

/// Read + parse a JSON file.  Distinguishes unreadable files from malformed
/// content in the error message.
[[nodiscard]] std::optional<JsonValue> parse_json_file(const std::string& path,
                                                       std::string* error);

/// Read the whole file as bytes — "-" reads stdin to EOF.  Returns nullopt
/// (with a message) on unreadable paths.  The raw-text sibling of
/// parse_json_input for callers that forward the document verbatim.
[[nodiscard]] std::optional<std::string> read_text_input(
    const std::string& path, std::string* error);

/// parse_json_file with the tool convention that path "-" means stdin, so
/// specs pipe straight into the CLIs.  Errors are prefixed "stdin: " or
/// with the path.
[[nodiscard]] std::optional<JsonValue> parse_json_input(
    const std::string& path, std::string* error);

}  // namespace pef
