// Minimal streaming JSON writer for machine-readable bench / sweep output
// (the BENCH_*.json files tracked across PRs).
//
// Deterministic by construction: keys are emitted in call order, doubles are
// formatted with a fixed shortest-round-trip format, and no timestamps or
// pointers ever leak in — byte-identical inputs give byte-identical files.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pef {

class JsonWriter {
 public:
  JsonWriter() { out_.reserve(256); }

  // Containers.  `key` variants are for use inside an open object.
  void begin_object();
  void begin_object(const std::string& key);
  void end_object();
  void begin_array();
  void begin_array(const std::string& key);
  void end_array();

  // Scalar members (inside an object).
  void field(const std::string& key, const std::string& value);
  void field(const std::string& key, const char* value);
  void field(const std::string& key, bool value);
  void field(const std::string& key, double value);
  void field(const std::string& key, std::int64_t value);
  void field(const std::string& key, std::uint64_t value);
  void field(const std::string& key, std::uint32_t value) {
    field(key, static_cast<std::uint64_t>(value));
  }
  /// null member (e.g. "cover_time": null when never covered).
  void null_field(const std::string& key);

  // Scalar array elements.
  void element(const std::string& value);
  void element(double value);
  void element(std::uint64_t value);

  [[nodiscard]] const std::string& str() const { return out_; }

  /// Writes str() to `path`; returns false (without throwing) when the file
  /// cannot be opened, so benches survive read-only working directories.
  bool write_file(const std::string& path) const;

  [[nodiscard]] static std::string escape(const std::string& raw);
  [[nodiscard]] static std::string format_number(double value);

 private:
  void comma();
  void key_prefix(const std::string& key);

  std::string out_;
  std::vector<bool> needs_comma_;
};

}  // namespace pef
