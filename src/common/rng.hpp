// Deterministic seeded randomness.
//
// Every stochastic component (Bernoulli edge schedules, random-walk baseline,
// random placements) draws from an explicitly seeded generator so that every
// experiment row in EXPERIMENTS.md is exactly reproducible.  We provide
// SplitMix64 (for seed derivation) and xoshiro256** (for streams), both
// public-domain algorithms by Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>

namespace pef {

/// SplitMix64: used to expand a single 64-bit seed into independent
/// sub-seeds (one per edge, per robot, per trial...).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse stream generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p`.
  bool next_bool(double p) { return next_double() < p; }

  /// Uniform integer in [0, bound) using Lemire's rejection-free-ish method.
  std::uint64_t next_below(std::uint64_t bound);

  /// Raw generator state, exposed so deterministic-replay layers (cycle
  /// detection) can fingerprint and compare streams exactly.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const {
    return state_;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derive a sub-seed for a named stream: deterministic mixing of a master
/// seed with up to three stream coordinates (e.g. trial, edge, robot).
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master, std::uint64_t a,
                                        std::uint64_t b = 0,
                                        std::uint64_t c = 0);

}  // namespace pef
