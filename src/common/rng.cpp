#include "common/rng.hpp"

namespace pef {

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Multiply-shift with a rejection loop to remove modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t a,
                          std::uint64_t b, std::uint64_t c) {
  SplitMix64 sm(master);
  std::uint64_t s = sm.next();
  s ^= a * 0x9e3779b97f4a7c15ULL;
  SplitMix64 sm2(s);
  s = sm2.next() ^ (b * 0xbf58476d1ce4e5b9ULL);
  SplitMix64 sm3(s);
  return sm3.next() ^ (c * 0x94d049bb133111ebULL);
}

}  // namespace pef
