// Tiny command-line argument parser for the CLI tool and the examples.
//
//   ArgParser args(argc, argv);
//   const auto n = args.get_u32("--nodes", 10);
//   const auto algo = args.get_string("--algorithm", "pef3+");
//   if (args.has("--help")) { ... }
//   args.check_unused();   // reject typos
//
// Accepts both "--key value" and "--key=value" forms.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pef {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// Flag presence (also marks it used).
  [[nodiscard]] bool has(const std::string& key);

  /// Typed getters with defaults; abort with a message on malformed values.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback);
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback);
  [[nodiscard]] std::uint32_t get_u32(const std::string& key,
                                      std::uint32_t fallback);
  [[nodiscard]] double get_double(const std::string& key, double fallback);

  /// Keys that were provided but never consumed (useful to reject typos).
  [[nodiscard]] std::vector<std::string> unused() const;

  /// Reject typos loudly: if any flag was provided but never consumed,
  /// print each one to stderr and exit(2).  Call after the last get_*/has.
  void check_unused() const;

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  [[nodiscard]] std::optional<std::string> raw(const std::string& key);

  struct Entry {
    std::string key;
    std::optional<std::string> value;
    bool used = false;
  };
  std::string program_;
  std::vector<Entry> entries_;
};

}  // namespace pef
