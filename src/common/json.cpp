#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace pef {

void JsonWriter::comma() {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

void JsonWriter::key_prefix(const std::string& key) {
  comma();
  out_ += '"';
  out_ += escape(key);
  out_ += "\":";
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::begin_object(const std::string& key) {
  key_prefix(key);
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::end_object() {
  needs_comma_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  comma();
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::begin_array(const std::string& key) {
  key_prefix(key);
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::end_array() {
  needs_comma_.pop_back();
  out_ += ']';
}

void JsonWriter::field(const std::string& key, const std::string& value) {
  key_prefix(key);
  out_ += '"';
  out_ += escape(value);
  out_ += '"';
}

void JsonWriter::field(const std::string& key, const char* value) {
  field(key, std::string(value));
}

void JsonWriter::field(const std::string& key, bool value) {
  key_prefix(key);
  out_ += value ? "true" : "false";
}

void JsonWriter::field(const std::string& key, double value) {
  key_prefix(key);
  out_ += format_number(value);
}

void JsonWriter::field(const std::string& key, std::int64_t value) {
  key_prefix(key);
  out_ += std::to_string(value);
}

void JsonWriter::field(const std::string& key, std::uint64_t value) {
  key_prefix(key);
  out_ += std::to_string(value);
}

void JsonWriter::null_field(const std::string& key) {
  key_prefix(key);
  out_ += "null";
}

void JsonWriter::element(const std::string& value) {
  comma();
  out_ += '"';
  out_ += escape(value);
  out_ += '"';
}

void JsonWriter::element(double value) {
  comma();
  out_ += format_number(value);
}

void JsonWriter::element(std::uint64_t value) {
  comma();
  out_ += std::to_string(value);
}

bool JsonWriter::write_file(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) return false;
  file << out_ << '\n';
  return file.good();
}

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::format_number(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  // Use the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char probe[32];
    std::snprintf(probe, sizeof probe, "%.*g", precision, value);
    double parsed = 0;
    std::sscanf(probe, "%lf", &parsed);
    if (parsed == value) return probe;
  }
  return buf;
}

}  // namespace pef
