#include "common/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

namespace pef {

void JsonWriter::comma() {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

void JsonWriter::key_prefix(const std::string& key) {
  comma();
  out_ += '"';
  out_ += escape(key);
  out_ += "\":";
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::begin_object(const std::string& key) {
  key_prefix(key);
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::end_object() {
  needs_comma_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  comma();
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::begin_array(const std::string& key) {
  key_prefix(key);
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::end_array() {
  needs_comma_.pop_back();
  out_ += ']';
}

void JsonWriter::field(const std::string& key, const std::string& value) {
  key_prefix(key);
  out_ += '"';
  out_ += escape(value);
  out_ += '"';
}

void JsonWriter::field(const std::string& key, const char* value) {
  field(key, std::string(value));
}

void JsonWriter::field(const std::string& key, bool value) {
  key_prefix(key);
  out_ += value ? "true" : "false";
}

void JsonWriter::field(const std::string& key, double value) {
  key_prefix(key);
  out_ += format_number(value);
}

void JsonWriter::field(const std::string& key, std::int64_t value) {
  key_prefix(key);
  out_ += std::to_string(value);
}

void JsonWriter::field(const std::string& key, std::uint64_t value) {
  key_prefix(key);
  out_ += std::to_string(value);
}

void JsonWriter::null_field(const std::string& key) {
  key_prefix(key);
  out_ += "null";
}

void JsonWriter::raw_field(const std::string& key,
                           const std::string& raw_json) {
  key_prefix(key);
  out_ += raw_json;
}

void JsonWriter::element(const std::string& value) {
  comma();
  out_ += '"';
  out_ += escape(value);
  out_ += '"';
}

void JsonWriter::element(double value) {
  comma();
  out_ += format_number(value);
}

void JsonWriter::element(std::uint64_t value) {
  comma();
  out_ += std::to_string(value);
}

void JsonWriter::element_null() {
  comma();
  out_ += "null";
}

bool JsonWriter::write_file(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) return false;
  file << out_ << '\n';
  return file.good();
}

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::format_number(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  // Use the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char probe[32];
    std::snprintf(probe, sizeof probe, "%.*g", precision, value);
    double parsed = 0;
    std::sscanf(probe, "%lf", &parsed);
    if (parsed == value) return probe;
  }
  return buf;
}

// ---------------------------------------------------------------------------
// Parsing

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

const char* to_string(JsonValue::Type type) {
  switch (type) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return "a boolean";
    case JsonValue::Type::kNumber: return "a number";
    case JsonValue::Type::kString: return "a string";
    case JsonValue::Type::kArray: return "an array";
    case JsonValue::Type::kObject: return "an object";
  }
  return "?";
}

namespace {

/// Recursive-descent JSON parser.  Depth-capped so malformed deeply nested
/// input cannot blow the stack; errors carry line/column.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue value;
    if (!parse_value(value, 0)) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("unexpected trailing content after the JSON document");
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool fail(const std::string& what) {
    if (!error_.empty()) return false;  // keep the innermost error
    std::size_t line = 1, column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    std::ostringstream out;
    out << "line " << line << ", column " << column << ": " << what;
    error_ = out.str();
    return false;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting deeper than 64 levels");
    skip_whitespace();
    if (at_end()) return fail("unexpected end of input (expected a value)");
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        out.type = JsonValue::Type::kString;
        return parse_string(out.string_value);
      }
      case 't':
      case 'f': return parse_bool(out);
      case 'n': return parse_null(out);
      default: return parse_number(out);
    }
  }

  bool parse_literal(const char* literal) {
    const std::size_t n = std::string::traits_type::length(literal);
    if (text_.compare(pos_, n, literal) != 0) {
      return fail(std::string("invalid literal (expected \"") + literal +
                  "\")");
    }
    pos_ += n;
    return true;
  }

  bool parse_bool(JsonValue& out) {
    out.type = JsonValue::Type::kBool;
    if (peek() == 't') {
      out.bool_value = true;
      return parse_literal("true");
    }
    out.bool_value = false;
    return parse_literal("false");
  }

  bool parse_null(JsonValue& out) {
    out.type = JsonValue::Type::kNull;
    return parse_literal("null");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    bool digits = false;
    while (!at_end()) {
      const char c = peek();
      const bool number_char = (c >= '0' && c <= '9') || c == '.' ||
                               c == 'e' || c == 'E' || c == '-' || c == '+';
      if (!number_char) break;
      if (c >= '0' && c <= '9') digits = true;
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (!digits) {
      pos_ = start;
      return fail("expected a value (got '" +
                  std::string(1, text_[start]) + "')");
    }
    out.type = JsonValue::Type::kNumber;
    errno = 0;
    char* end = nullptr;
    out.number_value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || errno == ERANGE) {
      pos_ = start;
      return fail("malformed number '" + token + "'");
    }
    // Plain non-negative integer tokens stay exact in uint_value (doubles
    // round above 2^53; seeds and effective_seeds live up there).
    if (token.find_first_not_of("0123456789") == std::string::npos) {
      errno = 0;
      const std::uint64_t exact = std::strtoull(token.c_str(), &end, 10);
      if (end != nullptr && *end == '\0' && errno != ERANGE) {
        out.uint_value = exact;
        out.is_uint = true;
      }
    }
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (!at_end()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (at_end()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return fail("truncated \\u escape in string");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("invalid hex digit in \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode (specs are ASCII in practice; escapes below 0x20
          // are what the writer emits).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return fail(std::string("unknown escape '\\") + esc +
                      "' in string");
      }
    }
    return fail("unterminated string");
  }

  bool parse_array(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue item;
      if (!parse_value(item, depth + 1)) return false;
      out.items.push_back(std::move(item));
      skip_whitespace();
      if (at_end()) return fail("unterminated array (expected ',' or ']')");
      const char c = text_[pos_++];
      if (c == ']') return true;
      if (c != ',') {
        --pos_;
        return fail("expected ',' or ']' in array");
      }
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_whitespace();
      if (at_end() || peek() != '"') {
        return fail("expected a quoted member name");
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_whitespace();
      if (at_end() || text_[pos_] != ':') {
        return fail("expected ':' after member name \"" + key + "\"");
      }
      ++pos_;
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skip_whitespace();
      if (at_end()) return fail("unterminated object (expected ',' or '}')");
      const char c = text_[pos_++];
      if (c == '}') return true;
      if (c != ',') {
        --pos_;
        return fail("expected ',' or '}' in object");
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> parse_json(const std::string& text,
                                    std::string* error) {
  return JsonParser(text).parse(error);
}

std::optional<JsonValue> parse_json_file(const std::string& path,
                                         std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::string parse_error;
  auto value = parse_json(buffer.str(), &parse_error);
  if (!value && error != nullptr) *error = path + ": " + parse_error;
  return value;
}

std::optional<std::string> read_text_input(const std::string& path,
                                           std::string* error) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    if (std::cin.bad()) {
      if (error != nullptr) *error = "cannot read stdin";
      return std::nullopt;
    }
    return buffer.str();
  }
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

std::optional<JsonValue> parse_json_input(const std::string& path,
                                          std::string* error) {
  if (path != "-") return parse_json_file(path, error);
  const auto text = read_text_input(path, error);
  if (!text) return std::nullopt;
  std::string parse_error;
  auto value = parse_json(*text, &parse_error);
  if (!value && error != nullptr) *error = "stdin: " + parse_error;
  return value;
}

}  // namespace pef
