// Plain-text table rendering for bench binaries.
//
// Every bench prints paper-shaped rows (like TABLE 1 of the paper); this
// tiny formatter keeps the output aligned and grep-friendly.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pef {

/// Column-aligned text table.  Usage:
///   TextTable t({"robots", "ring size", "verdict"});
///   t.add_row({"3+", ">= 4", "Possible"});
///   t.print(std::cout);
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal separator line before the next row.
  void add_separator();

  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

/// Format helpers used across benches.
[[nodiscard]] std::string format_double(double v, int precision = 2);
[[nodiscard]] std::string format_ratio(double num, double den);
[[nodiscard]] std::string format_bool(bool v);

}  // namespace pef
