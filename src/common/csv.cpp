#include "common/csv.hpp"

namespace pef {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (out_.is_open()) add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (!out_.is_open()) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace pef
