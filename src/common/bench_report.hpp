// Standardized machine-readable bench output.
//
// Every bench_* emits one BENCH_<name>.json next to its pretty tables so the
// performance and correctness trajectory is tracked across PRs in a uniform
// shape: a list of cells (each = one parameter point with its metrics) plus
// overall wall-time and throughput.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"

namespace pef {

class BenchReport {
 public:
  /// `name` without the BENCH_/.json decoration, e.g. "scaling".
  explicit BenchReport(std::string name);

  /// One parameter point.  `params` are (key, value) strings identifying the
  /// cell; metrics are added on the returned handle.
  class Cell {
   public:
    Cell& param(const std::string& key, const std::string& value);
    Cell& param(const std::string& key, std::uint64_t value);
    Cell& param(const std::string& key, double value);
    Cell& metric(const std::string& key, double value);
    Cell& metric(const std::string& key, std::uint64_t value);
    Cell& metric(const std::string& key, bool value);

   private:
    friend class BenchReport;
    std::vector<std::pair<std::string, std::string>> params_;
    std::vector<std::pair<std::string, std::string>> metrics_;  // pre-encoded
  };

  Cell& add_cell();

  /// Top-level free-form metrics (e.g. the Simulator-vs-FastEngine speedup).
  void summary(const std::string& key, double value);
  void summary(const std::string& key, std::uint64_t value);
  void summary(const std::string& key, const std::string& value);
  void summary(const std::string& key, bool value);

  /// Total rounds simulated by the bench (drives rounds_per_sec).
  void add_rounds(std::uint64_t rounds) { total_rounds_ += rounds; }

  /// Writes BENCH_<name>.json into the working directory; prints a one-line
  /// confirmation to stdout.  Wall-time is measured from construction.
  void write() const;

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<Cell> cells_;
  std::vector<std::pair<std::string, std::string>> summary_;  // pre-encoded
  std::uint64_t total_rounds_ = 0;
};

}  // namespace pef
