// Bit-set over ring edges: the set E_t of edges present at one round.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace pef {

class EdgeSet {
 public:
  EdgeSet() = default;
  explicit EdgeSet(std::uint32_t edge_count)
      : edge_count_(edge_count), words_((edge_count + 63) / 64, 0) {}

  /// Full set (all edges present).
  [[nodiscard]] static EdgeSet all(std::uint32_t edge_count) {
    EdgeSet s(edge_count);
    for (std::uint32_t e = 0; e < edge_count; ++e) s.insert(e);
    return s;
  }

  /// Empty set (no edges present).
  [[nodiscard]] static EdgeSet none(std::uint32_t edge_count) {
    return EdgeSet(edge_count);
  }

  [[nodiscard]] std::uint32_t edge_count() const { return edge_count_; }

  [[nodiscard]] bool contains(EdgeId e) const {
    PEF_CHECK(e < edge_count_);
    return (words_[e >> 6] >> (e & 63)) & 1ULL;
  }

  /// `contains` without the bounds check, for engine hot loops that already
  /// guarantee `e < edge_count()` structurally (Ring::adjacent_edge can only
  /// produce valid ids).
  [[nodiscard]] bool contains_unchecked(EdgeId e) const {
    return (words_[e >> 6] >> (e & 63)) & 1ULL;
  }

  /// Raw bit words, one bit per edge, little-endian within each word.
  /// BatchEngine caches these pointers so its replica-stride inner loops
  /// test edge presence without re-resolving the vector each iteration;
  /// valid until the set is resized or assigned a differently-sized set.
  [[nodiscard]] const std::uint64_t* words() const { return words_.data(); }

  /// Overwrite this set's bits from a raw word row in the words() layout
  /// ((edge_count + 63) / 64 words; bits past edge_count are masked off).
  /// Cold-path bridge from engine word planes back to EdgeSet (e.g. trace
  /// reconstruction); no reallocation.
  void assign_words(const std::uint64_t* words) {
    if (words_.empty()) return;
    const std::size_t last = words_.size() - 1;
    for (std::size_t i = 0; i < last; ++i) words_[i] = words[i];
    const std::uint32_t tail_bits =
        edge_count_ - static_cast<std::uint32_t>(last) * 64;
    const std::uint64_t tail_mask =
        tail_bits == 64 ? ~0ULL : (1ULL << tail_bits) - 1;
    words_[last] = words[last] & tail_mask;
  }

  void insert(EdgeId e) {
    PEF_CHECK(e < edge_count_);
    words_[e >> 6] |= (1ULL << (e & 63));
  }

  void erase(EdgeId e) {
    PEF_CHECK(e < edge_count_);
    words_[e >> 6] &= ~(1ULL << (e & 63));
  }

  void set(EdgeId e, bool present) { present ? insert(e) : erase(e); }

  /// Make every edge present / absent in place (no reallocation) — lets
  /// schedules refill a caller-owned scratch set instead of returning a
  /// fresh heap allocation per round.
  void fill() {
    if (words_.empty()) return;
    const std::size_t last = words_.size() - 1;
    for (std::size_t i = 0; i < last; ++i) words_[i] = ~0ULL;
    const std::uint32_t tail_bits =
        edge_count_ - static_cast<std::uint32_t>(last) * 64;
    words_[last] = tail_bits == 64 ? ~0ULL : (1ULL << tail_bits) - 1;
  }
  void clear() {
    for (std::uint64_t& w : words_) w = 0;
  }

  [[nodiscard]] std::uint32_t size() const {
    std::uint32_t total = 0;
    for (std::uint64_t w : words_) {
      total += static_cast<std::uint32_t>(__builtin_popcountll(w));
    }
    return total;
  }

  /// Early-exits on the first word that disagrees instead of popcounting
  /// the whole set.
  [[nodiscard]] bool empty() const {
    for (std::uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  [[nodiscard]] bool full() const {
    if (edge_count_ == 0) return true;
    const std::size_t last = words_.size() - 1;
    for (std::size_t i = 0; i < last; ++i) {
      if (words_[i] != ~0ULL) return false;
    }
    const std::uint32_t tail_bits = edge_count_ - static_cast<std::uint32_t>(last) * 64;
    const std::uint64_t tail_mask =
        tail_bits == 64 ? ~0ULL : (1ULL << tail_bits) - 1;
    return words_[last] == tail_mask;
  }

  /// Edges present in this set, ascending.
  [[nodiscard]] std::vector<EdgeId> to_vector() const {
    std::vector<EdgeId> out;
    out.reserve(size());
    for (EdgeId e = 0; e < edge_count_; ++e) {
      if (contains(e)) out.push_back(e);
    }
    return out;
  }

  /// Set union / intersection / difference (operands must be same size).
  EdgeSet& operator|=(const EdgeSet& o);
  EdgeSet& operator&=(const EdgeSet& o);
  EdgeSet& operator-=(const EdgeSet& o);

  friend EdgeSet operator|(EdgeSet a, const EdgeSet& b) { return a |= b; }
  friend EdgeSet operator&(EdgeSet a, const EdgeSet& b) { return a &= b; }
  friend EdgeSet operator-(EdgeSet a, const EdgeSet& b) { return a -= b; }

  friend bool operator==(const EdgeSet&, const EdgeSet&) = default;

  /// "{0, 2, 5}" — for traces and test failure messages.
  [[nodiscard]] std::string to_string() const;

 private:
  std::uint32_t edge_count_ = 0;
  std::vector<std::uint64_t> words_;
};

// ---------------------------------------------------------------------------
// Raw word-row helpers — the EdgeSet bit layout applied to rows of an
// engine-owned contiguous plane (BatchEngine keeps one edge-word row per
// replica; schedules fill rows in place via EdgeSchedule::edges_into_words).

/// Words per row for `edge_count` edges (the words() layout).
[[nodiscard]] constexpr std::uint32_t edge_word_count(
    std::uint32_t edge_count) {
  return (edge_count + 63) / 64;
}

/// Make every edge present in a raw word row (tail bits cleared).
inline void fill_edge_words(std::uint64_t* words, std::uint32_t edge_count) {
  const std::uint32_t count = edge_word_count(edge_count);
  if (count == 0) return;
  for (std::uint32_t i = 0; i + 1 < count; ++i) words[i] = ~0ULL;
  const std::uint32_t tail_bits = edge_count - (count - 1) * 64;
  words[count - 1] = tail_bits == 64 ? ~0ULL : (1ULL << tail_bits) - 1;
}

/// True iff a raw word row holds the full edge set.
[[nodiscard]] inline bool edge_words_full(const std::uint64_t* words,
                                          std::uint32_t edge_count) {
  const std::uint32_t count = edge_word_count(edge_count);
  if (count == 0) return true;
  for (std::uint32_t i = 0; i + 1 < count; ++i) {
    if (words[i] != ~0ULL) return false;
  }
  const std::uint32_t tail_bits = edge_count - (count - 1) * 64;
  const std::uint64_t tail_mask =
      tail_bits == 64 ? ~0ULL : (1ULL << tail_bits) - 1;
  return words[count - 1] == tail_mask;
}

}  // namespace pef
