#include "dynamic_graph/temporal.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pef {

std::vector<std::optional<Time>> foremost_arrivals(
    const EdgeSchedule& schedule, NodeId source, Time start, Time deadline) {
  const Ring& ring = schedule.ring();
  PEF_CHECK(ring.is_valid_node(source));
  PEF_CHECK(start <= deadline);

  std::vector<std::optional<Time>> arrival(ring.node_count());
  arrival[source] = start;

  // Synchronous BFS over the time-expanded graph: at each round every
  // already-reached node relaxes its present adjacent edges.  A ring has
  // two adjacent edges per node, so each round costs O(n).
  std::vector<bool> reached(ring.node_count(), false);
  reached[source] = true;
  std::uint32_t reached_count = 1;

  for (Time t = start; t < deadline && reached_count < ring.node_count();
       ++t) {
    const EdgeSet present = schedule.edges_at(t);
    std::vector<NodeId> newly;
    for (NodeId u = 0; u < ring.node_count(); ++u) {
      if (!reached[u]) continue;
      for (const GlobalDirection d :
           {GlobalDirection::kClockwise, GlobalDirection::kCounterClockwise}) {
        const EdgeId e = ring.adjacent_edge(u, d);
        if (!present.contains(e)) continue;
        const NodeId v = ring.neighbour(u, d);
        if (!reached[v]) {
          newly.push_back(v);
          arrival[v] = t + 1;
        }
      }
    }
    for (NodeId v : newly) {
      if (!reached[v]) {
        reached[v] = true;
        ++reached_count;
      }
    }
  }
  return arrival;
}

std::optional<Time> foremost_arrival(const EdgeSchedule& schedule,
                                     NodeId source, NodeId target, Time start,
                                     Time deadline) {
  return foremost_arrivals(schedule, source, start, deadline)[target];
}

bool all_pairs_reachable(const EdgeSchedule& schedule, Time start,
                         Time deadline) {
  const Ring& ring = schedule.ring();
  for (NodeId u = 0; u < ring.node_count(); ++u) {
    const auto arrivals = foremost_arrivals(schedule, u, start, deadline);
    for (NodeId v = 0; v < ring.node_count(); ++v) {
      if (!arrivals[v]) return false;
    }
  }
  return true;
}

std::optional<Time> temporal_diameter(const EdgeSchedule& schedule, Time start,
                                      Time deadline) {
  const Ring& ring = schedule.ring();
  Time worst = 0;
  for (NodeId u = 0; u < ring.node_count(); ++u) {
    const auto arrivals = foremost_arrivals(schedule, u, start, deadline);
    for (NodeId v = 0; v < ring.node_count(); ++v) {
      if (!arrivals[v]) return std::nullopt;
      worst = std::max(worst, *arrivals[v] - start);
    }
  }
  return worst;
}

}  // namespace pef
