// Temporal reachability: journeys (temporal paths) in an evolving ring.
//
// A journey from u to v starting at time t is a sequence of edge traversals
// at non-decreasing times, each edge present at its traversal round, with
// (in our synchronous model) one hop per round and waiting allowed.  The
// *foremost* journey minimises arrival time (Xuan, Ferreira, Jarry [23]).
//
// This module is the computational counterpart of the connected-over-time
// definition: "each node is infinitely often reachable from any other one
// through a journey".  Tests use it to validate the schedule library
// (e.g. a Bernoulli ring admits journeys between all pairs from all start
// times within the window) and benches use it to report the adversary's
// achieved "temporal diameter".
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"
#include "dynamic_graph/schedule.hpp"

namespace pef {

/// Earliest arrival times from `source` starting at time `start`, computed
/// over the window [start, deadline).  Entry v is nullopt when no journey
/// reaches v before `deadline`.
[[nodiscard]] std::vector<std::optional<Time>> foremost_arrivals(
    const EdgeSchedule& schedule, NodeId source, Time start, Time deadline);

/// Earliest arrival at a single target; nullopt if unreachable in-window.
[[nodiscard]] std::optional<Time> foremost_arrival(
    const EdgeSchedule& schedule, NodeId source, NodeId target, Time start,
    Time deadline);

/// True iff every node is reachable from every node by a journey starting
/// at `start` and arriving before `deadline`.
[[nodiscard]] bool all_pairs_reachable(const EdgeSchedule& schedule,
                                       Time start, Time deadline);

/// The temporal diameter from `start`: the max over ordered pairs (u, v) of
/// the foremost arrival delay; nullopt if some pair is unreachable
/// in-window.
[[nodiscard]] std::optional<Time> temporal_diameter(
    const EdgeSchedule& schedule, Time start, Time deadline);

}  // namespace pef
