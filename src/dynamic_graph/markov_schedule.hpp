// MarkovSchedule: per-edge two-state (up/down) Markov dynamics.
//
// A more realistic dynamics family than iid Bernoulli: each edge is an
// independent two-state Markov chain with failure probability `p_fail`
// (up -> down per round) and recovery probability `p_recover`
// (down -> up per round).  Expected up-run length is 1/p_fail and down-run
// length 1/p_recover, so the stationary availability is
// p_recover / (p_fail + p_recover).  With p_recover > 0 every edge is
// recurrent with probability 1: connected-over-time.
//
// Used by the stress battery and by the transit/patrol examples as the
// "links fail and get repaired" model.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dynamic_graph/schedule.hpp"

namespace pef {

class MarkovSchedule final : public EdgeSchedule {
 public:
  MarkovSchedule(Ring ring, double p_fail, double p_recover,
                 std::uint64_t seed);

  [[nodiscard]] const Ring& ring() const override { return ring_; }
  [[nodiscard]] EdgeSet edges_at(Time t) const override;
  void edges_into(Time t, EdgeSet& out) const override;
  void edges_into_words(Time t, std::uint64_t* words) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double stationary_availability() const {
    return p_recover_ / (p_fail_ + p_recover_);
  }

 private:
  [[nodiscard]] bool edge_present(EdgeId e, Time t) const;

  Ring ring_;
  double p_fail_;
  double p_recover_;
  std::uint64_t seed_;

  // Lazily extended per-edge state history (single-threaded, like the rest
  // of the library).  states_[e][t] = up?
  struct EdgeChain {
    std::vector<bool> states;
    Xoshiro256 rng{0};
    bool initialised = false;
  };
  mutable std::vector<EdgeChain> chains_;
};

}  // namespace pef
