#include "dynamic_graph/markov_schedule.hpp"

#include "common/check.hpp"
#include "common/table.hpp"

namespace pef {

MarkovSchedule::MarkovSchedule(Ring ring, double p_fail, double p_recover,
                               std::uint64_t seed)
    : ring_(ring),
      p_fail_(p_fail),
      p_recover_(p_recover),
      seed_(seed),
      chains_(ring.edge_count()) {
  PEF_CHECK(p_fail >= 0.0 && p_fail <= 1.0);
  PEF_CHECK(p_recover > 0.0 && p_recover <= 1.0);  // recurrence needs > 0
}

bool MarkovSchedule::edge_present(EdgeId e, Time t) const {
  EdgeChain& chain = chains_[e];
  if (!chain.initialised) {
    chain.rng = Xoshiro256(derive_seed(seed_, e, 0x3a7c0f));
    chain.states.push_back(true);  // edges start up
    chain.initialised = true;
  }
  while (chain.states.size() <= t) {
    const bool up = chain.states.back();
    const bool next =
        up ? !chain.rng.next_bool(p_fail_) : chain.rng.next_bool(p_recover_);
    chain.states.push_back(next);
  }
  return chain.states[static_cast<std::size_t>(t)];
}

EdgeSet MarkovSchedule::edges_at(Time t) const {
  EdgeSet s(ring_.edge_count());
  for (EdgeId e = 0; e < ring_.edge_count(); ++e) {
    if (edge_present(e, t)) s.insert(e);
  }
  return s;
}

void MarkovSchedule::edges_into(Time t, EdgeSet& out) const {
  out.clear();
  for (EdgeId e = 0; e < ring_.edge_count(); ++e) {
    if (edge_present(e, t)) out.insert(e);
  }
}

void MarkovSchedule::edges_into_words(Time t, std::uint64_t* words) const {
  const std::uint32_t count = edge_word_count(ring_.edge_count());
  for (std::uint32_t i = 0; i < count; ++i) words[i] = 0;
  for (EdgeId e = 0; e < ring_.edge_count(); ++e) {
    if (edge_present(e, t)) words[e >> 6] |= 1ULL << (e & 63);
  }
}

std::string MarkovSchedule::name() const {
  return "markov(fail=" + format_double(p_fail_, 2) +
         ",recover=" + format_double(p_recover_, 2) + ")";
}

}  // namespace pef
