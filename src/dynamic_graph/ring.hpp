// Static ring topology (the underlying graph U_G of every evolving graph we
// consider).
//
// Nodes are 0..n-1.  Edge `e` connects node `e` and node `(e + 1) % n`; we
// call traversal from `e` towards `(e + 1) % n` the *clockwise* global
// direction (an external-observer convention — robots cannot see it).
//
// The paper's 2-node ring needs care: with simple graphs it degenerates to a
// 2-node chain (one edge); as a multigraph the two nodes are linked by two
// distinct bidirectional edges.  Our indexing handles both: for n == 2 the
// formula yields edge 0 = (0,1) and edge 1 = (1,0), two distinct parallel
// edges, and a chain is simply a ring whose schedule never presents edge 1.
#pragma once

#include <cstdint>
#include <string>

#include "common/check.hpp"
#include "common/types.hpp"

namespace pef {

class Ring {
 public:
  /// A ring with `n >= 2` nodes and `n` edges (parallel edges when n == 2).
  explicit Ring(std::uint32_t n) : n_(n) { PEF_CHECK(n >= 2); }

  [[nodiscard]] std::uint32_t node_count() const { return n_; }
  [[nodiscard]] std::uint32_t edge_count() const { return n_; }

  [[nodiscard]] bool is_valid_node(NodeId u) const { return u < n_; }
  [[nodiscard]] bool is_valid_edge(EdgeId e) const { return e < n_; }

  /// Neighbour of `u` in a global direction.
  [[nodiscard]] NodeId neighbour(NodeId u, GlobalDirection d) const {
    PEF_CHECK(is_valid_node(u));
    return d == GlobalDirection::kClockwise ? (u + 1) % n_
                                            : (u + n_ - 1) % n_;
  }

  /// The edge adjacent to `u` in a global direction.
  [[nodiscard]] EdgeId adjacent_edge(NodeId u, GlobalDirection d) const {
    PEF_CHECK(is_valid_node(u));
    return d == GlobalDirection::kClockwise ? u : (u + n_ - 1) % n_;
  }

  /// Clockwise endpoint pair of an edge: `e` connects tail() -> head()
  /// in the clockwise direction.
  [[nodiscard]] NodeId edge_tail(EdgeId e) const {
    PEF_CHECK(is_valid_edge(e));
    return e;
  }
  [[nodiscard]] NodeId edge_head(EdgeId e) const {
    PEF_CHECK(is_valid_edge(e));
    return (e + 1) % n_;
  }

  /// Whether `e` is incident to node `u`.
  [[nodiscard]] bool is_incident(EdgeId e, NodeId u) const {
    return edge_tail(e) == u || edge_head(e) == u;
  }

  /// Ring (hop) distance between two nodes in the underlying graph.
  [[nodiscard]] std::uint32_t distance(NodeId u, NodeId v) const {
    PEF_CHECK(is_valid_node(u) && is_valid_node(v));
    const std::uint32_t cw = (v + n_ - u) % n_;
    if (cw == 0) return 0;
    const std::uint32_t ccw = n_ - cw;
    return cw < ccw ? cw : ccw;
  }

  /// Directed distance from `u` to `v` walking only in direction `d`.
  [[nodiscard]] std::uint32_t directed_distance(NodeId u, NodeId v,
                                                GlobalDirection d) const {
    PEF_CHECK(is_valid_node(u) && is_valid_node(v));
    return d == GlobalDirection::kClockwise ? (v + n_ - u) % n_
                                            : (u + n_ - v) % n_;
  }

  [[nodiscard]] std::string to_string() const {
    return "Ring(n=" + std::to_string(n_) + ")";
  }

  friend bool operator==(const Ring&, const Ring&) = default;

 private:
  std::uint32_t n_;
};

}  // namespace pef
