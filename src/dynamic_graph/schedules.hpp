// The oblivious schedule library.
//
// Each class below produces one family of connected-over-time (or
// deliberately *not* connected-over-time, for negative tests) evolving rings:
//
//   StaticSchedule               every edge present at every round
//   RecordedSchedule             explicit per-round edge sets (+ tail rule)
//   BernoulliSchedule            iid presence with probability p (recurrent
//                                with probability 1 => connected-over-time)
//   PeriodicSchedule             edge e present iff t mod period_e < duty_e
//                                (the "public transport" model of [16, 19])
//   TIntervalConnectedSchedule   at most one edge missing at any time; the
//                                missing edge changes every T rounds
//                                (the model of [10, 20], T-interval
//                                connectivity on a ring)
//   EventualMissingEdgeSchedule  one designated edge vanishes forever after
//                                a given round; others follow a base
//                                schedule (the hardest legal single-trace
//                                behaviour for PEF_3+: forces sentinels)
//   BoundedAbsenceSchedule       random absences, but never more than A
//                                consecutive rounds per edge
//   SurgerySchedule              G \ {(e_1, tau_1), ..., (e_k, tau_k)} — the
//                                proof-surgery operator of Section 2.1
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "dynamic_graph/schedule.hpp"

namespace pef {

// ---------------------------------------------------------------------------
// StaticSchedule

class StaticSchedule final : public EdgeSchedule {
 public:
  explicit StaticSchedule(Ring ring) : ring_(ring) {}

  [[nodiscard]] const Ring& ring() const override { return ring_; }
  [[nodiscard]] EdgeSet edges_at(Time) const override {
    return EdgeSet::all(ring_.edge_count());
  }
  void edges_into(Time, EdgeSet& out) const override { out.fill(); }
  void edges_into_words(Time, std::uint64_t* words) const override {
    fill_edge_words(words, ring_.edge_count());
  }
  [[nodiscard]] bool time_invariant() const override { return true; }
  [[nodiscard]] std::string name() const override { return "static"; }

 private:
  Ring ring_;
};

// ---------------------------------------------------------------------------
// RecordedSchedule

/// What a RecordedSchedule returns after its explicit prefix is exhausted.
enum class TailRule : std::uint8_t {
  kAllPresent,   // every edge present after the prefix
  kRepeatLast,   // repeat the final explicit set forever
  kCyclePrefix,  // loop the prefix periodically
};

class RecordedSchedule final : public EdgeSchedule {
 public:
  RecordedSchedule(Ring ring, std::vector<EdgeSet> rounds,
                   TailRule tail = TailRule::kAllPresent);

  [[nodiscard]] const Ring& ring() const override { return ring_; }
  [[nodiscard]] EdgeSet edges_at(Time t) const override;
  [[nodiscard]] ScheduleRecurrence recurrence() const override {
    // kAllPresent / kRepeatLast hold one fixed set once the prefix ends;
    // kCyclePrefix is periodic from round 0 with the prefix as its period.
    const Time prefix = static_cast<Time>(rounds_.size());
    if (tail_ == TailRule::kCyclePrefix) {
      return {prefix == 0 ? Time{1} : prefix, Time{0}};
    }
    return {Time{1}, prefix};
  }
  [[nodiscard]] std::string name() const override { return "recorded"; }

  [[nodiscard]] std::size_t prefix_length() const { return rounds_.size(); }

 private:
  Ring ring_;
  std::vector<EdgeSet> rounds_;
  TailRule tail_;
};

// ---------------------------------------------------------------------------
// BernoulliSchedule

class BernoulliSchedule final : public EdgeSchedule {
 public:
  /// Each edge is present at each round independently with probability `p`.
  BernoulliSchedule(Ring ring, double p, std::uint64_t seed);

  [[nodiscard]] const Ring& ring() const override { return ring_; }
  [[nodiscard]] EdgeSet edges_at(Time t) const override;
  void edges_into(Time t, EdgeSet& out) const override;
  void edges_into_words(Time t, std::uint64_t* words) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double presence_probability() const { return p_; }

 private:
  Ring ring_;
  double p_;
  std::uint64_t seed_;
};

// ---------------------------------------------------------------------------
// PeriodicSchedule

class PeriodicSchedule final : public EdgeSchedule {
 public:
  struct EdgePattern {
    std::uint32_t period = 1;  // > 0
    std::uint32_t duty = 1;    // present iff (t + phase) % period < duty
    std::uint32_t phase = 0;
  };

  PeriodicSchedule(Ring ring, std::vector<EdgePattern> patterns);

  /// Uniform pattern for every edge, with a per-edge phase shift so the
  /// absent edge "rotates" around the ring (a simple transit-line model).
  static PeriodicSchedule rotating(Ring ring, std::uint32_t period,
                                   std::uint32_t duty);

  [[nodiscard]] const Ring& ring() const override { return ring_; }
  [[nodiscard]] EdgeSet edges_at(Time t) const override;
  void edges_into(Time t, EdgeSet& out) const override;
  void edges_into_words(Time t, std::uint64_t* words) const override;
  [[nodiscard]] ScheduleRecurrence recurrence() const override {
    Time period = 1;
    for (const EdgePattern& pattern : patterns_) {
      period = combine_recurrence_periods(period, pattern.period);
      if (period == 0) break;  // lcm overflowed: report unknown
    }
    return {period, Time{0}};
  }
  [[nodiscard]] std::string name() const override { return "periodic"; }

 private:
  Ring ring_;
  std::vector<EdgePattern> patterns_;
};

// ---------------------------------------------------------------------------
// TIntervalConnectedSchedule

class TIntervalConnectedSchedule final : public EdgeSchedule {
 public:
  /// At every round exactly one edge may be absent; which edge (or none) is
  /// redrawn uniformly every `interval` rounds from `seed`.  The resulting
  /// graph is connected at every instant (ring minus one edge is a chain)
  /// and every edge is recurrent with probability 1.
  TIntervalConnectedSchedule(Ring ring, Time interval, std::uint64_t seed);

  [[nodiscard]] const Ring& ring() const override { return ring_; }
  [[nodiscard]] EdgeSet edges_at(Time t) const override;
  void edges_into(Time t, EdgeSet& out) const override;
  void edges_into_words(Time t, std::uint64_t* words) const override;
  [[nodiscard]] std::string name() const override;

 private:
  Ring ring_;
  Time interval_;
  std::uint64_t seed_;
};

// ---------------------------------------------------------------------------
// EventualMissingEdgeSchedule

class EventualMissingEdgeSchedule final : public EdgeSchedule {
 public:
  /// `missing_edge` follows `base` before `vanish_time` and is absent forever
  /// afterwards; all other edges follow `base`.  If `base` is
  /// connected-over-time then so is the result (a ring minus one edge is a
  /// connected chain).
  EventualMissingEdgeSchedule(SchedulePtr base, EdgeId missing_edge,
                              Time vanish_time);

  [[nodiscard]] const Ring& ring() const override { return base_->ring(); }
  [[nodiscard]] EdgeSet edges_at(Time t) const override;
  void edges_into(Time t, EdgeSet& out) const override;
  void edges_into_words(Time t, std::uint64_t* words) const override;
  [[nodiscard]] ScheduleRecurrence recurrence() const override {
    // After the vanish the overlay is constant, so the base's periodicity
    // carries through once both tails are in effect.
    const ScheduleRecurrence base = base_->recurrence();
    return {base.period, std::max(base.start, vanish_time_)};
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] EdgeId missing_edge() const { return missing_edge_; }
  [[nodiscard]] Time vanish_time() const { return vanish_time_; }

 private:
  SchedulePtr base_;
  EdgeId missing_edge_;
  Time vanish_time_;
};

// ---------------------------------------------------------------------------
// BoundedAbsenceSchedule

class BoundedAbsenceSchedule final : public EdgeSchedule {
 public:
  /// Each edge alternates presence runs and absence runs; absence runs are
  /// uniform in [1, max_absence], presence runs uniform in [1, max_presence].
  /// Guarantees every edge is recurrent (connected-over-time by construction).
  BoundedAbsenceSchedule(Ring ring, Time max_absence, Time max_presence,
                         std::uint64_t seed);

  [[nodiscard]] const Ring& ring() const override { return ring_; }
  [[nodiscard]] EdgeSet edges_at(Time t) const override;
  void edges_into(Time t, EdgeSet& out) const override;
  void edges_into_words(Time t, std::uint64_t* words) const override;
  [[nodiscard]] std::string name() const override;

 private:
  [[nodiscard]] bool edge_present(EdgeId e, Time t) const;

  Ring ring_;
  Time max_absence_;
  Time max_presence_;
  std::uint64_t seed_;

  // Lazily-extended run-length decoding per edge.  Runs alternate
  // present/absent starting with present; `boundaries_[e][i]` is the first
  // round of run i+1 (cumulative).  Not thread-safe (the whole library is
  // single-threaded by design; benches parallelise across processes).
  struct EdgeRuns {
    std::vector<Time> boundaries;
    Xoshiro256 rng{0};
    bool initialised = false;
  };
  mutable std::vector<EdgeRuns> runs_;
};

// ---------------------------------------------------------------------------
// SurgerySchedule

/// A half-open-interval edge removal: edge `edge` absent during
/// [from, to] (inclusive bounds, as in the paper's (e, tau) notation).
struct Removal {
  EdgeId edge = kInvalidEdge;
  Time from = 0;
  Time to = 0;  // inclusive; use kTimeInfinity for "forever after `from`"
};

class SurgerySchedule final : public EdgeSchedule {
 public:
  /// The paper's G \ {(e_1, tau_1), ...} operator: `base` with each listed
  /// edge forced absent during its listed interval(s).
  SurgerySchedule(SchedulePtr base, std::vector<Removal> removals);

  [[nodiscard]] const Ring& ring() const override { return base_->ring(); }
  [[nodiscard]] EdgeSet edges_at(Time t) const override;
  [[nodiscard]] ScheduleRecurrence recurrence() const override {
    // A finite removal stops mattering after `to`; an infinite one is a
    // constant overlay from `from` on.  Past the latest such boundary the
    // base's periodicity is undisturbed.
    ScheduleRecurrence rec = base_->recurrence();
    for (const Removal& removal : removals_) {
      rec.start = std::max(rec.start, removal.to == kTimeInfinity
                                          ? removal.from
                                          : removal.to + 1);
    }
    return rec;
  }
  [[nodiscard]] std::string name() const override { return "surgery"; }

  [[nodiscard]] const std::vector<Removal>& removals() const {
    return removals_;
  }

 private:
  SchedulePtr base_;
  std::vector<Removal> removals_;
};

}  // namespace pef
