#include "dynamic_graph/edge_set.hpp"

namespace pef {

EdgeSet& EdgeSet::operator|=(const EdgeSet& o) {
  PEF_CHECK(edge_count_ == o.edge_count_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

EdgeSet& EdgeSet::operator&=(const EdgeSet& o) {
  PEF_CHECK(edge_count_ == o.edge_count_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

EdgeSet& EdgeSet::operator-=(const EdgeSet& o) {
  PEF_CHECK(edge_count_ == o.edge_count_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  return *this;
}

std::string EdgeSet::to_string() const {
  std::string out = "{";
  bool first = true;
  for (EdgeId e = 0; e < edge_count_; ++e) {
    if (!contains(e)) continue;
    if (!first) out += ", ";
    out += std::to_string(e);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace pef
