#include "dynamic_graph/properties.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pef {

EdgeSet observed_underlying_edges(const EdgeSchedule& schedule, Time horizon) {
  EdgeSet acc(schedule.ring().edge_count());
  for (Time t = 0; t < horizon; ++t) acc |= schedule.edges_at(t);
  return acc;
}

namespace {

std::vector<AbsenceInterval> absence_intervals_impl(
    const Ring& ring, const std::vector<EdgeSet>& rounds) {
  std::vector<AbsenceInterval> out;
  const Time horizon = rounds.size();
  for (EdgeId e = 0; e < ring.edge_count(); ++e) {
    bool open = false;
    Time open_since = 0;
    for (Time t = 0; t < horizon; ++t) {
      const bool present = rounds[static_cast<std::size_t>(t)].contains(e);
      if (!present && !open) {
        open = true;
        open_since = t;
      } else if (present && open) {
        out.push_back(AbsenceInterval{e, open_since, t - 1, false});
        open = false;
      }
    }
    if (open) {
      out.push_back(AbsenceInterval{e, open_since, horizon - 1, true});
    }
  }
  return out;
}

std::vector<EdgeSet> materialise(const EdgeSchedule& schedule, Time horizon) {
  std::vector<EdgeSet> rounds;
  rounds.reserve(static_cast<std::size_t>(horizon));
  for (Time t = 0; t < horizon; ++t) rounds.push_back(schedule.edges_at(t));
  return rounds;
}

ConnectivityAudit audit_impl(const Ring& ring,
                             const std::vector<EdgeSet>& rounds,
                             Time patience) {
  ConnectivityAudit audit;
  const Time horizon = rounds.size();
  const std::vector<AbsenceInterval> intervals =
      absence_intervals_impl(ring, rounds);

  EdgeSet ever_present(ring.edge_count());
  for (const EdgeSet& s : rounds) ever_present |= s;

  for (const AbsenceInterval& iv : intervals) {
    const Time length = iv.to - iv.from + 1;
    if (iv.open_at_horizon && length >= patience) {
      audit.suspected_missing.push_back(iv.edge);
    } else if (!iv.open_at_horizon) {
      audit.max_closed_absence = std::max(audit.max_closed_absence, length);
    }
  }
  // Edges never present during the window count as suspected missing too
  // (they are absent over the entire window) - absence_intervals_impl
  // already yields them as one open interval, so no extra handling needed,
  // except when horizon < patience (then nothing can be suspected).

  // Connectivity of the eventual underlying graph restricted to the window:
  // a ring stays connected after removing at most one edge, provided every
  // remaining edge showed up at least once.
  std::uint32_t missing_or_silent = 0;
  for (EdgeId e = 0; e < ring.edge_count(); ++e) {
    const bool suspected =
        std::find(audit.suspected_missing.begin(),
                  audit.suspected_missing.end(),
                  e) != audit.suspected_missing.end();
    if (suspected || !ever_present.contains(e)) ++missing_or_silent;
  }
  audit.connected_over_time = missing_or_silent <= 1 && horizon > 0;
  return audit;
}

}  // namespace

std::vector<AbsenceInterval> absence_intervals(const EdgeSchedule& schedule,
                                               Time horizon) {
  return absence_intervals_impl(schedule.ring(),
                                materialise(schedule, horizon));
}

ConnectivityAudit audit_connectivity(const EdgeSchedule& schedule,
                                     Time horizon, Time patience) {
  return audit_impl(schedule.ring(), materialise(schedule, horizon),
                    patience);
}

ConnectivityAudit audit_connectivity(const Ring& ring,
                                     const std::vector<EdgeSet>& rounds,
                                     Time patience) {
  return audit_impl(ring, rounds, patience);
}

bool one_edge(const EdgeSchedule& schedule, NodeId u, Time t, Time t_prime) {
  return one_edge_present_side(schedule, u, t, t_prime).has_value();
}

std::optional<EdgeId> one_edge_present_side(const EdgeSchedule& schedule,
                                            NodeId u, Time t, Time t_prime) {
  PEF_CHECK(t <= t_prime);
  const Ring& ring = schedule.ring();
  const EdgeId cw = ring.adjacent_edge(u, GlobalDirection::kClockwise);
  const EdgeId ccw = ring.adjacent_edge(u, GlobalDirection::kCounterClockwise);

  bool cw_always_present = true;
  bool cw_always_absent = true;
  bool ccw_always_present = true;
  bool ccw_always_absent = true;
  for (Time i = t; i <= t_prime; ++i) {
    const EdgeSet s = schedule.edges_at(i);
    if (s.contains(cw)) {
      cw_always_absent = false;
    } else {
      cw_always_present = false;
    }
    if (s.contains(ccw)) {
      ccw_always_absent = false;
    } else {
      ccw_always_present = false;
    }
  }
  if (cw_always_present && ccw_always_absent) return cw;
  if (ccw_always_present && cw_always_absent) return ccw;
  return std::nullopt;
}

}  // namespace pef
