#include "dynamic_graph/journeys.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pef {

namespace {

struct Parent {
  bool reached = false;
  Time via_time = 0;
  EdgeId via_edge = kInvalidEdge;
  NodeId via_node = kInvalidNode;
};

/// Earliest-arrival BFS with parent pointers; returns per-node parents.
std::vector<Parent> foremost_parents(const EdgeSchedule& schedule,
                                     NodeId source, Time start,
                                     Time deadline) {
  const Ring& ring = schedule.ring();
  std::vector<Parent> parents(ring.node_count());
  parents[source].reached = true;
  std::uint32_t reached_count = 1;

  for (Time t = start; t < deadline && reached_count < ring.node_count();
       ++t) {
    const EdgeSet present = schedule.edges_at(t);
    std::vector<std::pair<NodeId, Parent>> updates;
    for (NodeId u = 0; u < ring.node_count(); ++u) {
      if (!parents[u].reached) continue;
      for (const GlobalDirection d :
           {GlobalDirection::kClockwise, GlobalDirection::kCounterClockwise}) {
        const EdgeId e = ring.adjacent_edge(u, d);
        if (!present.contains(e)) continue;
        const NodeId v = ring.neighbour(u, d);
        if (!parents[v].reached) {
          updates.push_back({v, Parent{true, t, e, u}});
        }
      }
    }
    for (const auto& [v, p] : updates) {
      if (!parents[v].reached) {
        parents[v] = p;
        ++reached_count;
      }
    }
  }
  return parents;
}

Journey reconstruct(const std::vector<Parent>& parents, NodeId source,
                    NodeId target, Time start) {
  Journey journey;
  journey.source = source;
  journey.target = target;
  journey.departure = start;
  NodeId cur = target;
  while (cur != source) {
    const Parent& p = parents[cur];
    journey.hops.push_back(JourneyHop{p.via_time, p.via_edge, p.via_node,
                                      cur});
    cur = p.via_node;
  }
  std::reverse(journey.hops.begin(), journey.hops.end());
  return journey;
}

}  // namespace

std::optional<Journey> foremost_journey(const EdgeSchedule& schedule,
                                        NodeId source, NodeId target,
                                        Time start, Time deadline) {
  const Ring& ring = schedule.ring();
  PEF_CHECK(ring.is_valid_node(source) && ring.is_valid_node(target));
  const auto parents = foremost_parents(schedule, source, start, deadline);
  if (!parents[target].reached) return std::nullopt;
  return reconstruct(parents, source, target, start);
}

std::optional<Journey> shortest_journey(const EdgeSchedule& schedule,
                                        NodeId source, NodeId target,
                                        Time start, Time deadline) {
  const Ring& ring = schedule.ring();
  PEF_CHECK(ring.is_valid_node(source) && ring.is_valid_node(target));
  // DP over time: best[u] = min hops to stand on u at the current round
  // (waiting keeps the value).  Parent pointers record the first time the
  // hop count improves, so ties resolve to the earliest arrival.
  constexpr std::uint32_t kUnreached = ~0u;
  std::vector<std::uint32_t> best(ring.node_count(), kUnreached);
  best[source] = 0;
  struct HopParent {
    Time time;
    EdgeId edge;
    NodeId from;
  };
  // parent_at[u][h] = how u was first reached with h hops.
  std::vector<std::vector<std::optional<HopParent>>> parent_at(
      ring.node_count());
  for (auto& v : parent_at) {
    v.assign(ring.node_count() + 1, std::nullopt);
  }

  for (Time t = start; t < deadline; ++t) {
    const EdgeSet present = schedule.edges_at(t);
    std::vector<std::uint32_t> next = best;
    for (NodeId u = 0; u < ring.node_count(); ++u) {
      if (best[u] == kUnreached) continue;
      for (const GlobalDirection d :
           {GlobalDirection::kClockwise, GlobalDirection::kCounterClockwise}) {
        const EdgeId e = ring.adjacent_edge(u, d);
        if (!present.contains(e)) continue;
        const NodeId v = ring.neighbour(u, d);
        const std::uint32_t via = best[u] + 1;
        if (via < next[v]) {
          next[v] = via;
          if (!parent_at[v][via]) {
            parent_at[v][via] = HopParent{t, e, u};
          }
        }
      }
    }
    best = std::move(next);
    if (best[target] != kUnreached &&
        best[target] <= 1) {  // cannot do better than 1 hop (or 0)
      break;
    }
  }
  if (best[target] == kUnreached && source != target) return std::nullopt;

  Journey journey;
  journey.source = source;
  journey.target = target;
  journey.departure = start;
  // Walk parents backwards by hop count.
  NodeId cur = target;
  std::uint32_t hops = best[target] == kUnreached ? 0 : best[target];
  while (hops > 0) {
    const auto& p = parent_at[cur][hops];
    PEF_CHECK(p.has_value());
    journey.hops.push_back(JourneyHop{p->time, p->edge, p->from, cur});
    cur = p->from;
    --hops;
  }
  std::reverse(journey.hops.begin(), journey.hops.end());
  return journey;
}

std::optional<Journey> fastest_journey(const EdgeSchedule& schedule,
                                       NodeId source, NodeId target,
                                       Time start, Time deadline) {
  std::optional<Journey> best;
  for (Time depart = start; depart < deadline; ++depart) {
    auto candidate =
        foremost_journey(schedule, source, target, depart, deadline);
    // Unreachable from `depart` implies unreachable from any later
    // departure too (a journey departing later is also a journey departing
    // at `depart` with extra initial waiting), so the scan can stop.
    if (!candidate) break;
    if (!best || candidate->duration() < best->duration()) {
      best = std::move(candidate);
    }
    if (best && best->duration() ==
                    schedule.ring().distance(source, target)) {
      break;  // already optimal: a journey cannot beat the hop distance
    }
  }
  return best;
}

bool is_valid_journey(const EdgeSchedule& schedule, const Journey& journey) {
  const Ring& ring = schedule.ring();
  if (!ring.is_valid_node(journey.source) ||
      !ring.is_valid_node(journey.target)) {
    return false;
  }
  NodeId cur = journey.source;
  Time now = journey.departure;
  for (const JourneyHop& hop : journey.hops) {
    if (hop.from != cur) return false;
    if (hop.time < now) return false;
    if (!ring.is_incident(hop.edge, hop.from) ||
        !ring.is_incident(hop.edge, hop.to)) {
      return false;
    }
    if (hop.to != ring.edge_tail(hop.edge) &&
        hop.to != ring.edge_head(hop.edge)) {
      return false;
    }
    if (hop.from == hop.to) return false;
    if (!schedule.edges_at(hop.time).contains(hop.edge)) return false;
    cur = hop.to;
    now = hop.time + 1;
  }
  return cur == journey.target;
}

}  // namespace pef
