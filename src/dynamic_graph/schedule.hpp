// Oblivious edge schedules: an evolving graph G = {G_0, G_1, ...} given as a
// pure function of time.  (Adaptive adversaries, which look at robot
// positions, live in src/adversary/.)
#pragma once

#include <memory>
#include <numeric>
#include <string>

#include "common/types.hpp"
#include "dynamic_graph/edge_set.hpp"
#include "dynamic_graph/ring.hpp"

namespace pef {

/// Eventual periodicity of an edge schedule: for every t >= start,
/// edges_at(t + period) == edges_at(t).  period == 0 means "no known
/// recurrence" (stochastic or aperiodic families), which makes the schedule
/// ineligible for cycle-detection fast-forward.  A time-invariant schedule
/// is the degenerate case {1, 0}.
struct ScheduleRecurrence {
  Time period = 0;
  Time start = 0;
};

/// lcm of two recurrence periods, where 0 means "unknown" and is absorbing;
/// overflow also degrades to unknown rather than wrapping.
[[nodiscard]] inline Time combine_recurrence_periods(Time a, Time b) {
  if (a == 0 || b == 0) return 0;
  const Time q = a / std::gcd(a, b);
  if (b > kTimeInfinity / q) return 0;
  return q * b;
}

/// The edge-presence function of an evolving graph over a fixed ring.
/// Implementations must be deterministic: calling `edges_at(t)` twice for
/// the same `t` returns the same set (stochastic schedules pre-derive a
/// per-(edge, t) stream from their seed).
class EdgeSchedule {
 public:
  virtual ~EdgeSchedule() = default;

  [[nodiscard]] virtual const Ring& ring() const = 0;

  /// The set E_t of edges present during round `t`.
  [[nodiscard]] virtual EdgeSet edges_at(Time t) const = 0;

  /// Fill a caller-owned scratch set with E_t instead of allocating a fresh
  /// one.  `out` must already be sized to `ring().edge_count()`.  The default
  /// falls back to edges_at(); hot schedule families override it so engines
  /// can run rounds allocation-free.
  virtual void edges_into(Time t, EdgeSet& out) const { out = edges_at(t); }

  /// Fill one raw word row ((edge_count + 63) / 64 words, EdgeSet::words()
  /// layout, tail bits clear) with E_t — the plane filler BatchEngine uses
  /// to write each replica's edge words straight into its contiguous edge
  /// plane, with no EdgeSet and no Configuration mirror in between.  The
  /// default routes through edges_into() on a temporary set (cold families
  /// only pay it off the hot path); every hot family overrides it to write
  /// the words directly.
  virtual void edges_into_words(Time t, std::uint64_t* words) const {
    EdgeSet scratch(ring().edge_count());
    edges_into(t, scratch);
    const std::uint32_t count = edge_word_count(scratch.edge_count());
    const std::uint64_t* src = scratch.words();
    for (std::uint32_t i = 0; i < count; ++i) words[i] = src[i];
  }

  /// True iff edges_at(t) is the same set for every t.  Engines use it to
  /// fill their scratch set once and skip the per-round refill entirely
  /// (BatchEngine additionally skips the per-robot edge-presence tests when
  /// the invariant set is full).  Conservative default: false.
  [[nodiscard]] virtual bool time_invariant() const { return false; }

  /// Eventual periodicity witness, if the family can prove one.  The
  /// default claims {1, 0} for time-invariant schedules and "unknown"
  /// otherwise; deterministic periodic families override it.  Must be
  /// conservative — a wrong witness would let the fast-forward layer
  /// certify a cycle that is not one.
  [[nodiscard]] virtual ScheduleRecurrence recurrence() const {
    return {time_invariant() ? Time{1} : Time{0}, Time{0}};
  }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Convenience: presence of a single edge at time `t`.
  [[nodiscard]] bool is_present(EdgeId e, Time t) const {
    return edges_at(t).contains(e);
  }
};

using SchedulePtr = std::shared_ptr<const EdgeSchedule>;

}  // namespace pef
