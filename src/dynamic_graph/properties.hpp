// Evolving-graph property checkers (Section 2.1 of the paper).
//
// Infinite-horizon notions (recurrent edge, eventual underlying graph,
// connected-over-time) are audited over a finite observation window: an edge
// is *suspected eventually-missing* if it is absent over a suffix of the
// window longer than a caller-supplied patience.  Exact answers are
// available for schedule families that expose their structure (e.g.
// EventualMissingEdgeSchedule), and the audit is used by benches to certify
// that adaptive adversaries stayed legal on the realized prefix.
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"
#include "dynamic_graph/edge_set.hpp"
#include "dynamic_graph/schedule.hpp"

namespace pef {

/// Union of all edge sets over [0, horizon): the (observed) underlying graph
/// edge set E_G restricted to the window.
[[nodiscard]] EdgeSet observed_underlying_edges(const EdgeSchedule& schedule,
                                                Time horizon);

/// One maximal absence interval [from, to] (inclusive) of one edge.
struct AbsenceInterval {
  EdgeId edge = kInvalidEdge;
  Time from = 0;
  Time to = 0;
  /// True when the interval was still open at the end of the window (the
  /// edge may be eventually missing).
  bool open_at_horizon = false;

  friend bool operator==(const AbsenceInterval&,
                         const AbsenceInterval&) = default;
};

/// All maximal absence intervals of every edge over [0, horizon).
[[nodiscard]] std::vector<AbsenceInterval> absence_intervals(
    const EdgeSchedule& schedule, Time horizon);

/// Result of the connected-over-time audit of a finite window.
struct ConnectivityAudit {
  /// Edges absent for the whole suffix of the window of length >= patience.
  std::vector<EdgeId> suspected_missing;
  /// Longest closed absence interval seen (a dynamicity measure).
  Time max_closed_absence = 0;
  /// True iff removing every suspected-missing edge still leaves the
  /// (observed) underlying graph connected — for a ring: at most one
  /// suspected-missing edge, and every other edge present at least once.
  bool connected_over_time = false;
};

/// Audits the window [0, horizon).  `patience` is the suffix length beyond
/// which an absent edge is suspected to be eventually missing.
[[nodiscard]] ConnectivityAudit audit_connectivity(
    const EdgeSchedule& schedule, Time horizon, Time patience);

/// Same audit over an explicitly recorded sequence of edge sets (used for
/// adaptive adversaries, whose choices are a function of the execution and
/// are recorded by the simulator).
[[nodiscard]] ConnectivityAudit audit_connectivity(
    const Ring& ring, const std::vector<EdgeSet>& rounds, Time patience);

/// The paper's OneEdge(u, t, t') predicate: one adjacent edge of `u` is
/// continuously missing from `t` to `t'` while the other adjacent edge of
/// `u` is continuously present from `t` to `t'` (bounds inclusive).
[[nodiscard]] bool one_edge(const EdgeSchedule& schedule, NodeId u, Time t,
                            Time t_prime);

/// Which adjacent edge of `u` is the continuously-present one if
/// OneEdge(u, t, t') holds; nullopt otherwise.
[[nodiscard]] std::optional<EdgeId> one_edge_present_side(
    const EdgeSchedule& schedule, NodeId u, Time t, Time t_prime);

}  // namespace pef
