// Journey computation in evolving rings — the full Xuan/Ferreira/Jarry [23]
// triple: foremost (minimum arrival time), shortest (minimum hops), fastest
// (minimum duration over all departures).
//
// foremost_arrivals() in temporal.hpp answers "when can I get there";
// this module reconstructs the actual hop sequences and answers the two
// other optimality notions the dynamic-graph literature cares about.  The
// library uses journeys to validate schedules and to report adversary
// temporal diameters; the module is also a substrate a downstream user
// would expect from a dynamic-ring toolkit.
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"
#include "dynamic_graph/schedule.hpp"

namespace pef {

/// One edge traversal of a journey: departs `from` during round `time`
/// across `edge`, arriving at `to` at time `time + 1`.
struct JourneyHop {
  Time time = 0;
  EdgeId edge = kInvalidEdge;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;

  friend bool operator==(const JourneyHop&, const JourneyHop&) = default;
};

struct Journey {
  NodeId source = kInvalidNode;
  NodeId target = kInvalidNode;
  Time departure = 0;  // start of the waiting-allowed window
  std::vector<JourneyHop> hops;

  [[nodiscard]] Time arrival() const {
    return hops.empty() ? departure : hops.back().time + 1;
  }
  [[nodiscard]] std::size_t hop_count() const { return hops.size(); }
  /// Duration counts from the *first actual move* (fastest-journey
  /// semantics): waiting before departure is free, waiting en route is not.
  [[nodiscard]] Time duration() const {
    return hops.empty() ? 0 : arrival() - hops.front().time;
  }
};

/// Foremost journey: earliest-arrival hop sequence from `source` (waiting
/// allowed) within [start, deadline).  nullopt when unreachable in-window.
[[nodiscard]] std::optional<Journey> foremost_journey(
    const EdgeSchedule& schedule, NodeId source, NodeId target, Time start,
    Time deadline);

/// Shortest journey: minimum number of edge traversals, arrival before
/// `deadline` (waiting allowed anywhere).  Ties broken by earlier arrival.
[[nodiscard]] std::optional<Journey> shortest_journey(
    const EdgeSchedule& schedule, NodeId source, NodeId target, Time start,
    Time deadline);

/// Fastest journey: minimises arrival - (time of first move) over all
/// departures in [start, deadline).  Ties broken by earlier departure.
/// Costs O((deadline-start)^2 * n) — meant for analysis windows, not hot
/// loops.
[[nodiscard]] std::optional<Journey> fastest_journey(
    const EdgeSchedule& schedule, NodeId source, NodeId target, Time start,
    Time deadline);

/// Validates that `journey` is realizable under `schedule`: hops are
/// consecutive in space, non-decreasing by at least 1 round in time, and
/// every crossed edge is present at its crossing round.
[[nodiscard]] bool is_valid_journey(const EdgeSchedule& schedule,
                                    const Journey& journey);

}  // namespace pef
