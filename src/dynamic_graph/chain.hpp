// Connected-over-time chains.
//
// The paper closes its contribution with: "Note that a connected-over-time
// chain can be seen as a connected-over-time ring with a missing edge.  So,
// our results are also valid on connected-over-time chains."  This header
// makes that executable: a chain of n nodes is a ring of n nodes whose edge
// n-1 (between nodes n-1 and 0) never appears, and every schedule family
// can be lifted onto it.
#pragma once

#include <memory>

#include "dynamic_graph/schedule.hpp"
#include "dynamic_graph/schedules.hpp"

namespace pef {

/// Wraps `base` so that the designated `cut` edge is never present: the
/// underlying graph becomes an n-node chain with endpoints edge_head(cut)
/// and edge_tail(cut).  If `base` is connected-over-time, the result is a
/// connected-over-time chain (the cut edge is the ring's single allowed
/// eventually-missing edge).
class ChainSchedule final : public EdgeSchedule {
 public:
  explicit ChainSchedule(SchedulePtr base, EdgeId cut)
      : base_(std::move(base)), cut_(cut) {}

  /// Convenience: cut the conventional last edge (n-1, 0).
  static std::shared_ptr<ChainSchedule> cut_last(SchedulePtr base) {
    const EdgeId cut = base->ring().edge_count() - 1;
    return std::make_shared<ChainSchedule>(std::move(base), cut);
  }

  [[nodiscard]] const Ring& ring() const override { return base_->ring(); }
  [[nodiscard]] EdgeSet edges_at(Time t) const override {
    EdgeSet s = base_->edges_at(t);
    s.erase(cut_);
    return s;
  }
  void edges_into(Time t, EdgeSet& out) const override {
    base_->edges_into(t, out);
    out.erase(cut_);
  }
  void edges_into_words(Time t, std::uint64_t* words) const override {
    base_->edges_into_words(t, words);
    words[cut_ >> 6] &= ~(std::uint64_t{1} << (cut_ & 63));
  }
  [[nodiscard]] bool time_invariant() const override {
    // Masking a fixed bit preserves the base's invariance (a static base
    // yields a static chain, so engines keep the fill-once fast path).
    return base_->time_invariant();
  }
  [[nodiscard]] ScheduleRecurrence recurrence() const override {
    // Masking a fixed bit also preserves the base's periodicity witness.
    return base_->recurrence();
  }
  [[nodiscard]] std::string name() const override {
    return "chain(" + base_->name() + ")";
  }

  [[nodiscard]] EdgeId cut_edge() const { return cut_; }
  /// The chain's two endpoint nodes.
  [[nodiscard]] NodeId left_end() const { return ring().edge_head(cut_); }
  [[nodiscard]] NodeId right_end() const { return ring().edge_tail(cut_); }

 private:
  SchedulePtr base_;
  EdgeId cut_;
};

}  // namespace pef
