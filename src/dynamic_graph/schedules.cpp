#include "dynamic_graph/schedules.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/table.hpp"

namespace pef {

// ---------------------------------------------------------------------------
// RecordedSchedule

RecordedSchedule::RecordedSchedule(Ring ring, std::vector<EdgeSet> rounds,
                                   TailRule tail)
    : ring_(ring), rounds_(std::move(rounds)), tail_(tail) {
  for (const EdgeSet& s : rounds_) {
    PEF_CHECK(s.edge_count() == ring_.edge_count());
  }
  if (tail_ == TailRule::kRepeatLast || tail_ == TailRule::kCyclePrefix) {
    PEF_CHECK(!rounds_.empty());
  }
}

EdgeSet RecordedSchedule::edges_at(Time t) const {
  if (t < rounds_.size()) return rounds_[static_cast<std::size_t>(t)];
  switch (tail_) {
    case TailRule::kAllPresent:
      return EdgeSet::all(ring_.edge_count());
    case TailRule::kRepeatLast:
      return rounds_.back();
    case TailRule::kCyclePrefix:
      return rounds_[static_cast<std::size_t>(t % rounds_.size())];
  }
  return EdgeSet::all(ring_.edge_count());
}

// ---------------------------------------------------------------------------
// BernoulliSchedule

BernoulliSchedule::BernoulliSchedule(Ring ring, double p, std::uint64_t seed)
    : ring_(ring), p_(p), seed_(seed) {
  PEF_CHECK(p >= 0.0 && p <= 1.0);
}

EdgeSet BernoulliSchedule::edges_at(Time t) const {
  EdgeSet s(ring_.edge_count());
  edges_into(t, s);
  return s;
}

void BernoulliSchedule::edges_into(Time t, EdgeSet& out) const {
  out.clear();
  for (EdgeId e = 0; e < ring_.edge_count(); ++e) {
    // One independent draw per (edge, round); deterministic in (seed, e, t).
    Xoshiro256 rng(derive_seed(seed_, e, t));
    if (rng.next_bool(p_)) out.insert(e);
  }
}

void BernoulliSchedule::edges_into_words(Time t, std::uint64_t* words) const {
  const std::uint32_t count = edge_word_count(ring_.edge_count());
  for (std::uint32_t i = 0; i < count; ++i) words[i] = 0;
  for (EdgeId e = 0; e < ring_.edge_count(); ++e) {
    Xoshiro256 rng(derive_seed(seed_, e, t));
    if (rng.next_bool(p_)) words[e >> 6] |= 1ULL << (e & 63);
  }
}

std::string BernoulliSchedule::name() const {
  return "bernoulli(p=" + format_double(p_, 2) + ")";
}

// ---------------------------------------------------------------------------
// PeriodicSchedule

PeriodicSchedule::PeriodicSchedule(Ring ring,
                                   std::vector<EdgePattern> patterns)
    : ring_(ring), patterns_(std::move(patterns)) {
  PEF_CHECK(patterns_.size() == ring_.edge_count());
  for (const EdgePattern& p : patterns_) {
    PEF_CHECK(p.period > 0);
    PEF_CHECK(p.duty <= p.period);
  }
}

PeriodicSchedule PeriodicSchedule::rotating(Ring ring, std::uint32_t period,
                                            std::uint32_t duty) {
  std::vector<EdgePattern> patterns(ring.edge_count());
  for (EdgeId e = 0; e < ring.edge_count(); ++e) {
    patterns[e] = EdgePattern{period, duty, e % period};
  }
  return PeriodicSchedule(ring, std::move(patterns));
}

EdgeSet PeriodicSchedule::edges_at(Time t) const {
  EdgeSet s(ring_.edge_count());
  edges_into(t, s);
  return s;
}

void PeriodicSchedule::edges_into(Time t, EdgeSet& out) const {
  out.clear();
  for (EdgeId e = 0; e < ring_.edge_count(); ++e) {
    const EdgePattern& p = patterns_[e];
    if ((t + p.phase) % p.period < p.duty) out.insert(e);
  }
}

void PeriodicSchedule::edges_into_words(Time t, std::uint64_t* words) const {
  const std::uint32_t count = edge_word_count(ring_.edge_count());
  for (std::uint32_t i = 0; i < count; ++i) words[i] = 0;
  for (EdgeId e = 0; e < ring_.edge_count(); ++e) {
    const EdgePattern& p = patterns_[e];
    if ((t + p.phase) % p.period < p.duty) words[e >> 6] |= 1ULL << (e & 63);
  }
}

// ---------------------------------------------------------------------------
// TIntervalConnectedSchedule

TIntervalConnectedSchedule::TIntervalConnectedSchedule(Ring ring,
                                                       Time interval,
                                                       std::uint64_t seed)
    : ring_(ring), interval_(interval), seed_(seed) {
  PEF_CHECK(interval > 0);
}

EdgeSet TIntervalConnectedSchedule::edges_at(Time t) const {
  EdgeSet s(ring_.edge_count());
  edges_into(t, s);
  return s;
}

void TIntervalConnectedSchedule::edges_into(Time t, EdgeSet& out) const {
  const Time epoch = t / interval_;
  Xoshiro256 rng(derive_seed(seed_, epoch));
  // Draw in [0, n]: value n means "no edge missing this epoch".
  const std::uint64_t pick = rng.next_below(ring_.edge_count() + 1);
  out.fill();
  if (pick < ring_.edge_count()) out.erase(static_cast<EdgeId>(pick));
}

void TIntervalConnectedSchedule::edges_into_words(Time t,
                                                  std::uint64_t* words) const {
  const Time epoch = t / interval_;
  Xoshiro256 rng(derive_seed(seed_, epoch));
  const std::uint64_t pick = rng.next_below(ring_.edge_count() + 1);
  fill_edge_words(words, ring_.edge_count());
  if (pick < ring_.edge_count()) words[pick >> 6] &= ~(1ULL << (pick & 63));
}

std::string TIntervalConnectedSchedule::name() const {
  return "t-interval(T=" + std::to_string(interval_) + ")";
}

// ---------------------------------------------------------------------------
// EventualMissingEdgeSchedule

EventualMissingEdgeSchedule::EventualMissingEdgeSchedule(SchedulePtr base,
                                                         EdgeId missing_edge,
                                                         Time vanish_time)
    : base_(std::move(base)),
      missing_edge_(missing_edge),
      vanish_time_(vanish_time) {
  PEF_CHECK(base_ != nullptr);
  PEF_CHECK(base_->ring().is_valid_edge(missing_edge_));
}

EdgeSet EventualMissingEdgeSchedule::edges_at(Time t) const {
  EdgeSet s = base_->edges_at(t);
  if (t >= vanish_time_) s.erase(missing_edge_);
  return s;
}

void EventualMissingEdgeSchedule::edges_into(Time t, EdgeSet& out) const {
  base_->edges_into(t, out);
  if (t >= vanish_time_) out.erase(missing_edge_);
}

void EventualMissingEdgeSchedule::edges_into_words(
    Time t, std::uint64_t* words) const {
  base_->edges_into_words(t, words);
  if (t >= vanish_time_) {
    words[missing_edge_ >> 6] &= ~(1ULL << (missing_edge_ & 63));
  }
}

std::string EventualMissingEdgeSchedule::name() const {
  return "eventual-missing(e=" + std::to_string(missing_edge_) +
         ",t=" + std::to_string(vanish_time_) + ")+" + base_->name();
}

// ---------------------------------------------------------------------------
// BoundedAbsenceSchedule

BoundedAbsenceSchedule::BoundedAbsenceSchedule(Ring ring, Time max_absence,
                                               Time max_presence,
                                               std::uint64_t seed)
    : ring_(ring),
      max_absence_(max_absence),
      max_presence_(max_presence),
      seed_(seed),
      runs_(ring.edge_count()) {
  PEF_CHECK(max_absence >= 1);
  PEF_CHECK(max_presence >= 1);
}

bool BoundedAbsenceSchedule::edge_present(EdgeId e, Time t) const {
  // Run-length decoding with a lazily extended per-edge boundary cache:
  // runs alternate present/absent starting with present, lengths drawn from
  // the edge's own stream.  Amortised O(1) for the simulator's monotone
  // queries, O(log R) for random access.
  EdgeRuns& runs = runs_[e];
  if (!runs.initialised) {
    runs.rng = Xoshiro256(derive_seed(seed_, e));
    runs.boundaries.push_back(1 + runs.rng.next_below(max_presence_));
    runs.initialised = true;
  }
  while (runs.boundaries.back() <= t) {
    // Run i covers [boundaries[i-1], boundaries[i]); even i = present run.
    const bool next_run_absent = runs.boundaries.size() % 2 == 1;
    const Time span = next_run_absent
                          ? 1 + runs.rng.next_below(max_absence_)
                          : 1 + runs.rng.next_below(max_presence_);
    runs.boundaries.push_back(runs.boundaries.back() + span);
  }
  const auto it = std::upper_bound(runs.boundaries.begin(),
                                   runs.boundaries.end(), t);
  const auto run_index =
      static_cast<std::size_t>(it - runs.boundaries.begin());
  return run_index % 2 == 0;  // even-indexed runs are "present" runs
}

EdgeSet BoundedAbsenceSchedule::edges_at(Time t) const {
  EdgeSet s(ring_.edge_count());
  for (EdgeId e = 0; e < ring_.edge_count(); ++e) {
    if (edge_present(e, t)) s.insert(e);
  }
  return s;
}

void BoundedAbsenceSchedule::edges_into(Time t, EdgeSet& out) const {
  out.clear();
  for (EdgeId e = 0; e < ring_.edge_count(); ++e) {
    if (edge_present(e, t)) out.insert(e);
  }
}

void BoundedAbsenceSchedule::edges_into_words(Time t,
                                              std::uint64_t* words) const {
  const std::uint32_t count = edge_word_count(ring_.edge_count());
  for (std::uint32_t i = 0; i < count; ++i) words[i] = 0;
  for (EdgeId e = 0; e < ring_.edge_count(); ++e) {
    if (edge_present(e, t)) words[e >> 6] |= 1ULL << (e & 63);
  }
}

std::string BoundedAbsenceSchedule::name() const {
  return "bounded-absence(A=" + std::to_string(max_absence_) + ")";
}

// ---------------------------------------------------------------------------
// SurgerySchedule

SurgerySchedule::SurgerySchedule(SchedulePtr base,
                                 std::vector<Removal> removals)
    : base_(std::move(base)), removals_(std::move(removals)) {
  PEF_CHECK(base_ != nullptr);
  for (const Removal& r : removals_) {
    PEF_CHECK(base_->ring().is_valid_edge(r.edge));
    PEF_CHECK(r.from <= r.to);
  }
}

EdgeSet SurgerySchedule::edges_at(Time t) const {
  EdgeSet s = base_->edges_at(t);
  for (const Removal& r : removals_) {
    if (t >= r.from && t <= r.to) s.erase(r.edge);
  }
  return s;
}

}  // namespace pef
