// CommandTransport — how the orchestrator reaches a remote host.
//
// The SshBackend (orchestrator/fleet.hpp) is transport-agnostic: it needs
// five verbs — probe a host's liveness, stage a file out, start a command,
// poll/kill it, and fetch a file's bytes back.  This file ships the two
// implementations:
//
//   SshTransport   — real `ssh` subprocesses (BatchMode, bounded connect
//                    timeout).  Staging is `ssh host 'mkdir -p d && cat >
//                    f' < local`, fetching is `ssh host cat f` with stdout
//                    captured — no scp/sftp dependency.
//   MockTransport  — an in-process fake fleet: named hosts whose "remote"
//                    commands are plain local subprocesses and whose
//                    "remote" filesystem is the local one.  Hosts can be
//                    declared dead (connection refused, in-flight commands
//                    killed), which is what makes every network failure
//                    path testable without a network.
//
// Network-shaped chaos (connection refused / link drop / stalled transfer
// / partial fetch) is injected ABOVE this interface, in SshBackend, as a
// pure function of (seed, host, shard, attempt) — see orchestrator/fault.hpp
// — so both transports misbehave identically under a given PEF_FAULT_SPEC.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "orchestrator/process.hpp"

namespace pef {

/// One command to run on a (possibly remote) host.
struct TransportCommand {
  std::string host;
  std::vector<std::string> argv;  // argv[0] = remote binary path
  std::vector<std::pair<std::string, std::string>> env;
  std::string log_path;  // LOCAL file collecting the command's streams
};

class CommandTransport {
 public:
  virtual ~CommandTransport() = default;

  /// Cheap liveness check (`ssh host true`).  False = host unreachable.
  [[nodiscard]] virtual bool probe(const std::string& host,
                                   std::string* error) = 0;

  /// Copy `local_path`'s bytes to `remote_path` on `host`, creating parent
  /// directories.
  [[nodiscard]] virtual bool stage(const std::string& host,
                                   const std::string& local_path,
                                   const std::string& remote_path,
                                   std::string* error) = 0;

  /// Start a command; returns an opaque token, or nullopt when the
  /// connection/spawn failed.
  [[nodiscard]] virtual std::optional<std::uint64_t> start(
      const TransportCommand& command) = 0;

  /// Non-blocking: the next finished command, if any.  `exit_code` 255
  /// from SshTransport means the ssh CLIENT failed (unreachable host,
  /// dropped link) rather than the remote command — callers treat it as a
  /// host fault.
  [[nodiscard]] virtual std::optional<ChildExit> poll() = 0;

  /// Forcibly terminate a running command (death arrives through poll()).
  virtual void kill(std::uint64_t token) = 0;

  /// Read `remote_path` on `host` into `*bytes`.
  [[nodiscard]] virtual bool fetch(const std::string& host,
                                   const std::string& remote_path,
                                   std::string* bytes, std::string* error) = 0;
};

/// Real ssh.  Assumes passwordless (BatchMode) access; every connection
/// attempt is bounded by `connect_timeout_seconds`.
class SshTransport final : public CommandTransport {
 public:
  struct Options {
    std::uint32_t connect_timeout_seconds = 10;
    /// Extra `ssh` flags, e.g. {"-p", "2222"} or {"-i", "key"}.
    std::vector<std::string> ssh_flags;
  };

  SshTransport() : SshTransport(Options()) {}
  explicit SshTransport(Options options);

  [[nodiscard]] bool probe(const std::string& host,
                           std::string* error) override;
  [[nodiscard]] bool stage(const std::string& host,
                           const std::string& local_path,
                           const std::string& remote_path,
                           std::string* error) override;
  [[nodiscard]] std::optional<std::uint64_t> start(
      const TransportCommand& command) override;
  [[nodiscard]] std::optional<ChildExit> poll() override;
  void kill(std::uint64_t token) override;
  [[nodiscard]] bool fetch(const std::string& host,
                           const std::string& remote_path, std::string* bytes,
                           std::string* error) override;

  /// Single-quote `text` for a POSIX shell (ssh joins the remote argv into
  /// one shell command line, so every argument must survive requoting).
  [[nodiscard]] static std::string shell_quote(const std::string& text);

 private:
  [[nodiscard]] std::vector<std::string> ssh_argv(
      const std::string& host) const;

  Options options_;
  ChildProcessSet children_;
};

/// The fake fleet: local subprocesses behind remote-shaped verbs.
class MockTransport final : public CommandTransport {
 public:
  /// Register a host; its "remote" paths are ordinary local paths (give
  /// each mock host a distinct workdir in the fleet spec).
  void add_host(const std::string& name, bool alive = true);

  /// Scripted host death/recovery.  Going down kills every in-flight
  /// command on the host (their exits arrive through poll() as signal
  /// deaths, exactly like a real node loss).
  void set_alive(const std::string& name, bool alive);

  [[nodiscard]] bool probe(const std::string& host,
                           std::string* error) override;
  [[nodiscard]] bool stage(const std::string& host,
                           const std::string& local_path,
                           const std::string& remote_path,
                           std::string* error) override;
  [[nodiscard]] std::optional<std::uint64_t> start(
      const TransportCommand& command) override;
  [[nodiscard]] std::optional<ChildExit> poll() override;
  void kill(std::uint64_t token) override;
  [[nodiscard]] bool fetch(const std::string& host,
                           const std::string& remote_path, std::string* bytes,
                           std::string* error) override;

 private:
  struct Host {
    std::string name;
    bool alive = true;
  };
  struct Running {
    std::uint64_t token = 0;
    std::string host;
  };

  [[nodiscard]] Host* find_host(const std::string& name);

  std::vector<Host> hosts_;
  std::vector<Running> running_;
  ChildProcessSet children_;
};

}  // namespace pef
