#include "orchestrator/fleet.hpp"

#include <fstream>
#include <ostream>

#include "common/json.hpp"

namespace pef {
namespace {

std::string basename_of(const std::string& path) {
  const auto slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string join_remote(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  return dir.back() == '/' ? dir + name : dir + "/" + name;
}

bool write_local_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return false;
  out << content;
  out.flush();
  return out.good();
}

}  // namespace

// ---------------------------------------------------------------------------
// FleetSpec

std::optional<FleetSpec> FleetSpec::parse(const std::string& json,
                                          std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = "fleet spec: " + message;
    return std::nullopt;
  };
  std::string parse_error;
  const auto document = parse_json(json, &parse_error);
  if (!document) return fail(parse_error);
  if (!document->is_object()) return fail("expected a JSON object");
  for (const auto& [key, value] : document->members) {
    if (key != "hosts") {
      return fail("unknown key \"" + key + "\" (keys: hosts)");
    }
  }
  const JsonValue* hosts = document->find("hosts");
  if (hosts == nullptr || !hosts->is_array()) {
    return fail("need a \"hosts\" array");
  }
  if (hosts->items.empty()) return fail("\"hosts\" must name at least one host");

  FleetSpec spec;
  for (std::size_t i = 0; i < hosts->items.size(); ++i) {
    const JsonValue& entry = hosts->items[i];
    const std::string where = "hosts[" + std::to_string(i) + "]";
    if (!entry.is_object()) return fail(where + ": expected an object");
    FleetHost host;
    for (const auto& [key, value] : entry.members) {
      if (key == "host") {
        if (!value.is_string() || value.string_value.empty()) {
          return fail(where + ": \"host\" must be a non-empty string");
        }
        host.host = value.string_value;
      } else if (key == "slots") {
        if (!value.is_uint || value.uint_value == 0 ||
            value.uint_value > 0xffffffffULL) {
          return fail(where + ": \"slots\" must be a positive integer");
        }
        host.slots = static_cast<std::uint32_t>(value.uint_value);
      } else if (key == "workdir") {
        if (!value.is_string()) {
          return fail(where + ": \"workdir\" must be a string");
        }
        host.workdir = value.string_value;
      } else if (key == "worker") {
        if (!value.is_string()) {
          return fail(where + ": \"worker\" must be a string");
        }
        host.worker = value.string_value;
      } else {
        return fail(where + ": unknown key \"" + key +
                    "\" (keys: host, slots, workdir, worker)");
      }
    }
    if (host.host.empty()) return fail(where + ": missing \"host\"");
    for (const FleetHost& existing : spec.hosts) {
      if (existing.host == host.host) {
        return fail("duplicate host \"" + host.host + "\"");
      }
    }
    spec.hosts.push_back(std::move(host));
  }
  return spec;
}

std::optional<FleetSpec> FleetSpec::load(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    if (error != nullptr) *error = "cannot read " + path;
    return std::nullopt;
  }
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return parse(content, error);
}

std::uint32_t FleetSpec::total_slots() const {
  std::uint32_t total = 0;
  for (const FleetHost& host : hosts) total += host.slots;
  return total;
}

// ---------------------------------------------------------------------------
// SshBackend

SshBackend::SshBackend(CommandTransport& transport, FleetSpec fleet,
                       SshBackendOptions options, std::ostream* log)
    : transport_(transport), options_(std::move(options)), log_(log) {
  for (FleetHost& host : fleet.hosts) {
    if (host.workdir.empty()) {
      host.workdir =
          join_remote(options_.default_workdir_root, host.host);
    }
    HostState state;
    state.health.host = host.host;
    state.health.slots = host.slots;
    state.spec = std::move(host);
    hosts_.push_back(std::move(state));
  }
}

void SshBackend::log_line(const std::string& line) const {
  if (log_ != nullptr) *log_ << "pef_orchestrate: " << line << "\n";
}

void SshBackend::ensure_probed() {
  if (probes_done_) return;
  probes_done_ = true;
  if (!options_.probe) return;
  for (std::uint32_t i = 0; i < hosts_.size(); ++i) {
    HostState& host = hosts_[i];
    std::string error;
    host.probed = true;
    if (transport_.probe(host.spec.host, &error)) {
      host.health.probe = "ok";
    } else {
      host.health.probe = "failed";
      quarantine(i, "liveness probe failed: " + error);
    }
  }
}

SshBackend::HostState* SshBackend::find_host(const std::string& name) {
  for (HostState& host : hosts_) {
    if (host.spec.host == name) return &host;
  }
  return nullptr;
}

std::uint32_t SshBackend::capacity() const {
  std::uint32_t total = 0;
  for (const HostState& host : hosts_) {
    if (!host.health.quarantined) total += host.spec.slots;
  }
  return total;
}

void SshBackend::quarantine(std::uint32_t host_index,
                            const std::string& reason) {
  HostState& host = hosts_[host_index];
  if (host.health.quarantined) return;
  host.health.quarantined = true;
  host.health.quarantine_reason = reason;
  // Reschedule-by-killing: the in-flight workers die, their exits flow
  // through poll() as host faults, and the supervisor's retry machinery
  // relaunches those shards — on some other host, since this one no
  // longer has capacity.
  std::uint32_t in_flight = 0;
  for (const Flight& flight : flights_) {
    if (flight.host_index == host_index) {
      transport_.kill(flight.token);
      ++in_flight;
    }
  }
  log_line("host " + host.spec.host + " QUARANTINED (" + reason + ")" +
           (in_flight > 0 ? " — killing " + std::to_string(in_flight) +
                                " in-flight worker(s) for rescheduling"
                          : ""));
}

void SshBackend::charge_host(std::uint32_t host_index,
                             const std::string& reason) {
  HostState& host = hosts_[host_index];
  ++host.health.failures;
  ++host.health.consecutive_failures;
  if (!host.health.quarantined &&
      host.health.consecutive_failures >= options_.blacklist_after) {
    quarantine(host_index,
               std::to_string(host.health.consecutive_failures) +
                   " consecutive failures, last: " + reason);
  }
}

std::optional<std::uint64_t> SshBackend::launch(const WorkerLaunch& launch) {
  ensure_probed();

  // Capacity-aware host pick: the live host with the most free slots, so
  // heterogeneous fleets fill proportionally instead of hammering the
  // first entry.
  std::uint32_t best = 0;
  std::uint32_t best_free = 0;
  for (std::uint32_t i = 0; i < hosts_.size(); ++i) {
    const HostState& host = hosts_[i];
    if (host.health.quarantined) continue;
    const std::uint32_t free =
        host.spec.slots > host.in_flight ? host.spec.slots - host.in_flight
                                         : 0;
    if (free > best_free) {
      best_free = free;
      best = i;
    }
  }
  if (best_free == 0) {
    last_launch_error_ = "no free slot on any live host";
    return std::nullopt;
  }
  HostState& host = hosts_[best];
  const std::string& host_name = host.spec.host;

  // Deterministic network chaos, decided before anything touches the
  // wire: a refused connection fails the launch and is charged to the
  // host (real refusals land here too, via transport start failures).
  const NetFaultAction plan =
      options_.faults.decide_net(host_name, launch.shard, launch.attempt);
  if (plan == NetFaultAction::kRefuse) {
    last_launch_error_ = "connection refused by " + host_name + " (injected)";
    charge_host(best, "connection refused (injected)");
    return std::nullopt;
  }

  // Stage the spec once per host; staging also creates the remote workdir.
  if (!launch.stage_in.empty() && !host.staged) {
    const std::string remote_spec =
        join_remote(host.spec.workdir, basename_of(launch.stage_in));
    std::string error;
    if (!transport_.stage(host_name, launch.stage_in, remote_spec, &error)) {
      last_launch_error_ = "staging spec to " + host_name + " failed: " + error;
      charge_host(best, "spec staging failed");
      return std::nullopt;
    }
    host.staged = true;
    host.staged_remote = remote_spec;
  }

  // Rewrite the local argv in remote terms: worker binary override, staged
  // spec path, and a workdir-local output path the backend fetches back.
  const std::string remote_out =
      join_remote(host.spec.workdir, basename_of(launch.output_path));
  TransportCommand command;
  command.host = host_name;
  command.argv = launch.argv;
  if (!host.spec.worker.empty()) command.argv[0] = host.spec.worker;
  for (std::string& arg : command.argv) {
    if (!launch.stage_in.empty() && arg == launch.stage_in) {
      arg = host.staged_remote;
    } else if (!launch.output_path.empty() && arg == launch.output_path) {
      arg = remote_out;
    }
  }
  command.env = launch.env;
  command.log_path = launch.log_path;

  const auto token = transport_.start(command);
  if (!token) {
    last_launch_error_ = "connection to " + host_name + " failed at launch";
    charge_host(best, "connection failed at launch");
    return std::nullopt;
  }

  Flight flight;
  flight.token = *token;
  flight.host_index = best;
  flight.plan = plan;
  flight.local_out = launch.output_path;
  flight.remote_out = remote_out;
  flights_.push_back(std::move(flight));
  ++host.in_flight;
  ++host.health.launches;
  return token;
}

std::optional<WorkerExit> SshBackend::poll() {
  // Enact planned link drops: the worker started for real, now the "link"
  // goes away — kill it so the exit arrives as a signal death.
  for (Flight& flight : flights_) {
    if (flight.plan == NetFaultAction::kDrop && !flight.drop_fired) {
      flight.drop_fired = true;
      log_line("link to " + hosts_[flight.host_index].spec.host +
               " dropped mid-run (injected)");
      transport_.kill(flight.token);
    }
  }

  const auto child = transport_.poll();
  if (!child) return std::nullopt;

  std::size_t index = flights_.size();
  for (std::size_t i = 0; i < flights_.size(); ++i) {
    if (flights_[i].token == child->token) {
      index = i;
      break;
    }
  }
  if (index == flights_.size()) return std::nullopt;  // not ours (defensive)
  const Flight flight = flights_[index];
  flights_.erase(flights_.begin() + static_cast<std::ptrdiff_t>(index));
  HostState& host = hosts_[flight.host_index];
  if (host.in_flight > 0) --host.in_flight;

  WorkerExit exit;
  exit.token = child->token;
  exit.exit_code = child->exit_code;
  exit.term_signal = child->term_signal;
  exit.host = host.spec.host;
  // ssh exits 255 when the CLIENT failed (unreachable host, dropped
  // connection) — that is a host fault even though it looks like a clean
  // non-zero exit.
  exit.host_suspect = child->exit_code == 255;
  if (flight.plan == NetFaultAction::kDrop && exit.exit_code == 0) {
    // The worker won the race against the injected link drop.  Irrelevant:
    // once the link is gone the orchestrator cannot observe the remote
    // exit, so the attempt still surfaces as a transport failure.
    exit.exit_code = 255;
    exit.host_suspect = true;
  }

  // Fetch the output home.  A stalled transfer delivers nothing and a
  // partial fetch delivers a prefix — both leave the LOCAL file missing or
  // truncated, so the supervisor's shard-envelope validation catches them
  // exactly like a worker that corrupted its own output.
  if (exit.exit_code == 0 && !flight.local_out.empty()) {
    if (flight.plan == NetFaultAction::kStall) {
      log_line("transfer from " + host.spec.host + " stalled (injected) — " +
               "output withheld");
    } else {
      std::string bytes;
      std::string error;
      if (!transport_.fetch(host.spec.host, flight.remote_out, &bytes,
                            &error)) {
        log_line("fetching " + flight.remote_out + " from " + host.spec.host +
                 " failed: " + error);
      } else {
        if (flight.plan == NetFaultAction::kPartialFetch) {
          log_line("partial fetch from " + host.spec.host + " (injected) — " +
                   "delivering " + std::to_string(bytes.size() / 2) + " of " +
                   std::to_string(bytes.size()) + " bytes");
          bytes.resize(bytes.size() / 2);
        }
        if (!write_local_file(flight.local_out, bytes)) {
          log_line("cannot write " + flight.local_out);
        }
      }
    }
  }
  return exit;
}

void SshBackend::kill(std::uint64_t token) { transport_.kill(token); }

void SshBackend::note_result(const WorkerExit& exit, WorkerOutcomeKind kind) {
  HostState* host = find_host(exit.host);
  if (host == nullptr) return;
  switch (kind) {
    case WorkerOutcomeKind::kSuccess:
    case WorkerOutcomeKind::kAppFault:
      // Either way the host's transport did its job: launch, run, fetch.
      // An application failure says nothing about the machine.
      host->health.consecutive_failures = 0;
      break;
    case WorkerOutcomeKind::kHostFault:
      charge_host(
          static_cast<std::uint32_t>(host - hosts_.data()),
          exit.term_signal != 0
              ? "worker died on signal " + std::to_string(exit.term_signal)
              : "lost or invalid output");
      break;
  }
}

std::vector<HostHealth> SshBackend::health() const {
  std::vector<HostHealth> out;
  out.reserve(hosts_.size());
  for (const HostState& host : hosts_) out.push_back(host.health);
  return out;
}

std::string SshBackend::fleet_report_json() const {
  JsonWriter json;
  json.begin_array();
  for (const HostState& host : hosts_) {
    json.begin_object();
    json.field("host", host.health.host);
    json.field("slots", host.health.slots);
    json.field("probe", host.health.probe);
    json.field("launches", host.health.launches);
    json.field("failures", host.health.failures);
    json.field("consecutive_failures", host.health.consecutive_failures);
    json.field("quarantined", host.health.quarantined);
    if (!host.health.quarantine_reason.empty()) {
      json.field("quarantine_reason", host.health.quarantine_reason);
    }
    json.end_object();
  }
  json.end_array();
  return json.str();
}

}  // namespace pef
