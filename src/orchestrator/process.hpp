// ChildProcessSet — the fork/exec machinery shared by every component that
// runs local subprocesses: LocalProcessBackend (workers on this machine),
// SshTransport (ssh client processes), and MockTransport (fake "remote"
// workers).  One implementation of launch / WNOHANG-poll / SIGKILL means
// one place where zombie reaping and signal-vs-exit-code decoding is
// correct.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pef {

/// A finished child, as reported by ChildProcessSet::poll().
struct ChildExit {
  std::uint64_t token = 0;
  /// Exit code for a normal exit; -1 when the child died on a signal.
  int exit_code = -1;
  int term_signal = 0;  // 0 on normal exit
};

/// A set of running child processes addressed by opaque tokens.  Not
/// thread-safe (the orchestrator is single-threaded by design).
class ChildProcessSet {
 public:
  ChildProcessSet() = default;
  ChildProcessSet(const ChildProcessSet&) = delete;
  ChildProcessSet& operator=(const ChildProcessSet&) = delete;

  /// SIGKILLs and reaps everything still running — a dying orchestrator
  /// never leaves orphans behind.
  ~ChildProcessSet();

  /// fork/exec `argv` (argv[0] PATH-resolved) with `env` additions; both
  /// output streams are appended to `log_path` when non-empty.  When
  /// `stdin_path` is non-empty it becomes the child's stdin (used by ssh
  /// staging: `ssh host 'cat > file' < local_file`).  Returns a token, or
  /// nullopt when the fork itself failed.
  [[nodiscard]] std::optional<std::uint64_t> spawn(
      const std::vector<std::string>& argv,
      const std::vector<std::pair<std::string, std::string>>& env,
      const std::string& log_path, const std::string& stdin_path = "");

  /// Like spawn(), but the child's stdout is captured through a pipe into
  /// `*stdout_fd` (caller reads and closes it).  Used for `ssh host cat
  /// remote_file` fetches, where the bytes ARE the payload.
  [[nodiscard]] std::optional<std::uint64_t> spawn_capture(
      const std::vector<std::string>& argv,
      const std::vector<std::pair<std::string, std::string>>& env,
      int* stdout_fd);

  /// Non-blocking: the next finished child, if any.  Every successful
  /// spawn is eventually reported exactly once (killed children included).
  [[nodiscard]] std::optional<ChildExit> poll();

  /// Block until the given child exits; reports it exactly once (through
  /// this call, not a later poll()).  For short synchronous helpers
  /// (liveness probes, file staging).
  [[nodiscard]] std::optional<ChildExit> wait(std::uint64_t token);

  /// SIGKILL a running child (the death still arrives through poll()).
  void kill(std::uint64_t token);

  [[nodiscard]] std::size_t running() const { return children_.size(); }

 private:
  struct Child {
    std::uint64_t token = 0;
    int pid = -1;
  };

  [[nodiscard]] std::optional<std::uint64_t> spawn_impl(
      const std::vector<std::string>& argv,
      const std::vector<std::pair<std::string, std::string>>& env,
      const std::string& log_path, const std::string& stdin_path,
      int stdout_fd);
  static ChildExit decode(std::uint64_t token, int status);

  std::uint64_t next_token_ = 1;
  std::vector<Child> children_;
};

}  // namespace pef
