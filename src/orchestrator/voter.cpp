#include "orchestrator/voter.hpp"

namespace pef {

VoteResult vote_on_replicas(const std::vector<ReplicaBallot>& ballots) {
  VoteResult result;
  if (ballots.empty()) return result;

  // Group valid ballots by exact bytes.  R is small (1..5 in practice), so
  // quadratic grouping beats hashing the payloads twice.
  struct Group {
    const std::string* content = nullptr;
    std::uint32_t votes = 0;
  };
  std::vector<Group> groups;
  for (const ReplicaBallot& ballot : ballots) {
    if (!ballot.valid) {
      result.invalid_replicas.push_back(ballot.replica);
      continue;
    }
    bool found = false;
    for (Group& group : groups) {
      if (*group.content == ballot.content) {
        ++group.votes;
        found = true;
        break;
      }
    }
    if (!found) groups.push_back({&ballot.content, 1});
  }
  if (groups.empty()) return result;  // nothing valid to vote on

  const Group* best = &groups.front();
  for (const Group& group : groups) {
    if (group.votes > best->votes) best = &group;
  }
  // Strict majority of all R slots: 2-of-3 accepts, 1-of-3 does not (two
  // replicas already failed — trusting the survivor defeats the point of
  // replication), 1-of-1 accepts (replication off).
  result.accepted = 2 * best->votes > ballots.size();
  result.winner_votes = best->votes;
  if (result.accepted) {
    result.winner = *best->content;
    for (const ReplicaBallot& ballot : ballots) {
      if (ballot.valid && ballot.content != result.winner) {
        result.divergent_replicas.push_back(ballot.replica);
      }
    }
  }
  return result;
}

}  // namespace pef
