// The sweep orchestrator's supervision loop.
//
// orchestrate() turns a SweepSpec + shard count into worker launches on a
// WorkerBackend and babysits them to a merged result:
//
//   * every shard runs as `pef_sweep --spec F --shard I/N --out file`
//     (replicated R times under --replicate; replicas are byte-identical
//     by construction, which is what makes voting meaningful);
//   * a worker that crashes, exits non-zero, times out, or writes output
//     that fails validation (unparseable / wrong sweep / wrong shard) is
//     retried with capped exponential backoff up to a max-attempt budget;
//   * each launch gets a distinct PEF_FAULT_ATTEMPT so the deterministic
//     chaos layer (orchestrator/fault.hpp) re-rolls per attempt;
//   * accepted shards are journaled in a Ledger — a killed orchestrator
//     re-run with the same workdir resumes, skipping finished shards;
//   * when every shard settles, the accepted outputs merge byte-identical
//     to the unsharded run; shards that exhausted their budget degrade
//     gracefully into a partial merge plus a machine-readable failure
//     report (never "nothing").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "orchestrator/backend.hpp"

namespace pef {

struct OrchestratorOptions {
  std::string worker_binary;   // pef_sweep (or a compatible drop-in)
  std::string spec_path;       // spec file handed to every worker
  std::string spec_json;       // canonical spec JSON (identity + validation)
  std::uint32_t shards = 1;
  std::uint32_t replicate = 1;      // NMR factor (1 = off, 3 = TMR)
  std::uint32_t max_attempts = 3;   // per replica slot, first try included
  std::uint32_t jobs = 0;           // concurrent workers; 0 = backend cap
  std::uint32_t worker_threads = 1; // --threads per worker
  double timeout_seconds = 300;     // per launch; 0 = no timeout
  double backoff_initial_ms = 200;  // retry delay: initial * 2^(failures-1)
  double backoff_cap_ms = 5000;     // ... capped here
  std::string workdir;              // shard files, ledger, worker logs
  std::string backend_name = "local";  // recorded in the report
};

/// Retry delay before the attempt following the `failures`-th failure:
/// capped exponential (initial * 2^(failures-1), then capped) times a
/// deterministic jitter multiplier in [0.8, 1.2) drawn from `jitter_seed`.
/// Without jitter a fleet of slots failing together retries in lockstep and
/// hammers whatever just recovered; with it the retries spread out, and
/// because the multiplier is a pure function of the seed the schedule is
/// still reproducible.
[[nodiscard]] double backoff_delay_ms(double initial_ms, double cap_ms,
                                      std::uint32_t failures,
                                      std::uint64_t jitter_seed);

/// One worker launch that reached the backend: which replica slot, the
/// PEF_FAULT_ATTEMPT number it ran under, where it ran, how long it lived
/// (launch to observed exit), and how it ended.
struct ShardAttempt {
  std::uint32_t replica = 0;
  std::uint32_t attempt = 0;   // fault-layer attempt number of this launch
  std::string host;            // empty on the local backend
  double wall_ms = 0;          // launch → exit, supervisor clock
  std::string outcome;         // "ok" or the failure reason
};

/// Everything that happened to one shard, for the report.
struct ShardOutcome {
  std::uint32_t shard = 0;
  bool accepted = false;
  bool resumed = false;             // satisfied from the ledger, not run
  std::uint32_t launches = 0;       // worker processes started this run
  std::uint32_t failures = 0;       // failed attempts (all replica slots)
  std::uint32_t timeouts = 0;       // ... of which supervision kills
  double wall_ms = 0;               // first launch → settled
  std::vector<ShardAttempt> attempts;             // in observed-exit order
  std::vector<std::uint32_t> divergent_replicas;  // valid but outvoted
  std::string fail_reason;          // set when !accepted
};

struct OrchestratorResult {
  /// True when every shard was accepted and the merge reproduced the
  /// unsharded document.
  bool complete = false;
  /// Full merge when complete, partial merge (documented null-cell
  /// convention, see merge_sweep_shards_partial) otherwise.  Empty only if
  /// no shard at all was accepted.
  std::string merged_json;
  /// Machine-readable run report (always produced).
  std::string report_json;
  std::vector<std::uint32_t> failed_shards;
  std::vector<ShardOutcome> outcomes;  // indexed by shard
};

/// Run the supervision loop to completion.  Progress lines go to `log`
/// when non-null (one line per state change; nothing on the happy path but
/// launches and accepts).  Aborts only on setup errors (unusable workdir /
/// mismatched ledger); worker failures are the loop's job, not abort
/// conditions.
[[nodiscard]] OrchestratorResult orchestrate(WorkerBackend& backend,
                                             const OrchestratorOptions& options,
                                             std::ostream* log);

}  // namespace pef
