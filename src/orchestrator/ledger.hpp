// The shard ledger: a persistent journal that makes the orchestrator
// crash-safe.
//
// The supervisor appends one JSON line per state change (shard accepted,
// attempt failed, shard given up).  If the orchestrator itself is killed,
// the next run opens the same ledger, replays the journal, and resumes:
// shards with an accepted output whose file still exists and validates are
// skipped, everything else is re-run.  Replay is idempotent because shard
// outputs are byte-identical across runs — re-accepting a shard that was
// already accepted changes nothing.
//
// The header line pins the identity of the work: the FNV-1a hash of the
// canonical spec JSON plus the shard count and replication factor.  A
// ledger whose header disagrees with the current invocation is refused —
// resuming half of sweep A with the cells of sweep B must be impossible,
// not merely unlikely.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace pef {

/// 64-bit FNV-1a — content fingerprint for ledger headers and reports.
/// Not cryptographic; collision-resistance against accidents is the bar.
[[nodiscard]] std::uint64_t fnv1a64(const std::string& bytes);

/// What a ledger journals about one shard after replay.
struct LedgerShardState {
  bool done = false;
  std::string output_file;        // accepted (post-vote) shard JSON path
  std::uint32_t failed_attempts = 0;
};

class Ledger {
 public:
  struct Header {
    std::uint64_t spec_hash = 0;
    std::uint32_t shards = 0;
    std::uint32_t replicate = 1;

    [[nodiscard]] bool operator==(const Header& other) const = default;
  };

  /// Open `path` for appending, creating it (and writing the header line)
  /// when absent.  An existing journal is replayed into shard states; a
  /// header mismatch or malformed journal returns nullopt with a message —
  /// the caller chooses between aborting and starting a fresh ledger.
  ///
  /// One deliberate leniency: an orchestrator killed MID-FLUSH leaves a
  /// truncated final line (no trailing newline, usually unparseable).
  /// That is the expected crash artifact, not corruption — the partial
  /// record is dropped from the file (so later appends start clean), a
  /// note lands in `*warning`, and the journal resumes from the intact
  /// prefix.  Malformed lines anywhere BEFORE a terminated line stay hard
  /// errors.
  [[nodiscard]] static std::optional<Ledger> open(const std::string& path,
                                                  const Header& header,
                                                  std::string* error,
                                                  std::string* warning =
                                                      nullptr);

  /// Replayed journal state, keyed by shard index.
  [[nodiscard]] const std::map<std::uint32_t, LedgerShardState>& shards()
      const {
    return shards_;
  }

  /// Journal a shard's accepted output (flushed before returning, so a
  /// kill -9 right after never loses an accepted shard).
  void record_done(std::uint32_t shard, const std::string& output_file);

  /// Journal one failed attempt (crash, timeout, invalid output, lost
  /// vote) with a human-readable reason.
  void record_failed(std::uint32_t shard, std::uint32_t attempt,
                     const std::string& reason);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  Ledger() = default;

  void append_line(const std::string& line);

  std::string path_;
  std::map<std::uint32_t, LedgerShardState> shards_;
};

}  // namespace pef
