// N-modular-redundancy voting over replicated shard runs.
//
// Deterministic seeding makes every shard's JSON a pure function of the
// spec and the shard index, so R honest replicas of one shard are
// byte-identical.  The voter exploits that: group the R replica outputs by
// exact bytes and accept the strict-majority group.  A divergent replica is
// therefore a strong signal — either the machine that produced it faulted
// (bad RAM, truncated write, bit-flip) or the sweep is not deterministic,
// which is itself a bug worth an alarm.  This mirrors CoreGuard-NMR's
// replicated-tasks-plus-voter design, with "byte-identical JSON" as the
// comparison function.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pef {

/// One replica's output as presented to the voter.  `valid` is the
/// pre-vote screen: the supervisor marks a replica invalid when its worker
/// crashed, timed out, or wrote output that does not parse as a shard file
/// for the right sweep — invalid replicas never get a vote.
struct ReplicaBallot {
  std::uint32_t replica = 0;  // replica number (0..R-1), for reporting
  bool valid = false;
  std::string content;        // shard JSON bytes (empty when invalid)
};

struct VoteResult {
  /// True when some valid content won a strict majority of ALL R slots
  /// (not just of the valid ones: 1 valid replica out of 3 is evidence of
  /// two failures, not a mandate).
  bool accepted = false;
  std::string winner;                     // the accepted bytes
  std::uint32_t winner_votes = 0;
  /// Valid replicas whose bytes differ from the winner: hardware/IO fault
  /// or a determinism bug — flagged, never silently dropped.
  std::vector<std::uint32_t> divergent_replicas;
  /// Replicas screened out before voting (crashed / timed out / invalid).
  std::vector<std::uint32_t> invalid_replicas;
};

/// Majority vote over the R ballots of one shard.  With R == 1 the single
/// valid ballot wins (replication off is a degenerate vote).
[[nodiscard]] VoteResult vote_on_replicas(
    const std::vector<ReplicaBallot>& ballots);

}  // namespace pef
