#include "orchestrator/transport.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <filesystem>

namespace pef {
namespace {

bool read_local_file(const std::string& path, std::string& out) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) return false;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  out = buffer.str();
  return true;
}

std::string parent_dir(const std::string& path) {
  const auto slash = path.rfind('/');
  if (slash == std::string::npos || slash == 0) return "";
  return path.substr(0, slash);
}

}  // namespace

// ---------------------------------------------------------------------------
// SshTransport

SshTransport::SshTransport(Options options) : options_(std::move(options)) {}

std::string SshTransport::shell_quote(const std::string& text) {
  std::string quoted = "'";
  for (const char c : text) {
    if (c == '\'') {
      quoted += "'\\''";
    } else {
      quoted += c;
    }
  }
  quoted += "'";
  return quoted;
}

std::vector<std::string> SshTransport::ssh_argv(
    const std::string& host) const {
  std::vector<std::string> argv = {
      "ssh",
      "-o", "BatchMode=yes",
      "-o", "StrictHostKeyChecking=accept-new",
      "-o",
      "ConnectTimeout=" + std::to_string(options_.connect_timeout_seconds)};
  for (const std::string& flag : options_.ssh_flags) argv.push_back(flag);
  argv.push_back(host);
  return argv;
}

bool SshTransport::probe(const std::string& host, std::string* error) {
  auto argv = ssh_argv(host);
  argv.push_back("true");
  const auto token = children_.spawn(argv, {}, "/dev/null");
  if (!token) {
    if (error != nullptr) *error = "cannot spawn ssh";
    return false;
  }
  const auto exit = children_.wait(*token);
  if (!exit || exit->exit_code != 0) {
    if (error != nullptr) {
      *error = "ssh probe failed (exit " +
               (exit ? std::to_string(exit->exit_code) : "?") + ")";
    }
    return false;
  }
  return true;
}

bool SshTransport::stage(const std::string& host,
                         const std::string& local_path,
                         const std::string& remote_path, std::string* error) {
  const std::string dir = parent_dir(remote_path);
  std::string command;
  if (!dir.empty()) command += "mkdir -p " + shell_quote(dir) + " && ";
  command += "cat > " + shell_quote(remote_path);
  auto argv = ssh_argv(host);
  argv.push_back(command);
  const auto token = children_.spawn(argv, {}, "/dev/null", local_path);
  if (!token) {
    if (error != nullptr) *error = "cannot spawn ssh";
    return false;
  }
  const auto exit = children_.wait(*token);
  if (!exit || exit->exit_code != 0) {
    if (error != nullptr) {
      *error = "staging " + local_path + " to " + host + ":" + remote_path +
               " failed";
    }
    return false;
  }
  return true;
}

std::optional<std::uint64_t> SshTransport::start(
    const TransportCommand& command) {
  // ssh collapses the remote argv into one shell line; quote every piece.
  // Environment additions ride as `env K=V ...` — ssh servers rarely
  // accept arbitrary SendEnv names, and env(1) is always there.
  std::string remote = "env";
  for (const auto& [key, value] : command.env) {
    remote += " " + key + "=" + shell_quote(value);
  }
  for (const std::string& arg : command.argv) {
    remote += " " + shell_quote(arg);
  }
  auto argv = ssh_argv(command.host);
  argv.push_back(remote);
  return children_.spawn(argv, {}, command.log_path);
}

std::optional<ChildExit> SshTransport::poll() { return children_.poll(); }

void SshTransport::kill(std::uint64_t token) {
  // Kills the local ssh client; with no pty the remote command is orphaned,
  // but workers are short-lived and their stale outputs are ignored (every
  // attempt writes to a distinct remote file).
  children_.kill(token);
}

bool SshTransport::fetch(const std::string& host,
                         const std::string& remote_path, std::string* bytes,
                         std::string* error) {
  auto argv = ssh_argv(host);
  argv.push_back("cat " + shell_quote(remote_path));
  int fd = -1;
  const auto token = children_.spawn_capture(argv, {}, &fd);
  if (!token) {
    if (error != nullptr) *error = "cannot spawn ssh";
    return false;
  }
  bytes->clear();
  char buffer[65536];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n <= 0) break;
    bytes->append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const auto exit = children_.wait(*token);
  if (!exit || exit->exit_code != 0) {
    if (error != nullptr) {
      *error = "fetching " + host + ":" + remote_path + " failed";
    }
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// MockTransport

void MockTransport::add_host(const std::string& name, bool alive) {
  hosts_.push_back({name, alive});
}

MockTransport::Host* MockTransport::find_host(const std::string& name) {
  for (Host& host : hosts_) {
    if (host.name == name) return &host;
  }
  return nullptr;
}

void MockTransport::set_alive(const std::string& name, bool alive) {
  Host* host = find_host(name);
  if (host == nullptr) return;
  host->alive = alive;
  if (alive) return;
  for (const Running& running : running_) {
    if (running.host == name) children_.kill(running.token);
  }
}

bool MockTransport::probe(const std::string& host, std::string* error) {
  const Host* found = find_host(host);
  if (found == nullptr || !found->alive) {
    if (error != nullptr) *error = "connection refused";
    return false;
  }
  return true;
}

bool MockTransport::stage(const std::string& host,
                          const std::string& local_path,
                          const std::string& remote_path, std::string* error) {
  if (!probe(host, error)) return false;
  std::error_code ec;
  const std::string dir = parent_dir(remote_path);
  if (!dir.empty()) std::filesystem::create_directories(dir, ec);
  std::filesystem::copy_file(local_path, remote_path,
                             std::filesystem::copy_options::overwrite_existing,
                             ec);
  if (ec) {
    if (error != nullptr) *error = "staging failed: " + ec.message();
    return false;
  }
  return true;
}

std::optional<std::uint64_t> MockTransport::start(
    const TransportCommand& command) {
  std::string error;
  if (!probe(command.host, &error)) return std::nullopt;
  const auto token =
      children_.spawn(command.argv, command.env, command.log_path);
  if (token) running_.push_back({*token, command.host});
  return token;
}

std::optional<ChildExit> MockTransport::poll() {
  const auto exit = children_.poll();
  if (exit) {
    running_.erase(
        std::remove_if(running_.begin(), running_.end(),
                       [&](const Running& r) { return r.token == exit->token; }),
        running_.end());
  }
  return exit;
}

void MockTransport::kill(std::uint64_t token) { children_.kill(token); }

bool MockTransport::fetch(const std::string& host,
                          const std::string& remote_path, std::string* bytes,
                          std::string* error) {
  if (!probe(host, error)) return false;
  if (!read_local_file(remote_path, *bytes)) {
    if (error != nullptr) *error = "no such file: " + remote_path;
    return false;
  }
  return true;
}

}  // namespace pef
