#include "orchestrator/supervisor.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <thread>

#include "common/check.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "engine/sweep_runner.hpp"
#include "orchestrator/fault.hpp"
#include "orchestrator/ledger.hpp"
#include "orchestrator/voter.hpp"

namespace pef {
namespace {

using Clock = std::chrono::steady_clock;

/// One replica slot's lifecycle.  A shard has `replicate` slots; the shard
/// settles when every slot is kValid or kExhausted, and then the vote
/// decides.
enum class SlotState : std::uint8_t {
  kPending,    // waiting for a free worker (and its backoff gate)
  kRunning,
  kValid,      // produced validated shard JSON
  kExhausted,  // burned the whole attempt budget
};

struct Slot {
  std::uint32_t shard = 0;
  std::uint32_t replica = 0;
  SlotState state = SlotState::kPending;
  std::uint32_t failures = 0;
  Clock::time_point not_before = Clock::time_point::min();
  // Running:
  std::uint64_t token = 0;
  std::uint32_t attempt = 0;  // fault-layer attempt number of this launch
  Clock::time_point launch_time = Clock::time_point::min();
  Clock::time_point deadline = Clock::time_point::max();
  bool timeout_killed = false;
  std::string output_path;
  // Valid:
  std::string content;
};

bool read_file(const std::string& path, std::string& out) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) return false;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  out = buffer.str();
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::binary);
  if (!file.is_open()) return false;
  file << content;
  file.flush();
  return file.good();
}

/// Is `content` a well-formed shard file for exactly this sweep and shard?
/// This is the crash/corruption detector: a worker that exits 0 after
/// writing garbage (or the right data for the wrong shard) fails here.
bool validate_shard_content(const std::string& content,
                            const OrchestratorOptions& options,
                            std::uint32_t shard, std::string* why) {
  std::string error;
  const auto document = parse_json(content, &error);
  if (!document) {
    *why = "output is not JSON (" + error + ")";
    return false;
  }
  const JsonValue* spec = document->find("spec");
  const JsonValue* index = document->find("shard_index");
  const JsonValue* count = document->find("shard_count");
  if (spec == nullptr || !spec->is_string() || index == nullptr ||
      !index->is_uint || count == nullptr || !count->is_uint) {
    *why = "output is not a shard file";
    return false;
  }
  if (spec->string_value != options.spec_json) {
    *why = "output belongs to a different sweep";
    return false;
  }
  if (index->uint_value != shard || count->uint_value != options.shards) {
    *why = "output covers shard " + std::to_string(index->uint_value) + "/" +
           std::to_string(count->uint_value) + ", expected " +
           std::to_string(shard) + "/" + std::to_string(options.shards);
    return false;
  }
  return true;
}

std::string join_path(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  return dir.back() == '/' ? dir + name : dir + "/" + name;
}

void log_line(std::ostream* log, const std::string& line) {
  if (log != nullptr) *log << "pef_orchestrate: " << line << "\n";
}

}  // namespace

double backoff_delay_ms(double initial_ms, double cap_ms,
                        std::uint32_t failures, std::uint64_t jitter_seed) {
  double ms = initial_ms;
  for (std::uint32_t f = 1; f < failures; ++f) {
    ms *= 2;
    if (ms >= cap_ms) break;
  }
  ms = std::min(ms, cap_ms);
  Xoshiro256 rng(jitter_seed);
  return ms * (0.8 + 0.4 * rng.next_double());
}

OrchestratorResult orchestrate(WorkerBackend& backend,
                               const OrchestratorOptions& options,
                               std::ostream* log) {
  PEF_CHECK_MSG(options.shards >= 1, "need at least one shard");
  PEF_CHECK_MSG(options.replicate >= 1, "replicate must be >= 1");
  PEF_CHECK_MSG(options.max_attempts >= 1, "max_attempts must be >= 1");
  PEF_CHECK_MSG(!options.spec_json.empty(), "need the canonical spec JSON");

  if (!options.workdir.empty()) {
    ::mkdir(options.workdir.c_str(), 0755);  // EEXIST is fine
  }

  // The ledger pins run identity; a matching existing journal turns this
  // invocation into a resume.
  const Ledger::Header header{fnv1a64(options.spec_json), options.shards,
                              options.replicate};
  std::string ledger_error;
  std::string ledger_warning;
  auto ledger = Ledger::open(join_path(options.workdir, "ledger.jsonl"),
                             header, &ledger_error, &ledger_warning);
  PEF_CHECK_MSG(ledger.has_value(), ledger_error.c_str());
  if (!ledger_warning.empty()) log_line(log, ledger_warning);

  OrchestratorResult result;
  result.outcomes.resize(options.shards);
  for (std::uint32_t s = 0; s < options.shards; ++s) {
    result.outcomes[s].shard = s;
  }

  // Accepted (post-vote) shard JSON, by shard index.
  std::vector<std::string> accepted(options.shards);

  // Resume: a journaled shard counts as done only if its accepted output
  // still exists and validates — the ledger says what finished, the file
  // proves it.
  for (const auto& [shard, state] : ledger->shards()) {
    if (!state.done || shard >= options.shards) continue;
    std::string content;
    std::string why;
    if (read_file(state.output_file, content) &&
        validate_shard_content(content, options, shard, &why)) {
      accepted[shard] = std::move(content);
      result.outcomes[shard].accepted = true;
      result.outcomes[shard].resumed = true;
      log_line(log, "shard " + std::to_string(shard) +
                        " already done (ledger) — skipping");
    } else {
      log_line(log, "shard " + std::to_string(shard) +
                        " journaled done but " + state.output_file +
                        " is gone or invalid — re-running");
    }
  }

  // Replica slots for every shard not satisfied by the ledger.
  std::vector<Slot> slots;
  for (std::uint32_t s = 0; s < options.shards; ++s) {
    if (result.outcomes[s].resumed) continue;
    for (std::uint32_t r = 0; r < options.replicate; ++r) {
      Slot slot;
      slot.shard = s;
      slot.replica = r;
      slots.push_back(slot);
    }
  }

  // Concurrency target is recomputed every pass: a fleet backend's
  // capacity shrinks when hosts get quarantined, and the launch loop must
  // see that immediately rather than keep aiming at the dead slots.
  const auto jobs_now = [&]() {
    const std::uint32_t cap = backend.capacity();
    return options.jobs == 0 ? cap : std::min(options.jobs, cap);
  };

  // Jittered backoff, seeded per (run, shard, replica, failure) so the
  // schedule is reproducible but slots never retry in lockstep.
  const auto backoff_for = [&options, &header](const Slot& slot) {
    const std::uint64_t jitter_seed =
        derive_seed(header.spec_hash, slot.shard, slot.replica, slot.failures);
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(
            backoff_delay_ms(options.backoff_initial_ms,
                             options.backoff_cap_ms, slot.failures,
                             jitter_seed)));
  };

  const auto fail_slot = [&](Slot& slot, const std::string& reason) {
    ++slot.failures;
    ShardOutcome& outcome = result.outcomes[slot.shard];
    ++outcome.failures;
    ledger->record_failed(slot.shard, slot.failures, reason);
    if (slot.failures >= options.max_attempts) {
      slot.state = SlotState::kExhausted;
      log_line(log, "shard " + std::to_string(slot.shard) + " replica " +
                        std::to_string(slot.replica) + ": " + reason +
                        " — attempt budget exhausted (" +
                        std::to_string(options.max_attempts) + ")");
    } else {
      slot.state = SlotState::kPending;
      slot.not_before = Clock::now() + backoff_for(slot);
      log_line(log, "shard " + std::to_string(slot.shard) + " replica " +
                        std::to_string(slot.replica) + ": " + reason +
                        " — retrying (attempt " +
                        std::to_string(slot.failures + 1) + "/" +
                        std::to_string(options.max_attempts) + ")");
    }
  };

  // Per-shard wall clock: first launch (this run) to settle.
  std::vector<Clock::time_point> shard_start(options.shards,
                                             Clock::time_point::min());

  // One report line per launch that reached the backend.
  const auto record_attempt = [&](const Slot& slot, const std::string& host,
                                  const std::string& outcome) {
    ShardAttempt attempt;
    attempt.replica = slot.replica;
    attempt.attempt = slot.attempt;
    attempt.host = host;
    attempt.wall_ms = std::chrono::duration<double, std::milli>(
                          Clock::now() - slot.launch_time)
                          .count();
    attempt.outcome = outcome;
    result.outcomes[slot.shard].attempts.push_back(std::move(attempt));
  };

  // Settle one shard once all its replica slots are kValid/kExhausted.
  std::vector<std::uint8_t> settled(options.shards, 0);
  const auto try_settle_shard = [&](std::uint32_t shard) {
    if (settled[shard]) return;
    std::vector<ReplicaBallot> ballots;
    for (const Slot& slot : slots) {
      if (slot.shard != shard) continue;
      if (slot.state != SlotState::kValid &&
          slot.state != SlotState::kExhausted) {
        return;  // still in flight
      }
      ReplicaBallot ballot;
      ballot.replica = slot.replica;
      ballot.valid = slot.state == SlotState::kValid;
      if (ballot.valid) ballot.content = slot.content;
      ballots.push_back(std::move(ballot));
    }
    settled[shard] = 1;

    ShardOutcome& outcome = result.outcomes[shard];
    if (shard_start[shard] != Clock::time_point::min()) {
      outcome.wall_ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - shard_start[shard])
                            .count();
    }
    const VoteResult vote = vote_on_replicas(ballots);
    outcome.divergent_replicas = vote.divergent_replicas;
    if (!vote.accepted) {
      outcome.fail_reason =
          vote.winner_votes == 0
              ? "every replica exhausted its attempt budget"
              : "no byte-identical majority among replicas (" +
                    std::to_string(vote.winner_votes) + "/" +
                    std::to_string(options.replicate) +
                    " best agreement) — determinism bug or hardware fault";
      log_line(log,
               "shard " + std::to_string(shard) + " FAILED: " +
                   outcome.fail_reason);
      return;
    }
    if (!vote.divergent_replicas.empty()) {
      std::string list;
      for (const std::uint32_t r : vote.divergent_replicas) {
        list += (list.empty() ? "" : ", ") + std::to_string(r);
      }
      log_line(log, "shard " + std::to_string(shard) + ": replica" +
                        (vote.divergent_replicas.size() == 1 ? " " : "s ") +
                        list +
                        " diverged from the majority (outvoted " +
                        std::to_string(vote.winner_votes) + "/" +
                        std::to_string(options.replicate) +
                        ") — check that worker's hardware");
    }
    // Persist the accepted bytes under the shard's canonical name and
    // journal it; the per-attempt replica files stay behind for forensics.
    const std::string accepted_path = join_path(
        options.workdir, "shard" + std::to_string(shard) + ".json");
    PEF_CHECK_MSG(write_file(accepted_path, vote.winner),
                  "cannot write accepted shard file");
    ledger->record_done(shard, accepted_path);
    accepted[shard] = vote.winner;
    outcome.accepted = true;
    log_line(log, "shard " + std::to_string(shard) + " accepted (" +
                      std::to_string(vote.winner_votes) + "/" +
                      std::to_string(options.replicate) + " votes)");
  };

  // The supervision loop: launch ready slots, kill stragglers, collect and
  // validate exits, until every slot settles.
  for (;;) {
    const auto now = Clock::now();

    // Supervision timeouts: a hung worker is killed; the death is handled
    // below like any other failed attempt.
    if (options.timeout_seconds > 0) {
      for (Slot& slot : slots) {
        if (slot.state == SlotState::kRunning && !slot.timeout_killed &&
            now >= slot.deadline) {
          slot.timeout_killed = true;
          ++result.outcomes[slot.shard].timeouts;
          backend.kill(slot.token);
        }
      }
    }

    // Launch pending slots whose backoff gate has passed.
    const std::uint32_t jobs = jobs_now();
    for (Slot& slot : slots) {
      if (backend.running() >= jobs) break;
      if (slot.state != SlotState::kPending || now < slot.not_before) {
        continue;
      }
      // Distinct per-launch attempt number: the fault layer re-rolls per
      // attempt and replicas must roll independently of each other.
      const std::uint32_t attempt =
          slot.replica * options.max_attempts + slot.failures;
      const std::string tag = "shard" + std::to_string(slot.shard) + ".r" +
                              std::to_string(slot.replica) + ".a" +
                              std::to_string(slot.failures);
      slot.output_path = join_path(options.workdir, tag + ".json");
      WorkerLaunch launch;
      launch.argv = {options.worker_binary,
                     "--spec", options.spec_path,
                     "--shard",
                     std::to_string(slot.shard) + "/" +
                         std::to_string(options.shards),
                     "--threads", std::to_string(options.worker_threads),
                     "--out", slot.output_path};
      launch.env = {{kFaultAttemptEnvVar, std::to_string(attempt)}};
      // Remote workers don't inherit this process's environment, so the
      // chaos spec must travel explicitly (the local backend's children
      // would inherit it anyway; passing it twice is harmless).
      if (const char* spec = std::getenv(kFaultSpecEnvVar)) {
        launch.env.push_back({kFaultSpecEnvVar, spec});
      }
      launch.log_path = join_path(options.workdir, tag + ".log");
      // Remote-backend metadata: which shard/attempt this is (for the
      // chaos layer's per-host decisions), what to stage, what to fetch.
      launch.shard = slot.shard;
      launch.attempt = attempt;
      launch.stage_in = options.spec_path;
      launch.output_path = slot.output_path;
      const auto token = backend.launch(launch);
      if (!token) {
        fail_slot(slot, backend.last_launch_error());
        try_settle_shard(slot.shard);
        continue;
      }
      slot.state = SlotState::kRunning;
      slot.token = *token;
      slot.attempt = attempt;
      slot.launch_time = Clock::now();
      if (shard_start[slot.shard] == Clock::time_point::min()) {
        shard_start[slot.shard] = slot.launch_time;
      }
      slot.timeout_killed = false;
      slot.deadline =
          options.timeout_seconds > 0
              ? now + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(
                              options.timeout_seconds))
              : Clock::time_point::max();
      ++result.outcomes[slot.shard].launches;
      log_line(log, "launch " + tag + " (attempt " +
                        std::to_string(slot.failures + 1) + "/" +
                        std::to_string(options.max_attempts) + ")");
    }

    // Collect exits.
    while (const auto exit = backend.poll()) {
      Slot* slot = nullptr;
      for (Slot& candidate : slots) {
        if (candidate.state == SlotState::kRunning &&
            candidate.token == exit->token) {
          slot = &candidate;
          break;
        }
      }
      if (slot == nullptr) continue;  // not ours (defensive)
      // Classify the attempt.  The kind feeds the backend's host health
      // accounting: host faults (kills, signal deaths, transport failures,
      // missing or corrupt output) charge the host toward its circuit
      // breaker, application faults (the worker itself exiting non-zero)
      // do not — a buggy sweep must not blacklist a healthy fleet.
      std::string reason;
      auto kind = WorkerOutcomeKind::kSuccess;
      if (slot->timeout_killed) {
        reason = "timed out after " +
                 std::to_string(options.timeout_seconds) + "s (killed)";
        kind = WorkerOutcomeKind::kHostFault;
      } else if (exit->exit_code != 0) {
        if (exit->term_signal != 0) {
          reason = "worker died on signal " +
                   std::to_string(exit->term_signal);
          kind = WorkerOutcomeKind::kHostFault;
        } else {
          reason = "worker exited with code " +
                   std::to_string(exit->exit_code);
          kind = exit->host_suspect ? WorkerOutcomeKind::kHostFault
                                    : WorkerOutcomeKind::kAppFault;
        }
      } else {
        std::string content;
        std::string why;
        if (!read_file(slot->output_path, content)) {
          reason = "worker exited 0 but wrote no output";
          kind = WorkerOutcomeKind::kHostFault;
        } else if (!validate_shard_content(content, options, slot->shard,
                                           &why)) {
          reason = why;
          kind = WorkerOutcomeKind::kHostFault;
        } else {
          slot->state = SlotState::kValid;
          slot->content = std::move(content);
        }
      }
      backend.note_result(*exit, kind);
      record_attempt(*slot, exit->host, reason.empty() ? "ok" : reason);
      if (!reason.empty()) fail_slot(*slot, reason);
      try_settle_shard(slot->shard);
    }

    // A fleet with every host quarantined can never launch again: fail
    // the pending slots outright instead of spinning on a backoff gate
    // that will never open.
    if (backend.capacity() == 0 && backend.running() == 0) {
      for (Slot& slot : slots) {
        if (slot.state != SlotState::kPending) continue;
        ++slot.failures;
        ++result.outcomes[slot.shard].failures;
        ledger->record_failed(slot.shard, slot.failures,
                              "no live hosts left in the fleet");
        slot.state = SlotState::kExhausted;
        log_line(log, "shard " + std::to_string(slot.shard) + " replica " +
                          std::to_string(slot.replica) +
                          ": no live hosts left in the fleet — giving up");
        try_settle_shard(slot.shard);
      }
    }

    // Done?  Every slot terminal and every shard settled.
    bool all_settled = true;
    for (std::uint32_t s = 0; s < options.shards; ++s) {
      if (!result.outcomes[s].resumed && !settled[s]) all_settled = false;
    }
    if (all_settled) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Merge what was accepted; degrade gracefully on anything less.
  std::vector<std::string> shard_jsons;
  std::vector<std::string> shard_names;
  for (std::uint32_t s = 0; s < options.shards; ++s) {
    if (result.outcomes[s].accepted) {
      shard_jsons.push_back(accepted[s]);
      shard_names.push_back("shard " + std::to_string(s));
    } else {
      result.failed_shards.push_back(s);
    }
  }
  if (!shard_jsons.empty()) {
    std::string merge_error;
    const auto merge =
        merge_sweep_shards_partial(shard_jsons, &merge_error, &shard_names);
    // Accepted shards already passed per-shard validation, so the merge
    // can only fail on a bug — surface it loudly.
    PEF_CHECK_MSG(merge.has_value(), merge_error.c_str());
    result.merged_json = merge->json;
    result.complete = merge->complete;
  }

  // The machine-readable report: what ran, what failed, what to distrust.
  {
    JsonWriter json;
    json.begin_object();
    json.field("orchestrate_complete", result.complete);
    json.field("spec_hash", header.spec_hash);
    json.field("backend", options.backend_name);
    json.field("shards", options.shards);
    json.field("replicate", options.replicate);
    json.field("max_attempts", options.max_attempts);
    json.begin_array("failed_shards");
    for (const std::uint32_t s : result.failed_shards) {
      json.element(static_cast<std::uint64_t>(s));
    }
    json.end_array();
    json.begin_array("shard_outcomes");
    for (const ShardOutcome& outcome : result.outcomes) {
      json.begin_object();
      json.field("shard", outcome.shard);
      json.field("accepted", outcome.accepted);
      json.field("resumed", outcome.resumed);
      json.field("launches", outcome.launches);
      json.field("failures", outcome.failures);
      json.field("timeouts", outcome.timeouts);
      json.field("wall_ms", outcome.wall_ms);
      json.begin_array("attempts");
      for (const ShardAttempt& attempt : outcome.attempts) {
        json.begin_object();
        json.field("replica", attempt.replica);
        json.field("attempt", attempt.attempt);
        if (!attempt.host.empty()) json.field("host", attempt.host);
        json.field("wall_ms", attempt.wall_ms);
        json.field("outcome", attempt.outcome);
        json.end_object();
      }
      json.end_array();
      json.begin_array("divergent_replicas");
      for (const std::uint32_t r : outcome.divergent_replicas) {
        json.element(static_cast<std::uint64_t>(r));
      }
      json.end_array();
      if (!outcome.fail_reason.empty()) {
        json.field("fail_reason", outcome.fail_reason);
      }
      json.end_object();
    }
    json.end_array();
    const std::string fleet = backend.fleet_report_json();
    if (!fleet.empty()) json.raw_field("fleet_hosts", fleet);
    json.end_object();
    result.report_json = json.str();
  }
  return result;
}

}  // namespace pef
