// Deterministic fault injection for the distributed sweep stack.
//
// A FaultSpec describes seeded probabilities of the three failure modes a
// shard worker can exhibit in the wild — crash before writing its output,
// write a truncated/corrupted output, or hang — so that every recovery path
// in the orchestrator (retry, timeout kill, voting, partial merge) is
// exercised deterministically in tests and CI rather than only when real
// hardware misbehaves.
//
// The spec travels as the PEF_FAULT_SPEC environment variable, a
// colon-separated key=value list parsed by the shard worker (pef_sweep):
//
//   PEF_FAULT_SPEC="seed=7:crash=0.4:corrupt=0.2:flip=0.1:shards=1,3"
//
//   seed=U      master seed of the fault stream (default 0)
//   crash=P     probability of _exit before writing the output file
//   corrupt=P   probability of writing a truncated output (exit code 0 —
//               only output validation can catch it)
//   flip=P      probability of a SILENT corruption: valid shard JSON with
//               one metric altered (simulated bit-flip — exit 0, parses,
//               right sweep; only an NMR vote can catch it)
//   hang=P      probability of sleeping forever (only a supervision
//               timeout can catch it)
//   shards=I,J  optional filter: faults apply only to these shard indices
//
// The fault decision for one worker launch is a pure function of
// (spec seed, shard index, attempt number): the orchestrator numbers every
// launch of a shard (retries and NMR replicas alike) with a distinct
// attempt via the PEF_FAULT_ATTEMPT environment variable, so a retried
// shard re-rolls its fate deterministically and a given (spec, flags) pair
// always reproduces the same fault pattern — which is what lets CI gate on
// "the orchestrator converges through these exact faults".
//
// Remote fleets add NETWORK-shaped faults, enacted by the orchestrator's
// fleet backend (never by the worker) as a pure function of (spec seed,
// host name, shard index, attempt number):
//
//   refuse=P    connection refused at launch (the worker never starts)
//   drop=P      link drop mid-run (the in-flight worker dies on a signal)
//   stall=P     stalled output transfer (the worker finishes but its
//               output never lands locally)
//   partial=P   partial output fetch (only a prefix of the bytes lands —
//               indistinguishable from a corrupt-output worker)
//
// Each key takes an optional `<key>_hosts=H1,H2` filter restricting that
// fault to the named hosts — `refuse=1.0:refuse_hosts=nodeB` scripts "node
// B is down", while unfiltered probabilities model flaky links fleet-wide.
// When several net faults could fire for one launch they are tried in the
// fixed order refuse > drop > stall > partial on independent derived
// streams, so the outcome stays a pure function of the coordinates.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pef {

/// What a fault-injected worker should do this attempt.
enum class FaultAction : std::uint8_t {
  kNone,          // run normally
  kCrash,         // _exit(kFaultCrashExitCode) before writing output
  kCorruptOutput, // write a truncated output file, then exit 0
  kSilentCorrupt, // write VALID shard JSON with one metric flipped, exit 0
  kHang,          // sleep past any reasonable timeout
};

[[nodiscard]] const char* to_string(FaultAction action);

/// What a fleet backend should do to one remote launch (decided on the
/// orchestrator side; workers never see these).
enum class NetFaultAction : std::uint8_t {
  kNone,          // launch, run and fetch normally
  kRefuse,        // fail the launch ("connection refused")
  kDrop,          // kill the worker mid-run (link drop / host death)
  kStall,         // run to completion but never deliver the output
  kPartialFetch,  // deliver only a prefix of the output bytes
};

[[nodiscard]] const char* to_string(NetFaultAction action);

/// Exit code of an injected crash — distinct from real pef_sweep failures
/// (1/2) so orchestrator logs show which deaths were injected.
inline constexpr int kFaultCrashExitCode = 117;

struct FaultSpec {
  /// One network fault family: its probability plus an optional host
  /// filter (empty == applies to every host).
  struct NetFault {
    double p = 0;
    std::vector<std::string> hosts;

    [[nodiscard]] bool applies_to(const std::string& host) const;
  };

  std::uint64_t seed = 0;
  double crash = 0;
  double corrupt = 0;
  double flip = 0;
  double hang = 0;
  /// Empty == faults apply to every shard.
  std::vector<std::uint32_t> shards;
  // Network faults (fleet backends only; see the grammar above).
  NetFault refuse;
  NetFault drop;
  NetFault stall;
  NetFault partial;

  /// True when every worker-side probability is zero (decide() is always
  /// kNone).  Network faults are separate: see net_inert().
  [[nodiscard]] bool inert() const {
    return crash <= 0 && corrupt <= 0 && flip <= 0 && hang <= 0;
  }

  /// True when every network-fault probability is zero (decide_net() is
  /// always kNone).
  [[nodiscard]] bool net_inert() const {
    return refuse.p <= 0 && drop.p <= 0 && stall.p <= 0 && partial.p <= 0;
  }

  /// The fate of launch `attempt` of shard `shard_index`: one uniform draw
  /// from a stream derived from (seed, shard, attempt) lands in the
  /// [crash | corrupt | hang | none] partition of [0, 1).
  [[nodiscard]] FaultAction decide(std::uint32_t shard_index,
                                   std::uint32_t attempt) const;

  /// The network fate of launch `attempt` of `shard_index` on `host`:
  /// refuse > drop > stall > partial are tried in that order on
  /// independent streams derived from (seed, host, shard, attempt).
  [[nodiscard]] NetFaultAction decide_net(const std::string& host,
                                          std::uint32_t shard_index,
                                          std::uint32_t attempt) const;

  /// Parse the PEF_FAULT_SPEC grammar above.  Empty text parses to the
  /// inert spec.  Unknown keys, malformed numbers and probabilities
  /// summing past 1 are errors.
  [[nodiscard]] static std::optional<FaultSpec> parse(const std::string& text,
                                                      std::string* error);

  /// Canonical re-serialization (for logs and the orchestrator's report).
  [[nodiscard]] std::string to_string() const;
};

/// The shard worker's entry point: read PEF_FAULT_SPEC + PEF_FAULT_ATTEMPT
/// from the environment and decide this process's fate.  Returns kNone when
/// the variable is unset; aborts with a message on a malformed spec (a typo
/// in a chaos test must never silently disable the chaos).
[[nodiscard]] FaultAction fault_action_from_env(std::uint32_t shard_index);

/// The orchestrator side's view of PEF_FAULT_SPEC (fleet backends enact
/// the network faults themselves).  Unset/empty parses to the inert spec;
/// a malformed spec aborts, same as the worker side.
[[nodiscard]] FaultSpec fault_spec_from_env();

/// Names of the environment variables (shared by worker and orchestrator).
inline constexpr const char* kFaultSpecEnvVar = "PEF_FAULT_SPEC";
inline constexpr const char* kFaultAttemptEnvVar = "PEF_FAULT_ATTEMPT";

}  // namespace pef
