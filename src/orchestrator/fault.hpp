// Deterministic fault injection for the distributed sweep stack.
//
// A FaultSpec describes seeded probabilities of the three failure modes a
// shard worker can exhibit in the wild — crash before writing its output,
// write a truncated/corrupted output, or hang — so that every recovery path
// in the orchestrator (retry, timeout kill, voting, partial merge) is
// exercised deterministically in tests and CI rather than only when real
// hardware misbehaves.
//
// The spec travels as the PEF_FAULT_SPEC environment variable, a
// colon-separated key=value list parsed by the shard worker (pef_sweep):
//
//   PEF_FAULT_SPEC="seed=7:crash=0.4:corrupt=0.2:flip=0.1:shards=1,3"
//
//   seed=U      master seed of the fault stream (default 0)
//   crash=P     probability of _exit before writing the output file
//   corrupt=P   probability of writing a truncated output (exit code 0 —
//               only output validation can catch it)
//   flip=P      probability of a SILENT corruption: valid shard JSON with
//               one metric altered (simulated bit-flip — exit 0, parses,
//               right sweep; only an NMR vote can catch it)
//   hang=P      probability of sleeping forever (only a supervision
//               timeout can catch it)
//   shards=I,J  optional filter: faults apply only to these shard indices
//
// The fault decision for one worker launch is a pure function of
// (spec seed, shard index, attempt number): the orchestrator numbers every
// launch of a shard (retries and NMR replicas alike) with a distinct
// attempt via the PEF_FAULT_ATTEMPT environment variable, so a retried
// shard re-rolls its fate deterministically and a given (spec, flags) pair
// always reproduces the same fault pattern — which is what lets CI gate on
// "the orchestrator converges through these exact faults".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pef {

/// What a fault-injected worker should do this attempt.
enum class FaultAction : std::uint8_t {
  kNone,          // run normally
  kCrash,         // _exit(kFaultCrashExitCode) before writing output
  kCorruptOutput, // write a truncated output file, then exit 0
  kSilentCorrupt, // write VALID shard JSON with one metric flipped, exit 0
  kHang,          // sleep past any reasonable timeout
};

[[nodiscard]] const char* to_string(FaultAction action);

/// Exit code of an injected crash — distinct from real pef_sweep failures
/// (1/2) so orchestrator logs show which deaths were injected.
inline constexpr int kFaultCrashExitCode = 117;

struct FaultSpec {
  std::uint64_t seed = 0;
  double crash = 0;
  double corrupt = 0;
  double flip = 0;
  double hang = 0;
  /// Empty == faults apply to every shard.
  std::vector<std::uint32_t> shards;

  /// True when every probability is zero (decide() is always kNone).
  [[nodiscard]] bool inert() const {
    return crash <= 0 && corrupt <= 0 && flip <= 0 && hang <= 0;
  }

  /// The fate of launch `attempt` of shard `shard_index`: one uniform draw
  /// from a stream derived from (seed, shard, attempt) lands in the
  /// [crash | corrupt | hang | none] partition of [0, 1).
  [[nodiscard]] FaultAction decide(std::uint32_t shard_index,
                                   std::uint32_t attempt) const;

  /// Parse the PEF_FAULT_SPEC grammar above.  Empty text parses to the
  /// inert spec.  Unknown keys, malformed numbers and probabilities
  /// summing past 1 are errors.
  [[nodiscard]] static std::optional<FaultSpec> parse(const std::string& text,
                                                      std::string* error);

  /// Canonical re-serialization (for logs and the orchestrator's report).
  [[nodiscard]] std::string to_string() const;
};

/// The shard worker's entry point: read PEF_FAULT_SPEC + PEF_FAULT_ATTEMPT
/// from the environment and decide this process's fate.  Returns kNone when
/// the variable is unset; aborts with a message on a malformed spec (a typo
/// in a chaos test must never silently disable the chaos).
[[nodiscard]] FaultAction fault_action_from_env(std::uint32_t shard_index);

/// Names of the environment variables (shared by worker and orchestrator).
inline constexpr const char* kFaultSpecEnvVar = "PEF_FAULT_SPEC";
inline constexpr const char* kFaultAttemptEnvVar = "PEF_FAULT_ATTEMPT";

}  // namespace pef
