#include "orchestrator/process.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>

namespace pef {

ChildProcessSet::~ChildProcessSet() {
  for (const Child& child : children_) {
    ::kill(child.pid, SIGKILL);
    ::waitpid(child.pid, nullptr, 0);
  }
}

std::optional<std::uint64_t> ChildProcessSet::spawn(
    const std::vector<std::string>& argv,
    const std::vector<std::pair<std::string, std::string>>& env,
    const std::string& log_path, const std::string& stdin_path) {
  return spawn_impl(argv, env, log_path, stdin_path, -1);
}

std::optional<std::uint64_t> ChildProcessSet::spawn_capture(
    const std::vector<std::string>& argv,
    const std::vector<std::pair<std::string, std::string>>& env,
    int* stdout_fd) {
  int fds[2];
  if (::pipe(fds) != 0) return std::nullopt;
  const auto token = spawn_impl(argv, env, "", "", fds[1]);
  ::close(fds[1]);
  if (!token) {
    ::close(fds[0]);
    return std::nullopt;
  }
  *stdout_fd = fds[0];
  return token;
}

std::optional<std::uint64_t> ChildProcessSet::spawn_impl(
    const std::vector<std::string>& argv,
    const std::vector<std::pair<std::string, std::string>>& env,
    const std::string& log_path, const std::string& stdin_path,
    int stdout_fd) {
  if (argv.empty()) return std::nullopt;
  const pid_t pid = ::fork();
  if (pid < 0) return std::nullopt;
  if (pid == 0) {
    // Child.  The JSON payload travels via files (or the capture pipe);
    // the streams carry only diagnostics.
    if (!stdin_path.empty()) {
      const int fd = ::open(stdin_path.c_str(), O_RDONLY);
      if (fd < 0) _exit(127);
      ::dup2(fd, STDIN_FILENO);
      if (fd > STDERR_FILENO) ::close(fd);
    }
    if (stdout_fd >= 0) {
      ::dup2(stdout_fd, STDOUT_FILENO);
      if (stdout_fd > STDERR_FILENO) ::close(stdout_fd);
    } else if (!log_path.empty()) {
      const int fd = ::open(log_path.c_str(),
                            O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        if (fd > STDERR_FILENO) ::close(fd);
      }
    }
    for (const auto& [key, value] : env) {
      ::setenv(key.c_str(), value.c_str(), 1);
    }
    std::vector<char*> child_argv;
    child_argv.reserve(argv.size() + 1);
    for (const std::string& arg : argv) {
      child_argv.push_back(const_cast<char*>(arg.c_str()));
    }
    child_argv.push_back(nullptr);
    ::execvp(child_argv[0], child_argv.data());
    _exit(127);  // exec failed; 127 matches the shell convention
  }
  const std::uint64_t token = next_token_++;
  children_.push_back({token, pid});
  return token;
}

ChildExit ChildProcessSet::decode(std::uint64_t token, int status) {
  ChildExit exit;
  exit.token = token;
  if (WIFEXITED(status)) {
    exit.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    exit.exit_code = -1;
    exit.term_signal = WTERMSIG(status);
  }
  return exit;
}

std::optional<ChildExit> ChildProcessSet::poll() {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    int status = 0;
    const pid_t pid = ::waitpid(children_[i].pid, &status, WNOHANG);
    if (pid != children_[i].pid) continue;
    const ChildExit exit = decode(children_[i].token, status);
    children_.erase(children_.begin() + static_cast<std::ptrdiff_t>(i));
    return exit;
  }
  return std::nullopt;
}

std::optional<ChildExit> ChildProcessSet::wait(std::uint64_t token) {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].token != token) continue;
    int status = 0;
    const pid_t pid = ::waitpid(children_[i].pid, &status, 0);
    if (pid != children_[i].pid) return std::nullopt;
    const ChildExit exit = decode(token, status);
    children_.erase(children_.begin() + static_cast<std::ptrdiff_t>(i));
    return exit;
  }
  return std::nullopt;
}

void ChildProcessSet::kill(std::uint64_t token) {
  for (const Child& child : children_) {
    if (child.token == token) {
      ::kill(child.pid, SIGKILL);  // reaped (and reported) via poll()
      return;
    }
  }
}

}  // namespace pef
