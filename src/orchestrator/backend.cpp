#include "orchestrator/backend.hpp"

#include <thread>

namespace pef {

LocalProcessBackend::LocalProcessBackend(std::uint32_t capacity)
    : capacity_(capacity) {
  if (capacity_ == 0) {
    capacity_ = std::thread::hardware_concurrency();
    if (capacity_ == 0) capacity_ = 1;
  }
}

std::optional<std::uint64_t> LocalProcessBackend::launch(
    const WorkerLaunch& launch) {
  return children_.spawn(launch.argv, launch.env, launch.log_path);
}

std::optional<WorkerExit> LocalProcessBackend::poll() {
  const auto child = children_.poll();
  if (!child) return std::nullopt;
  WorkerExit exit;
  exit.token = child->token;
  exit.exit_code = child->exit_code;
  exit.term_signal = child->term_signal;
  return exit;
}

void LocalProcessBackend::kill(std::uint64_t token) { children_.kill(token); }

}  // namespace pef
