#include "orchestrator/backend.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <thread>

namespace pef {

LocalProcessBackend::LocalProcessBackend(std::uint32_t capacity)
    : capacity_(capacity) {
  if (capacity_ == 0) {
    capacity_ = std::thread::hardware_concurrency();
    if (capacity_ == 0) capacity_ = 1;
  }
}

LocalProcessBackend::~LocalProcessBackend() {
  // Never leave orphans: an orchestrator dying mid-run takes its workers
  // with it (their partial outputs are invalid anyway; the ledger makes
  // the next run redo exactly that work).
  for (const Child& child : children_) {
    ::kill(child.pid, SIGKILL);
    ::waitpid(child.pid, nullptr, 0);
  }
}

std::optional<std::uint64_t> LocalProcessBackend::launch(
    const WorkerLaunch& launch) {
  if (launch.argv.empty()) return std::nullopt;
  const pid_t pid = ::fork();
  if (pid < 0) return std::nullopt;
  if (pid == 0) {
    // Child.  Route both streams into the per-attempt log (the JSON result
    // travels via the worker's --out file, so stdout is diagnostics too).
    if (!launch.log_path.empty()) {
      const int fd = ::open(launch.log_path.c_str(),
                            O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        if (fd > STDERR_FILENO) ::close(fd);
      }
    }
    for (const auto& [key, value] : launch.env) {
      ::setenv(key.c_str(), value.c_str(), 1);
    }
    std::vector<char*> argv;
    argv.reserve(launch.argv.size() + 1);
    for (const std::string& arg : launch.argv) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execvp(argv[0], argv.data());
    _exit(127);  // exec failed; 127 matches the shell convention
  }
  const std::uint64_t token = next_token_++;
  children_.push_back({token, pid});
  return token;
}

std::optional<WorkerExit> LocalProcessBackend::poll() {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    int status = 0;
    const pid_t pid = ::waitpid(children_[i].pid, &status, WNOHANG);
    if (pid != children_[i].pid) continue;
    WorkerExit exit;
    exit.token = children_[i].token;
    if (WIFEXITED(status)) {
      exit.exit_code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      exit.exit_code = -1;
      exit.term_signal = WTERMSIG(status);
    }
    children_.erase(children_.begin() + static_cast<std::ptrdiff_t>(i));
    return exit;
  }
  return std::nullopt;
}

void LocalProcessBackend::kill(std::uint64_t token) {
  for (const Child& child : children_) {
    if (child.token == token) {
      ::kill(child.pid, SIGKILL);  // reaped (and reported) via poll()
      return;
    }
  }
}

}  // namespace pef
