// WorkerBackend — where shard workers actually run.
//
// The supervisor (orchestrator/supervisor.hpp) is backend-agnostic: it
// hands a backend fully-formed argv + extra environment for each worker
// launch, then polls for exits and kills stragglers.  This file ships the
// first backend, a local fork/exec process pool; the interface is shaped
// so an ssh backend ("run argv on host X, stage the output file back") or
// a batch-queue backend (qsub/sbatch wrappers) can slot in behind the same
// four calls without touching the supervision logic — the TETRiS
// client/server split applied to sweep shards.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "orchestrator/process.hpp"

namespace pef {

/// One worker launch: a child argv plus environment additions (fault
/// attempt numbering etc.).  Worker stdout/stderr are appended to
/// `log_path` when set — shard results travel through `--out` files, so
/// the streams carry only diagnostics.
///
/// The last four fields are remote-backend metadata: argv is written in
/// LOCAL terms (local spec path, local output path), and a remote backend
/// uses them to stage the spec out, rewrite argv for the remote
/// filesystem, and fetch the output back to exactly `output_path` — the
/// supervisor validates that local file either way.  LocalProcessBackend
/// ignores them.
struct WorkerLaunch {
  std::vector<std::string> argv;  // argv[0] = binary (PATH-resolved)
  std::vector<std::pair<std::string, std::string>> env;
  std::string log_path;
  std::uint32_t shard = 0;    // shard index (net-fault derivation)
  std::uint32_t attempt = 0;  // launch attempt number (net-fault derivation)
  std::string stage_in;       // local input file the worker needs (the spec)
  std::string output_path;    // local path where the worker's --out must land
};

/// A finished worker, as reported by poll().
struct WorkerExit {
  std::uint64_t token = 0;
  /// Exit code for a normal exit; -1 when the worker died on a signal
  /// (including a supervision kill()).
  int exit_code = -1;
  int term_signal = 0;  // 0 on normal exit
  /// Which host ran the worker (empty for the local backend).
  std::string host;
  /// Backend hint: a non-zero exit_code that the TRANSPORT produced (e.g.
  /// ssh's 255 on a dropped link) rather than the worker itself — the
  /// supervisor charges it to the host, not the workload.
  bool host_suspect = false;
};

/// The supervisor's verdict on a finished worker, fed back to the backend
/// so fleet backends can track per-host health.
enum class WorkerOutcomeKind : std::uint8_t {
  kSuccess,    // output fetched and validated
  kHostFault,  // signal death / timeout / lost or truncated output
  kAppFault,   // clean non-zero exit: the workload failed, not the host
};

class WorkerBackend {
 public:
  virtual ~WorkerBackend() = default;

  /// Start a worker; returns an opaque token for poll()/kill(), or nullopt
  /// when the launch itself failed (fork failure, queue rejection,
  /// connection refused).  last_launch_error() then says why.
  [[nodiscard]] virtual std::optional<std::uint64_t> launch(
      const WorkerLaunch& launch) = 0;

  /// Human-readable reason for the most recent launch() failure.
  [[nodiscard]] virtual std::string last_launch_error() const {
    return "backend failed to launch worker";
  }

  /// Non-blocking: the next finished worker, if any.  Every successful
  /// launch() is eventually reported exactly once (killed workers
  /// included).
  [[nodiscard]] virtual std::optional<WorkerExit> poll() = 0;

  /// Forcibly terminate a running worker (supervision timeout).  The death
  /// still arrives through poll().
  virtual void kill(std::uint64_t token) = 0;

  /// Supervisor feedback after classifying a polled exit: lets fleet
  /// backends do per-host failure accounting (circuit breakers).  Default:
  /// ignored.
  virtual void note_result(const WorkerExit& exit, WorkerOutcomeKind kind) {
    (void)exit;
    (void)kind;
  }

  /// How many workers this backend can usefully run at once.  May SHRINK
  /// mid-run (fleet backends quarantining hosts); the supervisor re-reads
  /// it every scheduling pass.
  [[nodiscard]] virtual std::uint32_t capacity() const = 0;

  /// Currently running workers.
  [[nodiscard]] virtual std::uint32_t running() const = 0;

  /// Per-host health as a JSON array ("[]"-shaped), for the run report.
  /// Empty string == this backend has no host-level state (local pool).
  [[nodiscard]] virtual std::string fleet_report_json() const { return ""; }
};

/// The local process pool: fork/exec on this machine, SIGKILL on timeout,
/// waitpid(WNOHANG) polling.
class LocalProcessBackend final : public WorkerBackend {
 public:
  /// `capacity` == 0 picks std::thread::hardware_concurrency().
  explicit LocalProcessBackend(std::uint32_t capacity = 0);

  [[nodiscard]] std::optional<std::uint64_t> launch(
      const WorkerLaunch& launch) override;
  [[nodiscard]] std::optional<WorkerExit> poll() override;
  void kill(std::uint64_t token) override;
  [[nodiscard]] std::uint32_t capacity() const override { return capacity_; }
  [[nodiscard]] std::uint32_t running() const override {
    return static_cast<std::uint32_t>(children_.running());
  }

 private:
  std::uint32_t capacity_ = 1;
  ChildProcessSet children_;
};

}  // namespace pef
