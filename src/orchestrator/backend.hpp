// WorkerBackend — where shard workers actually run.
//
// The supervisor (orchestrator/supervisor.hpp) is backend-agnostic: it
// hands a backend fully-formed argv + extra environment for each worker
// launch, then polls for exits and kills stragglers.  This file ships the
// first backend, a local fork/exec process pool; the interface is shaped
// so an ssh backend ("run argv on host X, stage the output file back") or
// a batch-queue backend (qsub/sbatch wrappers) can slot in behind the same
// four calls without touching the supervision logic — the TETRiS
// client/server split applied to sweep shards.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pef {

/// One worker launch: a child argv plus environment additions (fault
/// attempt numbering etc.).  Worker stdout/stderr are appended to
/// `log_path` when set — shard results travel through `--out` files, so
/// the streams carry only diagnostics.
struct WorkerLaunch {
  std::vector<std::string> argv;  // argv[0] = binary (PATH-resolved)
  std::vector<std::pair<std::string, std::string>> env;
  std::string log_path;
};

/// A finished worker, as reported by poll().
struct WorkerExit {
  std::uint64_t token = 0;
  /// Exit code for a normal exit; -1 when the worker died on a signal
  /// (including a supervision kill()).
  int exit_code = -1;
  int term_signal = 0;  // 0 on normal exit
};

class WorkerBackend {
 public:
  virtual ~WorkerBackend() = default;

  /// Start a worker; returns an opaque token for poll()/kill(), or nullopt
  /// when the launch itself failed (fork failure, queue rejection).
  [[nodiscard]] virtual std::optional<std::uint64_t> launch(
      const WorkerLaunch& launch) = 0;

  /// Non-blocking: the next finished worker, if any.  Every successful
  /// launch() is eventually reported exactly once (killed workers
  /// included).
  [[nodiscard]] virtual std::optional<WorkerExit> poll() = 0;

  /// Forcibly terminate a running worker (supervision timeout).  The death
  /// still arrives through poll().
  virtual void kill(std::uint64_t token) = 0;

  /// How many workers this backend can usefully run at once.
  [[nodiscard]] virtual std::uint32_t capacity() const = 0;

  /// Currently running workers.
  [[nodiscard]] virtual std::uint32_t running() const = 0;
};

/// The local process pool: fork/exec on this machine, SIGKILL on timeout,
/// waitpid(WNOHANG) polling.
class LocalProcessBackend final : public WorkerBackend {
 public:
  /// `capacity` == 0 picks std::thread::hardware_concurrency().
  explicit LocalProcessBackend(std::uint32_t capacity = 0);
  ~LocalProcessBackend() override;

  [[nodiscard]] std::optional<std::uint64_t> launch(
      const WorkerLaunch& launch) override;
  [[nodiscard]] std::optional<WorkerExit> poll() override;
  void kill(std::uint64_t token) override;
  [[nodiscard]] std::uint32_t capacity() const override { return capacity_; }
  [[nodiscard]] std::uint32_t running() const override {
    return static_cast<std::uint32_t>(children_.size());
  }

 private:
  struct Child {
    std::uint64_t token = 0;
    int pid = -1;
  };

  std::uint32_t capacity_ = 1;
  std::uint64_t next_token_ = 1;
  std::vector<Child> children_;
};

}  // namespace pef
