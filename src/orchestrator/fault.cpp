#include "orchestrator/fault.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "orchestrator/ledger.hpp"  // fnv1a64 (host-name hashing)

namespace pef {
namespace {

/// Split on `sep`, dropping empty pieces (so "a::b" and trailing separators
/// are forgiven — env vars get assembled by shell scripts).
std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto pos = text.find(sep, start);
    const auto end = pos == std::string::npos ? text.size() : pos;
    if (end > start) out.push_back(text.substr(start, end - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return out;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) return false;
  out = value;
  return true;
}

bool parse_probability(const std::string& text, double& out) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) return false;
  if (value < 0 || value > 1) return false;
  out = value;
  return true;
}

std::string format_probability(double p) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%g", p);
  return buffer;
}

}  // namespace

const char* to_string(FaultAction action) {
  switch (action) {
    case FaultAction::kNone: return "none";
    case FaultAction::kCrash: return "crash";
    case FaultAction::kCorruptOutput: return "corrupt";
    case FaultAction::kSilentCorrupt: return "flip";
    case FaultAction::kHang: return "hang";
  }
  return "?";
}

const char* to_string(NetFaultAction action) {
  switch (action) {
    case NetFaultAction::kNone: return "none";
    case NetFaultAction::kRefuse: return "refuse";
    case NetFaultAction::kDrop: return "drop";
    case NetFaultAction::kStall: return "stall";
    case NetFaultAction::kPartialFetch: return "partial";
  }
  return "?";
}

bool FaultSpec::NetFault::applies_to(const std::string& host) const {
  return hosts.empty() ||
         std::find(hosts.begin(), hosts.end(), host) != hosts.end();
}

FaultAction FaultSpec::decide(std::uint32_t shard_index,
                              std::uint32_t attempt) const {
  if (inert()) return FaultAction::kNone;
  if (!shards.empty() &&
      std::find(shards.begin(), shards.end(), shard_index) == shards.end()) {
    return FaultAction::kNone;
  }
  // One draw decides: the same (seed, shard, attempt) always rolls the same
  // fate, and distinct attempts roll independently — a crash=0.5 shard
  // converges after deterministically-many retries.
  Xoshiro256 rng(derive_seed(seed, 0xfa017, shard_index, attempt));
  const double roll = rng.next_double();
  if (roll < crash) return FaultAction::kCrash;
  if (roll < crash + corrupt) return FaultAction::kCorruptOutput;
  if (roll < crash + corrupt + flip) return FaultAction::kSilentCorrupt;
  if (roll < crash + corrupt + flip + hang) return FaultAction::kHang;
  return FaultAction::kNone;
}

NetFaultAction FaultSpec::decide_net(const std::string& host,
                                     std::uint32_t shard_index,
                                     std::uint32_t attempt) const {
  if (net_inert()) return NetFaultAction::kNone;
  // Fixed priority, independent streams: each family draws from its own
  // (seed, host, shard, attempt)-derived stream, so adding `stall=...` to a
  // spec never changes which launches `refuse=...` already bit.
  const std::uint64_t host_hash = fnv1a64(host);
  const struct {
    const NetFault& fault;
    NetFaultAction action;
    std::uint64_t salt;
  } families[] = {
      {refuse, NetFaultAction::kRefuse, 0x4ef01ULL},
      {drop, NetFaultAction::kDrop, 0x4ef02ULL},
      {stall, NetFaultAction::kStall, 0x4ef03ULL},
      {partial, NetFaultAction::kPartialFetch, 0x4ef04ULL},
  };
  for (const auto& family : families) {
    if (family.fault.p <= 0 || !family.fault.applies_to(host)) continue;
    Xoshiro256 rng(
        derive_seed(seed, family.salt ^ host_hash, shard_index, attempt));
    if (rng.next_double() < family.fault.p) return family.action;
  }
  return NetFaultAction::kNone;
}

std::optional<FaultSpec> FaultSpec::parse(const std::string& text,
                                          std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = "fault spec: " + message;
    return std::nullopt;
  };
  FaultSpec spec;
  for (const std::string& piece : split(text, ':')) {
    const auto eq = piece.find('=');
    if (eq == std::string::npos) {
      return fail("expected key=value, got \"" + piece + "\"");
    }
    const std::string key = piece.substr(0, eq);
    const std::string value = piece.substr(eq + 1);
    if (key == "seed") {
      if (!parse_u64(value, spec.seed)) {
        return fail("bad seed \"" + value + "\"");
      }
    } else if (key == "crash" || key == "corrupt" || key == "flip" ||
               key == "hang") {
      double p = 0;
      if (!parse_probability(value, p)) {
        return fail("bad probability " + key + "=\"" + value +
                    "\" (need 0..1)");
      }
      (key == "crash"     ? spec.crash
       : key == "corrupt" ? spec.corrupt
       : key == "flip"    ? spec.flip
                          : spec.hang) = p;
    } else if (key == "shards") {
      for (const std::string& item : split(value, ',')) {
        std::uint64_t index = 0;
        if (!parse_u64(item, index) || index > 0xffffffffULL) {
          return fail("bad shard index \"" + item + "\"");
        }
        spec.shards.push_back(static_cast<std::uint32_t>(index));
      }
    } else if (key == "refuse" || key == "drop" || key == "stall" ||
               key == "partial") {
      double p = 0;
      if (!parse_probability(value, p)) {
        return fail("bad probability " + key + "=\"" + value +
                    "\" (need 0..1)");
      }
      (key == "refuse" ? spec.refuse
       : key == "drop" ? spec.drop
       : key == "stall" ? spec.stall
                        : spec.partial)
          .p = p;
    } else if (key == "refuse_hosts" || key == "drop_hosts" ||
               key == "stall_hosts" || key == "partial_hosts") {
      NetFault& fault = key == "refuse_hosts" ? spec.refuse
                        : key == "drop_hosts" ? spec.drop
                        : key == "stall_hosts" ? spec.stall
                                               : spec.partial;
      fault.hosts = split(value, ',');
      if (fault.hosts.empty()) {
        return fail("empty host list for " + key);
      }
    } else {
      return fail("unknown key \"" + key +
                  "\" (keys: seed, crash, corrupt, flip, hang, shards, "
                  "refuse[_hosts], drop[_hosts], stall[_hosts], "
                  "partial[_hosts])");
    }
  }
  if (spec.crash + spec.corrupt + spec.flip + spec.hang > 1.0) {
    return fail("crash + corrupt + flip + hang must not exceed 1");
  }
  return spec;
}

std::string FaultSpec::to_string() const {
  std::string out = "seed=" + std::to_string(seed);
  if (crash > 0) out += ":crash=" + format_probability(crash);
  if (corrupt > 0) out += ":corrupt=" + format_probability(corrupt);
  if (flip > 0) out += ":flip=" + format_probability(flip);
  if (hang > 0) out += ":hang=" + format_probability(hang);
  if (!shards.empty()) {
    out += ":shards=";
    for (std::size_t i = 0; i < shards.size(); ++i) {
      out += (i == 0 ? "" : ",") + std::to_string(shards[i]);
    }
  }
  const struct {
    const NetFault& fault;
    const char* key;
  } families[] = {
      {refuse, "refuse"}, {drop, "drop"}, {stall, "stall"},
      {partial, "partial"},
  };
  for (const auto& family : families) {
    if (family.fault.p <= 0) continue;
    out += ":" + std::string(family.key) + "=" +
           format_probability(family.fault.p);
    if (!family.fault.hosts.empty()) {
      out += ":" + std::string(family.key) + "_hosts=";
      for (std::size_t i = 0; i < family.fault.hosts.size(); ++i) {
        out += (i == 0 ? "" : ",") + family.fault.hosts[i];
      }
    }
  }
  return out;
}

FaultAction fault_action_from_env(std::uint32_t shard_index) {
  const char* text = std::getenv(kFaultSpecEnvVar);
  if (text == nullptr || *text == '\0') return FaultAction::kNone;
  std::string error;
  const auto spec = FaultSpec::parse(text, &error);
  if (!spec) {
    // A chaos test with a typo'd spec must fail loudly, not run fault-free.
    std::fprintf(stderr, "%s: %s\n", kFaultSpecEnvVar, error.c_str());
    std::exit(2);
  }
  std::uint32_t attempt = 0;
  if (const char* attempt_text = std::getenv(kFaultAttemptEnvVar)) {
    std::uint64_t value = 0;
    if (!parse_u64(attempt_text, value)) {
      std::fprintf(stderr, "%s: bad attempt \"%s\"\n", kFaultAttemptEnvVar,
                   attempt_text);
      std::exit(2);
    }
    attempt = static_cast<std::uint32_t>(value);
  }
  return spec->decide(shard_index, attempt);
}

FaultSpec fault_spec_from_env() {
  const char* text = std::getenv(kFaultSpecEnvVar);
  if (text == nullptr || *text == '\0') return {};
  std::string error;
  const auto spec = FaultSpec::parse(text, &error);
  if (!spec) {
    std::fprintf(stderr, "%s: %s\n", kFaultSpecEnvVar, error.c_str());
    std::exit(2);
  }
  return *spec;
}

}  // namespace pef
