// The remote worker fleet: a host registry plus the SshBackend that fans
// shard workers out across it.
//
// A fleet spec is a JSON file naming the machines a sweep may use:
//
//   {"hosts": [
//     {"host": "node1",          "slots": 8},
//     {"host": "user@10.0.0.7",  "slots": 4, "workdir": "/scratch/pef",
//      "worker": "/opt/pef/bin/pef_sweep"}
//   ]}
//
//   host     ssh destination (or a MockTransport host name) — required
//   slots    concurrent workers the host can take (default 1)
//   workdir  remote scratch directory for staged specs and shard outputs
//            (default: chosen by the backend, see SshBackendOptions)
//   worker   remote worker binary path (default: the orchestrator's local
//            worker path — right for loopback ssh and mock fleets)
//
// SshBackend implements the WorkerBackend contract on top of a
// CommandTransport (real ssh or the in-process mock) and adds the fleet
// robustness layer:
//
//   * liveness probes before a host's first use (a dead host never
//     receives work, it is quarantined immediately);
//   * capacity-aware scheduling across heterogeneous hosts (most free
//     slots first);
//   * per-host failure accounting with a circuit breaker: a host charged
//     with `blacklist_after` CONSECUTIVE faults is quarantined, its
//     in-flight workers are killed, and the supervisor's normal retry
//     machinery reschedules those shards onto the surviving hosts;
//   * output fetch: the worker writes to the host's workdir, the backend
//     fetches the bytes back to the local path the supervisor expects —
//     a truncated transfer therefore fails the same shard-envelope
//     validation that catches corrupt-output workers, and is retried the
//     same way;
//   * deterministic network chaos: refuse/drop/stall/partial faults from
//     PEF_FAULT_SPEC, each a pure function of (seed, host, shard,
//     attempt) — see orchestrator/fault.hpp.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "orchestrator/backend.hpp"
#include "orchestrator/fault.hpp"
#include "orchestrator/transport.hpp"

namespace pef {

/// One machine in the fleet, as declared in the fleet spec.
struct FleetHost {
  std::string host;
  std::uint32_t slots = 1;
  std::string workdir;  // empty = backend default
  std::string worker;   // empty = orchestrator's local worker path
};

struct FleetSpec {
  std::vector<FleetHost> hosts;

  /// Parse the fleet-spec JSON above.  Strict: unknown keys, missing
  /// hosts, zero slots and duplicate host names are errors.
  [[nodiscard]] static std::optional<FleetSpec> parse(const std::string& json,
                                                      std::string* error);

  /// Read + parse a fleet-spec file.
  [[nodiscard]] static std::optional<FleetSpec> load(const std::string& path,
                                                     std::string* error);

  [[nodiscard]] std::uint32_t total_slots() const;
};

struct SshBackendOptions {
  /// Consecutive host-charged faults before the circuit breaker
  /// quarantines the host.
  std::uint32_t blacklist_after = 3;
  /// Liveness-probe each host before its first launch.
  bool probe = true;
  /// Default scratch root for hosts whose spec omits `workdir`: the host
  /// uses `<default_workdir_root>/<host name>`.
  std::string default_workdir_root = "/tmp/pef_fleet";
  /// Network chaos (decide_net); typically fault_spec_from_env().
  FaultSpec faults;
};

/// Everything the backend knows about one host's health, for the report.
struct HostHealth {
  std::string host;
  std::uint32_t slots = 1;
  std::string probe = "skipped";  // "ok" / "failed" / "skipped"
  std::uint32_t launches = 0;     // workers started on this host
  std::uint32_t failures = 0;     // faults charged to this host
  std::uint32_t consecutive_failures = 0;
  bool quarantined = false;
  std::string quarantine_reason;
};

class SshBackend final : public WorkerBackend {
 public:
  /// `log` gets one line per host state change (probe failure,
  /// quarantine); nullptr silences it.  The transport must outlive the
  /// backend.
  SshBackend(CommandTransport& transport, FleetSpec fleet,
             SshBackendOptions options, std::ostream* log);

  [[nodiscard]] std::optional<std::uint64_t> launch(
      const WorkerLaunch& launch) override;
  [[nodiscard]] std::string last_launch_error() const override {
    return last_launch_error_;
  }
  [[nodiscard]] std::optional<WorkerExit> poll() override;
  void kill(std::uint64_t token) override;
  void note_result(const WorkerExit& exit, WorkerOutcomeKind kind) override;
  [[nodiscard]] std::uint32_t capacity() const override;
  [[nodiscard]] std::uint32_t running() const override {
    return static_cast<std::uint32_t>(flights_.size());
  }
  [[nodiscard]] std::string fleet_report_json() const override;

  /// Health snapshot (report order == fleet-spec order).
  [[nodiscard]] std::vector<HostHealth> health() const;

 private:
  struct HostState {
    FleetHost spec;
    HostHealth health;
    bool probed = false;
    bool staged = false;          // spec file already on the host
    std::string staged_remote;    // ... at this path
    std::uint32_t in_flight = 0;
  };
  /// One launched worker: where it runs, what chaos was planned for it,
  /// and where its output must land.
  struct Flight {
    std::uint64_t token = 0;
    std::uint32_t host_index = 0;
    NetFaultAction plan = NetFaultAction::kNone;
    bool drop_fired = false;
    std::string local_out;
    std::string remote_out;
  };

  void ensure_probed();
  [[nodiscard]] HostState* find_host(const std::string& name);
  void charge_host(std::uint32_t host_index, const std::string& reason);
  void quarantine(std::uint32_t host_index, const std::string& reason);
  void log_line(const std::string& line) const;

  CommandTransport& transport_;
  SshBackendOptions options_;
  std::ostream* log_ = nullptr;
  std::vector<HostState> hosts_;
  std::vector<Flight> flights_;
  std::string last_launch_error_;
  bool probes_done_ = false;
};

}  // namespace pef
