#include "orchestrator/ledger.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/json.hpp"

namespace pef {
namespace {

constexpr const char* kLedgerMagic = "pef_orchestrate_ledger_v1";

std::string header_line(const Ledger::Header& header) {
  JsonWriter json;
  json.begin_object();
  json.field("ledger", kLedgerMagic);
  json.field("spec_hash", header.spec_hash);
  json.field("shards", header.shards);
  json.field("replicate", header.replicate);
  json.end_object();
  return json.str();
}

const JsonValue* find_uint(const JsonValue& object, const char* key) {
  const JsonValue* value = object.find(key);
  return value != nullptr && value->is_uint ? value : nullptr;
}

}  // namespace

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::optional<Ledger> Ledger::open(const std::string& path,
                                   const Header& header, std::string* error,
                                   std::string* warning) {
  const auto fail = [error, &path](const std::string& message) {
    if (error != nullptr) *error = "ledger " + path + ": " + message;
    return std::nullopt;
  };

  Ledger ledger;
  ledger.path_ = path;

  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    // Fresh ledger: create with the header line.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out.is_open()) return fail("cannot create");
    out << header_line(header) << "\n";
    out.flush();
    if (!out.good()) return fail("cannot write header");
    return ledger;
  }
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();

  // Apply one journal line; returns "" on success, a message otherwise.
  bool saw_header = false;
  const auto apply_line = [&](const std::string& line) -> std::string {
    std::string parse_error;
    const auto value = parse_json(line, &parse_error);
    if (!value || !value->is_object()) {
      return "not a JSON object" +
             (parse_error.empty() ? std::string()
                                  : " (" + parse_error + ")");
    }
    if (!saw_header) {
      const JsonValue* magic = value->find("ledger");
      const JsonValue* spec_hash = find_uint(*value, "spec_hash");
      const JsonValue* shards = find_uint(*value, "shards");
      const JsonValue* replicate = find_uint(*value, "replicate");
      if (magic == nullptr || !magic->is_string() ||
          magic->string_value != kLedgerMagic || spec_hash == nullptr ||
          shards == nullptr || replicate == nullptr) {
        return "not a pef_orchestrate ledger (bad header line)";
      }
      const Header existing{spec_hash->uint_value,
                            static_cast<std::uint32_t>(shards->uint_value),
                            static_cast<std::uint32_t>(replicate->uint_value)};
      if (!(existing == header)) {
        return "belongs to a different run (spec hash / shard count / "
               "replicate mismatch) — delete it or pick another --workdir "
               "to start over";
      }
      saw_header = true;
      return "";
    }
    const JsonValue* event = value->find("event");
    const JsonValue* shard = find_uint(*value, "shard");
    if (event == nullptr || !event->is_string() || shard == nullptr) {
      return "missing event/shard";
    }
    const std::uint32_t index = static_cast<std::uint32_t>(shard->uint_value);
    LedgerShardState& state = ledger.shards_[index];
    if (event->string_value == "done") {
      const JsonValue* file = value->find("file");
      if (file == nullptr || !file->is_string()) {
        return "done event without file";
      }
      state.done = true;
      state.output_file = file->string_value;
    } else if (event->string_value == "failed") {
      ++state.failed_attempts;
    } else {
      return "unknown event \"" + event->string_value + "\"";
    }
    return "";
  };

  std::size_t line_number = 0;
  std::size_t pos = 0;
  while (pos < content.size()) {
    const auto newline = content.find('\n', pos);
    const bool terminated = newline != std::string::npos;
    const std::size_t line_start = pos;
    const std::size_t line_end = terminated ? newline : content.size();
    const std::string line = content.substr(line_start, line_end - line_start);
    pos = terminated ? newline + 1 : content.size();
    ++line_number;
    if (line.empty()) continue;
    const std::string line_error = apply_line(line);
    if (line_error.empty()) {
      if (!terminated) {
        // Valid record that lost only its newline: terminate it so the
        // next append starts on a fresh line.
        std::ofstream out(path, std::ios::binary | std::ios::app);
        if (out.is_open()) out << "\n";
      }
      continue;
    }
    if (!terminated && saw_header) {
      // The classic crash-mid-flush artifact: a partial final record.
      // Drop it from the file (appends must not concatenate onto it) and
      // resume from the intact prefix — the worst case is redoing the one
      // event the journal lost anyway.
      std::error_code ec;
      std::filesystem::resize_file(path, line_start, ec);
      if (ec) {
        return fail("cannot drop truncated final line: " + ec.message());
      }
      if (warning != nullptr) {
        *warning = "ledger " + path + ": line " +
                   std::to_string(line_number) +
                   " is truncated (orchestrator killed mid-flush?) — "
                   "skipping the partial record and resuming";
      }
      break;
    }
    return fail("line " + std::to_string(line_number) + ": " + line_error);
  }
  if (!saw_header) {
    return fail("empty file is not a ledger (delete it to start over)");
  }
  return ledger;
}

void Ledger::record_done(std::uint32_t shard,
                         const std::string& output_file) {
  JsonWriter json;
  json.begin_object();
  json.field("event", "done");
  json.field("shard", shard);
  json.field("file", output_file);
  json.end_object();
  append_line(json.str());
  LedgerShardState& state = shards_[shard];
  state.done = true;
  state.output_file = output_file;
}

void Ledger::record_failed(std::uint32_t shard, std::uint32_t attempt,
                           const std::string& reason) {
  JsonWriter json;
  json.begin_object();
  json.field("event", "failed");
  json.field("shard", shard);
  json.field("attempt", attempt);
  json.field("reason", reason);
  json.end_object();
  append_line(json.str());
  ++shards_[shard].failed_attempts;
}

void Ledger::append_line(const std::string& line) {
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out.is_open()) return;  // journaling is best-effort once running
  out << line << "\n";
  out.flush();
}

}  // namespace pef
