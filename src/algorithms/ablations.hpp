// Ablations of PEF_3+ demonstrating that Rules 2 and 3 are both necessary
// (the design-choice benches of DESIGN.md).
//
//   Pef3PlusNoRule2 - drop the "HasMovedPreviousStep" guard: a robot in a
//     tower turns back even when it did NOT move.  A sentinel standing at an
//     eventual-missing-edge extremity abandons its post as soon as an
//     explorer arrives, so the extremity loses its marker and the ring's far
//     side can starve.
//
//   Pef3PlusNoRule3 - drop the turn entirely: robots never change direction.
//     Behaviourally identical to the KeepDirection baseline (the only
//     direction change in PEF_3+ is the tower turn), kept as a distinct
//     class so ablation benches read naturally; it still maintains the
//     HasMovedPreviousStep variable like the real algorithm.
#pragma once

#include "algorithms/pef3plus.hpp"

namespace pef {

class Pef3PlusNoRule2 final : public Algorithm {
 public:
  [[nodiscard]] std::string name() const override { return "pef3+-no-rule2"; }
  [[nodiscard]] std::unique_ptr<AlgorithmState> make_state(
      RobotId) const override {
    return std::make_unique<Pef3PlusState>();
  }
  void compute(const View& view, LocalDirection& dir,
               AlgorithmState& state) const override {
    auto& s = static_cast<Pef3PlusState&>(state);
    bool ahead_is_incoming_dir = true;
    if (view.other_robots_on_node) {  // no HasMoved guard: Rule 2 dropped
      dir = opposite(dir);
      ahead_is_incoming_dir = false;
    }
    s.has_moved_previous_step = view.exists_edge(ahead_is_incoming_dir);
  }
  [[nodiscard]] std::optional<KernelSpec> kernel() const override {
    return KernelSpec{KernelId::kPef3PlusNoRule2};
  }
};

class Pef3PlusNoRule3 final : public Algorithm {
 public:
  [[nodiscard]] std::string name() const override { return "pef3+-no-rule3"; }
  [[nodiscard]] std::unique_ptr<AlgorithmState> make_state(
      RobotId) const override {
    return std::make_unique<Pef3PlusState>();
  }
  void compute(const View& view, LocalDirection&,
               AlgorithmState& state) const override {
    auto& s = static_cast<Pef3PlusState&>(state);
    s.has_moved_previous_step = view.exists_edge_ahead;  // never turns
  }
  [[nodiscard]] std::optional<KernelSpec> kernel() const override {
    return KernelSpec{KernelId::kPef3PlusNoRule3};
  }
};

}  // namespace pef
