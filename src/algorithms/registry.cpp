#include "algorithms/registry.hpp"

#include "algorithms/ablations.hpp"
#include "algorithms/baselines.hpp"
#include "algorithms/pef1.hpp"
#include "algorithms/pef2.hpp"
#include "algorithms/pef3plus.hpp"
#include "common/check.hpp"

namespace pef {

AlgorithmPtr make_algorithm(const std::string& name, std::uint64_t seed) {
  if (name == "pef3+") return std::make_shared<Pef3Plus>();
  if (name == "pef2") return std::make_shared<Pef2>();
  if (name == "pef1") return std::make_shared<Pef1>();
  if (name == "keep-direction") return std::make_shared<KeepDirection>();
  if (name == "bounce") return std::make_shared<BounceOnMissing>();
  if (name == "random-walk") return std::make_shared<RandomWalk>(seed);
  if (name == "oscillating") return std::make_shared<Oscillating>(4);
  if (name == "pef3+-no-rule2") return std::make_shared<Pef3PlusNoRule2>();
  if (name == "pef3+-no-rule3") return std::make_shared<Pef3PlusNoRule3>();
  PEF_CHECK_MSG(false, "unknown algorithm name");
  return nullptr;
}

std::vector<std::string> algorithm_names() {
  return {"pef3+",          "pef2",          "pef1",
          "keep-direction", "bounce",        "random-walk",
          "oscillating",    "pef3+-no-rule2", "pef3+-no-rule3"};
}

std::vector<std::string> deterministic_algorithm_names() {
  return {"pef3+",          "pef2",   "pef1",
          "keep-direction", "bounce", "oscillating",
          "pef3+-no-rule2", "pef3+-no-rule3"};
}

}  // namespace pef
