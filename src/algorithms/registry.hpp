// Name-based algorithm factory, so benches, tests and examples can sweep
// over "every algorithm we have" uniformly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "robot/algorithm.hpp"

namespace pef {

/// Construct an algorithm by name.  Known names:
///   "pef3+", "pef2", "pef1",
///   "keep-direction", "bounce", "random-walk", "oscillating",
///   "pef3+-no-rule2", "pef3+-no-rule3"
/// `seed` feeds randomized baselines; paper algorithms ignore it.
/// Aborts (PEF_CHECK) on unknown names.
[[nodiscard]] AlgorithmPtr make_algorithm(const std::string& name,
                                          std::uint64_t seed = 0);

/// All registered algorithm names (deterministic paper algorithms first).
[[nodiscard]] std::vector<std::string> algorithm_names();

/// The deterministic algorithms only (the paper's model excludes
/// randomization); used by impossibility benches, which are statements
/// about deterministic solvability.
[[nodiscard]] std::vector<std::string> deterministic_algorithm_names();

}  // namespace pef
