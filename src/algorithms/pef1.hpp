// PEF_1 — Section 5.2 of the paper: perpetual exploration of
// connected-over-time rings of exactly 2 nodes with a single robot.
//
// "As soon as at least one adjacent edge to the current node of the robot is
// present, its variable dir points arbitrarily to one of these edges."
//
// Our deterministic instantiation of "arbitrarily": keep the current
// direction when its edge is present, otherwise point to the other side.
// (Both nodes of a 2-ring are adjacent through every edge, so any choice of
// a present edge moves the robot to the other node.)
#pragma once

#include "robot/algorithm.hpp"

namespace pef {

class Pef1 final : public Algorithm {
 public:
  [[nodiscard]] std::string name() const override { return "pef1"; }
  [[nodiscard]] std::unique_ptr<AlgorithmState> make_state(
      RobotId) const override {
    return std::make_unique<EmptyState>();
  }
  void compute(const View& view, LocalDirection& dir,
               AlgorithmState& state) const override;
  [[nodiscard]] std::optional<KernelSpec> kernel() const override {
    return KernelSpec{KernelId::kPef1};
  }
};

}  // namespace pef
