// PEF_2 — Section 4.2 of the paper: perpetual exploration of
// connected-over-time rings of exactly 3 nodes with 2 robots.
//
// "Each robot disposes only of its dir variable.  If at a time t, a robot is
// isolated on a node with only one adjacent edge, then it points to this
// edge.  Otherwise (i.e., none of the adjacent edges is present, both
// adjacent edges are present, or the other robot is present on the same
// node), the robot keeps its current direction."
#pragma once

#include "robot/algorithm.hpp"

namespace pef {

class Pef2 final : public Algorithm {
 public:
  [[nodiscard]] std::string name() const override { return "pef2"; }
  [[nodiscard]] std::unique_ptr<AlgorithmState> make_state(
      RobotId) const override {
    return std::make_unique<EmptyState>();
  }
  void compute(const View& view, LocalDirection& dir,
               AlgorithmState& state) const override;
  [[nodiscard]] std::optional<KernelSpec> kernel() const override {
    return KernelSpec{KernelId::kPef2};
  }
};

}  // namespace pef
