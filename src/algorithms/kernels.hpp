// The devirtualized kernels of every registry algorithm.
//
// kernel_compute is the enum-dispatched Compute phase the engine inlines
// into its round loop: a switch over KernelId whose cases are the exact
// semantics of the virtual twins in pef1/pef2/pef3plus/baselines/ablations.
// Each case reads the same View, flips the same `dir`, and mutates the same
// logical state (held in the POD KernelState instead of a heap
// AlgorithmState), so a kernel run is bit-identical to a virtual run —
// tests/unified_engine_test.cpp pins every pair across adversaries and
// seeds.
//
// When adding a registry algorithm: add a KernelId, a case here, an
// Algorithm::kernel() override on the virtual class, and extend the
// differential test's registry sweep (it iterates algorithm_names(), so the
// sweep part is automatic).
#pragma once

#include "common/rng.hpp"
#include "robot/kernel.hpp"
#include "robot/view.hpp"

namespace pef {

/// Fresh kernel memory for one robot — the counterpart of
/// Algorithm::make_state.  Mirrors the virtual twins exactly: random-walk
/// derives the identical per-robot stream RandomWalk::make_state derives.
/// `State` is KernelState or any structurally-equivalent accessor (see
/// kernel_compute).
template <typename State>
inline void init_kernel_state(const KernelSpec& spec, RobotId robot,
                              State&& state) {
  state.counter = 0;
  state.has_moved = 0;
  if (spec.id == KernelId::kRandomWalk) {
    state.rng = Xoshiro256(derive_seed(spec.seed, robot, 0x72777761));
  }
}

/// The Compute phase, devirtualized — compile-time form.  The KernelId is a
/// template parameter so the engine can instantiate its whole round loop
/// per kernel and the compiler inlines the branch-free residue straight
/// into the loop body (dispatch happens once per round, not per robot).
/// `State` only needs KernelState's field names: Engine passes KernelState
/// itself, BatchEngine passes a proxy of references into its per-field
/// state planes (a robot's kernel memory lives replica-strided there, and
/// field planes keep the hot byte — pef3+'s has_moved — contiguous for the
/// vectorizer instead of strided across 48-byte structs).
/// Semantics of each case documented on the virtual twin; keep the two in
/// lockstep.
template <KernelId Id, typename State>
inline void kernel_compute(const KernelSpec& spec, const View& view,
                           LocalDirection& dir, State&& s) {
  if constexpr (Id == KernelId::kKeepDirection) {
    (void)spec, (void)view, (void)dir, (void)s;
  } else if constexpr (Id == KernelId::kBounce || Id == KernelId::kPef1) {
    // Bounce and PEF_1 share one rule: turn back iff the pointed edge is
    // absent and the other is present.
    if (!view.exists_edge_ahead && view.exists_edge_behind) {
      dir = opposite(dir);
    }
  } else if constexpr (Id == KernelId::kPef2) {
    if (!view.other_robots_on_node &&
        view.exists_edge_ahead != view.exists_edge_behind) {
      if (!view.exists_edge_ahead) dir = opposite(dir);
    }
  } else if constexpr (Id == KernelId::kPef3Plus) {
    bool ahead_is_incoming_dir = true;
    if (s.has_moved != 0 && view.other_robots_on_node) {
      dir = opposite(dir);  // Rule 3: arrived onto a tower -> turn back
      ahead_is_incoming_dir = false;
    }
    s.has_moved = view.exists_edge(ahead_is_incoming_dir) ? 1 : 0;
  } else if constexpr (Id == KernelId::kPef3PlusNoRule2) {
    bool ahead_is_incoming_dir = true;
    if (view.other_robots_on_node) {  // no HasMoved guard: Rule 2 dropped
      dir = opposite(dir);
      ahead_is_incoming_dir = false;
    }
    s.has_moved = view.exists_edge(ahead_is_incoming_dir) ? 1 : 0;
  } else if constexpr (Id == KernelId::kPef3PlusNoRule3) {
    s.has_moved = view.exists_edge_ahead ? 1 : 0;  // never turns
  } else if constexpr (Id == KernelId::kOscillating) {
    if (++s.counter >= spec.period) {
      dir = opposite(dir);
      s.counter = 0;
    }
  } else if constexpr (Id == KernelId::kRandomWalk) {
    if (s.rng.next_bool(0.5)) dir = opposite(dir);
  }
}

/// Invoke `fn` with the KernelId lifted to a compile-time template
/// argument: the single per-round dispatch point of the kernel path.
template <typename Fn>
inline decltype(auto) with_kernel_id(KernelId id, Fn&& fn) {
  switch (id) {
    case KernelId::kKeepDirection:
      return fn.template operator()<KernelId::kKeepDirection>();
    case KernelId::kBounce:
      return fn.template operator()<KernelId::kBounce>();
    case KernelId::kPef1:
      return fn.template operator()<KernelId::kPef1>();
    case KernelId::kPef2:
      return fn.template operator()<KernelId::kPef2>();
    case KernelId::kPef3Plus:
      return fn.template operator()<KernelId::kPef3Plus>();
    case KernelId::kPef3PlusNoRule2:
      return fn.template operator()<KernelId::kPef3PlusNoRule2>();
    case KernelId::kPef3PlusNoRule3:
      return fn.template operator()<KernelId::kPef3PlusNoRule3>();
    case KernelId::kOscillating:
      return fn.template operator()<KernelId::kOscillating>();
    case KernelId::kRandomWalk:
      return fn.template operator()<KernelId::kRandomWalk>();
  }
  return fn.template operator()<KernelId::kKeepDirection>();  // unreachable
}

}  // namespace pef
