// PEF_3+ — Algorithm 1 of the paper (Section 3): perpetual exploration in
// FSYNC with k >= 3 robots on any connected-over-time ring of n > k nodes.
//
// The algorithm, verbatim:
//
//   1: if HasMovedPreviousStep and ExistsOtherRobotsOnCurrentNode() then
//   2:   dir <- opposite(dir)
//   3: end if
//   4: HasMovedPreviousStep <- ExistsEdge(dir)
//
// which encodes the paper's three rules:
//   Rule 1 - a robot keeps its direction while not involved in a tower;
//   Rule 2 - a robot that did NOT move and finds itself in a tower keeps
//            its direction (it becomes/remains a *sentinel* at an eventual
//            missing edge extremity);
//   Rule 3 - a robot that moved onto a tower turns back (the sentinel
//            "signals" the explorer that it reached an extremity).
//
// Note on line 4: `dir` is the possibly-flipped direction, and because the
// round is fully synchronous the edge set seen at Look time is the one used
// at Move time, so HasMovedPreviousStep is exactly "I will move this round".
#pragma once

#include "robot/algorithm.hpp"

namespace pef {

/// Persistent memory of one PEF_3+ robot: the single boolean of Algorithm 1.
class Pef3PlusState final : public AlgorithmState {
 public:
  bool has_moved_previous_step = false;

  [[nodiscard]] std::unique_ptr<AlgorithmState> clone() const override;
  [[nodiscard]] std::string to_string() const override;
};

class Pef3Plus final : public Algorithm {
 public:
  [[nodiscard]] std::string name() const override { return "pef3+"; }
  [[nodiscard]] std::unique_ptr<AlgorithmState> make_state(
      RobotId) const override;
  void compute(const View& view, LocalDirection& dir,
               AlgorithmState& state) const override;
  [[nodiscard]] std::optional<KernelSpec> kernel() const override {
    return KernelSpec{KernelId::kPef3Plus};
  }
};

}  // namespace pef
