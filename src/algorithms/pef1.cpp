#include "algorithms/pef1.hpp"

namespace pef {

void Pef1::compute(const View& view, LocalDirection& dir,
                   AlgorithmState&) const {
  if (!view.exists_edge_ahead && view.exists_edge_behind) {
    dir = opposite(dir);
  }
  // If the pointed edge is present (or no edge is present) keep direction.
}

}  // namespace pef
