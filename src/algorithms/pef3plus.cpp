#include "algorithms/pef3plus.hpp"

#include "common/check.hpp"

namespace pef {

std::unique_ptr<AlgorithmState> Pef3PlusState::clone() const {
  auto copy = std::make_unique<Pef3PlusState>();
  copy->has_moved_previous_step = has_moved_previous_step;
  return copy;
}

std::string Pef3PlusState::to_string() const {
  return has_moved_previous_step ? "{moved}" : "{stayed}";
}

std::unique_ptr<AlgorithmState> Pef3Plus::make_state(RobotId) const {
  return std::make_unique<Pef3PlusState>();
}

void Pef3Plus::compute(const View& view, LocalDirection& dir,
                       AlgorithmState& state) const {
  auto& s = static_cast<Pef3PlusState&>(state);

  bool ahead_is_incoming_dir = true;  // tracks which side `dir` points to
  if (s.has_moved_previous_step && view.other_robots_on_node) {
    dir = opposite(dir);  // Rule 3: arrived onto a tower -> turn back
    ahead_is_incoming_dir = false;
  }
  // Line 4: ExistsEdge(dir) with the *updated* dir.  The View is expressed
  // relative to the incoming dir, so a flipped robot reads the other side.
  s.has_moved_previous_step = view.exists_edge(ahead_is_incoming_dir);
}

}  // namespace pef
