#include "algorithms/pef2.hpp"

namespace pef {

void Pef2::compute(const View& view, LocalDirection& dir,
                   AlgorithmState&) const {
  const bool isolated = !view.other_robots_on_node;
  const bool exactly_one_edge =
      view.exists_edge_ahead != view.exists_edge_behind;
  if (isolated && exactly_one_edge) {
    // Point to the unique present edge.
    if (!view.exists_edge_ahead) dir = opposite(dir);
  }
  // Otherwise: keep the current direction.
}

}  // namespace pef
