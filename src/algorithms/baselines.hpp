// Baseline (non-paper) algorithms.
//
// The paper proves its bounds against *all* deterministic algorithms; our
// benches therefore pit the lower-bound adversaries against a diverse suite
// of strategies, and the upper-bound benches use the same suite as
// comparators that fail where PEF succeeds:
//
//   KeepDirection   - Rule 1 alone: never turn.  Explores static and
//                     recurrent rings (absent a meeting) but is defeated by
//                     a single eventual missing edge.
//   BounceOnMissing - turn back whenever the pointed edge is absent and the
//                     other is present (a natural "wall bounce" heuristic).
//                     Livelocks between the two extremities of an eventual
//                     missing edge without ever crossing the far side.
//   RandomWalk      - flip a fair coin each round (randomized, hence outside
//                     the paper's deterministic model; included to show the
//                     bounds are about *deterministic* solvability).
//   Oscillating     - turn back every `period` rounds regardless of the
//                     environment; the canonical "patrol a segment" strategy.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "robot/algorithm.hpp"

namespace pef {

class KeepDirection final : public Algorithm {
 public:
  [[nodiscard]] std::string name() const override { return "keep-direction"; }
  [[nodiscard]] std::unique_ptr<AlgorithmState> make_state(
      RobotId) const override {
    return std::make_unique<EmptyState>();
  }
  void compute(const View&, LocalDirection&, AlgorithmState&) const override {
  }
  [[nodiscard]] std::optional<KernelSpec> kernel() const override {
    return KernelSpec{KernelId::kKeepDirection};
  }
};

class BounceOnMissing final : public Algorithm {
 public:
  [[nodiscard]] std::string name() const override { return "bounce"; }
  [[nodiscard]] std::unique_ptr<AlgorithmState> make_state(
      RobotId) const override {
    return std::make_unique<EmptyState>();
  }
  void compute(const View& view, LocalDirection& dir,
               AlgorithmState&) const override {
    if (!view.exists_edge_ahead && view.exists_edge_behind) {
      dir = opposite(dir);
    }
  }
  [[nodiscard]] std::optional<KernelSpec> kernel() const override {
    return KernelSpec{KernelId::kBounce};
  }
};

class RandomWalkState final : public AlgorithmState {
 public:
  explicit RandomWalkState(std::uint64_t seed) : rng(seed), seed_(seed) {}

  Xoshiro256 rng;

  [[nodiscard]] std::unique_ptr<AlgorithmState> clone() const override {
    // Clones restart the stream; clone() is only used for trace snapshots,
    // never to continue a simulation.
    return std::make_unique<RandomWalkState>(seed_);
  }
  [[nodiscard]] std::string to_string() const override { return "{rng}"; }

 private:
  std::uint64_t seed_;
};

class RandomWalk final : public Algorithm {
 public:
  explicit RandomWalk(std::uint64_t seed) : seed_(seed) {}

  [[nodiscard]] std::string name() const override { return "random-walk"; }
  [[nodiscard]] std::unique_ptr<AlgorithmState> make_state(
      RobotId robot_index) const override {
    return std::make_unique<RandomWalkState>(
        derive_seed(seed_, robot_index, 0x72777761));
  }
  void compute(const View&, LocalDirection& dir,
               AlgorithmState& state) const override {
    auto& s = static_cast<RandomWalkState&>(state);
    if (s.rng.next_bool(0.5)) dir = opposite(dir);
  }
  [[nodiscard]] std::optional<KernelSpec> kernel() const override {
    return KernelSpec{KernelId::kRandomWalk, seed_};
  }

 private:
  std::uint64_t seed_;
};

class OscillatingState final : public AlgorithmState {
 public:
  std::uint64_t rounds_since_turn = 0;

  [[nodiscard]] std::unique_ptr<AlgorithmState> clone() const override {
    auto copy = std::make_unique<OscillatingState>();
    copy->rounds_since_turn = rounds_since_turn;
    return copy;
  }
  [[nodiscard]] std::string to_string() const override {
    return "{t=" + std::to_string(rounds_since_turn) + "}";
  }
};

class Oscillating final : public Algorithm {
 public:
  explicit Oscillating(std::uint64_t period) : period_(period) {}

  [[nodiscard]] std::string name() const override {
    return "oscillating(" + std::to_string(period_) + ")";
  }
  [[nodiscard]] std::unique_ptr<AlgorithmState> make_state(
      RobotId) const override {
    return std::make_unique<OscillatingState>();
  }
  void compute(const View&, LocalDirection& dir,
               AlgorithmState& state) const override {
    auto& s = static_cast<OscillatingState&>(state);
    if (++s.rounds_since_turn >= period_) {
      dir = opposite(dir);
      s.rounds_since_turn = 0;
    }
  }
  [[nodiscard]] std::optional<KernelSpec> kernel() const override {
    return KernelSpec{KernelId::kOscillating, 0, period_};
  }

 private:
  std::uint64_t period_;
};

}  // namespace pef
