#include "scheduler/simulator.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace pef {

Simulator::Simulator(Ring ring, AlgorithmPtr algorithm, AdversaryPtr adversary,
                     const std::vector<RobotPlacement>& placements,
                     SimulatorOptions options)
    : ring_(ring),
      algorithm_(std::move(algorithm)),
      adversary_(std::move(adversary)),
      options_(options) {
  PEF_CHECK(algorithm_ != nullptr);
  PEF_CHECK(adversary_ != nullptr);
  PEF_CHECK(adversary_->ring() == ring_);
  PEF_CHECK(!placements.empty());

  if (options_.enforce_well_initiated) {
    PEF_CHECK_MSG(placements.size() < ring_.node_count(),
                  "well-initiated executions need k < n");
    for (std::size_t a = 0; a < placements.size(); ++a) {
      for (std::size_t b = a + 1; b < placements.size(); ++b) {
        PEF_CHECK_MSG(placements[a].node != placements[b].node,
                      "well-initiated executions start towerless");
      }
    }
  }

  robots_.reserve(placements.size());
  for (std::size_t i = 0; i < placements.size(); ++i) {
    PEF_CHECK(ring_.is_valid_node(placements[i].node));
    robots_.emplace_back(static_cast<RobotId>(i), placements[i],
                         algorithm_->make_state(static_cast<RobotId>(i)));
  }

  trace_ = std::make_unique<Trace>(ring_, snapshot());
}

Configuration Simulator::snapshot() const {
  std::vector<RobotSnapshot> snaps;
  snaps.reserve(robots_.size());
  for (const Robot& r : robots_) {
    RobotSnapshot s;
    s.node = r.node();
    s.dir = r.dir();
    s.chirality = r.chirality();
    if (options_.snapshot_states) s.state_repr = r.state().to_string();
    snaps.push_back(std::move(s));
  }
  return Configuration(ring_, std::move(snaps));
}

RoundRecord Simulator::step() {
  const Configuration gamma = snapshot();
  const EdgeSet edges = adversary_->choose_edges(now_, gamma);
  PEF_CHECK(edges.edge_count() == ring_.edge_count());

  RoundRecord record;
  record.time = now_;
  record.edges = edges;
  record.robots.resize(robots_.size());

  // Look: every robot snapshots its local environment against (E_t, gamma_t).
  std::vector<View> views(robots_.size());
  for (RobotId i = 0; i < robots_.size(); ++i) {
    const Robot& r = robots_[i];
    const EdgeId ahead =
        ring_.adjacent_edge(r.node(), r.chirality().to_global(r.dir()));
    const EdgeId behind = ring_.adjacent_edge(
        r.node(), r.chirality().to_global(opposite(r.dir())));
    views[i].exists_edge_ahead = edges.contains(ahead);
    views[i].exists_edge_behind = edges.contains(behind);
    views[i].other_robots_on_node = gamma.robots_on(r.node()) > 1;

    record.robots[i].node_before = r.node();
    record.robots[i].dir_before = r.dir();
    record.robots[i].saw_other_robots = views[i].other_robots_on_node;
  }

  // Compute: each robot updates its own dir/state from its own view only —
  // in-place iteration is equivalent to the synchronous semantics.
  for (RobotId i = 0; i < robots_.size(); ++i) {
    Robot& r = robots_[i];
    LocalDirection dir = r.dir();
    algorithm_->compute(views[i], dir, r.state());
    r.set_dir(dir);
    record.robots[i].dir_after = dir;
  }

  // Move: cross the pointed edge iff present in E_t (same set all round).
  for (RobotId i = 0; i < robots_.size(); ++i) {
    Robot& r = robots_[i];
    const GlobalDirection gd = r.chirality().to_global(r.dir());
    const EdgeId pointed = ring_.adjacent_edge(r.node(), gd);
    if (edges.contains(pointed)) {
      r.set_node(ring_.neighbour(r.node(), gd));
      record.robots[i].moved = true;
    }
    record.robots[i].node_after = r.node();
  }

  ++now_;
  if (options_.record_trace) trace_->append(record);
  return record;
}

void Simulator::run(Time rounds) {
  for (Time i = 0; i < rounds; ++i) step();
}

std::vector<RobotPlacement> random_placements(const Ring& ring,
                                              std::uint32_t k,
                                              std::uint64_t seed) {
  PEF_CHECK(k >= 1);
  PEF_CHECK(k < ring.node_count());
  Xoshiro256 rng(seed);
  std::vector<NodeId> nodes(ring.node_count());
  for (NodeId u = 0; u < ring.node_count(); ++u) nodes[u] = u;
  // Fisher-Yates prefix shuffle: the first k entries are distinct nodes.
  std::vector<RobotPlacement> placements;
  placements.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    const auto j =
        i + static_cast<std::uint32_t>(rng.next_below(nodes.size() - i));
    std::swap(nodes[i], nodes[j]);
    placements.push_back({nodes[i], Chirality(rng.next_bool(0.5))});
  }
  return placements;
}

std::vector<RobotPlacement> spread_placements(const Ring& ring,
                                              std::uint32_t k) {
  PEF_CHECK(k >= 1);
  PEF_CHECK(k < ring.node_count());
  std::vector<RobotPlacement> placements(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    placements[i].node =
        static_cast<NodeId>((static_cast<std::uint64_t>(i) *
                             ring.node_count()) / k);
    placements[i].chirality = Chirality(true);
  }
  return placements;
}

}  // namespace pef
