#include "scheduler/async.hpp"

#include "common/check.hpp"

namespace pef {

AsyncSimulator::AsyncSimulator(Ring ring, AlgorithmPtr algorithm,
                               std::unique_ptr<SsyncAdversary> adversary,
                               std::unique_ptr<PhaseScheduler> phases,
                               const std::vector<RobotPlacement>& placements)
    : ring_(ring),
      algorithm_(std::move(algorithm)),
      adversary_(std::move(adversary)),
      scheduler_(std::move(phases)) {
  PEF_CHECK(algorithm_ != nullptr);
  PEF_CHECK(adversary_ != nullptr);
  PEF_CHECK(scheduler_ != nullptr);
  PEF_CHECK(adversary_->ring() == ring_);
  PEF_CHECK(!placements.empty());
  robots_.reserve(placements.size());
  for (std::size_t i = 0; i < placements.size(); ++i) {
    PEF_CHECK(ring_.is_valid_node(placements[i].node));
    robots_.emplace_back(static_cast<RobotId>(i), placements[i],
                         algorithm_->make_state(static_cast<RobotId>(i)));
  }
  phases_.assign(robots_.size(), Phase::kLook);
  pending_views_.assign(robots_.size(), View{});
  trace_ = std::make_unique<Trace>(ring_, snapshot());
}

Configuration AsyncSimulator::snapshot() const {
  std::vector<RobotSnapshot> snaps;
  snaps.reserve(robots_.size());
  for (const Robot& r : robots_) {
    RobotSnapshot s;
    s.node = r.node();
    s.dir = r.dir();
    s.chirality = r.chirality();
    snaps.push_back(std::move(s));
  }
  return Configuration(ring_, std::move(snaps));
}

RoundRecord AsyncSimulator::step() {
  const Configuration gamma = snapshot();
  scheduler_->advance(now_, gamma, phases_, advancing_);
  PEF_CHECK(advancing_.size() == robots_.size());

  // The adversary sees which robots fire their Move phase this tick (the
  // only phase that interacts with edges).
  moving_.assign(robots_.size(), 0);
  for (RobotId i = 0; i < robots_.size(); ++i) {
    moving_[i] = (advancing_[i] != 0 && phases_[i] == Phase::kMove) ? 1 : 0;
  }
  const EdgeSet edges = adversary_->choose_edges(now_, gamma, moving_);

  RoundRecord record;
  record.time = now_;
  record.edges = edges;
  record.robots.resize(robots_.size());

  for (RobotId i = 0; i < robots_.size(); ++i) {
    Robot& r = robots_[i];
    auto& rec = record.robots[i];
    rec.node_before = r.node();
    rec.node_after = r.node();
    rec.dir_before = r.dir();
    rec.dir_after = r.dir();
    if (advancing_[i] == 0) continue;

    switch (phases_[i]) {
      case Phase::kLook: {
        // Snapshot against the CURRENT edge set and configuration; the
        // view may be stale by the time Compute / Move execute.
        View view;
        const EdgeId ahead =
            ring_.adjacent_edge(r.node(), r.chirality().to_global(r.dir()));
        const EdgeId behind = ring_.adjacent_edge(
            r.node(), r.chirality().to_global(opposite(r.dir())));
        view.exists_edge_ahead = edges.contains(ahead);
        view.exists_edge_behind = edges.contains(behind);
        view.other_robots_on_node = gamma.robots_on(r.node()) > 1;
        pending_views_[i] = view;
        rec.saw_other_robots = view.other_robots_on_node;
        phases_[i] = Phase::kCompute;
        break;
      }
      case Phase::kCompute: {
        LocalDirection dir = r.dir();
        algorithm_->compute(pending_views_[i], dir, r.state());
        r.set_dir(dir);
        rec.dir_after = dir;
        phases_[i] = Phase::kMove;
        break;
      }
      case Phase::kMove: {
        const GlobalDirection gd = r.chirality().to_global(r.dir());
        const EdgeId pointed = ring_.adjacent_edge(r.node(), gd);
        if (edges.contains(pointed)) {
          r.set_node(ring_.neighbour(r.node(), gd));
          rec.moved = true;
        }
        rec.node_after = r.node();
        phases_[i] = Phase::kLook;
        break;
      }
    }
  }

  ++now_;
  trace_->append(record);
  return record;
}

void AsyncSimulator::run(Time rounds) {
  for (Time i = 0; i < rounds; ++i) step();
}

}  // namespace pef
