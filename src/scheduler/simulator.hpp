// The FSYNC execution engine (Section 2.3 of the paper).
//
// Each round is three atomic synchronous phases executed by all robots:
//   Look    - each robot snapshots ExistsEdge(dir), ExistsEdge(opposite dir)
//             and ExistsOtherRobotsOnCurrentNode() against E_t and gamma_t;
//   Compute - each robot runs the algorithm, possibly flipping `dir`;
//   Move    - each robot crosses the edge it points to iff that edge is in
//             E_t, else stays put.
// The adversary supplies E_t at the start of the round, seeing gamma_t.
#pragma once

#include <memory>
#include <vector>

#include "adversary/adversary.hpp"
#include "common/types.hpp"
#include "robot/algorithm.hpp"
#include "robot/robot.hpp"
#include "scheduler/trace.hpp"

namespace pef {

struct SimulatorOptions {
  /// Record a full Trace (positions, dirs, edge sets per round).  Costs
  /// O(k + n/64) memory per round; disable for very long timing benches.
  bool record_trace = true;

  /// Enforce the paper's well-initiated execution requirements: strictly
  /// fewer robots than nodes and a towerless initial configuration.
  bool enforce_well_initiated = true;

  /// Fill Configuration::state_repr with stringified algorithm memory
  /// (debug aid; off by default, the adversaries don't need it).
  bool snapshot_states = false;
};

class Simulator {
 public:
  Simulator(Ring ring, AlgorithmPtr algorithm, AdversaryPtr adversary,
            const std::vector<RobotPlacement>& placements,
            SimulatorOptions options = {});

  /// Execute one synchronous round; returns the record of what happened
  /// (also appended to the trace when recording).
  RoundRecord step();

  /// Execute `rounds` further rounds.
  void run(Time rounds);

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] const Ring& ring() const { return ring_; }
  [[nodiscard]] std::uint32_t robot_count() const {
    return static_cast<std::uint32_t>(robots_.size());
  }
  [[nodiscard]] const Robot& robot(RobotId r) const { return robots_[r]; }

  /// Current configuration (the gamma at the start of the next round).
  [[nodiscard]] Configuration snapshot() const;

  [[nodiscard]] const Trace& trace() const { return *trace_; }
  [[nodiscard]] Adversary& adversary() { return *adversary_; }

 private:
  Ring ring_;
  AlgorithmPtr algorithm_;
  AdversaryPtr adversary_;
  SimulatorOptions options_;
  std::vector<Robot> robots_;
  Time now_ = 0;
  std::unique_ptr<Trace> trace_;
};

/// Convenience: evenly spread, towerless default placements for k robots on
/// an n-node ring, all with the same chirality.
[[nodiscard]] std::vector<RobotPlacement> spread_placements(
    const Ring& ring, std::uint32_t k);

/// Towerless placements on k distinct uniformly random nodes, each robot
/// with an independent random chirality (seeded, reproducible).
[[nodiscard]] std::vector<RobotPlacement> random_placements(
    const Ring& ring, std::uint32_t k, std::uint64_t seed);

}  // namespace pef
