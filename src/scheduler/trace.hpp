// Execution traces: the (G_i, gamma_i) sequence of one run.
//
// The trace is the single source of truth for all post-hoc analysis
// (coverage, towers, legality audits, figure reproduction): the simulator
// appends one RoundRecord per round and analysis modules consume it.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "dynamic_graph/edge_set.hpp"
#include "dynamic_graph/ring.hpp"
#include "robot/configuration.hpp"

namespace pef {

/// What one robot did during one round.
struct RobotRoundRecord {
  NodeId node_before = 0;
  NodeId node_after = 0;
  LocalDirection dir_before = LocalDirection::kLeft;  // dir at Look time
  LocalDirection dir_after = LocalDirection::kLeft;   // dir after Compute
  bool moved = false;
  bool saw_other_robots = false;
};

struct RoundRecord {
  Time time = 0;
  /// The adversary's E_t for this round.
  EdgeSet edges;
  std::vector<RobotRoundRecord> robots;
};

class Trace {
 public:
  Trace(Ring ring, Configuration initial)
      : ring_(ring), initial_(std::move(initial)) {}

  [[nodiscard]] const Ring& ring() const { return ring_; }
  [[nodiscard]] const Configuration& initial_configuration() const {
    return initial_;
  }

  void append(RoundRecord record) { rounds_.push_back(std::move(record)); }

  [[nodiscard]] const std::vector<RoundRecord>& rounds() const {
    return rounds_;
  }
  [[nodiscard]] Time length() const { return rounds_.size(); }

  /// Node of robot `r` at the *start* of round `t` (so t == length() gives
  /// the final position).
  [[nodiscard]] NodeId position_at(RobotId r, Time t) const;

  /// The sequence of chosen edge sets (for connectivity audits).
  [[nodiscard]] std::vector<EdgeSet> edge_history() const;

 private:
  Ring ring_;
  Configuration initial_;
  std::vector<RoundRecord> rounds_;
};

}  // namespace pef
