#include "scheduler/ssync.hpp"

#include "common/check.hpp"

namespace pef {

void BernoulliActivation::activate(Time, const Configuration& gamma,
                                   ActivationMask& mask) {
  mask.assign(gamma.robot_count(), 0);
  bool any = false;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask[i] = rng_.next_bool(p_) ? 1 : 0;
    any = any || mask[i] != 0;
  }
  if (!any) {
    mask[static_cast<std::size_t>(rng_.next_below(mask.size()))] = 1;
  }
}

EdgeSet SsyncBlockingAdversary::choose_edges(Time t,
                                             const Configuration& gamma,
                                             const ActivationMask& activated) {
  EdgeSet edges(ring_.edge_count());
  choose_edges_into(t, gamma, activated, edges);
  return edges;
}

void SsyncBlockingAdversary::choose_edges_into(
    Time, const Configuration& gamma, const ActivationMask& activated,
    EdgeSet& out) {
  out.fill();
  for (RobotId r = 0; r < gamma.robot_count(); ++r) {
    if (activated[r] == 0) continue;
    const NodeId u = gamma.robot(r).node;
    out.erase(ring_.adjacent_edge(u, GlobalDirection::kClockwise));
    out.erase(ring_.adjacent_edge(u, GlobalDirection::kCounterClockwise));
  }
}

SsyncSimulator::SsyncSimulator(Ring ring, AlgorithmPtr algorithm,
                               std::unique_ptr<SsyncAdversary> adversary,
                               std::unique_ptr<ActivationPolicy> activation,
                               const std::vector<RobotPlacement>& placements)
    : ring_(ring),
      algorithm_(std::move(algorithm)),
      adversary_(std::move(adversary)),
      activation_(std::move(activation)) {
  PEF_CHECK(algorithm_ != nullptr);
  PEF_CHECK(adversary_ != nullptr);
  PEF_CHECK(activation_ != nullptr);
  PEF_CHECK(adversary_->ring() == ring_);
  PEF_CHECK(!placements.empty());
  robots_.reserve(placements.size());
  for (std::size_t i = 0; i < placements.size(); ++i) {
    PEF_CHECK(ring_.is_valid_node(placements[i].node));
    robots_.emplace_back(static_cast<RobotId>(i), placements[i],
                         algorithm_->make_state(static_cast<RobotId>(i)));
  }
  trace_ = std::make_unique<Trace>(ring_, snapshot());
}

Configuration SsyncSimulator::snapshot() const {
  std::vector<RobotSnapshot> snaps;
  snaps.reserve(robots_.size());
  for (const Robot& r : robots_) {
    RobotSnapshot s;
    s.node = r.node();
    s.dir = r.dir();
    s.chirality = r.chirality();
    snaps.push_back(std::move(s));
  }
  return Configuration(ring_, std::move(snaps));
}

RoundRecord SsyncSimulator::step() {
  const Configuration gamma = snapshot();
  activation_->activate(now_, gamma, activated_);
  PEF_CHECK(activated_.size() == robots_.size());
  const EdgeSet edges = adversary_->choose_edges(now_, gamma, activated_);

  RoundRecord record;
  record.time = now_;
  record.edges = edges;
  record.robots.resize(robots_.size());

  for (RobotId i = 0; i < robots_.size(); ++i) {
    Robot& r = robots_[i];
    record.robots[i].node_before = r.node();
    record.robots[i].dir_before = r.dir();
    record.robots[i].node_after = r.node();
    record.robots[i].dir_after = r.dir();
    if (activated_[i] == 0) continue;

    // Atomic L-C-M for the activated robot.
    View view;
    const EdgeId ahead =
        ring_.adjacent_edge(r.node(), r.chirality().to_global(r.dir()));
    const EdgeId behind = ring_.adjacent_edge(
        r.node(), r.chirality().to_global(opposite(r.dir())));
    view.exists_edge_ahead = edges.contains(ahead);
    view.exists_edge_behind = edges.contains(behind);
    view.other_robots_on_node = gamma.robots_on(r.node()) > 1;
    record.robots[i].saw_other_robots = view.other_robots_on_node;

    LocalDirection dir = r.dir();
    algorithm_->compute(view, dir, r.state());
    r.set_dir(dir);
    record.robots[i].dir_after = dir;

    const GlobalDirection gd = r.chirality().to_global(dir);
    const EdgeId pointed = ring_.adjacent_edge(r.node(), gd);
    if (edges.contains(pointed)) {
      r.set_node(ring_.neighbour(r.node(), gd));
      record.robots[i].moved = true;
    }
    record.robots[i].node_after = r.node();
  }

  ++now_;
  trace_->append(record);
  return record;
}

void SsyncSimulator::run(Time rounds) {
  for (Time i = 0; i < rounds; ++i) step();
}

}  // namespace pef
