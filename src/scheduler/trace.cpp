#include "scheduler/trace.hpp"

#include "common/check.hpp"

namespace pef {

NodeId Trace::position_at(RobotId r, Time t) const {
  PEF_CHECK(r < initial_.robot_count());
  PEF_CHECK(t <= length());
  if (t == 0) return initial_.robot(r).node;
  return rounds_[static_cast<std::size_t>(t - 1)].robots[r].node_after;
}

std::vector<EdgeSet> Trace::edge_history() const {
  std::vector<EdgeSet> history;
  history.reserve(rounds_.size());
  for (const RoundRecord& r : rounds_) history.push_back(r.edges);
  return history;
}

}  // namespace pef
