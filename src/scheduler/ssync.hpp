// SSYNC (semi-synchronous) extension.
//
// The paper restricts its study to FSYNC because of the impossibility result
// of Di Luna et al. [10]: in SSYNC, an adversary that controls *activation*
// as well as edges defeats every exploration algorithm regardless of
// dynamicity assumptions — it can activate robots one at a time and remove
// the edge the activated robot wants to traverse, so no robot ever moves,
// while every edge remains recurrent (it is present whenever its robot is
// not activated).  This module reproduces that argument executably
// (bench_ssync_impossibility).
//
// Model: at each round a fair activation policy selects a subset of robots;
// selected robots perform an atomic Look-Compute-Move against the round's
// edge set; the others do nothing (and keep their state).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "dynamic_graph/schedule.hpp"
#include "robot/algorithm.hpp"
#include "robot/robot.hpp"
#include "scheduler/trace.hpp"

namespace pef {

/// Chooses which robots are activated each round.  Must be fair (every robot
/// activated infinitely often) to be a legal SSYNC scheduler.
class ActivationPolicy {
 public:
  virtual ~ActivationPolicy() = default;
  /// Returns an activation mask of size robot_count; at least one true.
  [[nodiscard]] virtual std::vector<bool> activate(
      Time t, const Configuration& gamma) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// One robot per round, cyclically (fair).
class RoundRobinActivation final : public ActivationPolicy {
 public:
  [[nodiscard]] std::vector<bool> activate(Time t,
                                           const Configuration& gamma) override {
    std::vector<bool> mask(gamma.robot_count(), false);
    mask[static_cast<std::size_t>(t % gamma.robot_count())] = true;
    return mask;
  }
  [[nodiscard]] std::string name() const override { return "round-robin"; }
};

/// Everyone every round (degenerates to FSYNC; used to cross-check the two
/// engines against each other in tests).
class FullActivation final : public ActivationPolicy {
 public:
  [[nodiscard]] std::vector<bool> activate(Time,
                                           const Configuration& gamma) override {
    return std::vector<bool>(gamma.robot_count(), true);
  }
  [[nodiscard]] std::string name() const override { return "full"; }
};

/// Random fair subset (each robot independently with probability p, forced
/// non-empty).
class BernoulliActivation final : public ActivationPolicy {
 public:
  BernoulliActivation(double p, std::uint64_t seed) : p_(p), rng_(seed) {}
  [[nodiscard]] std::vector<bool> activate(Time,
                                           const Configuration& gamma) override;
  [[nodiscard]] std::string name() const override { return "bernoulli"; }

 private:
  double p_;
  Xoshiro256 rng_;
};

/// The SSYNC adversary: sees the configuration *and* the activation mask.
class SsyncAdversary {
 public:
  virtual ~SsyncAdversary() = default;
  [[nodiscard]] virtual const Ring& ring() const = 0;
  [[nodiscard]] virtual EdgeSet choose_edges(
      Time t, const Configuration& gamma,
      const std::vector<bool>& activated) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// The [10]-style blocker: removes both adjacent edges of every activated
/// robot; every other edge present.  No robot ever moves, yet each edge is
/// present at every round in which its incident robots are inactive — with
/// fair non-full activation every edge is recurrent.
class SsyncBlockingAdversary final : public SsyncAdversary {
 public:
  explicit SsyncBlockingAdversary(Ring ring) : ring_(ring) {}
  [[nodiscard]] const Ring& ring() const override { return ring_; }
  [[nodiscard]] EdgeSet choose_edges(
      Time t, const Configuration& gamma,
      const std::vector<bool>& activated) override;
  [[nodiscard]] std::string name() const override { return "ssync-blocker"; }

 private:
  Ring ring_;
};

/// An SsyncAdversary that ignores activation (wraps an oblivious schedule).
class SsyncObliviousAdversary final : public SsyncAdversary {
 public:
  explicit SsyncObliviousAdversary(SchedulePtr schedule)
      : schedule_(std::move(schedule)) {}
  [[nodiscard]] const Ring& ring() const override {
    return schedule_->ring();
  }
  [[nodiscard]] EdgeSet choose_edges(Time t, const Configuration&,
                                     const std::vector<bool>&) override {
    return schedule_->edges_at(t);
  }
  [[nodiscard]] std::string name() const override {
    return schedule_->name();
  }

 private:
  SchedulePtr schedule_;
};

/// The SSYNC execution engine.  Mirrors Simulator but applies the L-C-M
/// cycle only to activated robots.
class SsyncSimulator {
 public:
  SsyncSimulator(Ring ring, AlgorithmPtr algorithm,
                 std::unique_ptr<SsyncAdversary> adversary,
                 std::unique_ptr<ActivationPolicy> activation,
                 const std::vector<RobotPlacement>& placements);

  RoundRecord step();
  void run(Time rounds);

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] Configuration snapshot() const;
  [[nodiscard]] const Trace& trace() const { return *trace_; }

 private:
  Ring ring_;
  AlgorithmPtr algorithm_;
  std::unique_ptr<SsyncAdversary> adversary_;
  std::unique_ptr<ActivationPolicy> activation_;
  std::vector<Robot> robots_;
  Time now_ = 0;
  std::unique_ptr<Trace> trace_;
};

}  // namespace pef
