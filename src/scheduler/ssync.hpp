// SSYNC (semi-synchronous) extension.
//
// The paper restricts its study to FSYNC because of the impossibility result
// of Di Luna et al. [10]: in SSYNC, an adversary that controls *activation*
// as well as edges defeats every exploration algorithm regardless of
// dynamicity assumptions — it can activate robots one at a time and remove
// the edge the activated robot wants to traverse, so no robot ever moves,
// while every edge remains recurrent (it is present whenever its robot is
// not activated).  This module reproduces that argument executably
// (bench_ssync_impossibility).
//
// Model: at each round a fair activation policy selects a subset of robots;
// selected robots perform an atomic Look-Compute-Move against the round's
// edge set; the others do nothing (and keep their state).
//
// Two engines run this model: SsyncSimulator below (the canonical
// reference) and the unified Engine (src/engine/engine.hpp) with
// ExecutionModel::kSsync (the throughput path; differentially tested
// against SsyncSimulator round-by-round).
#pragma once

#include <memory>
#include <vector>

#include "adversary/adversary.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "dynamic_graph/schedule.hpp"
#include "robot/algorithm.hpp"
#include "robot/robot.hpp"
#include "scheduler/trace.hpp"

namespace pef {

/// Per-robot activation flags for one round (1 = selected).  A plain byte
/// vector rather than vector<bool>: engines keep one mask alive and refill
/// it in place every round, and byte loads keep the hot loop branch-free.
using ActivationMask = std::vector<std::uint8_t>;

/// How a policy's selection can be reproduced by a batched engine without
/// calling the virtual activate()/advance() per replica per round.  The
/// common policies are pure functions of (t, robot count) or of a private
/// RNG stream, so BatchEngine regenerates their masks with enum-dispatched
/// kernels over all replicas at once (bit-identical: same draw order, same
/// forced-nonempty fallback).  kVirtual keeps the virtual path — exotic
/// policies stay correct, just off the fast plane.
enum class ActivationBatchKind : std::uint8_t {
  kVirtual = 0,   // no batched equivalent; call the virtual method per lane
  kFull,          // every robot, every round
  kRoundRobin,    // robot t mod k
  kBernoulli,     // iid per-robot draws from a seeded stream (see p()/rng())
};

/// Chooses which robots are activated each round.  Must be fair (every robot
/// activated infinitely often) to be a legal SSYNC scheduler.
class ActivationPolicy {
 public:
  virtual ~ActivationPolicy() = default;
  /// Fill `mask` with this round's activation set (resizing it to
  /// gamma.robot_count()); at least one robot must be selected.  In-place so
  /// callers reuse one buffer across rounds — no per-round allocation.
  virtual void activate(Time t, const Configuration& gamma,
                        ActivationMask& mask) = 0;
  /// Which batched kernel reproduces this policy (kVirtual = none).
  [[nodiscard]] virtual ActivationBatchKind batch_kind() const {
    return ActivationBatchKind::kVirtual;
  }
  [[nodiscard]] virtual std::string name() const = 0;
};

/// One robot per round, cyclically (fair).
class RoundRobinActivation final : public ActivationPolicy {
 public:
  void activate(Time t, const Configuration& gamma,
                ActivationMask& mask) override {
    mask.assign(gamma.robot_count(), 0);
    mask[static_cast<std::size_t>(t % gamma.robot_count())] = 1;
  }
  [[nodiscard]] ActivationBatchKind batch_kind() const override {
    return ActivationBatchKind::kRoundRobin;
  }
  [[nodiscard]] std::string name() const override { return "round-robin"; }
};

/// Everyone every round (degenerates to FSYNC; used to cross-check the two
/// engines against each other in tests).
class FullActivation final : public ActivationPolicy {
 public:
  void activate(Time, const Configuration& gamma,
                ActivationMask& mask) override {
    mask.assign(gamma.robot_count(), 1);
  }
  [[nodiscard]] ActivationBatchKind batch_kind() const override {
    return ActivationBatchKind::kFull;
  }
  [[nodiscard]] std::string name() const override { return "full"; }
};

/// Random fair subset (each robot independently with probability p, forced
/// non-empty).
class BernoulliActivation final : public ActivationPolicy {
 public:
  BernoulliActivation(double p, std::uint64_t seed) : p_(p), rng_(seed) {}
  void activate(Time, const Configuration& gamma,
                ActivationMask& mask) override;
  [[nodiscard]] ActivationBatchKind batch_kind() const override {
    return ActivationBatchKind::kBernoulli;
  }
  /// The batched kernel's inputs: BatchEngine seeds its per-replica RNG
  /// plane from a copy of rng() (taken before any activate() call), so the
  /// batched draws replay this policy's stream bit-for-bit.
  [[nodiscard]] double p() const { return p_; }
  [[nodiscard]] const Xoshiro256& rng() const { return rng_; }
  [[nodiscard]] std::string name() const override { return "bernoulli"; }

 private:
  double p_;
  Xoshiro256 rng_;
};

/// The standard seeded activation policy used by every entry point that
/// maps the FSYNC adversary battery onto SSYNC (SweepRunner,
/// run_experiment, pef_run): Bernoulli(p) over a stream derived from `seed`
/// with one shared salt, so fast and reference runs of the same
/// (model, seed) see identical activation streams.
[[nodiscard]] inline std::unique_ptr<ActivationPolicy>
standard_ssync_activation(double p, std::uint64_t seed) {
  return std::make_unique<BernoulliActivation>(p, derive_seed(seed, 0x55ac));
}

/// The SSYNC adversary: sees the configuration *and* the activation mask.
class SsyncAdversary {
 public:
  virtual ~SsyncAdversary() = default;
  [[nodiscard]] virtual const Ring& ring() const = 0;
  [[nodiscard]] virtual EdgeSet choose_edges(
      Time t, const Configuration& gamma,
      const ActivationMask& activated) = 0;
  /// In-place variant for engine hot loops: refill a caller-owned scratch
  /// set (already sized to ring().edge_count()).  The default falls back to
  /// choose_edges(); hot families override it to run allocation-free.
  virtual void choose_edges_into(Time t, const Configuration& gamma,
                                 const ActivationMask& activated,
                                 EdgeSet& out) {
    out = choose_edges(t, gamma, activated);
  }
  /// Non-null iff this adversary is a pure function of time (it reads
  /// neither gamma nor the activation mask): the wrapped oblivious
  /// schedule.  BatchEngine uses it to route a replica's edge sets through
  /// the schedule's word-plane filler and to skip that replica's
  /// Configuration mirror entirely.  Conservative default: nullptr.
  [[nodiscard]] virtual const EdgeSchedule* oblivious_schedule() const {
    return nullptr;
  }
  [[nodiscard]] virtual std::string name() const = 0;
};

/// The [10]-style blocker: removes both adjacent edges of every activated
/// robot; every other edge present.  No robot ever moves, yet each edge is
/// present at every round in which its incident robots are inactive — with
/// fair non-full activation every edge is recurrent.
class SsyncBlockingAdversary final : public SsyncAdversary {
 public:
  explicit SsyncBlockingAdversary(Ring ring) : ring_(ring) {}
  [[nodiscard]] const Ring& ring() const override { return ring_; }
  [[nodiscard]] EdgeSet choose_edges(Time t, const Configuration& gamma,
                                     const ActivationMask& activated) override;
  void choose_edges_into(Time t, const Configuration& gamma,
                         const ActivationMask& activated,
                         EdgeSet& out) override;
  [[nodiscard]] std::string name() const override { return "ssync-blocker"; }

 private:
  Ring ring_;
};

/// An SsyncAdversary that ignores activation (wraps an oblivious schedule).
class SsyncObliviousAdversary final : public SsyncAdversary {
 public:
  explicit SsyncObliviousAdversary(SchedulePtr schedule)
      : schedule_(std::move(schedule)) {}
  [[nodiscard]] const Ring& ring() const override {
    return schedule_->ring();
  }
  [[nodiscard]] EdgeSet choose_edges(Time t, const Configuration&,
                                     const ActivationMask&) override {
    return schedule_->edges_at(t);
  }
  void choose_edges_into(Time t, const Configuration&, const ActivationMask&,
                         EdgeSet& out) override {
    schedule_->edges_into(t, out);
  }
  [[nodiscard]] const EdgeSchedule* oblivious_schedule() const override {
    return schedule_.get();
  }
  [[nodiscard]] std::string name() const override {
    return schedule_->name();
  }
  [[nodiscard]] const SchedulePtr& schedule() const { return schedule_; }

 private:
  SchedulePtr schedule_;
};

/// Adapts any FSYNC Adversary — oblivious or adaptive — to the SSYNC/ASYNC
/// interface by ignoring the activation mask.  This is how the sweep grid
/// and pef_run reuse the standard adversary battery across every execution
/// model.
class SsyncFromFsyncAdversary final : public SsyncAdversary {
 public:
  explicit SsyncFromFsyncAdversary(AdversaryPtr inner)
      : inner_(std::move(inner)) {
    // Mirror the Engine's FSYNC fast path: oblivious inner adversaries are
    // pure functions of time, so choose_edges_into can refill the scratch
    // set allocation-free via the schedule.
    if (const auto* oblivious =
            dynamic_cast<const ObliviousAdversary*>(inner_.get())) {
      schedule_ = oblivious->schedule().get();
    }
  }
  [[nodiscard]] const Ring& ring() const override { return inner_->ring(); }
  [[nodiscard]] EdgeSet choose_edges(Time t, const Configuration& gamma,
                                     const ActivationMask&) override {
    return inner_->choose_edges(t, gamma);
  }
  void choose_edges_into(Time t, const Configuration& gamma,
                         const ActivationMask&, EdgeSet& out) override {
    if (schedule_ != nullptr) {
      schedule_->edges_into(t, out);
    } else {
      out = inner_->choose_edges(t, gamma);
    }
  }
  [[nodiscard]] const EdgeSchedule* oblivious_schedule() const override {
    return schedule_;
  }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

 private:
  AdversaryPtr inner_;
  const EdgeSchedule* schedule_ = nullptr;  // non-null iff inner is oblivious
};

/// The SSYNC reference engine.  Mirrors Simulator but applies the L-C-M
/// cycle only to activated robots.
class SsyncSimulator {
 public:
  SsyncSimulator(Ring ring, AlgorithmPtr algorithm,
                 std::unique_ptr<SsyncAdversary> adversary,
                 std::unique_ptr<ActivationPolicy> activation,
                 const std::vector<RobotPlacement>& placements);

  RoundRecord step();
  void run(Time rounds);

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] Configuration snapshot() const;
  [[nodiscard]] const Trace& trace() const { return *trace_; }

 private:
  Ring ring_;
  AlgorithmPtr algorithm_;
  std::unique_ptr<SsyncAdversary> adversary_;
  std::unique_ptr<ActivationPolicy> activation_;
  std::vector<Robot> robots_;
  ActivationMask activated_;  // reused across rounds
  Time now_ = 0;
  std::unique_ptr<Trace> trace_;
};

}  // namespace pef
