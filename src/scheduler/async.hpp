// ASYNC (fully asynchronous) extension — the third model of the paper's
// taxonomy (Section 1): "In ASYNC, robots execute L-C-M in a fully
// independent manner."
//
// Each robot progresses through its Look / Compute / Move phases
// separately, one phase per activation, under an adversarial but fair
// phase scheduler.  The defining hazard is staleness: the View consumed by
// Compute was snapshotted at Look time, and the edge set consulted at Move
// time may have changed since — so a robot can chase an edge that no
// longer exists, or act on multiplicity information that is rounds old.
//
// Since SSYNC embeds into ASYNC (activate a robot's three phases
// back-to-back), the [10] impossibility carries over: the blocking
// adversary defeats every algorithm here too (see async_test.cpp).  The
// engine also degenerates to FSYNC when every robot advances every round
// over a static graph (cross-checked against Simulator in tests).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "robot/algorithm.hpp"
#include "robot/robot.hpp"
#include "scheduler/ssync.hpp"
#include "scheduler/trace.hpp"

namespace pef {

enum class Phase : std::uint8_t { kLook = 0, kCompute = 1, kMove = 2 };

[[nodiscard]] constexpr const char* to_string(Phase p) {
  switch (p) {
    case Phase::kLook:
      return "Look";
    case Phase::kCompute:
      return "Compute";
    case Phase::kMove:
      return "Move";
  }
  return "?";
}

/// Decides which robots advance one phase this round.  Must be fair.
class PhaseScheduler {
 public:
  virtual ~PhaseScheduler() = default;
  [[nodiscard]] virtual std::vector<bool> advance(
      Time t, const Configuration& gamma,
      const std::vector<Phase>& phases) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Everyone advances every round (synchronised phases: FSYNC at 1/3 speed).
class LockstepPhases final : public PhaseScheduler {
 public:
  [[nodiscard]] std::vector<bool> advance(
      Time, const Configuration& gamma,
      const std::vector<Phase>&) override {
    return std::vector<bool>(gamma.robot_count(), true);
  }
  [[nodiscard]] std::string name() const override { return "lockstep"; }
};

/// One robot advances per round, cyclically (maximally interleaved).
class RoundRobinPhases final : public PhaseScheduler {
 public:
  [[nodiscard]] std::vector<bool> advance(
      Time t, const Configuration& gamma,
      const std::vector<Phase>&) override {
    std::vector<bool> mask(gamma.robot_count(), false);
    mask[static_cast<std::size_t>(t % gamma.robot_count())] = true;
    return mask;
  }
  [[nodiscard]] std::string name() const override { return "round-robin"; }
};

/// Each robot advances independently with probability p (fair w.p. 1).
class BernoulliPhases final : public PhaseScheduler {
 public:
  BernoulliPhases(double p, std::uint64_t seed) : p_(p), rng_(seed) {}
  [[nodiscard]] std::vector<bool> advance(
      Time, const Configuration& gamma,
      const std::vector<Phase>&) override {
    std::vector<bool> mask(gamma.robot_count(), false);
    bool any = false;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      mask[i] = rng_.next_bool(p_);
      any = any || mask[i];
    }
    if (!any) mask[rng_.next_below(mask.size())] = true;
    return mask;
  }
  [[nodiscard]] std::string name() const override { return "bernoulli"; }

 private:
  double p_;
  Xoshiro256 rng_;
};

/// The ASYNC engine.  Reuses the SsyncAdversary interface (the edge
/// adversary sees the configuration and the advancing set each round).
class AsyncSimulator {
 public:
  AsyncSimulator(Ring ring, AlgorithmPtr algorithm,
                 std::unique_ptr<SsyncAdversary> adversary,
                 std::unique_ptr<PhaseScheduler> phases,
                 const std::vector<RobotPlacement>& placements);

  /// One scheduler tick: every selected robot executes its pending phase.
  RoundRecord step();
  void run(Time rounds);

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] Configuration snapshot() const;
  [[nodiscard]] const Trace& trace() const { return *trace_; }
  [[nodiscard]] Phase phase_of(RobotId r) const { return phases_[r]; }

 private:
  Ring ring_;
  AlgorithmPtr algorithm_;
  std::unique_ptr<SsyncAdversary> adversary_;
  std::unique_ptr<PhaseScheduler> scheduler_;
  std::vector<Robot> robots_;
  std::vector<Phase> phases_;
  std::vector<View> pending_views_;  // snapshot taken at Look time
  Time now_ = 0;
  std::unique_ptr<Trace> trace_;
};

/// ASYNC blocker: removes both adjacent edges of every robot that executes
/// its Move phase this tick.  No robot ever moves; every edge stays
/// recurrent under non-lockstep fair scheduling.  (The ASYNC face of the
/// [10] impossibility.)
///
/// In the ASYNC engine the adversary's `activated` mask is the set of
/// robots whose *Move* phase fires this tick — SsyncBlockingAdversary has
/// exactly the wanted behaviour, so the blocker is a thin alias kept for
/// readability at call sites.
using AsyncMoveBlocker = SsyncBlockingAdversary;

}  // namespace pef
