// ASYNC (fully asynchronous) extension — the third model of the paper's
// taxonomy (Section 1): "In ASYNC, robots execute L-C-M in a fully
// independent manner."
//
// Each robot progresses through its Look / Compute / Move phases
// separately, one phase per activation, under an adversarial but fair
// phase scheduler.  The defining hazard is staleness: the View consumed by
// Compute was snapshotted at Look time, and the edge set consulted at Move
// time may have changed since — so a robot can chase an edge that no
// longer exists, or act on multiplicity information that is rounds old.
//
// Since SSYNC embeds into ASYNC (activate a robot's three phases
// back-to-back), the [10] impossibility carries over: the blocking
// adversary defeats every algorithm here too (see async_test.cpp).  The
// engine also degenerates to FSYNC when every robot advances every round
// over a static graph (cross-checked against Simulator in tests).
//
// AsyncSimulator below is the canonical reference; the unified Engine
// (src/engine/engine.hpp) runs the same model on its throughput path with
// ExecutionModel::kAsync.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "robot/algorithm.hpp"
#include "robot/robot.hpp"
#include "scheduler/ssync.hpp"
#include "scheduler/trace.hpp"

namespace pef {

enum class Phase : std::uint8_t { kLook = 0, kCompute = 1, kMove = 2 };

[[nodiscard]] constexpr const char* to_string(Phase p) {
  switch (p) {
    case Phase::kLook:
      return "Look";
    case Phase::kCompute:
      return "Compute";
    case Phase::kMove:
      return "Move";
  }
  return "?";
}

/// Decides which robots advance one phase this round.  Must be fair.
class PhaseScheduler {
 public:
  virtual ~PhaseScheduler() = default;
  /// Fill `mask` with this round's advancing set (resizing it to
  /// gamma.robot_count()).  In-place so callers reuse one buffer across
  /// rounds — no per-round allocation.
  virtual void advance(Time t, const Configuration& gamma,
                       const std::vector<Phase>& phases,
                       ActivationMask& mask) = 0;
  /// Which batched kernel reproduces this scheduler (see ActivationBatchKind
  /// in scheduler/ssync.hpp — the standard schedulers never read `phases`
  /// or `gamma`, so the SSYNC kernels apply unchanged).
  [[nodiscard]] virtual ActivationBatchKind batch_kind() const {
    return ActivationBatchKind::kVirtual;
  }
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Everyone advances every round (synchronised phases: FSYNC at 1/3 speed).
class LockstepPhases final : public PhaseScheduler {
 public:
  void advance(Time, const Configuration& gamma, const std::vector<Phase>&,
               ActivationMask& mask) override {
    mask.assign(gamma.robot_count(), 1);
  }
  [[nodiscard]] ActivationBatchKind batch_kind() const override {
    return ActivationBatchKind::kFull;
  }
  [[nodiscard]] std::string name() const override { return "lockstep"; }
};

/// One robot advances per round, cyclically (maximally interleaved).
class RoundRobinPhases final : public PhaseScheduler {
 public:
  void advance(Time t, const Configuration& gamma, const std::vector<Phase>&,
               ActivationMask& mask) override {
    mask.assign(gamma.robot_count(), 0);
    mask[static_cast<std::size_t>(t % gamma.robot_count())] = 1;
  }
  [[nodiscard]] ActivationBatchKind batch_kind() const override {
    return ActivationBatchKind::kRoundRobin;
  }
  [[nodiscard]] std::string name() const override { return "round-robin"; }
};

/// Each robot advances independently with probability p (fair w.p. 1).
class BernoulliPhases final : public PhaseScheduler {
 public:
  BernoulliPhases(double p, std::uint64_t seed) : p_(p), rng_(seed) {}
  void advance(Time, const Configuration& gamma, const std::vector<Phase>&,
               ActivationMask& mask) override {
    mask.assign(gamma.robot_count(), 0);
    bool any = false;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      mask[i] = rng_.next_bool(p_) ? 1 : 0;
      any = any || mask[i] != 0;
    }
    if (!any) mask[rng_.next_below(mask.size())] = 1;
  }
  [[nodiscard]] ActivationBatchKind batch_kind() const override {
    return ActivationBatchKind::kBernoulli;
  }
  /// Batched-kernel inputs, as on BernoulliActivation.
  [[nodiscard]] double p() const { return p_; }
  [[nodiscard]] const Xoshiro256& rng() const { return rng_; }
  [[nodiscard]] std::string name() const override { return "bernoulli"; }

 private:
  double p_;
  Xoshiro256 rng_;
};

/// The ASYNC counterpart of standard_ssync_activation: the shared seeded
/// phase scheduler of every FSYNC-battery-on-ASYNC entry point.
[[nodiscard]] inline std::unique_ptr<PhaseScheduler> standard_async_phases(
    double p, std::uint64_t seed) {
  return std::make_unique<BernoulliPhases>(p, derive_seed(seed, 0xa5fc));
}

/// The ASYNC reference engine.  Reuses the SsyncAdversary interface (the
/// edge adversary sees the configuration and the advancing set each round).
class AsyncSimulator {
 public:
  AsyncSimulator(Ring ring, AlgorithmPtr algorithm,
                 std::unique_ptr<SsyncAdversary> adversary,
                 std::unique_ptr<PhaseScheduler> phases,
                 const std::vector<RobotPlacement>& placements);

  /// One scheduler tick: every selected robot executes its pending phase.
  RoundRecord step();
  void run(Time rounds);

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] Configuration snapshot() const;
  [[nodiscard]] const Trace& trace() const { return *trace_; }
  [[nodiscard]] Phase phase_of(RobotId r) const { return phases_[r]; }

 private:
  Ring ring_;
  AlgorithmPtr algorithm_;
  std::unique_ptr<SsyncAdversary> adversary_;
  std::unique_ptr<PhaseScheduler> scheduler_;
  std::vector<Robot> robots_;
  std::vector<Phase> phases_;
  std::vector<View> pending_views_;  // snapshot taken at Look time
  ActivationMask advancing_;         // reused across ticks
  ActivationMask moving_;            // reused across ticks
  Time now_ = 0;
  std::unique_ptr<Trace> trace_;
};

/// ASYNC blocker: removes both adjacent edges of every robot that executes
/// its Move phase this tick.  No robot ever moves; every edge stays
/// recurrent under non-lockstep fair scheduling.  (The ASYNC face of the
/// [10] impossibility.)
///
/// In the ASYNC engine the adversary's `activated` mask is the set of
/// robots whose *Move* phase fires this tick — SsyncBlockingAdversary has
/// exactly the wanted behaviour, so the blocker is a thin alias kept for
/// readability at call sites.
using AsyncMoveBlocker = SsyncBlockingAdversary;

}  // namespace pef
