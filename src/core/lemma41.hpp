// The Lemma 4.1 mirror construction (Figure 1 of the paper), executable.
//
// Context: Lemma 4.1 underpins Theorem 4.1 (two robots cannot explore
// connected-over-time rings of size >= 4).  Given an execution prefix of a
// 2-robot algorithm on a ring G in which, up to time t,
//   (i)   the whole ring has not been explored,
//   (ii)  no tower was formed,
//   (iii) each robot visited at most two adjacent nodes,
// the proof builds an 8-node ring G' containing *two mirror copies* of
// robot r1's visited neighbourhood glued along the edge (f'1, f'2), places
// r1 and a second robot with opposite chirality symmetrically, and replays.
// The claims (proved in the paper, mechanically checked here):
//
//   Claim 1 - the two robots act symmetrically at every round <= t;
//   Claim 2 - they stay at odd distance, hence never form a tower;
//   Claim 3 - r1's action sequence in ε' equals its sequence in ε;
//   Claim 4 - at time t they stand on the adjacent nodes f'1, f'2, in the
//             same state s.
//
// Afterwards the gluing edge is removed forever: each robot faces
// OneEdge(f'_i, t, +inf), and an algorithm whose robots camp under OneEdge
// explores only <= 6 of the 8 nodes — the contradiction the proof needs.
//
// Figure 1 distinguishes five placements of (i, f, a) — r1's start node i,
// its node f at time t, and the second node a it may have visited (a = i
// when r1 never moved).  We reproduce all five.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "dynamic_graph/schedules.hpp"
#include "robot/robot.hpp"
#include "scheduler/trace.hpp"

namespace pef::lemma41 {

/// The five (i, f, a) geometries of Figure 1.
enum class Case : std::uint8_t {
  kStayedNeverMoved,   // f == i, a == i         (|R| = 1)
  kStayedVisitedCw,    // f == i, a cw of i      (went and came back)
  kStayedVisitedCcw,   // f == i, a ccw of i
  kEndedOnACw,         // f == a, a cw of i      (moved and stayed there)
  kEndedOnACcw,        // f == a, a ccw of i
};

[[nodiscard]] const char* to_string(Case c);

/// Presence of the four constrained edges of G at one round, in global
/// terms: r(i), l(i), r(a), l(a) — clockwise / counter-clockwise adjacent
/// edges of nodes i and a.  (When a == i the last two entries must equal
/// the first two.)
struct NeighbourhoodRound {
  bool r_i = true;
  bool l_i = true;
  bool r_a = true;
  bool l_a = true;
};

/// Everything extracted from an original execution prefix that the
/// construction needs.
struct PrefixSummary {
  Case geometry = Case::kStayedNeverMoved;
  Time t = 0;                       // prefix length
  NodeId i = 0, a = 0, f = 0;       // r1's nodes in G
  std::vector<NeighbourhoodRound> neighbourhood;  // one entry per round < t
  Chirality r1_chirality{true};
};

/// Extracts a PrefixSummary for robot `r1` from rounds [0, t) of `trace`,
/// verifying the Lemma's preconditions: no tower before t, r1 visited at
/// most two adjacent nodes, the ring not fully explored.  Returns nullopt
/// when a precondition fails.
[[nodiscard]] std::optional<PrefixSummary> extract_prefix(const Trace& trace,
                                                          RobotId r1, Time t);

/// The constructed 8-node evolving ring G' plus the mirrored placements.
struct Construction {
  Ring ring{8};
  SchedulePtr schedule;  // mirrored prefix, then all-present minus the glue
  RobotPlacement r1;     // starts on i'1
  RobotPlacement r2;     // starts on i'2 = mirror(i'1), opposite chirality

  // Node images (for reporting / assertions).
  NodeId i1 = 0, a1 = 0, f1 = 0;
  NodeId i2 = 0, a2 = 0, f2 = 0;
  EdgeId glue_edge = 0;  // (f'1, f'2), removed forever from time t on
};

/// Builds G' from a prefix summary (the paper's Figure 1 construction).
[[nodiscard]] Construction build(const PrefixSummary& prefix);

/// Result of replaying an algorithm on the construction and checking the
/// paper's four claims plus the post-t holding behaviour.
struct MirrorReport {
  bool claim1_symmetry = false;
  bool claim2_no_tower = false;
  bool claim3_replay = false;
  bool claim4_adjacent = false;

  /// Rounds (of `extra_rounds`) both robots spent on f'1 / f'2 after t.
  Time post_hold_rounds = 0;
  /// Distinct nodes of G' visited during the whole mirrored run.
  std::uint32_t visited_nodes = 0;

  [[nodiscard]] bool all_claims() const {
    return claim1_symmetry && claim2_no_tower && claim3_replay &&
           claim4_adjacent;
  }
};

/// Replays `algorithm` on `construction` for prefix.t + extra_rounds rounds
/// and mechanically verifies Claims 1-4 against the original trace.
[[nodiscard]] MirrorReport replay_and_verify(const Construction& construction,
                                             const AlgorithmPtr& algorithm,
                                             const Trace& original_trace,
                                             RobotId original_r1,
                                             const PrefixSummary& prefix,
                                             Time extra_rounds);

}  // namespace pef::lemma41
