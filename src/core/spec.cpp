#include "core/spec.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

#include "adversary/adaptive_missing_edge.hpp"
#include "adversary/confinement.hpp"
#include "adversary/greedy_blocker.hpp"
#include "adversary/proof_adversary.hpp"
#include "algorithms/registry.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/computability.hpp"
#include "dynamic_graph/chain.hpp"
#include "dynamic_graph/markov_schedule.hpp"
#include "dynamic_graph/schedules.hpp"

namespace pef {

// ---------------------------------------------------------------------------
// Topology

const char* to_string(Topology topology) {
  switch (topology) {
    case Topology::kRing:
      return "ring";
    case Topology::kChain:
      return "chain";
  }
  PEF_CHECK_MSG(false, "unknown topology");
  return "?";
}

std::optional<Topology> parse_topology(const std::string& name) {
  if (name == "ring") return Topology::kRing;
  if (name == "chain") return Topology::kChain;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// The registry

const std::vector<AdversaryKindInfo>& adversary_registry() {
  // Field order: kind, name, description, params, adaptive, batchable.
  // `batchable` marks the per-replica-independent families (oblivious
  // schedules) whose edge words BatchEngine fills directly into its edge
  // plane; the adaptive lower-bound families keep the mirror path.
  static const std::vector<AdversaryKindInfo> registry = {
      {AdversaryKind::kStatic, "static",
       "every edge present at every round", {}, false, true},
      {AdversaryKind::kBernoulli, "bernoulli",
       "iid edge presence with probability p",
       {{"p", 0.5, "per-edge presence probability"}}, false, true},
      {AdversaryKind::kPeriodic, "periodic",
       "rotating public-transport pattern: present iff t mod period < duty",
       {{"period", 5, "pattern period (rounds)"},
        {"duty", 3, "present rounds per period"}}, false, true},
      {AdversaryKind::kTInterval, "t-interval",
       "at most one absent edge, redrawn every T rounds",
       {{"interval", 4, "rounds between redraws (T)"}}, false, true},
      {AdversaryKind::kBoundedAbsence, "bounded-absence",
       "random absences of at most A consecutive rounds per edge",
       {{"max_absence", 6, "longest absence run (A)"},
        {"max_presence", 8, "longest presence run"}}, false, true},
      {AdversaryKind::kEventualMissing, "eventual-missing",
       "one seed-chosen edge vanishes forever (forces sentinels)", {}, false,
       true},
      {AdversaryKind::kAdaptiveMissing, "adaptive-missing",
       "waits for a seed-chosen trigger round, then kills the edge most "
       "robots point at", {}, true, false},
      {AdversaryKind::kMarkov, "markov",
       "per-edge two-state Markov chain (fail / recover)",
       {{"p_fail", 0.2, "present -> absent transition probability"},
        {"p_recover", 0.4, "absent -> present transition probability"}},
       false, true},
      {AdversaryKind::kGreedyBlocker, "greedy-blocker",
       "legality-capped blocker: removes the edge ahead of each robot for "
       "up to A rounds",
       {{"max_absence", 6, "legality cap per edge (A)"}}, true, false},
      {AdversaryKind::kCage, "cage",
       "confinement window of `width` nodes around `anchor` (Theorem 4.1 "
       "style)",
       {{"anchor", 0, "first node of the window"},
        {"width", 0, "window width; 0 = min(k + 1, n - 1)"}}, true, false},
      {AdversaryKind::kProof, "proof",
       "staged lower-bound adversary of Theorems 4.1 / 5.1",
       {{"anchor", 0, "first node of the window"},
        {"width", 0, "window width; 0 = min(k + 1, n - 1)"},
        {"patience", 64, "rounds per stage before tightening"}}, true, false},
  };
  return registry;
}

const AdversaryKindInfo& adversary_kind_info(AdversaryKind kind) {
  for (const AdversaryKindInfo& info : adversary_registry()) {
    if (info.kind == kind) return info;
  }
  PEF_CHECK_MSG(false, "adversary kind missing from registry");
  return adversary_registry().front();
}

std::optional<AdversaryKind> parse_adversary_kind(const std::string& name) {
  for (const AdversaryKindInfo& info : adversary_registry()) {
    if (name == info.name) return info.kind;
  }
  return std::nullopt;
}

std::string known_adversary_kinds() {
  std::string out;
  for (const AdversaryKindInfo& info : adversary_registry()) {
    if (!out.empty()) out += ", ";
    out += info.name;
  }
  return out;
}

// ---------------------------------------------------------------------------
// AdversaryConfig

namespace {

const AdversaryParamInfo* find_param_info(const AdversaryKindInfo& info,
                                          const std::string& name) {
  for (const AdversaryParamInfo& param : info.params) {
    if (name == param.name) return &param;
  }
  return nullptr;
}

std::string declared_params(const AdversaryKindInfo& info) {
  if (info.params.empty()) return "none";
  std::string out;
  for (const AdversaryParamInfo& param : info.params) {
    if (!out.empty()) out += ", ";
    out += param.name;
  }
  return out;
}

/// Positive-integer param cast used by every count/round-valued parameter.
std::uint64_t int_param(const AdversaryConfig& config, const char* name) {
  return static_cast<std::uint64_t>(config.param(name));
}

}  // namespace

double AdversaryConfig::param(const std::string& name) const {
  const AdversaryKindInfo& info = adversary_kind_info(kind);
  PEF_CHECK_MSG(find_param_info(info, name) != nullptr,
                "adversary param not declared by this kind");
  for (const AdversaryParam& override : params) {
    if (override.name == name) return override.value;
  }
  return find_param_info(info, name)->default_value;
}

AdversaryConfig& AdversaryConfig::set(const std::string& name, double value) {
  const AdversaryKindInfo& info = adversary_kind_info(kind);
  PEF_CHECK_MSG(find_param_info(info, name) != nullptr,
                "adversary param not declared by this kind");
  for (AdversaryParam& override : params) {
    if (override.name == name) {
      override.value = value;
      return *this;
    }
  }
  params.push_back({name, value});
  return *this;
}

bool AdversaryConfig::operator==(const AdversaryConfig& other) const {
  if (kind != other.kind) return false;
  for (const AdversaryParamInfo& info : adversary_kind_info(kind).params) {
    if (param(info.name) != other.param(info.name)) return false;
  }
  return true;
}

AdversaryConfig adversary_config(AdversaryKind kind) { return {kind, {}}; }

AdversaryConfig adversary_config(
    AdversaryKind kind, std::initializer_list<AdversaryParam> overrides) {
  AdversaryConfig config{kind, {}};
  for (const AdversaryParam& override : overrides) {
    config.set(override.name, override.value);
  }
  return config;
}

std::string adversary_display_name(const AdversaryConfig& config) {
  switch (config.kind) {
    case AdversaryKind::kStatic:
      return "static";
    case AdversaryKind::kBernoulli:
      return "bernoulli(p=" + format_double(config.param("p"), 1) + ")";
    case AdversaryKind::kPeriodic:
      return "periodic(" + std::to_string(int_param(config, "duty")) + "/" +
             std::to_string(int_param(config, "period")) + ")";
    case AdversaryKind::kTInterval:
      return "t-interval(T=" + std::to_string(int_param(config, "interval")) +
             ")";
    case AdversaryKind::kBoundedAbsence:
      return "bounded-absence(A=" +
             std::to_string(int_param(config, "max_absence")) + ")";
    case AdversaryKind::kEventualMissing:
      return "eventual-missing";
    case AdversaryKind::kAdaptiveMissing:
      return "adaptive-missing";
    case AdversaryKind::kMarkov:
      return "markov(f=" + format_double(config.param("p_fail"), 2) + ",r=" +
             format_double(config.param("p_recover"), 2) + ")";
    case AdversaryKind::kGreedyBlocker:
      return "greedy-blocker(A=" +
             std::to_string(int_param(config, "max_absence")) + ")";
    case AdversaryKind::kCage: {
      const auto width = int_param(config, "width");
      return width == 0 ? "cage" : "cage(w=" + std::to_string(width) + ")";
    }
    case AdversaryKind::kProof: {
      const auto width = int_param(config, "width");
      return width == 0 ? "proof" : "proof(w=" + std::to_string(width) + ")";
    }
  }
  PEF_CHECK_MSG(false, "unknown adversary kind");
  return "?";
}

namespace {

/// Restricts an adaptive adversary to the chain: whatever E_t the inner
/// adversary picks, the cut edge is erased.  (Oblivious adversaries never
/// reach this wrapper — their schedule is rewrapped in ChainSchedule so the
/// batched word-plane path survives.)
class ChainAdversary final : public Adversary {
 public:
  ChainAdversary(AdversaryPtr inner, EdgeId cut)
      : inner_(std::move(inner)), cut_(cut) {}

  [[nodiscard]] const Ring& ring() const override { return inner_->ring(); }
  [[nodiscard]] EdgeSet choose_edges(Time t,
                                     const Configuration& gamma) override {
    EdgeSet s = inner_->choose_edges(t, gamma);
    s.erase(cut_);
    return s;
  }
  [[nodiscard]] std::string name() const override {
    return "chain(" + inner_->name() + ")";
  }

 private:
  AdversaryPtr inner_;
  EdgeId cut_;
};

AdversaryPtr apply_topology(AdversaryPtr adversary, Topology topology) {
  if (topology == Topology::kRing) return adversary;
  if (const auto* oblivious =
          dynamic_cast<const ObliviousAdversary*>(adversary.get())) {
    return make_oblivious(ChainSchedule::cut_last(oblivious->schedule()));
  }
  const EdgeId cut =
      static_cast<EdgeId>(adversary->ring().edge_count() - 1);
  return std::make_unique<ChainAdversary>(std::move(adversary), cut);
}

AdversaryPtr resolve_ring_adversary(const AdversaryConfig& config,
                                    const Ring& ring, std::uint64_t seed,
                                    std::uint32_t robots) {
  switch (config.kind) {
    case AdversaryKind::kStatic:
      return make_oblivious(std::make_shared<StaticSchedule>(ring));
    case AdversaryKind::kBernoulli:
      return make_oblivious(std::make_shared<BernoulliSchedule>(
          ring, config.param("p"), seed));
    case AdversaryKind::kPeriodic:
      return make_oblivious(
          std::make_shared<PeriodicSchedule>(PeriodicSchedule::rotating(
              ring, static_cast<std::uint32_t>(int_param(config, "period")),
              static_cast<std::uint32_t>(int_param(config, "duty")))));
    case AdversaryKind::kTInterval:
      return make_oblivious(std::make_shared<TIntervalConnectedSchedule>(
          ring, int_param(config, "interval"), seed));
    case AdversaryKind::kBoundedAbsence:
      return make_oblivious(std::make_shared<BoundedAbsenceSchedule>(
          ring, int_param(config, "max_absence"),
          int_param(config, "max_presence"), seed));
    case AdversaryKind::kEventualMissing: {
      // The doomed edge and the vanish time depend on the seed so a battery
      // covers different geometries.  (Stream tag unchanged since the
      // battery's introduction: sweep baselines pin these draws.)
      Xoshiro256 rng(derive_seed(seed, 0xe1de));
      const EdgeId edge =
          static_cast<EdgeId>(rng.next_below(ring.edge_count()));
      const Time vanish = 2 + rng.next_below(4 * ring.node_count());
      return make_oblivious(std::make_shared<EventualMissingEdgeSchedule>(
          std::make_shared<StaticSchedule>(ring), edge, vanish));
    }
    case AdversaryKind::kAdaptiveMissing: {
      Xoshiro256 rng(derive_seed(seed, 0xada));
      const Time trigger = 2 + rng.next_below(4 * ring.node_count());
      return std::make_unique<AdaptiveMissingEdgeAdversary>(ring, trigger);
    }
    case AdversaryKind::kMarkov:
      return make_oblivious(std::make_shared<MarkovSchedule>(
          ring, config.param("p_fail"), config.param("p_recover"), seed));
    case AdversaryKind::kGreedyBlocker:
      return std::make_unique<GreedyBlockerAdversary>(
          ring, int_param(config, "max_absence"));
    case AdversaryKind::kCage: {
      auto width = static_cast<std::uint32_t>(int_param(config, "width"));
      if (width == 0) width = std::min(robots + 1, ring.node_count() - 1);
      return std::make_unique<ConfinementAdversary>(
          ring, static_cast<NodeId>(int_param(config, "anchor")), width);
    }
    case AdversaryKind::kProof: {
      auto width = static_cast<std::uint32_t>(int_param(config, "width"));
      if (width == 0) width = std::min(robots + 1, ring.node_count() - 1);
      return std::make_unique<StagedProofAdversary>(
          ring, static_cast<NodeId>(int_param(config, "anchor")), width,
          int_param(config, "patience"));
    }
  }
  PEF_CHECK_MSG(false, "unknown adversary kind");
  return nullptr;
}

}  // namespace

AdversaryPtr adversary_from_config(const AdversaryConfig& config,
                                   const Ring& ring, std::uint64_t seed,
                                   std::uint32_t robots, Topology topology) {
  return apply_topology(resolve_ring_adversary(config, ring, seed, robots),
                        topology);
}

namespace {

std::optional<std::string> check_probability(const AdversaryConfig& config,
                                             const char* name) {
  const double v = config.param(name);
  if (v < 0.0 || v > 1.0) {
    return "adversary \"" + std::string(adversary_kind_info(config.kind).name) +
           "\": param \"" + name + "\" must be in [0, 1] (got " +
           JsonWriter::format_number(v) + ")";
  }
  return std::nullopt;
}

std::optional<std::string> check_positive_int(const AdversaryConfig& config,
                                              const char* name) {
  const double v = config.param(name);
  if (v < 1.0 || v != std::floor(v)) {
    return "adversary \"" + std::string(adversary_kind_info(config.kind).name) +
           "\": param \"" + name + "\" must be a positive integer (got " +
           JsonWriter::format_number(v) + ")";
  }
  return std::nullopt;
}

std::optional<std::string> check_nonnegative_int(const AdversaryConfig& config,
                                                 const char* name) {
  const double v = config.param(name);
  if (v < 0.0 || v != std::floor(v)) {
    return "adversary \"" + std::string(adversary_kind_info(config.kind).name) +
           "\": param \"" + name + "\" must be a non-negative integer (got " +
           JsonWriter::format_number(v) + ")";
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> validate_adversary(const AdversaryConfig& config) {
  switch (config.kind) {
    case AdversaryKind::kStatic:
    case AdversaryKind::kEventualMissing:
    case AdversaryKind::kAdaptiveMissing:
      return std::nullopt;
    case AdversaryKind::kBernoulli:
      return check_probability(config, "p");
    case AdversaryKind::kPeriodic: {
      if (auto err = check_positive_int(config, "period")) return err;
      if (auto err = check_positive_int(config, "duty")) return err;
      if (config.param("duty") > config.param("period")) {
        return std::string("adversary \"periodic\": \"duty\" must be <= "
                           "\"period\" (an edge cannot be present more than "
                           "period rounds per period)");
      }
      return std::nullopt;
    }
    case AdversaryKind::kTInterval:
      return check_positive_int(config, "interval");
    case AdversaryKind::kBoundedAbsence: {
      if (auto err = check_positive_int(config, "max_absence")) return err;
      return check_positive_int(config, "max_presence");
    }
    case AdversaryKind::kMarkov: {
      if (auto err = check_probability(config, "p_fail")) return err;
      return check_probability(config, "p_recover");
    }
    case AdversaryKind::kGreedyBlocker:
      return check_positive_int(config, "max_absence");
    case AdversaryKind::kCage: {
      if (auto err = check_nonnegative_int(config, "anchor")) return err;
      return check_nonnegative_int(config, "width");
    }
    case AdversaryKind::kProof: {
      if (auto err = check_nonnegative_int(config, "anchor")) return err;
      if (auto err = check_nonnegative_int(config, "width")) return err;
      return check_positive_int(config, "patience");
    }
  }
  return "unknown adversary kind";
}

std::vector<AdversaryConfig> standard_battery_configs() {
  return {adversary_config(AdversaryKind::kStatic),
          adversary_config(AdversaryKind::kBernoulli, {{"p", 0.1}}),
          adversary_config(AdversaryKind::kBernoulli, {{"p", 0.5}}),
          adversary_config(AdversaryKind::kBernoulli, {{"p", 0.9}}),
          adversary_config(AdversaryKind::kPeriodic,
                           {{"period", 5}, {"duty", 3}}),
          adversary_config(AdversaryKind::kTInterval, {{"interval", 4}}),
          adversary_config(AdversaryKind::kBoundedAbsence,
                           {{"max_absence", 6}}),
          adversary_config(AdversaryKind::kEventualMissing),
          adversary_config(AdversaryKind::kAdaptiveMissing)};
}

// ---------------------------------------------------------------------------
// JSON

namespace {

/// Members of the (already opened) adversary object.
void adversary_config_members(JsonWriter& json,
                              const AdversaryConfig& config) {
  const AdversaryKindInfo& info = adversary_kind_info(config.kind);
  json.field("kind", info.name);
  json.begin_object("params");
  for (const AdversaryParamInfo& param : info.params) {
    json.field(param.name, config.param(param.name));
  }
  json.end_object();
}

}  // namespace

void adversary_config_to_json(JsonWriter& json,
                              const AdversaryConfig& config) {
  json.begin_object();
  adversary_config_members(json, config);
  json.end_object();
}

void adversary_config_to_json(JsonWriter& json, const std::string& key,
                              const AdversaryConfig& config) {
  json.begin_object(key);
  adversary_config_members(json, config);
  json.end_object();
}

std::optional<AdversaryConfig> adversary_config_from_json(
    const JsonValue& value, std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  if (!value.is_object()) {
    return fail("an adversary must be an object like "
                "{\"kind\": \"bernoulli\", \"params\": {\"p\": 0.5}}");
  }
  const JsonValue* kind_value = value.find("kind");
  if (kind_value == nullptr || !kind_value->is_string()) {
    return fail("adversary needs a string \"kind\" (known kinds: " +
                known_adversary_kinds() + ")");
  }
  const auto kind = parse_adversary_kind(kind_value->string_value);
  if (!kind) {
    return fail("unknown adversary kind \"" + kind_value->string_value +
                "\" (known kinds: " + known_adversary_kinds() + ")");
  }
  AdversaryConfig config = adversary_config(*kind);
  const AdversaryKindInfo& info = adversary_kind_info(*kind);
  for (const auto& [key, member] : value.members) {
    if (key == "kind") continue;
    if (key != "params") {
      return fail("unknown key \"" + key +
                  "\" in adversary (keys: kind, params)");
    }
    if (!member.is_object()) {
      return fail("adversary \"params\" must be an object of numbers");
    }
    for (const auto& [name, param] : member.members) {
      if (find_param_info(info, name) == nullptr) {
        return fail("adversary \"" + std::string(info.name) +
                    "\": unknown param \"" + name + "\" (params: " +
                    declared_params(info) + ")");
      }
      if (!param.is_number()) {
        return fail("adversary \"" + std::string(info.name) + "\": param \"" +
                    name + "\" must be a number");
      }
      config.set(name, param.number_value);
    }
  }
  return config;
}

namespace {

// -- shared field readers with actionable messages --------------------------

bool read_u32(const JsonValue& value, const char* what, std::uint32_t& out,
              std::string* error) {
  if (!value.is_number() || !value.is_uint ||
      value.uint_value > 0xffffffffull) {
    if (error != nullptr) {
      *error = std::string(what) + " must be a non-negative 32-bit integer";
    }
    return false;
  }
  out = static_cast<std::uint32_t>(value.uint_value);
  return true;
}

bool read_u64(const JsonValue& value, const char* what, std::uint64_t& out,
              std::string* error) {
  if (!value.is_number() || !value.is_uint) {
    if (error != nullptr) {
      *error = std::string(what) + " must be a non-negative integer";
    }
    return false;
  }
  out = value.uint_value;
  return true;
}

bool read_double(const JsonValue& value, const char* what, double& out,
                 std::string* error) {
  if (!value.is_number()) {
    if (error != nullptr) *error = std::string(what) + " must be a number";
    return false;
  }
  out = value.number_value;
  return true;
}

bool read_bool(const JsonValue& value, const char* what, bool& out,
               std::string* error) {
  if (!value.is_bool()) {
    if (error != nullptr) {
      *error = std::string(what) + " must be true or false";
    }
    return false;
  }
  out = value.bool_value;
  return true;
}

bool read_string(const JsonValue& value, const char* what, std::string& out,
                 std::string* error) {
  if (!value.is_string()) {
    if (error != nullptr) *error = std::string(what) + " must be a string";
    return false;
  }
  out = value.string_value;
  return true;
}

bool read_model(const JsonValue& value, const char* what, ExecutionModel& out,
                std::string* error) {
  std::string name;
  if (!read_string(value, what, name, error)) return false;
  const auto model = parse_execution_model(name);
  if (!model) {
    if (error != nullptr) {
      *error = std::string(what) + ": unknown execution model \"" + name +
               "\" (known: fsync, ssync, async)";
    }
    return false;
  }
  out = *model;
  return true;
}

bool read_topology(const JsonValue& value, const char* what, Topology& out,
                   std::string* error) {
  std::string name;
  if (!read_string(value, what, name, error)) return false;
  const auto topology = parse_topology(name);
  if (!topology) {
    if (error != nullptr) {
      *error = std::string(what) + ": unknown topology \"" + name +
               "\" (known: ring, chain)";
    }
    return false;
  }
  out = *topology;
  return true;
}

std::string known_algorithms() {
  std::string out;
  for (const std::string& name : algorithm_names()) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

bool algorithm_known(const std::string& name) {
  const auto names = algorithm_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

void models_to_json(JsonWriter& json, const char* key,
                    const std::vector<ExecutionModel>& models) {
  json.begin_array(key);
  for (const ExecutionModel model : models) json.element(to_string(model));
  json.end_array();
}

}  // namespace

// ---------------------------------------------------------------------------
// ScenarioSpec

bool ScenarioSpec::operator==(const ScenarioSpec& other) const {
  return nodes == other.nodes && robots == other.robots &&
         topology == other.topology && algorithm == other.algorithm &&
         adversary == other.adversary && model == other.model &&
         activation_p == other.activation_p && horizon == other.horizon &&
         seed == other.seed;
}

std::string ScenarioSpec::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.field("nodes", nodes);
  json.field("robots", robots);
  json.field("topology", to_string(topology));
  json.field("algorithm", algorithm);
  adversary_config_to_json(json, "adversary", adversary);
  json.field("model", to_string(model));
  json.field("activation_p", activation_p);
  json.field("horizon", horizon);
  json.field("seed", seed);
  json.end_object();
  return json.str();
}

std::optional<std::string> ScenarioSpec::validate() const {
  if (nodes < 2) return std::string("\"nodes\" must be >= 2");
  if (robots < 1) return std::string("\"robots\" must be >= 1");
  if (robots >= nodes) {
    return "need robots < nodes (k=" + std::to_string(robots) + " >= n=" +
           std::to_string(nodes) +
           " cannot be well-initiated: some node would start towered)";
  }
  if (horizon < 1) return std::string("\"horizon\" must be >= 1");
  if (activation_p < 0.0 || activation_p > 1.0) {
    return std::string("\"activation_p\" must be in [0, 1]");
  }
  if (!algorithm.empty() && !algorithm_known(algorithm)) {
    return "unknown algorithm \"" + algorithm + "\" (known: " +
           known_algorithms() + "; empty = paper's recommendation)";
  }
  return validate_adversary(adversary);
}

std::optional<ScenarioSpec> scenario_spec_from_json(const JsonValue& value,
                                                    std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  if (!value.is_object()) {
    return fail("a scenario spec must be a JSON object");
  }
  ScenarioSpec spec;
  for (const auto& [key, member] : value.members) {
    if (key == "nodes") {
      if (!read_u32(member, "\"nodes\"", spec.nodes, error)) {
        return std::nullopt;
      }
    } else if (key == "robots") {
      if (!read_u32(member, "\"robots\"", spec.robots, error)) {
        return std::nullopt;
      }
    } else if (key == "topology") {
      if (!read_topology(member, "\"topology\"", spec.topology, error)) {
        return std::nullopt;
      }
    } else if (key == "algorithm") {
      if (!read_string(member, "\"algorithm\"", spec.algorithm, error)) {
        return std::nullopt;
      }
    } else if (key == "adversary") {
      auto adversary = adversary_config_from_json(member, error);
      if (!adversary) return std::nullopt;
      spec.adversary = *adversary;
    } else if (key == "model") {
      if (!read_model(member, "\"model\"", spec.model, error)) {
        return std::nullopt;
      }
    } else if (key == "activation_p") {
      if (!read_double(member, "\"activation_p\"", spec.activation_p, error)) {
        return std::nullopt;
      }
    } else if (key == "horizon") {
      if (!read_u64(member, "\"horizon\"", spec.horizon, error)) {
        return std::nullopt;
      }
    } else if (key == "seed") {
      if (!read_u64(member, "\"seed\"", spec.seed, error)) {
        return std::nullopt;
      }
    } else {
      return fail("unknown key \"" + key +
                  "\" in scenario spec (keys: nodes, robots, topology, "
                  "algorithm, adversary, model, activation_p, horizon, "
                  "seed)");
    }
  }
  if (auto invalid = spec.validate()) return fail(*invalid);
  return spec;
}

std::optional<ScenarioSpec> parse_scenario_spec(const std::string& json,
                                                std::string* error) {
  const auto document = parse_json(json, error);
  if (!document) return std::nullopt;
  return scenario_spec_from_json(*document, error);
}

std::string resolved_algorithm(const ScenarioSpec& spec) {
  if (!spec.algorithm.empty()) return spec.algorithm;
  std::string algorithm =
      computability::recommended_algorithm(spec.robots, spec.nodes);
  if (algorithm.empty()) {
    // Impossible / out-of-model pair: run the closest paper algorithm so
    // the caller can watch the failure mode.
    algorithm = spec.robots >= 3   ? "pef3+"
                : spec.robots == 2 ? "pef2"
                                   : "pef1";
  }
  return algorithm;
}

// ---------------------------------------------------------------------------
// SweepSpec

bool SweepSpec::operator==(const SweepSpec& other) const {
  return algorithms == other.algorithms && adversaries == other.adversaries &&
         models == other.models && topology == other.topology &&
         ring_sizes == other.ring_sizes &&
         robot_counts == other.robot_counts && seeds == other.seeds &&
         activation_p == other.activation_p && horizon == other.horizon &&
         horizon_per_node == other.horizon_per_node &&
         random_placements == other.random_placements &&
         batch_seeds == other.batch_seeds && max_batch == other.max_batch &&
         fast_forward == other.fast_forward;
}

std::string SweepSpec::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.begin_array("algorithms");
  for (const std::string& name : algorithms) json.element(name);
  json.end_array();
  json.begin_array("adversaries");
  for (const AdversaryConfig& config : adversaries) {
    adversary_config_to_json(json, config);
  }
  json.end_array();
  models_to_json(json, "models", models);
  json.field("topology", to_string(topology));
  json.begin_array("ring_sizes");
  for (const std::uint32_t n : ring_sizes) {
    json.element(static_cast<std::uint64_t>(n));
  }
  json.end_array();
  json.begin_array("robot_counts");
  for (const std::uint32_t k : robot_counts) {
    json.element(static_cast<std::uint64_t>(k));
  }
  json.end_array();
  json.begin_array("seeds");
  for (const std::uint64_t seed : seeds) json.element(seed);
  json.end_array();
  json.field("activation_p", activation_p);
  json.field("horizon", horizon);
  json.field("horizon_per_node", horizon_per_node);
  json.field("random_placements", random_placements);
  json.field("batch_seeds", batch_seeds);
  json.field("max_batch", max_batch);
  json.field("fast_forward", fast_forward);
  json.end_object();
  return json.str();
}

std::optional<std::string> SweepSpec::validate() const {
  if (algorithms.empty()) {
    return std::string("\"algorithms\" must name at least one algorithm");
  }
  for (const std::string& name : algorithms) {
    if (!algorithm_known(name)) {
      return "unknown algorithm \"" + name + "\" (known: " +
             known_algorithms() + ")";
    }
  }
  if (adversaries.empty()) {
    return std::string("\"adversaries\" must hold at least one adversary");
  }
  for (const AdversaryConfig& config : adversaries) {
    if (auto err = validate_adversary(config)) return err;
  }
  if (models.empty()) {
    return std::string("\"models\" must hold at least one execution model");
  }
  if (ring_sizes.empty()) {
    return std::string("\"ring_sizes\" must hold at least one ring size");
  }
  if (robot_counts.empty()) {
    return std::string("\"robot_counts\" must hold at least one robot count");
  }
  if (seeds.empty()) {
    return std::string("\"seeds\" must hold at least one seed");
  }
  if (horizon == 0 && horizon_per_node == 0) {
    return std::string(
        "one of \"horizon\" / \"horizon_per_node\" must be nonzero");
  }
  if (activation_p < 0.0 || activation_p > 1.0) {
    return std::string("\"activation_p\" must be in [0, 1]");
  }
  return std::nullopt;
}

std::optional<SweepSpec> sweep_spec_from_json(const JsonValue& value,
                                              std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  if (!value.is_object()) {
    return fail("a sweep spec must be a JSON object");
  }
  SweepSpec spec;
  for (const auto& [key, member] : value.members) {
    if (key == "algorithms") {
      if (!member.is_array()) {
        return fail("\"algorithms\" must be an array of algorithm names");
      }
      spec.algorithms.clear();
      for (const JsonValue& item : member.items) {
        std::string name;
        if (!read_string(item, "every \"algorithms\" entry", name, error)) {
          return std::nullopt;
        }
        spec.algorithms.push_back(std::move(name));
      }
    } else if (key == "adversaries") {
      if (!member.is_array()) {
        return fail("\"adversaries\" must be an array of adversary objects");
      }
      spec.adversaries.clear();
      for (const JsonValue& item : member.items) {
        auto config = adversary_config_from_json(item, error);
        if (!config) return std::nullopt;
        spec.adversaries.push_back(*config);
      }
    } else if (key == "models") {
      if (!member.is_array()) {
        return fail("\"models\" must be an array of "
                    "\"fsync\" / \"ssync\" / \"async\"");
      }
      spec.models.clear();
      for (const JsonValue& item : member.items) {
        ExecutionModel model = ExecutionModel::kFsync;
        if (!read_model(item, "every \"models\" entry", model, error)) {
          return std::nullopt;
        }
        spec.models.push_back(model);
      }
    } else if (key == "topology") {
      if (!read_topology(member, "\"topology\"", spec.topology, error)) {
        return std::nullopt;
      }
    } else if (key == "ring_sizes") {
      if (!member.is_array()) {
        return fail("\"ring_sizes\" must be an array of integers");
      }
      spec.ring_sizes.clear();
      for (const JsonValue& item : member.items) {
        std::uint32_t n = 0;
        if (!read_u32(item, "every \"ring_sizes\" entry", n, error)) {
          return std::nullopt;
        }
        spec.ring_sizes.push_back(n);
      }
    } else if (key == "robot_counts") {
      if (!member.is_array()) {
        return fail("\"robot_counts\" must be an array of integers");
      }
      spec.robot_counts.clear();
      for (const JsonValue& item : member.items) {
        std::uint32_t k = 0;
        if (!read_u32(item, "every \"robot_counts\" entry", k, error)) {
          return std::nullopt;
        }
        spec.robot_counts.push_back(k);
      }
    } else if (key == "seeds") {
      if (!member.is_array()) {
        return fail("\"seeds\" must be an array of integers");
      }
      spec.seeds.clear();
      for (const JsonValue& item : member.items) {
        std::uint64_t seed = 0;
        if (!read_u64(item, "every \"seeds\" entry", seed, error)) {
          return std::nullopt;
        }
        spec.seeds.push_back(seed);
      }
    } else if (key == "activation_p") {
      if (!read_double(member, "\"activation_p\"", spec.activation_p, error)) {
        return std::nullopt;
      }
    } else if (key == "horizon") {
      if (!read_u64(member, "\"horizon\"", spec.horizon, error)) {
        return std::nullopt;
      }
    } else if (key == "horizon_per_node") {
      if (!read_u64(member, "\"horizon_per_node\"", spec.horizon_per_node,
                    error)) {
        return std::nullopt;
      }
    } else if (key == "random_placements") {
      if (!read_bool(member, "\"random_placements\"", spec.random_placements,
                     error)) {
        return std::nullopt;
      }
    } else if (key == "batch_seeds") {
      if (!read_bool(member, "\"batch_seeds\"", spec.batch_seeds, error)) {
        return std::nullopt;
      }
    } else if (key == "max_batch") {
      if (!read_u32(member, "\"max_batch\"", spec.max_batch, error)) {
        return std::nullopt;
      }
    } else if (key == "fast_forward") {
      if (!read_bool(member, "\"fast_forward\"", spec.fast_forward, error)) {
        return std::nullopt;
      }
    } else {
      return fail("unknown key \"" + key +
                  "\" in sweep spec (keys: algorithms, adversaries, models, "
                  "topology, ring_sizes, robot_counts, seeds, activation_p, "
                  "horizon, horizon_per_node, random_placements, "
                  "batch_seeds, max_batch, fast_forward)");
    }
  }
  if (auto invalid = spec.validate()) return fail(*invalid);
  return spec;
}

std::optional<SweepSpec> parse_sweep_spec(const std::string& json,
                                          std::string* error) {
  const auto document = parse_json(json, error);
  if (!document) return std::nullopt;
  return sweep_spec_from_json(*document, error);
}

}  // namespace pef
