#include "core/explore.hpp"

#include "common/check.hpp"

namespace pef {

ExploreOutcome explore(const ExploreRequest& request) {
  ExploreOutcome outcome;
  outcome.predicted =
      computability::classify(request.robots, request.nodes);

  const auto kind = parse_adversary_kind(request.adversary);
  PEF_CHECK_MSG(kind.has_value(), "unknown adversary family name");

  ScenarioSpec spec;
  spec.nodes = request.nodes;
  spec.robots = request.robots;
  spec.algorithm = request.algorithm;
  spec.adversary = adversary_config(*kind);
  spec.horizon = request.horizon;
  spec.seed = request.seed;

  outcome.algorithm = resolved_algorithm(spec);
  spec.algorithm = outcome.algorithm;
  outcome.scenario = spec;
  outcome.result = run_scenario(spec);
  return outcome;
}

}  // namespace pef
