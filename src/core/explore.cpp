#include "core/explore.hpp"

#include "algorithms/registry.hpp"
#include "common/check.hpp"

namespace pef {

AdversarySpec adversary_by_name(const std::string& name) {
  if (name == "static") return static_spec();
  if (name == "bernoulli") return bernoulli_spec(0.5);
  if (name == "periodic") return periodic_spec(5, 3);
  if (name == "t-interval") return t_interval_spec(4);
  if (name == "bounded-absence") return bounded_absence_spec(6);
  if (name == "eventual-missing") return eventual_missing_spec();
  if (name == "adaptive-missing") return adaptive_missing_spec();
  PEF_CHECK_MSG(false, "unknown adversary family name");
  return {};
}

ExploreOutcome explore(const ExploreRequest& request) {
  ExploreOutcome outcome;
  outcome.predicted =
      computability::classify(request.robots, request.nodes);

  std::string algorithm = request.algorithm;
  if (algorithm.empty()) {
    algorithm =
        computability::recommended_algorithm(request.robots, request.nodes);
    if (algorithm.empty()) {
      // Impossible / out-of-model pair: run the closest paper algorithm so
      // the caller can watch the failure mode.
      algorithm = request.robots >= 3   ? "pef3+"
                  : request.robots == 2 ? "pef2"
                                        : "pef1";
    }
  }
  outcome.algorithm = algorithm;

  ExperimentConfig config;
  config.nodes = request.nodes;
  config.robots = request.robots;
  config.algorithm = make_algorithm(algorithm, request.seed);
  config.adversary = adversary_by_name(request.adversary);
  config.horizon = request.horizon;
  config.seed = request.seed;
  outcome.result = run_experiment(config);
  return outcome;
}

}  // namespace pef
