#include "core/computability.hpp"

namespace pef::computability {

Verdict classify(std::uint32_t robots, std::uint32_t nodes) {
  if (robots == 0 || nodes < 2 || robots >= nodes) {
    return Verdict::kOutOfModel;
  }
  if (robots >= 3) return Verdict::kPossible;   // Theorem 3.1
  if (robots == 2) {
    return nodes == 3 ? Verdict::kPossible      // Theorem 4.2
                      : Verdict::kImpossible;   // Theorem 4.1 (n > 3)
  }
  // robots == 1
  return nodes == 2 ? Verdict::kPossible        // Theorem 5.2
                    : Verdict::kImpossible;     // Theorem 5.1 (n > 2)
}

std::optional<std::uint32_t> required_robots(std::uint32_t nodes) {
  if (nodes < 2) return std::nullopt;
  if (nodes == 2) return 1;
  if (nodes == 3) return 2;
  return 3;  // nodes >= 4 (and 3 < nodes as required by the model)
}

std::string recommended_algorithm(std::uint32_t robots, std::uint32_t nodes) {
  if (classify(robots, nodes) != Verdict::kPossible) return "";
  if (robots >= 3) return "pef3+";
  if (robots == 2) return "pef2";
  return "pef1";
}

std::string supporting_theorem(std::uint32_t robots, std::uint32_t nodes) {
  switch (classify(robots, nodes)) {
    case Verdict::kOutOfModel:
      return "model requires 1 <= k < n";
    case Verdict::kPossible:
      if (robots >= 3) return "Theorem 3.1";
      return robots == 2 ? "Theorem 4.2" : "Theorem 5.2";
    case Verdict::kImpossible:
      return robots == 2 ? "Theorem 4.1" : "Theorem 5.1";
  }
  return "";
}

}  // namespace pef::computability
