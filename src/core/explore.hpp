// The one-call public API (the "quickstart" surface).
//
//   pef::ExploreOutcome out = pef::explore({.nodes = 10, .robots = 3});
//
// picks the paper's recommended algorithm for (robots, nodes), runs it
// against a chosen adversary family, and returns the coverage verdict.
#pragma once

#include <cstdint>
#include <string>

#include "core/computability.hpp"
#include "core/experiment.hpp"

namespace pef {

struct ExploreRequest {
  std::uint32_t nodes = 10;
  std::uint32_t robots = 3;
  /// Adversary family name from the adversary registry (core/spec.hpp),
  /// e.g. "static", "bernoulli", "eventual-missing"; family defaults apply.
  std::string adversary = "eventual-missing";
  Time horizon = 5000;
  std::uint64_t seed = 1;
  /// Override the recommended algorithm (empty = paper's recommendation).
  std::string algorithm;
};

struct ExploreOutcome {
  computability::Verdict predicted;  // TABLE 1's verdict for (robots, nodes)
  std::string algorithm;             // algorithm actually run
  ScenarioSpec scenario;             // the resolved, serializable scenario
  RunResult result;                  // measured run
};

/// Runs a perpetual-exploration experiment with sensible defaults.  If
/// TABLE 1 says the pair is impossible the run is still performed (with the
/// closest algorithm) so callers can watch it fail.  The outcome carries
/// the resolved ScenarioSpec — `outcome.scenario.to_json()` reproduces the
/// exact run via pef_run --spec / run_scenario().
[[nodiscard]] ExploreOutcome explore(const ExploreRequest& request);

}  // namespace pef
