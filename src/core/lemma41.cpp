#include "core/lemma41.hpp"

#include <algorithm>
#include <map>

#include "adversary/adversary.hpp"
#include "analysis/coverage.hpp"
#include "common/check.hpp"
#include "scheduler/simulator.hpp"

namespace pef::lemma41 {

namespace {

constexpr std::uint32_t kMirrorRingSize = 8;

/// Reflection across the (0, 1) gluing edge of the 8-ring.
[[nodiscard]] NodeId mirror_node(NodeId x) {
  return (1 + kMirrorRingSize - x) % kMirrorRingSize;
}

[[nodiscard]] GlobalDirection apply_sign(GlobalDirection d, bool flip) {
  return flip ? opposite(d) : d;
}

}  // namespace

const char* to_string(Case c) {
  switch (c) {
    case Case::kStayedNeverMoved:
      return "i=f, a=i (never moved)";
    case Case::kStayedVisitedCw:
      return "i=f, a cw of i";
    case Case::kStayedVisitedCcw:
      return "i=f, a ccw of i";
    case Case::kEndedOnACw:
      return "f=a, a cw of i";
    case Case::kEndedOnACcw:
      return "f=a, a ccw of i";
  }
  return "?";
}

std::optional<PrefixSummary> extract_prefix(const Trace& trace, RobotId r1,
                                            Time t) {
  const Ring& ring = trace.ring();
  const std::uint32_t k = trace.initial_configuration().robot_count();
  PEF_CHECK(r1 < k);
  PEF_CHECK(t <= trace.length());

  // Precondition: no tower in configurations 0..t.
  for (Time tau = 0; tau <= t; ++tau) {
    for (RobotId a = 0; a < k; ++a) {
      for (RobotId b = a + 1; b < k; ++b) {
        if (trace.position_at(a, tau) == trace.position_at(b, tau)) {
          return std::nullopt;
        }
      }
    }
  }

  // Precondition: every robot visited at most two adjacent nodes, and the
  // ring is not fully explored.
  std::vector<bool> explored(ring.node_count(), false);
  for (RobotId r = 0; r < k; ++r) {
    std::vector<NodeId> visited;
    for (Time tau = 0; tau <= t; ++tau) {
      const NodeId u = trace.position_at(r, tau);
      explored[u] = true;
      if (std::find(visited.begin(), visited.end(), u) == visited.end()) {
        visited.push_back(u);
      }
    }
    if (visited.size() > 2) return std::nullopt;
    if (visited.size() == 2 && ring.distance(visited[0], visited[1]) != 1) {
      return std::nullopt;
    }
  }
  if (std::all_of(explored.begin(), explored.end(),
                  [](bool b) { return b; })) {
    return std::nullopt;
  }

  PrefixSummary prefix;
  prefix.t = t;
  prefix.i = trace.position_at(r1, 0);
  prefix.f = trace.position_at(r1, t);
  prefix.r1_chirality = trace.initial_configuration().robot(r1).chirality;

  NodeId other = prefix.i;
  for (Time tau = 0; tau <= t; ++tau) {
    const NodeId u = trace.position_at(r1, tau);
    if (u != prefix.i) other = u;
  }
  prefix.a = other == prefix.i ? prefix.i : other;

  if (prefix.a == prefix.i) {
    prefix.geometry = Case::kStayedNeverMoved;
  } else {
    const bool a_is_cw =
        ring.neighbour(prefix.i, GlobalDirection::kClockwise) == prefix.a;
    if (prefix.f == prefix.i) {
      prefix.geometry =
          a_is_cw ? Case::kStayedVisitedCw : Case::kStayedVisitedCcw;
    } else {
      PEF_CHECK(prefix.f == prefix.a);  // f != i implies f == a
      prefix.geometry = a_is_cw ? Case::kEndedOnACw : Case::kEndedOnACcw;
    }
  }

  prefix.neighbourhood.reserve(static_cast<std::size_t>(t));
  for (Time j = 0; j < t; ++j) {
    const EdgeSet& edges = trace.rounds()[static_cast<std::size_t>(j)].edges;
    NeighbourhoodRound round;
    round.r_i = edges.contains(
        ring.adjacent_edge(prefix.i, GlobalDirection::kClockwise));
    round.l_i = edges.contains(
        ring.adjacent_edge(prefix.i, GlobalDirection::kCounterClockwise));
    round.r_a = edges.contains(
        ring.adjacent_edge(prefix.a, GlobalDirection::kClockwise));
    round.l_a = edges.contains(
        ring.adjacent_edge(prefix.a, GlobalDirection::kCounterClockwise));
    prefix.neighbourhood.push_back(round);
  }
  return prefix;
}

Construction build(const PrefixSummary& prefix) {
  Construction c;
  c.ring = Ring(kMirrorRingSize);
  c.glue_edge = 0;  // connects nodes 0 (f'1) and 1 (f'2)
  c.f1 = 0;
  c.f2 = 1;

  // Per-case r1-side placement and the orientation sign: `flip` is true
  // when G's clockwise maps to G''s counter-clockwise on the r1 side.
  bool flip = false;
  switch (prefix.geometry) {
    case Case::kStayedNeverMoved:
      c.i1 = 0;
      c.a1 = 0;
      flip = false;
      break;
    case Case::kStayedVisitedCw:
      c.i1 = 0;
      c.a1 = 7;
      flip = true;  // a is cw of i in G, but 7 is ccw of 0 in G'
      break;
    case Case::kStayedVisitedCcw:
      c.i1 = 0;
      c.a1 = 7;
      flip = false;
      break;
    case Case::kEndedOnACw:
      c.i1 = 7;
      c.a1 = 0;
      flip = false;  // i -> a is cw in G and 7 -> 0 is cw in G'
      break;
    case Case::kEndedOnACcw:
      c.i1 = 7;
      c.a1 = 0;
      flip = true;
      break;
  }
  c.i2 = mirror_node(c.i1);
  c.a2 = mirror_node(c.a1);

  // Build the constrained prefix, one edge-set per round.  Constraints may
  // overlap (shared edges of adjacent constrained nodes, or across the
  // gluing edge); the geometry above guarantees overlapping constraints
  // carry the same value, which we assert.
  std::vector<EdgeSet> rounds;
  rounds.reserve(prefix.neighbourhood.size());
  for (const NeighbourhoodRound& nb : prefix.neighbourhood) {
    std::map<EdgeId, bool> constraints;
    auto constrain = [&](EdgeId e, bool present) {
      const auto [it, inserted] = constraints.emplace(e, present);
      PEF_CHECK_MSG(it->second == present,
                    "contradictory Lemma 4.1 edge constraints");
    };
    auto constrain_node = [&](NodeId node, bool mirrored, bool r_value,
                              bool l_value) {
      // r(x) is x's clockwise edge in G; on the r1 side it maps through
      // `flip`, on the r2 (mirrored) side through !flip.
      const bool side_flip = mirrored ? !flip : flip;
      constrain(c.ring.adjacent_edge(
                    node, apply_sign(GlobalDirection::kClockwise, side_flip)),
                r_value);
      constrain(c.ring.adjacent_edge(
                    node, apply_sign(GlobalDirection::kCounterClockwise,
                                     side_flip)),
                l_value);
    };
    constrain_node(c.i1, false, nb.r_i, nb.l_i);
    constrain_node(c.a1, false, nb.r_a, nb.l_a);
    constrain_node(c.i2, true, nb.r_i, nb.l_i);
    constrain_node(c.a2, true, nb.r_a, nb.l_a);

    EdgeSet set = EdgeSet::all(c.ring.edge_count());
    for (const auto& [edge, present] : constraints) {
      set.set(edge, present);
    }
    rounds.push_back(std::move(set));
  }

  auto recorded = std::make_shared<RecordedSchedule>(c.ring, std::move(rounds),
                                                     TailRule::kAllPresent);
  c.schedule = std::make_shared<EventualMissingEdgeSchedule>(
      recorded, c.glue_edge, /*vanish_time=*/prefix.t);

  const Chirality r1_chirality =
      flip ? prefix.r1_chirality.flipped() : prefix.r1_chirality;
  c.r1 = RobotPlacement{c.i1, r1_chirality};
  c.r2 = RobotPlacement{c.i2, r1_chirality.flipped()};
  return c;
}

MirrorReport replay_and_verify(const Construction& construction,
                               const AlgorithmPtr& algorithm,
                               const Trace& original_trace,
                               RobotId original_r1,
                               const PrefixSummary& prefix,
                               Time extra_rounds) {
  MirrorReport report;
  const Time t = prefix.t;

  Simulator sim(construction.ring, algorithm,
                make_oblivious(construction.schedule),
                {construction.r1, construction.r2});
  sim.run(t);
  // Snapshot the robot states exactly at time t (Claim 4 compares them).
  const std::string state_r1_at_t = sim.robot(0).state().to_string();
  const std::string state_r2_at_t = sim.robot(1).state().to_string();
  sim.run(extra_rounds);
  const Trace& mirrored = sim.trace();

  // Claim 1: mirror symmetry of positions and equality of local dirs at
  // every configuration time <= t.
  report.claim1_symmetry = true;
  for (Time tau = 0; tau <= t; ++tau) {
    if (mirrored.position_at(1, tau) !=
        mirror_node(mirrored.position_at(0, tau))) {
      report.claim1_symmetry = false;
      break;
    }
    if (tau < t) {
      const auto& round = mirrored.rounds()[static_cast<std::size_t>(tau)];
      if (round.robots[0].dir_after != round.robots[1].dir_after) {
        report.claim1_symmetry = false;
        break;
      }
    }
  }

  // Claim 2: odd distance / no tower up to time t.
  report.claim2_no_tower = true;
  for (Time tau = 0; tau <= t; ++tau) {
    const NodeId p0 = mirrored.position_at(0, tau);
    const NodeId p1 = mirrored.position_at(1, tau);
    const std::uint32_t cw_dist =
        (p1 + kMirrorRingSize - p0) % kMirrorRingSize;
    if (p0 == p1 || cw_dist % 2 == 0) {
      report.claim2_no_tower = false;
      break;
    }
  }

  // Claim 3: r1 replays its original action sequence (moved flags and local
  // dirs, round by round).
  report.claim3_replay = true;
  for (Time j = 0; j < t; ++j) {
    const auto& orig =
        original_trace.rounds()[static_cast<std::size_t>(j)].robots
            [original_r1];
    const auto& copy = mirrored.rounds()[static_cast<std::size_t>(j)].robots[0];
    if (orig.moved != copy.moved || orig.dir_after != copy.dir_after ||
        orig.dir_before != copy.dir_before) {
      report.claim3_replay = false;
      break;
    }
  }

  // Claim 4: at time t the robots stand on the glued pair (f'1, f'2), in
  // equal states (positions + local dirs + algorithm memory).
  const bool on_glue = mirrored.position_at(0, t) == construction.f1 &&
                       mirrored.position_at(1, t) == construction.f2;
  bool same_state = state_r1_at_t == state_r2_at_t;
  if (t > 0) {
    const auto& last = mirrored.rounds()[static_cast<std::size_t>(t - 1)];
    same_state =
        same_state && last.robots[0].dir_after == last.robots[1].dir_after;
  }
  report.claim4_adjacent = on_glue && same_state;

  // Post-t behaviour: how long both robots hold the glued extremities.
  report.post_hold_rounds = 0;
  for (Time tau = t + 1; tau <= t + extra_rounds; ++tau) {
    if (mirrored.position_at(0, tau) == construction.f1 &&
        mirrored.position_at(1, tau) == construction.f2) {
      ++report.post_hold_rounds;
    } else {
      break;
    }
  }

  report.visited_nodes = analyze_coverage(mirrored).visited_node_count;
  return report;
}

}  // namespace pef::lemma41
