// The paper's headline result (TABLE 1) as a decision procedure: for which
// (k robots, n nodes) is deterministic perpetual exploration of
// connected-over-time rings solvable in FSYNC?
//
//   k >= 3 : possible for every n > k                     (Theorem 3.1)
//   k == 2 : possible iff n == 3                          (Theorems 4.1/4.2)
//   k == 1 : possible iff n == 2                          (Theorems 5.1/5.2)
//
// (The model requires k < n; pairs violating that are rejected.)
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace pef::computability {

enum class Verdict : std::uint8_t {
  kPossible,
  kImpossible,
  kOutOfModel,  // k >= n: well-initiated executions need k < n
};

[[nodiscard]] constexpr const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kPossible:
      return "Possible";
    case Verdict::kImpossible:
      return "Impossible";
    case Verdict::kOutOfModel:
      return "OutOfModel";
  }
  return "?";
}

/// TABLE 1 of the paper.
[[nodiscard]] Verdict classify(std::uint32_t robots, std::uint32_t nodes);

/// Smallest number of robots that can perpetually explore every
/// connected-over-time ring of `nodes` nodes (nullopt when no k < nodes
/// suffices, which happens only for nodes <= 3 edge cases).
[[nodiscard]] std::optional<std::uint32_t> required_robots(
    std::uint32_t nodes);

/// The paper's recommended algorithm name for a solvable (robots, nodes)
/// pair ("pef3+", "pef2" or "pef1"); empty for unsolvable pairs.
[[nodiscard]] std::string recommended_algorithm(std::uint32_t robots,
                                                std::uint32_t nodes);

/// The theorem justifying classify(robots, nodes), e.g. "Theorem 4.1".
[[nodiscard]] std::string supporting_theorem(std::uint32_t robots,
                                             std::uint32_t nodes);

}  // namespace pef::computability
