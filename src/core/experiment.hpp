// The experiment harness: one call = one (algorithm, adversary, k, n, seed,
// horizon) run, fully analysed.  Benches and integration tests are thin
// loops over this.
//
// Scenarios are described by the data-only ScenarioSpec (core/spec.hpp);
// run_scenario() executes one.  ExperimentConfig remains as the thin
// programmatic adapter underneath (it holds live objects — an AlgorithmPtr,
// explicit placements — that a serializable spec cannot).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "adversary/adversary.hpp"
#include "analysis/coverage.hpp"
#include "analysis/towers.hpp"
#include "core/spec.hpp"
#include "dynamic_graph/properties.hpp"
#include "engine/engine.hpp"
#include "robot/algorithm.hpp"
#include "robot/robot.hpp"
#include "scheduler/simulator.hpp"

namespace pef {

/// A named, seedable adversary family.  `make(ring, seed)` builds a fresh
/// adversary instance for one run.  This is the *runtime* adapter around an
/// AdversaryConfig — engine-level tests that need a bare factory use it;
/// everything data-shaped carries the config instead.
struct AdversarySpec {
  std::string name;
  std::function<AdversaryPtr(Ring, std::uint64_t)> make;
};

/// Adapt a config to a callable spec.  `robots` feeds cage/proof auto
/// width (see adversary_from_config).
[[nodiscard]] AdversarySpec spec_from_config(const AdversaryConfig& config,
                                             std::uint32_t robots = 0);

/// The standard adversary battery used by possibility benches: static,
/// Bernoulli p in {0.1, 0.5, 0.9}, rotating periodic, T-interval-connected,
/// bounded-absence, eventual-missing-edge, adaptive-missing-edge.  All are
/// connected-over-time by construction.  Factory form of
/// standard_battery_configs() (core/spec.hpp).
[[nodiscard]] std::vector<AdversarySpec> standard_battery();

/// Individual members of the battery (also usable on their own); thin
/// wrappers over the adversary registry.
[[nodiscard]] AdversarySpec static_spec();
[[nodiscard]] AdversarySpec bernoulli_spec(double p);
[[nodiscard]] AdversarySpec periodic_spec(std::uint32_t period,
                                          std::uint32_t duty);
[[nodiscard]] AdversarySpec t_interval_spec(Time interval);
[[nodiscard]] AdversarySpec bounded_absence_spec(Time max_absence);
[[nodiscard]] AdversarySpec eventual_missing_spec();
[[nodiscard]] AdversarySpec adaptive_missing_spec();

struct ExperimentConfig {
  std::uint32_t nodes = 4;
  std::uint32_t robots = 3;
  Topology topology = Topology::kRing;
  AlgorithmPtr algorithm;
  AdversaryConfig adversary;
  Time horizon = 2000;
  std::uint64_t seed = 1;
  /// Optional explicit placements; default = evenly spread, same chirality.
  std::optional<std::vector<RobotPlacement>> placements;
  /// Patience used by the legality audit for suspected-missing edges.
  Time audit_patience = 0;  // 0 => horizon / 4
  /// Execute on the unified Engine (with trace recording, so every analysis
  /// still runs) instead of the reference Simulator.  Differential tests pin
  /// the two engines to bit-identical traces, so results are unchanged —
  /// only faster.  Forced on for non-FSYNC models.
  bool fast_engine = false;
  /// Activation model.  SSYNC runs under seeded Bernoulli activation and
  /// ASYNC under seeded Bernoulli phase advancement (probability
  /// `activation_p`, same default as SweepGrid and pef_run); the adversary
  /// is adapted through SsyncFromFsyncAdversary and ignores the activation
  /// mask.
  ExecutionModel model = ExecutionModel::kFsync;
  double activation_p = 0.5;
};

struct RunResult {
  CoverageReport coverage;
  TowerReport towers;
  ConnectivityAudit legality;

  /// Finite-horizon perpetual-exploration verdict.
  bool perpetual = false;
  /// The realized evolving graph passed the connected-over-time audit.
  bool adversary_legal = false;

  std::string algorithm_name;
  std::string adversary_name;
  ExecutionModel model = ExecutionModel::kFsync;
  Topology topology = Topology::kRing;
  std::uint32_t nodes = 0;
  std::uint32_t robots = 0;
  Time horizon = 0;
  std::uint64_t seed = 0;
};

/// Canonical single-line JSON of one run's analysis — the scenario-shaped
/// counterpart of SweepResult::to_json() (deterministic: pure function of
/// the spec, so serve-layer caches may key it by canonical spec JSON).
[[nodiscard]] std::string run_result_to_json(const RunResult& result);

[[nodiscard]] RunResult run_experiment(const ExperimentConfig& config);

/// Run the config across `seeds` different seeds; returns all results.
[[nodiscard]] std::vector<RunResult> run_battery(ExperimentConfig config,
                                                 std::uint64_t first_seed,
                                                 std::uint32_t seeds);

/// Materialize a data-only spec into a runnable config (resolves the
/// algorithm name; everything else copies over).  Aborts if the spec does
/// not validate — call spec.validate() first for a recoverable error.
[[nodiscard]] ExperimentConfig to_experiment_config(const ScenarioSpec& spec);

/// One call = one spec: validate, materialize, run, analyse.
[[nodiscard]] RunResult run_scenario(const ScenarioSpec& spec);

/// The spec across `seeds` different seeds starting at `first_seed`
/// (spec.seed is ignored).
[[nodiscard]] std::vector<RunResult> run_battery(const ScenarioSpec& spec,
                                                 std::uint64_t first_seed,
                                                 std::uint32_t seeds);

}  // namespace pef
