#include "core/experiment.hpp"

#include <optional>

#include "adversary/adaptive_missing_edge.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "dynamic_graph/schedules.hpp"
#include "engine/batch_engine.hpp"
#include "engine/fast_engine.hpp"

namespace pef {

AdversarySpec static_spec() {
  return {"static", [](Ring ring, std::uint64_t) {
            return make_oblivious(std::make_shared<StaticSchedule>(ring));
          }};
}

AdversarySpec bernoulli_spec(double p) {
  return {"bernoulli(p=" + format_double(p, 1) + ")",
          [p](Ring ring, std::uint64_t seed) {
            return make_oblivious(
                std::make_shared<BernoulliSchedule>(ring, p, seed));
          }};
}

AdversarySpec periodic_spec(std::uint32_t period, std::uint32_t duty) {
  return {"periodic(" + std::to_string(duty) + "/" + std::to_string(period) +
              ")",
          [period, duty](Ring ring, std::uint64_t) {
            return make_oblivious(std::make_shared<PeriodicSchedule>(
                PeriodicSchedule::rotating(ring, period, duty)));
          }};
}

AdversarySpec t_interval_spec(Time interval) {
  return {"t-interval(T=" + std::to_string(interval) + ")",
          [interval](Ring ring, std::uint64_t seed) {
            return make_oblivious(std::make_shared<TIntervalConnectedSchedule>(
                ring, interval, seed));
          }};
}

AdversarySpec bounded_absence_spec(Time max_absence) {
  return {"bounded-absence(A=" + std::to_string(max_absence) + ")",
          [max_absence](Ring ring, std::uint64_t seed) {
            return make_oblivious(std::make_shared<BoundedAbsenceSchedule>(
                ring, max_absence, /*max_presence=*/8, seed));
          }};
}

AdversarySpec eventual_missing_spec() {
  return {"eventual-missing", [](Ring ring, std::uint64_t seed) {
            // The doomed edge and the vanish time depend on the seed so a
            // battery covers different geometries.
            Xoshiro256 rng(derive_seed(seed, 0xe1de));
            const EdgeId edge =
                static_cast<EdgeId>(rng.next_below(ring.edge_count()));
            const Time vanish = 2 + rng.next_below(4 * ring.node_count());
            return make_oblivious(std::make_shared<EventualMissingEdgeSchedule>(
                std::make_shared<StaticSchedule>(ring), edge, vanish));
          }};
}

AdversarySpec adaptive_missing_spec() {
  return {"adaptive-missing", [](Ring ring, std::uint64_t seed) {
            Xoshiro256 rng(derive_seed(seed, 0xada));
            const Time trigger = 2 + rng.next_below(4 * ring.node_count());
            return std::make_unique<AdaptiveMissingEdgeAdversary>(ring,
                                                                  trigger);
          }};
}

std::vector<AdversarySpec> standard_battery() {
  return {static_spec(),
          bernoulli_spec(0.1),
          bernoulli_spec(0.5),
          bernoulli_spec(0.9),
          periodic_spec(/*period=*/5, /*duty=*/3),
          t_interval_spec(/*interval=*/4),
          bounded_absence_spec(/*max_absence=*/6),
          eventual_missing_spec(),
          adaptive_missing_spec()};
}

namespace {

/// Everything below the engine run: the full per-trace analysis shared by
/// run_experiment and the batched run_battery path.
RunResult analyze_run(const Ring& ring, const Trace& trace,
                      const ExperimentConfig& config, std::uint64_t seed) {
  RunResult result;
  result.coverage = analyze_coverage(trace);
  result.towers = analyze_towers(trace);
  const Time patience =
      config.audit_patience > 0 ? config.audit_patience : config.horizon / 4;
  result.legality = audit_connectivity(ring, trace.edge_history(), patience);
  result.perpetual = result.coverage.perpetual(config.nodes);
  result.adversary_legal = result.legality.connected_over_time;
  result.algorithm_name = config.algorithm->name();
  result.adversary_name = config.adversary.name;
  result.model = config.model;
  result.nodes = config.nodes;
  result.robots = config.robots;
  result.horizon = config.horizon;
  result.seed = seed;
  return result;
}

}  // namespace

RunResult run_experiment(const ExperimentConfig& config) {
  PEF_CHECK(config.algorithm != nullptr);
  PEF_CHECK(config.robots >= 1);
  PEF_CHECK(config.nodes >= 2);
  PEF_CHECK(config.horizon >= 1);

  const Ring ring(config.nodes);
  AdversaryPtr adversary = config.adversary.make(ring, config.seed);

  const std::vector<RobotPlacement> placements =
      config.placements ? *config.placements
                        : spread_placements(ring, config.robots);

  const Trace* trace = nullptr;
  std::optional<Simulator> sim;
  std::optional<Engine> engine;
  if (config.model != ExecutionModel::kFsync) {
    // SSYNC/ASYNC run on the unified Engine with seeded Bernoulli
    // activation / phase scheduling; the battery adversary ignores the
    // activation mask.
    EngineOptions options;
    options.record_trace = true;
    auto wrapped =
        std::make_unique<SsyncFromFsyncAdversary>(std::move(adversary));
    if (config.model == ExecutionModel::kSsync) {
      engine.emplace(ring, config.algorithm, std::move(wrapped),
                     standard_ssync_activation(config.activation_p,
                                               config.seed),
                     placements, options);
    } else {
      engine.emplace(ring, config.algorithm, std::move(wrapped),
                     standard_async_phases(config.activation_p, config.seed),
                     placements, options);
    }
    engine->run(config.horizon);
    trace = &engine->trace();
  } else if (config.fast_engine) {
    EngineOptions options;
    options.record_trace = true;
    engine.emplace(ring, config.algorithm, std::move(adversary), placements,
                   options);
    engine->run(config.horizon);
    trace = &engine->trace();
  } else {
    sim.emplace(ring, config.algorithm, std::move(adversary), placements);
    sim->run(config.horizon);
    trace = &sim->trace();
  }

  return analyze_run(ring, *trace, config, config.seed);
}

std::vector<RunResult> run_battery(ExperimentConfig config,
                                   std::uint64_t first_seed,
                                   std::uint32_t seeds) {
  std::vector<RunResult> results;
  results.reserve(seeds);

  // Batched fast path: the battery is B runs of one scenario with
  // different seeds — BatchEngine's shape — so run them as one traced
  // replica batch and analyse each replica's trace.  Traces (and therefore
  // every analysis) are bit-identical to the sequential path, which stays
  // as the fallback for kernel-less algorithms and explicit placements
  // (those may start towered, which only the reference Simulator accepts).
  const bool batchable = seeds > 1 && config.algorithm != nullptr &&
                         config.algorithm->kernel().has_value() &&
                         !config.placements.has_value() &&
                         config.robots < config.nodes;
  if (batchable) {
    PEF_CHECK(config.robots >= 1);
    PEF_CHECK(config.nodes >= 2);
    PEF_CHECK(config.horizon >= 1);
    const Ring ring(config.nodes);
    const std::vector<RobotPlacement> placements =
        spread_placements(ring, config.robots);

    std::vector<BatchReplica> replicas(seeds);
    for (std::uint32_t s = 0; s < seeds; ++s) {
      const std::uint64_t seed = first_seed + s;
      BatchReplica& replica = replicas[s];
      replica.algorithm = config.algorithm;
      replica.placements = placements;
      replica.horizon = config.horizon;
      wire_standard_replica(replica, config.model,
                            config.adversary.make(ring, seed),
                            config.activation_p, seed);
    }

    BatchEngineOptions options;
    options.record_trace = true;  // the analyses are all trace-based
    BatchEngine engine(ring, config.model, std::move(replicas), options);
    engine.run_all();
    for (std::uint32_t s = 0; s < seeds; ++s) {
      results.push_back(
          analyze_run(ring, engine.trace(s), config, first_seed + s));
    }
    return results;
  }

  for (std::uint32_t s = 0; s < seeds; ++s) {
    config.seed = first_seed + s;
    results.push_back(run_experiment(config));
  }
  return results;
}

}  // namespace pef
