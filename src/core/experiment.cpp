#include "core/experiment.hpp"

#include <optional>

#include "algorithms/registry.hpp"
#include "common/check.hpp"
#include "engine/batch_engine.hpp"

namespace pef {

AdversarySpec spec_from_config(const AdversaryConfig& config,
                               std::uint32_t robots) {
  return {adversary_display_name(config),
          [config, robots](Ring ring, std::uint64_t seed) {
            return adversary_from_config(config, ring, seed, robots);
          }};
}

AdversarySpec static_spec() {
  return spec_from_config(adversary_config(AdversaryKind::kStatic));
}

AdversarySpec bernoulli_spec(double p) {
  return spec_from_config(
      adversary_config(AdversaryKind::kBernoulli, {{"p", p}}));
}

AdversarySpec periodic_spec(std::uint32_t period, std::uint32_t duty) {
  return spec_from_config(adversary_config(
      AdversaryKind::kPeriodic, {{"period", static_cast<double>(period)},
                                 {"duty", static_cast<double>(duty)}}));
}

AdversarySpec t_interval_spec(Time interval) {
  return spec_from_config(adversary_config(
      AdversaryKind::kTInterval,
      {{"interval", static_cast<double>(interval)}}));
}

AdversarySpec bounded_absence_spec(Time max_absence) {
  return spec_from_config(adversary_config(
      AdversaryKind::kBoundedAbsence,
      {{"max_absence", static_cast<double>(max_absence)}}));
}

AdversarySpec eventual_missing_spec() {
  return spec_from_config(adversary_config(AdversaryKind::kEventualMissing));
}

AdversarySpec adaptive_missing_spec() {
  return spec_from_config(adversary_config(AdversaryKind::kAdaptiveMissing));
}

std::vector<AdversarySpec> standard_battery() {
  std::vector<AdversarySpec> battery;
  for (const AdversaryConfig& config : standard_battery_configs()) {
    battery.push_back(spec_from_config(config));
  }
  return battery;
}

namespace {

/// Everything below the engine run: the full per-trace analysis shared by
/// run_experiment and the batched run_battery path.
RunResult analyze_run(const Ring& ring, const Trace& trace,
                      const ExperimentConfig& config, std::uint64_t seed) {
  RunResult result;
  result.coverage = analyze_coverage(trace);
  result.towers = analyze_towers(trace);
  const Time patience =
      config.audit_patience > 0 ? config.audit_patience : config.horizon / 4;
  result.legality = audit_connectivity(ring, trace.edge_history(), patience);
  result.perpetual = result.coverage.perpetual(config.nodes);
  result.adversary_legal = result.legality.connected_over_time;
  result.algorithm_name = config.algorithm->name();
  result.adversary_name = adversary_display_name(config.adversary);
  result.model = config.model;
  result.topology = config.topology;
  result.nodes = config.nodes;
  result.robots = config.robots;
  result.horizon = config.horizon;
  result.seed = seed;
  return result;
}

}  // namespace

std::string run_result_to_json(const RunResult& result) {
  JsonWriter json;
  json.begin_object();
  json.field("algorithm", result.algorithm_name);
  json.field("adversary", result.adversary_name);
  json.field("model", to_string(result.model));
  json.field("topology", to_string(result.topology));
  json.field("n", result.nodes);
  json.field("k", result.robots);
  json.field("horizon", result.horizon);
  json.field("seed", result.seed);
  json.field("perpetual", result.perpetual);
  if (result.coverage.cover_time) {
    json.field("cover_time", *result.coverage.cover_time);
  } else {
    json.null_field("cover_time");
  }
  json.field("visited_nodes", result.coverage.visited_node_count);
  json.field("max_revisit_gap", result.coverage.max_revisit_gap);
  json.field("max_closed_gap", result.coverage.max_closed_gap);
  json.field("max_tower_size", result.towers.max_tower_size);
  json.field("tower_formations", result.towers.tower_formation_count);
  json.field("adversary_legal", result.adversary_legal);
  json.end_object();
  return json.str();
}

RunResult run_experiment(const ExperimentConfig& config) {
  PEF_CHECK(config.algorithm != nullptr);
  PEF_CHECK(config.robots >= 1);
  PEF_CHECK(config.nodes >= 2);
  PEF_CHECK(config.horizon >= 1);

  const Ring ring(config.nodes);
  AdversaryPtr adversary =
      adversary_from_config(config.adversary, ring, config.seed,
                            config.robots, config.topology);

  const std::vector<RobotPlacement> placements =
      config.placements ? *config.placements
                        : spread_placements(ring, config.robots);

  const Trace* trace = nullptr;
  std::optional<Simulator> sim;
  std::optional<Engine> engine;
  if (config.model != ExecutionModel::kFsync) {
    // SSYNC/ASYNC run on the unified Engine with seeded Bernoulli
    // activation / phase scheduling; the battery adversary ignores the
    // activation mask.
    EngineOptions options;
    options.record_trace = true;
    auto wrapped =
        std::make_unique<SsyncFromFsyncAdversary>(std::move(adversary));
    if (config.model == ExecutionModel::kSsync) {
      engine.emplace(ring, config.algorithm, std::move(wrapped),
                     standard_ssync_activation(config.activation_p,
                                               config.seed),
                     placements, options);
    } else {
      engine.emplace(ring, config.algorithm, std::move(wrapped),
                     standard_async_phases(config.activation_p, config.seed),
                     placements, options);
    }
    engine->run(config.horizon);
    trace = &engine->trace();
  } else if (config.fast_engine) {
    EngineOptions options;
    options.record_trace = true;
    engine.emplace(ring, config.algorithm, std::move(adversary), placements,
                   options);
    engine->run(config.horizon);
    trace = &engine->trace();
  } else {
    sim.emplace(ring, config.algorithm, std::move(adversary), placements);
    sim->run(config.horizon);
    trace = &sim->trace();
  }

  return analyze_run(ring, *trace, config, config.seed);
}

std::vector<RunResult> run_battery(ExperimentConfig config,
                                   std::uint64_t first_seed,
                                   std::uint32_t seeds) {
  std::vector<RunResult> results;
  results.reserve(seeds);

  // Batched fast path: the battery is B runs of one scenario with
  // different seeds — BatchEngine's shape — so run them as one traced
  // replica batch and analyse each replica's trace.  Traces (and therefore
  // every analysis) are bit-identical to the sequential path, which stays
  // as the fallback for kernel-less algorithms and explicit placements
  // (those may start towered, which only the reference Simulator accepts).
  const bool batchable = seeds > 1 && config.algorithm != nullptr &&
                         config.algorithm->kernel().has_value() &&
                         !config.placements.has_value() &&
                         config.robots < config.nodes;
  if (batchable) {
    PEF_CHECK(config.robots >= 1);
    PEF_CHECK(config.nodes >= 2);
    PEF_CHECK(config.horizon >= 1);
    const Ring ring(config.nodes);
    const std::vector<RobotPlacement> placements =
        spread_placements(ring, config.robots);

    std::vector<BatchReplica> replicas(seeds);
    for (std::uint32_t s = 0; s < seeds; ++s) {
      const std::uint64_t seed = first_seed + s;
      BatchReplica& replica = replicas[s];
      replica.algorithm = config.algorithm;
      replica.placements = placements;
      replica.horizon = config.horizon;
      wire_standard_replica(
          replica, config.model,
          adversary_from_config(config.adversary, ring, seed, config.robots,
                                config.topology),
          config.activation_p, seed);
    }

    BatchEngineOptions options;
    options.record_trace = true;  // the analyses are all trace-based
    BatchEngine engine(ring, config.model, std::move(replicas), options);
    engine.run_all();
    for (std::uint32_t s = 0; s < seeds; ++s) {
      results.push_back(
          analyze_run(ring, engine.trace(s), config, first_seed + s));
    }
    return results;
  }

  for (std::uint32_t s = 0; s < seeds; ++s) {
    config.seed = first_seed + s;
    results.push_back(run_experiment(config));
  }
  return results;
}

ExperimentConfig to_experiment_config(const ScenarioSpec& spec) {
  const auto invalid = spec.validate();
  PEF_CHECK_MSG(!invalid.has_value(), "invalid scenario spec");
  ExperimentConfig config;
  config.nodes = spec.nodes;
  config.robots = spec.robots;
  config.topology = spec.topology;
  config.algorithm = make_algorithm(resolved_algorithm(spec), spec.seed);
  config.adversary = spec.adversary;
  config.horizon = spec.horizon;
  config.seed = spec.seed;
  config.model = spec.model;
  config.activation_p = spec.activation_p;
  // Specs run on the unified Engine: bit-identical to the reference
  // engines (differentially tested) and ~10x faster.
  config.fast_engine = true;
  return config;
}

RunResult run_scenario(const ScenarioSpec& spec) {
  return run_experiment(to_experiment_config(spec));
}

std::vector<RunResult> run_battery(const ScenarioSpec& spec,
                                   std::uint64_t first_seed,
                                   std::uint32_t seeds) {
  return run_battery(to_experiment_config(spec), first_seed, seeds);
}

}  // namespace pef
