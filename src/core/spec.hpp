// ScenarioSpec — the declarative, serializable scenario/sweep API.
//
// The experimental surface of the paper (algorithm × adversary × model ×
// n × k × seed) used to be described three incompatible ways: callable
// AdversarySpec factories in the harness, SweepGrid in the sweep runner,
// and pef_run's private flag table.  This header is the single data-only
// description all of them now share:
//
//   AdversaryConfig  {kind enum, params}   — a value, not a callable;
//   ScenarioSpec     one run               — n, k, algorithm, adversary,
//                                            model, horizon, seed;
//   SweepSpec        one sweep grid        — the axes + scheduling knobs.
//
// All three round-trip through JSON (common/json) byte-identically on
// canonical documents, validate with actionable error messages, and resolve
// to live objects only at run time:
//
//   adversary_from_config(config, ring, seed, robots)  -> AdversaryPtr
//   run_scenario(spec)                 (core/experiment.hpp)
//   SweepRunner().run(spec)            (engine/sweep_runner.hpp)
//
// Because a spec is plain data, it can be handed to another process —
// pef_sweep shards one SweepSpec across processes/machines and merges the
// outputs byte-identically to the unsharded run.
//
// The adversary registry below is the single source of truth for adversary
// names, parameters, defaults and descriptions; pef_run's --help and flag
// parsing, the standard battery, and the JSON parser all derive from it.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "adversary/adversary.hpp"
#include "common/json.hpp"
#include "common/types.hpp"
#include "engine/engine.hpp"

namespace pef {

// ---------------------------------------------------------------------------
// Topology

/// The underlying graph family a scenario runs on.  A chain of n nodes is
/// the paper's closing remark made executable: a ring of n nodes whose edge
/// n-1 (between nodes n-1 and 0) never appears (dynamic_graph/chain.hpp).
enum class Topology : std::uint8_t {
  kRing = 0,
  kChain,
};

[[nodiscard]] const char* to_string(Topology topology);
[[nodiscard]] std::optional<Topology> parse_topology(const std::string& name);

// ---------------------------------------------------------------------------
// The adversary registry

enum class AdversaryKind : std::uint8_t {
  kStatic = 0,
  kBernoulli,
  kPeriodic,
  kTInterval,
  kBoundedAbsence,
  kEventualMissing,
  kAdaptiveMissing,
  kMarkov,
  kGreedyBlocker,
  kCage,
  kProof,
};

struct AdversaryParamInfo {
  const char* name;
  double default_value;
  const char* description;
};

struct AdversaryKindInfo {
  AdversaryKind kind = AdversaryKind::kStatic;
  /// Canonical name: the JSON "kind" value and the CLI --adversary value.
  const char* name = "";
  /// One-line description (pef_run --help is generated from this).
  const char* description = "";
  /// Declared parameters with defaults; configs may only set these.
  std::vector<AdversaryParamInfo> params;
  /// True for the genuinely adaptive lower-bound adversaries (they see the
  /// configuration); false for oblivious schedules.
  bool adaptive = false;
  /// Capability flag for the batched engine: true iff the resolved
  /// adversary is per-replica-independent (a pure function of time and its
  /// own seed stream, never of the configuration or activation mask), so
  /// BatchEngine can fill its edge words straight into the contiguous edge
  /// plane via the schedule's edges_into_words() and skip the replica's
  /// Configuration mirror.  Stateful / view-dependent kinds keep the
  /// mirror path (still batched, just with a per-lane mirror prologue).
  bool batchable = false;
};

/// Every adversary family, in canonical order.
[[nodiscard]] const std::vector<AdversaryKindInfo>& adversary_registry();

[[nodiscard]] const AdversaryKindInfo& adversary_kind_info(AdversaryKind kind);

/// Canonical name -> kind; nullopt on unknown names.
[[nodiscard]] std::optional<AdversaryKind> parse_adversary_kind(
    const std::string& name);

/// "static, bernoulli, periodic, ..." — for error messages and --help.
[[nodiscard]] std::string known_adversary_kinds();

// ---------------------------------------------------------------------------
// AdversaryConfig

struct AdversaryParam {
  std::string name;
  double value = 0;
};

/// A value description of one adversary: kind + sparse parameter overrides.
/// Copyable, comparable, serializable — the replacement for the callable
/// AdversarySpec factories.
struct AdversaryConfig {
  AdversaryKind kind = AdversaryKind::kStatic;
  /// Overrides of the registry defaults; names must be declared by `kind`.
  std::vector<AdversaryParam> params;

  /// Resolved value of a declared parameter (override or registry default).
  /// Aborts on parameter names the kind does not declare.
  [[nodiscard]] double param(const std::string& name) const;

  /// Set (or replace) an override.  Aborts on undeclared names.
  AdversaryConfig& set(const std::string& name, double value);

  /// Semantic equality: same kind and same *resolved* parameter values
  /// (explicit defaults compare equal to absent ones).
  [[nodiscard]] bool operator==(const AdversaryConfig& other) const;
};

[[nodiscard]] AdversaryConfig adversary_config(AdversaryKind kind);
[[nodiscard]] AdversaryConfig adversary_config(
    AdversaryKind kind, std::initializer_list<AdversaryParam> overrides);

/// The human-readable instance name, e.g. "bernoulli(p=0.5)" — exactly the
/// names the standard battery has always used (sweep baselines pin them).
[[nodiscard]] std::string adversary_display_name(const AdversaryConfig& config);

/// Resolve a config to a live adversary for one run.  `robots` feeds the
/// auto width of cage/proof (width 0 means min(robots + 1, n - 1)); pass the
/// scenario's k.  Seed derivation matches the historical battery factories
/// bit-for-bit.  On Topology::kChain the resolved adversary is restricted to
/// the chain: oblivious schedules are rewrapped in ChainSchedule::cut_last
/// (preserving the batchable word-plane fast path), adaptive adversaries get
/// the cut edge erased from every choice.
[[nodiscard]] AdversaryPtr adversary_from_config(
    const AdversaryConfig& config, const Ring& ring, std::uint64_t seed,
    std::uint32_t robots = 0, Topology topology = Topology::kRing);

/// Parameter-range validation; nullopt when fine, else an actionable
/// message.
[[nodiscard]] std::optional<std::string> validate_adversary(
    const AdversaryConfig& config);

/// The standard possibility-side battery (static, Bernoulli 0.1/0.5/0.9,
/// rotating periodic, T-interval, bounded-absence, eventual-missing,
/// adaptive-missing) as configs.
[[nodiscard]] std::vector<AdversaryConfig> standard_battery_configs();

void adversary_config_to_json(JsonWriter& json, const AdversaryConfig& config);
void adversary_config_to_json(JsonWriter& json, const std::string& key,
                              const AdversaryConfig& config);
[[nodiscard]] std::optional<AdversaryConfig> adversary_config_from_json(
    const JsonValue& value, std::string* error);

// ---------------------------------------------------------------------------
// ScenarioSpec

/// One fully-described run.  Plain data; `run_scenario()` in
/// core/experiment.hpp executes it.
struct ScenarioSpec {
  std::uint32_t nodes = 10;
  std::uint32_t robots = 3;
  Topology topology = Topology::kRing;
  /// Registry algorithm name; empty = the paper's recommendation for
  /// (robots, nodes) (see resolved_algorithm).
  std::string algorithm;
  AdversaryConfig adversary;
  ExecutionModel model = ExecutionModel::kFsync;
  /// SSYNC activation / ASYNC phase-advance probability; ignored by FSYNC.
  double activation_p = 0.5;
  Time horizon = 5000;
  std::uint64_t seed = 1;

  [[nodiscard]] bool operator==(const ScenarioSpec& other) const;

  /// Canonical single-line JSON (parse_scenario_spec inverts it exactly).
  [[nodiscard]] std::string to_json() const;

  /// Semantic validation; nullopt when runnable, else an actionable message.
  [[nodiscard]] std::optional<std::string> validate() const;
};

[[nodiscard]] std::optional<ScenarioSpec> scenario_spec_from_json(
    const JsonValue& value, std::string* error);
[[nodiscard]] std::optional<ScenarioSpec> parse_scenario_spec(
    const std::string& json, std::string* error);

/// The algorithm the spec actually runs: spec.algorithm when set, else the
/// computability table's recommendation (falling back to the closest paper
/// algorithm for impossible pairs, so callers can watch the failure).
[[nodiscard]] std::string resolved_algorithm(const ScenarioSpec& spec);

// ---------------------------------------------------------------------------
// SweepSpec

/// One sweep grid: the cartesian product of the axes below, one engine run
/// per cell (cells with k >= n are skipped).  Plain data; SweepRunner
/// executes it.  batch_seeds / max_batch / random_placements are scheduling
/// and placement knobs serialized with the spec so a shard worker given only
/// the JSON reproduces the exact same cells.
struct SweepSpec {
  std::vector<std::string> algorithms;
  std::vector<AdversaryConfig> adversaries;
  std::vector<ExecutionModel> models = {ExecutionModel::kFsync};
  /// One topology for the whole grid (ring_sizes stays the node-count axis;
  /// on a chain, n nodes means the n-node chain cut from the n-ring).
  Topology topology = Topology::kRing;
  std::vector<std::uint32_t> ring_sizes;    // n
  std::vector<std::uint32_t> robot_counts;  // k
  std::vector<std::uint64_t> seeds;

  /// Per-robot SSYNC activation / ASYNC phase-advance probability.
  double activation_p = 0.5;

  /// Horizon of one run: `horizon` rounds when nonzero, else
  /// `horizon_per_node * n`.
  Time horizon = 0;
  Time horizon_per_node = 200;

  /// Uniformly random towerless placements (seeded per cell) when true,
  /// evenly spread with common chirality when false.
  bool random_placements = true;

  /// Run each seed group as one BatchEngine (purely a throughput knob; the
  /// per-seed results are bit-identical either way).
  bool batch_seeds = true;
  std::uint32_t max_batch = 64;

  /// Detect per-cell periodicity and extrapolate the remaining rounds in
  /// closed form (see engine/cycle.hpp).  Engages only on cells whose every
  /// component is deterministic (oblivious periodic schedules, non-Bernoulli
  /// activation); everything else silently runs plain.  Cell statistics are
  /// bit-identical either way — engaged cells additionally report
  /// rounds_covered / rounds_simulated.
  bool fast_forward = false;

  [[nodiscard]] Time horizon_for(std::uint32_t n) const {
    return horizon != 0 ? horizon : horizon_per_node * n;
  }

  [[nodiscard]] bool operator==(const SweepSpec& other) const;

  /// Canonical single-line JSON (parse_sweep_spec inverts it exactly).
  [[nodiscard]] std::string to_json() const;

  /// Semantic validation; nullopt when runnable, else an actionable message.
  [[nodiscard]] std::optional<std::string> validate() const;
};

[[nodiscard]] std::optional<SweepSpec> sweep_spec_from_json(
    const JsonValue& value, std::string* error);
[[nodiscard]] std::optional<SweepSpec> parse_sweep_spec(
    const std::string& json, std::string* error);

}  // namespace pef
