#include "engine/fast_engine.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pef {

FastEngine::FastEngine(Ring ring, AlgorithmPtr algorithm,
                       AdversaryPtr adversary,
                       const std::vector<RobotPlacement>& placements,
                       FastEngineOptions options)
    : ring_(ring),
      algorithm_(std::move(algorithm)),
      adversary_(std::move(adversary)),
      options_(options),
      occ_(ring_.node_count(), 0),
      edges_(ring_.edge_count()),
      visit_counts_(ring_.node_count(), 0),
      last_visit_(ring_.node_count(), 0),
      visited_(ring_.node_count(), 0) {
  PEF_CHECK(algorithm_ != nullptr);
  PEF_CHECK(adversary_ != nullptr);
  PEF_CHECK(adversary_->ring() == ring_);
  PEF_CHECK(!placements.empty());

  if (options_.enforce_well_initiated) {
    PEF_CHECK_MSG(placements.size() < ring_.node_count(),
                  "well-initiated executions need k < n");
    for (std::size_t a = 0; a < placements.size(); ++a) {
      for (std::size_t b = a + 1; b < placements.size(); ++b) {
        PEF_CHECK_MSG(placements[a].node != placements[b].node,
                      "well-initiated executions start towerless");
      }
    }
  }

  const auto k = static_cast<std::uint32_t>(placements.size());
  node_.reserve(k);
  dir_.reserve(k);
  right_cw_.reserve(k);
  states_.reserve(k);
  moved_.assign(k, 0);
  for (std::uint32_t i = 0; i < k; ++i) {
    PEF_CHECK(ring_.is_valid_node(placements[i].node));
    node_.push_back(placements[i].node);
    dir_.push_back(static_cast<std::uint8_t>(LocalDirection::kLeft));
    right_cw_.push_back(placements[i].chirality.right_is_clockwise() ? 1 : 0);
    states_.push_back(algorithm_->make_state(static_cast<RobotId>(i)));
    if (++occ_[placements[i].node] == 2) ++multi_nodes_;
  }

  // Oblivious adversaries never look at gamma: bypass the Configuration
  // mirror entirely and fill the scratch EdgeSet in place each round.
  if (const auto* oblivious =
          dynamic_cast<const ObliviousAdversary*>(adversary_.get())) {
    schedule_ = oblivious->schedule().get();
  } else {
    gamma_mirror_ = std::make_unique<Configuration>(snapshot());
  }

  observe_boundary(0);
  if (options_.record_trace) {
    trace_ = std::make_unique<Trace>(ring_, snapshot());
  }
}

Configuration FastEngine::snapshot() const {
  std::vector<RobotSnapshot> snaps;
  snaps.reserve(node_.size());
  for (std::size_t i = 0; i < node_.size(); ++i) {
    RobotSnapshot s;
    s.node = node_[i];
    s.dir = static_cast<LocalDirection>(dir_[i]);
    s.chirality = Chirality(right_cw_[i] != 0);
    snaps.push_back(std::move(s));
  }
  return Configuration(ring_, std::move(snaps));
}

void FastEngine::observe_boundary(Time t) {
  const std::uint32_t n = ring_.node_count();
  for (const NodeId u : node_) {
    ++visit_counts_[u];
    if (visited_[u]) {
      const Time gap = t - last_visit_[u];
      max_closed_gap_ = std::max(max_closed_gap_, gap);
    } else {
      visited_[u] = 1;
      if (++stats_.visited_node_count == n && !stats_.cover_time) {
        stats_.cover_time = t;
      }
    }
    last_visit_[u] = t;
  }
  if (multi_nodes_ > 0) {
    ++stats_.tower_rounds;
    if (!prev_had_tower_) ++stats_.tower_formations;
    prev_had_tower_ = true;
  } else {
    prev_had_tower_ = false;
  }
}

void FastEngine::step() {
  const auto k = static_cast<std::uint32_t>(node_.size());

  // Adversary: E_t.  Oblivious schedules refill the scratch set in place.
  if (schedule_ != nullptr) {
    schedule_->edges_into(now_, edges_);
  } else {
    edges_ = adversary_->choose_edges(now_, *gamma_mirror_);
    PEF_CHECK(edges_.edge_count() == ring_.edge_count());
  }

  const std::uint32_t n = ring_.node_count();
  RoundRecord record;
  const bool tracing = trace_ != nullptr;
  if (tracing) {
    record.time = now_;
    record.edges = edges_;
    record.robots.resize(k);
  }

  // Look + Compute.  The Look phase reads only node_/occ_/edges_, none of
  // which change before Move, so fusing the two phases preserves the
  // synchronous semantics; Compute writes only the robot's own dir/state.
  for (std::uint32_t i = 0; i < k; ++i) {
    const NodeId u = node_[i];
    const bool dir_right = dir_[i] != 0;
    // to_global(dir): right == right_is_clockwise ? cw : ccw.
    const bool ahead_cw = dir_right == (right_cw_[i] != 0);
    const EdgeId edge_cw = u;
    const EdgeId edge_ccw = u == 0 ? n - 1 : u - 1;

    View view;
    view.exists_edge_ahead =
        edges_.contains_unchecked(ahead_cw ? edge_cw : edge_ccw);
    view.exists_edge_behind =
        edges_.contains_unchecked(ahead_cw ? edge_ccw : edge_cw);
    view.other_robots_on_node = occ_[u] > 1;

    if (tracing) {
      record.robots[i].node_before = u;
      record.robots[i].dir_before = static_cast<LocalDirection>(dir_[i]);
      record.robots[i].saw_other_robots = view.other_robots_on_node;
    }

    LocalDirection dir = static_cast<LocalDirection>(dir_[i]);
    algorithm_->compute(view, dir, *states_[i]);
    dir_[i] = static_cast<std::uint8_t>(dir);
    if (tracing) record.robots[i].dir_after = dir;
  }

  // Move: cross the pointed edge iff present in E_t (same set all round).
  // Sequential in-place update is safe: Look already happened for everyone.
  for (std::uint32_t i = 0; i < k; ++i) {
    const NodeId u = node_[i];
    const bool dir_right = dir_[i] != 0;
    const bool ahead_cw = dir_right == (right_cw_[i] != 0);
    const EdgeId pointed = ahead_cw ? u : (u == 0 ? n - 1 : u - 1);
    bool moved = false;
    if (edges_.contains_unchecked(pointed)) {
      const NodeId to = ahead_cw ? (u + 1 == n ? 0 : u + 1)
                                 : (u == 0 ? n - 1 : u - 1);
      if (--occ_[u] == 1) --multi_nodes_;
      if (++occ_[to] == 2) ++multi_nodes_;
      node_[i] = to;
      ++stats_.total_moves;
      moved = true;
    }
    moved_[i] = moved ? 1 : 0;
    if (tracing) {
      record.robots[i].moved = moved;
      record.robots[i].node_after = node_[i];
    }
  }

  // Keep the adaptive adversary's gamma mirror current (it must equal the
  // configuration at the start of the next round).
  if (gamma_mirror_) {
    for (std::uint32_t i = 0; i < k; ++i) {
      gamma_mirror_->set_robot_dir(i, static_cast<LocalDirection>(dir_[i]));
      if (moved_[i]) gamma_mirror_->relocate_robot(i, node_[i]);
    }
  }

  ++now_;
  stats_.rounds = now_;
  observe_boundary(now_);
  if (tracing) trace_->append(std::move(record));
}

void FastEngine::run(Time rounds) {
  for (Time i = 0; i < rounds; ++i) step();
}

CoverageReport FastEngine::coverage_report(Time suffix_window) const {
  const std::uint32_t n = ring_.node_count();
  CoverageReport report;
  report.horizon = now_;
  report.suffix_window = suffix_window == 0 ? now_ / 4 + 1 : suffix_window;
  report.visit_counts = visit_counts_;
  report.visited_node_count = stats_.visited_node_count;
  report.cover_time = stats_.cover_time;
  report.max_closed_gap = max_closed_gap_;

  const Time suffix_start =
      now_ >= report.suffix_window ? now_ - report.suffix_window : 0;
  for (NodeId u = 0; u < n; ++u) {
    const Time open_gap = visited_[u] ? now_ - last_visit_[u] : now_;
    report.max_revisit_gap =
        std::max({report.max_revisit_gap, report.max_closed_gap, open_gap});
    if (visited_[u] && last_visit_[u] >= suffix_start) {
      ++report.nodes_visited_in_suffix;
    }
  }
  return report;
}

}  // namespace pef
